GO ?= go

.PHONY: all build test race lint ltlint vet bench crash ci clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint mirrors the CI gates: go vet, the project analyzers, and (when
# installed) golangci-lint with the committed .golangci.yml.
lint: vet ltlint
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run; \
	else \
		echo "golangci-lint not installed; skipping (CI runs it)"; \
	fi

vet:
	$(GO) vet ./...

ltlint:
	$(GO) run ./cmd/ltlint ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# crash runs the crash-at-every-barrier harness once with the default seed;
# CI's crash-harness job runs it -count=5 across seeds 1..3.
crash:
	$(GO) test ./internal/core -run 'CrashAtEveryBarrier'

# ci mirrors the workflow's blocking jobs locally: build, vet, the project
# analyzers, the race-enabled test suite, and a single-seed crash-harness
# pass. The bench/fuzz smoke jobs are advisory and excluded here.
ci: build vet ltlint race crash

clean:
	rm -rf bin
