GO ?= go

.PHONY: all build test race lint ltlint lint-fix-baseline vet bench crash chaos cluster-chaos ci clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint mirrors the CI gates: go vet, the project analyzers, and (when
# installed) golangci-lint with the committed .golangci.yml.
lint: vet ltlint
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run; \
	else \
		echo "golangci-lint not installed; skipping (CI runs it)"; \
	fi

vet:
	$(GO) vet ./...

ltlint:
	$(GO) run ./cmd/ltlint -check-stale-ignores ./...

# lint-fix-baseline records every current finding into .ltlint-baseline.json
# so a new analyzer can land blocking-on-new-findings while legacy debt is
# paid down. The repo's steady state is NO baseline file (the tree is
# clean); this target exists for rollout windows only — delete the file
# once its entries are fixed.
lint-fix-baseline:
	$(GO) run ./cmd/ltlint -write-baseline .ltlint-baseline.json ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# crash runs the crash-at-every-barrier harness once with the default seed;
# CI's crash-harness job runs it -count=5 across seeds 1..3.
crash:
	$(GO) test ./internal/core -run 'CrashAtEveryBarrier'

# chaos runs the network-fault chaos suite once with the default seed;
# CI's chaos-harness job runs it -race -count=5 across seeds 1..3.
chaos:
	$(GO) test ./internal/client -race -run 'TestChaos'

# cluster-chaos runs the 3-shard router topology under netfault fire
# (shard restart + live migration mid-load) once with the default seed;
# CI's cluster-chaos job runs it -race -count=3 across seeds 1..3.
cluster-chaos:
	$(GO) test ./internal/router -race -run 'TestClusterChaos'

# ci mirrors the workflow's blocking jobs locally: build, vet, the project
# analyzers, the race-enabled test suite, and single-seed crash-, chaos-,
# and cluster-chaos-harness passes. The bench/fuzz smoke jobs are
# advisory and excluded here.
ci: build vet ltlint race crash chaos cluster-chaos

clean:
	rm -rf bin
