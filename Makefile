GO ?= go

.PHONY: all build test race lint ltlint vet bench clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint mirrors the CI gates: go vet, the project analyzers, and (when
# installed) golangci-lint with the committed .golangci.yml.
lint: vet ltlint
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run; \
	else \
		echo "golangci-lint not installed; skipping (CI runs it)"; \
	fi

vet:
	$(GO) vet ./...

ltlint:
	$(GO) run ./cmd/ltlint ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

clean:
	rm -rf bin
