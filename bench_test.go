// Benchmarks regenerating the paper's evaluation (§5): one benchmark per
// table and figure, wrapping internal/ltbench's experiments at reduced
// scale. Run `go test -bench=. -benchmem` for the suite or cmd/ltbench for
// the full printed series; EXPERIMENTS.md records paper-vs-measured.
package littletable_test

import (
	"fmt"
	"testing"

	"littletable"
	"littletable/internal/clock"
	"littletable/internal/ltbench"
)

// BenchmarkHeadlineFirstRowAndScan regenerates the §1 headline: first-row
// latency (modeled ≈31 ms) and scan rate (≈500k rows/s regime).
func BenchmarkHeadlineFirstRowAndScan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ltbench.RunHeadline(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		pts := res.Series[0].Points
		b.ReportMetric(pts[0].Y, "first-row-ms")
		b.ReportMetric(pts[3].Y, "rows/s-effective")
	}
}

// BenchmarkInsertBatchSize regenerates Figure 2's solid line at three
// representative batch sizes.
func BenchmarkInsertBatchSize(b *testing.B) {
	for _, batch := range []int{256, 16 << 10, 64 << 10} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			cfg := ltbench.Fig2Config{
				BytesPerRun: 4 << 20,
				BatchSizes:  []int{batch},
				RowSizes:    []int{128}, // only the batch series matters here
				Dir:         b.TempDir(),
			}
			for i := 0; i < b.N; i++ {
				res, err := ltbench.RunFig2(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Series[0].Points[0].Y, "MB/s")
			}
		})
	}
}

// BenchmarkInsertRowSize regenerates Figure 2's dashed line at three
// representative row sizes.
func BenchmarkInsertRowSize(b *testing.B) {
	for _, rowSize := range []int{32, 512, 4 << 10} {
		b.Run(fmt.Sprintf("row=%d", rowSize), func(b *testing.B) {
			cfg := ltbench.Fig2Config{
				BytesPerRun: 4 << 20,
				BatchSizes:  []int{64 << 10},
				RowSizes:    []int{rowSize},
				Dir:         b.TempDir(),
			}
			for i := 0; i < b.N; i++ {
				res, err := ltbench.RunFig2(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Series[1].Points[0].Y, "MB/s")
			}
		})
	}
}

// BenchmarkInsertWithMerging regenerates Figure 3 in miniature, reporting
// the equilibrium write amplification (paper: ~2).
func BenchmarkInsertWithMerging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ltbench.RunFig3(ltbench.Fig3Config{
			TotalBytes: 64 << 20,
			Dir:        b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		// The write-amplification note carries the figure's conclusion;
		// surface merges as a metric.
		b.ReportMetric(float64(len(res.Series[1].Points)), "merges")
	}
}

// BenchmarkMultiWriter regenerates Figure 4 at 1 and 4 writers.
func BenchmarkMultiWriter(b *testing.B) {
	for _, writers := range []int{1, 4} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			cfg := ltbench.Fig4Config{
				BytesPerWriter: 2 << 20,
				WriterCounts:   []int{writers},
				Dir:            b.TempDir(),
			}
			for i := 0; i < b.N; i++ {
				res, err := ltbench.RunFig4(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Series[0].Points[0].Y, "MB/s")
			}
		})
	}
}

// BenchmarkQueryTablets regenerates Figure 5 at three tablet counts,
// reporting modeled disk throughput for both readaheads.
func BenchmarkQueryTablets(b *testing.B) {
	for _, tablets := range []int{1, 8, 16} {
		b.Run(fmt.Sprintf("tablets=%d", tablets), func(b *testing.B) {
			cfg := ltbench.Fig5Config{
				TotalBytes:   32 << 20,
				TabletCounts: []int{tablets},
				Dir:          b.TempDir(),
			}
			for i := 0; i < b.N; i++ {
				res, err := ltbench.RunFig5(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Series[0].Points[0].Y, "MB/s-128kB-ra")
				b.ReportMetric(res.Series[1].Points[0].Y, "MB/s-1MB-ra")
			}
		})
	}
}

// BenchmarkFirstRowLatency regenerates Figure 6 at three tablet counts,
// reporting modeled first- and second-query latency.
func BenchmarkFirstRowLatency(b *testing.B) {
	for _, tablets := range []int{1, 8, 16} {
		b.Run(fmt.Sprintf("tablets=%d", tablets), func(b *testing.B) {
			cfg := ltbench.Fig6Config{
				TabletCounts: []int{tablets},
				TabletBytes:  1 << 20,
				Dir:          b.TempDir(),
			}
			for i := 0; i < b.N; i++ {
				res, err := ltbench.RunFig6(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Series[0].Points[0].Y, "first-ms")
				b.ReportMetric(res.Series[1].Points[0].Y, "second-ms")
			}
		})
	}
}

// BenchmarkScanRatio regenerates Figure 9's measured scan efficiency.
func BenchmarkScanRatio(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ltbench.RunFig9(ltbench.Fig9Config{
			Tables:  4,
			Samples: 200,
			Queries: 60,
			Dir:     b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		// p50 of the ratio CDF.
		b.ReportMetric(res.Series[0].Points[2].Y, "scan-ratio-p50")
	}
}

// BenchmarkProductionDistributions regenerates Figures 7, 8, and 10 (pure
// synthesis; cheap).
func BenchmarkProductionDistributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = ltbench.RunFig7(100, 1)
		_ = ltbench.RunFig8(270, 2)
		_ = ltbench.RunFig10(5000, 3)
	}
}

// BenchmarkProductionRates regenerates §5.2.3's rates simulation.
func BenchmarkProductionRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ltbench.RunRates(ltbench.RatesConfig{
			SimulatedHours: 1,
			Dir:            b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Series[0].Points[2].Y, "read:write")
	}
}

// BenchmarkMergePolicy regenerates the appendix's bound measurements.
func BenchmarkMergePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ltbench.RunAppendix(ltbench.AppendixConfig{
			Flushes: 32,
			Dir:     b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Series[1].Points[1].Y, "stable-tablets")
		b.ReportMetric(res.Series[1].Points[3].Y, "rewrites/row")
	}
}

// BenchmarkPublicAPIInsertQuery exercises the embedded public API end to
// end: the baseline "how fast is the library for a Go user" number.
func BenchmarkPublicAPIInsertQuery(b *testing.B) {
	dir := b.TempDir()
	sc := littletable.MustSchema([]littletable.Column{
		{Name: "network", Type: littletable.Int64},
		{Name: "device", Type: littletable.Int64},
		{Name: "ts", Type: littletable.Timestamp},
		{Name: "rate", Type: littletable.Double},
	}, []string{"network", "device", "ts"})
	tab, err := littletable.CreateTable(dir, "usage", sc, 0, littletable.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer tab.Close()
	now := littletable.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := littletable.Row{
			littletable.NewInt64(int64(i % 8)),
			littletable.NewInt64(int64(i % 64)),
			littletable.NewTimestamp(now + int64(i)*clock.Second),
			littletable.NewDouble(float64(i)),
		}
		if err := tab.Insert([]littletable.Row{row}); err != nil {
			b.Fatal(err)
		}
		if i%1024 == 1023 {
			q := littletable.NewQuery()
			q.Lower = []littletable.Value{littletable.NewInt64(int64(i % 8))}
			q.Upper = q.Lower
			q.MinTs = now
			q.MaxTs = now + int64(i)*clock.Second
			it, err := tab.Query(q)
			if err != nil {
				b.Fatal(err)
			}
			for it.Next() {
			}
			it.Close()
		}
	}
}

// BenchmarkQueryParallel measures the parallel read path against the
// serial baseline over a modeled-latency disk: cold-cache and warm-cache
// merge scans at 1–64 tablets. The cold parallel/serial ratio is the
// headline (≥2x on 16+ tablets); BENCH_2.json records a captured run.
func BenchmarkQueryParallel(b *testing.B) {
	for _, tablets := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("tablets=%d", tablets), func(b *testing.B) {
			cfg := ltbench.ParallelConfig{
				TabletCounts:  []int{tablets},
				RowsPerTablet: 500,
				Dir:           b.TempDir(),
			}
			for i := 0; i < b.N; i++ {
				res, err := ltbench.RunParallel(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Series[0].Points[0].Y, "rows/s-cold-serial")
				b.ReportMetric(res.Series[1].Points[0].Y, "rows/s-cold-parallel")
				b.ReportMetric(res.Series[2].Points[0].Y, "rows/s-warm")
			}
		})
	}
}

// BenchmarkInsertPipelined measures the batched/pipelined write path
// against the serialized baseline over a modeled-latency disk: rows per
// second to durable at 0 (serial) and 4 flush workers, with one inserter
// and with four concurrent inserters driving the group-commit queue. The
// pipelined/serial ratio is the headline (≥2x with workers); BENCH_3.json
// records a captured run.
func BenchmarkInsertPipelined(b *testing.B) {
	for _, workers := range []int{0, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := ltbench.WriteloadConfig{
				Rows:         6000,
				WorkerCounts: []int{workers},
				Dir:          b.TempDir(),
			}
			for i := 0; i < b.N; i++ {
				res, err := ltbench.RunWriteload(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Series[0].Points[0].Y, "rows/s-1-inserter")
				b.ReportMetric(res.Series[1].Points[0].Y, "rows/s-4-inserters")
			}
		})
	}
}

// BenchmarkNetload measures acked-insert goodput through the pooled wire
// client on a clean link and through a 2%-drop netfault proxy. Every row
// counted was acknowledged end-to-end; the lossy/clean ratio shows what
// retries and reconnects cost.
func BenchmarkNetload(b *testing.B) {
	for _, pool := range []int{1, 4} {
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			cfg := ltbench.NetloadConfig{
				Rows:      4000,
				PoolSizes: []int{pool},
				Dir:       b.TempDir(),
			}
			for i := 0; i < b.N; i++ {
				res, err := ltbench.RunNetload(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Series[0].Points[0].Y, "rows/s-clean")
				b.ReportMetric(res.Series[1].Points[0].Y, "rows/s-lossy")
			}
		})
	}
}

// BenchmarkRouterScatter measures multi-table reads through the shard
// router at reduced scale: the same rows read one table at a time versus
// one scatter-gather prefix query the router fans out to every shard,
// on loopback and on a latency-injected shard link. Scatter beating the
// per-table baseline on the slow link is the headline; BENCH_8.json
// records a captured run.
func BenchmarkRouterScatter(b *testing.B) {
	cfg := ltbench.RouterScatterConfig{
		Tables:       8,
		RowsPerTable: 100,
		Queries:      10,
		Dir:          b.TempDir(),
	}
	for i := 0; i < b.N; i++ {
		res, err := ltbench.RunRouterScatter(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Series[0].Points[1].Y, "rows/s-per-table-slow-link")
		b.ReportMetric(res.Series[1].Points[0].Y, "rows/s-scatter-loopback")
		b.ReportMetric(res.Series[1].Points[1].Y, "rows/s-scatter-slow-link")
	}
}

// BenchmarkMergeParallel measures the concurrent maintenance scheduler
// over a modeled-latency disk: time to merge a backlog of disjoint
// merge-eligible periods to steady state at 1, 2, and 8 workers, plus the
// foreground insert p99 while maintenance runs. Convergence at 8 workers
// vs 1 is the headline (≥2x on 8 periods); BENCH_5.json records a
// captured run.
func BenchmarkMergeParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := ltbench.MaintainConfig{
				TabletsPerPeriod: 4,
				RowsPerTablet:    200,
				WorkerCounts:     []int{workers},
				ForegroundRows:   500,
				Dir:              b.TempDir(),
			}
			for i := 0; i < b.N; i++ {
				res, err := ltbench.RunMaintain(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Series[0].Points[0].Y*1000, "convergence-ms")
				b.ReportMetric(res.Series[1].Points[0].Y, "insert-p99-us")
			}
		})
	}
}

// BenchmarkAblations measures the two design-choice ablations (period-aware
// merging and Bloom filters) against their baselines.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := ltbench.RunAblations(ltbench.AblationConfig{
			Days:       14,
			RowsPerDay: 500,
			Dir:        b.TempDir(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Series[0].Points[0].Y, "scan-ratio-littletable")
		b.ReportMetric(res.Series[0].Points[1].Y, "scan-ratio-baseline")
	}
}

// BenchmarkBlockEncode runs the per-column encoding workload at a reduced
// row count: the same datasets under the legacy and auto block layouts,
// reporting the dense-numeric bytes/row for both so a codec-selection
// regression (auto suddenly falling back to legacy) is visible in CI.
func BenchmarkBlockEncode(b *testing.B) {
	cfg := ltbench.EncodeConfig{Rows: 4000, Dir: b.TempDir()}
	for i := 0; i < b.N; i++ {
		res, err := ltbench.RunEncode(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bytesPerRow := res.Series[0].Points
		b.ReportMetric(bytesPerRow[0].Y, "dense-legacy-B/row")
		b.ReportMetric(bytesPerRow[1].Y, "dense-auto-B/row")
	}
}

// BenchmarkRollup measures the server-side aggregation economics at
// reduced scale: one dashboard window read as raw rows versus one
// AggQuery shipping O(groups) mergeable states, plus the continuous
// rollup fold into a downsampled table. The bytes-to-client reduction
// (≥5x raw/agg) is the headline; BENCH_10.json records a captured run.
func BenchmarkRollup(b *testing.B) {
	cfg := ltbench.RollupConfig{
		Networks:     2,
		Devices:      4,
		Buckets:      6,
		RowsPerGroup: 40,
		Queries:      5,
		Dir:          b.TempDir(),
	}
	for i := 0; i < b.N; i++ {
		res, err := ltbench.RunRollup(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bytes := res.Series[0].Points
		b.ReportMetric(bytes[0].Y/bytes[1].Y, "raw/agg-bytes-ratio")
		b.ReportMetric(bytes[0].Y/bytes[2].Y, "raw/rollup-bytes-ratio")
		b.ReportMetric(res.Series[2].Points[0].Y, "rollup-rows/s")
	}
}
