// Command benchgate compares two `go test -bench` outputs — a base run and
// a head run — and exits nonzero when the head regresses past a threshold.
//
//	benchgate [-max-ratio 2.0] [-max-each 0] base.txt head.txt
//
// It is a deliberately soft gate for CI bench-smoke jobs: single-iteration
// benchmarks on shared runners are noisy, so the gate compares the
// *geometric mean* of the head/base ns-per-op ratios across all benchmarks
// both runs have in common, and only fails when that geomean exceeds
// -max-ratio (default 2.0 — a 2x across-the-board slowdown). Repeated
// measurements of the same benchmark (-count > 1) are averaged first.
// Benchmarks present in only one run are reported and otherwise ignored,
// so adding or renaming a benchmark never blocks the PR that does it.
//
// -max-each, when positive, adds a per-workload gate on top of the
// geomean: any single common benchmark whose head/base ratio exceeds the
// limit fails the run, even if every other workload improved enough to
// pull the geomean under -max-ratio. The geomean catches the slow drift;
// -max-each catches the one workload a change quietly wrecked.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches the standard testing-package benchmark result line:
// name, iteration count, then ns/op. MB/s, B/op, and custom metric columns
// that may follow are irrelevant to the gate and left unmatched.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// parseBench extracts name → mean ns/op from `go test -bench` output,
// averaging repeated measurements of the same benchmark.
func parseBench(text string) map[string]float64 {
	sum := make(map[string]float64)
	n := make(map[string]int)
	for _, line := range strings.Split(text, "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil || v <= 0 {
			continue
		}
		sum[m[1]] += v
		n[m[1]]++
	}
	out := make(map[string]float64, len(sum))
	for name, s := range sum {
		out[name] = s / float64(n[name])
	}
	return out
}

// geomeanRatio returns the geometric mean of head/base over the benchmarks
// common to both runs, plus the sorted names compared. A geometric mean
// keeps one noisy outlier from dominating the way an arithmetic mean of
// ratios would, and is symmetric: a 2x speedup and a 2x slowdown cancel.
func geomeanRatio(base, head map[string]float64) (float64, []string) {
	var names []string
	for name := range base {
		if _, ok := head[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return 0, nil
	}
	var logSum float64
	for _, name := range names {
		logSum += math.Log(head[name] / base[name])
	}
	return math.Exp(logSum / float64(len(names))), names
}

// onlyIn returns the sorted names present in a but not b.
func onlyIn(a, b map[string]float64) []string {
	var names []string
	for name := range a {
		if _, ok := b[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// gate compares the two parsed runs and writes the report; it returns the
// process exit code. No common benchmarks is a pass: the base branch
// predates the benchmarks, so there is nothing to regress against.
// maxEach, when positive, additionally fails any single benchmark whose
// ratio exceeds it.
func gate(base, head map[string]float64, maxRatio, maxEach float64, w io.Writer) int {
	geomean, names := geomeanRatio(base, head)
	if len(names) == 0 {
		fmt.Fprintln(w, "benchgate: no benchmarks in common; nothing to gate")
		return 0
	}
	var overEach []string
	fmt.Fprintf(w, "%-60s %14s %14s %8s\n", "benchmark", "base ns/op", "head ns/op", "ratio")
	for _, name := range names {
		ratio := head[name] / base[name]
		fmt.Fprintf(w, "%-60s %14.0f %14.0f %7.2fx\n", name, base[name], head[name], ratio)
		if maxEach > 0 && ratio > maxEach {
			overEach = append(overEach, fmt.Sprintf("%s (%.2fx)", name, ratio))
		}
	}
	for _, name := range onlyIn(base, head) {
		fmt.Fprintf(w, "%-60s %14.0f %14s\n", name, base[name], "(gone)")
	}
	for _, name := range onlyIn(head, base) {
		fmt.Fprintf(w, "%-60s %14s %14.0f\n", name, "(new)", head[name])
	}
	fmt.Fprintf(w, "geomean ratio over %d common benchmark(s): %.2fx (limit %.2fx)\n",
		len(names), geomean, maxRatio)
	fail := 0
	if geomean > maxRatio {
		fmt.Fprintf(w, "benchgate: FAIL: geomean regression %.2fx exceeds %.2fx\n", geomean, maxRatio)
		fail = 1
	}
	if len(overEach) > 0 {
		fmt.Fprintf(w, "benchgate: FAIL: %d workload(s) exceed the per-workload limit %.2fx: %s\n",
			len(overEach), maxEach, strings.Join(overEach, ", "))
		fail = 1
	}
	if fail == 0 {
		fmt.Fprintln(w, "benchgate: ok")
	}
	return fail
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(errw)
	maxRatio := fs.Float64("max-ratio", 2.0, "fail when the geomean head/base ns-per-op ratio exceeds this")
	maxEach := fs.Float64("max-each", 0, "fail when any single benchmark's head/base ratio exceeds this (0 = geomean only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(errw, "usage: benchgate [-max-ratio 2.0] [-max-each 0] base.txt head.txt")
		return 2
	}
	read := func(path string) (map[string]float64, bool) {
		//ltlint:ignore vfsonly benchgate reads CI bench-output artifacts from the real filesystem, not engine data
		b, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(errw, "benchgate: %v\n", err)
			return nil, false
		}
		return parseBench(string(b)), true
	}
	base, ok := read(fs.Arg(0))
	if !ok {
		return 2
	}
	head, ok := read(fs.Arg(1))
	if !ok {
		return 2
	}
	return gate(base, head, *maxRatio, *maxEach, out)
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
