package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseOut = `goos: linux
goarch: amd64
pkg: littletable
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkQueryParallel/tablets=4-4         	       1	 100000000 ns/op	    500000 rows/s
BenchmarkInsertPipelined/workers=4-4       	       1	 200000000 ns/op
BenchmarkInsertPipelined/workers=4-4       	       1	 400000000 ns/op
BenchmarkGoneInHead-4                      	       1	  50000000 ns/op
PASS
`

func TestParseBench(t *testing.T) {
	got := parseBench(baseOut)
	want := map[string]float64{
		"BenchmarkQueryParallel/tablets=4-4":   100000000,
		"BenchmarkInsertPipelined/workers=4-4": 300000000, // two runs averaged
		"BenchmarkGoneInHead-4":                50000000,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, w := range want {
		if g := got[name]; g != w {
			t.Errorf("%s = %v, want %v", name, g, w)
		}
	}
}

func TestParseBenchIgnoresNoise(t *testing.T) {
	got := parseBench("ok  \tlittletable\t2.877s\n--- BENCH: x\nBenchmarkBad 1 abc ns/op\n")
	if len(got) != 0 {
		t.Fatalf("parsed noise as benchmarks: %v", got)
	}
}

func TestGeomeanRatio(t *testing.T) {
	base := map[string]float64{"a": 100, "b": 100, "onlyBase": 7}
	head := map[string]float64{"a": 200, "b": 50, "onlyHead": 9}
	g, names := geomeanRatio(base, head)
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("common names = %v, want [a b]", names)
	}
	// 2x slowdown and 2x speedup cancel under a geometric mean.
	if math.Abs(g-1.0) > 1e-12 {
		t.Fatalf("geomean = %v, want 1.0", g)
	}
}

func TestGateVerdicts(t *testing.T) {
	base := map[string]float64{"a": 100, "b": 100}
	for _, tc := range []struct {
		name    string
		head    map[string]float64
		max     float64
		maxEach float64
		want    int
	}{
		{"improvement passes", map[string]float64{"a": 50, "b": 50}, 2.0, 0, 0},
		{"mild regression passes", map[string]float64{"a": 150, "b": 150}, 2.0, 0, 0},
		{"big regression fails", map[string]float64{"a": 500, "b": 500}, 2.0, 0, 1},
		{"just over the limit fails", map[string]float64{"a": 201, "b": 201}, 2.0, 0, 1},
		{"no common benchmarks passes", map[string]float64{"c": 1}, 2.0, 0, 0},
		// The per-workload gate: one wrecked workload fails even when a big
		// speedup elsewhere drags the geomean under the limit.
		{"one wrecked workload hides in geomean", map[string]float64{"a": 500, "b": 10}, 2.0, 0, 0},
		{"per-workload gate catches it", map[string]float64{"a": 500, "b": 10}, 2.0, 2.0, 1},
		{"per-workload gate passes balanced runs", map[string]float64{"a": 150, "b": 150}, 2.0, 2.0, 0},
		{"per-workload gate at the boundary passes", map[string]float64{"a": 200, "b": 100}, 2.0, 2.0, 0},
	} {
		var sb strings.Builder
		if got := gate(base, tc.head, tc.max, tc.maxEach, &sb); got != tc.want {
			t.Errorf("%s: exit = %d, want %d\n%s", tc.name, got, tc.want, sb.String())
		}
	}
}

func TestGatePerWorkloadReport(t *testing.T) {
	base := map[string]float64{"a": 100, "b": 100}
	head := map[string]float64{"a": 300, "b": 20}
	var sb strings.Builder
	if got := gate(base, head, 2.0, 2.0, &sb); got != 1 {
		t.Fatalf("exit = %d, want 1\n%s", got, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "per-workload limit") || !strings.Contains(out, "a (3.00x)") {
		t.Errorf("report missing per-workload detail:\n%s", out)
	}
	if strings.Contains(out, "b (") {
		t.Errorf("report blames the improved workload:\n%s", out)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.txt")
	headPath := filepath.Join(dir, "head.txt")
	if err := os.WriteFile(basePath, []byte(baseOut), 0o644); err != nil {
		t.Fatal(err)
	}
	head := strings.ReplaceAll(baseOut, "BenchmarkGoneInHead-4", "BenchmarkNewInHead-4")
	if err := os.WriteFile(headPath, []byte(head), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw strings.Builder
	if got := run([]string{basePath, headPath}, &out, &errw); got != 0 {
		t.Fatalf("identical runs: exit %d\nout: %s\nerr: %s", got, out.String(), errw.String())
	}
	for _, want := range []string{"benchgate: ok", "(gone)", "(new)", "geomean ratio over 2 common"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	var sb strings.Builder
	if got := run([]string{"-max-ratio", "0.5", basePath, headPath}, &sb, &errw); got != 1 {
		t.Fatalf("ratio 1.0 vs limit 0.5: exit %d, want 1\n%s", got, sb.String())
	}

	if got := run([]string{basePath}, &sb, &errw); got != 2 {
		t.Fatalf("missing arg: exit %d, want 2", got)
	}
	if got := run([]string{filepath.Join(dir, "absent.txt"), headPath}, &sb, &errw); got != 2 {
		t.Fatalf("unreadable base: exit %d, want 2", got)
	}
}
