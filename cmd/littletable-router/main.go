// Command littletable-router runs the stateless routing tier in front of
// a set of littletabled shards. It places each table on a shard by
// consistent hashing (plus a persisted override map maintained by live
// migrations), proxies table-scoped requests, and scatter-gathers
// multi-table operations. Clients speak the ordinary wire protocol to
// the router exactly as they would to a single server.
//
// Usage:
//
//	littletable-router -addr :9255 -shards host1:9155,host2:9155,host3:9155
//
// Any number of router instances may run with the same -shards list and
// -root; they route identically.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"littletable/internal/client"
	"littletable/internal/router"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:9255", "TCP listen address")
		shards      = flag.String("shards", "", "comma-separated shard addresses (required)")
		root        = flag.String("root", "", "directory for the persisted placement override map (empty = in-memory)")
		vnodes      = flag.Int("vnodes", 0, "virtual nodes per shard on the hash ring (0 = default)")
		probe       = flag.Duration("probe-interval", 0, "shard health probe period (0 = default)")
		rateLimit   = flag.Float64("rate-limit", 0, "per-tenant data-path requests/second (0 = unlimited)")
		rateBurst   = flag.Int("rate-burst", 0, "per-tenant token-bucket burst (0 = derived from -rate-limit)")
		scatterConc = flag.Int("scatter-concurrency", 0, "shards queried concurrently per scatter operation (0 = default)")
		poolSize    = flag.Int("pool-size", 0, "connections pooled per shard (0 = default)")
		reqTimeout  = flag.Duration("request-timeout", 0, "deadline per proxied request including retries (0 = none)")
		readTO      = flag.Duration("read-timeout", 0, "drop a client connection idle longer than this (0 = no deadline)")
		writeTO     = flag.Duration("write-timeout", 0, "drop a client connection whose response write stalls this long (0 = no deadline)")
		maxRequest  = flag.Int("max-request-bytes", 0, "cap a single request frame (0 = protocol max)")
		metricsAddr = flag.String("metrics-addr", "", "optional HTTP listen address for /metrics and /healthz")
	)
	flag.Parse()

	var shardList []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shardList = append(shardList, s)
		}
	}
	if len(shardList) == 0 {
		log.Fatal("littletable-router: -shards is required")
	}

	r, err := router.New(router.Options{
		Shards:             shardList,
		VirtualNodes:       *vnodes,
		Root:               *root,
		ProbeInterval:      *probe,
		ScatterConcurrency: *scatterConc,
		RateLimit:          *rateLimit,
		RateBurst:          *rateBurst,
		ReadTimeout:        *readTO,
		WriteTimeout:       *writeTO,
		MaxRequestBytes:    *maxRequest,
		Client: client.Options{
			PoolSize:       *poolSize,
			RequestTimeout: *reqTimeout,
		},
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatalf("littletable-router: %v", err)
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("littletable-router: listen: %v", err)
	}
	log.Printf("littletable-router: routing %d shards on %s", len(shardList), lis.Addr())

	if *metricsAddr != "" {
		go func() {
			log.Printf("littletable-router: metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, r.MetricsHandler()); err != nil {
				log.Printf("littletable-router: metrics: %v", err)
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := r.Serve(lis); err != nil {
			log.Printf("littletable-router: serve: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("littletable-router: shutting down")
	if err := r.Close(); err != nil {
		log.Printf("littletable-router: close: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
	}
}
