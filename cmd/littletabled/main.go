// Command littletabled runs the LittleTable server: an independent process
// owning a directory of tables and serving the wire protocol over TCP
// (§3.1). Applications connect through the client adaptor or the ltsql
// shell.
//
// Usage:
//
//	littletabled -root /var/lib/littletable -addr :9155
//
// On SIGINT/SIGTERM the server drains: it stops accepting connections,
// lets in-flight requests finish (up to -drain-timeout), then closes. By
// default it does NOT flush in-memory tablets on shutdown — the
// durability contract is that recently-written data is re-readable from
// its source (§2.3.4) — but -flush-on-exit opts into a clean flush.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"littletable"
	"littletable/internal/block"
)

func main() {
	var (
		root        = flag.String("root", "./littletable-data", "data directory (one subdirectory per table)")
		addr        = flag.String("addr", "127.0.0.1:9155", "TCP listen address")
		maintenance = flag.Duration("maintenance", time.Second, "background maintenance interval (flush/merge/TTL)")
		rowLimit    = flag.Int("query-row-limit", 0, "rows per query response before more-available (0 = default)")
		flushOnExit = flag.Bool("flush-on-exit", false, "flush all memtables before exiting")
		metricsAddr = flag.String("metrics-addr", "", "optional HTTP listen address for /metrics and /healthz")
		noCompress  = flag.Bool("no-compression", false, "disable block compression")
		noBloom     = flag.Bool("no-bloom", false, "disable per-tablet Bloom filters")
		sync        = flag.Bool("sync", false, "fsync tablet and descriptor writes")
		verifyOpen  = flag.Bool("verify-on-open", false, "checksum every tablet block at open; corrupt tablets are quarantined")
		readTO      = flag.Duration("read-timeout", 0, "drop a connection idle longer than this (0 = no deadline)")
		writeTO     = flag.Duration("write-timeout", 0, "drop a connection whose response write stalls this long (0 = no deadline)")
		maxRequest  = flag.Int("max-request-bytes", 0, "cap a single request frame (0 = protocol max)")
		queryPar    = flag.Int("query-parallelism", 0, "tablet sources a query opens concurrently (0 = default, <0 = serial)")
		prefetch    = flag.Int("prefetch-depth", 0, "blocks each tablet source reads ahead (0 = default, <0 = off)")
		cacheBytes  = flag.Int64("block-cache-bytes", 0, "per-table LRU cache over parsed blocks, in bytes (0 = off)")
		flushWork   = flag.Int("flush-workers", 0, "background flush workers per table (0 = synchronous flushing)")
		mergeWork   = flag.Int("merge-workers", 0, "background maintenance workers per table running merges and TTL expiry concurrently (0 = serial maintenance in the tick loop)")
		maintIO     = flag.Int64("maintenance-io-bytes-per-sec", 0, "token-bucket cap on maintenance I/O bytes per second, shared across a table's workers (0 = unlimited)")
		insertBatch = flag.Int("insert-batch", 0, "rows applied per table-lock acquisition on insert (0 = default, <0 = row-at-a-time)")
		maxUnflush  = flag.Int64("max-unflushed-bytes", 0, "sealed-but-unflushed bytes before inserts stall (0 = default, <0 = unlimited)")
		drainTO     = flag.Duration("drain-timeout", 10*time.Second, "on SIGINT/SIGTERM, wait this long for in-flight requests before closing (0 = close immediately)")
		maxInFlight = flag.Int("max-in-flight", 0, "shed requests beyond this many concurrently in flight with a retryable Overloaded refusal (0 = unlimited)")
		blockEnc    = flag.String("block-encoding", "auto", "block encoding for new tablets: auto (per-column codecs when smaller) or legacy (pre-columnar row-major images)")
	)
	flag.Parse()

	opts := littletable.ServerOptions{
		Root:                *root,
		MaintenanceInterval: *maintenance,
		QueryRowLimit:       *rowLimit,
		ReadTimeout:         *readTO,
		WriteTimeout:        *writeTO,
		MaxRequestBytes:     *maxRequest,
		MaxInFlight:         *maxInFlight,
	}
	opts.Core.DisableCompression = *noCompress
	opts.Core.DisableBloom = *noBloom
	opts.Core.SyncWrites = *sync
	opts.Core.VerifyOnOpen = *verifyOpen
	opts.Core.QueryParallelism = *queryPar
	opts.Core.PrefetchDepth = *prefetch
	opts.Core.BlockCacheBytes = *cacheBytes
	opts.Core.FlushWorkers = *flushWork
	opts.Core.MergeWorkers = *mergeWork
	opts.Core.MaintenanceIOBytesPerSec = *maintIO
	opts.Core.InsertBatch = *insertBatch
	opts.Core.MaxUnflushedBytes = *maxUnflush
	switch *blockEnc {
	case "auto":
		opts.Core.BlockEncoding = block.ModeAuto
	case "legacy":
		opts.Core.BlockEncoding = block.ModeLegacy
	default:
		log.Fatalf("littletabled: -block-encoding must be auto or legacy, got %q", *blockEnc)
	}

	srv, err := littletable.NewServer(opts)
	if err != nil {
		log.Fatalf("littletabled: %v", err)
	}
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("littletabled: listen: %v", err)
	}
	log.Printf("littletabled: serving %s on %s (%d tables)", *root, lis.Addr(), len(srv.TableNames()))

	if *metricsAddr != "" {
		go func() {
			log.Printf("littletabled: metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, srv.MetricsHandler()); err != nil {
				log.Printf("littletabled: metrics: %v", err)
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(lis); err != nil {
			log.Printf("littletabled: serve: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	if *drainTO > 0 {
		log.Printf("littletabled: draining (timeout %v)", *drainTO)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		if err := srv.Drain(ctx); err != nil {
			log.Printf("littletabled: drain: %v", err)
		}
		cancel()
	} else {
		log.Printf("littletabled: shutting down")
	}
	if *flushOnExit {
		if err := srv.FlushAllTables(); err != nil {
			log.Printf("littletabled: flush on exit: %v", err)
		}
	}
	if err := srv.Close(); err != nil {
		log.Printf("littletabled: close: %v", err)
	}
	<-done
}
