package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"littletable"
)

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "littletabled")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// TestDaemonServesAndShutsDown starts the real daemon process, drives it
// over the wire, and stops it with SIGTERM.
func TestDaemonServesAndShutsDown(t *testing.T) {
	bin := buildDaemon(t)
	root := t.TempDir()
	addr := "127.0.0.1:39155"
	cmd := exec.Command(bin, "-root", root, "-addr", addr, "-flush-on-exit")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	// Wait for the listener.
	var c *littletable.Client
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		c, err = littletable.Dial(addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never listened: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer c.Close()

	sc := littletable.MustSchema([]littletable.Column{
		{Name: "k", Type: littletable.Int64},
		{Name: "ts", Type: littletable.Timestamp},
	}, []string{"k", "ts"})
	if err := c.CreateTable("t", sc, 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.InsertNow([]littletable.Row{{
		littletable.NewInt64(1), littletable.NewTimestamp(littletable.Now()),
	}}); err != nil {
		t.Fatal(err)
	}

	// Graceful shutdown; -flush-on-exit makes the row durable.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit on SIGTERM")
	}
	cmd.Process = nil

	// The flushed row survives a daemon restart (open the dir directly).
	tab2, err := littletable.OpenTable(root, "t", littletable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tab2.Close()
	rows, err := tab2.QueryAll(littletable.NewQuery())
	if err != nil || len(rows) != 1 {
		t.Fatalf("after restart: %d rows, %v", len(rows), err)
	}
}

// TestDaemonDrainsIdleConnsPromptly proves the SIGTERM drain does not
// wait out -drain-timeout when connected clients are merely idle: idle
// connections are closed immediately and the process exits, leaving the
// client with a typed disconnect.
func TestDaemonDrainsIdleConnsPromptly(t *testing.T) {
	bin := buildDaemon(t)
	addr := "127.0.0.1:39156"
	cmd := exec.Command(bin, "-root", t.TempDir(), "-addr", addr,
		"-drain-timeout", "30s", "-max-in-flight", "64")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	var c *littletable.Client
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		c, err = littletable.Dial(addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never listened: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer c.Close()
	if _, err := c.ListTables(); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon sat out the drain timeout on idle connections")
	}
	cmd.Process = nil
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("drain of idle conns took %v", elapsed)
	}
	if _, err := c.ListTables(); !errors.Is(err, littletable.ErrClientDisconnected) {
		t.Fatalf("after drain: %v, want ErrClientDisconnected", err)
	}
}
