// Command ltbench regenerates every table and figure from the paper's
// evaluation section (§5). Each subcommand runs one experiment and prints
// its series; `ltbench all` runs the full suite. EXPERIMENTS.md records a
// captured run against the paper's numbers.
//
// Usage:
//
//	ltbench headline
//	ltbench fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | fig8 | fig9 | fig10
//	ltbench rates | appendix
//	ltbench all
//	ltbench -full fig5     # paper-scale parameters (slow)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"littletable/internal/ltbench"
)

func main() {
	full := flag.Bool("full", false, "run at paper-scale parameters (slow)")
	asJSON := flag.Bool("json", false, "emit results as JSON (for plotting pipelines)")
	outPath := flag.String("out", "", "also write results as a JSON array to this file")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	var collected []*ltbench.Result
	run := func(name string) error {
		res, err := dispatch(name, *full)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		collected = append(collected, res)
		if *asJSON {
			return res.FprintJSON(os.Stdout)
		}
		res.Print()
		fmt.Println()
		return nil
	}
	names := args
	if len(args) == 1 && args[0] == "all" {
		names = []string{
			"headline", "fig2", "fig3", "fig4", "fig5", "fig6",
			"fig7", "fig8", "fig9", "fig10", "rates", "appendix", "ablations",
			"parallel", "writeload", "maintain", "netload", "encode",
			"routerscatter", "rollup",
		}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "ltbench: %v\n", err)
			os.Exit(1)
		}
	}
	if *outPath != "" {
		b, err := json.MarshalIndent(collected, "", "  ")
		if err == nil {
			//ltlint:ignore vfsonly the -o results file is operator output on the real filesystem, not engine data
			err = os.WriteFile(*outPath, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ltbench: write %s: %v\n", *outPath, err)
			os.Exit(1)
		}
	}
}

func dispatch(name string, full bool) (*ltbench.Result, error) {
	switch name {
	case "headline":
		return ltbench.RunHeadline("")
	case "fig2":
		cfg := ltbench.Fig2Config{}
		if full {
			cfg.BytesPerRun = 500 << 20
		}
		return ltbench.RunFig2(cfg)
	case "fig3":
		cfg := ltbench.Fig3Config{}
		if full {
			cfg.TotalBytes = 16 << 30
			cfg.FlushSize = 16 << 20
			cfg.MaxTabletSize = 128 << 20
			cfg.MaxPending = 100
		}
		return ltbench.RunFig3(cfg)
	case "fig4":
		cfg := ltbench.Fig4Config{}
		if full {
			cfg.BytesPerWriter = 500 << 20
		}
		return ltbench.RunFig4(cfg)
	case "fig5":
		cfg := ltbench.Fig5Config{}
		if full {
			cfg.TotalBytes = 2 << 30
		}
		return ltbench.RunFig5(cfg)
	case "fig6":
		cfg := ltbench.Fig6Config{}
		if full {
			cfg.TabletBytes = 16 << 20
		}
		return ltbench.RunFig6(cfg)
	case "fig7":
		return ltbench.RunFig7(0, 1), nil
	case "fig8":
		return ltbench.RunFig8(0, 2), nil
	case "fig9":
		cfg := ltbench.Fig9Config{}
		if full {
			cfg.Tables = 40
			cfg.Samples = 2000
			cfg.Queries = 500
		}
		return ltbench.RunFig9(cfg)
	case "fig10":
		return ltbench.RunFig10(20000, 3), nil
	case "rates":
		cfg := ltbench.RatesConfig{}
		if full {
			cfg.Networks = 16
			cfg.DevicesPerNet = 25
			cfg.SimulatedHours = 24
		}
		return ltbench.RunRates(cfg)
	case "ablations":
		cfg := ltbench.AblationConfig{}
		if full {
			cfg.Days = 90
			cfg.RowsPerDay = 20000
		}
		return ltbench.RunAblations(cfg)
	case "appendix":
		cfg := ltbench.AppendixConfig{}
		if full {
			cfg.Flushes = 512
		}
		return ltbench.RunAppendix(cfg)
	case "parallel":
		cfg := ltbench.ParallelConfig{}
		if full {
			cfg.RowsPerTablet = 8000
			cfg.TabletCounts = []int{1, 4, 16, 64, 128}
		}
		return ltbench.RunParallel(cfg)
	case "writeload":
		cfg := ltbench.WriteloadConfig{}
		if full {
			cfg.Rows = 48000
			cfg.WorkerCounts = []int{0, 1, 2, 4, 8}
		}
		return ltbench.RunWriteload(cfg)
	case "netload":
		cfg := ltbench.NetloadConfig{}
		if full {
			cfg.Rows = 32000
			cfg.PoolSizes = []int{1, 2, 4, 8, 16}
			cfg.Inserters = 8
		}
		return ltbench.RunNetload(cfg)
	case "encode":
		cfg := ltbench.EncodeConfig{}
		if full {
			cfg.Rows = 200000
		}
		return ltbench.RunEncode(cfg)
	case "routerscatter":
		cfg := ltbench.RouterScatterConfig{}
		if full {
			cfg.Shards = 5
			cfg.Tables = 50
			cfg.RowsPerTable = 1000
			cfg.Queries = 100
		}
		return ltbench.RunRouterScatter(cfg)
	case "rollup":
		cfg := ltbench.RollupConfig{}
		if full {
			cfg.Networks = 8
			cfg.Devices = 16
			cfg.Buckets = 30
			cfg.RowsPerGroup = 40
			cfg.Queries = 50
		}
		return ltbench.RunRollup(cfg)
	case "maintain":
		cfg := ltbench.MaintainConfig{}
		if full {
			cfg.Periods = 16
			cfg.TabletsPerPeriod = 8
			cfg.RowsPerTablet = 1000
			cfg.WorkerCounts = []int{1, 2, 4, 8, 16}
		}
		return ltbench.RunMaintain(cfg)
	default:
		return nil, fmt.Errorf("unknown experiment %q", name)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `ltbench regenerates the paper's evaluation figures.

usage: ltbench [-full] <experiment>...
experiments: headline fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 rates appendix ablations parallel writeload maintain netload encode routerscatter rollup all`)
}
