// Command ltlint runs LittleTable's project-specific static analyzers
// over the whole module and exits non-zero on any finding. It is the
// compile-time half of the paper's correctness argument: §5's durability
// and recovery guarantees are re-proven on every commit by the crash
// harness, but only for code paths the harness can see — ltlint pins the
// disciplines (vfs-only I/O, checked barriers, threaded contexts, lock
// hygiene, counter lockstep) that keep every path visible.
//
// Usage:
//
//	go run ./cmd/ltlint ./...
//
// The package pattern argument is accepted for familiarity but the tool
// always analyzes the enclosing module in full — the rules it enforces
// are whole-program properties. Flags:
//
//	-list        print the analyzers and exit
//	-rules a,b   run only the named analyzers
//
// Suppress a finding inline with
//
//	//ltlint:ignore <rule> <reason>
//
// on the offending line or the line above. The reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"littletable/internal/ltlint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	rules := flag.String("rules", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Parse()

	analyzers := ltlint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *rules != "" {
		want := make(map[string]bool)
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var sel []*ltlint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for r := range want {
			fmt.Fprintf(os.Stderr, "ltlint: unknown analyzer %q\n", r)
			os.Exit(2)
		}
		analyzers = sel
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := ltlint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	prog, err := ltlint.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	diags, err := ltlint.Run(prog, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		// Print module-relative paths: stable across machines and
		// clickable from the repo root, where CI runs the tool.
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ltlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
