// Command ltlint runs LittleTable's project-specific static analyzers
// over the whole module and exits non-zero on any finding. It is the
// compile-time half of the paper's correctness argument: §5's durability
// and recovery guarantees are re-proven on every commit by the crash
// harness, but only for code paths the harness can see — ltlint pins the
// disciplines (vfs-only I/O, checked barriers, threaded contexts, lock
// hygiene, counter lockstep, retry safety, wire exhaustiveness, lock
// ordering, atomic persistence, goroutine tracking) that keep every
// path visible.
//
// Usage:
//
//	go run ./cmd/ltlint ./...
//
// The package pattern argument is accepted for familiarity but the tool
// always analyzes the enclosing module in full — the rules it enforces
// are whole-program properties. Flags:
//
//	-list                 print the analyzers and exit
//	-rules a,b            run only the named analyzers
//	-json                 emit findings as a JSON array on stdout
//	-sarif FILE           also write findings as SARIF 2.1.0 to FILE
//	-baseline FILE        filter findings against a checked-in baseline;
//	                      stale entries are reported on stderr
//	-write-baseline FILE  record current findings as the new baseline
//	                      and exit 0
//	-check-stale-ignores  also fail on //ltlint:ignore directives that
//	                      suppress nothing (full-suite runs only)
//
// Suppress a finding inline with
//
//	//ltlint:ignore <rule> <reason>
//
// on the offending line or the line above. The reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"littletable/internal/ltlint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and exit")
	rules := flag.String("rules", "", "comma-separated subset of analyzers to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	sarifPath := flag.String("sarif", "", "write findings as SARIF 2.1.0 to this file")
	baselinePath := flag.String("baseline", "", "filter findings against this baseline file")
	writeBaseline := flag.String("write-baseline", "", "record current findings to this baseline file and exit 0")
	staleIgnores := flag.Bool("check-stale-ignores", false, "fail on ignore directives that suppress nothing")
	flag.Parse()

	analyzers := ltlint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	partial := *rules != ""
	if partial {
		if *staleIgnores {
			// A partial run trivially leaves other rules' directives
			// unconsumed; the audit would be all noise.
			fmt.Fprintln(os.Stderr, "ltlint: -check-stale-ignores requires the full suite (drop -rules)")
			os.Exit(2)
		}
		want := make(map[string]bool)
		for _, r := range strings.Split(*rules, ",") {
			want[strings.TrimSpace(r)] = true
		}
		var sel []*ltlint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for r := range want {
			fmt.Fprintf(os.Stderr, "ltlint: unknown analyzer %q\n", r)
			os.Exit(2)
		}
		analyzers = sel
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := ltlint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	prog, err := ltlint.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	res, err := ltlint.RunAll(prog, analyzers)
	if err != nil {
		fatal(err)
	}
	diags := res.Diags

	// Module-relative paths: stable across machines and clickable from
	// the repo root, where CI runs the tool.
	rel := func(abs string) string {
		if r, err := filepath.Rel(root, abs); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return filepath.ToSlash(abs)
	}

	if *writeBaseline != "" {
		b := ltlint.NewBaseline(diags, rel)
		if err := b.Save(*writeBaseline); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ltlint: wrote %d finding(s) to baseline %s\n", len(b.Findings), *writeBaseline)
		return
	}

	failed := false
	if *baselinePath != "" {
		b, err := ltlint.LoadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		var stale []ltlint.BaselineEntry
		diags, stale = b.Filter(diags, rel)
		for _, e := range stale {
			// A stale entry means the legacy finding was fixed: delete it
			// so the ratchet tightens. Reported as a failure, not a
			// warning — otherwise baselines only ever grow.
			fmt.Fprintf(os.Stderr, "ltlint: stale baseline entry: %s: %s: %s\n", e.File, e.Rule, e.Message)
			failed = true
		}
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fatal(err)
		}
		if err := ltlint.WriteSARIF(f, analyzers, diags, rel); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		if err := ltlint.WriteJSON(os.Stdout, diags, rel); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			d.Pos.Filename = rel(d.Pos.Filename)
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ltlint: %d finding(s)\n", len(diags))
		failed = true
	}

	if *staleIgnores {
		for _, d := range res.StaleIgnores() {
			fmt.Fprintf(os.Stderr, "ltlint: stale ignore at %s:%d: directive for %s suppresses nothing\n",
				rel(d.Pos.Filename), d.Pos.Line, strings.Join(d.Rules, ","))
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
