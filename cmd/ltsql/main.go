// Command ltsql is LittleTable's interactive SQL shell. It connects to a
// littletabled server over the wire protocol (the deployment of §3.1) or
// opens a data directory directly with an embedded server (-root).
//
// Usage:
//
//	ltsql -addr 127.0.0.1:9155
//	ltsql -root ./littletable-data
//	echo 'SELECT COUNT(*) FROM usage' | ltsql -addr ... -q -
//	ltsql -addr ... -q 'SHOW TABLES'
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"littletable"
	"littletable/internal/ltval"
)

func main() {
	var (
		addr  = flag.String("addr", "", "server address to connect to")
		root  = flag.String("root", "", "open this data directory with an embedded server instead")
		query = flag.String("q", "", "execute one statement and exit ('-' reads statements from stdin)")
	)
	flag.Parse()

	var eng *littletable.SQLEngine
	switch {
	case *root != "":
		srv, err := littletable.NewServer(littletable.ServerOptions{Root: *root})
		if err != nil {
			log.Fatalf("ltsql: %v", err)
		}
		defer srv.Close()
		eng = littletable.NewSQLOverServer(srv)
	case *addr != "":
		c, err := littletable.Dial(*addr)
		if err != nil {
			log.Fatalf("ltsql: %v", err)
		}
		defer c.Close()
		eng = littletable.NewSQLOverClient(c)
	default:
		log.Fatal("ltsql: one of -addr or -root is required")
	}

	switch {
	case *query == "-":
		runStream(eng, os.Stdin, false)
	case *query != "":
		if !runOne(eng, *query) {
			os.Exit(1)
		}
	default:
		fmt.Println("LittleTable SQL shell. End statements with ';'. Ctrl-D exits.")
		runStream(eng, os.Stdin, true)
	}
}

// runStream reads ';'-separated statements and executes each.
func runStream(eng *littletable.SQLEngine, r io.Reader, prompt bool) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var sb strings.Builder
	if prompt {
		fmt.Print("lt> ")
	}
	for sc.Scan() {
		line := sc.Text()
		sb.WriteString(line)
		sb.WriteByte('\n')
		if strings.Contains(line, ";") {
			stmt := strings.TrimSpace(sb.String())
			sb.Reset()
			if stmt != "" && stmt != ";" {
				runOne(eng, stmt)
			}
		}
		if prompt {
			if sb.Len() == 0 {
				fmt.Print("lt> ")
			} else {
				fmt.Print("  > ")
			}
		}
	}
	if rest := strings.TrimSpace(sb.String()); rest != "" {
		runOne(eng, rest)
	}
	if prompt {
		fmt.Println()
	}
}

func runOne(eng *littletable.SQLEngine, stmt string) bool {
	res, err := eng.Exec(stmt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return false
	}
	printResult(res)
	return true
}

// printResult renders a result as an aligned text table.
func printResult(res *littletable.SQLResult) {
	if len(res.Columns) == 0 {
		if res.RowsAffected > 0 {
			fmt.Printf("ok (%d rows)\n", res.RowsAffected)
		} else {
			fmt.Println("ok")
		}
		return
	}
	cells := make([][]string, 0, len(res.Rows)+1)
	cells = append(cells, res.Columns)
	for _, row := range res.Rows {
		line := make([]string, len(row))
		for i, v := range row {
			line[i] = renderValue(v)
		}
		cells = append(cells, line)
	}
	widths := make([]int, len(res.Columns))
	for _, line := range cells {
		for i, c := range line {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for rowIdx, line := range cells {
		var sb strings.Builder
		for i, c := range line {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Println(strings.TrimRight(sb.String(), " "))
		if rowIdx == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			fmt.Println(strings.Repeat("-", total-2))
		}
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}

func renderValue(v littletable.Value) string {
	switch v.Type {
	case ltval.String:
		return string(v.Bytes)
	case ltval.Blob:
		if len(v.Bytes) > 16 {
			return fmt.Sprintf("x'%x…' (%dB)", v.Bytes[:16], len(v.Bytes))
		}
		return fmt.Sprintf("x'%x'", v.Bytes)
	default:
		return v.String()
	}
}
