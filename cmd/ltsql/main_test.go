package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLtsql compiles the binary once per test run.
func buildLtsql(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ltsql")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, stdin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestLtsqlEmbeddedEndToEnd(t *testing.T) {
	bin := buildLtsql(t)
	root := t.TempDir()
	// Create + insert + query via -q - (stdin statements).
	// Omitted timestamps get the current time (§3.1) — necessary here
	// because the table has a TTL that would expire epoch-era literals.
	script := `
CREATE TABLE usage (network int64, device int64, ts timestamp, rate double,
  PRIMARY KEY (network, device, ts)) TTL 30 d;
INSERT INTO usage (network, device, rate) VALUES (1, 1, 2.5);
INSERT INTO usage (network, device, rate) VALUES (1, 2, 3.5);
SELECT device, rate FROM usage WHERE network = 1;
FLUSH TABLE usage; -- without it, exit would legitimately drop the rows
`
	out, err := run(t, bin, script, "-root", root, "-q", "-")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "2.5") || !strings.Contains(out, "3.5") {
		t.Fatalf("query output missing rows:\n%s", out)
	}
	if !strings.Contains(out, "(2 rows)") {
		t.Fatalf("row count missing:\n%s", out)
	}
	// The data directory persists: a second invocation sees the table.
	out, err = run(t, bin, "", "-root", root, "-q", "SELECT COUNT(*) FROM usage")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "2") {
		t.Fatalf("persisted count wrong:\n%s", out)
	}
}

func TestLtsqlReportsErrors(t *testing.T) {
	bin := buildLtsql(t)
	out, err := run(t, bin, "", "-root", t.TempDir(), "-q", "SELEC nonsense")
	if err == nil {
		t.Fatalf("bad SQL exited zero:\n%s", out)
	}
	if !strings.Contains(out, "error") {
		t.Fatalf("no error message:\n%s", out)
	}
	// No connection target at all.
	if out, err := run(t, bin, "", "-q", "SELECT 1"); err == nil {
		t.Fatalf("missing -addr/-root accepted:\n%s", out)
	}
}
