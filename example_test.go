package littletable_test

import (
	"fmt"
	"log"
	"os"

	"littletable"
)

// Example shows the embedded engine end to end: create a two-dimensionally
// clustered table, insert measurements, and query a rectangle of one
// device over a time window.
func Example() {
	dir, err := os.MkdirTemp("", "lt-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sc := littletable.MustSchema([]littletable.Column{
		{Name: "network", Type: littletable.Int64},
		{Name: "device", Type: littletable.Int64},
		{Name: "ts", Type: littletable.Timestamp},
		{Name: "rate", Type: littletable.Double},
	}, []string{"network", "device", "ts"})

	tab, err := littletable.CreateTable(dir, "usage", sc, 0, littletable.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer tab.Close()

	base := int64(1_750_000_000_000_000) // a fixed instant, µs since epoch
	for i := int64(0); i < 5; i++ {
		err := tab.Insert([]littletable.Row{{
			littletable.NewInt64(1),
			littletable.NewInt64(7),
			littletable.NewTimestamp(base + i*littletable.Minute),
			littletable.NewDouble(float64(100 + i)),
		}})
		if err != nil {
			log.Fatal(err)
		}
	}

	q := littletable.NewQuery()
	q.Lower = []littletable.Value{littletable.NewInt64(1), littletable.NewInt64(7)}
	q.Upper = q.Lower // prefix bound: network 1, device 7
	q.MinTs = base + 1*littletable.Minute
	q.MaxTs = base + 3*littletable.Minute
	rows, err := tab.QueryAll(q)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("minute %d: %.0f B/s\n", (r[2].Int-base)/littletable.Minute, r[3].Float)
	}
	// Output:
	// minute 1: 101 B/s
	// minute 2: 102 B/s
	// minute 3: 103 B/s
}

// ExampleSQLEngine shows the SQL front end over an embedded server.
func ExampleSQLEngine() {
	dir, err := os.MkdirTemp("", "lt-sql-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	srv, err := littletable.NewServer(littletable.ServerOptions{Root: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	eng := littletable.NewSQLOverServer(srv)
	statements := []string{
		`CREATE TABLE events (net int64, ts timestamp, kind string,
		   PRIMARY KEY (net, ts))`,
		// Explicit timestamps: two rows for one network in the same batch
		// would otherwise share the server-assigned time and collide on
		// the primary key.
		`INSERT INTO events VALUES (1, 1750000000000000, 'assoc'),
		   (1, 1750000060000000, 'dhcp'), (2, 1750000000000000, 'assoc')`,
	}
	for _, s := range statements {
		if _, err := eng.Exec(s); err != nil {
			log.Fatal(err)
		}
	}
	res, err := eng.Exec(`SELECT net, COUNT(*) FROM events GROUP BY net`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("network %d: %d events\n", row[0].Int, row[1].Int)
	}
	// Output:
	// network 1: 2 events
	// network 2: 1 events
}

// ExampleTable_LatestRow shows the latest-row-for-prefix lookup (§3.4.5 of
// the paper): the single most recent measurement for a device.
func ExampleTable_LatestRow() {
	dir, err := os.MkdirTemp("", "lt-latest-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sc := littletable.MustSchema([]littletable.Column{
		{Name: "device", Type: littletable.Int64},
		{Name: "ts", Type: littletable.Timestamp},
		{Name: "counter", Type: littletable.Int64},
	}, []string{"device", "ts"})
	tab, err := littletable.CreateTable(dir, "counters", sc, 0, littletable.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer tab.Close()

	base := int64(1_750_000_000_000_000)
	for i := int64(0); i < 3; i++ {
		tab.Insert([]littletable.Row{{
			littletable.NewInt64(7),
			littletable.NewTimestamp(base + i*littletable.Hour),
			littletable.NewInt64(1000 * (i + 1)),
		}})
	}
	row, found, err := tab.LatestRow([]littletable.Value{littletable.NewInt64(7)})
	if err != nil || !found {
		log.Fatal(err)
	}
	fmt.Printf("latest counter: %d\n", row[2].Int)
	// Output:
	// latest counter: 3000
}
