// Event logs: the paper's second application (§4.2) end to end.
//
// Devices assign events unique ids from a monotonic counter; EventsGrabber
// tracks the most recent id per device, polls for anything newer, and
// stores events keyed by (network, device, ts). The example then runs the
// two recovery paths of §4.2: a restart with recent rows in the recovery
// window, and a device that was offline so long its last stored row is far
// beyond the window — resolved via the latest-row-for-prefix search of
// §3.4.5, backed by the engine's backward group walk and Bloom filters.
//
//	go run ./examples/eventlogs
package main

import (
	"fmt"
	"log"
	"os"

	"littletable"
	"littletable/internal/apps"
	"littletable/internal/apps/events"
	"littletable/internal/clock"
	"littletable/internal/devicesim"
)

func main() {
	//ltlint:ignore vfsonly example provisions its demo directory on the real filesystem
	dir, err := os.MkdirTemp("", "littletable-events")
	if err != nil {
		log.Fatal(err)
	}
	//ltlint:ignore vfsonly demo directory cleanup
	defer os.RemoveAll(dir)

	start := littletable.Now()
	clk := clock.NewFake(start)
	fleet := devicesim.NewFleet(clk, 7)
	for dev := int64(1); dev <= 4; dev++ {
		fleet.AddDevice(dev, 200, "access_point")
	}

	tab, err := littletable.CreateTable(dir, "events", events.Schema(), 0,
		littletable.Options{Clock: clk})
	if err != nil {
		log.Fatal(err)
	}
	defer tab.Close()

	grabber := events.New(&apps.CoreStore{T: tab}, fleet, clk)
	grabber.SentinelPeriod = events.DefaultSentinelPeriod

	// Six simulated hours of activity, polled every five minutes.
	for m := 0; m < 6*12; m++ {
		clk.Advance(5 * clock.Minute)
		fleet.AdvanceAll()
		if err := grabber.Poll(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("stored %d event rows from %d devices over 6 simulated hours\n",
		grabber.RowsInserted, len(fleet.Devices()))

	// Dashboard's event browser: newest events for one device.
	q := littletable.NewQuery()
	q.Lower = []littletable.Value{littletable.NewInt64(200), littletable.NewInt64(2)}
	q.Upper = q.Lower
	q.Descending = true
	q.Limit = 5
	rows, err := tab.QueryAll(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnewest events for device 2:")
	for _, r := range rows {
		typ := string(r[4].Bytes)
		if typ == events.SentinelType {
			typ = "(sentinel)"
		}
		fmt.Printf("  id=%-4d -%3dm  %-12s %s\n",
			r[3].Int, (clk.Now()-r[2].Int)/clock.Minute, typ, r[5].Bytes)
	}

	// Recovery path 1 (§4.2): restart with recent rows in the window.
	g2 := events.New(&apps.CoreStore{T: tab}, fleet, clk)
	if err := g2.RebuildCache(); err != nil {
		log.Fatal(err)
	}
	id, _ := g2.CachedID(2)
	fmt.Printf("\nafter restart, recovered latest event id for device 2: %d\n", id)

	// Recovery path 2: device 3 goes dark for a month; its newest stored
	// row is far outside the recovery window, so the restarted grabber
	// falls back to the latest-row-for-prefix lookup.
	if err := tab.FlushAll(); err != nil {
		log.Fatal(err)
	}
	dark := fleet.Device(3)
	dark.SetOnline(false)
	clk.Advance(30 * clock.Day)
	dark.SetOnline(true)
	g3 := events.New(&apps.CoreStore{T: tab}, fleet, clk)
	if err := g3.RebuildCache(); err != nil {
		log.Fatal(err)
	}
	deepID, _ := g3.CachedID(3)
	fmt.Printf("device 3 after a 30-day outage: deep recovery found event id %d via latest-row search\n", deepID)

	// Polling resumes; the device replays everything the grabber missed.
	fleet.AdvanceAll()
	before := g3.RowsInserted
	if err := g3.Poll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first poll after outage stored %d catch-up events, none duplicated\n",
		g3.RowsInserted-before)
}
