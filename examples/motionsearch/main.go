// Video motion search: the paper's third application (§4.3) end to end.
//
// A simulated security camera encodes motion as 32-bit words — a nibble
// each for the coarse cell's row and column plus one bit per macroblock —
// and coalesces successive frames. MotionGrabber stores the events keyed
// by (camera, ts); the program then searches a rectangle of the frame
// backwards in time for motion, and renders the heatmap Dashboard draws.
//
//	go run ./examples/motionsearch
package main

import (
	"fmt"
	"log"
	"os"

	"littletable"
	"littletable/internal/apps"
	"littletable/internal/apps/motion"
	"littletable/internal/clock"
	"littletable/internal/devicesim"
)

func main() {
	//ltlint:ignore vfsonly example provisions its demo directory on the real filesystem
	dir, err := os.MkdirTemp("", "littletable-motion")
	if err != nil {
		log.Fatal(err)
	}
	//ltlint:ignore vfsonly demo directory cleanup
	defer os.RemoveAll(dir)

	start := littletable.Now()
	clk := clock.NewFake(start)
	fleet := devicesim.NewFleet(clk, 11)
	const cameraID = 1
	fleet.AddDevice(cameraID, 300, "camera")

	tab, err := littletable.CreateTable(dir, "motion", motion.Schema(), 0,
		littletable.Options{Clock: clk})
	if err != nil {
		log.Fatal(err)
	}
	defer tab.Close()
	store := &apps.CoreStore{T: tab}
	grabber := motion.New(store, fleet, clk)

	// A simulated day of footage, polled every ten minutes.
	for p := 0; p < 24*6; p++ {
		clk.Advance(10 * clock.Minute)
		fleet.AdvanceAll()
		if err := grabber.Poll(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("camera %d: %d coalesced motion events over a simulated day\n",
		cameraID, grabber.RowsInserted)
	fmt.Printf("(production cameras average ~51,000 rows/week, §4.3)\n")

	// A security incident: search the doorway — a rectangle in the frame —
	// backwards over the last 6 hours.
	x0, y0, x1, y1 := 384, 192, 576, 432
	matches, err := motion.SearchRect(store, cameraID, x0, y0, x1, y1,
		clk.Now()-6*clock.Hour, clk.Now(), 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmotion in rectangle (%d,%d)-(%d,%d), last 6 h, newest first:\n", x0, y0, x1, y1)
	for _, m := range matches {
		row, col, blocks := devicesim.DecodeMotionWord(m.Word)
		fmt.Printf("  -%3dm  cell (%d,%d)  %2d blocks  %4.1fs\n",
			(clk.Now()-m.Ts)/clock.Minute, row, col, popcount(blocks), float64(m.DurationMs)/1000)
	}

	// The heatmap view: total motion per coarse cell over the whole day.
	hm, err := motion.Heatmap(store, cameraID, start, clk.Now())
	if err != nil {
		log.Fatal(err)
	}
	var max int64
	for _, r := range hm {
		for _, v := range r {
			if v > max {
				max = v
			}
		}
	}
	fmt.Printf("\nmotion heatmap (%dx%d coarse cells, darker = more motion):\n",
		devicesim.CoarseCols, devicesim.CoarseRows)
	shades := []byte(" .:-=+*#%@")
	for _, r := range hm {
		line := make([]byte, len(r))
		for c, v := range r {
			idx := 0
			if max > 0 {
				idx = int(v * int64(len(shades)-1) / max)
			}
			line[c] = shades[idx]
		}
		fmt.Printf("  |%s|\n", line)
	}
}

func popcount(v uint32) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}
