// Network usage: the paper's first application (§4.1) end to end.
//
// A simulated device fleet produces byte counters; UsageGrabber polls them
// every minute and stores transfer rates keyed by (network, device, ts);
// a rollup aggregator derives ten-minute per-network totals; and the
// program renders the per-network "graph" Dashboard would draw, first from
// the raw table and then from the rollup. It then crashes the grabber and
// shows the §4.1.1 recovery: the in-memory cache rebuilds from LittleTable
// and polling resumes without duplicate or missing rows.
//
//	go run ./examples/networkusage
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"littletable"
	"littletable/internal/apps"
	"littletable/internal/apps/agg"
	"littletable/internal/apps/usage"
	"littletable/internal/clock"
	"littletable/internal/devicesim"
)

func main() {
	//ltlint:ignore vfsonly example provisions its demo directory on the real filesystem
	dir, err := os.MkdirTemp("", "littletable-usage")
	if err != nil {
		log.Fatal(err)
	}
	//ltlint:ignore vfsonly demo directory cleanup
	defer os.RemoveAll(dir)

	// Simulated time makes the example deterministic and instant; swap in
	// clock.Real{} and a ticker for wall-clock operation.
	start := littletable.Now()
	clk := clock.NewFake(start)
	fleet := devicesim.NewFleet(clk, 2026)
	for dev := int64(1); dev <= 6; dev++ {
		network := int64(100 + dev%2) // two networks
		fleet.AddDevice(dev, network, "access_point")
	}

	opts := littletable.Options{Clock: clk}
	src, err := littletable.CreateTable(dir, "usage", usage.Schema(), 0, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer src.Close()
	dst, err := littletable.CreateTable(dir, "usage_10m", agg.RollupSchema(), 0, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer dst.Close()

	grabber := usage.New(&apps.CoreStore{T: src}, fleet, clk)
	rollup := agg.NewRollup(&apps.CoreStore{T: src}, &apps.CoreStore{T: dst}, clk, start-clock.Hour)

	// One simulated hour of per-minute polls.
	poll := func(minutes int) {
		for i := 0; i < minutes; i++ {
			clk.Advance(clock.Minute)
			fleet.AdvanceAll()
			if err := grabber.Poll(); err != nil {
				log.Fatal(err)
			}
		}
	}
	poll(60)
	if err := rollup.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 1 simulated hour: %d raw rows, %d rollup rows\n",
		src.RowEstimate(), dst.RowEstimate())

	// Dashboard view 1: one device's last 10 minutes from the raw table.
	q := littletable.NewQuery()
	q.Lower = []littletable.Value{littletable.NewInt64(101), littletable.NewInt64(1)}
	q.Upper = q.Lower
	q.MinTs = clk.Now() - 10*clock.Minute
	q.MaxTs = clk.Now()
	rows, err := src.QueryAll(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndevice 1 (network 101), last 10 minutes, bytes/second:")
	for _, r := range rows {
		bar := int(r[5].Float / 20000)
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("  -%2dm %8.0f %s\n", (clk.Now()-r[2].Int)/clock.Minute, r[5].Float, strings.Repeat("#", bar))
	}

	// Dashboard view 2: per-network ten-minute totals from the rollup.
	fmt.Println("\nper-network 10-minute rollups (bytes):")
	rrows, err := dst.QueryAll(littletable.NewQuery())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rrows {
		fmt.Printf("  network %d @%-3dm  %12d bytes over %d samples\n",
			r[0].Int, (clk.Now()-r[1].Int)/clock.Minute, r[2].Int, r[3].Int)
	}

	// Crash the grabber (§4.1.1): a fresh instance rebuilds its (t1, c1)
	// cache from LittleTable in one range query and resumes cleanly.
	fmt.Println("\nsimulating grabber crash + recovery...")
	grabber2 := usage.New(&apps.CoreStore{T: src}, fleet, clk)
	if err := grabber2.RebuildCache(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebuilt cache for %d devices\n", grabber2.CacheLen())
	before := src.RowEstimate()
	clk.Advance(clock.Minute)
	fleet.AdvanceAll()
	if err := grabber2.Poll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first post-recovery poll inserted %d rows (one per device, no gaps, no duplicates)\n",
		src.RowEstimate()-before)
}
