// Quickstart: the end-to-end basics of LittleTable in one program.
//
// It starts a server on a loopback port, connects a client, creates the
// paper's running-example table — transfer rates keyed by (network,
// device, ts) — inserts a few minutes of samples, and then runs the two
// queries Figure 1 illustrates: a whole network over a wide window, and a
// single device over a narrow one. It finishes with the same work
// expressed in SQL.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"
	"os"

	"littletable"
)

func main() {
	//ltlint:ignore vfsonly example provisions its demo directory on the real filesystem
	dir, err := os.MkdirTemp("", "littletable-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	//ltlint:ignore vfsonly demo directory cleanup
	defer os.RemoveAll(dir)

	// 1. Start a server. Production runs cmd/littletabled; embedding works
	// the same way.
	srv, err := littletable.NewServer(littletable.ServerOptions{Root: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(lis)
	fmt.Println("server listening on", lis.Addr())

	// 2. Connect a client and create a table. The primary key's order is
	// the clustering: network first, then device, then time (§3.1).
	c, err := littletable.Dial(lis.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	sc := littletable.MustSchema([]littletable.Column{
		{Name: "network", Type: littletable.Int64},
		{Name: "device", Type: littletable.Int64},
		{Name: "ts", Type: littletable.Timestamp},
		{Name: "rate", Type: littletable.Double}, // bytes/second
	}, []string{"network", "device", "ts"})
	if err := c.CreateTable("usage", sc, 365*littletable.Day); err != nil {
		log.Fatal(err)
	}
	tab, err := c.OpenTable("usage")
	if err != nil {
		log.Fatal(err)
	}

	// 3. Insert: 2 networks × 3 devices × 10 one-minute samples. The
	// client batches automatically; Flush sends the tail.
	now := littletable.Now()
	for net := int64(1); net <= 2; net++ {
		for dev := int64(1); dev <= 3; dev++ {
			for m := int64(0); m < 10; m++ {
				err := tab.Insert(littletable.Row{
					littletable.NewInt64(net),
					littletable.NewInt64(dev),
					littletable.NewTimestamp(now - m*littletable.Minute),
					littletable.NewDouble(float64(100*dev + m)),
				})
				if err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	if err := tab.Flush(); err != nil {
		log.Fatal(err)
	}

	// 4. Query rectangle one: all of network 1 over the last 5 minutes.
	q := littletable.NewClientQuery()
	q.Lower = []littletable.Value{littletable.NewInt64(1)}
	q.Upper = q.Lower // a prefix bound: "network = 1"
	q.MinTs = now - 5*littletable.Minute
	q.MaxTs = now
	rows, err := tab.Query(q).All()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network 1, last 5 minutes: %d rows (sorted by device, then time)\n", len(rows))

	// 5. Query rectangle two: one device, a narrower window, newest first.
	q = littletable.NewClientQuery()
	q.Lower = []littletable.Value{littletable.NewInt64(1), littletable.NewInt64(2)}
	q.Upper = q.Lower
	q.MinTs = now - 2*littletable.Minute
	q.MaxTs = now
	q.Descending = true
	rows, err = tab.Query(q).All()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network 1 device 2, last 2 minutes, newest first:\n")
	for _, r := range rows {
		fmt.Printf("  ts=%d rate=%.0f B/s\n", r[2].Int, r[3].Float)
	}

	// 6. The latest row for a key prefix (§3.4.5).
	latest, found, err := tab.LatestRow([]littletable.Value{
		littletable.NewInt64(2), littletable.NewInt64(3),
	})
	if err != nil || !found {
		log.Fatal("latest row missing: ", err)
	}
	fmt.Printf("latest sample for network 2 device 3: rate=%.0f B/s\n", latest[3].Float)

	// 7. The same aggregation in SQL (§2.3.2: the interface developers
	// actually wanted).
	eng := littletable.NewSQLOverClient(c)
	res, err := eng.Exec(`SELECT device, SUM(rate) AS total
		FROM usage WHERE network = 1 AND ts >= NOW() - 5 m GROUP BY device`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SQL: per-device rate totals for network 1, last 5 minutes:")
	for _, r := range res.Rows {
		fmt.Printf("  device %d: %.0f\n", r[0].Int, r[1].Float)
	}
}
