// Retention and compliance: the operational lifecycle of LittleTable data.
//
// The paper's only deletion is TTL aging (§3.1), its conclusion proposes a
// bulk delete for regional privacy laws (§7), its related work floats
// tiering old tablets to cheaper storage (§6), and its operations story
// mirrors every shard to a warm spare (§2.2). This example runs all four
// against one table:
//
//  1. a year of history ages under a TTL;
//
//  2. a privacy request deletes one device's rows everywhere;
//
//  3. tablets older than a quarter tier into a "cold" directory;
//
//  4. the table continuously archives to a spare, which takes over.
//
//     go run ./examples/retention
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"littletable"
	"littletable/internal/archive"
	"littletable/internal/clock"
)

func main() {
	//ltlint:ignore vfsonly example provisions its demo directory on the real filesystem
	base, err := os.MkdirTemp("", "littletable-retention")
	if err != nil {
		log.Fatal(err)
	}
	//ltlint:ignore vfsonly demo directory cleanup
	defer os.RemoveAll(base)
	shardDir := filepath.Join(base, "shard")
	spareDir := filepath.Join(base, "spare")
	coldDir := filepath.Join(base, "cold")

	clk := clock.NewFake(littletable.Now())
	sc := littletable.MustSchema([]littletable.Column{
		{Name: "network", Type: littletable.Int64},
		{Name: "device", Type: littletable.Int64},
		{Name: "ts", Type: littletable.Timestamp},
		{Name: "bytes", Type: littletable.Int64},
	}, []string{"network", "device", "ts"})

	tab, err := littletable.CreateTable(shardDir, "usage", sc,
		400*littletable.Day, littletable.Options{Clock: clk})
	if err != nil {
		log.Fatal(err)
	}
	defer tab.Close()

	// A year of daily samples for 6 devices.
	now := clk.Now()
	for day := int64(365); day >= 1; day-- {
		var rows []littletable.Row
		for dev := int64(1); dev <= 6; dev++ {
			rows = append(rows, littletable.Row{
				littletable.NewInt64(1),
				littletable.NewInt64(dev),
				littletable.NewTimestamp(now - day*littletable.Day),
				littletable.NewInt64(day * 1000),
			})
		}
		if err := tab.Insert(rows); err != nil {
			log.Fatal(err)
		}
	}
	if err := tab.FlushAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("year of history: %d rows in %d tablets\n",
		tab.RowEstimate(), tab.DiskTabletCount())

	// 1. TTL: tighten retention to 180 days and reap.
	if err := tab.AlterTTL(180 * littletable.Day); err != nil {
		log.Fatal(err)
	}
	if err := tab.ExpireNow(); err != nil {
		log.Fatal(err)
	}
	rows, _ := tab.QueryAll(littletable.NewQuery())
	fmt.Printf("after tightening TTL to 180d: %d rows visible, %d tablets on disk\n",
		len(rows), tab.DiskTabletCount())

	// 2. Privacy request: erase device 4 entirely (§7's bulk delete).
	dq := littletable.NewQuery()
	dq.Lower = []littletable.Value{littletable.NewInt64(1), littletable.NewInt64(4)}
	dq.Upper = dq.Lower
	n, err := tab.DeleteWhere(dq, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("privacy delete removed %d rows for device 4\n", n)
	if _, found, _ := tab.LatestRow(dq.Lower); found {
		log.Fatal("device 4 still has rows!")
	}

	// 3. Tier tablets older than a quarter into cold storage (§6).
	moved, err := tab.TierColdTablets(now-90*littletable.Day, coldDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tiered %d tablets to cold storage (%d cold, %d total); queries unaffected:\n",
		moved, tab.ColdTabletCount(), tab.DiskTabletCount())
	q := littletable.NewQuery()
	q.MinTs = now - 150*littletable.Day
	q.MaxTs = now - 140*littletable.Day
	old, err := tab.QueryAll(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  a 10-day window from 5 months ago still returns %d rows\n", len(old))

	// 4. Continuous archival to the spare (§2.2, §3.5), then failover.
	passes, err := archive.SyncUntilClean(shardDir, spareDir, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard→spare sync converged in %d passes\n", passes)
	spare, err := littletable.OpenTable(spareDir, "usage", littletable.Options{Clock: clk})
	if err != nil {
		log.Fatal(err)
	}
	defer spare.Close()
	srows, err := spare.QueryAll(littletable.NewQuery())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spare takes over with %d rows (hot tier mirrored; cold tier shared)\n", len(srows))
}
