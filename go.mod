module littletable

go 1.22
