// Package agg implements streaming server-side aggregation (ROADMAP
// item 3): GROUP BY (time-bucket × key-prefix) with count, sum, min,
// max, avg, and a mergeable quantile sketch. An Accumulator folds rows
// one at a time as the merge-sorted query cursor yields them, so memory
// is O(groups), never O(rows); the per-group State values are partial —
// two accumulations of disjoint row sets merge exactly (MergeGroups),
// which is what lets a shard return its local aggregate and the router
// combine shard partials without ever seeing a raw row.
//
// The same Spec drives both the MsgAggQuery read path and the
// continuous-downsampling rollup jobs (core.RollupRule), so a dashboard
// query and the background job that pre-materializes it agree on
// bucketing and aggregate semantics by construction.
package agg

import (
	"fmt"
	"math"
	"sort"

	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// Func identifies one aggregate function.
type Func uint8

// The aggregate functions. Count counts rows; the rest fold a numeric
// value column (Min/Max additionally accept strings and blobs).
const (
	Count Func = iota + 1
	Sum
	Min
	Max
	Avg
	Quantile
)

var funcNames = [...]string{
	Count:    "count",
	Sum:      "sum",
	Min:      "min",
	Max:      "max",
	Avg:      "avg",
	Quantile: "quantile",
}

// String returns the lowercase name of the function.
func (f Func) String() string {
	if int(f) < len(funcNames) && funcNames[f] != "" {
		return funcNames[f]
	}
	return fmt.Sprintf("func(%d)", uint8(f))
}

// Valid reports whether f is a defined aggregate function.
func (f Func) Valid() bool { return f >= Count && f <= Quantile }

// Agg is one requested aggregate: a function over a value column.
// Count ignores Col; Quantile computes the Q-quantile (0 ≤ Q ≤ 1) of
// Col, e.g. Q=0.95 for p95.
type Agg struct {
	Func Func    `json:"func"`
	Col  string  `json:"col,omitempty"`
	Q    float64 `json:"q,omitempty"`
}

// OutputColumn is the derived column name an aggregate materializes
// under in a rollup table: "count", "sum_bytes", "p95_latency".
func (a Agg) OutputColumn() string {
	switch a.Func {
	case Count:
		return "count"
	case Quantile:
		return fmt.Sprintf("p%02d_%s", int(a.Q*100+0.5), a.Col)
	default:
		return a.Func.String() + "_" + a.Col
	}
}

// Spec describes one aggregation: rows are grouped by
// (floorTo(ts, BucketWidth), the first GroupCols primary-key columns)
// and each group folds every listed aggregate.
type Spec struct {
	// BucketWidth is the time-bucket width in microseconds; 0 puts every
	// row in one bucket spanning all time.
	BucketWidth int64 `json:"bucket_width_us"`
	// GroupCols is how many leading primary-key columns form the group
	// key; 0 groups by time bucket alone. The timestamp key column never
	// participates (it is what the bucket replaces).
	GroupCols int `json:"group_cols"`
	// Aggs are the aggregates each group folds; at least one.
	Aggs []Agg `json:"aggs"`
}

// binding is a Spec resolved against one table's schema: per-aggregate
// value-column indices and numeric classes.
type binding struct {
	cols    []int // -1 for Count
	isFloat []bool
	types   []ltval.Type
}

// bindSpec validates spec against sc. Sum/Avg/Quantile require a
// numeric (integer or double) column; Min/Max accept any column type.
func bindSpec(sc *schema.Schema, spec Spec) (*binding, error) {
	if spec.BucketWidth < 0 {
		return nil, fmt.Errorf("agg: negative bucket width %d", spec.BucketWidth)
	}
	if spec.GroupCols < 0 || spec.GroupCols > sc.KeyLen()-1 {
		return nil, fmt.Errorf("agg: %d group columns, schema has %d non-timestamp key columns",
			spec.GroupCols, sc.KeyLen()-1)
	}
	if len(spec.Aggs) == 0 {
		return nil, fmt.Errorf("agg: no aggregates requested")
	}
	b := &binding{
		cols:    make([]int, len(spec.Aggs)),
		isFloat: make([]bool, len(spec.Aggs)),
		types:   make([]ltval.Type, len(spec.Aggs)),
	}
	for i, a := range spec.Aggs {
		if !a.Func.Valid() {
			return nil, fmt.Errorf("agg: invalid function %v", a.Func)
		}
		if a.Func == Count {
			b.cols[i] = -1
			continue
		}
		idx := sc.ColumnIndex(a.Col)
		if idx < 0 {
			return nil, fmt.Errorf("agg: %s over unknown column %q", a.Func, a.Col)
		}
		class := sc.ColumnClass(idx)
		if class == schema.ClassBytes && a.Func != Min && a.Func != Max {
			return nil, fmt.Errorf("agg: %s over non-numeric column %q", a.Func, a.Col)
		}
		if a.Func == Quantile && (a.Q < 0 || a.Q > 1 || math.IsNaN(a.Q)) {
			return nil, fmt.Errorf("agg: quantile q=%v outside [0, 1]", a.Q)
		}
		b.cols[i] = idx
		b.isFloat[i] = class == schema.ClassFloat
		b.types[i] = sc.Columns[idx].Type
	}
	return b, nil
}

// ValidateSpec reports whether spec can run against sc.
func ValidateSpec(sc *schema.Schema, spec Spec) error {
	_, err := bindSpec(sc, spec)
	return err
}

// State is the mergeable partial state of one aggregate within one
// group. Which fields are live depends on the function: Count uses N
// alone; Sum/Avg use N plus one of IntSum/FloatSum (selected by
// IsFloat, with integer sums saturating stickily at ±MaxInt64);
// Min/Max use HasMM+MM; Quantile uses N plus the sketch.
type State struct {
	N         int64
	IsFloat   bool
	IntSum    int64
	Saturated bool
	FloatSum  float64
	HasMM     bool
	MM        ltval.Value
	Sketch    *Sketch
}

// Group is one (bucket, key-prefix) group: the bucket start timestamp,
// the group-key values, and one partial State per Spec aggregate.
type Group struct {
	Bucket int64
	Key    []ltval.Value
	States []State
}

// CompareGroups orders groups by (bucket, key), the order Groups()
// emits and MergeGroups requires.
func CompareGroups(a, b *Group) int {
	switch {
	case a.Bucket < b.Bucket:
		return -1
	case a.Bucket > b.Bucket:
		return 1
	}
	n := len(a.Key)
	if len(b.Key) < n {
		n = len(b.Key)
	}
	for i := 0; i < n; i++ {
		if c := a.Key[i].Compare(b.Key[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a.Key) < len(b.Key):
		return -1
	case len(a.Key) > len(b.Key):
		return 1
	}
	return 0
}

// Accumulator folds rows of one schema into per-group partial states.
// Not safe for concurrent use; the query cursor is single-goroutine.
type Accumulator struct {
	spec   Spec
	b      *binding
	sc     *schema.Schema
	keyIdx []int // schema column indices of the group-key columns
	groups map[string]*Group
	rows   int64
	keyBuf []byte
}

// NewAccumulator binds spec to sc, validating it.
func NewAccumulator(sc *schema.Schema, spec Spec) (*Accumulator, error) {
	b, err := bindSpec(sc, spec)
	if err != nil {
		return nil, err
	}
	keyIdx := make([]int, spec.GroupCols)
	for i := range keyIdx {
		keyIdx[i] = sc.Key[i]
	}
	return &Accumulator{
		spec:   spec,
		b:      b,
		sc:     sc,
		keyIdx: keyIdx,
		groups: make(map[string]*Group),
	}, nil
}

// floorTo rounds ts down to a multiple of width, correctly for
// negative timestamps (Go's % truncates toward zero).
func floorTo(ts, width int64) int64 {
	if width <= 0 {
		return 0
	}
	r := ts % width
	if r < 0 {
		r += width
	}
	return ts - r
}

// BucketStart returns the start of the bucket containing ts under spec.
func (s Spec) BucketStart(ts int64) int64 { return floorTo(ts, s.BucketWidth) }

// Add folds one row. The row must match the accumulator's schema; rows
// are not retained (key and min/max values are copied).
func (a *Accumulator) Add(row schema.Row) {
	a.rows++
	bucket := floorTo(a.sc.Ts(row), a.spec.BucketWidth)
	buf := a.keyBuf[:0]
	u := uint64(bucket)
	buf = append(buf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	for _, ki := range a.keyIdx {
		buf = row[ki].Append(buf)
	}
	a.keyBuf = buf
	g := a.groups[string(buf)]
	if g == nil {
		key := make([]ltval.Value, len(a.keyIdx))
		for i, ki := range a.keyIdx {
			key[i] = cloneValue(row[ki])
		}
		g = &Group{Bucket: bucket, Key: key, States: make([]State, len(a.spec.Aggs))}
		for i := range g.States {
			g.States[i].IsFloat = a.b.isFloat[i]
			if a.spec.Aggs[i].Func == Quantile {
				g.States[i].Sketch = NewSketch()
			}
		}
		a.groups[string(buf)] = g
	}
	for i, ag := range a.spec.Aggs {
		a.fold(&g.States[i], ag.Func, i, row)
	}
}

// fold applies one row to one aggregate state. NaN float values are
// skipped by every numeric aggregate (they still count as rows for
// Count, which counts rows, not values).
func (a *Accumulator) fold(st *State, f Func, i int, row schema.Row) {
	if f == Count {
		st.N++
		return
	}
	v := row[a.b.cols[i]]
	switch f {
	case Sum, Avg:
		if st.IsFloat {
			if math.IsNaN(v.Float) {
				return
			}
			st.FloatSum += v.Float
			st.N++
			return
		}
		st.addInt(v.Int)
		st.N++
	case Min:
		if st.IsFloat && math.IsNaN(v.Float) {
			return
		}
		if !st.HasMM || v.Compare(st.MM) < 0 {
			st.MM = cloneValue(v)
			st.HasMM = true
		}
		st.N++
	case Max:
		if st.IsFloat && math.IsNaN(v.Float) {
			return
		}
		if !st.HasMM || v.Compare(st.MM) > 0 {
			st.MM = cloneValue(v)
			st.HasMM = true
		}
		st.N++
	case Quantile:
		f64 := v.Float
		if !st.IsFloat {
			f64 = float64(v.Int)
		}
		if math.IsNaN(f64) {
			return
		}
		st.Sketch.Add(f64)
		st.N++
	}
}

// addInt adds v to the integer sum, saturating at ±MaxInt64. Saturation
// is sticky: once clamped, later values (and merges) keep the clamp, so
// an overflowed sum reads as "at least/at most this" rather than a
// silently wrapped number.
func (st *State) addInt(v int64) {
	if st.Saturated {
		return
	}
	s := st.IntSum + v
	if (st.IntSum > 0 && v > 0 && s < 0) || (st.IntSum < 0 && v < 0 && s >= 0) {
		if v > 0 {
			st.IntSum = math.MaxInt64
		} else {
			st.IntSum = math.MinInt64
		}
		st.Saturated = true
		return
	}
	st.IntSum = s
}

// Rows returns how many rows have been folded.
func (a *Accumulator) Rows() int64 { return a.rows }

// NumGroups returns the current group count (the memory bound).
func (a *Accumulator) NumGroups() int { return len(a.groups) }

// Groups returns the accumulated partial groups sorted by (bucket,
// key). The accumulator can keep folding afterwards; the returned
// groups share state with it, so treat them as a final snapshot.
func (a *Accumulator) Groups() []Group {
	out := make([]Group, 0, len(a.groups))
	for _, g := range a.groups {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return CompareGroups(&out[i], &out[j]) < 0 })
	return out
}

// cloneValue deep-copies a value so retained group keys and min/max
// values never alias a query cursor's reusable row buffers.
func cloneValue(v ltval.Value) ltval.Value {
	if len(v.Bytes) > 0 {
		b := make([]byte, len(v.Bytes))
		copy(b, v.Bytes)
		v.Bytes = b
	}
	return v
}
