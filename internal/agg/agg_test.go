package agg

import (
	"fmt"
	"math"
	"testing"

	"littletable/internal/ltval"
	"littletable/internal/schema"
)

func testSchema() *schema.Schema {
	return schema.MustNew([]schema.Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "device", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "rate", Type: ltval.Double},
		{Name: "bytes", Type: ltval.Int64},
	}, []string{"network", "device", "ts"})
}

func testRow(n, d, ts int64, rate float64, bytes int64) schema.Row {
	return schema.Row{
		ltval.NewInt64(n), ltval.NewInt64(d), ltval.NewTimestamp(ts),
		ltval.NewDouble(rate), ltval.NewInt64(bytes),
	}
}

func testSpec() Spec {
	return Spec{
		BucketWidth: 60,
		GroupCols:   1,
		Aggs: []Agg{
			{Func: Count},
			{Func: Sum, Col: "bytes"},
			{Func: Sum, Col: "rate"},
			{Func: Min, Col: "rate"},
			{Func: Max, Col: "bytes"},
			{Func: Avg, Col: "rate"},
			{Func: Quantile, Col: "rate", Q: 0.5},
		},
	}
}

func mustAcc(t *testing.T, spec Spec) *Accumulator {
	t.Helper()
	acc, err := NewAccumulator(testSchema(), spec)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestValidateSpecRejects(t *testing.T) {
	sc := testSchema()
	bad := []Spec{
		{BucketWidth: -1, Aggs: []Agg{{Func: Count}}},
		{GroupCols: 3, Aggs: []Agg{{Func: Count}}}, // only 2 non-ts key cols
		{GroupCols: -1, Aggs: []Agg{{Func: Count}}},
		{Aggs: nil},
		{Aggs: []Agg{{Func: Sum, Col: "nope"}}},
		{Aggs: []Agg{{Func: Func(99)}}},
		{Aggs: []Agg{{Func: Quantile, Col: "rate", Q: 1.5}}},
		{Aggs: []Agg{{Func: Quantile, Col: "rate", Q: math.NaN()}}},
	}
	for i, s := range bad {
		if err := ValidateSpec(sc, s); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
	if err := ValidateSpec(sc, testSpec()); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestAccumulatorGroupsAndBuckets(t *testing.T) {
	acc := mustAcc(t, testSpec())
	// Two networks, two buckets; bucket 60..119 for network 2 left empty —
	// empty buckets must simply not exist in the output, not appear as
	// zero groups.
	acc.Add(testRow(1, 1, 10, 2.0, 100))
	acc.Add(testRow(1, 2, 50, 4.0, 300))
	acc.Add(testRow(1, 1, 70, 6.0, 200))
	acc.Add(testRow(2, 1, 30, 1.0, 50))
	groups := acc.Groups()
	if len(groups) != 3 {
		t.Fatalf("%d groups, want 3 (empty buckets must not materialize)", len(groups))
	}
	// Sorted by (bucket, key): (0,n1), (0,n2), (60,n1).
	wantBuckets := []int64{0, 0, 60}
	wantNets := []int64{1, 2, 1}
	for i, g := range groups {
		if g.Bucket != wantBuckets[i] || g.Key[0].Int != wantNets[i] {
			t.Fatalf("group %d = (bucket %d, net %d), want (%d, %d)",
				i, g.Bucket, g.Key[0].Int, wantBuckets[i], wantNets[i])
		}
	}
	outs := Finalize(testSpec(), groups[:1])
	// Group (bucket 0, network 1): rows (2.0, 100), (4.0, 300).
	vals := outs[0].Values
	if vals[0].Int != 2 {
		t.Errorf("count = %d, want 2", vals[0].Int)
	}
	if vals[1].Int != 400 {
		t.Errorf("sum bytes = %d, want 400", vals[1].Int)
	}
	if vals[2].Float != 6.0 {
		t.Errorf("sum rate = %g, want 6", vals[2].Float)
	}
	if vals[3].Float != 2.0 || vals[4].Int != 300 {
		t.Errorf("min rate / max bytes = %g / %d, want 2 / 300", vals[3].Float, vals[4].Int)
	}
	if vals[5].Float != 3.0 {
		t.Errorf("avg rate = %g, want 3", vals[5].Float)
	}
	// DDSketch is approximate: the p50 of {2, 4} must land within the
	// sketch's relative accuracy of one of the inputs' bucket values.
	if p := vals[6].Float; p < 2*(1-2*sketchAlpha) || p > 4*(1+2*sketchAlpha) {
		t.Errorf("p50 = %g, want within sketch accuracy of [2, 4]", p)
	}
}

func TestNegativeTimestampBuckets(t *testing.T) {
	spec := Spec{BucketWidth: 60, Aggs: []Agg{{Func: Count}}}
	acc := mustAcc(t, spec)
	acc.Add(testRow(1, 1, -1, 0, 0))  // bucket -60
	acc.Add(testRow(1, 1, -60, 0, 0)) // bucket -60
	acc.Add(testRow(1, 1, -61, 0, 0)) // bucket -120
	groups := acc.Groups()
	if len(groups) != 2 || groups[0].Bucket != -120 || groups[1].Bucket != -60 {
		t.Fatalf("negative buckets wrong: %+v", groups)
	}
	if groups[1].States[0].N != 2 {
		t.Fatalf("bucket -60 count = %d, want 2", groups[1].States[0].N)
	}
}

// TestNaNSkippedByNumerics pins the NaN policy: NaN float values are
// skipped by sum/avg/min/max/quantile, while Count counts rows.
func TestNaNSkippedByNumerics(t *testing.T) {
	acc := mustAcc(t, testSpec())
	nan := math.NaN()
	acc.Add(testRow(1, 1, 0, nan, 10))
	acc.Add(testRow(1, 2, 1, 5.0, 20))
	acc.Add(testRow(1, 3, 2, nan, 30))
	g := acc.Groups()[0]
	if g.States[0].N != 3 {
		t.Errorf("count = %d, want 3 (Count counts rows, not values)", g.States[0].N)
	}
	if g.States[2].N != 1 || g.States[2].FloatSum != 5.0 {
		t.Errorf("sum rate folded %d values totalling %g, want 1 / 5", g.States[2].N, g.States[2].FloatSum)
	}
	if g.States[3].MM.Float != 5.0 || g.States[3].N != 1 {
		t.Errorf("min rate = %g over %d values, want 5 over 1", g.States[3].MM.Float, g.States[3].N)
	}
	out := Finalize(testSpec(), []Group{g})[0]
	if out.Values[5].Float != 5.0 {
		t.Errorf("avg = %g, want 5 (NaNs excluded from both sum and divisor)", out.Values[5].Float)
	}
	// All-NaN group: numeric aggregates have nothing; avg and quantile
	// finalize to NaN, min/max to no value.
	acc2 := mustAcc(t, testSpec())
	acc2.Add(testRow(1, 1, 0, nan, 7))
	g2 := acc2.Groups()[0]
	out2 := Finalize(testSpec(), []Group{g2})[0]
	if !math.IsNaN(out2.Values[5].Float) {
		t.Errorf("all-NaN avg = %v, want NaN", out2.Values[5])
	}
	if out2.Values[3].Type != ltval.Invalid {
		t.Errorf("all-NaN min = %v, want no value", out2.Values[3])
	}
	if out2.Values[0].Int != 1 {
		t.Errorf("all-NaN count = %d, want 1", out2.Values[0].Int)
	}
}

// TestIntSumSaturation pins sticky saturation through both folding and
// merging: an overflowed sum clamps at ±MaxInt64 and stays clamped.
func TestIntSumSaturation(t *testing.T) {
	spec := Spec{Aggs: []Agg{{Func: Sum, Col: "bytes"}}}
	acc := mustAcc(t, spec)
	huge := int64(1) << 62
	for i := int64(0); i < 4; i++ {
		acc.Add(testRow(1, i, i, 0, huge))
	}
	st := acc.Groups()[0].States[0]
	if !st.Saturated || st.IntSum != math.MaxInt64 {
		t.Fatalf("sum = %d saturated=%v, want MaxInt64 sticky", st.IntSum, st.Saturated)
	}
	// Negative direction.
	acc2 := mustAcc(t, spec)
	for i := int64(0); i < 4; i++ {
		acc2.Add(testRow(1, i, i, 0, -huge))
	}
	st2 := acc2.Groups()[0].States[0]
	if !st2.Saturated || st2.IntSum != math.MinInt64 {
		t.Fatalf("negative sum = %d saturated=%v, want MinInt64 sticky", st2.IntSum, st2.Saturated)
	}
	// Merging a saturated partial with a normal one keeps the clamp in
	// either merge order.
	accA := mustAcc(t, spec)
	accA.Add(testRow(1, 0, 0, 0, huge))
	accA.Add(testRow(1, 1, 1, 0, huge))
	accA.Add(testRow(1, 2, 2, 0, huge)) // saturates
	accB := mustAcc(t, spec)
	accB.Add(testRow(1, 3, 3, 0, 5))
	ab := MergeGroups(spec, accA.Groups(), accB.Groups())
	ba := MergeGroups(spec, accB.Groups(), accA.Groups())
	for _, m := range [][]Group{ab, ba} {
		st := m[0].States[0]
		if !st.Saturated || st.IntSum != math.MaxInt64 {
			t.Fatalf("merged sum = %d saturated=%v, want sticky MaxInt64", st.IntSum, st.Saturated)
		}
	}
}

// TestMergeEqualsWhole is the partial-aggregation contract: folding a
// row set in one accumulator equals splitting it arbitrarily, folding
// each part, and merging — for every aggregate including the sketch.
func TestMergeEqualsWhole(t *testing.T) {
	spec := testSpec()
	var rows []schema.Row
	for i := int64(0); i < 200; i++ {
		rows = append(rows, testRow(1+i%3, i%7, i*13, float64((i*37)%101)-50, (i*29)%997))
	}
	whole := mustAcc(t, spec)
	for _, r := range rows {
		whole.Add(r)
	}
	for _, split := range []int{1, 50, 117, 199} {
		a, b := mustAcc(t, spec), mustAcc(t, spec)
		for _, r := range rows[:split] {
			a.Add(r)
		}
		for _, r := range rows[split:] {
			b.Add(r)
		}
		merged := MergeGroups(spec, a.Groups(), b.Groups())
		if !groupsEqual(t, spec, whole.Groups(), merged) {
			t.Fatalf("split at %d: merged partials differ from whole-set aggregation", split)
		}
	}
}

// TestMergeAssociativity: three-way merges must agree regardless of
// association order — the property the router relies on when combining
// shard partials whose own sections were merged in arbitrary order.
func TestMergeAssociativity(t *testing.T) {
	spec := testSpec()
	mk := func(seed int64) []Group {
		acc := mustAcc(t, spec)
		for i := int64(0); i < 60; i++ {
			v := seed*1000 + i
			acc.Add(testRow(1+v%2, v%5, v*17, float64(v%89)*1.5, v%611))
		}
		return acc.Groups()
	}
	a, b, c := mk(1), mk(2), mk(3)
	left := MergeGroups(spec, MergeGroups(spec, a, b), c)
	right := MergeGroups(spec, a, MergeGroups(spec, b, c))
	if !groupsEqual(t, spec, left, right) {
		t.Fatal("(a+b)+c != a+(b+c)")
	}
	// And merging must not have mutated its inputs: a re-merge from the
	// original partials still agrees.
	again := MergeGroups(spec, MergeGroups(spec, a, b), c)
	if !groupsEqual(t, spec, left, again) {
		t.Fatal("MergeGroups mutated its inputs")
	}
}

// groupsEqual compares two sorted group lists state by state, sketches
// included (bucket-exact, via the serialized form).
func groupsEqual(t *testing.T, spec Spec, x, y []Group) bool {
	t.Helper()
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if CompareGroups(&x[i], &y[i]) != 0 {
			return false
		}
		for j := range x[i].States {
			sx, sy := x[i].States[j], y[i].States[j]
			if sx.N != sy.N || sx.IntSum != sy.IntSum || sx.Saturated != sy.Saturated ||
				sx.FloatSum != sy.FloatSum || sx.HasMM != sy.HasMM {
				return false
			}
			if sx.HasMM && sx.MM.Compare(sy.MM) != 0 {
				return false
			}
			if (sx.Sketch == nil) != (sy.Sketch == nil) {
				return false
			}
			if sx.Sketch != nil {
				bx := sx.Sketch.AppendBinary(nil)
				by := sy.Sketch.AppendBinary(nil)
				if string(bx) != string(by) {
					return false
				}
			}
		}
	}
	return true
}

func TestSketchQuantiles(t *testing.T) {
	s := NewSketch()
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99} {
		got := s.Quantile(q)
		want := q * 1000
		if got < want*(1-3*sketchAlpha)-2 || got > want*(1+3*sketchAlpha)+2 {
			t.Errorf("q%.2f = %g, want ~%g within relative accuracy", q, got, want)
		}
	}
	if !math.IsNaN(NewSketch().Quantile(0.5)) {
		t.Error("empty sketch quantile should be NaN")
	}
	if !math.IsNaN(s.Quantile(math.NaN())) {
		t.Error("NaN q should be NaN")
	}
	// Negative values and zero walk the rank in order.
	m := NewSketch()
	m.Add(-100)
	m.Add(0)
	m.Add(100)
	if v := m.Quantile(0); v > -100*(1-2*sketchAlpha) {
		t.Errorf("q0 = %g, want ~-100", v)
	}
	if v := m.Quantile(0.5); v != 0 {
		t.Errorf("q0.5 = %g, want 0", v)
	}
	if v := m.Quantile(1); v < 100*(1-2*sketchAlpha) {
		t.Errorf("q1 = %g, want ~100", v)
	}
	// Infinities clamp to the extreme buckets instead of poisoning the
	// index computation.
	inf := NewSketch()
	inf.Add(math.Inf(1))
	inf.Add(math.Inf(-1))
	if inf.Count() != 2 {
		t.Errorf("count with infinities = %d, want 2", inf.Count())
	}
}

func TestSketchMergeAssociativity(t *testing.T) {
	mk := func(lo, hi int) *Sketch {
		s := NewSketch()
		for i := lo; i < hi; i++ {
			v := float64(i*i%1009) - 300
			s.Add(v)
		}
		return s
	}
	a, b, c := mk(0, 100), mk(100, 250), mk(250, 400)
	merge := func(xs ...*Sketch) *Sketch {
		m := NewSketch()
		for _, x := range xs {
			m.Merge(x)
		}
		return m
	}
	left := merge(merge(a, b), c)
	right := merge(a, merge(b, c))
	if string(left.AppendBinary(nil)) != string(right.AppendBinary(nil)) {
		t.Fatal("sketch merge is not associative")
	}
	if left.Count() != 400 {
		t.Fatalf("merged count = %d, want 400", left.Count())
	}
	whole := mk(0, 400)
	if string(left.AppendBinary(nil)) != string(whole.AppendBinary(nil)) {
		t.Fatal("merged sketch differs from whole-set sketch")
	}
}

func TestSketchRoundTrip(t *testing.T) {
	s := NewSketch()
	for i := 0; i < 500; i++ {
		s.Add(float64(i%97) - 31.5)
	}
	s.Add(0)
	b := s.AppendBinary(nil)
	got, err := UnmarshalSketch(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.AppendBinary(nil)) != string(b) {
		t.Fatal("round trip changed the sketch")
	}
	if _, err := UnmarshalSketch(b[:len(b)-1]); err == nil {
		t.Error("truncated sketch accepted")
	}
	if _, err := UnmarshalSketch(append(append([]byte(nil), b...), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestOutputColumnNames(t *testing.T) {
	cases := []struct {
		a    Agg
		want string
	}{
		{Agg{Func: Count}, "count"},
		{Agg{Func: Sum, Col: "bytes"}, "sum_bytes"},
		{Agg{Func: Avg, Col: "rate"}, "avg_rate"},
		{Agg{Func: Quantile, Col: "lat", Q: 0.95}, "p95_lat"},
		{Agg{Func: Quantile, Col: "lat", Q: 0.5}, "p50_lat"},
	}
	for _, c := range cases {
		if got := c.a.OutputColumn(); got != c.want {
			t.Errorf("%+v output column = %q, want %q", c.a, got, c.want)
		}
	}
}

func TestGroupCapIsMemoryBound(t *testing.T) {
	spec := Spec{BucketWidth: 1, GroupCols: 2, Aggs: []Agg{{Func: Count}}}
	acc := mustAcc(t, spec)
	for i := int64(0); i < 1000; i++ {
		acc.Add(testRow(i, i, i, 0, 0))
	}
	if acc.NumGroups() != 1000 || acc.Rows() != 1000 {
		t.Fatalf("groups/rows = %d/%d, want 1000/1000", acc.NumGroups(), acc.Rows())
	}
}

func TestBucketWidthZeroSingleBucket(t *testing.T) {
	spec := Spec{Aggs: []Agg{{Func: Count}}}
	acc := mustAcc(t, spec)
	for _, ts := range []int64{-1 << 40, 0, 1 << 40} {
		acc.Add(testRow(1, 1, ts, 0, 0))
	}
	groups := acc.Groups()
	if len(groups) != 1 || groups[0].Bucket != 0 || groups[0].States[0].N != 3 {
		t.Fatalf("width 0 should fold all time into one bucket: %+v", groups)
	}
}

func ExampleAgg_OutputColumn() {
	fmt.Println(Agg{Func: Quantile, Col: "latency", Q: 0.95}.OutputColumn())
	// Output: p95_latency
}
