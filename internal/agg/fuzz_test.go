package agg

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzAggAccumulator drives the partial-aggregation contract from
// arbitrary bytes: a row stream decoded from the input is folded whole
// and folded as two split halves merged, and the results must agree —
// the property the whole distributed read path (shard partials, router
// merge, rollup replay) is built on. Two aggregates are only
// order-dependent by design, so the comparison encodes their real
// contract rather than bit equality: a saturating int sum is exact
// until any fold order overflows (then it clamps, and WHERE it clamps
// depends on order), and a float sum reassociates, so it is exact only
// up to rounding bounded by the folded magnitudes. Everything else —
// counts, min/max, sketches — must match bit-for-bit. Sketch decode of
// fuzzed bytes must never panic either.
func FuzzAggAccumulator(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(6), uint16(1))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, uint8(0), uint16(0))
	f.Add([]byte{}, uint8(1), uint16(3))
	f.Fuzz(func(t *testing.T, data []byte, widthByte uint8, splitRaw uint16) {
		spec := Spec{
			BucketWidth: int64(widthByte), // 0 = single bucket
			GroupCols:   1,
			Aggs: []Agg{
				{Func: Count},
				{Func: Sum, Col: "bytes"},
				{Func: Sum, Col: "rate"},
				{Func: Min, Col: "bytes"},
				{Func: Max, Col: "rate"},
				{Func: Avg, Col: "rate"},
				{Func: Quantile, Col: "rate", Q: 0.9},
			},
		}
		sc := testSchema()
		var rows [][3]int64 // n, ts, raw value
		for i := 0; i+6 <= len(data); i += 6 {
			n := int64(data[i] % 4)
			ts := int64(int16(binary.LittleEndian.Uint16(data[i+1 : i+3])))
			v := int64(int16(binary.LittleEndian.Uint16(data[i+3 : i+5])))
			if data[i+5]%8 == 0 {
				v = math.MaxInt64 - v // exercise saturation
			}
			rows = append(rows, [3]int64{n, ts, v})
		}
		mk := func() *Accumulator {
			acc, err := NewAccumulator(sc, spec)
			if err != nil {
				t.Fatal(err)
			}
			return acc
		}
		add := func(acc *Accumulator, r [3]int64) {
			rate := float64(r[2]) / 3
			if r[2]%13 == 0 {
				rate = math.NaN() // exercise the NaN-skip path
			}
			acc.Add(testRow(r[0], r[2]%5, r[1], rate, r[2]))
		}
		whole := mk()
		totalAbs := 0.0
		for _, r := range rows {
			add(whole, r)
			if rate := float64(r[2]) / 3; r[2]%13 != 0 {
				totalAbs += math.Abs(rate)
			}
		}
		split := 0
		if len(rows) > 0 {
			split = int(splitRaw) % (len(rows) + 1)
		}
		a, b := mk(), mk()
		for _, r := range rows[:split] {
			add(a, r)
		}
		for _, r := range rows[split:] {
			add(b, r)
		}
		merged := MergeGroups(spec, a.Groups(), b.Groups())
		// Reassociating an n-term float sum perturbs it by at most
		// O(n·eps·Σ|vᵢ|); anything past that is a real merge bug.
		floatTol := float64(len(rows)+1) * 1e-14 * (totalAbs + 1)
		if !partialsAgree(spec, whole.Groups(), merged, floatTol) {
			t.Fatalf("split at %d of %d rows: merged partials != whole", split, len(rows))
		}
		// Sketch decoding of raw fuzz bytes must error or succeed, never
		// panic; a successful decode must re-encode identically.
		if s, err := UnmarshalSketch(data); err == nil {
			if again, err := UnmarshalSketch(s.AppendBinary(nil)); err != nil {
				t.Fatalf("re-decode of re-encoded sketch failed: %v", err)
			} else if string(again.AppendBinary(nil)) != string(s.AppendBinary(nil)) {
				t.Fatal("sketch round trip unstable")
			}
		}
	})
}

// partialsAgree compares a whole-fold against a merged split-fold under
// the aggregation contract: bit equality everywhere except sums, whose
// fold order is observable in two narrow, documented ways — a saturated
// int sum clamps at an order-dependent point, and a float sum carries
// order-dependent rounding bounded by floatTol.
func partialsAgree(spec Spec, whole, merged []Group, floatTol float64) bool {
	if len(whole) != len(merged) {
		return false
	}
	for i := range whole {
		if CompareGroups(&whole[i], &merged[i]) != 0 {
			return false
		}
		for j, a := range spec.Aggs {
			sx, sy := whole[i].States[j], merged[i].States[j]
			if sx.N != sy.N || sx.HasMM != sy.HasMM {
				return false
			}
			if sx.HasMM && sx.MM.Compare(sy.MM) != 0 {
				return false
			}
			switch a.Func {
			case Sum, Avg:
				// Once either fold order overflowed, the clamp point (and
				// whether the other order overflowed at all) depends on
				// ordering; only the un-saturated case is exact.
				if !sx.Saturated && !sy.Saturated && sx.IntSum != sy.IntSum {
					return false
				}
				if !floatsClose(sx.FloatSum, sy.FloatSum, floatTol) {
					return false
				}
			case Quantile:
				if (sx.Sketch == nil) != (sy.Sketch == nil) {
					return false
				}
				if sx.Sketch != nil &&
					string(sx.Sketch.AppendBinary(nil)) != string(sy.Sketch.AppendBinary(nil)) {
					return false
				}
			}
		}
	}
	return true
}

func floatsClose(a, b, tol float64) bool {
	if a == b || (math.IsNaN(a) && math.IsNaN(b)) {
		return true
	}
	return math.Abs(a-b) <= tol
}
