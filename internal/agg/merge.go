package agg

import (
	"math"

	"littletable/internal/ltval"
)

// MergeGroups merges two group lists, each sorted by (bucket, key) as
// Groups() emits them, into one sorted list with per-group states
// combined. Inputs are partials over disjoint row sets (two tables on
// one shard, or two shards' scans), so merging a state is pure
// combination — no row is ever seen twice. Neither input is mutated:
// groups present in both lists get freshly copied states (sketches
// included), so a caller may keep the inputs — e.g. the server's
// per-table sections — alongside the merged result.
func MergeGroups(spec Spec, a, b []Group) []Group {
	out := make([]Group, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch c := CompareGroups(&a[i], &b[j]); {
		case c < 0:
			out = append(out, a[i])
			i++
		case c > 0:
			out = append(out, b[j])
			j++
		default:
			g := Group{Bucket: a[i].Bucket, Key: a[i].Key,
				States: make([]State, len(a[i].States))}
			copy(g.States, a[i].States)
			for k := range g.States {
				mergeState(spec.Aggs[k].Func, &g.States[k], &b[j].States[k])
			}
			out = append(out, g)
			i, j = i+1, j+1
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// mergeState folds src into dst for one aggregate function.
func mergeState(f Func, dst *State, src *State) {
	dst.N += src.N
	switch f {
	case Sum, Avg:
		if dst.IsFloat {
			dst.FloatSum += src.FloatSum
			return
		}
		switch {
		case dst.Saturated:
			// Sticky: keep dst's clamp.
		case src.Saturated:
			dst.IntSum = src.IntSum
			dst.Saturated = true
		default:
			dst.addInt(src.IntSum)
		}
	case Min:
		if src.HasMM && (!dst.HasMM || src.MM.Compare(dst.MM) < 0) {
			dst.MM = src.MM
			dst.HasMM = true
		}
	case Max:
		if src.HasMM && (!dst.HasMM || src.MM.Compare(dst.MM) > 0) {
			dst.MM = src.MM
			dst.HasMM = true
		}
	case Quantile:
		// A fresh sketch, not an in-place fold: dst.States was shallow-
		// copied by MergeGroups, so its Sketch pointer still belongs to
		// the input group and must not be mutated.
		merged := NewSketch()
		merged.Merge(dst.Sketch)
		merged.Merge(src.Sketch)
		dst.Sketch = merged
	}
}

// Output is one finalized group: the bucket start timestamp, the group
// key, and one concrete value per requested aggregate.
type Output struct {
	Bucket int64
	Key    []ltval.Value
	Values []ltval.Value
}

// Finalize turns partial groups into final values: count → Int64,
// integer sum → Int64 (clamped if saturated), float sum → Double,
// min/max → the witnessed value (Invalid-typed zero Value if every
// input was NaN), avg and quantile → Double (NaN over zero values).
func Finalize(spec Spec, groups []Group) []Output {
	out := make([]Output, len(groups))
	for gi := range groups {
		g := &groups[gi]
		vals := make([]ltval.Value, len(spec.Aggs))
		for i, a := range spec.Aggs {
			vals[i] = finalizeState(a, &g.States[i])
		}
		out[gi] = Output{Bucket: g.Bucket, Key: g.Key, Values: vals}
	}
	return out
}

func finalizeState(a Agg, st *State) ltval.Value {
	switch a.Func {
	case Count:
		return ltval.NewInt64(st.N)
	case Sum:
		if st.IsFloat {
			return ltval.NewDouble(st.FloatSum)
		}
		return ltval.NewInt64(st.IntSum)
	case Min, Max:
		if !st.HasMM {
			return ltval.Value{}
		}
		return st.MM
	case Avg:
		if st.N == 0 {
			return ltval.NewDouble(math.NaN())
		}
		if st.IsFloat {
			return ltval.NewDouble(st.FloatSum / float64(st.N))
		}
		return ltval.NewDouble(float64(st.IntSum) / float64(st.N))
	case Quantile:
		if st.Sketch == nil {
			return ltval.NewDouble(math.NaN())
		}
		return ltval.NewDouble(st.Sketch.Quantile(a.Q))
	default:
		return ltval.Value{}
	}
}
