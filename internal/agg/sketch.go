package agg

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// sketchAlpha is the sketch's relative accuracy: a reported quantile is
// within ±1% of the true value. With γ = (1+α)/(1−α), values are binned
// by ⌈log_γ v⌉, so a bucket index is ~14 bits for any physical quantity
// and the map stays tiny even for heavy-tailed data.
const sketchAlpha = 0.01

var (
	sketchGamma    = (1 + sketchAlpha) / (1 - sketchAlpha)
	sketchLogGamma = math.Log(sketchGamma)
)

// Sketch is a DDSketch-style quantile summary over logarithmic buckets:
// per-bucket counts for positive and negative values plus an exact zero
// count. Merging two sketches is bucket-count addition, which is
// associative and commutative — the property the router's shard-merge
// relies on (merge order cannot change a reported quantile).
type Sketch struct {
	pos  map[int32]int64
	neg  map[int32]int64 // indexed by the magnitude's bucket
	zero int64
}

// NewSketch returns an empty sketch.
func NewSketch() *Sketch {
	return &Sketch{pos: make(map[int32]int64), neg: make(map[int32]int64)}
}

// sketchIndex bins a positive value; ±Inf and extreme magnitudes clamp
// to the int32 range instead of hitting Go's undefined float→int
// conversion.
func sketchIndex(v float64) int32 {
	l := math.Ceil(math.Log(v) / sketchLogGamma)
	if l >= math.MaxInt32 {
		return math.MaxInt32
	}
	if l <= math.MinInt32 {
		return math.MinInt32
	}
	return int32(l)
}

// sketchValue is the representative value of bucket i, the midpoint of
// the bucket's (γ^(i−1), γ^i] range in relative terms.
func sketchValue(i int32) float64 {
	return 2 * math.Pow(sketchGamma, float64(i)) / (sketchGamma + 1)
}

// Add folds one value. NaN is ignored.
func (s *Sketch) Add(v float64) {
	switch {
	case math.IsNaN(v):
	case v == 0:
		s.zero++
	case v > 0:
		s.pos[sketchIndex(v)]++
	default:
		s.neg[sketchIndex(-v)]++
	}
}

// Count returns the number of values folded.
func (s *Sketch) Count() int64 {
	n := s.zero
	for _, c := range s.pos {
		n += c
	}
	for _, c := range s.neg {
		n += c
	}
	return n
}

// Merge folds o into s. o may be nil.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil {
		return
	}
	s.zero += o.zero
	for i, c := range o.pos {
		s.pos[i] += c
	}
	for i, c := range o.neg {
		s.neg[i] += c
	}
}

// Quantile returns the q-quantile estimate (q clamped to [0, 1]), or
// NaN for an empty sketch. Buckets are walked in value order: most
// negative first (descending magnitude index), then zero, then
// positives ascending.
func (s *Sketch) Quantile(q float64) float64 {
	n := s.Count()
	if n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(n-1)) // 0-based rank
	acc := int64(0)
	negIdx := sortedIndices(s.neg)
	for i := len(negIdx) - 1; i >= 0; i-- {
		acc += s.neg[negIdx[i]]
		if acc > rank {
			return -sketchValue(negIdx[i])
		}
	}
	acc += s.zero
	if acc > rank {
		return 0
	}
	for _, i := range sortedIndices(s.pos) {
		acc += s.pos[i]
		if acc > rank {
			return sketchValue(i)
		}
	}
	// Unreachable: rank < n and the walk covers all n values.
	return math.NaN()
}

func sortedIndices(m map[int32]int64) []int32 {
	out := make([]int32, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// AppendBinary appends a deterministic binary encoding (sorted bucket
// order, varint-packed) and returns the extended slice.
func (s *Sketch) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.zero))
	for _, m := range []map[int32]int64{s.pos, s.neg} {
		idx := sortedIndices(m)
		dst = binary.AppendUvarint(dst, uint64(len(idx)))
		for _, i := range idx {
			dst = binary.AppendVarint(dst, int64(i))
			dst = binary.AppendUvarint(dst, uint64(m[i]))
		}
	}
	return dst
}

// UnmarshalSketch decodes an AppendBinary image. The whole buffer must
// be consumed; counts and indices are validated so a hostile image
// cannot produce negative counts or out-of-range buckets.
func UnmarshalSketch(b []byte) (*Sketch, error) {
	s := NewSketch()
	zero, n := binary.Uvarint(b)
	if n <= 0 || zero > math.MaxInt64 {
		return nil, fmt.Errorf("agg: bad sketch zero count")
	}
	s.zero = int64(zero)
	b = b[n:]
	for _, m := range []map[int32]int64{s.pos, s.neg} {
		cnt, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("agg: bad sketch bucket count")
		}
		b = b[n:]
		// Each entry is ≥ 2 bytes; a count the buffer cannot hold is
		// rejected before any allocation proportional to it.
		if cnt > uint64(len(b)) {
			return nil, fmt.Errorf("agg: sketch bucket count %d exceeds payload", cnt)
		}
		for j := uint64(0); j < cnt; j++ {
			idx, n := binary.Varint(b)
			if n <= 0 || idx < math.MinInt32 || idx > math.MaxInt32 {
				return nil, fmt.Errorf("agg: bad sketch bucket index")
			}
			b = b[n:]
			c, n := binary.Uvarint(b)
			if n <= 0 || c == 0 || c > math.MaxInt64 {
				return nil, fmt.Errorf("agg: bad sketch bucket value")
			}
			b = b[n:]
			m[int32(idx)] += int64(c)
		}
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("agg: %d trailing bytes after sketch", len(b))
	}
	return s, nil
}
