// Package agg implements the background aggregators of §4.1.2: separate
// processes that read LittleTable source tables and write substantially
// smaller derived tables — per-network rollups over ten-minute periods,
// usage joined against PostgreSQL-style dimension data (device tags), and
// HyperLogLog sketches of distinct clients. Computing aggregates outside
// the database let Meraki iterate on aggregation schemes quickly; this
// package reproduces the three kinds the paper describes.
package agg

import (
	"fmt"
	"sort"

	"littletable/internal/apps"
	"littletable/internal/clock"
	"littletable/internal/configdb"
	"littletable/internal/core"
	"littletable/internal/hll"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// DefaultPeriod is the rollup bucket: "a new table of cumulative bytes
// transferred per network over ten-minute periods" (§4.1.2).
const DefaultPeriod = 10 * clock.Minute

// DefaultPersistenceLag is the paper's pragmatic durability assumption:
// "aggregators simply assume that data written more than 20 minutes in the
// past has reached disk" (§4.1.2). Aggregation never processes a period
// newer than now minus this lag.
const DefaultPersistenceLag = 20 * clock.Minute

// RollupSchema returns the per-network rollup destination schema, keyed
// (network, ts) with ts = period start.
func RollupSchema() *schema.Schema {
	return schema.MustNew([]schema.Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "bytes", Type: ltval.Int64}, // cumulative bytes in the period
		{Name: "samples", Type: ltval.Int64},
	}, []string{"network", "ts"})
}

// TagSchema returns the per-tag usage destination schema (the §4.1.2
// example: a school tagging access points "classrooms", "playing-fields").
func TagSchema() *schema.Schema {
	return schema.MustNew([]schema.Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "tag", Type: ltval.String},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "bytes", Type: ltval.Int64},
	}, []string{"network", "tag", "ts"})
}

// HLLSchema returns the distinct-clients destination schema: one
// HyperLogLog sketch per network per period, stored as a blob.
func HLLSchema() *schema.Schema {
	return schema.MustNew([]schema.Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "sketch", Type: ltval.Blob},
	}, []string{"network", "ts"})
}

// Rollup aggregates a usage source table (usage.Schema layout) into a
// per-network rollup table.
type Rollup struct {
	src apps.Store
	dst apps.Store
	clk clock.Clock

	// Period is the aggregation bucket length.
	Period int64
	// PersistenceLag holds back aggregation of data that may not be on
	// disk yet.
	PersistenceLag int64
	// Horizon bounds how far back the first run looks.
	Horizon int64
	// UseFlush removes the persistence-lag assumption by issuing the
	// explicit flush command §4.1.2 proposes before each period (requires
	// a source store implementing apps.Flusher).
	UseFlush bool

	next int64 // start of the next period to process; 0 = not recovered

	PeriodsProcessed int64
	RowsWritten      int64
}

// NewRollup returns a rollup aggregator from src (usage schema) to dst
// (RollupSchema).
func NewRollup(src, dst apps.Store, clk clock.Clock, horizon int64) *Rollup {
	return &Rollup{
		src:            src,
		dst:            dst,
		clk:            clk,
		Period:         DefaultPeriod,
		PersistenceLag: DefaultPersistenceLag,
		Horizon:        horizon,
	}
}

// Recover determines where to resume after a restart or LittleTable crash
// (§4.1.2): because LittleTable flushes rows in insertion order, finding
// any row from an aggregation period in the destination means all prior
// periods completed; re-process from that period forward.
func (r *Rollup) Recover() error {
	now := r.clk.Now()
	ts, found, err := apps.FindLatestTimestamp(r.dst, now, r.Horizon)
	if err != nil {
		return err
	}
	if !found {
		r.next = floorTo(r.Horizon, r.Period)
		return nil
	}
	// Re-process the period of the found row and everything after it.
	r.next = floorTo(ts, r.Period)
	return nil
}

// Run processes all complete periods older than the persistence lag (or
// every complete period, after an explicit flush, with UseFlush).
func (r *Rollup) Run() error {
	if r.next == 0 {
		if err := r.Recover(); err != nil {
			return err
		}
	}
	lag := r.PersistenceLag
	if r.UseFlush {
		if f, ok := r.src.(apps.Flusher); ok {
			if err := f.FlushBefore(floorTo(r.clk.Now(), r.Period)); err != nil {
				return err
			}
			lag = 0
		}
	}
	limit := floorTo(r.clk.Now()-lag, r.Period)
	for r.next+r.Period <= limit {
		if err := r.processPeriod(r.next); err != nil {
			return err
		}
		r.next += r.Period
		r.PeriodsProcessed++
	}
	return nil
}

// processPeriod aggregates one [start, start+Period) bucket. Destination
// rows are inserted in ascending key order, so every insert takes the
// largest-key uniqueness fast path (§3.4.4: "aggregators, which by design
// insert the rows of each aggregation period in ascending primary key
// order").
func (r *Rollup) processPeriod(start int64) error {
	q := core.NewQuery()
	q.MinTs = start
	q.MaxTs = start + r.Period - 1
	it, err := r.src.Query(q)
	if err != nil {
		return err
	}
	defer it.Close()
	type acc struct {
		bytes   int64
		samples int64
	}
	byNet := map[int64]*acc{}
	for it.Next() {
		row := it.Row()
		net := row[0].Int
		a := byNet[net]
		if a == nil {
			a = &acc{}
			byNet[net] = a
		}
		// rate (bytes/s) × sample interval (s) ≈ bytes in the interval.
		secs := float64(row[2].Int-row[3].Int) / float64(clock.Second)
		a.bytes += int64(row[5].Float * secs)
		a.samples++
	}
	if err := it.Err(); err != nil {
		return err
	}
	if len(byNet) == 0 {
		return nil
	}
	nets := make([]int64, 0, len(byNet))
	for n := range byNet {
		nets = append(nets, n)
	}
	sort.Slice(nets, func(i, j int) bool { return nets[i] < nets[j] })
	rows := make([]schema.Row, 0, len(nets))
	for _, n := range nets {
		a := byNet[n]
		rows = append(rows, schema.Row{
			ltval.NewInt64(n),
			ltval.NewTimestamp(start),
			ltval.NewInt64(a.bytes),
			ltval.NewInt64(a.samples),
		})
	}
	n, err := apps.InsertTolerant(r.dst, rows)
	if err != nil {
		return fmt.Errorf("agg: rollup insert for period %d: %w", start, err)
	}
	r.RowsWritten += int64(n)
	return nil
}

// Next exposes the resume position for tests.
func (r *Rollup) Next() int64 { return r.next }

func floorTo(ts, unit int64) int64 {
	q := ts / unit
	if ts%unit < 0 {
		q--
	}
	return q * unit
}

// TagAggregator joins usage source rows with configdb device tags,
// producing per-(network, tag) usage — the dimension-table join that
// computing aggregates outside the database made possible (§4.1.2).
type TagAggregator struct {
	src apps.Store
	dst apps.Store
	cfg *configdb.DB
	clk clock.Clock

	Period         int64
	PersistenceLag int64
	Horizon        int64
	next           int64

	RowsWritten int64
}

// NewTagAggregator returns a tag aggregator from src (usage schema) to dst
// (TagSchema).
func NewTagAggregator(src, dst apps.Store, cfg *configdb.DB, clk clock.Clock, horizon int64) *TagAggregator {
	return &TagAggregator{
		src:            src,
		dst:            dst,
		cfg:            cfg,
		clk:            clk,
		Period:         DefaultPeriod,
		PersistenceLag: DefaultPersistenceLag,
		Horizon:        horizon,
	}
}

// Run processes all complete periods older than the persistence lag.
func (t *TagAggregator) Run() error {
	if t.next == 0 {
		now := t.clk.Now()
		ts, found, err := apps.FindLatestTimestamp(t.dst, now, t.Horizon)
		if err != nil {
			return err
		}
		if found {
			t.next = floorTo(ts, t.Period)
		} else {
			t.next = floorTo(t.Horizon, t.Period)
		}
	}
	limit := floorTo(t.clk.Now()-t.PersistenceLag, t.Period)
	for t.next+t.Period <= limit {
		if err := t.processPeriod(t.next); err != nil {
			return err
		}
		t.next += t.Period
	}
	return nil
}

func (t *TagAggregator) processPeriod(start int64) error {
	q := core.NewQuery()
	q.MinTs = start
	q.MaxTs = start + t.Period - 1
	it, err := t.src.Query(q)
	if err != nil {
		return err
	}
	defer it.Close()
	// (network, tag) → bytes. Tags come from the dimension snapshot.
	type key struct {
		net int64
		tag string
	}
	sums := map[key]int64{}
	tagCache := map[int64]map[int64][]string{} // network → device → tags
	for it.Next() {
		row := it.Row()
		net, dev := row[0].Int, row[1].Int
		tags, ok := tagCache[net]
		if !ok {
			tags = t.cfg.TagsByDevice(net)
			tagCache[net] = tags
		}
		secs := float64(row[2].Int-row[3].Int) / float64(clock.Second)
		bytes := int64(row[5].Float * secs)
		for _, tag := range tags[dev] {
			sums[key{net, tag}] += bytes
		}
	}
	if err := it.Err(); err != nil {
		return err
	}
	if len(sums) == 0 {
		return nil
	}
	keys := make([]key, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].net != keys[j].net {
			return keys[i].net < keys[j].net
		}
		return keys[i].tag < keys[j].tag
	})
	rows := make([]schema.Row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, schema.Row{
			ltval.NewInt64(k.net),
			ltval.NewString(k.tag),
			ltval.NewTimestamp(start),
			ltval.NewInt64(sums[k]),
		})
	}
	n, err := apps.InsertTolerant(t.dst, rows)
	if err != nil {
		return fmt.Errorf("agg: tag insert for period %d: %w", start, err)
	}
	t.RowsWritten += int64(n)
	return nil
}

// ClientCounter builds per-network HyperLogLog sketches of distinct
// clients from an events source table (client identifiers appear in event
// info), the fixed-size probabilistic set tracking of §4.1.2.
type ClientCounter struct {
	src apps.Store
	dst apps.Store
	clk clock.Clock

	Period         int64
	PersistenceLag int64
	Horizon        int64
	Precision      uint8
	next           int64

	RowsWritten int64
}

// NewClientCounter returns an HLL aggregator from src (events schema) to
// dst (HLLSchema).
func NewClientCounter(src, dst apps.Store, clk clock.Clock, horizon int64) *ClientCounter {
	return &ClientCounter{
		src:            src,
		dst:            dst,
		clk:            clk,
		Period:         clock.Hour,
		PersistenceLag: DefaultPersistenceLag,
		Horizon:        horizon,
		Precision:      hll.DefaultPrecision,
	}
}

// Run processes all complete periods older than the persistence lag.
func (c *ClientCounter) Run() error {
	if c.next == 0 {
		now := c.clk.Now()
		ts, found, err := apps.FindLatestTimestamp(c.dst, now, c.Horizon)
		if err != nil {
			return err
		}
		if found {
			c.next = floorTo(ts, c.Period)
		} else {
			c.next = floorTo(c.Horizon, c.Period)
		}
	}
	limit := floorTo(c.clk.Now()-c.PersistenceLag, c.Period)
	for c.next+c.Period <= limit {
		if err := c.processPeriod(c.next); err != nil {
			return err
		}
		c.next += c.Period
	}
	return nil
}

func (c *ClientCounter) processPeriod(start int64) error {
	q := core.NewQuery()
	q.MinTs = start
	q.MaxTs = start + c.Period - 1
	it, err := c.src.Query(q)
	if err != nil {
		return err
	}
	defer it.Close()
	sketches := map[int64]*hll.Sketch{}
	for it.Next() {
		row := it.Row()
		net := row[0].Int
		info := row[5].Bytes // "client=<mac>"
		s := sketches[net]
		if s == nil {
			s = hll.MustNew(c.Precision)
			sketches[net] = s
		}
		s.Add(info)
	}
	if err := it.Err(); err != nil {
		return err
	}
	if len(sketches) == 0 {
		return nil
	}
	nets := make([]int64, 0, len(sketches))
	for n := range sketches {
		nets = append(nets, n)
	}
	sort.Slice(nets, func(i, j int) bool { return nets[i] < nets[j] })
	rows := make([]schema.Row, 0, len(nets))
	for _, n := range nets {
		rows = append(rows, schema.Row{
			ltval.NewInt64(n),
			ltval.NewTimestamp(start),
			ltval.NewBlob(sketches[n].Marshal()),
		})
	}
	n, err := apps.InsertTolerant(c.dst, rows)
	if err != nil {
		return fmt.Errorf("agg: hll insert for period %d: %w", start, err)
	}
	c.RowsWritten += int64(n)
	return nil
}

// DistinctClients unions the sketches stored for a network over
// [minTs, maxTs] and returns the estimated distinct-client count —
// demonstrating that sketches stored as blobs merge across periods.
func DistinctClients(dst apps.Store, network int64, minTs, maxTs int64) (uint64, error) {
	q := core.NewQuery()
	q.Lower = []ltval.Value{ltval.NewInt64(network)}
	q.Upper = q.Lower
	q.MinTs, q.MaxTs = minTs, maxTs
	it, err := dst.Query(q)
	if err != nil {
		return 0, err
	}
	defer it.Close()
	var total *hll.Sketch
	for it.Next() {
		s, err := hll.Unmarshal(it.Row()[2].Bytes)
		if err != nil {
			return 0, err
		}
		if total == nil {
			total = s
		} else if err := total.Merge(s); err != nil {
			return 0, err
		}
	}
	if err := it.Err(); err != nil {
		return 0, err
	}
	if total == nil {
		return 0, nil
	}
	return total.Estimate(), nil
}
