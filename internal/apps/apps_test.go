// Integration tests for the §4 application daemons running against real
// in-process tables with a fake clock and a simulated device fleet.
package apps_test

import (
	"testing"

	"littletable/internal/apps"
	"littletable/internal/apps/agg"
	"littletable/internal/apps/events"
	"littletable/internal/apps/motion"
	"littletable/internal/apps/usage"
	"littletable/internal/clock"
	"littletable/internal/configdb"
	"littletable/internal/core"
	"littletable/internal/devicesim"
	"littletable/internal/schema"
)

const start = 1_782_018_420 * clock.Second

type world struct {
	clk   *clock.Fake
	fleet *devicesim.Fleet
	cfg   *configdb.DB
	dir   string
	t     *testing.T
}

func newWorld(t *testing.T) *world {
	t.Helper()
	clk := clock.NewFake(start)
	return &world{
		clk:   clk,
		fleet: devicesim.NewFleet(clk, 99),
		cfg:   configdb.New(),
		dir:   t.TempDir(),
		t:     t,
	}
}

func (w *world) advance(d int64) {
	w.clk.Advance(d)
	w.fleet.AdvanceAll()
}

func (w *world) table(name string, sc *schema.Schema) *core.Table {
	w.t.Helper()
	tab, err := core.CreateTable(w.dir, name, sc, 0, core.Options{Clock: w.clk})
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(func() { tab.Close() })
	return tab
}

func TestUsageGrabberEndToEnd(t *testing.T) {
	w := newWorld(t)
	for i := int64(1); i <= 5; i++ {
		w.fleet.AddDevice(i, 100+(i%2), "access_point")
	}
	tab := w.table("usage", usage.Schema())
	g := usage.New(&apps.CoreStore{T: tab}, w.fleet, w.clk)

	// First poll: caches only, no rows.
	if err := g.Poll(); err != nil {
		t.Fatal(err)
	}
	if g.RowsInserted != 0 {
		t.Fatalf("first poll inserted %d rows", g.RowsInserted)
	}
	// Subsequent polls produce one row per device per poll.
	for i := 0; i < 10; i++ {
		w.advance(clock.Minute)
		if err := g.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	if g.RowsInserted != 50 {
		t.Fatalf("inserted %d rows, want 50", g.RowsInserted)
	}
	rows, err := tab.QueryAll(core.NewQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("stored %d rows", len(rows))
	}
	for _, r := range rows {
		rate := r[5].Float
		if rate <= 0 {
			t.Fatalf("non-positive rate: %v", r)
		}
		if r[2].Int-r[3].Int != clock.Minute {
			t.Fatalf("sample interval wrong: %v", r)
		}
	}
}

func TestUsageGrabberGapHandling(t *testing.T) {
	w := newWorld(t)
	dev := w.fleet.AddDevice(1, 100, "access_point")
	tab := w.table("usage", usage.Schema())
	g := usage.New(&apps.CoreStore{T: tab}, w.fleet, w.clk)
	g.Poll()
	w.advance(clock.Minute)
	g.Poll() // one row
	// Short unavailability (< T): proceeds as normal on return.
	dev.SetOnline(false)
	w.advance(5 * clock.Minute)
	g.Poll() // no row
	dev.SetOnline(true)
	w.advance(clock.Minute)
	g.Poll() // row covering the 6-minute interval
	if g.RowsInserted != 2 {
		t.Fatalf("after short gap: %d rows", g.RowsInserted)
	}
	// Long unavailability (> T): no row; treated like first contact.
	dev.SetOnline(false)
	w.advance(2 * clock.Hour)
	g.Poll()
	dev.SetOnline(true)
	w.advance(clock.Minute)
	before := g.RowsInserted
	g.Poll()
	if g.RowsInserted != before {
		t.Fatal("row inserted across a gap longer than T")
	}
	if g.GapsSkipped == 0 {
		t.Fatal("gap not accounted")
	}
	// Next poll resumes normal rows.
	w.advance(clock.Minute)
	g.Poll()
	if g.RowsInserted != before+1 {
		t.Fatal("did not resume after long gap")
	}
}

func TestUsageGrabberCrashRecovery(t *testing.T) {
	w := newWorld(t)
	for i := int64(1); i <= 3; i++ {
		w.fleet.AddDevice(i, 100, "access_point")
	}
	tab := w.table("usage", usage.Schema())
	g := usage.New(&apps.CoreStore{T: tab}, w.fleet, w.clk)
	g.Poll()
	for i := 0; i < 5; i++ {
		w.advance(clock.Minute)
		g.Poll()
	}
	// "Crash": new grabber, rebuild cache from LittleTable (§4.1.1).
	g2 := usage.New(&apps.CoreStore{T: tab}, w.fleet, w.clk)
	if err := g2.RebuildCache(); err != nil {
		t.Fatal(err)
	}
	if g2.CacheLen() != 3 {
		t.Fatalf("rebuilt cache has %d entries", g2.CacheLen())
	}
	ts, _, ok := g2.CachedSample(1)
	if !ok || ts != w.clk.Now() {
		t.Fatalf("rebuilt sample ts = %d, want %d", ts, w.clk.Now())
	}
	// Recovered grabber keeps producing rows seamlessly.
	w.advance(clock.Minute)
	if err := g2.Poll(); err != nil {
		t.Fatal(err)
	}
	if g2.RowsInserted != 3 {
		t.Fatalf("post-recovery poll inserted %d", g2.RowsInserted)
	}
}

func TestEventsGrabberEndToEnd(t *testing.T) {
	w := newWorld(t)
	for i := int64(1); i <= 3; i++ {
		w.fleet.AddDevice(i, 200, "access_point")
	}
	tab := w.table("events", events.Schema())
	g := events.New(&apps.CoreStore{T: tab}, w.fleet, w.clk)
	w.advance(4 * clock.Hour)
	if err := g.Poll(); err != nil {
		t.Fatal(err)
	}
	if g.RowsInserted == 0 {
		t.Fatal("no events stored after 4 hours")
	}
	// Every stored event id matches the device's view.
	rows, err := tab.QueryAll(core.NewQuery())
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rows)) != g.RowsInserted {
		t.Fatalf("stored %d, inserted %d", len(rows), g.RowsInserted)
	}
	// Second poll after more activity fetches only the new events.
	before := g.RowsInserted
	w.advance(clock.Hour)
	if err := g.Poll(); err != nil {
		t.Fatal(err)
	}
	rows2, _ := tab.QueryAll(core.NewQuery())
	if int64(len(rows2)) != g.RowsInserted || g.RowsInserted <= before {
		t.Fatal("incremental poll wrong")
	}
}

func TestEventsGrabberRestartRecovery(t *testing.T) {
	w := newWorld(t)
	dev := w.fleet.AddDevice(1, 200, "access_point")
	tab := w.table("events", events.Schema())
	g := events.New(&apps.CoreStore{T: tab}, w.fleet, w.clk)
	w.advance(3 * clock.Hour)
	g.Poll()
	want, _ := g.CachedID(1)
	if want == 0 {
		t.Skip("no events for this seed")
	}
	// Restart with recent data in the window.
	g2 := events.New(&apps.CoreStore{T: tab}, w.fleet, w.clk)
	if err := g2.RebuildCache(); err != nil {
		t.Fatal(err)
	}
	got, _ := g2.CachedID(1)
	if got != want {
		t.Fatalf("recovered id %d, want %d", got, want)
	}
	// No duplicate insert errors on the next poll.
	w.advance(clock.Hour)
	if err := g2.Poll(); err != nil {
		t.Fatal(err)
	}
	_ = dev
}

func TestEventsGrabberDeepRecovery(t *testing.T) {
	// Device last heard from long before the recovery window: the grabber
	// must fall back to the latest-row-for-prefix search (§4.2).
	w := newWorld(t)
	w.fleet.AddDevice(1, 200, "access_point")
	tab := w.table("events", events.Schema())
	g := events.New(&apps.CoreStore{T: tab}, w.fleet, w.clk)
	w.advance(3 * clock.Hour)
	g.Poll()
	want, _ := g.CachedID(1)
	if want == 0 {
		t.Skip("no events for this seed")
	}
	if err := tab.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// A very long quiet gap, far beyond the recovery window. Freeze the
	// device so it generates nothing new.
	dev := w.fleet.Device(1)
	dev.SetOnline(false)
	w.clk.Advance(30 * clock.Day)
	dev.SetOnline(true)
	g2 := events.New(&apps.CoreStore{T: tab}, w.fleet, w.clk)
	if err := g2.RebuildCache(); err != nil {
		t.Fatal(err)
	}
	got, _ := g2.CachedID(1)
	if got != want {
		t.Fatalf("deep recovery id %d, want %d", got, want)
	}
}

func TestEventsSentinels(t *testing.T) {
	w := newWorld(t)
	w.fleet.AddDevice(1, 200, "access_point")
	tab := w.table("events", events.Schema())
	g := events.New(&apps.CoreStore{T: tab}, w.fleet, w.clk)
	g.SentinelPeriod = events.DefaultSentinelPeriod
	w.advance(3 * clock.Hour)
	g.Poll()
	rows, _ := tab.QueryAll(core.NewQuery())
	sentinels := 0
	for _, r := range rows {
		if string(r[4].Bytes) == events.SentinelType {
			sentinels++
		}
	}
	if sentinels == 0 {
		t.Fatal("no sentinel rows written")
	}
}

func TestMotionGrabberAndSearch(t *testing.T) {
	w := newWorld(t)
	w.fleet.AddDevice(1, 300, "camera")
	tab := w.table("motion", motion.Schema())
	g := motion.New(&apps.CoreStore{T: tab}, w.fleet, w.clk)
	w.advance(2 * clock.Hour)
	if err := g.Poll(); err != nil {
		t.Fatal(err)
	}
	if g.RowsInserted == 0 {
		t.Fatal("no motion rows")
	}
	store := &apps.CoreStore{T: tab}
	// Full-frame search matches everything (bounded).
	all, err := motion.SearchRect(store, 1, 0, 0, devicesim.FrameWidth, devicesim.FrameHeight,
		start, w.clk.Now(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(all)) != g.RowsInserted {
		t.Fatalf("full-frame search: %d of %d", len(all), g.RowsInserted)
	}
	// Newest first.
	for i := 1; i < len(all); i++ {
		if all[i].Ts > all[i-1].Ts {
			t.Fatal("search results not newest-first")
		}
	}
	// A small rectangle matches a strict subset.
	small, err := motion.SearchRect(store, 1, 0, 0, 96, 64, start, w.clk.Now(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(small) >= len(all) {
		t.Fatal("small rect matched as much as the full frame")
	}
	// Limit respected.
	few, _ := motion.SearchRect(store, 1, 0, 0, devicesim.FrameWidth, devicesim.FrameHeight,
		start, w.clk.Now(), 3)
	if len(few) != 3 {
		t.Fatalf("limit: %d", len(few))
	}
	// Heatmap sums durations.
	hm, err := motion.Heatmap(store, 1, start, w.clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, rrow := range hm {
		for _, v := range rrow {
			total += v
		}
	}
	if total == 0 {
		t.Fatal("empty heatmap")
	}
}

func TestRollupAggregator(t *testing.T) {
	w := newWorld(t)
	for i := int64(1); i <= 4; i++ {
		w.fleet.AddDevice(i, 100+(i%2), "access_point")
	}
	src := w.table("usage", usage.Schema())
	dst := w.table("usage_10m", agg.RollupSchema())
	g := usage.New(&apps.CoreStore{T: src}, w.fleet, w.clk)
	g.Poll()
	for i := 0; i < 60; i++ { // an hour of minutes
		w.advance(clock.Minute)
		g.Poll()
	}
	r := agg.NewRollup(&apps.CoreStore{T: src}, &apps.CoreStore{T: dst}, w.clk, start-clock.Day)
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.RowsWritten == 0 {
		t.Fatal("rollup wrote nothing")
	}
	rows, _ := dst.QueryAll(core.NewQuery())
	// Two networks × several complete 10-minute periods.
	if len(rows) < 4 {
		t.Fatalf("rollup rows: %d", len(rows))
	}
	for _, row := range rows {
		if row[1].Int%agg.DefaultPeriod != 0 {
			t.Fatal("rollup ts not period-aligned")
		}
		if row[2].Int <= 0 || row[3].Int <= 0 {
			t.Fatalf("rollup accumulated nothing: %v", row)
		}
	}
	// Periods newer than the persistence lag are withheld.
	latest := rows[len(rows)-1][1].Int
	if latest+agg.DefaultPeriod > w.clk.Now()-agg.DefaultPersistenceLag {
		t.Fatal("rollup processed a period inside the persistence lag")
	}
	// Re-run: idempotent resume (re-processes only its last period, whose
	// rows are duplicates and must not error by being re-inserted).
	before := r.RowsWritten
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if r.RowsWritten != before {
		t.Fatal("idle re-run wrote rows")
	}
}

func TestRollupRecovery(t *testing.T) {
	w := newWorld(t)
	w.fleet.AddDevice(1, 100, "access_point")
	src := w.table("usage", usage.Schema())
	dst := w.table("usage_10m", agg.RollupSchema())
	g := usage.New(&apps.CoreStore{T: src}, w.fleet, w.clk)
	g.Poll()
	for i := 0; i < 90; i++ {
		w.advance(clock.Minute)
		g.Poll()
	}
	r1 := agg.NewRollup(&apps.CoreStore{T: src}, &apps.CoreStore{T: dst}, w.clk, start-clock.Day)
	if err := r1.Run(); err != nil {
		t.Fatal(err)
	}
	// A fresh aggregator (restart) recovers its position from dst alone.
	r2 := agg.NewRollup(&apps.CoreStore{T: src}, &apps.CoreStore{T: dst}, w.clk, start-clock.Day)
	if err := r2.Recover(); err != nil {
		t.Fatal(err)
	}
	if r2.Next() == 0 || r2.Next() > r1.Next() {
		t.Fatalf("recovered position %d vs %d", r2.Next(), r1.Next())
	}
	// Continue: more source data, both converge.
	for i := 0; i < 30; i++ {
		w.advance(clock.Minute)
		g.Poll()
	}
	if err := r2.Run(); err != nil {
		t.Fatal(err)
	}
	if r2.Next() <= r1.Next() {
		t.Fatal("recovered aggregator made no progress")
	}
}

func TestTagAggregator(t *testing.T) {
	w := newWorld(t)
	cust := w.cfg.AddCustomer("school")
	net, _ := w.cfg.AddNetwork(cust.ID, "campus")
	d1, _ := w.cfg.AddDevice(net.ID, configdb.KindAccessPoint, "ap1", "classrooms")
	d2, _ := w.cfg.AddDevice(net.ID, configdb.KindAccessPoint, "ap2", "playing-fields")
	w.fleet.AddDevice(d1.ID, net.ID, "access_point")
	w.fleet.AddDevice(d2.ID, net.ID, "access_point")
	src := w.table("usage", usage.Schema())
	dst := w.table("usage_by_tag", agg.TagSchema())
	g := usage.New(&apps.CoreStore{T: src}, w.fleet, w.clk)
	g.Poll()
	for i := 0; i < 40; i++ {
		w.advance(clock.Minute)
		g.Poll()
	}
	ta := agg.NewTagAggregator(&apps.CoreStore{T: src}, &apps.CoreStore{T: dst}, w.cfg, w.clk, start-clock.Day)
	if err := ta.Run(); err != nil {
		t.Fatal(err)
	}
	rows, _ := dst.QueryAll(core.NewQuery())
	if len(rows) == 0 {
		t.Fatal("tag aggregation produced nothing")
	}
	tags := map[string]bool{}
	for _, r := range rows {
		tags[string(r[1].Bytes)] = true
		if r[3].Int <= 0 {
			t.Fatalf("zero bytes for tag row %v", r)
		}
	}
	if !tags["classrooms"] || !tags["playing-fields"] {
		t.Fatalf("tags seen: %v", tags)
	}
}

func TestClientCounter(t *testing.T) {
	w := newWorld(t)
	for i := int64(1); i <= 4; i++ {
		w.fleet.AddDevice(i, 200, "access_point")
	}
	src := w.table("events", events.Schema())
	dst := w.table("clients_hll", agg.HLLSchema())
	g := events.New(&apps.CoreStore{T: src}, w.fleet, w.clk)
	for i := 0; i < 6; i++ {
		w.advance(clock.Hour)
		g.Poll()
	}
	cc := agg.NewClientCounter(&apps.CoreStore{T: src}, &apps.CoreStore{T: dst}, w.clk, start-clock.Day)
	if err := cc.Run(); err != nil {
		t.Fatal(err)
	}
	if cc.RowsWritten == 0 {
		t.Skip("no events for this seed")
	}
	n, err := agg.DistinctClients(&apps.CoreStore{T: dst}, 200, start, w.clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("distinct clients = 0")
	}
}

func TestFindLatestTimestamp(t *testing.T) {
	w := newWorld(t)
	tab := w.table("usage", usage.Schema())
	store := &apps.CoreStore{T: tab}
	// Empty table.
	_, found, err := apps.FindLatestTimestamp(store, w.clk.Now(), start-clock.Day)
	if err != nil || found {
		t.Fatalf("empty table: %v %v", found, err)
	}
	// One old row, far back.
	old := w.clk.Now() - 20*clock.Hour
	if err := tab.Insert([]schema.Row{usage.Row(1, 1, old, old-60, 100, 1)}); err != nil {
		t.Fatal(err)
	}
	ts, found, err := apps.FindLatestTimestamp(store, w.clk.Now(), start-clock.Day)
	if err != nil || !found || ts != old {
		t.Fatalf("found %v ts %d, want %d", found, ts, old)
	}
	// A newer row dominates.
	newer := w.clk.Now() - 3*clock.Minute
	tab.Insert([]schema.Row{usage.Row(1, 1, newer, newer-60, 200, 1)})
	ts, _, _ = apps.FindLatestTimestamp(store, w.clk.Now(), start-clock.Day)
	if ts != newer {
		t.Fatalf("latest = %d, want %d", ts, newer)
	}
}

func TestRollupWithExplicitFlush(t *testing.T) {
	// With UseFlush (the §4.1.2 flush command), the aggregator processes
	// right up to the current period boundary instead of holding back the
	// 20-minute persistence lag — and the source rows it consumed are
	// actually on disk.
	w := newWorld(t)
	w.fleet.AddDevice(1, 100, "access_point")
	src := w.table("usage", usage.Schema())
	dst := w.table("usage_10m", agg.RollupSchema())
	g := usage.New(&apps.CoreStore{T: src}, w.fleet, w.clk)
	g.Poll()
	for i := 0; i < 35; i++ {
		w.advance(clock.Minute)
		g.Poll()
	}
	lagged := agg.NewRollup(&apps.CoreStore{T: src}, &apps.CoreStore{T: dst}, w.clk, start-clock.Day)
	if err := lagged.Run(); err != nil {
		t.Fatal(err)
	}
	laggedNext := lagged.Next()

	dst2 := w.table("usage_10m_flush", agg.RollupSchema())
	flushed := agg.NewRollup(&apps.CoreStore{T: src}, &apps.CoreStore{T: dst2}, w.clk, start-clock.Day)
	flushed.UseFlush = true
	if err := flushed.Run(); err != nil {
		t.Fatal(err)
	}
	if flushed.Next() <= laggedNext {
		t.Fatalf("UseFlush did not advance past the lag: %d vs %d", flushed.Next(), laggedNext)
	}
	if src.DiskTabletCount() == 0 {
		t.Fatal("explicit flush left source rows in memory")
	}
}
