// Package events implements EventsGrabber (§4.2): a daemon that tracks
// device event logs — DHCP leases, wireless (dis)associations, 802.1X
// authentications — by keeping the most recent event id fetched from each
// device, supplying it on each poll, and storing the newer events the
// device returns. Event rows are keyed by (network, device, ts) with the
// event id and contents as the value.
package events

import (
	"fmt"

	"littletable/internal/apps"
	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/devicesim"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// DefaultRecoveryWindow is the fixed duration of recent rows scanned when
// rebuilding the id cache after a restart (§4.2).
const DefaultRecoveryWindow = 6 * clock.Hour

// DefaultSentinelPeriod spaces the optional sentinel rows (§4.2's
// suggested optimization); zero disables them.
const DefaultSentinelPeriod = clock.Hour

// SentinelType marks sentinel rows so queries can filter them.
const SentinelType = "__sentinel"

// Schema returns the events table's schema.
func Schema() *schema.Schema {
	return schema.MustNew([]schema.Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "device", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "event_id", Type: ltval.Int64},
		{Name: "type", Type: ltval.String},
		{Name: "info", Type: ltval.String},
	}, []string{"network", "device", "ts"})
}

// Row builds one event row.
func Row(network, device, ts, id int64, typ, info string) schema.Row {
	return schema.Row{
		ltval.NewInt64(network),
		ltval.NewInt64(device),
		ltval.NewTimestamp(ts),
		ltval.NewInt64(id),
		ltval.NewString(typ),
		ltval.NewString(info),
	}
}

// Grabber is the EventsGrabber daemon state.
type Grabber struct {
	store apps.Store
	fleet *devicesim.Fleet
	clk   clock.Clock

	// RecoveryWindow bounds the restart scan.
	RecoveryWindow int64
	// SentinelPeriod spaces sentinel rows; 0 disables.
	SentinelPeriod int64

	cache        map[int64]int64 // device id → latest fetched event id
	lastSentinel map[int64]int64 // device id → ts of last sentinel row

	RowsInserted int64
}

// New returns a grabber over the given events table store.
func New(store apps.Store, fleet *devicesim.Fleet, clk clock.Clock) *Grabber {
	return &Grabber{
		store:          store,
		fleet:          fleet,
		clk:            clk,
		RecoveryWindow: DefaultRecoveryWindow,
		cache:          make(map[int64]int64),
		lastSentinel:   make(map[int64]int64),
	}
}

// Poll fetches new events from every reachable device and stores them.
func (g *Grabber) Poll() error {
	now := g.clk.Now()
	for _, dev := range g.fleet.Devices() {
		dev.Advance(now)
		afterID, known := g.cache[dev.ID]
		if !known {
			// A device we have no state for: recover its position first.
			if err := g.recoverDevice(dev); err != nil {
				return err
			}
			afterID = g.cache[dev.ID]
		}
		evs, ok := dev.FetchEventsAfter(afterID, 0)
		if !ok {
			continue
		}
		var batch []schema.Row
		for _, ev := range evs {
			batch = append(batch, Row(dev.NetworkID, dev.ID, ev.Ts, ev.ID, ev.Type, ev.Info))
			if ev.ID > afterID {
				afterID = ev.ID
			}
		}
		if len(batch) > 0 {
			if err := g.store.Insert(batch); err != nil {
				return fmt.Errorf("events: insert: %w", err)
			}
			g.RowsInserted += int64(len(batch))
			g.cache[dev.ID] = afterID
		}
		if g.SentinelPeriod > 0 && now-g.lastSentinel[dev.ID] >= g.SentinelPeriod {
			// Sentinel row: records the latest event id so a restarted
			// grabber never searches further back than one sentinel period
			// (§4.2's improvement).
			sent := Row(dev.NetworkID, dev.ID, now, afterID, SentinelType, "")
			if err := g.store.Insert([]schema.Row{sent}); err == nil {
				g.lastSentinel[dev.ID] = now
			}
		}
	}
	return nil
}

// recoverDevice re-establishes the latest event id for one device after a
// restart or first contact, per §4.2: first check recent rows; if none,
// ask the device for its oldest event and use its timestamp to bound a
// latest-row search.
func (g *Grabber) recoverDevice(dev *devicesim.Device) error {
	now := g.clk.Now()
	// Recent-window scan for this device.
	q := core.NewQuery()
	q.Lower = []ltval.Value{ltval.NewInt64(dev.NetworkID), ltval.NewInt64(dev.ID)}
	q.Upper = q.Lower
	q.MinTs = now - g.RecoveryWindow
	q.MaxTs = now
	it, err := g.store.Query(q)
	if err != nil {
		return err
	}
	best := int64(0)
	for it.Next() {
		if id := it.Row()[3].Int; id > best {
			best = id
		}
	}
	errScan := it.Err()
	it.Close()
	if errScan != nil {
		return errScan
	}
	if best > 0 {
		g.cache[dev.ID] = best
		return nil
	}
	// Nothing recent. The device's oldest retained event bounds how far
	// back a useful row could be; find the latest stored row for this
	// (network, device) via the latest-row-for-prefix path (§3.4.5).
	row, found, err := g.store.Latest([]ltval.Value{
		ltval.NewInt64(dev.NetworkID), ltval.NewInt64(dev.ID),
	})
	if err != nil {
		return err
	}
	if found {
		g.cache[dev.ID] = row[3].Int
		return nil
	}
	// Never seen this device: start from nothing; the device will replay
	// from its oldest retained event.
	g.cache[dev.ID] = 0
	return nil
}

// RebuildCache drops all state and re-recovers every device, as after an
// EventsGrabber restart.
func (g *Grabber) RebuildCache() error {
	g.cache = make(map[int64]int64)
	for _, dev := range g.fleet.Devices() {
		if err := g.recoverDevice(dev); err != nil {
			return err
		}
	}
	return nil
}

// CachedID exposes a device's cached event id for tests.
func (g *Grabber) CachedID(device int64) (int64, bool) {
	id, ok := g.cache[device]
	return id, ok
}
