// Package motion implements MotionGrabber and video motion search (§4.3):
// cameras encode per-coarse-cell motion as 32-bit words; the grabber
// fetches them like event logs and stores them keyed by (camera, ts);
// Dashboard searches backwards in time for motion within a rectangle of
// the frame and draws heatmaps of motion over time.
package motion

import (
	"fmt"

	"littletable/internal/apps"
	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/devicesim"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// Schema returns the motion table's schema: keyed on the camera's
// identifier and time, with the event id, encoded bit vector, and duration
// as the value (§4.3).
func Schema() *schema.Schema {
	return schema.MustNew([]schema.Column{
		{Name: "camera", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "event_id", Type: ltval.Int64},
		{Name: "word", Type: ltval.Int64}, // EncodeMotionWord value
		{Name: "duration_ms", Type: ltval.Int32},
	}, []string{"camera", "ts"})
}

// Row builds one motion row.
func Row(camera int64, ev devicesim.MotionEvent) schema.Row {
	return schema.Row{
		ltval.NewInt64(camera),
		ltval.NewTimestamp(ev.Ts),
		ltval.NewInt64(ev.ID),
		ltval.NewInt64(int64(ev.Word)),
		ltval.NewInt32(ev.DurationMs),
	}
}

// Grabber is the MotionGrabber daemon state.
type Grabber struct {
	store apps.Store
	fleet *devicesim.Fleet
	clk   clock.Clock

	cache map[int64]int64 // camera id → latest fetched motion id

	RowsInserted int64
}

// New returns a grabber over the given motion table store.
func New(store apps.Store, fleet *devicesim.Fleet, clk clock.Clock) *Grabber {
	return &Grabber{store: store, fleet: fleet, clk: clk, cache: make(map[int64]int64)}
}

// Poll fetches new motion events from every reachable camera.
func (g *Grabber) Poll() error {
	now := g.clk.Now()
	for _, dev := range g.fleet.Devices() {
		if dev.Kind != "camera" {
			continue
		}
		dev.Advance(now)
		afterID := g.cache[dev.ID]
		evs, ok := dev.FetchMotionAfter(afterID, 0)
		if !ok || len(evs) == 0 {
			continue
		}
		batch := make([]schema.Row, 0, len(evs))
		for _, ev := range evs {
			batch = append(batch, Row(dev.ID, ev))
			if ev.ID > afterID {
				afterID = ev.ID
			}
		}
		if err := g.store.Insert(batch); err != nil {
			return fmt.Errorf("motion: insert: %w", err)
		}
		g.RowsInserted += int64(len(batch))
		g.cache[dev.ID] = afterID
	}
	return nil
}

// Match is one motion event matching a search.
type Match struct {
	Ts         int64
	DurationMs int32
	Word       uint32
}

// SearchRect searches backwards in time for motion within the pixel
// rectangle [x0,x1)×[y0,y1) of a camera's frame between minTs and maxTs,
// returning up to limit matches, newest first (§4.3: "select any
// rectangular area of interest ... and search backwards in time for motion
// events within that area"). With LittleTable returning ~500k rows/second,
// a week of one camera's video (~51k rows) scans in ~100 ms.
func SearchRect(store apps.Store, camera int64, x0, y0, x1, y1 int, minTs, maxTs int64, limit int) ([]Match, error) {
	cells := devicesim.CellsForRect(x0, y0, x1, y1)
	if len(cells) == 0 {
		return nil, nil
	}
	q := core.NewQuery()
	q.Lower = []ltval.Value{ltval.NewInt64(camera)}
	q.Upper = q.Lower
	q.MinTs, q.MaxTs = minTs, maxTs
	q.Descending = true
	it, err := store.Query(q)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []Match
	for it.Next() {
		row := it.Row()
		word := uint32(row[3].Int)
		if !devicesim.MotionMatchesRect(word, cells) {
			continue
		}
		out = append(out, Match{Ts: row[1].Int, DurationMs: int32(row[4].Int), Word: word})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, it.Err()
}

// Heatmap accumulates per-coarse-cell motion durations over a time window,
// the data behind Dashboard's "heatmaps of motion over time" (§4.3).
// Result indexed [row][col] in milliseconds.
func Heatmap(store apps.Store, camera int64, minTs, maxTs int64) ([devicesim.CoarseRows][devicesim.CoarseCols]int64, error) {
	var hm [devicesim.CoarseRows][devicesim.CoarseCols]int64
	q := core.NewQuery()
	q.Lower = []ltval.Value{ltval.NewInt64(camera)}
	q.Upper = q.Lower
	q.MinTs, q.MaxTs = minTs, maxTs
	it, err := store.Query(q)
	if err != nil {
		return hm, err
	}
	defer it.Close()
	for it.Next() {
		row := it.Row()
		r, c, _ := devicesim.DecodeMotionWord(uint32(row[3].Int))
		if r < devicesim.CoarseRows && c < devicesim.CoarseCols {
			hm[r][c] += int64(int32(row[4].Int))
		}
	}
	return hm, it.Err()
}
