// Package apps holds the shared plumbing for the Dashboard application
// daemons of §4 — UsageGrabber, EventsGrabber, MotionGrabber, and the
// aggregators. Each daemon works against the Store interface, so the same
// code runs in-process against a core.Table (tests, benchmarks, co-located
// deployments) or over the wire through the client adaptor (the paper's
// deployment).
package apps

import (
	"errors"
	"strings"

	"littletable/internal/client"
	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// RowIter streams query results.
type RowIter interface {
	Next() bool
	Row() schema.Row
	Err() error
	Close() error
}

// Store is the slice of LittleTable a grabber needs.
type Store interface {
	Schema() *schema.Schema
	Insert(rows []schema.Row) error
	Query(q core.Query) (RowIter, error)
	Latest(prefix []ltval.Value) (schema.Row, bool, error)
}

// Flusher is the optional store capability backing §4.1.2's proposed
// flush command: aggregators that see it flush their source table up to
// the period boundary instead of assuming 20-minute-old data is durable.
type Flusher interface {
	FlushBefore(ts int64) error
}

// CoreStore adapts an in-process table.
type CoreStore struct{ T *core.Table }

var (
	_ Store   = (*CoreStore)(nil)
	_ Flusher = (*CoreStore)(nil)
)

// FlushBefore implements Flusher.
func (s *CoreStore) FlushBefore(ts int64) error { return s.T.FlushBefore(ts) }

// Schema implements Store.
func (s *CoreStore) Schema() *schema.Schema { return s.T.Schema() }

// Insert implements Store.
func (s *CoreStore) Insert(rows []schema.Row) error { return s.T.Insert(rows) }

// Query implements Store.
func (s *CoreStore) Query(q core.Query) (RowIter, error) {
	it, err := s.T.Query(q)
	if err != nil {
		return nil, err
	}
	return it, nil
}

// Latest implements Store.
func (s *CoreStore) Latest(prefix []ltval.Value) (schema.Row, bool, error) {
	return s.T.LatestRow(prefix)
}

// ClientStore adapts a remote table handle.
type ClientStore struct{ T *client.Table }

var _ Store = (*ClientStore)(nil)

// Schema implements Store.
func (s *ClientStore) Schema() *schema.Schema { return s.T.Schema() }

// Insert implements Store.
func (s *ClientStore) Insert(rows []schema.Row) error { return s.T.InsertNow(rows) }

// Query implements Store.
func (s *ClientStore) Query(q core.Query) (RowIter, error) {
	cq := client.Query{
		Lower: q.Lower, Upper: q.Upper,
		LowerInc: q.LowerInc, UpperInc: q.UpperInc,
		MinTs: q.MinTs, MaxTs: q.MaxTs,
		Descending: q.Descending, Limit: q.Limit,
	}
	return s.T.Query(cq), nil
}

// Latest implements Store.
func (s *ClientStore) Latest(prefix []ltval.Value) (schema.Row, bool, error) {
	return s.T.LatestRow(prefix)
}

// IsDuplicate reports whether err is a primary-key uniqueness violation,
// whether raised in-process or over the wire.
func IsDuplicate(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, core.ErrDuplicateKey) {
		return true
	}
	var re *client.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, "duplicate primary key")
}

// InsertTolerant inserts rows, silently skipping duplicates. Aggregators
// need this: after a crash they "simply re-process the period for the row
// [they] found and all subsequent periods" (§4.1.2), and re-processing a
// partially-written period regenerates rows that already exist.
func InsertTolerant(s Store, rows []schema.Row) (inserted int, err error) {
	if err := s.Insert(rows); err == nil {
		return len(rows), nil
	} else if !IsDuplicate(err) {
		return 0, err
	}
	// Batch had duplicates; fall back to per-row inserts. Insert semantics
	// are per-row (batches are a transport optimization), so rows before
	// the failing one may already be in — per-row retry is safe either way.
	for _, row := range rows {
		if err := s.Insert([]schema.Row{row}); err != nil {
			if IsDuplicate(err) {
				continue
			}
			return inserted, err
		}
		inserted++
	}
	return inserted, nil
}

// FindLatestTimestamp locates the newest row timestamp in a store the way
// the paper's aggregators do (§4.1.2): LittleTable "provides no built-in,
// efficient way to find the most recent row in a table", so they "query
// their destination tables over exponentially longer periods in the past
// until they find some row" and then binary-search for the most recent
// one. Returns ok=false for an empty table (probed back to horizon).
func FindLatestTimestamp(s Store, now, horizon int64) (int64, bool, error) {
	// Exponential probe: find some window [start, now] containing a row.
	span := int64(1_000_000) // start at one second
	start := now - span
	for {
		if start < horizon {
			start = horizon
		}
		any, err := anyRowInRange(s, start, now)
		if err != nil {
			return 0, false, err
		}
		if any {
			break
		}
		if start == horizon {
			return 0, false, nil
		}
		span *= 2
		start = now - span
	}
	// Binary search: narrow to the newest non-empty suffix [lo, now].
	lo, hi := start, now
	for hi-lo > 1_000_000 { // stop at one-second resolution
		mid := lo + (hi-lo)/2
		any, err := anyRowInRange(s, mid, now)
		if err != nil {
			return 0, false, err
		}
		if any {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Scan the final small window for the exact maximum.
	_, best, err := maxTsInRange(s, lo, now)
	if err != nil {
		return 0, false, err
	}
	return best, true, nil
}

func anyRowInRange(s Store, minTs, maxTs int64) (bool, error) {
	q := core.NewQuery()
	q.MinTs, q.MaxTs = minTs, maxTs
	q.Limit = 1
	it, err := s.Query(q)
	if err != nil {
		return false, err
	}
	defer it.Close()
	any := it.Next()
	return any, it.Err()
}

func maxTsInRange(s Store, minTs, maxTs int64) (bool, int64, error) {
	q := core.NewQuery()
	q.MinTs, q.MaxTs = minTs, maxTs
	it, err := s.Query(q)
	if err != nil {
		return false, 0, err
	}
	defer it.Close()
	sc := s.Schema()
	var best int64
	any := false
	for it.Next() {
		ts := sc.Ts(it.Row())
		if !any || ts > best {
			best = ts
			any = true
		}
	}
	return any, best, it.Err()
}
