// Package usage implements UsageGrabber (§4.1.1): a daemon that
// periodically fetches lifetime byte counters from devices, converts them
// to average transfer rates, and stores them in a LittleTable table keyed
// by (network, device, ts) — the two-dimensionally clustered table behind
// Dashboard's per-network and per-device transfer graphs.
package usage

import (
	"fmt"

	"littletable/internal/apps"
	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/devicesim"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// DefaultThreshold is T from §4.1.1: after unavailability longer than T,
// the grabber treats the next response like a first contact rather than
// claiming a steady rate over the whole gap. "Dashboard sets T to an
// hour."
const DefaultThreshold = clock.Hour

// Schema returns the usage table's schema: key (network, device, ts),
// value (prev_ts, counter, rate), exactly the key/value split of §4.1.1.
func Schema() *schema.Schema {
	return schema.MustNew([]schema.Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "device", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "prev_ts", Type: ltval.Timestamp},
		{Name: "counter", Type: ltval.Int64},
		{Name: "rate", Type: ltval.Double}, // bytes/second over [prev_ts, ts)
	}, []string{"network", "device", "ts"})
}

// Row builds one usage row.
func Row(network, device, ts, prevTs int64, counter uint64, rate float64) schema.Row {
	return schema.Row{
		ltval.NewInt64(network),
		ltval.NewInt64(device),
		ltval.NewTimestamp(ts),
		ltval.NewTimestamp(prevTs),
		ltval.NewInt64(int64(counter)),
		ltval.NewDouble(rate),
	}
}

// sample is the in-memory cache entry per device: the previous fetch time
// and counter (t1, c1).
type sample struct {
	t1 int64
	c1 uint64
}

// Grabber is the UsageGrabber daemon state.
type Grabber struct {
	store apps.Store
	fleet *devicesim.Fleet
	clk   clock.Clock

	// Threshold is T; gaps longer than T render as gaps in Dashboard.
	Threshold int64

	cache map[int64]sample // device id → (t1, c1)

	// Stats.
	RowsInserted int64
	GapsSkipped  int64
}

// New returns a grabber over the given usage table store.
func New(store apps.Store, fleet *devicesim.Fleet, clk clock.Clock) *Grabber {
	return &Grabber{
		store:     store,
		fleet:     fleet,
		clk:       clk,
		Threshold: DefaultThreshold,
		cache:     make(map[int64]sample),
	}
}

// Poll fetches every reachable device's counter once and inserts rate rows
// ("Every minute UsageGrabber fetches from each device D in network N a
// 64-bit count of the number of bytes the device has transferred").
func (g *Grabber) Poll() error {
	now := g.clk.Now()
	var batch []schema.Row
	for _, dev := range g.fleet.Devices() {
		dev.Advance(now)
		c2, ok := dev.FetchCounter()
		if !ok {
			continue // unreachable: no row, Dashboard shows a gap
		}
		prev, seen := g.cache[dev.ID]
		g.cache[dev.ID] = sample{t1: now, c1: c2}
		if !seen {
			// Very first response: cache only (§4.1.1).
			continue
		}
		if now-prev.t1 > g.Threshold {
			// Long unavailability: "it feels disingenuous to show that the
			// device maintained a steady rate of transfer over the entire
			// period". Cache but insert nothing.
			g.GapsSkipped++
			continue
		}
		if now == prev.t1 {
			continue
		}
		secs := float64(now-prev.t1) / float64(clock.Second)
		rate := float64(c2-prev.c1) / secs
		batch = append(batch, Row(dev.NetworkID, dev.ID, now, prev.t1, c2, rate))
	}
	if len(batch) == 0 {
		return nil
	}
	if err := g.store.Insert(batch); err != nil {
		return fmt.Errorf("usage: insert: %w", err)
	}
	g.RowsInserted += int64(len(batch))
	return nil
}

// ExpireCache drops entries older than T: the grabber's next contact with
// those devices behaves like a first contact, so the cache stays bounded
// (§4.1.1).
func (g *Grabber) ExpireCache() {
	now := g.clk.Now()
	for id, s := range g.cache {
		if now-s.t1 > g.Threshold {
			delete(g.cache, id)
		}
	}
}

// RebuildCache reconstructs the in-memory cache after a LittleTable crash
// by querying the maximum timestamp and counter per device from now-T
// forward (§4.1.1: with 30,000 devices this takes under four seconds).
func (g *Grabber) RebuildCache() error {
	now := g.clk.Now()
	q := core.NewQuery()
	q.MinTs = now - g.Threshold
	q.MaxTs = now
	it, err := g.store.Query(q)
	if err != nil {
		return err
	}
	defer it.Close()
	g.cache = make(map[int64]sample)
	for it.Next() {
		row := it.Row()
		dev := row[1].Int
		ts := row[2].Int
		if cur, ok := g.cache[dev]; !ok || ts > cur.t1 {
			g.cache[dev] = sample{t1: ts, c1: uint64(row[4].Int)}
		}
	}
	return it.Err()
}

// CacheLen exposes the cache size for tests and monitoring.
func (g *Grabber) CacheLen() int { return len(g.cache) }

// CachedSample returns a device's cache entry, for tests.
func (g *Grabber) CachedSample(device int64) (ts int64, counter uint64, ok bool) {
	s, ok := g.cache[device]
	return s.t1, s.c1, ok
}
