// Package archive implements LittleTable's continuous archival (§3.5):
// every 10 minutes Dashboard runs an rsync-like sync from shard to spare
// "repeatedly until a sync completes without copying any files, indicating
// that shard and spare have identical contents". The approach works
// because tablets are immutable once written and a copy-nothing pass is
// quick relative to the rate of new tablets.
//
// Sync is an incremental one-way directory mirror: files are copied when
// the destination is missing them or differs in size or content hash, and
// destination files absent from the source are deleted (tablets removed by
// merges or TTL expiry must disappear from the spare too).
package archive

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SyncStats summarizes one sync pass.
type SyncStats struct {
	FilesCopied  int
	FilesDeleted int
	BytesCopied  int64
	FilesSame    int
}

// Clean reports whether the pass copied and deleted nothing: the
// convergence signal §3.5's loop waits for.
func (s SyncStats) Clean() bool { return s.FilesCopied == 0 && s.FilesDeleted == 0 }

// Sync mirrors src into dst once and reports what it did. Paths are
// created as needed. Temporary files (".tmp" suffix) are skipped: they are
// in-flight tablet writes that the next pass will see completed or gone.
func Sync(src, dst string) (SyncStats, error) {
	var stats SyncStats
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return stats, err
	}
	srcFiles, err := listFiles(src)
	if err != nil {
		return stats, err
	}
	dstFiles, err := listFiles(dst)
	if err != nil {
		return stats, err
	}
	srcSet := make(map[string]os.FileInfo, len(srcFiles))
	for rel, fi := range srcFiles {
		srcSet[rel] = fi
	}
	// Copy new/changed files.
	rels := make([]string, 0, len(srcFiles))
	for rel := range srcFiles {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		sfi := srcFiles[rel]
		dfi, ok := dstFiles[rel]
		if ok && dfi.Size() == sfi.Size() {
			same, err := sameContent(filepath.Join(src, rel), filepath.Join(dst, rel))
			if err != nil {
				return stats, err
			}
			if same {
				stats.FilesSame++
				continue
			}
		}
		n, err := copyFile(filepath.Join(src, rel), filepath.Join(dst, rel))
		if err != nil {
			return stats, fmt.Errorf("archive: copy %s: %w", rel, err)
		}
		stats.FilesCopied++
		stats.BytesCopied += n
	}
	// Delete files gone from the source.
	for rel := range dstFiles {
		if _, ok := srcSet[rel]; !ok {
			if err := os.Remove(filepath.Join(dst, rel)); err != nil {
				return stats, err
			}
			stats.FilesDeleted++
		}
	}
	return stats, nil
}

// SyncUntilClean runs Sync passes until one copies nothing, as §3.5
// describes, up to maxPasses (0 = default 10).
func SyncUntilClean(src, dst string, maxPasses int) (passes int, err error) {
	if maxPasses <= 0 {
		maxPasses = 10
	}
	for passes = 1; passes <= maxPasses; passes++ {
		stats, err := Sync(src, dst)
		if err != nil {
			return passes, err
		}
		if stats.Clean() {
			return passes, nil
		}
	}
	return maxPasses, fmt.Errorf("archive: no clean pass within %d attempts", maxPasses)
}

// listFiles returns relative path → FileInfo for all regular files under
// root, excluding in-flight temporaries.
func listFiles(root string) (map[string]os.FileInfo, error) {
	out := map[string]os.FileInfo{}
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil // raced a merge/TTL deletion; next pass settles it
			}
			return err
		}
		if fi.IsDir() || strings.HasSuffix(path, ".tmp") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		out[rel] = fi
		return nil
	})
	if os.IsNotExist(err) {
		return out, nil
	}
	return out, err
}

// sameContent compares files by CRC32C, cheaper than byte comparison for
// the common same case and collision-safe enough for a mirror that re-runs
// until clean.
func sameContent(a, b string) (bool, error) {
	ha, err := fileCRC(a)
	if err != nil {
		return false, err
	}
	hb, err := fileCRC(b)
	if err != nil {
		return false, err
	}
	return ha == hb, nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func fileCRC(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h := crc32.New(crcTable)
	if _, err := io.Copy(h, f); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}

// copyFile copies src to dst atomically (write temp + rename), returning
// bytes copied.
func copyFile(src, dst string) (int64, error) {
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return 0, err
	}
	in, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	tmp := dst + ".copy.tmp"
	out, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(out, in)
	if err != nil {
		out.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := out.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return n, os.Rename(tmp, dst)
}
