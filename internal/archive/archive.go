// Package archive implements LittleTable's continuous archival (§3.5):
// every 10 minutes Dashboard runs an rsync-like sync from shard to spare
// "repeatedly until a sync completes without copying any files, indicating
// that shard and spare have identical contents". The approach works
// because tablets are immutable once written and a copy-nothing pass is
// quick relative to the rate of new tablets.
//
// Sync is an incremental one-way directory mirror: files are copied when
// the destination is missing them or differs in size or content hash, and
// destination files absent from the source are deleted (tablets removed by
// merges or TTL expiry must disappear from the spare too).
package archive

import (
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"littletable/internal/vfs"
)

// SyncStats summarizes one sync pass.
type SyncStats struct {
	FilesCopied  int
	FilesDeleted int
	BytesCopied  int64
	FilesSame    int
}

// Clean reports whether the pass copied and deleted nothing: the
// convergence signal §3.5's loop waits for.
func (s SyncStats) Clean() bool { return s.FilesCopied == 0 && s.FilesDeleted == 0 }

// Sync mirrors src into dst once on the real filesystem, without fsync.
func Sync(src, dst string) (SyncStats, error) {
	return SyncFS(vfs.OsFS{}, src, dst, false)
}

// SyncFS mirrors src into dst once through fsys and reports what it did.
// Paths are created as needed. Temporary files (".tmp" suffix) are skipped:
// they are in-flight tablet writes that the next pass will see completed or
// gone. With durable, each copied file is fsynced before its rename and the
// target directory after, so a power cut on the spare cannot leave a copy
// that the next pass wrongly believes complete.
func SyncFS(fsys vfs.FS, src, dst string, durable bool) (SyncStats, error) {
	var stats SyncStats
	if err := fsys.MkdirAll(dst); err != nil {
		return stats, err
	}
	srcFiles, err := listFiles(fsys, src)
	if err != nil {
		return stats, err
	}
	dstFiles, err := listFiles(fsys, dst)
	if err != nil {
		return stats, err
	}
	// Copy new/changed files.
	rels := make([]string, 0, len(srcFiles))
	for rel := range srcFiles {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		sfi := srcFiles[rel]
		dfi, ok := dstFiles[rel]
		if ok && dfi.Size() == sfi.Size() {
			same, err := sameContent(fsys, filepath.Join(src, rel), filepath.Join(dst, rel))
			if err != nil {
				return stats, err
			}
			if same {
				stats.FilesSame++
				continue
			}
		}
		n, err := copyFile(fsys, filepath.Join(src, rel), filepath.Join(dst, rel), durable)
		if err != nil {
			return stats, fmt.Errorf("archive: copy %s: %w", rel, err)
		}
		stats.FilesCopied++
		stats.BytesCopied += n
	}
	// Delete files gone from the source.
	for rel := range dstFiles {
		if _, ok := srcFiles[rel]; !ok {
			if err := fsys.Remove(filepath.Join(dst, rel)); err != nil {
				return stats, err
			}
			stats.FilesDeleted++
		}
	}
	return stats, nil
}

// SyncUntilClean runs Sync passes until one copies nothing, as §3.5
// describes, up to maxPasses (0 = default 10).
func SyncUntilClean(src, dst string, maxPasses int) (passes int, err error) {
	return SyncUntilCleanFS(vfs.OsFS{}, src, dst, maxPasses, false)
}

// SyncUntilCleanFS is SyncUntilClean through an explicit filesystem.
func SyncUntilCleanFS(fsys vfs.FS, src, dst string, maxPasses int, durable bool) (passes int, err error) {
	if maxPasses <= 0 {
		maxPasses = 10
	}
	for passes = 1; passes <= maxPasses; passes++ {
		stats, err := SyncFS(fsys, src, dst, durable)
		if err != nil {
			return passes, err
		}
		if stats.Clean() {
			return passes, nil
		}
	}
	return maxPasses, fmt.Errorf("archive: no clean pass within %d attempts", maxPasses)
}

// listFiles returns relative path → FileInfo for all regular files under
// root, excluding in-flight temporaries, by recursive ReadDir.
func listFiles(fsys vfs.FS, root string) (map[string]fs.FileInfo, error) {
	out := map[string]fs.FileInfo{}
	var walk func(dir, rel string) error
	walk = func(dir, rel string) error {
		ents, err := fsys.ReadDir(dir)
		if err != nil {
			if os.IsNotExist(err) {
				return nil // raced a merge/TTL deletion; next pass settles it
			}
			return err
		}
		for _, e := range ents {
			name := e.Name()
			childRel := name
			if rel != "" {
				childRel = filepath.Join(rel, name)
			}
			if e.IsDir() {
				if err := walk(filepath.Join(dir, name), childRel); err != nil {
					return err
				}
				continue
			}
			if strings.HasSuffix(name, ".tmp") {
				continue
			}
			fi, err := e.Info()
			if err != nil {
				if os.IsNotExist(err) {
					continue // deleted between list and stat
				}
				return err
			}
			out[childRel] = fi
		}
		return nil
	}
	if err := walk(root, ""); err != nil {
		return out, err
	}
	return out, nil
}

// sameContent compares files by CRC32C, cheaper than byte comparison for
// the common same case and collision-safe enough for a mirror that re-runs
// until clean.
func sameContent(fsys vfs.FS, a, b string) (bool, error) {
	ha, err := fileCRC(fsys, a)
	if err != nil {
		return false, err
	}
	hb, err := fileCRC(fsys, b)
	if err != nil {
		return false, err
	}
	return ha == hb, nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func fileCRC(fsys vfs.FS, path string) (uint32, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	h := crc32.New(crcTable)
	if _, err := io.Copy(h, io.NewSectionReader(f, 0, st.Size())); err != nil {
		return 0, err
	}
	return h.Sum32(), nil
}

// copyFile copies src to dst atomically (write temp + rename), returning
// bytes copied. With durable, the temp file is fsynced before the rename
// and the parent directory after it.
func copyFile(fsys vfs.FS, src, dst string, durable bool) (int64, error) {
	if err := fsys.MkdirAll(filepath.Dir(dst)); err != nil {
		return 0, err
	}
	in, err := fsys.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	st, err := in.Stat()
	if err != nil {
		return 0, err
	}
	tmp := dst + ".copy.tmp"
	out, err := fsys.Create(tmp)
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(out, io.NewSectionReader(in, 0, st.Size()))
	if err != nil {
		out.Close()
		fsys.Remove(tmp)
		return 0, err
	}
	if durable {
		if err := out.Sync(); err != nil {
			out.Close()
			fsys.Remove(tmp)
			return 0, err
		}
	}
	if err := out.Close(); err != nil {
		fsys.Remove(tmp)
		return 0, err
	}
	if err := fsys.Rename(tmp, dst); err != nil {
		fsys.Remove(tmp)
		return 0, err
	}
	if durable {
		return n, fsys.SyncDir(vfs.DirOf(dst))
	}
	return n, nil
}
