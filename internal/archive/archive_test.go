package archive

import (
	"os"
	"path/filepath"
	"testing"

	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

func write(t *testing.T, dir, rel, content string) {
	t.Helper()
	p := filepath.Join(dir, rel)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func read(t *testing.T, dir, rel string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, rel))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestSyncCopiesNewFiles(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	write(t, src, "usage/desc.json", "descriptor")
	write(t, src, "usage/000000000001.tab", "tablet-data")
	stats, err := Sync(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesCopied != 2 || stats.FilesDeleted != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if read(t, dst, "usage/000000000001.tab") != "tablet-data" {
		t.Error("tablet content wrong")
	}
	// Second pass is clean.
	stats, err = Sync(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Clean() || stats.FilesSame != 2 {
		t.Fatalf("second pass: %+v", stats)
	}
}

func TestSyncDetectsChangedContent(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	write(t, src, "desc.json", "v1-xx")
	Sync(src, dst)
	write(t, src, "desc.json", "v2-yy") // same length, different bytes
	stats, err := Sync(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesCopied != 1 {
		t.Fatalf("changed file not recopied: %+v", stats)
	}
	if read(t, dst, "desc.json") != "v2-yy" {
		t.Error("content not updated")
	}
}

func TestSyncDeletesRemovedFiles(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	write(t, src, "a.tab", "a")
	write(t, src, "b.tab", "b")
	Sync(src, dst)
	// Merge removed a.tab on the shard.
	os.Remove(filepath.Join(src, "a.tab"))
	stats, err := Sync(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesDeleted != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if _, err := os.Stat(filepath.Join(dst, "a.tab")); !os.IsNotExist(err) {
		t.Error("deleted file survives on spare")
	}
}

func TestSyncSkipsTmpFiles(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	write(t, src, "partial.tab.tmp", "in-flight")
	stats, err := Sync(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FilesCopied != 0 {
		t.Error("tmp file copied")
	}
}

func TestSyncUntilClean(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	write(t, src, "x.tab", "x")
	passes, err := SyncUntilClean(src, dst, 5)
	if err != nil {
		t.Fatal(err)
	}
	if passes != 2 { // one copying pass + one clean pass
		t.Errorf("passes = %d", passes)
	}
}

func TestSyncEmptySource(t *testing.T) {
	src, dst := t.TempDir(), t.TempDir()
	stats, err := Sync(src, dst)
	if err != nil || !stats.Clean() {
		t.Fatalf("%+v %v", stats, err)
	}
	// Nonexistent source behaves as empty.
	stats, err = Sync(filepath.Join(src, "missing"), dst)
	if err != nil || !stats.Clean() {
		t.Fatalf("missing source: %+v %v", stats, err)
	}
}

// TestShardToSpareFailover reproduces §2.2's failover flow end-to-end:
// a shard's LittleTable directory syncs to a spare; after the shard
// "fails", the spare's directory opens as a working table holding every
// synced row.
func TestShardToSpareFailover(t *testing.T) {
	shard, spare := t.TempDir(), t.TempDir()
	clk := clock.NewFake(1_782_018_420 * clock.Second)
	sc := schema.MustNew([]schema.Column{
		{Name: "k", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "v", Type: ltval.Int64},
	}, []string{"k", "ts"})
	tab, err := core.CreateTable(shard, "usage", sc, 0, core.Options{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	now := clk.Now()
	for i := int64(0); i < 500; i++ {
		if err := tab.Insert([]schema.Row{{
			ltval.NewInt64(i % 7), ltval.NewTimestamp(now - i), ltval.NewInt64(i),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := SyncUntilClean(shard, spare, 5); err != nil {
		t.Fatal(err)
	}
	// More inserts + another sync cycle (continuous archival).
	for i := int64(500); i < 600; i++ {
		tab.Insert([]schema.Row{{
			ltval.NewInt64(i % 7), ltval.NewTimestamp(now - i), ltval.NewInt64(i),
		}})
	}
	if err := tab.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := SyncUntilClean(shard, spare, 5); err != nil {
		t.Fatal(err)
	}
	tab.Close() // shard fails

	// Spare takes over: open the synced directory.
	spareTab, err := core.OpenTable(spare, "usage", core.Options{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer spareTab.Close()
	rows, err := spareTab.QueryAll(core.NewQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 600 {
		t.Fatalf("spare recovered %d rows, want 600", len(rows))
	}
}
