// Package block implements the 64 kB row blocks that on-disk tablets are
// grouped into (§3.2). A block holds consecutive rows in primary-key order
// plus a row-offset directory, so that once a tablet's index has located
// the right block, a binary search within the block finds the relevant row.
package block

import (
	"errors"
	"fmt"

	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// TargetSize is the default uncompressed block size (§3.2: "grouped into
// 64 kB blocks").
const TargetSize = 64 * 1024

// ErrCorrupt reports a structurally invalid block.
var ErrCorrupt = errors.New("block: corrupt block")

// Layout: [row bytes...][u32 row offset ×N][u32 N], all little-endian.
// Offsets are from the start of the block.

// Writer accumulates rows into one uncompressed block image. In ModeAuto
// it additionally accumulates per-column vectors and, at Finish, emits the
// columnar image when trial encoding shows it is smaller than the legacy
// row-major one.
type Writer struct {
	sc      *schema.Schema
	mode    Mode
	buf     []byte
	offsets []uint32
	cols    []colAcc // auto mode only
	cbuf    []byte   // reusable columnar image buffer
	stats   EncodeStats
}

// NewWriter returns a Writer for rows of schema sc, trial-encoding each
// block (ModeAuto).
func NewWriter(sc *schema.Schema) *Writer { return NewWriterMode(sc, ModeAuto) }

// NewWriterMode returns a Writer with an explicit encoding mode. ModeLegacy
// output is byte-identical to the pre-columnar format.
func NewWriterMode(sc *schema.Schema, mode Mode) *Writer {
	w := &Writer{sc: sc, mode: mode, buf: make([]byte, 0, TargetSize+1024)}
	if mode == ModeAuto {
		w.cols = make([]colAcc, len(sc.Columns))
		for i := range w.cols {
			w.cols[i].class = sc.ColumnClass(i)
		}
	}
	return w
}

// Append adds row to the block. Rows must be appended in ascending primary
// key order; the tablet writer guarantees this. Byte cells are copied into
// the column accumulators, so the row may alias a reused buffer.
func (w *Writer) Append(row schema.Row) {
	w.offsets = append(w.offsets, uint32(len(w.buf)))
	w.buf = w.sc.AppendRow(w.buf, row)
	for i := range w.cols {
		c := &w.cols[i]
		switch c.class {
		case schema.ClassInt:
			c.ints = append(c.ints, row[i].Int)
		case schema.ClassFloat:
			c.floats = append(c.floats, row[i].Float)
		default:
			c.flat = append(c.flat, row[i].Bytes...)
			c.ends = append(c.ends, len(c.flat))
		}
	}
}

// Count returns the number of rows appended so far.
func (w *Writer) Count() int { return len(w.offsets) }

// SizeBytes returns the current uncompressed legacy size including the
// directory. Block-split decisions use this in both modes, so auto and
// legacy tablets get identical block boundaries.
func (w *Writer) SizeBytes() int { return len(w.buf) + 4*len(w.offsets) + 4 }

// Stats returns the encoder statistics accumulated across Finish calls.
func (w *Writer) Stats() EncodeStats { return w.stats }

// Finish serializes the block, reporting which encoding it chose, and
// resets the writer for reuse. The returned slice is valid until the
// writer's next Append or Finish.
func (w *Writer) Finish() ([]byte, Encoding) {
	n := len(w.offsets)
	for _, off := range w.offsets {
		w.buf = appendU32(w.buf, off)
	}
	w.buf = appendU32(w.buf, uint32(n))
	legacy := w.buf
	w.buf = w.buf[len(w.buf):]
	if cap(w.buf) < TargetSize {
		w.buf = make([]byte, 0, TargetSize+1024)
	}
	w.offsets = w.offsets[:0]
	w.stats.Blocks++
	w.stats.BytesBefore += int64(len(legacy))
	if w.mode == ModeLegacy {
		w.stats.BytesAfter += int64(len(legacy))
		return legacy, EncLegacy
	}
	var colStats EncodeStats
	img := encodeColumnar(w.cbuf[:0], w.sc, w.cols, n, &colStats)
	w.cbuf = img[:0]
	for i := range w.cols {
		w.cols[i].reset()
	}
	if len(img) < len(legacy) {
		// Per-column codec counters only count blocks actually emitted
		// columnar; a losing trial leaves no trace on disk.
		w.stats.Add(colStats)
		w.stats.ColumnarBlocks++
		w.stats.BytesAfter += int64(len(img))
		return img, EncColumnar
	}
	w.stats.BytesAfter += int64(len(legacy))
	return legacy, EncLegacy
}

// Block is a parsed, read-only block, in either encoding: legacy blocks
// keep the raw image and decode rows on demand; columnar blocks hold fully
// decoded per-column value vectors.
type Block struct {
	sc   *schema.Schema
	data []byte // full block image
	dir  []byte // legacy: the offset directory region
	cols [][]ltval.Value
	n    int
}

// Parse validates and wraps a block image produced by Writer.Finish. The
// data is retained, not copied; rows decoded from the block alias it.
func Parse(sc *schema.Schema, data []byte) (*Block, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(data))
	}
	n := int(readU32(data[len(data)-4:]))
	dirStart := len(data) - 4 - 4*n
	if n < 0 || dirStart < 0 {
		return nil, fmt.Errorf("%w: directory claims %d rows", ErrCorrupt, n)
	}
	b := &Block{sc: sc, data: data, dir: data[dirStart : len(data)-4], n: n}
	// Validate offsets are in-bounds and ascending.
	prev := -1
	for i := 0; i < n; i++ {
		off := int(b.offset(i))
		if off <= prev || off >= dirStart {
			return nil, fmt.Errorf("%w: offset %d out of order or range", ErrCorrupt, off)
		}
		prev = off
	}
	return b, nil
}

func (b *Block) offset(i int) uint32 { return readU32(b.dir[4*i:]) }

// Len returns the number of rows in the block.
func (b *Block) Len() int { return b.n }

// Row decodes row i. Byte-valued cells alias the block image.
func (b *Block) Row(i int) (schema.Row, error) {
	if i < 0 || i >= b.n {
		return nil, fmt.Errorf("block: row %d out of range [0,%d)", i, b.n)
	}
	if b.cols != nil {
		row := make(schema.Row, len(b.cols))
		for c := range b.cols {
			row[c] = b.cols[c][i]
		}
		return row, nil
	}
	row, _, err := b.sc.DecodeRow(b.data[b.offset(i):])
	return row, err
}

// Search returns the index of the first row whose key is >= key (treating a
// short key as a prefix), in [0, Len()]. This is the in-block binary search
// of §3.2.
func (b *Block) Search(key []ltval.Value) (int, error) {
	lo, hi := 0, b.n
	var decodeErr error
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		row, err := b.Row(mid)
		if err != nil {
			return 0, err
		}
		if b.sc.CompareRowToKey(row, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, decodeErr
}

// SearchAfter returns the index of the first row whose key is strictly
// greater than key (with prefix semantics): the upper bound of the equal
// range. Descending scans start at SearchAfter(key)-1.
func (b *Block) SearchAfter(key []ltval.Value) (int, error) {
	lo, hi := 0, b.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		row, err := b.Row(mid)
		if err != nil {
			return 0, err
		}
		if b.sc.CompareRowToKey(row, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}

func appendU32(dst []byte, u uint32) []byte {
	return append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
}

func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
