package block

import (
	"testing"

	"littletable/internal/ltval"
	"littletable/internal/schema"
)

func testSchema(t testing.TB) *schema.Schema {
	t.Helper()
	return schema.MustNew([]schema.Column{
		{Name: "k", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "v", Type: ltval.String},
	}, []string{"k", "ts"})
}

func row(k, ts int64, v string) schema.Row {
	return schema.Row{ltval.NewInt64(k), ltval.NewTimestamp(ts), ltval.NewString(v)}
}

func key(vals ...int64) []ltval.Value {
	out := make([]ltval.Value, len(vals))
	for i, v := range vals {
		if i == 1 {
			out[i] = ltval.NewTimestamp(v)
		} else {
			out[i] = ltval.NewInt64(v)
		}
	}
	return out
}

func buildBlock(t testing.TB, n int) *Block { return buildBlockMode(t, n, ModeAuto) }

func buildBlockMode(t testing.TB, n int, mode Mode) *Block {
	t.Helper()
	w := NewWriterMode(testSchema(t), mode)
	for i := 0; i < n; i++ {
		w.Append(row(int64(i/10), int64(i%10), "val"))
	}
	img, enc := w.Finish()
	b, err := Decode(testSchema(t), enc, img)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestEmptyBlock(t *testing.T) {
	w := NewWriter(testSchema(t))
	img, enc := w.Finish()
	b, err := Decode(testSchema(t), enc, img)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("Len = %d", b.Len())
	}
	if i, err := b.Search(key(0)); err != nil || i != 0 {
		t.Errorf("Search on empty = %d, %v", i, err)
	}
}

func TestRoundTrip(t *testing.T) {
	const n = 100
	for _, mode := range []Mode{ModeAuto, ModeLegacy} {
		b := buildBlockMode(t, n, mode)
		if b.Len() != n {
			t.Fatalf("mode %v: Len = %d, want %d", mode, b.Len(), n)
		}
		for i := 0; i < n; i++ {
			r, err := b.Row(i)
			if err != nil {
				t.Fatal(err)
			}
			if r[0].Int != int64(i/10) || r[1].Int != int64(i%10) || string(r[2].Bytes) != "val" {
				t.Fatalf("mode %v: row %d = %v", mode, i, r)
			}
		}
	}
}

// TestAutoChoosesColumnar pins that the regular time-series shape this
// package exists for actually triggers the columnar encoding and shrinks.
func TestAutoChoosesColumnar(t *testing.T) {
	w := NewWriter(testSchema(t))
	for i := 0; i < 500; i++ {
		w.Append(row(int64(i/10), int64(1_000_000*(i%10)), "val"))
	}
	img, enc := w.Finish()
	if enc != EncColumnar {
		t.Fatalf("encoding = %v, want columnar", enc)
	}
	st := w.Stats()
	if st.ColumnarBlocks != 1 || st.BytesAfter >= st.BytesBefore {
		t.Errorf("stats = %+v, want 1 columnar block that shrank", st)
	}
	if st.ColsDelta != 2 || st.ColsDict != 1 {
		t.Errorf("codec counts = %+v, want 2 delta + 1 dict", st)
	}
	if int64(len(img))*3 > st.BytesBefore {
		t.Errorf("columnar image %d bytes, legacy %d: want ≥3x reduction on this shape",
			len(img), st.BytesBefore)
	}
}

func TestRowOutOfRange(t *testing.T) {
	b := buildBlock(t, 5)
	if _, err := b.Row(-1); err == nil {
		t.Error("Row(-1) succeeded")
	}
	if _, err := b.Row(5); err == nil {
		t.Error("Row(len) succeeded")
	}
}

func TestSearchExact(t *testing.T) {
	b := buildBlock(t, 100) // keys (0..9, 0..9)
	i, err := b.Search(key(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	if i != 53 {
		t.Errorf("Search(5,3) = %d, want 53", i)
	}
}

func TestSearchPrefix(t *testing.T) {
	b := buildBlock(t, 100)
	// First row with k=7.
	i, err := b.Search(key(7))
	if err != nil {
		t.Fatal(err)
	}
	if i != 70 {
		t.Errorf("Search(7) = %d, want 70", i)
	}
	// After the last row with k=7.
	j, err := b.SearchAfter(key(7))
	if err != nil {
		t.Fatal(err)
	}
	if j != 80 {
		t.Errorf("SearchAfter(7) = %d, want 80", j)
	}
}

func TestSearchMissing(t *testing.T) {
	b := buildBlock(t, 100)
	i, _ := b.Search(key(99))
	if i != b.Len() {
		t.Errorf("Search past end = %d, want %d", i, b.Len())
	}
	i, _ = b.Search(key(-1))
	if i != 0 {
		t.Errorf("Search before start = %d, want 0", i)
	}
}

func TestWriterReuse(t *testing.T) {
	sc := testSchema(t)
	for _, mode := range []Mode{ModeAuto, ModeLegacy} {
		w := NewWriterMode(sc, mode)
		w.Append(row(1, 1, "a"))
		first, enc1 := w.Finish()
		firstCopy := append([]byte(nil), first...)
		w.Append(row(2, 2, "b"))
		second, enc2 := w.Finish()
		b1, err := Decode(sc, enc1, firstCopy)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := Decode(sc, enc2, second)
		if err != nil {
			t.Fatal(err)
		}
		r1, _ := b1.Row(0)
		r2, _ := b2.Row(0)
		if r1[0].Int != 1 || r2[0].Int != 2 {
			t.Errorf("mode %v: writer reuse corrupted blocks", mode)
		}
	}
}

func TestSizeBytesTracksFinish(t *testing.T) {
	w := NewWriterMode(testSchema(t), ModeLegacy)
	for i := 0; i < 50; i++ {
		w.Append(row(int64(i), 0, "x"))
	}
	want := w.SizeBytes()
	img, enc := w.Finish()
	if enc != EncLegacy {
		t.Fatalf("legacy writer produced %v", enc)
	}
	if len(img) != want {
		t.Errorf("SizeBytes = %d, Finish produced %d", want, len(img))
	}
}

func TestParseCorrupt(t *testing.T) {
	sc := testSchema(t)
	cases := [][]byte{
		nil,
		{1},
		{0xff, 0xff, 0xff, 0xff},             // absurd count
		{0, 0, 0, 0, 8, 0, 0, 0, 1, 0, 0, 0}, // offset beyond directory
	}
	for i, data := range cases {
		if _, err := Parse(sc, data); err == nil {
			t.Errorf("case %d: corrupt block accepted", i)
		}
	}
}

func TestParseOffsetsOutOfOrder(t *testing.T) {
	sc := testSchema(t)
	w := NewWriterMode(sc, ModeLegacy)
	w.Append(row(1, 1, "a"))
	w.Append(row(2, 2, "b"))
	img, _ := w.Finish()
	// Swap the two directory entries.
	dir := len(img) - 4 - 8
	for i := 0; i < 4; i++ {
		img[dir+i], img[dir+4+i] = img[dir+4+i], img[dir+i]
	}
	if _, err := Parse(sc, img); err == nil {
		t.Error("out-of-order offsets accepted")
	}
}

func BenchmarkBlockSearch(b *testing.B) {
	blk := buildBlock(b, 500)
	k := key(5, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blk.Search(k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockScan(b *testing.B) {
	blk := buildBlock(b, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < blk.Len(); j++ {
			if _, err := blk.Row(j); err != nil {
				b.Fatal(err)
			}
		}
	}
}
