// Per-column codecs for the columnar block encoding. The schema assigns
// each column a codec family (schema.ColumnClass); within a family the
// writer trial-encodes and keeps whichever representation is smallest, so
// a column that happens not to compress falls back to its plain encoding
// rather than growing. The chosen codec is recorded per column in the
// block image header, and the block-level encoding (legacy row-major vs
// columnar) is recorded in the tablet footer, so readers never guess.
package block

import (
	"math/bits"
)

// Encoding identifies a block's top-level layout, recorded per block in
// the tablet footer (format version 2).
type Encoding uint8

const (
	// EncLegacy is the original row-major layout: concatenated ltval row
	// encodings followed by a u32 offset directory. Tablets written before
	// the columnar format carry it implicitly (footer version 1).
	EncLegacy Encoding = 0
	// EncColumnar is the per-column layout: a header naming one codec per
	// schema column, then each column's encoded vector.
	EncColumnar Encoding = 1
)

// Valid reports whether e names a known block encoding.
func (e Encoding) Valid() bool { return e == EncLegacy || e == EncColumnar }

// Codec identifies one column's encoding inside a columnar block.
type Codec uint8

const (
	// CodecPlain is the universal fallback: the column's ltval encodings
	// concatenated in row order.
	CodecPlain Codec = 0
	// CodecDelta is delta-of-delta + zigzag varint, for int-class columns
	// (Int32, Int64, Timestamp). Regularly spaced timestamps and slowly
	// moving counters collapse to ~1 byte per value.
	CodecDelta Codec = 1
	// CodecXOR is the Gorilla-style XOR bitstream for Double columns:
	// slowly varying gauges cost a bit or a few per value.
	CodecXOR Codec = 2
	// CodecDict is a dictionary for byte-class columns: distinct values
	// stored once, rows as indices. Wins on low-cardinality strings.
	CodecDict Codec = 3
	// CodecLZF is the byte-class fallback for high-cardinality blocks:
	// lzf over the plain vector, kept only when it actually shrinks.
	CodecLZF Codec = 4
)

// Mode selects how a Writer encodes finished blocks.
type Mode int

const (
	// ModeAuto trial-encodes each block per column and emits the columnar
	// layout when it is smaller than the legacy image. The default.
	ModeAuto Mode = iota
	// ModeLegacy always emits the row-major layout (and the tablet writer
	// pairs it with a version-1 footer), producing output byte-identical
	// to the pre-columnar format. The -block-encoding=legacy escape hatch.
	ModeLegacy
)

// EncodeStats aggregates what the encoder did, per codec family, for the
// engine's stats counters.
type EncodeStats struct {
	Blocks         int64 // blocks finished
	ColumnarBlocks int64 // blocks that chose the columnar layout
	BytesBefore    int64 // legacy-image bytes before encoding chose
	BytesAfter     int64 // bytes of the chosen image
	ColsDelta      int64 // columns encoded delta-of-delta
	ColsXOR        int64 // columns encoded as XOR bitstreams
	ColsDict       int64 // columns encoded via dictionary or lzf fallback
	ColsPlain      int64 // columns that fell back to plain
}

// Add accumulates o into s.
func (s *EncodeStats) Add(o EncodeStats) {
	s.Blocks += o.Blocks
	s.ColumnarBlocks += o.ColumnarBlocks
	s.BytesBefore += o.BytesBefore
	s.BytesAfter += o.BytesAfter
	s.ColsDelta += o.ColsDelta
	s.ColsXOR += o.ColsXOR
	s.ColsDict += o.ColsDict
	s.ColsPlain += o.ColsPlain
}

// zigzag maps signed to unsigned so small-magnitude deltas (of either
// sign) get short varints. All arithmetic is wrapping: deltas of arbitrary
// int64s may overflow, and wraparound round-trips exactly.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendUvarint(dst []byte, u uint64) []byte {
	for u >= 0x80 {
		dst = append(dst, byte(u)|0x80)
		u >>= 7
	}
	return append(dst, byte(u))
}

// uvarint decodes one uvarint from b, returning (value, width). Width 0
// means a truncated buffer; width -1 an overlong encoding.
func uvarint(b []byte) (uint64, int) {
	var u uint64
	var shift uint
	for i, c := range b {
		if i >= 10 || (i == 9 && c > 1) {
			return 0, -1
		}
		if c < 0x80 {
			return u | uint64(c)<<shift, i + 1
		}
		u |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, 0
}

// bitWriter packs bits MSB-first into a byte slice, for the XOR float
// codec.
type bitWriter struct {
	b    []byte
	nbit uint8 // bits used in the final byte (0 = full)
}

func (w *bitWriter) writeBit(bit uint64) {
	if w.nbit == 0 {
		w.b = append(w.b, 0)
		w.nbit = 8
	}
	w.nbit--
	if bit != 0 {
		w.b[len(w.b)-1] |= 1 << w.nbit
	}
}

// writeBits writes the low n bits of v, most significant first.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		n--
		w.writeBit((v >> n) & 1)
	}
}

// bitReader consumes bits MSB-first from a byte slice.
type bitReader struct {
	b   []byte
	pos int // absolute bit position
}

func (r *bitReader) readBit() (uint64, bool) {
	idx := r.pos >> 3
	if idx >= len(r.b) {
		return 0, false
	}
	bit := uint64(r.b[idx]>>(7-uint(r.pos&7))) & 1
	r.pos++
	return bit, true
}

func (r *bitReader) readBits(n uint) (uint64, bool) {
	var v uint64
	for i := uint(0); i < n; i++ {
		bit, ok := r.readBit()
		if !ok {
			return 0, false
		}
		v = v<<1 | bit
	}
	return v, true
}

// leadingZeros64 caps the count at 31 so it fits the 5-bit header field;
// capping only costs compression, never correctness.
func leadingZeros64(u uint64) uint {
	lz := uint(bits.LeadingZeros64(u))
	if lz > 31 {
		lz = 31
	}
	return lz
}
