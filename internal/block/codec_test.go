package block

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"littletable/internal/ltval"
	"littletable/internal/schema"
)

func intVals(t *testing.T, typ ltval.Type, enc []byte, n int) []int64 {
	t.Helper()
	vals, err := decodeDelta(typ, enc, n)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, len(vals))
	for i, v := range vals {
		out[i] = v.Int
	}
	return out
}

func TestDeltaRoundTripExtremes(t *testing.T) {
	cases := [][]int64{
		{},
		{0},
		{math.MinInt64, math.MaxInt64, math.MinInt64},
		{1, 1, 1, 1},
		{1000, 2000, 3000, 4000, 5001},
		{-5, 5, -5, 5},
		{math.MaxInt64, math.MaxInt64 - 1, math.MinInt64 + 2},
	}
	rng := rand.New(rand.NewSource(7))
	walk := make([]int64, 1000)
	v := int64(0)
	for i := range walk {
		v += rng.Int63n(2001) - 1000
		walk[i] = v
	}
	cases = append(cases, walk)
	for ci, vals := range cases {
		enc := encodeDelta(nil, vals)
		got := intVals(t, ltval.Int64, enc, len(vals))
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("case %d: value %d = %d, want %d", ci, i, got[i], vals[i])
			}
		}
	}
}

func TestDeltaDenseTimestampsCompress(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = 1_782_018_420_000_000 + int64(i)*60_000_000
	}
	enc := encodeDelta(nil, vals)
	// First value is a large varint, the rest collapse to 1-byte zero dods.
	if len(enc) > 20+len(vals) {
		t.Errorf("regular timestamps encode to %d bytes for %d values", len(enc), len(vals))
	}
}

func TestDeltaInt32OverflowRejected(t *testing.T) {
	// A delta stream whose values walk outside int32 must be corruption for
	// an Int32 column, never a silently wrapped value.
	enc := encodeDelta(nil, []int64{math.MaxInt32, math.MaxInt32 + 1})
	if _, err := decodeDelta(ltval.Int32, enc, 2); err == nil {
		t.Error("int32 overflow accepted")
	}
	if _, err := decodeDelta(ltval.Int64, enc, 2); err != nil {
		t.Errorf("same stream rejected for int64: %v", err)
	}
}

func TestXORRoundTripSpecials(t *testing.T) {
	cases := [][]float64{
		{},
		{0},
		{1.5, 1.5, 1.5},
		{math.Inf(1), math.Inf(-1), math.NaN(), 0, math.Copysign(0, -1)},
		{math.SmallestNonzeroFloat64, math.MaxFloat64, -math.SmallestNonzeroFloat64},
		{15.5, 14.0625, 3.25, 8.625, 13.1},
	}
	rng := rand.New(rand.NewSource(11))
	gauge := make([]float64, 1000)
	g := 20.0
	for i := range gauge {
		g += rng.Float64() - 0.5
		gauge[i] = g
	}
	cases = append(cases, gauge)
	for ci, vals := range cases {
		enc := encodeXOR(nil, vals)
		got, err := decodeXOR(enc, len(vals))
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		for i := range vals {
			if math.Float64bits(got[i].Float) != math.Float64bits(vals[i]) {
				t.Fatalf("case %d: value %d = %v, want %v", ci, i, got[i].Float, vals[i])
			}
		}
	}
}

func TestXORConstantSeriesCompress(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = 42.5
	}
	enc := encodeXOR(nil, vals)
	// 64 bits for the first value + 1 bit per repeat.
	if len(enc) > 8+len(vals)/8+2 {
		t.Errorf("constant series encodes to %d bytes for %d values", len(enc), len(vals))
	}
}

func bytesAcc(cells ...string) *colAcc {
	c := &colAcc{class: schema.ClassBytes}
	for _, s := range cells {
		c.flat = append(c.flat, s...)
		c.ends = append(c.ends, len(c.flat))
	}
	return c
}

func TestDictRoundTrip(t *testing.T) {
	c := bytesAcc("wan1", "wan2", "wan1", "", "wan1", "wan2")
	enc, ok := encodeDict(nil, c)
	if !ok {
		t.Fatal("low-cardinality column rejected")
	}
	vals, err := decodeDict(ltval.String, enc, len(c.ends))
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.ends {
		if string(vals[i].Bytes) != string(c.cell(i)) {
			t.Fatalf("cell %d = %q, want %q", i, vals[i].Bytes, c.cell(i))
		}
	}
}

func TestDictHighCardinalityFallsBack(t *testing.T) {
	cells := make([]string, maxDictEntries+1)
	for i := range cells {
		cells[i] = fmt.Sprintf("interface-%d", i)
	}
	c := bytesAcc(cells...)
	if _, ok := encodeDict(nil, c); ok {
		t.Error("dictionary accepted past the entry cap")
	}
	// The column-level chooser must still round-trip via LZF or plain.
	enc, codec := encodeBytesColumn(nil, c)
	vals, err := decodeColumn(ltval.String, codec, enc, len(c.ends))
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if string(vals[i].Bytes) != cells[i] {
			t.Fatalf("cell %d mismatch via codec %d", i, codec)
		}
	}
}

func TestDictBadIndexRejected(t *testing.T) {
	c := bytesAcc("a", "b", "a")
	enc, _ := encodeDict(nil, c)
	// Point the last row at a nonexistent entry.
	enc[len(enc)-1] = 7
	if _, err := decodeDict(ltval.String, enc, 3); err == nil {
		t.Error("out-of-range dictionary index accepted")
	}
}

// buildColumnarImage writes rows in auto mode with shapes that force the
// columnar encoding, returning the image and the expected rows.
func buildColumnarImage(t *testing.T) ([]byte, []schema.Row) {
	t.Helper()
	sc := testSchema(t)
	w := NewWriter(sc)
	var rows []schema.Row
	for i := 0; i < 300; i++ {
		r := row(int64(i/10), int64(1_000_000*(i%10)), fmt.Sprintf("v%d", i%3))
		rows = append(rows, r)
		w.Append(r)
	}
	img, enc := w.Finish()
	if enc != EncColumnar {
		t.Fatal("test shape did not choose columnar")
	}
	return append([]byte(nil), img...), rows
}

func sameRows(b *Block, rows []schema.Row) bool {
	if b.Len() != len(rows) {
		return false
	}
	for i := range rows {
		got, err := b.Row(i)
		if err != nil {
			return false
		}
		for c := range rows[i] {
			if !got[c].Equal(rows[i][c]) {
				return false
			}
		}
	}
	return true
}

// TestColumnarBitFlipSweep flips every bit of a columnar image and demands
// the decoder either reject it or return exactly the original rows — never
// wrong rows, never a panic. (On disk a record CRC fronts this decoder; the
// sweep proves the decoder is safe even if that line fails.)
func TestColumnarBitFlipSweep(t *testing.T) {
	img, rows := buildColumnarImage(t)
	sc := testSchema(t)
	step := 1
	if testing.Short() {
		step = 13
	}
	flipped := 0
	for bit := 0; bit < 8*len(img); bit += step {
		img[bit/8] ^= 1 << (bit % 8)
		if b, err := Decode(sc, EncColumnar, img); err == nil {
			if !sameRows(b, rows) {
				t.Fatalf("bit flip %d decoded to wrong rows", bit)
			}
			flipped++
		}
		img[bit/8] ^= 1 << (bit % 8)
	}
	t.Logf("%d flips decoded benignly", flipped)
}

// TestColumnarTruncationSweep decodes every prefix of a columnar image:
// each must error or (for the full image) yield the original rows.
func TestColumnarTruncationSweep(t *testing.T) {
	img, rows := buildColumnarImage(t)
	sc := testSchema(t)
	for n := 0; n < len(img); n++ {
		if b, err := Decode(sc, EncColumnar, img[:n]); err == nil && !sameRows(b, rows) {
			t.Fatalf("truncation to %d bytes decoded to wrong rows", n)
		}
	}
	b, err := Decode(sc, EncColumnar, img)
	if err != nil || !sameRows(b, rows) {
		t.Fatalf("full image failed: %v", err)
	}
}
