package block

import (
	"fmt"
	"hash/crc32"
	"math"

	"littletable/internal/ltval"
	"littletable/internal/lzf"
	"littletable/internal/schema"
)

// Decode parses a block image whose top-level encoding enc was recorded in
// the tablet footer. Legacy images go through Parse; columnar images are
// decoded into per-column value vectors.
func Decode(sc *schema.Schema, enc Encoding, data []byte) (*Block, error) {
	switch enc {
	case EncLegacy:
		return Parse(sc, data)
	case EncColumnar:
		return parseColumnar(sc, data)
	default:
		return nil, fmt.Errorf("%w: unknown encoding %d", ErrCorrupt, enc)
	}
}

// parseColumnar validates and decodes a columnar block image. Every codec
// must consume its column's bytes exactly, and the image must hold exactly
// the declared columns — trailing garbage is corruption, not slack.
func parseColumnar(sc *schema.Schema, data []byte) (*Block, error) {
	r := data
	if len(r) < 5 || r[0] != colFormatVersion {
		return nil, fmt.Errorf("%w: bad columnar version", ErrCorrupt)
	}
	crc := uint32(r[1]) | uint32(r[2])<<8 | uint32(r[3])<<16 | uint32(r[4])<<24
	r = r[5:]
	if crc32.Checksum(r, castagnoli) != crc {
		return nil, fmt.Errorf("%w: columnar checksum mismatch", ErrCorrupt)
	}
	rowCount, w := uvarint(r)
	if w <= 0 {
		return nil, fmt.Errorf("%w: bad row count", ErrCorrupt)
	}
	r = r[w:]
	ncols, w := uvarint(r)
	if w <= 0 {
		return nil, fmt.Errorf("%w: bad column count", ErrCorrupt)
	}
	r = r[w:]
	// A value costs at least one bit in the cheapest codec (XOR repeats),
	// so any genuine image bounds rowCount by its own size. Reject larger
	// claims before allocating anything proportional to them.
	if ncols != uint64(len(sc.Columns)) || rowCount > uint64(8*len(data)+64) {
		return nil, fmt.Errorf("%w: claims %d rows × %d cols", ErrCorrupt, rowCount, ncols)
	}
	n := int(rowCount)
	if len(r) < int(ncols) {
		return nil, fmt.Errorf("%w: truncated codec list", ErrCorrupt)
	}
	codecs := r[:ncols]
	r = r[ncols:]
	cols := make([][]ltval.Value, ncols)
	for i := range cols {
		encLen, w := uvarint(r)
		if w <= 0 || encLen > uint64(len(r)-w) {
			return nil, fmt.Errorf("%w: truncated column %d", ErrCorrupt, i)
		}
		colEnc := r[w : w+int(encLen)]
		r = r[w+int(encLen):]
		vals, err := decodeColumn(sc.Columns[i].Type, Codec(codecs[i]), colEnc, n)
		if err != nil {
			return nil, fmt.Errorf("column %d (%s): %w", i, sc.Columns[i].Name, err)
		}
		cols[i] = vals
	}
	if len(r) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r))
	}
	return &Block{sc: sc, data: data, cols: cols, n: n}, nil
}

// decodeColumn dispatches one column's bytes to its codec, checking the
// codec is legal for the column's class.
func decodeColumn(t ltval.Type, codec Codec, enc []byte, n int) ([]ltval.Value, error) {
	class := schema.ClassOf(t)
	switch codec {
	case CodecPlain:
		return decodePlain(t, enc, n)
	case CodecDelta:
		if class != schema.ClassInt {
			return nil, fmt.Errorf("%w: delta codec on %v column", ErrCorrupt, t)
		}
		return decodeDelta(t, enc, n)
	case CodecXOR:
		if class != schema.ClassFloat {
			return nil, fmt.Errorf("%w: xor codec on %v column", ErrCorrupt, t)
		}
		return decodeXOR(enc, n)
	case CodecDict:
		if class != schema.ClassBytes {
			return nil, fmt.Errorf("%w: dict codec on %v column", ErrCorrupt, t)
		}
		return decodeDict(t, enc, n)
	case CodecLZF:
		if class != schema.ClassBytes {
			return nil, fmt.Errorf("%w: lzf codec on %v column", ErrCorrupt, t)
		}
		return decodeLZF(t, enc, n)
	default:
		return nil, fmt.Errorf("%w: unknown codec %d", ErrCorrupt, codec)
	}
}

// decodePlain decodes n concatenated ltval encodings, requiring exact
// consumption.
func decodePlain(t ltval.Type, enc []byte, n int) ([]ltval.Value, error) {
	vals := make([]ltval.Value, 0, capHint(n, len(enc)))
	for i := 0; i < n; i++ {
		v, w, err := ltval.Decode(t, enc)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		enc = enc[w:]
		vals = append(vals, v)
	}
	if len(enc) != 0 {
		return nil, fmt.Errorf("%w: %d trailing column bytes", ErrCorrupt, len(enc))
	}
	return vals, nil
}

// decodeDelta reverses encodeDelta with the same wrapping arithmetic.
// Int32 columns additionally require every value to fit in 32 bits: a
// flipped delta that walks out of range is corruption, not a new value.
func decodeDelta(t ltval.Type, enc []byte, n int) ([]ltval.Value, error) {
	vals := make([]ltval.Value, 0, capHint(n, len(enc)))
	var prev, prevDelta uint64
	for i := 0; i < n; i++ {
		u, w := uvarint(enc)
		if w <= 0 {
			return nil, fmt.Errorf("%w: bad delta varint", ErrCorrupt)
		}
		enc = enc[w:]
		if i == 0 {
			prev = uint64(unzigzag(u))
		} else {
			prevDelta += uint64(unzigzag(u))
			prev += prevDelta
		}
		v := int64(prev)
		if t == ltval.Int32 && v != int64(int32(v)) {
			return nil, fmt.Errorf("%w: delta value overflows int32", ErrCorrupt)
		}
		vals = append(vals, ltval.Value{Type: t, Int: v})
	}
	if len(enc) != 0 {
		return nil, fmt.Errorf("%w: %d trailing column bytes", ErrCorrupt, len(enc))
	}
	return vals, nil
}

// decodeXOR reverses encodeXOR. The bitstream must end within the final
// byte and its padding bits must be zero, so every encoding is canonical
// and trailing garbage is detected.
func decodeXOR(enc []byte, n int) ([]ltval.Value, error) {
	vals := make([]ltval.Value, 0, capHint(n, len(enc)))
	if n == 0 {
		if len(enc) != 0 {
			return nil, fmt.Errorf("%w: bytes in empty xor column", ErrCorrupt)
		}
		return vals, nil
	}
	r := bitReader{b: enc}
	prev, ok := r.readBits(64)
	if !ok {
		return nil, fmt.Errorf("%w: truncated xor stream", ErrCorrupt)
	}
	vals = append(vals, ltval.NewDouble(math.Float64frombits(prev)))
	winLZ := uint(255)
	winTZ := uint(0)
	for i := 1; i < n; i++ {
		ctrl, ok := r.readBit()
		if !ok {
			return nil, fmt.Errorf("%w: truncated xor stream", ErrCorrupt)
		}
		if ctrl == 0 {
			vals = append(vals, ltval.NewDouble(math.Float64frombits(prev)))
			continue
		}
		reuse, ok := r.readBit()
		if !ok {
			return nil, fmt.Errorf("%w: truncated xor stream", ErrCorrupt)
		}
		if reuse == 0 {
			if winLZ == 255 {
				return nil, fmt.Errorf("%w: xor window reused before set", ErrCorrupt)
			}
		} else {
			lz, ok1 := r.readBits(5)
			sigm1, ok2 := r.readBits(6)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("%w: truncated xor stream", ErrCorrupt)
			}
			if uint(lz)+uint(sigm1)+1 > 64 {
				return nil, fmt.Errorf("%w: xor window wider than 64 bits", ErrCorrupt)
			}
			winLZ = uint(lz)
			winTZ = 64 - winLZ - (uint(sigm1) + 1)
		}
		sig := 64 - winLZ - winTZ
		bits, ok := r.readBits(sig)
		if !ok {
			return nil, fmt.Errorf("%w: truncated xor stream", ErrCorrupt)
		}
		prev ^= bits << winTZ
		vals = append(vals, ltval.NewDouble(math.Float64frombits(prev)))
	}
	// Exact consumption: the stream must end inside the last byte, with
	// zero padding bits.
	if (r.pos+7)/8 != len(enc) {
		return nil, fmt.Errorf("%w: %d trailing xor bytes", ErrCorrupt, len(enc)-(r.pos+7)/8)
	}
	for r.pos%8 != 0 {
		bit, _ := r.readBit()
		if bit != 0 {
			return nil, fmt.Errorf("%w: nonzero xor padding", ErrCorrupt)
		}
	}
	return vals, nil
}

// decodeDict reverses encodeDict. Entries alias the block image; indices
// must stay within the declared dictionary.
func decodeDict(t ltval.Type, enc []byte, n int) ([]ltval.Value, error) {
	count, w := uvarint(enc)
	if w <= 0 || count > maxDictEntries {
		return nil, fmt.Errorf("%w: bad dictionary size", ErrCorrupt)
	}
	enc = enc[w:]
	entries := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		l, w := uvarint(enc)
		if w <= 0 || l > uint64(len(enc)-w) {
			return nil, fmt.Errorf("%w: truncated dictionary entry", ErrCorrupt)
		}
		entries = append(entries, enc[w:w+int(l)])
		enc = enc[w+int(l):]
	}
	vals := make([]ltval.Value, 0, capHint(n, len(enc)))
	for i := 0; i < n; i++ {
		id, w := uvarint(enc)
		if w <= 0 || id >= uint64(len(entries)) {
			return nil, fmt.Errorf("%w: bad dictionary index", ErrCorrupt)
		}
		enc = enc[w:]
		vals = append(vals, ltval.Value{Type: t, Bytes: entries[id]})
	}
	if len(enc) != 0 {
		return nil, fmt.Errorf("%w: %d trailing column bytes", ErrCorrupt, len(enc))
	}
	return vals, nil
}

// decodeLZF decompresses the plain byte vector and decodes it. The raw
// length claim is capped so corruption cannot force a huge allocation.
func decodeLZF(t ltval.Type, enc []byte, n int) ([]ltval.Value, error) {
	rawLen, w := uvarint(enc)
	// Beyond the absolute cap, bound the claim by lzf's maximum expansion
	// (255 output bytes per input byte), so a corrupt length cannot size a
	// large zeroed buffer even when the image checksum has been forged.
	if w <= 0 || rawLen > maxColumnBytes || rawLen > uint64(255*(len(enc)-w)+64) {
		return nil, fmt.Errorf("%w: bad lzf length", ErrCorrupt)
	}
	raw, err := lzf.Decompress(make([]byte, rawLen), enc[w:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return decodePlain(t, raw, n)
}

// capHint bounds a column vector's preallocation by what its encoded bytes
// could possibly hold, so a corrupt row count cannot drive allocation.
func capHint(n, encLen int) int {
	if limit := 8*encLen + 64; n > limit {
		return limit
	}
	return n
}
