package block

import (
	"hash/crc32"
	"math"
	"math/bits"

	"littletable/internal/ltval"
	"littletable/internal/lzf"
	"littletable/internal/schema"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Columnar image layout, chosen per block when it beats the legacy image:
//
//	u8      colFormatVersion (currently 1)
//	u32     CRC-32C of everything after this field, little-endian
//	uvarint rowCount
//	uvarint ncols            (must equal the schema width)
//	ncols × u8 codec id
//	ncols × (uvarint encLen, encLen bytes)
//
// Decoders require the image to be consumed exactly; trailing bytes are
// corruption. The CRC makes the image self-validating: unlike the legacy
// layout (whose row bytes have no redundancy and rely entirely on the
// tablet record CRC), a columnar image survives a bit flip anywhere with a
// detection guarantee even when read outside a tablet record.
const colFormatVersion = 1

// maxDictEntries caps dictionary size: past this cardinality the dictionary
// rarely wins and the LZF fallback takes over.
const maxDictEntries = 256

// maxColumnBytes caps a decoded column vector (the LZF rawLen claim), so a
// corrupt length field cannot make the reader allocate unbounded memory.
const maxColumnBytes = 1 << 24

// colAcc accumulates one column's cells across a block, in the shape its
// codec family wants. Byte cells are copied into the flat buffer because
// appended rows alias caller-owned buffers that are reused.
type colAcc struct {
	class  schema.ColumnClass
	ints   []int64
	floats []float64
	flat   []byte // concatenated byte cells
	ends   []int  // end offset of cell i within flat
}

func (c *colAcc) reset() {
	c.ints = c.ints[:0]
	c.floats = c.floats[:0]
	c.flat = c.flat[:0]
	c.ends = c.ends[:0]
}

// cell returns byte cell i.
func (c *colAcc) cell(i int) []byte {
	start := 0
	if i > 0 {
		start = c.ends[i-1]
	}
	return c.flat[start:c.ends[i]]
}

// encodeColumnar builds the columnar image for the accumulated columns,
// appending to dst, and reports per-column codec choices into st. rowCount
// is the number of rows in every column.
func encodeColumnar(dst []byte, sc *schema.Schema, cols []colAcc, rowCount int, st *EncodeStats) []byte {
	start := len(dst)
	dst = append(dst, colFormatVersion, 0, 0, 0, 0) // CRC patched below
	dst = appendUvarint(dst, uint64(rowCount))
	dst = appendUvarint(dst, uint64(len(cols)))
	codecAt := len(dst)
	for range cols {
		dst = append(dst, byte(CodecPlain))
	}
	var scratch []byte
	for i := range cols {
		c := &cols[i]
		var enc []byte
		var codec Codec
		switch c.class {
		case schema.ClassInt:
			enc, codec = encodeIntColumn(scratch[:0], c.ints, sc.Columns[i].Type)
		case schema.ClassFloat:
			enc, codec = encodeFloatColumn(scratch[:0], c.floats)
		default:
			enc, codec = encodeBytesColumn(scratch[:0], c)
		}
		switch codec {
		case CodecDelta:
			st.ColsDelta++
		case CodecXOR:
			st.ColsXOR++
		case CodecDict, CodecLZF:
			st.ColsDict++
		default:
			st.ColsPlain++
		}
		dst[codecAt+i] = byte(codec)
		dst = appendUvarint(dst, uint64(len(enc)))
		dst = append(dst, enc...)
		scratch = enc // reuse the trial buffer for the next column
	}
	crc := crc32.Checksum(dst[start+5:], castagnoli)
	dst[start+1] = byte(crc)
	dst[start+2] = byte(crc >> 8)
	dst[start+3] = byte(crc >> 16)
	dst[start+4] = byte(crc >> 24)
	return dst
}

// encodeIntColumn trial-encodes an int-class column as delta-of-delta and
// keeps it only if it beats the plain fixed-width form.
func encodeIntColumn(dst []byte, vals []int64, t ltval.Type) ([]byte, Codec) {
	delta := encodeDelta(dst, vals)
	plainSize := len(vals) * fixedWidth(t)
	if len(delta) < plainSize {
		return delta, CodecDelta
	}
	return encodePlainInts(delta[:0], vals, t), CodecPlain
}

// encodeFloatColumn trial-encodes a Double column as a Gorilla XOR
// bitstream and keeps it only if it beats plain 8-byte words.
func encodeFloatColumn(dst []byte, vals []float64) ([]byte, Codec) {
	xor := encodeXOR(dst, vals)
	if len(xor) < 8*len(vals) {
		return xor, CodecXOR
	}
	return encodePlainFloats(xor[:0], vals), CodecPlain
}

// encodeBytesColumn trial-encodes a byte-class column: dictionary when
// cardinality permits, LZF over the plain vector otherwise, plain if
// neither shrinks it.
func encodeBytesColumn(dst []byte, c *colAcc) ([]byte, Codec) {
	plain := encodePlainBytes(dst, c)
	if dict, ok := encodeDict(nil, c); ok && len(dict) < len(plain) {
		return dict, CodecDict
	}
	compressed := appendUvarint(nil, uint64(len(plain)))
	compressed = lzf.Compress(compressed, plain)
	if len(compressed) < len(plain) {
		return compressed, CodecLZF
	}
	return plain, CodecPlain
}

// encodeDelta writes vals as zigzag varints: the first value, then
// delta-of-delta for each subsequent one. All arithmetic is wrapping, so
// arbitrary int64s (and overflowing deltas) round-trip exactly.
func encodeDelta(dst []byte, vals []int64) []byte {
	if len(vals) == 0 {
		return dst
	}
	dst = appendUvarint(dst, zigzag(vals[0]))
	prev := uint64(vals[0])
	var prevDelta uint64
	for _, v := range vals[1:] {
		delta := uint64(v) - prev
		dst = appendUvarint(dst, zigzag(int64(delta-prevDelta)))
		prev = uint64(v)
		prevDelta = delta
	}
	return dst
}

// encodeXOR writes vals as a Gorilla-style XOR bitstream: 64 raw bits for
// the first value, then per value a 0 bit (repeat), '10' + significant bits
// in the previous window, or '11' + 5-bit leading-zero count + 6-bit
// (length-1) + significant bits.
func encodeXOR(dst []byte, vals []float64) []byte {
	if len(vals) == 0 {
		return dst
	}
	w := bitWriter{b: dst}
	prev := math.Float64bits(vals[0])
	w.writeBits(prev, 64)
	prevLZ := uint(255) // sentinel: no window yet, force a '11' control
	prevTZ := uint(0)
	for _, v := range vals[1:] {
		cur := math.Float64bits(v)
		x := cur ^ prev
		prev = cur
		if x == 0 {
			w.writeBit(0)
			continue
		}
		w.writeBit(1)
		lz := leadingZeros64(x)
		tz := uint(bits.TrailingZeros64(x))
		if lz >= prevLZ && tz >= prevTZ {
			w.writeBit(0)
			w.writeBits(x>>prevTZ, 64-prevLZ-prevTZ)
		} else {
			w.writeBit(1)
			sig := 64 - lz - tz
			w.writeBits(uint64(lz), 5)
			w.writeBits(uint64(sig-1), 6)
			w.writeBits(x>>tz, sig)
			prevLZ, prevTZ = lz, tz
		}
	}
	return w.b
}

// encodeDict writes a dictionary column: distinct values in first-seen
// order, then one uvarint index per row. Returns ok=false past
// maxDictEntries — the LZF fallback handles high-cardinality blocks.
func encodeDict(dst []byte, c *colAcc) ([]byte, bool) {
	type entry struct {
		id   int
		next int // index into entries, -1 = end of chain
	}
	// A tiny open-chained hash keyed on FNV of the cell, to avoid
	// string-allocating a map key per row.
	const buckets = 512
	var head [buckets]int
	for i := range head {
		head[i] = -1
	}
	entries := make([]entry, 0, maxDictEntries)
	order := make([]int, 0, maxDictEntries) // row index of each entry's first occurrence
	idx := make([]int, len(c.ends))
	for i := range c.ends {
		cell := c.cell(i)
		h := fnv32(cell) & (buckets - 1)
		found := -1
		for e := head[h]; e != -1; e = entries[e].next {
			j := order[entries[e].id]
			if bytesEqual(c.cell(j), cell) {
				found = entries[e].id
				break
			}
		}
		if found == -1 {
			if len(entries) >= maxDictEntries {
				return nil, false
			}
			found = len(entries)
			entries = append(entries, entry{id: found, next: head[h]})
			head[h] = len(entries) - 1
			order = append(order, i)
		}
		idx[i] = found
	}
	dst = appendUvarint(dst, uint64(len(order)))
	for _, row := range order {
		cell := c.cell(row)
		dst = appendUvarint(dst, uint64(len(cell)))
		dst = append(dst, cell...)
	}
	for _, id := range idx {
		dst = appendUvarint(dst, uint64(id))
	}
	return dst, true
}

// fixedWidth is the plain encoded width of an int-class value.
func fixedWidth(t ltval.Type) int {
	if t == ltval.Int32 {
		return 4
	}
	return 8
}

func encodePlainInts(dst []byte, vals []int64, t ltval.Type) []byte {
	if fixedWidth(t) == 4 {
		for _, v := range vals {
			u := uint32(v)
			dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
		}
		return dst
	}
	for _, v := range vals {
		dst = appendU64le(dst, uint64(v))
	}
	return dst
}

func encodePlainFloats(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = appendU64le(dst, math.Float64bits(v))
	}
	return dst
}

func encodePlainBytes(dst []byte, c *colAcc) []byte {
	for i := range c.ends {
		cell := c.cell(i)
		dst = appendUvarint(dst, uint64(len(cell)))
		dst = append(dst, cell...)
	}
	return dst
}

func appendU64le(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

func fnv32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
