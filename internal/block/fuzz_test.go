package block

import (
	"encoding/binary"
	"math"
	"testing"

	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// Fuzz targets for the per-column codecs and the columnar block image.
// Each target does double duty: round-trip arbitrary column vectors
// (derived from the fuzz input) exactly, and decode the raw fuzz input as
// an encoded stream — which must error or succeed but never panic and
// never allocate beyond the input-proportional bounds.

// fuzzInts carves the input into int64 column values.
func fuzzInts(data []byte) []int64 {
	vals := make([]int64, 0, len(data)/8+1)
	for len(data) >= 8 {
		vals = append(vals, int64(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	if len(data) > 0 {
		var u uint64
		for i, c := range data {
			u |= uint64(c) << (8 * i)
		}
		vals = append(vals, int64(u))
	}
	return vals
}

func FuzzDeltaTimestamps(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeDelta(nil, []int64{1_782_018_420_000_000, 1_782_018_480_000_000, 1_782_018_540_000_000}))
	f.Add(encodeDelta(nil, []int64{math.MinInt64, math.MaxInt64}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<18 {
			return
		}
		vals := fuzzInts(data)
		enc := encodeDelta(nil, vals)
		got, err := decodeDelta(ltval.Timestamp, enc, len(vals))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		for i := range vals {
			if got[i].Int != vals[i] {
				t.Fatalf("value %d = %d, want %d", i, got[i].Int, vals[i])
			}
		}
		// Arbitrary bytes as a delta stream: error or success, no panic;
		// Int32 exercises the range check.
		for _, n := range []int{0, 1, len(data), 3 * len(data)} {
			_, _ = decodeDelta(ltval.Timestamp, data, n)
			_, _ = decodeDelta(ltval.Int32, data, n)
		}
	})
}

func FuzzXORFloats(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeXOR(nil, []float64{42.5, 42.5, 43.0}))
	f.Add(encodeXOR(nil, []float64{math.Inf(1), math.NaN(), 0}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<18 {
			return
		}
		vals := make([]float64, 0, len(data)/8+1)
		for _, u := range fuzzInts(data) {
			vals = append(vals, math.Float64frombits(uint64(u)))
		}
		enc := encodeXOR(nil, vals)
		got, err := decodeXOR(enc, len(vals))
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		for i := range vals {
			if math.Float64bits(got[i].Float) != math.Float64bits(vals[i]) {
				t.Fatalf("value %d bits differ", i)
			}
		}
		for _, n := range []int{0, 1, len(data), 8*len(data) + 64} {
			_, _ = decodeXOR(data, n)
		}
	})
}

func FuzzDictStrings(f *testing.F) {
	f.Add([]byte{}, uint8(3))
	f.Add([]byte("wan1wan2wan1wan1"), uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, chunk uint8) {
		if len(data) > 1<<18 {
			return
		}
		// Carve the input into cells of `chunk` bytes (0 → one big cell).
		c := &colAcc{class: schema.ClassBytes}
		step := int(chunk)
		if step == 0 {
			step = len(data) + 1
		}
		for off := 0; off < len(data); off += step {
			end := off + step
			if end > len(data) {
				end = len(data)
			}
			c.flat = append(c.flat, data[off:end]...)
			c.ends = append(c.ends, len(c.flat))
		}
		if enc, ok := encodeDict(nil, c); ok {
			got, err := decodeDict(ltval.String, enc, len(c.ends))
			if err != nil {
				t.Fatalf("round trip rejected: %v", err)
			}
			for i := range c.ends {
				if string(got[i].Bytes) != string(c.cell(i)) {
					t.Fatalf("cell %d mismatch", i)
				}
			}
		}
		// The full chooser (dict/lzf/plain) must also round-trip.
		enc, codec := encodeBytesColumn(nil, c)
		got, err := decodeColumn(ltval.String, codec, enc, len(c.ends))
		if err != nil {
			t.Fatalf("chooser round trip rejected (codec %d): %v", codec, err)
		}
		for i := range c.ends {
			if string(got[i].Bytes) != string(c.cell(i)) {
				t.Fatalf("chooser cell %d mismatch (codec %d)", i, codec)
			}
		}
		// Arbitrary bytes through every byte-class decoder.
		for _, n := range []int{0, 1, len(data)} {
			_, _ = decodeDict(ltval.String, data, n)
			_, _ = decodeLZF(ltval.Blob, data, n)
			_, _ = decodePlain(ltval.String, data, n)
		}
	})
}

// FuzzBlockRoundTrip drives the whole block writer/decoder: rows derived
// from the input must round-trip identically through both encodings, and
// the input itself must decode as a columnar image without panicking.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(3))
	f.Add([]byte("abcdefgh12345678"), uint16(40))
	f.Fuzz(func(t *testing.T, data []byte, nrows uint16) {
		if len(data) > 1<<16 {
			return
		}
		sc := testSchema(t)
		n := int(nrows % 512)
		ints := fuzzInts(data)
		pick := func(i int) int64 {
			if len(ints) == 0 {
				return int64(i)
			}
			return ints[i%len(ints)]
		}
		auto := NewWriter(sc)
		legacy := NewWriterMode(sc, ModeLegacy)
		var rows []schema.Row
		for i := 0; i < n; i++ {
			stroff := i % (len(data) + 1)
			r := schema.Row{
				ltval.NewInt64(pick(i)),
				ltval.NewTimestamp(pick(i + 1)),
				ltval.NewString(string(data[stroff:])),
			}
			rows = append(rows, r)
			auto.Append(r)
			legacy.Append(r)
		}
		aimg, aenc := auto.Finish()
		limg, lenc := legacy.Finish()
		if lenc != EncLegacy {
			t.Fatal("legacy writer emitted non-legacy encoding")
		}
		for _, pair := range []struct {
			img []byte
			enc Encoding
		}{{aimg, aenc}, {limg, lenc}} {
			b, err := Decode(sc, pair.enc, pair.img)
			if err != nil {
				t.Fatalf("decode(%v) rejected own output: %v", pair.enc, err)
			}
			if b.Len() != len(rows) {
				t.Fatalf("decode(%v) Len = %d, want %d", pair.enc, b.Len(), len(rows))
			}
			for i := range rows {
				got, err := b.Row(i)
				if err != nil {
					t.Fatalf("row %d: %v", i, err)
				}
				for c := range rows[i] {
					if !got[c].Equal(rows[i][c]) {
						t.Fatalf("enc %v row %d col %d mismatch", pair.enc, i, c)
					}
				}
			}
		}
		// Arbitrary bytes as a columnar image: error or valid block.
		if b, err := Decode(sc, EncColumnar, data); err == nil {
			for i := 0; i < b.Len(); i++ {
				if _, err := b.Row(i); err != nil {
					break
				}
			}
		}
	})
}
