// Package blockcache provides a byte-budgeted LRU over parsed tablet
// blocks. The paper's deployment leans on the OS page cache (§2.3.3);
// embedding LittleTable as a library benefits from an explicit cache too,
// because a page-cache hit still pays checksum verification, decompression
// and block parsing on every read. Tablets are immutable, so entries never
// need invalidation — dropped tablets' entries simply age out.
package blockcache

import (
	"container/list"
	"sync"
)

// Key identifies one block: an open-tablet handle id plus block index.
type Key struct {
	Handle uint64
	Index  int
}

// entry is one cached block.
type entry struct {
	key   Key
	value interface{}
	size  int64
}

// flight is one in-progress load, shared by every goroutine that asked for
// the same key while it was being read and parsed.
type flight struct {
	done  chan struct{}
	value interface{}
	size  int64
	err   error
}

// Cache is a thread-safe LRU bounded by total byte size.
type Cache struct {
	mu       sync.Mutex
	cap      int64
	used     int64
	order    *list.List // front = most recent
	entries  map[Key]*list.Element
	inflight map[Key]*flight

	hits   int64
	misses int64
	dedups int64
}

// New returns a cache holding up to capBytes of block data.
func New(capBytes int64) *Cache {
	return &Cache{
		cap:      capBytes,
		order:    list.New(),
		entries:  make(map[Key]*list.Element),
		inflight: make(map[Key]*flight),
	}
}

// Get returns the cached value for k, if present.
func (c *Cache) Get(k Key) (interface{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*entry).value, true
}

// Put inserts v with the given byte size, evicting least-recently-used
// entries as needed. Values larger than the whole cache are not stored.
func (c *Cache) Put(k Key, v interface{}, size int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(k, v, size)
}

func (c *Cache) putLocked(k Key, v interface{}, size int64) {
	if size > c.cap {
		return
	}
	if el, ok := c.entries[k]; ok {
		e := el.Value.(*entry)
		c.used += size - e.size
		e.value, e.size = v, size
		c.order.MoveToFront(el)
	} else {
		el := c.order.PushFront(&entry{key: k, value: v, size: size})
		c.entries[k] = el
		c.used += size
	}
	for c.used > c.cap {
		back := c.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		c.order.Remove(back)
		delete(c.entries, e.key)
		c.used -= e.size
	}
}

// GetOrLoad returns the cached value for k, loading it with load on a miss.
// Concurrent calls for the same key are deduplicated (singleflight): one
// caller runs load while the rest wait and share its result, so N queries
// scanning the same cold tablet read and parse each block once, not N
// times. Load errors are not cached; every new caller retries.
func (c *Cache) GetOrLoad(k Key, load func() (interface{}, int64, error)) (interface{}, error) {
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		c.hits++
		c.order.MoveToFront(el)
		v := el.Value.(*entry).value
		c.mu.Unlock()
		return v, nil
	}
	if fl, ok := c.inflight[k]; ok {
		c.dedups++
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, fl.err
		}
		return fl.value, nil
	}
	c.misses++
	fl := &flight{done: make(chan struct{})}
	c.inflight[k] = fl
	c.mu.Unlock()

	fl.value, fl.size, fl.err = load()
	c.mu.Lock()
	delete(c.inflight, k)
	if fl.err == nil {
		c.putLocked(k, fl.value, fl.size)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.value, fl.err
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Dedups returns how many loads were avoided by piggybacking on an
// identical in-flight load (the singleflight saving).
func (c *Cache) Dedups() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dedups
}

// UsedBytes returns the current cached byte total.
func (c *Cache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
