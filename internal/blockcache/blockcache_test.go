package blockcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetPut(t *testing.T) {
	c := New(1000)
	k := Key{Handle: 1, Index: 0}
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k, "block", 100)
	v, ok := c.Get(k)
	if !ok || v.(string) != "block" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats %d/%d", hits, misses)
	}
	if c.UsedBytes() != 100 || c.Len() != 1 {
		t.Errorf("used %d len %d", c.UsedBytes(), c.Len())
	}
}

func TestEvictionLRU(t *testing.T) {
	c := New(300)
	for i := 0; i < 3; i++ {
		c.Put(Key{Handle: 1, Index: i}, i, 100)
	}
	// Touch 0 so 1 becomes the LRU, then overflow.
	c.Get(Key{Handle: 1, Index: 0})
	c.Put(Key{Handle: 1, Index: 3}, 3, 100)
	if _, ok := c.Get(Key{Handle: 1, Index: 1}); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Get(Key{Handle: 1, Index: 0}); !ok {
		t.Error("recently used entry evicted")
	}
	if c.UsedBytes() > 300 {
		t.Errorf("over budget: %d", c.UsedBytes())
	}
}

func TestOversizedValueRejected(t *testing.T) {
	c := New(100)
	c.Put(Key{Handle: 1}, "big", 200)
	if c.Len() != 0 {
		t.Error("oversized value cached")
	}
}

func TestUpdateExistingKey(t *testing.T) {
	c := New(1000)
	k := Key{Handle: 1, Index: 5}
	c.Put(k, "v1", 100)
	c.Put(k, "v2", 300)
	v, _ := c.Get(k)
	if v.(string) != "v2" {
		t.Error("update lost")
	}
	if c.UsedBytes() != 300 {
		t.Errorf("size accounting after update: %d", c.UsedBytes())
	}
}

func TestHandleIsolation(t *testing.T) {
	c := New(1000)
	c.Put(Key{Handle: 1, Index: 0}, "a", 10)
	if _, ok := c.Get(Key{Handle: 2, Index: 0}); ok {
		t.Error("handles collide")
	}
}

func TestConcurrent(t *testing.T) {
	c := New(10_000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Key{Handle: uint64(g), Index: i % 50}
				if v, ok := c.Get(k); ok {
					if v.(string) != fmt.Sprintf("%d-%d", g, i%50) {
						t.Errorf("cross-goroutine value corruption")
						return
					}
				} else {
					c.Put(k, fmt.Sprintf("%d-%d", g, i%50), 25)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.UsedBytes() > 10_000 {
		t.Errorf("over budget under concurrency: %d", c.UsedBytes())
	}
}

func TestGetOrLoadSingleflight(t *testing.T) {
	c := New(10_000)
	k := Key{Handle: 1, Index: 1}
	var loads atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := c.GetOrLoad(k, func() (interface{}, int64, error) {
				loads.Add(1)
				<-gate // hold every concurrent caller at the load
				return "block", 5, nil
			})
			if err != nil || v.(string) != "block" {
				t.Errorf("GetOrLoad: %v %v", v, err)
			}
		}()
	}
	// Let the goroutines pile up on the inflight entry, then release.
	for loads.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Errorf("load ran %d times, want 1 (singleflight)", n)
	}
	if h, m := c.Stats(); m != 1 {
		t.Errorf("hits %d misses %d, want 1 miss", h, m)
	}
	if d := c.Dedups(); d != 7 {
		t.Errorf("dedups = %d, want 7", d)
	}
	if v, ok := c.Get(k); !ok || v.(string) != "block" {
		t.Error("loaded value not cached")
	}
}

func TestGetOrLoadErrorNotCached(t *testing.T) {
	c := New(10_000)
	k := Key{Handle: 1, Index: 2}
	boom := errors.New("read failed")
	calls := 0
	for i := 0; i < 2; i++ {
		if _, err := c.GetOrLoad(k, func() (interface{}, int64, error) {
			calls++
			return nil, 0, boom
		}); err != boom {
			t.Fatalf("attempt %d: err = %v, want boom", i, err)
		}
	}
	if calls != 2 {
		t.Errorf("loader ran %d times, want 2: errors must not be cached", calls)
	}
	if _, ok := c.Get(k); ok {
		t.Error("failed load left an entry behind")
	}
}
