package blockcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(1000)
	k := Key{Handle: 1, Index: 0}
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k, "block", 100)
	v, ok := c.Get(k)
	if !ok || v.(string) != "block" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats %d/%d", hits, misses)
	}
	if c.UsedBytes() != 100 || c.Len() != 1 {
		t.Errorf("used %d len %d", c.UsedBytes(), c.Len())
	}
}

func TestEvictionLRU(t *testing.T) {
	c := New(300)
	for i := 0; i < 3; i++ {
		c.Put(Key{Handle: 1, Index: i}, i, 100)
	}
	// Touch 0 so 1 becomes the LRU, then overflow.
	c.Get(Key{Handle: 1, Index: 0})
	c.Put(Key{Handle: 1, Index: 3}, 3, 100)
	if _, ok := c.Get(Key{Handle: 1, Index: 1}); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Get(Key{Handle: 1, Index: 0}); !ok {
		t.Error("recently used entry evicted")
	}
	if c.UsedBytes() > 300 {
		t.Errorf("over budget: %d", c.UsedBytes())
	}
}

func TestOversizedValueRejected(t *testing.T) {
	c := New(100)
	c.Put(Key{Handle: 1}, "big", 200)
	if c.Len() != 0 {
		t.Error("oversized value cached")
	}
}

func TestUpdateExistingKey(t *testing.T) {
	c := New(1000)
	k := Key{Handle: 1, Index: 5}
	c.Put(k, "v1", 100)
	c.Put(k, "v2", 300)
	v, _ := c.Get(k)
	if v.(string) != "v2" {
		t.Error("update lost")
	}
	if c.UsedBytes() != 300 {
		t.Errorf("size accounting after update: %d", c.UsedBytes())
	}
}

func TestHandleIsolation(t *testing.T) {
	c := New(1000)
	c.Put(Key{Handle: 1, Index: 0}, "a", 10)
	if _, ok := c.Get(Key{Handle: 2, Index: 0}); ok {
		t.Error("handles collide")
	}
}

func TestConcurrent(t *testing.T) {
	c := New(10_000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Key{Handle: uint64(g), Index: i % 50}
				if v, ok := c.Get(k); ok {
					if v.(string) != fmt.Sprintf("%d-%d", g, i%50) {
						t.Errorf("cross-goroutine value corruption")
						return
					}
				} else {
					c.Put(k, fmt.Sprintf("%d-%d", g, i%50), 25)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.UsedBytes() > 10_000 {
		t.Errorf("over budget under concurrency: %d", c.UsedBytes())
	}
}
