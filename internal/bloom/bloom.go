// Package bloom implements the per-tablet Bloom filters that §3.4.5
// proposes (in the style of bLSM): a summary of a tablet's keys at roughly
// 10 bits per row that lets latest-row and uniqueness probes skip ~99% of
// the tablets that cannot contain a matching key.
package bloom

import (
	"errors"
	"math"
)

// BitsPerKey is the paper's proposed budget (§3.4.5: "a storage cost of
// only 10 bits per row").
const BitsPerKey = 10

// hashCount for 10 bits/key: k = ln2 * bits/key ≈ 7 gives the minimal
// false-positive rate (~0.8%, i.e. the paper's "99% of the tablets").
const hashCount = 7

// Filter is a fixed-size Bloom filter. The zero value is unusable; call
// New. Filters are not safe for concurrent mutation, but concurrent
// MayContain calls are safe once building is done.
type Filter struct {
	bits []uint64
	k    uint32
	n    uint64 // keys added
}

// ErrCorrupt reports a malformed marshaled filter.
var ErrCorrupt = errors.New("bloom: corrupt filter encoding")

// New returns a filter sized for expectedKeys at BitsPerKey bits each.
func New(expectedKeys int) *Filter {
	if expectedKeys < 1 {
		expectedKeys = 1
	}
	nbits := uint64(expectedKeys) * BitsPerKey
	words := (nbits + 63) / 64
	if words == 0 {
		words = 1
	}
	return &Filter{bits: make([]uint64, words), k: hashCount}
}

// fnv64a with a seed mixed in; two independent hashes drive the usual
// double-hashing scheme h_i = h1 + i*h2.
func hash2(key []byte) (uint64, uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h1 uint64 = offset64
	for _, c := range key {
		h1 ^= uint64(c)
		h1 *= prime64
	}
	h2 := h1
	h2 ^= h2 >> 33
	h2 *= 0xff51afd7ed558ccd
	h2 ^= h2 >> 33
	if h2 == 0 {
		h2 = prime64
	}
	return h1, h2
}

// Hash precomputes the two hash values for key. Writers that do not know
// the final key count up front (the tablet writer sizes its filter only at
// close) hash keys as they stream by and build the filter from the pairs.
func Hash(key []byte) (h1, h2 uint64) { return hash2(key) }

// Add inserts key into the filter.
func (f *Filter) Add(key []byte) {
	h1, h2 := hash2(key)
	f.AddHash(h1, h2)
}

// AddHash inserts a key by its precomputed Hash pair.
func (f *Filter) AddHash(h1, h2 uint64) {
	nbits := uint64(len(f.bits)) * 64
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % nbits
		f.bits[bit/64] |= 1 << (bit % 64)
	}
	f.n++
}

// MayContain reports whether key might have been added. False positives
// occur at roughly the configured rate; false negatives never.
func (f *Filter) MayContain(key []byte) bool {
	h1, h2 := hash2(key)
	nbits := uint64(len(f.bits)) * 64
	for i := uint32(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % nbits
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Len returns the number of keys added.
func (f *Filter) Len() uint64 { return f.n }

// SizeBytes returns the in-memory size of the bit array.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// EstimatedFalsePositiveRate computes the expected FP rate for the current
// fill level: (1 - e^(-kn/m))^k.
func (f *Filter) EstimatedFalsePositiveRate() float64 {
	m := float64(len(f.bits) * 64)
	if m == 0 || f.n == 0 {
		return 0
	}
	k := float64(f.k)
	return math.Pow(1-math.Exp(-k*float64(f.n)/m), k)
}

// Marshal serializes the filter: [k u32][n u64][words u64...] little-endian.
func (f *Filter) Marshal() []byte {
	out := make([]byte, 0, 12+len(f.bits)*8)
	out = append(out, byte(f.k), byte(f.k>>8), byte(f.k>>16), byte(f.k>>24))
	out = appendU64(out, f.n)
	for _, w := range f.bits {
		out = appendU64(out, w)
	}
	return out
}

// Unmarshal reconstructs a filter produced by Marshal.
func Unmarshal(b []byte) (*Filter, error) {
	if len(b) < 12 || (len(b)-12)%8 != 0 {
		return nil, ErrCorrupt
	}
	k := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	if k == 0 || k > 64 {
		return nil, ErrCorrupt
	}
	n := readU64(b[4:])
	words := (len(b) - 12) / 8
	if words == 0 {
		return nil, ErrCorrupt
	}
	f := &Filter{bits: make([]uint64, words), k: k, n: n}
	for i := range f.bits {
		f.bits[i] = readU64(b[12+i*8:])
	}
	return f, nil
}

func appendU64(dst []byte, u uint64) []byte {
	return append(dst,
		byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
		byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

func readU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
