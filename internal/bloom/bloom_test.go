package bloom

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestNoFalseNegatives(t *testing.T) {
	f := New(1000)
	for i := 0; i < 1000; i++ {
		f.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContain([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
	if f.Len() != 1000 {
		t.Errorf("Len = %d", f.Len())
	}
}

func TestFalsePositiveRate(t *testing.T) {
	const n = 10000
	f := New(n)
	for i := 0; i < n; i++ {
		f.Add([]byte(fmt.Sprintf("present-%d", i)))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if f.MayContain([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	rate := float64(fp) / probes
	// 10 bits/key with k=7 gives ~0.8%; allow generous slack. The paper's
	// claim is "eliminate the need to check 99% of the tablets" (§3.4.5),
	// i.e. a rate near 1%.
	if rate > 0.03 {
		t.Errorf("false positive rate %.4f, want < 0.03", rate)
	}
	est := f.EstimatedFalsePositiveRate()
	if est <= 0 || est > 0.03 {
		t.Errorf("estimated rate %.4f out of range", est)
	}
}

func TestSizeBudget(t *testing.T) {
	const n = 100000
	f := New(n)
	// ~10 bits/key = 1.25 bytes/key.
	want := n * BitsPerKey / 8
	if f.SizeBytes() < want || f.SizeBytes() > want+64 {
		t.Errorf("SizeBytes = %d, want ≈%d", f.SizeBytes(), want)
	}
}

func TestEmptyFilter(t *testing.T) {
	f := New(10)
	if f.MayContain([]byte("anything")) {
		t.Error("empty filter claims membership")
	}
	if f.EstimatedFalsePositiveRate() != 0 {
		t.Error("empty filter has nonzero FP estimate")
	}
}

func TestTinyCapacity(t *testing.T) {
	f := New(0) // clamps to 1
	f.Add([]byte("x"))
	if !f.MayContain([]byte("x")) {
		t.Error("lost the only key")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := New(500)
	for i := 0; i < 500; i++ {
		f.Add([]byte(fmt.Sprintf("k%d", i)))
	}
	b := f.Marshal()
	g, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != f.Len() || g.SizeBytes() != f.SizeBytes() {
		t.Errorf("metadata mismatch: len %d/%d size %d/%d", g.Len(), f.Len(), g.SizeBytes(), f.SizeBytes())
	}
	for i := 0; i < 500; i++ {
		if !g.MayContain([]byte(fmt.Sprintf("k%d", i))) {
			t.Fatalf("unmarshaled filter lost k%d", i)
		}
	}
}

func TestMarshalQuick(t *testing.T) {
	f := func(keys [][]byte) bool {
		fl := New(len(keys))
		for _, k := range keys {
			fl.Add(k)
		}
		g, err := Unmarshal(fl.Marshal())
		if err != nil {
			return false
		}
		for _, k := range keys {
			if !g.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 13), // not a multiple of 8 after header
		make([]byte, 12), // header only, zero words
		append([]byte{99, 0, 0, 99}, make([]byte, 16)...), // absurd k
		append([]byte{0, 0, 0, 0}, make([]byte, 16)...),   // k = 0
	}
	for i, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	f := New(b.N + 1)
	key := []byte("network=1234 device=5678 ts=1600000000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(key)
	}
}

func BenchmarkMayContain(b *testing.B) {
	f := New(100000)
	for i := 0; i < 100000; i++ {
		f.Add([]byte(fmt.Sprintf("k%d", i)))
	}
	key := []byte("k50000")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(key)
	}
}
