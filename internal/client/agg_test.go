package client

import (
	"context"
	"fmt"
	"math"
	"testing"

	"littletable/internal/agg"
	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/schema"
	"littletable/internal/wire"
)

func usageAggSchema() *schema.Schema {
	return schema.MustNew([]schema.Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "device", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "rate", Type: ltval.Double},
		{Name: "bytes", Type: ltval.Int64},
	}, []string{"network", "device", "ts"})
}

func usageAggRow(n, d, ts int64, rate float64, bytes int64) schema.Row {
	return schema.Row{
		ltval.NewInt64(n), ltval.NewInt64(d), ltval.NewTimestamp(ts),
		ltval.NewDouble(rate), ltval.NewInt64(bytes),
	}
}

func usageAggSpec() agg.Spec {
	return agg.Spec{
		BucketWidth: clock.Minute,
		GroupCols:   2,
		Aggs: []agg.Agg{
			{Func: agg.Count},
			{Func: agg.Sum, Col: "bytes"},
			{Func: agg.Sum, Col: "rate"},
			{Func: agg.Min, Col: "rate"},
			{Func: agg.Max, Col: "bytes"},
			{Func: agg.Avg, Col: "rate"},
			{Func: agg.Quantile, Col: "rate", Q: 0.9},
		},
	}
}

// aggGroupsExact is the bit-exact comparison the differential test can
// demand: server and client fold the same rows in the same (primary-key)
// order, so even float sums must match to the last bit. Only the bits
// the wire format carries for each function are compared — IsFloat, for
// instance, exists solely to pick the Sum/Avg arithmetic.
func aggGroupsExact(t *testing.T, spec agg.Spec, label string, got, want []agg.Group) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d groups, want %d", label, len(got), len(want))
	}
	for i := range want {
		if agg.CompareGroups(&got[i], &want[i]) != 0 {
			t.Fatalf("%s: group %d key/bucket mismatch: got %+v want %+v", label, i, got[i], want[i])
		}
		for j := range want[i].States {
			sg, sw := got[i].States[j], want[i].States[j]
			if sg.N != sw.N || sg.HasMM != sw.HasMM {
				t.Fatalf("%s: group %d state %d: got %+v want %+v", label, i, j, sg, sw)
			}
			if f := spec.Aggs[j].Func; f == agg.Sum || f == agg.Avg {
				if sg.IntSum != sw.IntSum || sg.Saturated != sw.Saturated || sg.IsFloat != sw.IsFloat {
					t.Fatalf("%s: group %d state %d: got %+v want %+v", label, i, j, sg, sw)
				}
				if sg.FloatSum != sw.FloatSum && !(math.IsNaN(sg.FloatSum) && math.IsNaN(sw.FloatSum)) {
					t.Fatalf("%s: group %d state %d float sum: got %v want %v", label, i, j, sg.FloatSum, sw.FloatSum)
				}
			}
			if sg.HasMM && sg.MM.Compare(sw.MM) != 0 {
				t.Fatalf("%s: group %d state %d min/max: got %+v want %+v", label, i, j, sg.MM, sw.MM)
			}
			if (sg.Sketch == nil) != (sw.Sketch == nil) {
				t.Fatalf("%s: group %d state %d sketch presence differs", label, i, j)
			}
			if sg.Sketch != nil &&
				string(sg.Sketch.AppendBinary(nil)) != string(sw.Sketch.AppendBinary(nil)) {
				t.Fatalf("%s: group %d state %d sketch bytes differ", label, i, j)
			}
		}
	}
}

// TestAggQueryDifferential is the end-to-end correctness gate for the
// server-side aggregation path: the same rows aggregated two ways — by
// the server over MsgAggQuery, and by the client folding raw Query rows
// through the same accumulator — must agree exactly, at every query
// parallelism, over a mixed memtable + disk-tablet table state.
func TestAggQueryDifferential(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("parallelism_%d", par), func(t *testing.T) {
			srv, addr := startServer(t, core.Options{QueryParallelism: par})
			c := dial(t, addr)
			sc := usageAggSchema()
			for _, name := range []string{"usage_a", "usage_b", "other"} {
				if err := c.CreateTable(name, sc, 0); err != nil {
					t.Fatal(err)
				}
			}
			const base = int64(1_700_000_000) * clock.Second
			insert := func(name string, seed int64) {
				tab, err := c.OpenTable(name)
				if err != nil {
					t.Fatal(err)
				}
				var batch []schema.Row
				for n := int64(0); n < 3; n++ {
					for d := int64(0); d < 4; d++ {
						for i := int64(0); i < 12; i++ {
							ts := base + i*17*clock.Second // spans several 1m buckets
							rate := float64((seed+n*7+d*3+i)%11) - 4.5
							if (seed+i)%9 == 0 {
								rate = math.NaN()
							}
							batch = append(batch, usageAggRow(n, d, ts, rate, (seed+1)*1000+n*100+d*10+i))
						}
					}
				}
				if err := tab.InsertNow(batch); err != nil {
					t.Fatal(err)
				}
			}
			insert("usage_a", 1)
			insert("other", 99) // must not leak into the "usage" prefix
			// Flush now, then add more rows: the aggregation scan must merge
			// disk tablets and memtable alike.
			if err := srv.FlushAllTables(); err != nil {
				t.Fatal(err)
			}
			insert("usage_b", 2)

			spec := usageAggSpec()
			// A window that clips both ends, so the ts filter is observable.
			lo := base + 30*clock.Second
			hi := base + 150*clock.Second

			// Reference: fold each table's raw rows client-side in the order
			// the query returns them (primary-key order — the same order the
			// server folds), then merge across tables.
			var wantMerged []agg.Group
			want := map[string][]agg.Group{}
			var wantRows int64
			for _, name := range []string{"usage_a", "usage_b"} {
				tab, err := c.OpenTable(name)
				if err != nil {
					t.Fatal(err)
				}
				acc, err := agg.NewAccumulator(sc, spec)
				if err != nil {
					t.Fatal(err)
				}
				q := NewQuery()
				q.MinTs, q.MaxTs = lo, hi
				rows := tab.Query(q)
				for rows.Next() {
					acc.Add(rows.Row())
				}
				if err := rows.Err(); err != nil {
					t.Fatal(err)
				}
				rows.Close()
				if acc.Rows() == 0 {
					t.Fatalf("%s: reference query matched no rows; bad window", name)
				}
				wantRows += acc.Rows()
				want[name] = acc.Groups()
				wantMerged = agg.MergeGroups(spec, wantMerged, want[name])
			}

			res, err := c.AggQuery(context.Background(), &wire.AggQuery{
				Prefix: "usage", Spec: spec, MinTs: lo, MaxTs: hi, WantPartials: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Truncated {
				t.Fatal("result truncated without any cap set")
			}
			if res.RowsFolded != wantRows {
				t.Fatalf("RowsFolded = %d, want %d", res.RowsFolded, wantRows)
			}
			if len(res.Tables) != 2 || res.Tables[0].Table != "usage_a" || res.Tables[1].Table != "usage_b" {
				t.Fatalf("partial tables: %+v", res.Tables)
			}
			for _, p := range res.Tables {
				aggGroupsExact(t, spec, p.Table, p.Groups, want[p.Table])
			}
			aggGroupsExact(t, spec, "merged", res.Groups, wantMerged)

			// The dashboard shape: without WantPartials the per-table
			// sections stay home and only the merged groups ship.
			lean, err := c.AggQuery(context.Background(), &wire.AggQuery{
				Prefix: "usage", Spec: spec, MinTs: lo, MaxTs: hi,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(lean.Tables) != 0 {
				t.Fatalf("partials shipped without WantPartials: %d tables", len(lean.Tables))
			}
			aggGroupsExact(t, spec, "lean merged", lean.Groups, wantMerged)

			// Finalized outputs line up one-to-one with the mergeable groups.
			outs := agg.Finalize(spec, res.Groups)
			if len(outs) != len(wantMerged) {
				t.Fatalf("finalize: %d outputs, want %d", len(outs), len(wantMerged))
			}
			for i, o := range outs {
				if o.Bucket != wantMerged[i].Bucket || len(o.Values) != len(spec.Aggs) {
					t.Fatalf("finalize output %d drifted: %+v", i, o)
				}
				if o.Values[0].Int != wantMerged[i].States[0].N {
					t.Fatalf("finalize count %d = %d, want %d", i, o.Values[0].Int, wantMerged[i].States[0].N)
				}
			}
		})
	}
}

// TestAggQueryCaps drives the two truncation paths over the wire: a
// group cap hit mid-scan and a table cap narrowing coverage must both
// set Truncated rather than fail.
func TestAggQueryCaps(t *testing.T) {
	_, addr := startServer(t, core.Options{})
	c := dial(t, addr)
	sc := usageAggSchema()
	for _, name := range []string{"cap_a", "cap_b"} {
		if err := c.CreateTable(name, sc, 0); err != nil {
			t.Fatal(err)
		}
		tab, err := c.OpenTable(name)
		if err != nil {
			t.Fatal(err)
		}
		var batch []schema.Row
		for d := int64(0); d < 32; d++ {
			batch = append(batch, usageAggRow(1, d, clock.Minute*d, 1.5, d))
		}
		if err := tab.InsertNow(batch); err != nil {
			t.Fatal(err)
		}
	}
	spec := agg.Spec{GroupCols: 2, Aggs: []agg.Agg{{Func: agg.Count}}} // width 0: one bucket, one group per device
	full, err := c.AggQuery(context.Background(), &wire.AggQuery{
		Prefix: "cap", Spec: spec, MinTs: core.TsMin, MaxTs: core.TsMax, WantPartials: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated || len(full.Tables) != 2 {
		t.Fatalf("uncapped query: truncated=%v tables=%d", full.Truncated, len(full.Tables))
	}

	capped, err := c.AggQuery(context.Background(), &wire.AggQuery{
		Prefix: "cap", Spec: spec, MinTs: core.TsMin, MaxTs: core.TsMax, MaxGroups: 8, WantPartials: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !capped.Truncated {
		t.Fatal("MaxGroups cap not reported as truncation")
	}

	oneTable, err := c.AggQuery(context.Background(), &wire.AggQuery{
		Prefix: "cap", Spec: spec, MinTs: core.TsMin, MaxTs: core.TsMax, MaxTables: 1, WantPartials: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !oneTable.Truncated || len(oneTable.Tables) != 1 || oneTable.Tables[0].Table != "cap_a" {
		t.Fatalf("MaxTables cap: truncated=%v tables=%+v", oneTable.Truncated, oneTable.Tables)
	}

	// An unset window (MinTs == MaxTs == 0) means all time — the server
	// must not read the zero values as the literal inclusive window [0,0].
	unset, err := c.AggQuery(context.Background(), &wire.AggQuery{Prefix: "cap", Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if unset.RowsFolded != full.RowsFolded || len(unset.Groups) != len(full.Groups) {
		t.Fatalf("unset window folded %d rows / %d groups, want %d / %d",
			unset.RowsFolded, len(unset.Groups), full.RowsFolded, len(full.Groups))
	}
}
