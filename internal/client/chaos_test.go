package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"littletable/internal/netfault"
	"littletable/internal/schema"
	"littletable/internal/server"
	"littletable/internal/wire"
)

// chaosSeed returns the fault-schedule seed, set by the CI chaos matrix
// via LTNETFAULT_SEED (default 1) — the same convention as the crash
// harness's LTCRASH_SEED, so a failing run is replayable.
func chaosSeed() int64 {
	if v := os.Getenv("LTNETFAULT_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return 1
}

// chaosProxy starts a fault-injecting proxy in front of addr and, when
// the test fails and LTNETFAULT_ARTIFACT names a directory, dumps the
// recorded fault script there for reproduction.
func chaosProxy(t *testing.T, addr string, cfg netfault.Config) *netfault.Proxy {
	t.Helper()
	cfg.Seed = chaosSeed()
	p, err := netfault.New(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if t.Failed() {
			if dir := os.Getenv("LTNETFAULT_ARTIFACT"); dir != "" {
				if err := os.MkdirAll(dir, 0o755); err == nil {
					name := strings.ReplaceAll(t.Name(), "/", "_") + ".faults.txt"
					header := fmt.Sprintf("seed %d\n", cfg.Seed)
					os.WriteFile(filepath.Join(dir, name), []byte(header+p.Script()), 0o644)
				}
			}
		}
		p.Close()
	})
	return p
}

// typedChaosError reports whether err is one of the client's sanctioned
// failure modes under network faults — the "fail cleanly with typed
// errors" half of the chaos contract.
func typedChaosError(err error) bool {
	var re *RemoteError
	return errors.Is(err, ErrDisconnected) ||
		errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrClientClosed) ||
		errors.Is(err, wire.ErrCorrupt) ||
		errors.As(err, &re)
}

func startChaosServer(t *testing.T, sopts server.Options) (*server.Server, string) {
	t.Helper()
	if sopts.Root == "" {
		sopts.Root = t.TempDir()
	}
	sopts.Logf = func(string, ...interface{}) {} // fault storms are noisy
	s, err := server.New(sopts)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(lis)
	t.Cleanup(func() { s.Close() })
	return s, lis.Addr().String()
}

// TestChaosNoAckedInsertLost is the §4.1 contract under fire: writers
// insert unique rows through a proxy injecting drops, resets, and partial
// writes. Whatever the network does, every insert the client saw
// acknowledged must be readable afterwards, and every failure must carry
// a typed error.
func TestChaosNoAckedInsertLost(t *testing.T) {
	baseline := stableGoroutineCount()
	s, addr := startChaosServer(t, server.Options{})
	p := chaosProxy(t, addr, netfault.Config{
		DropRate:    0.02,
		ResetRate:   0.02,
		PartialRate: 0.01,
	})

	admin := dialOpts(t, addr, fastOpts()) // direct: table setup is not under test
	if err := admin.CreateTable("chaos", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const rowsPerWriter = 120
	type key struct{ w, seq int64 }
	var mu sync.Mutex
	acked := map[key]bool{}
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int64) {
			defer wg.Done()
			opts := fastOpts()
			opts.JitterSeed = chaosSeed() + w
			c, err := DialContext(context.Background(), p.Addr(), opts)
			if err != nil {
				// The proxy can kill the handshake conn; that is a clean,
				// typed refusal, not a correctness failure.
				if !typedChaosError(err) {
					errCh <- fmt.Errorf("writer %d dial: %w", w, err)
				}
				return
			}
			defer c.Close()
			tab, err := c.OpenTable("chaos")
			if err != nil {
				if !typedChaosError(err) {
					errCh <- fmt.Errorf("writer %d open: %w", w, err)
				}
				return
			}
			for seq := int64(0); seq < rowsPerWriter; seq++ {
				err := tab.InsertNow([]schema.Row{eventRow(w, seq, 1_000_000+seq, seq, "chaos")})
				if err == nil {
					mu.Lock()
					acked[key{w, seq}] = true
					mu.Unlock()
					continue
				}
				if !typedChaosError(err) {
					errCh <- fmt.Errorf("writer %d seq %d: untyped error: %w", w, seq, err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Heal: read back over a clean path and diff against the ack set.
	tab, err := admin.OpenTable("chaos")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tab.Query(NewQuery()).All()
	if err != nil {
		t.Fatal(err)
	}
	present := map[key]bool{}
	for _, r := range rows {
		present[key{r[0].Int, r[1].Int}] = true
	}
	var lost int
	mu.Lock()
	for k := range acked {
		if !present[k] {
			lost++
			t.Errorf("acked insert lost: writer %d seq %d", k.w, k.seq)
		}
	}
	ackedN := len(acked)
	mu.Unlock()
	if lost > 0 {
		t.Fatalf("%d of %d acked inserts lost (seed %d)", lost, ackedN, chaosSeed())
	}
	p.Close() // joins the pump goroutines; Stats is stable after this
	t.Logf("seed %d: %d acked, %d present, proxy stats: %+v", chaosSeed(), ackedN, len(present), p.Stats())
	s.Close()
	checkGoroutineCount(t, baseline)
}

// TestChaosQueriesFailCleanly runs reads through a proxy that corrupts,
// drops, and delays. The wire protocol has no frame checksums, so
// corruption may garble results — the contract here is weaker and
// explicit: every query either succeeds or fails with a typed error;
// no panics, no hangs, and the server itself survives garbled requests.
func TestChaosQueriesFailCleanly(t *testing.T) {
	baseline := stableGoroutineCount()
	s, addr := startChaosServer(t, server.Options{})
	p := chaosProxy(t, addr, netfault.Config{
		DropRate:    0.02,
		ResetRate:   0.01,
		CorruptRate: 0.05,
		LatencyMax:  2 * time.Millisecond,
	})

	admin := dialOpts(t, addr, fastOpts())
	if err := admin.CreateTable("chaos", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	tabDirect, err := admin.OpenTable("chaos")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		if err := tabDirect.Insert(eventRow(1, i, 1_000_000+i, i, "steady")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tabDirect.Flush(); err != nil {
		t.Fatal(err)
	}

	const readers = 3
	var wg sync.WaitGroup
	errCh := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int64) {
			defer wg.Done()
			opts := fastOpts()
			opts.JitterSeed = chaosSeed() + 100 + r
			opts.RequestTimeout = 2 * time.Second
			c, err := DialContext(context.Background(), p.Addr(), opts)
			if err != nil {
				if !typedChaosError(err) && !errors.Is(err, context.DeadlineExceeded) {
					errCh <- fmt.Errorf("reader %d dial: %w", r, err)
				}
				return
			}
			defer c.Close()
			tab, err := c.OpenTable("chaos")
			if err != nil {
				return // schema fetch lost to the storm; typed-ness checked below for queries
			}
			for k := 0; k < 25; k++ {
				_, err := tab.Query(NewQuery()).All()
				if err == nil || typedChaosError(err) || errors.Is(err, context.DeadlineExceeded) {
					continue
				}
				// Corruption can surface as any decode error; it must still
				// be an error value from our packages, not a panic or a
				// silent wedge. Anything else is reported for inspection.
				msg := err.Error()
				if strings.Contains(msg, "wire:") || strings.Contains(msg, "ltval:") ||
					strings.Contains(msg, "client:") || strings.Contains(msg, "schema:") ||
					strings.Contains(msg, "json") {
					continue
				}
				errCh <- fmt.Errorf("reader %d query %d: unclassified error: %w", r, k, err)
				return
			}
		}(int64(r))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The server survived the garbage: a clean client sees all rows.
	rows, err := tabDirect.Query(NewQuery()).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 200 {
		t.Fatalf("after corruption storm: %d rows, want 200", len(rows))
	}
	p.Close()
	t.Logf("seed %d: proxy stats %+v", chaosSeed(), p.Stats())
	s.Close()
	checkGoroutineCount(t, baseline)
}

// TestChaosPoolRecoversAcrossServerRestart kills and replaces the server
// mid-workload (with a flush first, honoring the §4.1 durability
// contract): the same client must carry on over the proxy, and every
// acked-and-flushed row must still be present afterwards.
func TestChaosPoolRecoversAcrossServerRestart(t *testing.T) {
	baseline := stableGoroutineCount()
	root := t.TempDir()
	s1, addr1 := startChaosServer(t, server.Options{Root: root})
	p := chaosProxy(t, addr1, netfault.Config{DropRate: 0.01})

	opts := fastOpts()
	opts.JitterSeed = chaosSeed()
	c, err := DialContext(context.Background(), p.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable("chaos", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable("chaos")
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ w, seq int64 }
	acked := map[key]bool{}
	for seq := int64(0); seq < 60; seq++ {
		if err := tab.InsertNow([]schema.Row{eventRow(1, seq, 1_000_000+seq, seq, "pre")}); err == nil {
			acked[key{1, seq}] = true
		} else if !typedChaosError(err) {
			t.Fatalf("pre-restart insert: %v", err)
		}
	}
	// Make acked rows durable, then hard-stop the server.
	if err := s1.FlushAllTables(); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2, addr2 := startChaosServer(t, server.Options{Root: root})
	p.SetTarget(addr2)
	p.CutAll()

	// Same client, same pool: it must reconnect and keep working.
	for seq := int64(100); seq < 160; seq++ {
		if err := tab.InsertNow([]schema.Row{eventRow(2, seq, 2_000_000+seq, seq, "post")}); err == nil {
			acked[key{2, seq}] = true
		} else if !typedChaosError(err) {
			t.Fatalf("post-restart insert: %v", err)
		}
	}
	rows, err := tab.Query(NewQuery()).All()
	if err != nil {
		t.Fatalf("post-restart query: %v", err)
	}
	present := map[key]bool{}
	for _, r := range rows {
		present[key{r[0].Int, r[1].Int}] = true
	}
	for k := range acked {
		if !present[k] {
			t.Errorf("acked row lost across restart: writer %d seq %d (seed %d)", k.w, k.seq, chaosSeed())
		}
	}
	if got := c.Stats().Reconnects.Load(); got == 0 {
		t.Error("restart recovery recorded no reconnects")
	}
	p.Close()
	s2.Close()
	checkGoroutineCount(t, baseline)
}

// TestChaosDrainUnderFire shuts the server down gracefully while clients
// hammer it through a mildly faulty proxy: every request must complete or
// fail typed (drain never truncates a response into garbage), Shutdown
// must converge, and nothing may leak.
func TestChaosDrainUnderFire(t *testing.T) {
	baseline := stableGoroutineCount()
	s, addr := startChaosServer(t, server.Options{MaxInFlight: 8})
	p := chaosProxy(t, addr, netfault.Config{DropRate: 0.01, LatencyMax: time.Millisecond})

	admin := dialOpts(t, addr, fastOpts())
	if err := admin.CreateTable("chaos", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}

	const workers = 6
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int64) {
			defer wg.Done()
			opts := fastOpts()
			opts.JitterSeed = chaosSeed() + 200 + w
			opts.RequestTimeout = 2 * time.Second
			c, err := DialContext(context.Background(), p.Addr(), opts)
			if err != nil {
				return
			}
			defer c.Close()
			tab, err := c.OpenTable("chaos")
			if err != nil {
				return
			}
			for seq := int64(0); ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				err := tab.InsertNow([]schema.Row{eventRow(w, seq, 3_000_000+seq, seq, "drain")})
				if err != nil && !typedChaosError(err) && !errors.Is(err, context.DeadlineExceeded) {
					errCh <- fmt.Errorf("worker %d under drain: %w", w, err)
					return
				}
			}
		}(int64(w))
	}

	time.Sleep(100 * time.Millisecond) // let the fire build
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown under fire: %v", err)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if s.Stats().DrainNs.Load() <= 0 {
		t.Error("drain duration not recorded")
	}
	p.Close()
	checkGoroutineCount(t, baseline)
}
