// Package client is LittleTable's client adaptor — the role the SQLite
// virtual-table module plays in the paper (§3.1): it keeps a persistent
// TCP connection to the server (so it notices crashes), fetches each
// table's schema and sort order once, batches inserts, pushes
// two-dimensional bounds down to the server, and transparently re-submits
// queries when the server's row limit trips the more-available flag
// (§3.5).
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/schema"
	"littletable/internal/wire"
)

// DefaultBatchSize is the insert batch the client accumulates before
// sending; §1 cites batches of 512 rows as common in production.
const DefaultBatchSize = 512

// RemoteError is an error reported by the server.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "littletable: " + e.Msg }

// ErrDisconnected reports a broken connection; the application decides
// what recently-written data to re-read from its devices and re-insert
// (§3.1, §4.1).
var ErrDisconnected = errors.New("client: disconnected from server")

// Client is a connection to one LittleTable server. Methods are safe for
// concurrent use; requests serialize over the single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	wc   *wire.Conn
	dead bool
}

// Dial connects and performs the protocol handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, wc: wire.NewConn(conn)}
	h := &wire.Hello{Version: wire.ProtocolVersion}
	if _, _, err := c.roundTrip(wire.MsgHello, h.Encode()); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dead = true
	return c.conn.Close()
}

// roundTrip sends one request and reads one response, translating MsgError
// into *RemoteError and transport failures into ErrDisconnected.
func (c *Client) roundTrip(t wire.MsgType, payload []byte) (wire.MsgType, []byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return 0, nil, ErrDisconnected
	}
	if err := c.wc.WriteMsg(t, payload); err != nil {
		c.dead = true
		return 0, nil, fmt.Errorf("%w: %v", ErrDisconnected, err)
	}
	mt, resp, err := c.wc.ReadMsg()
	if err != nil {
		c.dead = true
		return 0, nil, fmt.Errorf("%w: %v", ErrDisconnected, err)
	}
	if mt == wire.MsgError {
		em, derr := wire.DecodeErrorMsg(resp)
		if derr != nil {
			return 0, nil, derr
		}
		return 0, nil, &RemoteError{Msg: em.Message}
	}
	return mt, resp, nil
}

func expectOK(mt wire.MsgType, _ []byte, err error) error {
	if err != nil {
		return err
	}
	if mt != wire.MsgOK {
		return fmt.Errorf("client: unexpected response type %d", mt)
	}
	return nil
}

// ListTables returns the server's table names.
func (c *Client) ListTables() ([]string, error) {
	mt, resp, err := c.roundTrip(wire.MsgListTables, nil)
	if err != nil {
		return nil, err
	}
	if mt != wire.MsgTableList {
		return nil, fmt.Errorf("client: unexpected response type %d", mt)
	}
	m, err := wire.DecodeTableList(resp)
	if err != nil {
		return nil, err
	}
	return m.Names, nil
}

// CreateTable creates a table with the given schema and TTL (microseconds;
// 0 = never expire).
func (c *Client) CreateTable(name string, sc *schema.Schema, ttl int64) error {
	m := &wire.CreateTable{Name: name, Schema: sc, TTL: ttl}
	payload, err := m.Encode()
	if err != nil {
		return err
	}
	return expectOK(c.roundTrip(wire.MsgCreateTable, payload))
}

// DropTable removes a table and its data.
func (c *Client) DropTable(name string) error {
	m := &wire.TableName{Name: name}
	return expectOK(c.roundTrip(wire.MsgDropTable, m.Encode()))
}

// Table is a handle on one remote table, carrying its cached schema.
type Table struct {
	c    *Client
	name string

	mu    sync.Mutex
	sc    *schema.Schema
	ttl   int64
	batch []schema.Row
	// BatchSize rows accumulate before an automatic Flush; set before the
	// first Insert.
	BatchSize int
	// ServerTimestamps asks the server to stamp rows whose ts cell is zero
	// with its current time (§3.1).
	ServerTimestamps bool
}

// OpenTable fetches the table's schema and returns a handle.
func (c *Client) OpenTable(name string) (*Table, error) {
	t := &Table{c: c, name: name, BatchSize: DefaultBatchSize}
	if err := t.RefreshSchema(); err != nil {
		return nil, err
	}
	return t, nil
}

// RefreshSchema re-fetches the schema, e.g. after a stale-schema error.
func (t *Table) RefreshSchema() error {
	m := &wire.TableName{Name: t.name}
	mt, resp, err := t.c.roundTrip(wire.MsgGetSchema, m.Encode())
	if err != nil {
		return err
	}
	if mt != wire.MsgSchema {
		return fmt.Errorf("client: unexpected response type %d", mt)
	}
	sr, err := wire.DecodeSchemaResp(resp)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.sc = sr.Schema
	t.ttl = sr.TTL
	t.mu.Unlock()
	return nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the cached schema.
func (t *Table) Schema() *schema.Schema {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sc
}

// TTL returns the cached TTL.
func (t *Table) TTL() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ttl
}

// Insert buffers rows, flushing automatically at BatchSize (the adaptor
// "takes clients' inserts and transmits them to the LittleTable server in
// batches", §3.1). Call Flush to force the tail out.
func (t *Table) Insert(rows ...schema.Row) error {
	t.mu.Lock()
	t.batch = append(t.batch, rows...)
	needFlush := len(t.batch) >= t.BatchSize
	t.mu.Unlock()
	if needFlush {
		return t.Flush()
	}
	return nil
}

// Flush sends any buffered rows.
func (t *Table) Flush() error {
	t.mu.Lock()
	if len(t.batch) == 0 {
		t.mu.Unlock()
		return nil
	}
	rows := t.batch
	t.batch = nil
	sc := t.sc
	serverTs := t.ServerTimestamps
	t.mu.Unlock()
	m := wire.NewInsert(t.name, sc, serverTs, rows)
	return expectOK(t.c.roundTrip(wire.MsgInsert, m.Encode()))
}

// InsertNow sends rows immediately, bypassing the batch buffer.
func (t *Table) InsertNow(rows []schema.Row) error {
	t.mu.Lock()
	sc := t.sc
	serverTs := t.ServerTimestamps
	t.mu.Unlock()
	m := wire.NewInsert(t.name, sc, serverTs, rows)
	return expectOK(t.c.roundTrip(wire.MsgInsert, m.Encode()))
}

// Query mirrors core.Query on the client side.
type Query struct {
	Lower, Upper       []ltval.Value
	LowerInc, UpperInc bool
	MinTs, MaxTs       int64
	Descending         bool
	Limit              int
}

// NewQuery returns an all-rows query to narrow.
func NewQuery() Query {
	return Query{LowerInc: true, UpperInc: true, MinTs: core.TsMin, MaxTs: core.TsMax}
}

// Rows streams a query's results, transparently re-submitting with an
// updated start bound whenever the server's row limit sets more-available
// (§3.5).
type Rows struct {
	t      *Table
	q      Query
	buf    []schema.Row
	i      int
	more   bool
	row    schema.Row
	count  int
	err    error
	sc     *schema.Schema
	closed bool
}

// Query starts a streaming query.
func (t *Table) Query(q Query) *Rows {
	r := &Rows{t: t, q: q, sc: t.Schema(), more: true}
	return r
}

// Next advances to the next result row.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if r.q.Limit > 0 && r.count >= r.q.Limit {
		return false
	}
	for r.i >= len(r.buf) {
		if !r.more {
			return false
		}
		if err := r.fetch(); err != nil {
			r.err = err
			return false
		}
		if len(r.buf) == 0 && !r.more {
			return false
		}
	}
	r.row = r.buf[r.i]
	r.i++
	r.count++
	return true
}

// fetch issues one wire query for the next page.
func (r *Rows) fetch() error {
	wq := &wire.Query{
		Table:      r.t.name,
		HasLower:   r.q.Lower != nil,
		Lower:      r.q.Lower,
		LowerInc:   r.q.LowerInc,
		HasUpper:   r.q.Upper != nil,
		Upper:      r.q.Upper,
		UpperInc:   r.q.UpperInc,
		MinTs:      r.q.MinTs,
		MaxTs:      r.q.MaxTs,
		Descending: r.q.Descending,
	}
	if r.q.Limit > 0 {
		remaining := r.q.Limit - r.count
		if remaining <= 0 {
			r.more = false
			r.buf, r.i = nil, 0
			return nil
		}
		wq.Limit = uint32(remaining)
	}
	mt, resp, err := r.t.c.roundTrip(wire.MsgQuery, wq.Encode())
	if err != nil {
		return err
	}
	if mt != wire.MsgRows {
		return fmt.Errorf("client: unexpected response type %d", mt)
	}
	m, err := wire.DecodeRows(resp, r.sc)
	if err != nil {
		return err
	}
	r.buf, r.i = m.Rows, 0
	r.more = m.More
	if m.More && len(m.Rows) > 0 {
		// Resume past the last row: "updating the starting key bound in a
		// query to the key of the last row returned and re-submitting"
		// (§3.5).
		last := m.Rows[len(m.Rows)-1]
		k := r.sc.KeyOf(last)
		if r.q.Descending {
			r.q.Upper = k
			r.q.UpperInc = false
		} else {
			r.q.Lower = k
			r.q.LowerInc = false
		}
	}
	return nil
}

// Row returns the current row; valid after Next reports true.
func (r *Rows) Row() schema.Row { return r.row }

// Err returns the first error hit while streaming.
func (r *Rows) Err() error { return r.err }

// Close ends the stream early.
func (r *Rows) Close() error {
	r.closed = true
	return nil
}

// All materializes the full result.
func (r *Rows) All() ([]schema.Row, error) {
	var out []schema.Row
	for r.Next() {
		out = append(out, r.Row())
	}
	if r.err != nil {
		return nil, r.err
	}
	return out, nil
}

// LatestRow fetches the most recent row whose key starts with prefix.
func (t *Table) LatestRow(prefix []ltval.Value) (schema.Row, bool, error) {
	m := &wire.LatestRow{Table: t.name, Prefix: prefix}
	mt, resp, err := t.c.roundTrip(wire.MsgLatestRow, m.Encode())
	if err != nil {
		return nil, false, err
	}
	if mt != wire.MsgRowResult {
		return nil, false, fmt.Errorf("client: unexpected response type %d", mt)
	}
	rr, err := wire.DecodeRowResult(resp, t.Schema())
	if err != nil {
		return nil, false, err
	}
	return rr.Row, rr.Found, nil
}

// DeleteRange bulk-deletes every row inside the query's box (the §7
// privacy-compliance delete). The Descending and Limit fields are ignored.
// It returns the number of rows removed.
func (t *Table) DeleteRange(q Query) (int64, error) {
	m := &wire.Delete{
		Table:    t.name,
		HasLower: q.Lower != nil,
		Lower:    q.Lower,
		LowerInc: q.LowerInc,
		HasUpper: q.Upper != nil,
		Upper:    q.Upper,
		UpperInc: q.UpperInc,
		MinTs:    q.MinTs,
		MaxTs:    q.MaxTs,
	}
	mt, resp, err := t.c.roundTrip(wire.MsgDelete, m.Encode())
	if err != nil {
		return 0, err
	}
	if mt != wire.MsgDeleteResult {
		return 0, fmt.Errorf("client: unexpected response type %d", mt)
	}
	dr, err := wire.DecodeDeleteResult(resp)
	if err != nil {
		return 0, err
	}
	return dr.Deleted, nil
}

// AlterTTL changes the table's TTL.
func (t *Table) AlterTTL(ttl int64) error {
	m := &wire.AlterTTL{Table: t.name, TTL: ttl}
	if err := expectOK(t.c.roundTrip(wire.MsgAlterTTL, m.Encode())); err != nil {
		return err
	}
	t.mu.Lock()
	t.ttl = ttl
	t.mu.Unlock()
	return nil
}

// AddColumn appends a column and refreshes the cached schema.
func (t *Table) AddColumn(name string, typ ltval.Type, def ltval.Value) error {
	m := &wire.AddColumn{Table: t.name, Name: name, Type: typ, Default: def}
	if err := expectOK(t.c.roundTrip(wire.MsgAddColumn, m.Encode())); err != nil {
		return err
	}
	return t.RefreshSchema()
}

// WidenColumn widens an int32 column and refreshes the cached schema.
func (t *Table) WidenColumn(name string) error {
	m := &wire.WidenColumn{Table: t.name, Name: name}
	if err := expectOK(t.c.roundTrip(wire.MsgWidenColumn, m.Encode())); err != nil {
		return err
	}
	return t.RefreshSchema()
}

// FlushTable asks the server to flush the table's memtables to disk — the
// explicit flush §4.1.2 proposes so aggregators can know their source rows
// are durable.
func (t *Table) FlushTable() error {
	m := &wire.TableName{Name: t.name}
	return expectOK(t.c.roundTrip(wire.MsgFlushTable, m.Encode()))
}

// Stats fetches the table's server-side counters.
func (t *Table) Stats() (*wire.StatsResult, error) {
	m := &wire.TableName{Name: t.name}
	mt, resp, err := t.c.roundTrip(wire.MsgStats, m.Encode())
	if err != nil {
		return nil, err
	}
	if mt != wire.MsgStatsResult {
		return nil, fmt.Errorf("client: unexpected response type %d", mt)
	}
	return wire.DecodeStatsResult(resp)
}
