// Package client is LittleTable's client adaptor — the role the SQLite
// virtual-table module plays in the paper (§3.1): it keeps persistent
// TCP connections to the server (so it notices crashes), fetches each
// table's schema and sort order once, batches inserts, pushes
// two-dimensional bounds down to the server, and transparently re-submits
// queries when the server's row limit trips the more-available flag
// (§3.5).
//
// The client is built for partial failure: requests draw connections from
// a fixed-size pool, broken connections are redialed with jittered
// exponential backoff, idempotent requests are retried across
// connections, and the server's Overloaded refusal (which promises the
// request was not processed) is retried for every request type. Rows
// buffered for insert are never dropped silently — a failed flush reports
// the unsent-row count so the application can re-read and re-insert
// (§4.1).
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/schema"
	"littletable/internal/wire"
)

// DefaultBatchSize is the insert batch the client accumulates before
// sending; §1 cites batches of 512 rows as common in production.
const DefaultBatchSize = 512

// Defaults for Options zero values.
const (
	DefaultPoolSize       = 4
	DefaultDialTimeout    = 5 * time.Second
	DefaultMaxRetries     = 3
	DefaultRetryBaseDelay = 10 * time.Millisecond
	DefaultRetryMaxDelay  = time.Second
)

// Options tune the client's pool and retry policy. The zero value gets
// the defaults above.
type Options struct {
	// PoolSize caps open connections; requests beyond it wait for a free
	// connection. Default DefaultPoolSize.
	PoolSize int

	// DialTimeout bounds connect plus handshake for each new connection.
	// Default DefaultDialTimeout.
	DialTimeout time.Duration

	// RequestTimeout, when positive, is the default deadline applied to
	// each request (including its retries) that arrives without one. The
	// deadline is threaded down to the connection's read/write deadlines.
	// 0 means no default; explicit context deadlines always apply.
	RequestTimeout time.Duration

	// MaxRetries is how many times a retryable request is re-sent after a
	// failure: dial failures and Overloaded refusals for every request
	// type, post-send transport failures for idempotent requests only.
	// 0 means DefaultMaxRetries; negative disables retries.
	MaxRetries int

	// RetryBaseDelay and RetryMaxDelay shape the jittered exponential
	// backoff between retries.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration

	// JitterSeed seeds the backoff jitter for reproducible tests; 0 seeds
	// from the clock.
	JitterSeed int64
}

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = DefaultPoolSize
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	switch {
	case o.MaxRetries == 0:
		o.MaxRetries = DefaultMaxRetries
	case o.MaxRetries < 0:
		o.MaxRetries = 0
	}
	if o.RetryBaseDelay <= 0 {
		o.RetryBaseDelay = DefaultRetryBaseDelay
	}
	if o.RetryMaxDelay <= 0 {
		o.RetryMaxDelay = DefaultRetryMaxDelay
	}
	return o
}

// Stats count the client's resilience events; read them with atomic Loads.
type Stats struct {
	// Dials counts successful connection handshakes.
	Dials atomic.Int64
	// Reconnects counts connections torn down as broken or dead; the next
	// request redials.
	Reconnects atomic.Int64
	// Retries counts request attempts beyond each request's first.
	Retries atomic.Int64
	// Overloaded counts Overloaded refusals observed from the server.
	Overloaded atomic.Int64
}

// RemoteError is an error reported by the server.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "littletable: " + e.Msg }

// UnsentError reports buffered insert rows that were never acknowledged
// by the server. Per the §4.1 contract the rows are dropped from the
// buffer — the application re-reads recent data from its source and
// re-inserts; retrying blind could duplicate rows the server did apply.
type UnsentError struct {
	// Rows is how many buffered rows went unacknowledged.
	Rows int
	// Err is the underlying failure.
	Err error
}

// Error implements error.
func (e *UnsentError) Error() string {
	return fmt.Sprintf("client: %d buffered rows unsent: %v", e.Rows, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *UnsentError) Unwrap() error { return e.Err }

// Errors returned by the client.
var (
	// ErrDisconnected reports a broken connection; the application decides
	// what recently-written data to re-read from its devices and re-insert
	// (§3.1, §4.1).
	ErrDisconnected = errors.New("client: disconnected from server")
	// ErrOverloaded reports that the server shed the request at its
	// admission gate (it was not processed) and retries were exhausted.
	ErrOverloaded = errors.New("client: server overloaded")
	// ErrClientClosed reports use after Close.
	ErrClientClosed = errors.New("client: closed")
)

// Client is a pool-backed connection to one LittleTable server. Methods
// are safe for concurrent use; up to PoolSize requests run in parallel.
type Client struct {
	opts  Options
	pool  *pool
	stats Stats

	jmu sync.Mutex
	rng *rand.Rand

	mu     sync.Mutex
	tables []*Table
	closed bool
}

// background is the root context for the compat (non-context) API.
//
//ltlint:ignore ctxprop compat shims with no caller context start here; ctx entry points thread the caller's
func background() context.Context { return context.Background() }

// Dial connects with default Options and verifies the server handshake.
func Dial(addr string) (*Client, error) {
	return DialContext(background(), addr, Options{})
}

// DialContext connects with explicit Options, establishing and
// handshaking one pooled connection eagerly so configuration and
// reachability errors surface here rather than on first use.
func DialContext(ctx context.Context, addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	seed := opts.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c := &Client{
		opts: opts,
		rng:  rand.New(rand.NewSource(seed)),
	}
	c.pool = newPool(addr, opts, &c.stats)
	pc, err := c.pool.get(ctx)
	if err != nil {
		return nil, err
	}
	c.pool.put(pc, false)
	return c, nil
}

// Stats exposes the client's resilience counters.
func (c *Client) Stats() *Stats { return &c.stats }

// Close flushes every table's buffered rows, then tears down the pool.
// If buffered rows cannot be delivered it still closes, and returns an
// *UnsentError carrying the total unsent-row count — buffered data is
// never dropped silently.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	tables := append([]*Table(nil), c.tables...)
	c.mu.Unlock()

	var unsent int
	var cause error
	for _, t := range tables {
		if err := t.Flush(); err != nil {
			var ue *UnsentError
			if errors.As(err, &ue) {
				unsent += ue.Rows
				if cause == nil {
					cause = ue.Err
				}
			} else if cause == nil {
				cause = err
			}
		}
	}
	c.pool.close()
	if unsent > 0 {
		return &UnsentError{Rows: unsent, Err: cause}
	}
	return cause
}

// msgIdempotency classifies every request type: true means the request
// may be re-sent even when a prior attempt's fate is unknown (it reached
// the wire but the connection broke before a response). Reads and
// flushes are idempotent; inserts, deletes, and schema changes are not,
// and blind re-sends could apply them twice. Every wire request constant
// must have an entry — ltlint's msgexhaustive rule flags omissions, and
// retrysafe checks the deny side, so drift here is a build failure
// rather than a replayed write.
var msgIdempotency = map[wire.MsgType]bool{
	wire.MsgHello:       true,
	wire.MsgCreateTable: false, // re-send could race a concurrent create
	wire.MsgDropTable:   false, // second drop reports a missing table
	wire.MsgListTables:  true,
	wire.MsgGetSchema:   true,
	wire.MsgInsert:      false, // duplicate rows under duplicate timestamps
	wire.MsgQuery:       true,
	wire.MsgLatestRow:   true,
	wire.MsgDelete:      false, // TTL clock advances between attempts
	wire.MsgAlterTTL:    false, // schema change
	wire.MsgAddColumn:   false, // schema change
	wire.MsgWidenColumn: false, // schema change
	wire.MsgStats:       true,
	wire.MsgServerStats: true,
	wire.MsgFlushTable:  true,
	// Scatter reads are plain reads. Migration begin/fetch/end are
	// idempotent by construction: begin refreshes the pin set, fetch is a
	// positioned read, end releases pins that may already be released.
	// MigrateInstall is NOT idempotent — a replayed chunk breaks the
	// staging offset discipline, so its driver restarts at offset 0.
	wire.MsgScatterQuery:   true,
	wire.MsgMigrateBegin:   true,
	wire.MsgMigrateFetch:   true,
	wire.MsgMigrateInstall: false,
	wire.MsgMigrateEnd:     true,
	wire.MsgMigrateTable:   false, // router-side move is a write workflow
	wire.MsgRouterStats:    true,
	wire.MsgAggQuery:       true, // pure read: folds rows into aggregates
}

// retryAfterSend consults the classification table above.
func retryAfterSend(t wire.MsgType) bool {
	return msgIdempotency[t]
}

// do sends one request with the retry policy, translating MsgError into
// *RemoteError and transport failures into ErrDisconnected.
func (c *Client) do(ctx context.Context, t wire.MsgType, payload []byte) (wire.MsgType, []byte, error) {
	if c.opts.RequestTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.opts.RequestTimeout)
			defer cancel()
		}
	}
	for attempt := 0; ; attempt++ {
		mt, resp, sent, err := c.once(ctx, t, payload)
		if err == nil {
			switch mt {
			case wire.MsgOverloaded:
				// The admission gate refused without processing; any
				// request type may retry after backing off.
				c.stats.Overloaded.Add(1)
				if attempt < c.opts.MaxRetries {
					if berr := c.backoff(ctx, attempt); berr != nil {
						return 0, nil, fmt.Errorf("%w: %v", ErrOverloaded, berr)
					}
					c.stats.Retries.Add(1)
					continue
				}
				msg := "admission gate full"
				if em, derr := wire.DecodeErrorMsg(resp); derr == nil && em.Message != "" {
					msg = em.Message
				}
				return 0, nil, fmt.Errorf("%w: %s", ErrOverloaded, msg)
			case wire.MsgError:
				em, derr := wire.DecodeErrorMsg(resp)
				if derr != nil {
					return 0, nil, derr
				}
				return 0, nil, &RemoteError{Msg: em.Message}
			}
			return mt, resp, nil
		}
		retryable := !sent || retryAfterSend(t)
		if ctx.Err() != nil || !retryable || attempt >= c.opts.MaxRetries {
			return 0, nil, err
		}
		if berr := c.backoff(ctx, attempt); berr != nil {
			return 0, nil, err
		}
		c.stats.Retries.Add(1)
	}
}

// once performs a single attempt on one pooled connection. sent reports
// whether any request bytes may have reached the server: a false return
// means the attempt is known side-effect free and always retryable.
func (c *Client) once(ctx context.Context, t wire.MsgType, payload []byte) (mt wire.MsgType, resp []byte, sent bool, err error) {
	pc, err := c.pool.get(ctx)
	if err != nil {
		return 0, nil, false, err
	}
	// Thread the context deadline down to the socket.
	if d, ok := ctx.Deadline(); ok {
		err = pc.conn.SetDeadline(d)
	} else {
		err = pc.conn.SetDeadline(time.Time{})
	}
	if err != nil {
		c.pool.put(pc, true)
		return 0, nil, false, fmt.Errorf("%w: %v", ErrDisconnected, err)
	}
	// Cancellation interrupts a blocked read/write by expiring the
	// deadline; the connection is then poisoned and discarded.
	var watch chan struct{}
	if ctx.Done() != nil {
		watch = make(chan struct{})
		//ltlint:ignore gotrack per-request watcher: stopWatch closes w before once returns, bounding its life to this call
		go func(w chan struct{}) {
			select {
			case <-ctx.Done():
				pc.conn.SetDeadline(aLongTimeAgo)
			case <-w:
			}
		}(watch)
	}
	stopWatch := func() {
		if watch != nil {
			close(watch)
			watch = nil
		}
	}

	sent = true
	werr := pc.wc.WriteMsg(t, payload)
	if werr != nil {
		stopWatch()
		if errors.Is(werr, wire.ErrFrameTooBig) {
			// Nothing was written; the conn is intact and the request is
			// simply too large.
			c.pool.put(pc, false)
			return 0, nil, false, werr
		}
		c.pool.put(pc, true)
		return 0, nil, true, c.transportErr(ctx, werr)
	}
	mt, resp, rerr := pc.wc.ReadMsg()
	stopWatch()
	if rerr != nil {
		c.pool.put(pc, true)
		return 0, nil, true, c.transportErr(ctx, rerr)
	}
	// The watcher may have poked the deadline right as the response
	// landed; put re-probes idle conns before reuse, so a poisoned
	// deadline costs a reconnect, never a wrong result.
	c.pool.put(pc, false)
	return mt, resp, true, nil
}

// transportErr wraps a mid-request failure, preferring the context's
// error when the request was cancelled or timed out by the caller.
func (c *Client) transportErr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("client: request aborted: %w", cerr)
	}
	// The only deadline ever set on the socket is the context's, so an
	// I/O timeout IS the caller's deadline — the socket timer can just
	// fire a tick before ctx.Done() is observable.
	if _, ok := ctx.Deadline(); ok && isTimeout(err) {
		return fmt.Errorf("client: request aborted: %w", context.DeadlineExceeded)
	}
	return fmt.Errorf("%w: %v", ErrDisconnected, err)
}

// backoff sleeps the jittered exponential delay for the given attempt,
// or returns early with the context's error.
func (c *Client) backoff(ctx context.Context, attempt int) error {
	d := c.opts.RetryBaseDelay << uint(attempt)
	if d <= 0 || d > c.opts.RetryMaxDelay {
		d = c.opts.RetryMaxDelay
	}
	// Full jitter in [d/2, d): concurrent clients desynchronize instead of
	// retrying in lockstep against a struggling server.
	c.jmu.Lock()
	d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
	c.jmu.Unlock()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

func expectOK(mt wire.MsgType, _ []byte, err error) error {
	if err != nil {
		return err
	}
	if mt != wire.MsgOK {
		return fmt.Errorf("client: unexpected response type %d", mt)
	}
	return nil
}

// ListTables returns the server's table names.
func (c *Client) ListTables() ([]string, error) {
	return c.ListTablesCtx(background())
}

// ListTablesCtx is ListTables with a caller deadline.
func (c *Client) ListTablesCtx(ctx context.Context) ([]string, error) {
	mt, resp, err := c.do(ctx, wire.MsgListTables, nil)
	if err != nil {
		return nil, err
	}
	if mt != wire.MsgTableList {
		return nil, fmt.Errorf("client: unexpected response type %d", mt)
	}
	m, err := wire.DecodeTableList(resp)
	if err != nil {
		return nil, err
	}
	return m.Names, nil
}

// ServerStats fetches the server's connection-level counters: active
// conns, in-flight requests, shed requests, drain time.
func (c *Client) ServerStats(ctx context.Context) (*wire.ServerStatsResult, error) {
	mt, resp, err := c.do(ctx, wire.MsgServerStats, nil)
	if err != nil {
		return nil, err
	}
	if mt != wire.MsgServerStatsResult {
		return nil, fmt.Errorf("client: unexpected response type %d", mt)
	}
	return wire.DecodeServerStatsResult(resp)
}

// CreateTable creates a table with the given schema and TTL (microseconds;
// 0 = never expire).
func (c *Client) CreateTable(name string, sc *schema.Schema, ttl int64) error {
	m := &wire.CreateTable{Name: name, Schema: sc, TTL: ttl}
	payload, err := m.Encode()
	if err != nil {
		return err
	}
	return expectOK(c.do(background(), wire.MsgCreateTable, payload))
}

// DropTable removes a table and its data.
func (c *Client) DropTable(name string) error {
	m := &wire.TableName{Name: name}
	return expectOK(c.do(background(), wire.MsgDropTable, m.Encode()))
}

// Table is a handle on one remote table, carrying its cached schema.
type Table struct {
	c    *Client
	name string

	mu    sync.Mutex
	sc    *schema.Schema
	ttl   int64
	batch []schema.Row
	// BatchSize rows accumulate before an automatic Flush; set before the
	// first Insert.
	BatchSize int
	// ServerTimestamps asks the server to stamp rows whose ts cell is zero
	// with its current time (§3.1).
	ServerTimestamps bool
}

// OpenTable fetches the table's schema and returns a handle.
func (c *Client) OpenTable(name string) (*Table, error) {
	t := &Table{c: c, name: name, BatchSize: DefaultBatchSize}
	if err := t.RefreshSchema(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.tables = append(c.tables, t)
	c.mu.Unlock()
	return t, nil
}

// RefreshSchema re-fetches the schema, e.g. after a stale-schema error.
func (t *Table) RefreshSchema() error {
	m := &wire.TableName{Name: t.name}
	mt, resp, err := t.c.do(background(), wire.MsgGetSchema, m.Encode())
	if err != nil {
		return err
	}
	if mt != wire.MsgSchema {
		return fmt.Errorf("client: unexpected response type %d", mt)
	}
	sr, err := wire.DecodeSchemaResp(resp)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.sc = sr.Schema
	t.ttl = sr.TTL
	t.mu.Unlock()
	return nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the cached schema.
func (t *Table) Schema() *schema.Schema {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sc
}

// TTL returns the cached TTL.
func (t *Table) TTL() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ttl
}

// Buffered returns how many insert rows are batched but not yet sent.
func (t *Table) Buffered() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.batch)
}

// Insert buffers rows, flushing automatically at BatchSize (the adaptor
// "takes clients' inserts and transmits them to the LittleTable server in
// batches", §3.1). Call Flush to force the tail out.
func (t *Table) Insert(rows ...schema.Row) error {
	t.mu.Lock()
	t.batch = append(t.batch, rows...)
	needFlush := len(t.batch) >= t.BatchSize
	t.mu.Unlock()
	if needFlush {
		return t.Flush()
	}
	return nil
}

// Flush sends any buffered rows. On failure it returns an *UnsentError
// carrying the unacknowledged row count; the rows leave the buffer either
// way (§4.1: the application re-reads and re-inserts — a blind client-side
// replay could duplicate rows the server did apply).
func (t *Table) Flush() error { return t.FlushCtx(background()) }

// FlushCtx is Flush with a caller deadline.
func (t *Table) FlushCtx(ctx context.Context) error {
	t.mu.Lock()
	if len(t.batch) == 0 {
		t.mu.Unlock()
		return nil
	}
	rows := t.batch
	t.batch = nil
	sc := t.sc
	serverTs := t.ServerTimestamps
	t.mu.Unlock()
	m := wire.NewInsert(t.name, sc, serverTs, rows)
	if err := expectOK(t.c.do(ctx, wire.MsgInsert, m.Encode())); err != nil {
		return &UnsentError{Rows: len(rows), Err: err}
	}
	return nil
}

// InsertNow sends rows immediately, bypassing the batch buffer.
func (t *Table) InsertNow(rows []schema.Row) error {
	return t.InsertNowCtx(background(), rows)
}

// InsertNowCtx is InsertNow with a caller deadline.
func (t *Table) InsertNowCtx(ctx context.Context, rows []schema.Row) error {
	t.mu.Lock()
	sc := t.sc
	serverTs := t.ServerTimestamps
	t.mu.Unlock()
	m := wire.NewInsert(t.name, sc, serverTs, rows)
	return expectOK(t.c.do(ctx, wire.MsgInsert, m.Encode()))
}

// Query mirrors core.Query on the client side.
type Query struct {
	Lower, Upper       []ltval.Value
	LowerInc, UpperInc bool
	MinTs, MaxTs       int64
	Descending         bool
	Limit              int
}

// NewQuery returns an all-rows query to narrow.
func NewQuery() Query {
	return Query{LowerInc: true, UpperInc: true, MinTs: core.TsMin, MaxTs: core.TsMax}
}

// Rows streams a query's results, transparently re-submitting with an
// updated start bound whenever the server's row limit sets more-available
// (§3.5).
type Rows struct {
	t      *Table
	ctx    context.Context
	q      Query
	buf    []schema.Row
	i      int
	more   bool
	row    schema.Row
	count  int
	err    error
	sc     *schema.Schema
	closed bool
}

// Query starts a streaming query.
func (t *Table) Query(q Query) *Rows {
	return t.QueryCtx(background(), q)
}

// QueryCtx starts a streaming query whose page fetches run under ctx.
func (t *Table) QueryCtx(ctx context.Context, q Query) *Rows {
	return &Rows{t: t, ctx: ctx, q: q, sc: t.Schema(), more: true}
}

// Next advances to the next result row.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if r.q.Limit > 0 && r.count >= r.q.Limit {
		return false
	}
	for r.i >= len(r.buf) {
		if !r.more {
			return false
		}
		if err := r.fetch(); err != nil {
			r.err = err
			return false
		}
		if len(r.buf) == 0 && !r.more {
			return false
		}
	}
	r.row = r.buf[r.i]
	r.i++
	r.count++
	return true
}

// fetch issues one wire query for the next page.
func (r *Rows) fetch() error {
	wq := &wire.Query{
		Table:      r.t.name,
		HasLower:   r.q.Lower != nil,
		Lower:      r.q.Lower,
		LowerInc:   r.q.LowerInc,
		HasUpper:   r.q.Upper != nil,
		Upper:      r.q.Upper,
		UpperInc:   r.q.UpperInc,
		MinTs:      r.q.MinTs,
		MaxTs:      r.q.MaxTs,
		Descending: r.q.Descending,
	}
	if r.q.Limit > 0 {
		remaining := r.q.Limit - r.count
		if remaining <= 0 {
			r.more = false
			r.buf, r.i = nil, 0
			return nil
		}
		wq.Limit = uint32(remaining)
	}
	mt, resp, err := r.t.c.do(r.ctx, wire.MsgQuery, wq.Encode())
	if err != nil {
		return err
	}
	if mt != wire.MsgRows {
		return fmt.Errorf("client: unexpected response type %d", mt)
	}
	m, err := wire.DecodeRows(resp, r.sc)
	if err != nil {
		return err
	}
	r.buf, r.i = m.Rows, 0
	r.more = m.More
	if m.More && len(m.Rows) > 0 {
		// Resume past the last row: "updating the starting key bound in a
		// query to the key of the last row returned and re-submitting"
		// (§3.5).
		last := m.Rows[len(m.Rows)-1]
		k := r.sc.KeyOf(last)
		if r.q.Descending {
			r.q.Upper = k
			r.q.UpperInc = false
		} else {
			r.q.Lower = k
			r.q.LowerInc = false
		}
	}
	return nil
}

// Row returns the current row; valid after Next reports true.
func (r *Rows) Row() schema.Row { return r.row }

// Err returns the first error hit while streaming.
func (r *Rows) Err() error { return r.err }

// Close ends the stream early.
func (r *Rows) Close() error {
	r.closed = true
	return nil
}

// All materializes the full result.
func (r *Rows) All() ([]schema.Row, error) {
	var out []schema.Row
	for r.Next() {
		out = append(out, r.Row())
	}
	if r.err != nil {
		return nil, r.err
	}
	return out, nil
}

// LatestRow fetches the most recent row whose key starts with prefix.
func (t *Table) LatestRow(prefix []ltval.Value) (schema.Row, bool, error) {
	return t.LatestRowCtx(background(), prefix)
}

// LatestRowCtx is LatestRow with a caller deadline.
func (t *Table) LatestRowCtx(ctx context.Context, prefix []ltval.Value) (schema.Row, bool, error) {
	m := &wire.LatestRow{Table: t.name, Prefix: prefix}
	mt, resp, err := t.c.do(ctx, wire.MsgLatestRow, m.Encode())
	if err != nil {
		return nil, false, err
	}
	if mt != wire.MsgRowResult {
		return nil, false, fmt.Errorf("client: unexpected response type %d", mt)
	}
	rr, err := wire.DecodeRowResult(resp, t.Schema())
	if err != nil {
		return nil, false, err
	}
	return rr.Row, rr.Found, nil
}

// DeleteRange bulk-deletes every row inside the query's box (the §7
// privacy-compliance delete). The Descending and Limit fields are ignored.
// It returns the number of rows removed.
func (t *Table) DeleteRange(q Query) (int64, error) {
	m := &wire.Delete{
		Table:    t.name,
		HasLower: q.Lower != nil,
		Lower:    q.Lower,
		LowerInc: q.LowerInc,
		HasUpper: q.Upper != nil,
		Upper:    q.Upper,
		UpperInc: q.UpperInc,
		MinTs:    q.MinTs,
		MaxTs:    q.MaxTs,
	}
	mt, resp, err := t.c.do(background(), wire.MsgDelete, m.Encode())
	if err != nil {
		return 0, err
	}
	if mt != wire.MsgDeleteResult {
		return 0, fmt.Errorf("client: unexpected response type %d", mt)
	}
	dr, err := wire.DecodeDeleteResult(resp)
	if err != nil {
		return 0, err
	}
	return dr.Deleted, nil
}

// AlterTTL changes the table's TTL.
func (t *Table) AlterTTL(ttl int64) error {
	m := &wire.AlterTTL{Table: t.name, TTL: ttl}
	if err := expectOK(t.c.do(background(), wire.MsgAlterTTL, m.Encode())); err != nil {
		return err
	}
	t.mu.Lock()
	t.ttl = ttl
	t.mu.Unlock()
	return nil
}

// AddColumn appends a column and refreshes the cached schema.
func (t *Table) AddColumn(name string, typ ltval.Type, def ltval.Value) error {
	m := &wire.AddColumn{Table: t.name, Name: name, Type: typ, Default: def}
	if err := expectOK(t.c.do(background(), wire.MsgAddColumn, m.Encode())); err != nil {
		return err
	}
	return t.RefreshSchema()
}

// WidenColumn widens an int32 column and refreshes the cached schema.
func (t *Table) WidenColumn(name string) error {
	m := &wire.WidenColumn{Table: t.name, Name: name}
	if err := expectOK(t.c.do(background(), wire.MsgWidenColumn, m.Encode())); err != nil {
		return err
	}
	return t.RefreshSchema()
}

// FlushTable asks the server to flush the table's memtables to disk — the
// explicit flush §4.1.2 proposes so aggregators can know their source rows
// are durable.
func (t *Table) FlushTable() error {
	m := &wire.TableName{Name: t.name}
	return expectOK(t.c.do(background(), wire.MsgFlushTable, m.Encode()))
}

// Stats fetches the table's server-side counters.
func (t *Table) Stats() (*wire.StatsResult, error) {
	m := &wire.TableName{Name: t.name}
	mt, resp, err := t.c.do(background(), wire.MsgStats, m.Encode())
	if err != nil {
		return nil, err
	}
	if mt != wire.MsgStatsResult {
		return nil, fmt.Errorf("client: unexpected response type %d", mt)
	}
	return wire.DecodeStatsResult(resp)
}
