// Package client's tests double as the client↔server integration suite:
// every request travels over a real TCP connection to a real server
// backed by real tables on disk.
package client

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/schema"
	"littletable/internal/server"
)

func startServer(t testing.TB, copts core.Options) (*server.Server, string) {
	t.Helper()
	if copts.Clock == nil {
		copts.Clock = clock.Real{}
	}
	s, err := server.New(server.Options{
		Root:                t.TempDir(),
		Core:                copts,
		MaintenanceInterval: 50 * time.Millisecond,
		QueryRowLimit:       copts.QueryRowLimit,
		Logf:                t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(lis)
	t.Cleanup(func() { s.Close() })
	return s, lis.Addr().String()
}

func dial(t testing.TB, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func eventsSchema() *schema.Schema {
	return schema.MustNew([]schema.Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "device", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "event_id", Type: ltval.Int64},
		{Name: "message", Type: ltval.String},
	}, []string{"network", "device", "ts"})
}

func eventRow(n, d, ts, id int64, msg string) schema.Row {
	return schema.Row{
		ltval.NewInt64(n), ltval.NewInt64(d), ltval.NewTimestamp(ts),
		ltval.NewInt64(id), ltval.NewString(msg),
	}
}

func TestCreateListDropTables(t *testing.T) {
	_, addr := startServer(t, core.Options{})
	c := dial(t, addr)
	if err := c.CreateTable("events", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable("usage", eventsSchema(), clock.Day); err != nil {
		t.Fatal(err)
	}
	names, err := c.ListTables()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "events" || names[1] != "usage" {
		t.Fatalf("ListTables = %v", names)
	}
	if err := c.DropTable("usage"); err != nil {
		t.Fatal(err)
	}
	names, _ = c.ListTables()
	if len(names) != 1 {
		t.Fatalf("after drop: %v", names)
	}
	// Errors are RemoteErrors.
	var re *RemoteError
	if err := c.DropTable("usage"); !errors.As(err, &re) {
		t.Errorf("double drop: %v", err)
	}
	if err := c.CreateTable("events", eventsSchema(), 0); !errors.As(err, &re) {
		t.Errorf("duplicate create: %v", err)
	}
	if err := c.CreateTable("../evil", eventsSchema(), 0); !errors.As(err, &re) {
		t.Errorf("path traversal name: %v", err)
	}
}

func TestInsertAndQueryOverWire(t *testing.T) {
	_, addr := startServer(t, core.Options{})
	c := dial(t, addr)
	if err := c.CreateTable("events", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable("events")
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixMicro()
	for i := int64(0); i < 100; i++ {
		if err := tab.Insert(eventRow(1, i%5, now-i*1000, i, "assoc")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	rows, err := tab.Query(NewQuery()).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("got %d rows over the wire", len(rows))
	}
	sc := tab.Schema()
	for i := 1; i < len(rows); i++ {
		if sc.CompareKeys(rows[i-1], rows[i]) >= 0 {
			t.Fatal("wire results unordered")
		}
	}
	// Bounded query: device 3 only.
	q := NewQuery()
	q.Lower = []ltval.Value{ltval.NewInt64(1), ltval.NewInt64(3)}
	q.Upper = q.Lower
	rows, err = tab.Query(q).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("bounded wire query: %d rows", len(rows))
	}
}

func TestMoreAvailablePagination(t *testing.T) {
	// Tiny server row limit forces the client to re-submit repeatedly.
	_, addr := startServer(t, core.Options{QueryRowLimit: 7})
	c := dial(t, addr)
	if err := c.CreateTable("events", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable("events")
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixMicro()
	for i := int64(0); i < 100; i++ {
		tab.Insert(eventRow(1, i, now, i, "e"))
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	rows, err := tab.Query(NewQuery()).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("pagination lost rows: %d", len(rows))
	}
	for i, r := range rows {
		if r[1].Int != int64(i) {
			t.Fatalf("row %d out of order after pagination: %v", i, r[1])
		}
	}
	// Descending pagination too.
	q := NewQuery()
	q.Descending = true
	rows, err = tab.Query(q).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 || rows[0][1].Int != 99 || rows[99][1].Int != 0 {
		t.Fatalf("descending pagination wrong: %d rows", len(rows))
	}
	// Client-side limit caps the stream.
	q = NewQuery()
	q.Limit = 15
	rows, err = tab.Query(q).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("client limit: %d rows", len(rows))
	}
}

func TestServerTimestamps(t *testing.T) {
	_, addr := startServer(t, core.Options{})
	c := dial(t, addr)
	if err := c.CreateTable("events", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable("events")
	if err != nil {
		t.Fatal(err)
	}
	tab.ServerTimestamps = true
	before := time.Now().UnixMicro()
	if err := tab.InsertNow([]schema.Row{eventRow(1, 1, 0, 1, "no ts")}); err != nil {
		t.Fatal(err)
	}
	after := time.Now().UnixMicro()
	rows, err := tab.Query(NewQuery()).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatal("row missing")
	}
	ts := rows[0][2].Int
	if ts < before || ts > after {
		t.Errorf("server timestamp %d outside [%d, %d]", ts, before, after)
	}
}

func TestLatestRowOverWire(t *testing.T) {
	_, addr := startServer(t, core.Options{})
	c := dial(t, addr)
	if err := c.CreateTable("events", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable("events")
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixMicro()
	for i := int64(0); i < 10; i++ {
		tab.Insert(eventRow(1, 1, now-i*1_000_000, 100-i, "e"))
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	row, found, err := tab.LatestRow([]ltval.Value{ltval.NewInt64(1), ltval.NewInt64(1)})
	if err != nil || !found {
		t.Fatalf("LatestRow: %v %v", found, err)
	}
	if row[3].Int != 100 {
		t.Errorf("latest event id = %d, want 100", row[3].Int)
	}
	_, found, err = tab.LatestRow([]ltval.Value{ltval.NewInt64(42)})
	if err != nil || found {
		t.Errorf("missing prefix: %v %v", found, err)
	}
}

func TestSchemaChangeOverWire(t *testing.T) {
	_, addr := startServer(t, core.Options{})
	c := dial(t, addr)
	if err := c.CreateTable("events", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable("events")
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixMicro()
	tab.Insert(eventRow(1, 1, now, 1, "old"))
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn("severity", ltval.Int64, ltval.NewInt64(3)); err != nil {
		t.Fatal(err)
	}
	if tab.Schema().ColumnIndex("severity") != 5 {
		t.Fatal("schema not refreshed after AddColumn")
	}
	rows, err := tab.Query(NewQuery()).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][5].Int != 3 {
		t.Fatalf("old row after AddColumn: %v", rows)
	}
	// TTL change.
	if err := tab.AlterTTL(clock.Week); err != nil {
		t.Fatal(err)
	}
	if tab.TTL() != clock.Week {
		t.Error("TTL not cached after AlterTTL")
	}
}

func TestStaleSchemaRejected(t *testing.T) {
	_, addr := startServer(t, core.Options{})
	c1 := dial(t, addr)
	c2 := dial(t, addr)
	if err := c1.CreateTable("events", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	t1, err := c1.OpenTable("events")
	if err != nil {
		t.Fatal(err)
	}
	t2, err := c2.OpenTable("events")
	if err != nil {
		t.Fatal(err)
	}
	// c1 evolves the schema; c2's cache is now stale.
	if err := t1.AddColumn("extra", ltval.Int64, ltval.Value{}); err != nil {
		t.Fatal(err)
	}
	err = t2.InsertNow([]schema.Row{eventRow(1, 1, time.Now().UnixMicro(), 1, "x")})
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "stale schema") {
		t.Fatalf("stale insert: %v", err)
	}
	// After refresh, inserts with the new arity succeed.
	if err := t2.RefreshSchema(); err != nil {
		t.Fatal(err)
	}
	row := append(eventRow(1, 1, time.Now().UnixMicro(), 1, "x"), ltval.NewInt64(9))
	if err := t2.InsertNow([]schema.Row{row}); err != nil {
		t.Fatal(err)
	}
}

func TestFlushTableCommand(t *testing.T) {
	s, addr := startServer(t, core.Options{})
	c := dial(t, addr)
	if err := c.CreateTable("events", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable("events")
	if err != nil {
		t.Fatal(err)
	}
	tab.Insert(eventRow(1, 1, time.Now().UnixMicro(), 1, "x"))
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tab.FlushTable(); err != nil {
		t.Fatal(err)
	}
	ct, err := s.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	if ct.DiskTabletCount() == 0 {
		t.Error("FlushTable left rows in memory")
	}
}

func TestStatsOverWire(t *testing.T) {
	_, addr := startServer(t, core.Options{})
	c := dial(t, addr)
	if err := c.CreateTable("events", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable("events")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		tab.Insert(eventRow(1, i, time.Now().UnixMicro(), i, "x"))
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Query(NewQuery()).All(); err != nil {
		t.Fatal(err)
	}
	st, err := tab.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.RowsInserted != 10 || st.RowsReturned != 10 || st.RowEstimate != 10 {
		t.Errorf("stats: %+v", st)
	}
}

func TestDuplicateKeyOverWire(t *testing.T) {
	_, addr := startServer(t, core.Options{})
	c := dial(t, addr)
	if err := c.CreateTable("events", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable("events")
	if err != nil {
		t.Fatal(err)
	}
	r := eventRow(1, 1, 12345, 1, "x")
	if err := tab.InsertNow([]schema.Row{r}); err != nil {
		t.Fatal(err)
	}
	var re *RemoteError
	if err := tab.InsertNow([]schema.Row{r}); !errors.As(err, &re) {
		t.Errorf("duplicate over wire: %v", err)
	}
}

func TestDisconnectDetection(t *testing.T) {
	s, addr := startServer(t, core.Options{})
	c := dial(t, addr)
	if err := c.CreateTable("events", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable("events")
	if err != nil {
		t.Fatal(err)
	}
	// Kill the server; the persistent connection notices on next use
	// (§3.1: clients detect server crashes through the connection).
	s.Close()
	err = tab.InsertNow([]schema.Row{eventRow(1, 1, 1, 1, "x")})
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("after server death: %v", err)
	}
	// Subsequent calls fail fast.
	if _, err := c.ListTables(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("dead client reuse: %v", err)
	}
}

func TestServerRecoversTablesOnRestart(t *testing.T) {
	copts := core.Options{Clock: clock.Real{}}
	root := t.TempDir()
	s1, err := server.New(server.Options{Root: root, Core: copts, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s1.Serve(lis)
	c := dial(t, lis.Addr().String())
	if err := c.CreateTable("events", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable("events")
	if err != nil {
		t.Fatal(err)
	}
	tab.Insert(eventRow(1, 1, time.Now().UnixMicro(), 7, "persisted"))
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tab.FlushTable(); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2, err := server.New(server.Options{Root: root, Core: copts, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	lis2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s2.Serve(lis2)
	c2 := dial(t, lis2.Addr().String())
	tab2, err := c2.OpenTable("events")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tab2.Query(NewQuery()).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][3].Int != 7 {
		t.Fatalf("restart recovery: %v", rows)
	}
}
