package client

import (
	"context"
	"net"
	"testing"
	"time"

	"littletable/internal/wire"
)

// FuzzClientResponse feeds arbitrary server responses to every client
// request path: the server handshakes honestly, then answers each request
// with the fuzz input framed as [type byte][payload]. The client must
// return an error or a result — never panic, never hang past its
// timeouts — whatever bytes come back.
func FuzzClientResponse(f *testing.F) {
	// Seeds: well-formed responses of each kind, plus junk.
	f.Add([]byte{byte(wire.MsgOK)})
	em := &wire.ErrorMsg{Message: "boom"}
	f.Add(append([]byte{byte(wire.MsgError)}, em.Encode()...))
	tl := &wire.TableList{Names: []string{"a", "b"}}
	f.Add(append([]byte{byte(wire.MsgTableList)}, tl.Encode()...))
	sr := &wire.SchemaResp{Schema: eventsSchema(), TTL: 0}
	if b, err := sr.Encode(); err == nil {
		f.Add(append([]byte{byte(wire.MsgSchema)}, b...))
	}
	rows := &wire.Rows{SchemaVersion: 1}
	f.Add(append([]byte{byte(wire.MsgRows)}, rows.Encode(eventsSchema())...))
	f.Add([]byte{byte(wire.MsgOverloaded)})
	f.Add([]byte{0xff, 0x00, 0x41, 0x41})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Skip(err)
		}
		defer lis.Close()
		go func() {
			for {
				conn, err := lis.Accept()
				if err != nil {
					return
				}
				go func(conn net.Conn) {
					defer conn.Close()
					wc := wire.NewConn(conn)
					if mt, _, err := wc.ReadMsg(); err != nil || mt != wire.MsgHello {
						return
					}
					if err := wc.WriteMsg(wire.MsgOK, nil); err != nil {
						return
					}
					for {
						if _, _, err := wc.ReadMsg(); err != nil {
							return
						}
						mt := wire.MsgType(0)
						var payload []byte
						if len(data) > 0 {
							mt = wire.MsgType(data[0])
							payload = data[1:]
						}
						if err := wc.WriteMsg(mt, payload); err != nil {
							return
						}
					}
				}(conn)
			}
		}()

		opts := Options{
			PoolSize:       1,
			DialTimeout:    2 * time.Second,
			RequestTimeout: 500 * time.Millisecond,
			MaxRetries:     -1,
			JitterSeed:     1,
		}
		ctx := context.Background()
		c, err := DialContext(ctx, lis.Addr().String(), opts)
		if err != nil {
			return
		}
		defer c.Close()
		c.ListTables()
		c.ServerStats(ctx)
		if tab, err := c.OpenTable("t"); err == nil {
			// The fuzzed bytes decoded as a schema; now the same bytes come
			// back as query, latest-row, and stats responses against it.
			tab.Query(NewQuery()).All()
			tab.LatestRow(nil)
			tab.Stats()
			tab.DeleteRange(NewQuery())
			tab.FlushTable()
		}
	})
}
