package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"littletable/internal/wire"
)

// aLongTimeAgo is a deadline far in the past, used to interrupt blocked
// reads (cancellation) and to probe idle connections without waiting.
var aLongTimeAgo = time.Unix(1, 0)

// poolConn is one pooled server connection with its framing state.
type poolConn struct {
	conn net.Conn
	wc   *wire.Conn
}

// pool hands out server connections up to a fixed size, redialing broken
// ones. Idle connections are health-checked before reuse, so a server
// restart costs one probe, not one failed request.
type pool struct {
	addr  string
	opts  Options
	stats *Stats

	slots chan struct{} // capacity PoolSize; holding a slot = owning a conn
	done  chan struct{}

	mu     sync.Mutex
	idle   []*poolConn
	closed bool
}

func newPool(addr string, opts Options, stats *Stats) *pool {
	return &pool{
		addr:  addr,
		opts:  opts,
		stats: stats,
		slots: make(chan struct{}, opts.PoolSize),
		done:  make(chan struct{}),
	}
}

// get returns a healthy connection, dialing a fresh one when no idle
// connection survives its health probe. The caller must return it with put.
func (p *pool) get(ctx context.Context) (*poolConn, error) {
	select {
	case p.slots <- struct{}{}:
	case <-p.done:
		return nil, ErrClientClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	// Slot held: reuse an idle conn if one is still alive.
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			<-p.slots
			return nil, ErrClientClosed
		}
		var pc *poolConn
		if n := len(p.idle); n > 0 {
			pc = p.idle[n-1]
			p.idle = p.idle[:n-1]
		}
		p.mu.Unlock()
		if pc == nil {
			break
		}
		if p.healthy(pc) {
			return pc, nil
		}
		// The server hung up while this conn sat idle (restart, drain).
		pc.conn.Close()
		p.stats.Reconnects.Add(1)
	}
	pc, err := p.dial(ctx)
	if err != nil {
		<-p.slots
		return nil, err
	}
	return pc, nil
}

// put returns a connection to the pool; broken ones are closed, never
// reused — their framing state cannot be trusted after a failure.
func (p *pool) put(pc *poolConn, broken bool) {
	if broken {
		pc.conn.Close()
		p.stats.Reconnects.Add(1)
	} else {
		p.mu.Lock()
		if p.closed {
			broken = true
		} else {
			p.idle = append(p.idle, pc)
		}
		p.mu.Unlock()
		if broken {
			pc.conn.Close()
		}
	}
	<-p.slots
}

// healthy probes an idle connection: a past deadline makes the read return
// immediately — with a timeout if the peer is alive and silent, or with
// EOF/reset if it hung up. Idle conns have no buffered data, so reading the
// raw conn (bypassing the framing buffer) is safe.
func (p *pool) healthy(pc *poolConn) bool {
	if err := pc.conn.SetReadDeadline(aLongTimeAgo); err != nil {
		return false
	}
	var b [1]byte
	_, err := pc.conn.Read(b[:])
	if err == nil || !isTimeout(err) {
		// A stray byte is a protocol violation; anything but a timeout
		// means the conn is dead.
		return false
	}
	return pc.conn.SetReadDeadline(time.Time{}) == nil
}

// dial opens and handshakes one connection under DialTimeout.
func (p *pool) dial(ctx context.Context) (*poolConn, error) {
	d := net.Dialer{Timeout: p.opts.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", p.addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial: %v", ErrDisconnected, err)
	}
	pc := &poolConn{conn: conn, wc: wire.NewConn(conn)}
	conn.SetDeadline(time.Now().Add(p.opts.DialTimeout))
	h := &wire.Hello{Version: wire.ProtocolVersion}
	if err := pc.wc.WriteMsg(wire.MsgHello, h.Encode()); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: handshake: %v", ErrDisconnected, err)
	}
	mt, resp, err := pc.wc.ReadMsg()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: handshake: %v", ErrDisconnected, err)
	}
	switch mt {
	case wire.MsgOK:
	case wire.MsgError:
		conn.Close()
		em, derr := wire.DecodeErrorMsg(resp)
		if derr != nil {
			return nil, derr
		}
		return nil, &RemoteError{Msg: em.Message}
	case wire.MsgOverloaded:
		conn.Close()
		p.stats.Overloaded.Add(1)
		return nil, fmt.Errorf("%w: handshake shed", ErrOverloaded)
	default:
		conn.Close()
		return nil, fmt.Errorf("client: unexpected handshake response type %d", mt)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: handshake: %v", ErrDisconnected, err)
	}
	p.stats.Dials.Add(1)
	return pc, nil
}

// close tears the pool down: idle conns are closed now, checked-out conns
// when they come back through put. Blocked get calls return ErrClientClosed.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	close(p.done)
	for _, pc := range idle {
		pc.conn.Close()
	}
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
