package client

import (
	"context"
	"errors"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"littletable/internal/core"
	"littletable/internal/netfault"
	"littletable/internal/server"
	"littletable/internal/wire"
)

func stableGoroutineCount() int {
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	return runtime.NumGoroutine()
}

func checkGoroutineCount(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d live, baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fastOpts keeps retry backoff short and deterministic for tests.
func fastOpts() Options {
	return Options{
		DialTimeout:    2 * time.Second,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  10 * time.Millisecond,
		JitterSeed:     1,
	}
}

func dialOpts(t *testing.T, addr string, opts Options) *Client {
	t.Helper()
	c, err := DialContext(context.Background(), addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPoolReusesConnections(t *testing.T) {
	_, addr := startServer(t, core.Options{})
	c := dialOpts(t, addr, fastOpts())
	for i := 0; i < 20; i++ {
		if _, err := c.ListTables(); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Stats().Dials.Load(); got != 1 {
		t.Errorf("sequential requests dialed %d conns, want 1", got)
	}
	if got := c.Stats().Reconnects.Load(); got != 0 {
		t.Errorf("Reconnects = %d, want 0", got)
	}
}

func TestPoolRecoversAfterServerRestart(t *testing.T) {
	root := t.TempDir()
	newSrv := func() (*server.Server, net.Listener) {
		s, err := server.New(server.Options{Root: root, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve(lis)
		return s, lis
	}
	s1, lis1 := newSrv()
	p, err := netfault.New(lis1.Addr().String(), netfault.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c := dialOpts(t, p.Addr(), fastOpts())
	if err := c.CreateTable("events", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ListTables(); err != nil {
		t.Fatal(err)
	}

	// Hard server restart: pooled conns go dead while idle.
	s1.Close()
	s2, lis2 := newSrv()
	defer s2.Close()
	p.SetTarget(lis2.Addr().String())

	// The next request must ride a health-checked reconnect, not fail.
	names, err := c.ListTables()
	if err != nil {
		t.Fatalf("after restart: %v", err)
	}
	if len(names) != 1 || names[0] != "events" {
		t.Fatalf("after restart: %v", names)
	}
	if got := c.Stats().Reconnects.Load(); got == 0 {
		t.Error("restart recovery recorded no reconnects")
	}
}

func TestOverloadedRetriesThenSurfacesTypedError(t *testing.T) {
	s2, err := server.New(server.Options{Root: t.TempDir(), MaxInFlight: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s2.Serve(lis)

	opts := fastOpts()
	opts.MaxRetries = 2
	// Dial first (the handshake passes the gate too), then jam the gate
	// shut from the inside, as a storm of slow requests would.
	c, err := DialContext(context.Background(), lis.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s2.Stats().RequestsInFlight.Add(1 << 20)
	_, lerr := c.ListTables()
	if !errors.Is(lerr, ErrOverloaded) {
		t.Fatalf("jammed gate: %v", lerr)
	}
	if got := c.Stats().Overloaded.Load(); got < 3 {
		t.Errorf("Overloaded = %d, want >= 3 (initial + 2 retries)", got)
	}
	if got := c.Stats().Retries.Load(); got < 2 {
		t.Errorf("Retries = %d, want >= 2", got)
	}

	// Gate opens: the same client works without redialing the world.
	s2.Stats().RequestsInFlight.Add(-(1 << 20))
	if _, err := c.ListTables(); err != nil {
		t.Fatalf("after gate opened: %v", err)
	}
}

func TestDialTimeoutOnBlackhole(t *testing.T) {
	// A proxy that accepts TCP but forwards nothing: connect succeeds, the
	// handshake stalls. Without a dial timeout this would hang forever.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			io.Copy(io.Discard, conn) // swallow the handshake, never reply
		}
	}()

	opts := fastOpts()
	opts.DialTimeout = 100 * time.Millisecond
	opts.MaxRetries = -1
	start := time.Now()
	_, err = DialContext(context.Background(), lis.Addr().String(), opts)
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("blackholed dial: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dial took %v despite 100ms timeout", elapsed)
	}
}

func TestMidRequestCancelFailsFastAndDoesNotLeak(t *testing.T) {
	// A server that handshakes, then swallows every request silently.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				wc := wire.NewConn(conn)
				if mt, _, err := wc.ReadMsg(); err != nil || mt != wire.MsgHello {
					return
				}
				wc.WriteMsg(wire.MsgOK, nil)
				io.Copy(io.Discard, conn) // requests go nowhere
			}(conn)
		}
	}()

	// Baseline after the fake server is up: its accept loop lives until
	// the deferred lis.Close, so it must not count as a client leak.
	baseline := stableGoroutineCount()
	opts := fastOpts()
	opts.MaxRetries = -1
	c, err := DialContext(context.Background(), lis.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.ListTablesCtx(ctx)
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the request park in ReadMsg
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled request: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not interrupt the blocked request")
	}
	c.Close()
	checkGoroutineCount(t, baseline)
}

func TestRequestTimeoutThreadsToSocket(t *testing.T) {
	// Same swallowing server; the default RequestTimeout must bound the
	// hang without any caller-supplied context.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				wc := wire.NewConn(conn)
				if mt, _, err := wc.ReadMsg(); err != nil || mt != wire.MsgHello {
					return
				}
				wc.WriteMsg(wire.MsgOK, nil)
				io.Copy(io.Discard, conn)
			}(conn)
		}
	}()
	opts := fastOpts()
	opts.MaxRetries = -1
	opts.RequestTimeout = 100 * time.Millisecond
	c, err := DialContext(context.Background(), lis.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, lerr := c.ListTables()
	if lerr == nil {
		t.Fatal("swallowed request reported success")
	}
	if !errors.Is(lerr, context.DeadlineExceeded) {
		t.Fatalf("timed-out request: %v", lerr)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("request took %v despite 100ms RequestTimeout", elapsed)
	}
}

func TestConnChurnDoesNotLeak(t *testing.T) {
	baseline := stableGoroutineCount()
	s, addr := startServer(t, core.Options{})
	p, err := netfault.New(addr, netfault.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts()
	c, err := DialContext(context.Background(), p.Addr(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := c.ListTables(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		// Sever every proxied conn; the pool must shrug and redial.
		p.CutAll()
	}
	if got := c.Stats().Reconnects.Load(); got < 10 {
		t.Errorf("churn produced only %d reconnects", got)
	}
	c.Close()
	p.Close()
	s.Close()
	checkGoroutineCount(t, baseline)
}

func TestCloseUnderLoadDoesNotLeak(t *testing.T) {
	baseline := stableGoroutineCount()
	s, addr := startServer(t, core.Options{})
	opts := fastOpts()
	opts.PoolSize = 3
	c, err := DialContext(context.Background(), addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.ListTables(); err != nil {
					// Closing mid-request surfaces typed errors only.
					if !errors.Is(err, ErrClientClosed) && !errors.Is(err, ErrDisconnected) {
						t.Errorf("under close: %v", err)
					}
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	close(stop)
	wg.Wait()
	// Use after close fails fast with the typed error.
	if _, err := c.ListTables(); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("use after close: %v", err)
	}
	s.Close()
	checkGoroutineCount(t, baseline)
}

func TestFlushReportsUnsentCount(t *testing.T) {
	s, addr := startServer(t, core.Options{})
	c := dialOpts(t, addr, fastOpts())
	if err := c.CreateTable("events", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable("events")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 7; i++ {
		if err := tab.Insert(eventRow(1, i, 1000+i, i, "buffered")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close() // rows are now unsendable

	err = tab.Flush()
	var ue *UnsentError
	if !errors.As(err, &ue) {
		t.Fatalf("flush against dead server: %v", err)
	}
	if ue.Rows != 7 {
		t.Errorf("UnsentError.Rows = %d, want 7", ue.Rows)
	}
	if !errors.Is(err, ErrDisconnected) {
		t.Errorf("UnsentError should wrap the transport cause, got %v", ue.Err)
	}
	if tab.Buffered() != 0 {
		t.Errorf("failed flush left %d rows buffered; the app re-inserts per §4.1", tab.Buffered())
	}
}

func TestCloseReportsBufferedRows(t *testing.T) {
	s, addr := startServer(t, core.Options{})
	c := dialOpts(t, addr, fastOpts())
	if err := c.CreateTable("events", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable("events")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		if err := tab.Insert(eventRow(2, i, 2000+i, i, "doomed")); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	err = c.Close()
	var ue *UnsentError
	if !errors.As(err, &ue) {
		t.Fatalf("Close with undeliverable buffer: %v", err)
	}
	if ue.Rows != 5 {
		t.Errorf("UnsentError.Rows = %d, want 5", ue.Rows)
	}
}

func TestCloseFlushesBufferedRows(t *testing.T) {
	_, addr := startServer(t, core.Options{})
	c := dialOpts(t, addr, fastOpts())
	if err := c.CreateTable("events", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	tab, err := c.OpenTable("events")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(eventRow(3, 1, 3000, 1, "delivered on close")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close with healthy server: %v", err)
	}
	// A second client confirms the row arrived.
	c2 := dialOpts(t, addr, fastOpts())
	tab2, err := c2.OpenTable("events")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tab2.Query(NewQuery()).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("row buffered at Close was lost: %d rows", len(rows))
	}
}
