package client

import (
	"context"
	"fmt"

	"littletable/internal/wire"
)

// Do sends one already-encoded request through the pool's retry policy
// and returns the raw response. It is the router's proxy primitive: the
// router routes on the table name inside the payload and forwards the
// bytes untouched, so every request type the server learns works through
// the router without a matching typed client method. The retry
// classification (retryAfterSend) still applies by message type.
func (c *Client) Do(ctx context.Context, t wire.MsgType, payload []byte) (wire.MsgType, []byte, error) {
	return c.do(ctx, t, payload)
}

// ScatterQuery runs one prefix query against every matching table on the
// server (MsgScatterQuery); the router fans this out per shard and
// merges the sections.
func (c *Client) ScatterQuery(ctx context.Context, q *wire.ScatterQuery) (*wire.ScatterRows, error) {
	mt, resp, err := c.do(ctx, wire.MsgScatterQuery, q.Encode())
	if err != nil {
		return nil, err
	}
	if mt != wire.MsgScatterRows {
		return nil, fmt.Errorf("client: unexpected response type %d", mt)
	}
	return wire.DecodeScatterRows(resp)
}

// AggQuery folds every matching table's rows into grouped aggregate
// states on the server (MsgAggQuery) and returns the partials
// (MsgAggResult); only O(groups) state crosses the wire, never the raw
// rows. Against a router, the partials have already been merged across
// shards. Use agg.Finalize to turn the mergeable states into values.
func (c *Client) AggQuery(ctx context.Context, q *wire.AggQuery) (*wire.AggResult, error) {
	mt, resp, err := c.do(ctx, wire.MsgAggQuery, q.Encode())
	if err != nil {
		return nil, err
	}
	if mt != wire.MsgAggResult {
		return nil, fmt.Errorf("client: unexpected response type %d", mt)
	}
	return wire.DecodeAggResult(resp)
}

// MigrateBegin freezes and pins a table's sealed tablets on the server
// and returns the manifest to copy. Pair with MigrateEnd.
func (c *Client) MigrateBegin(ctx context.Context, table string) (*wire.MigrateManifest, error) {
	m := &wire.MigrateBegin{Table: table}
	mt, resp, err := c.do(ctx, wire.MsgMigrateBegin, m.Encode())
	if err != nil {
		return nil, err
	}
	if mt != wire.MsgMigrateManifest {
		return nil, fmt.Errorf("client: unexpected response type %d", mt)
	}
	return wire.DecodeMigrateManifest(resp)
}

// MigrateFetch reads up to maxBytes of one pinned tablet's image at the
// given offset. The returned chunk carries the file's total size.
func (c *Client) MigrateFetch(ctx context.Context, table, file string, off int64, maxBytes uint32) (*wire.MigrateChunk, error) {
	m := &wire.MigrateFetch{Table: table, File: file, Offset: off, MaxBytes: maxBytes}
	mt, resp, err := c.do(ctx, wire.MsgMigrateFetch, m.Encode())
	if err != nil {
		return nil, err
	}
	if mt != wire.MsgMigrateChunk {
		return nil, fmt.Errorf("client: unexpected response type %d", mt)
	}
	return wire.DecodeMigrateChunk(resp)
}

// MigrateInstall stages one chunk of a tablet image on the target
// server; the Commit chunk verifies and attaches the tablet. Installs
// are deliberately NOT retried after an unacknowledged send — a replayed
// chunk would corrupt the offset discipline; the driver restarts the
// file at offset 0 instead.
func (c *Client) MigrateInstall(ctx context.Context, m *wire.MigrateInstall) error {
	return expectOK(c.do(ctx, wire.MsgMigrateInstall, m.Encode()))
}

// MigrateEnd releases the export pins taken by MigrateBegin (source
// side) and any staged install buffers for the table (target side).
func (c *Client) MigrateEnd(ctx context.Context, table string) error {
	m := &wire.MigrateEnd{Table: table}
	return expectOK(c.do(ctx, wire.MsgMigrateEnd, m.Encode()))
}

// RouterStats fetches a router's routing counters and per-shard health
// (MsgRouterStats). The message is router-only: a plain server bounces
// it as an unknown type, so call this on a connection to a router.
func (c *Client) RouterStats(ctx context.Context) (*wire.RouterStatsResult, error) {
	mt, resp, err := c.do(ctx, wire.MsgRouterStats, nil)
	if err != nil {
		return nil, err
	}
	if mt != wire.MsgRouterStatsResult {
		return nil, fmt.Errorf("client: unexpected response type %d", mt)
	}
	return wire.DecodeRouterStatsResult(resp)
}
