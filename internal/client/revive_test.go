package client

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/server"
)

func newRawServer(t *testing.T) *server.Server {
	t.Helper()
	s, err := server.New(server.Options{
		Root:                t.TempDir(),
		Core:                core.Options{Clock: clock.Real{}},
		MaintenanceInterval: 50 * time.Millisecond,
		Logf:                t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// listenOn binds addr, retrying briefly: rebinding a just-closed listener
// address can transiently fail.
func listenOn(t *testing.T, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		lis, err := net.Listen("tcp", addr)
		if err == nil {
			return lis
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPoolSurvivesDeadThenRevivedEndpoint covers the endpoint lifecycle a
// router sees daily: a shard stops accepting (dial failures), dies
// entirely, and comes back at the same address. Dial failures must not
// poison pooled healthy connections, and recovery must need no pool
// restart — the next request redials.
func TestPoolSurvivesDeadThenRevivedEndpoint(t *testing.T) {
	s1 := newRawServer(t)
	lis := listenOn(t, "127.0.0.1:0")
	addr := lis.Addr().String()
	go s1.Serve(lis)

	c, err := DialContext(background(), addr, Options{
		PoolSize:       4,
		DialTimeout:    500 * time.Millisecond,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  5 * time.Millisecond,
		JitterSeed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ListTables(); err != nil {
		t.Fatal(err)
	}

	// Phase 1: the shard stops accepting, but its established connection
	// stays up. The one pooled conn must keep serving requests even while
	// fresh dials fail.
	lis.Close()
	for i := 0; i < 5; i++ {
		if _, err := c.ListTables(); err != nil {
			t.Fatalf("pooled conn request %d with listener closed: %v", i, err)
		}
	}
	// Concurrent burst: siblings that lose the race for the idle conn hit
	// dial failures. Those failures must not break the healthy conn.
	var wg sync.WaitGroup
	var okCount, failCount int
	var cnt sync.Mutex
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.ListTables()
			cnt.Lock()
			if err == nil {
				okCount++
			} else {
				failCount++
			}
			cnt.Unlock()
		}()
	}
	wg.Wait()
	if okCount == 0 {
		t.Fatal("no burst request reached the pooled conn")
	}
	t.Logf("burst with listener closed: %d ok, %d dial-failed", okCount, failCount)
	if _, err := c.ListTables(); err != nil {
		t.Fatalf("pooled conn poisoned by sibling dial failures: %v", err)
	}

	// Phase 2: the shard dies outright. Requests fail with a transport
	// error (ErrDisconnected), not a hang.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ListTables(); err == nil {
		t.Fatal("request succeeded against a dead server")
	} else if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("dead server error = %v, want ErrDisconnected", err)
	}

	// Phase 3: a new process revives the address. The same client object
	// must recover on its own — dead idle conns fail the health probe and
	// the request redials.
	s2 := newRawServer(t)
	if _, err := s2.CreateTable("revived", eventsSchema(), 0); err != nil {
		t.Fatal(err)
	}
	lis2 := listenOn(t, addr)
	go s2.Serve(lis2)
	defer s2.Close()

	var names []string
	deadline := time.Now().Add(5 * time.Second)
	for {
		names, err = c.ListTables()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never recovered after revival: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(names) != 1 || names[0] != "revived" {
		t.Fatalf("recovered ListTables = %v, want [revived]", names)
	}
	// And the pool is fully functional, not limping on one conn: a
	// concurrent burst against the revived server all succeeds.
	var errOnce sync.Mutex
	var firstErr error
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.ListTables(); err != nil {
				errOnce.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errOnce.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatalf("burst after revival: %v", firstErr)
	}
}
