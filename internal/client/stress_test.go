package client

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// TestServerStress hammers one server over many connections with the full
// mixed workload — inserts, queries, latest-row, deletes, flushes, schema
// reads, stats — while the maintenance loop flushes and merges underneath.
// Correctness bar: no errors other than expected duplicates, and a final
// ordered, duplicate-free read-back. Run with -race in CI.
func TestServerStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	_, addr := startServer(t, core.Options{
		FlushSize:  8 << 10,
		MergeDelay: (200 * time.Millisecond).Microseconds(),
	})
	admin := dial(t, addr)
	sc := schema.MustNew([]schema.Column{
		{Name: "writer", Type: ltval.Int64},
		{Name: "seq", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "payload", Type: ltval.String},
	}, []string{"writer", "seq", "ts"})
	if err := admin.CreateTable("stress", sc, 0); err != nil {
		t.Fatal(err)
	}

	const (
		writers       = 4
		readers       = 3
		rowsPerWriter = 1500
	)
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			tab, err := c.OpenTable("stress")
			if err != nil {
				errCh <- err
				return
			}
			tab.BatchSize = 64
			base := time.Now().UnixMicro()
			for i := 0; i < rowsPerWriter; i++ {
				err := tab.Insert(schema.Row{
					ltval.NewInt64(int64(w)),
					ltval.NewInt64(int64(i)),
					ltval.NewTimestamp(base + int64(i)),
					ltval.NewString(fmt.Sprintf("payload-%d-%d", w, i)),
				})
				if err != nil {
					errCh <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
			if err := tab.Flush(); err != nil {
				errCh <- err
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			tab, err := c.OpenTable("stress")
			if err != nil {
				errCh <- err
				return
			}
			for k := 0; k < 30; k++ {
				q := NewQuery()
				q.Lower = []ltval.Value{ltval.NewInt64(int64(k % writers))}
				q.Upper = q.Lower
				rows, err := tab.Query(q).All()
				if err != nil {
					errCh <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				for i := 1; i < len(rows); i++ {
					if rows[i-1][1].Int >= rows[i][1].Int {
						errCh <- fmt.Errorf("reader %d: unordered seqs under load", r)
						return
					}
				}
				if _, _, err := tab.LatestRow([]ltval.Value{ltval.NewInt64(int64(k % writers))}); err != nil {
					errCh <- err
					return
				}
				if _, err := tab.Stats(); err != nil {
					errCh <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Final read-back: exactly writers × rowsPerWriter unique rows, ordered.
	tab, err := admin.OpenTable("stress")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tab.Query(NewQuery()).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != writers*rowsPerWriter {
		t.Fatalf("final count %d, want %d", len(rows), writers*rowsPerWriter)
	}
	seen := map[[2]int64]bool{}
	for _, r := range rows {
		k := [2]int64{r[0].Int, r[1].Int}
		if seen[k] {
			t.Fatalf("duplicate row %v", k)
		}
		seen[k] = true
	}
	// Targeted delete under no contention still works after the storm.
	n, err := tab.DeleteRange(func() Query {
		q := NewQuery()
		q.Lower = []ltval.Value{ltval.NewInt64(0)}
		q.Upper = q.Lower
		return q
	}())
	if err != nil || n != rowsPerWriter {
		t.Fatalf("post-stress delete: %d, %v", n, err)
	}
}
