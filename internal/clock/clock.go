// Package clock provides an injectable time source so the table engine's
// period math, flush ageing, and merge delays are testable without sleeping.
package clock

import (
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the engine. Timestamps
// are int64 microseconds since the Unix epoch, matching the on-disk format.
type Clock interface {
	// Now returns the current time in microseconds since the Unix epoch.
	Now() int64
}

// Micros converts a time.Time to engine microseconds.
func Micros(t time.Time) int64 { return t.UnixMicro() }

// Time converts engine microseconds back to a time.Time in UTC.
func Time(us int64) time.Time { return time.UnixMicro(us).UTC() }

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() int64 { return time.Now().UnixMicro() }

// Fake is a manually-advanced clock for tests.
type Fake struct {
	mu  sync.Mutex
	now int64
}

// NewFake returns a Fake clock starting at start microseconds.
func NewFake(start int64) *Fake { return &Fake{now: start} }

// Now implements Clock.
func (f *Fake) Now() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Advance moves the clock forward by d microseconds.
func (f *Fake) Advance(d int64) {
	f.mu.Lock()
	f.now += d
	f.mu.Unlock()
}

// Set jumps the clock to t microseconds.
func (f *Fake) Set(t int64) {
	f.mu.Lock()
	f.now = t
	f.mu.Unlock()
}

// Common durations in microseconds.
const (
	Microsecond int64 = 1
	Millisecond       = 1000 * Microsecond
	Second            = 1000 * Millisecond
	Minute            = 60 * Second
	Hour              = 60 * Minute
	Day               = 24 * Hour
	Week              = 7 * Day
)
