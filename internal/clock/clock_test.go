package clock

import (
	"testing"
	"time"
)

func TestRealTracksWallClock(t *testing.T) {
	before := time.Now().UnixMicro()
	got := Real{}.Now()
	after := time.Now().UnixMicro()
	if got < before || got > after {
		t.Errorf("Real.Now() = %d outside [%d, %d]", got, before, after)
	}
}

func TestFake(t *testing.T) {
	f := NewFake(1000)
	if f.Now() != 1000 {
		t.Errorf("start = %d", f.Now())
	}
	f.Advance(Minute)
	if f.Now() != 1000+Minute {
		t.Errorf("after advance = %d", f.Now())
	}
	f.Set(42)
	if f.Now() != 42 {
		t.Errorf("after set = %d", f.Now())
	}
}

func TestConversions(t *testing.T) {
	now := time.Date(2026, 7, 4, 12, 0, 0, 0, time.UTC)
	us := Micros(now)
	if Time(us) != now {
		t.Errorf("round trip: %v vs %v", Time(us), now)
	}
}

func TestDurationConstants(t *testing.T) {
	if Second != 1_000_000 || Minute != 60*Second || Hour != 60*Minute {
		t.Error("sub-day constants wrong")
	}
	if Day != 24*Hour || Week != 7*Day {
		t.Error("day/week constants wrong")
	}
}

func TestFakeConcurrent(t *testing.T) {
	f := NewFake(0)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			f.Advance(1)
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		f.Now()
	}
	<-done
	if f.Now() != 1000 {
		t.Errorf("lost advances: %d", f.Now())
	}
}
