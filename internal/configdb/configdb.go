// Package configdb is the reproduction's stand-in for the PostgreSQL
// configuration database each shard runs (§2.1): it holds the dimension
// data — customers, networks, devices, and user-defined tags — that
// aggregators join against LittleTable source tables (§4.1.2, e.g. usage
// per access-point tag). Unlike LittleTable it offers strongly-consistent
// snapshot reads, mirroring the split the paper describes in §2.3.4.
package configdb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Device kinds Meraki ships (§1).
const (
	KindAccessPoint = "access_point"
	KindSwitch      = "switch"
	KindFirewall    = "firewall"
	KindPhone       = "voip_phone"
	KindCamera      = "camera"
)

// Customer is a Dashboard organization.
type Customer struct {
	ID   int64
	Name string
}

// Network groups devices (§1: "Dashboard organizes wireless access points
// into groups called networks").
type Network struct {
	ID         int64
	CustomerID int64
	Name       string
}

// Device is one Meraki device.
type Device struct {
	ID        int64
	NetworkID int64
	Kind      string
	Name      string
	Tags      []string
}

// DB is the in-memory configuration store. All methods are safe for
// concurrent use; reads see a consistent snapshot under one lock hold.
type DB struct {
	mu        sync.RWMutex
	customers map[int64]*Customer
	networks  map[int64]*Network
	devices   map[int64]*Device
	nextID    int64
}

// ErrNotFound reports a missing entity.
var ErrNotFound = errors.New("configdb: not found")

// New returns an empty store.
func New() *DB {
	return &DB{
		customers: map[int64]*Customer{},
		networks:  map[int64]*Network{},
		devices:   map[int64]*Device{},
		nextID:    1,
	}
}

// AddCustomer creates a customer.
func (db *DB) AddCustomer(name string) *Customer {
	db.mu.Lock()
	defer db.mu.Unlock()
	c := &Customer{ID: db.nextID, Name: name}
	db.nextID++
	db.customers[c.ID] = c
	return c
}

// AddNetwork creates a network under a customer.
func (db *DB) AddNetwork(customerID int64, name string) (*Network, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.customers[customerID]; !ok {
		return nil, fmt.Errorf("%w: customer %d", ErrNotFound, customerID)
	}
	n := &Network{ID: db.nextID, CustomerID: customerID, Name: name}
	db.nextID++
	db.networks[n.ID] = n
	return n, nil
}

// AddDevice creates a device in a network.
func (db *DB) AddDevice(networkID int64, kind, name string, tags ...string) (*Device, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.networks[networkID]; !ok {
		return nil, fmt.Errorf("%w: network %d", ErrNotFound, networkID)
	}
	d := &Device{ID: db.nextID, NetworkID: networkID, Kind: kind, Name: name, Tags: append([]string(nil), tags...)}
	db.nextID++
	db.devices[d.ID] = d
	return d, nil
}

// SetDeviceTags replaces a device's tags (users define tag meanings for
// themselves, §4.1.2).
func (db *DB) SetDeviceTags(deviceID int64, tags ...string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	d, ok := db.devices[deviceID]
	if !ok {
		return fmt.Errorf("%w: device %d", ErrNotFound, deviceID)
	}
	d.Tags = append([]string(nil), tags...)
	return nil
}

// Device returns a device by id.
func (db *DB) Device(id int64) (Device, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	d, ok := db.devices[id]
	if !ok {
		return Device{}, fmt.Errorf("%w: device %d", ErrNotFound, id)
	}
	return snapshotDevice(d), nil
}

// Network returns a network by id.
func (db *DB) Network(id int64) (Network, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n, ok := db.networks[id]
	if !ok {
		return Network{}, fmt.Errorf("%w: network %d", ErrNotFound, id)
	}
	return *n, nil
}

// Devices returns all devices sorted by id.
func (db *DB) Devices() []Device {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]Device, 0, len(db.devices))
	for _, d := range db.devices {
		out = append(out, snapshotDevice(d))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DevicesInNetwork returns a network's devices sorted by id.
func (db *DB) DevicesInNetwork(networkID int64) []Device {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []Device
	for _, d := range db.devices {
		if d.NetworkID == networkID {
			out = append(out, snapshotDevice(d))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Networks returns all networks sorted by id.
func (db *DB) Networks() []Network {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]Network, 0, len(db.networks))
	for _, n := range db.networks {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TagsByDevice returns a consistent device→tags snapshot for a network,
// the join input for tag aggregators.
func (db *DB) TagsByDevice(networkID int64) map[int64][]string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := map[int64][]string{}
	for _, d := range db.devices {
		if d.NetworkID == networkID && len(d.Tags) > 0 {
			out[d.ID] = append([]string(nil), d.Tags...)
		}
	}
	return out
}

func snapshotDevice(d *Device) Device {
	c := *d
	c.Tags = append([]string(nil), d.Tags...)
	return c
}
