package configdb

import (
	"sync"
	"testing"
)

func seed(t *testing.T) (*DB, *Customer, *Network) {
	t.Helper()
	db := New()
	c := db.AddCustomer("school")
	n, err := db.AddNetwork(c.ID, "campus")
	if err != nil {
		t.Fatal(err)
	}
	return db, c, n
}

func TestAddAndLookup(t *testing.T) {
	db, _, n := seed(t)
	d, err := db.AddDevice(n.ID, KindAccessPoint, "ap1", "classrooms")
	if err != nil {
		t.Fatal(err)
	}
	got, err := db.Device(d.ID)
	if err != nil || got.Name != "ap1" || got.NetworkID != n.ID {
		t.Fatalf("Device: %+v %v", got, err)
	}
	gn, err := db.Network(n.ID)
	if err != nil || gn.Name != "campus" {
		t.Fatalf("Network: %+v %v", gn, err)
	}
}

func TestNotFound(t *testing.T) {
	db := New()
	if _, err := db.AddNetwork(99, "x"); err == nil {
		t.Error("network under missing customer accepted")
	}
	if _, err := db.AddDevice(99, KindSwitch, "x"); err == nil {
		t.Error("device under missing network accepted")
	}
	if _, err := db.Device(99); err == nil {
		t.Error("missing device found")
	}
	if _, err := db.Network(99); err == nil {
		t.Error("missing network found")
	}
	if err := db.SetDeviceTags(99, "t"); err == nil {
		t.Error("tags on missing device accepted")
	}
}

func TestListingsSortedAndFiltered(t *testing.T) {
	db, c, n1 := seed(t)
	n2, _ := db.AddNetwork(c.ID, "annex")
	d1, _ := db.AddDevice(n1.ID, KindAccessPoint, "a")
	d2, _ := db.AddDevice(n2.ID, KindCamera, "b")
	d3, _ := db.AddDevice(n1.ID, KindSwitch, "c")
	all := db.Devices()
	if len(all) != 3 || all[0].ID != d1.ID || all[2].ID != d3.ID {
		t.Fatalf("Devices: %+v", all)
	}
	in1 := db.DevicesInNetwork(n1.ID)
	if len(in1) != 2 || in1[0].ID != d1.ID || in1[1].ID != d3.ID {
		t.Fatalf("DevicesInNetwork: %+v", in1)
	}
	nets := db.Networks()
	if len(nets) != 2 || nets[0].ID != n1.ID {
		t.Fatalf("Networks: %+v", nets)
	}
	_ = d2
}

func TestTagsSnapshotIsolation(t *testing.T) {
	db, _, n := seed(t)
	d, _ := db.AddDevice(n.ID, KindAccessPoint, "ap", "old")
	tags := db.TagsByDevice(n.ID)
	if len(tags[d.ID]) != 1 || tags[d.ID][0] != "old" {
		t.Fatalf("tags: %v", tags)
	}
	// Mutating the snapshot must not affect the store.
	tags[d.ID][0] = "mutated"
	if again := db.TagsByDevice(n.ID); again[d.ID][0] != "old" {
		t.Error("snapshot shares storage with the store")
	}
	// SetDeviceTags replaces.
	if err := db.SetDeviceTags(d.ID, "x", "y"); err != nil {
		t.Fatal(err)
	}
	got, _ := db.Device(d.ID)
	if len(got.Tags) != 2 {
		t.Fatalf("replaced tags: %v", got.Tags)
	}
	// Device snapshot also isolated.
	got.Tags[0] = "zap"
	got2, _ := db.Device(d.ID)
	if got2.Tags[0] != "x" {
		t.Error("device snapshot shares tag storage")
	}
}

func TestUntaggedDevicesOmitted(t *testing.T) {
	db, _, n := seed(t)
	db.AddDevice(n.ID, KindAccessPoint, "untagged")
	d, _ := db.AddDevice(n.ID, KindAccessPoint, "tagged", "t")
	tags := db.TagsByDevice(n.ID)
	if len(tags) != 1 {
		t.Fatalf("TagsByDevice: %v", tags)
	}
	if _, ok := tags[d.ID]; !ok {
		t.Error("tagged device missing")
	}
}

func TestConcurrentAccess(t *testing.T) {
	db, _, n := seed(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if i%2 == 0 {
					db.AddDevice(n.ID, KindSwitch, "d")
				} else {
					db.Devices()
					db.TagsByDevice(n.ID)
				}
			}
		}(i)
	}
	wg.Wait()
	if len(db.Devices()) != 400 {
		t.Errorf("concurrent adds lost devices: %d", len(db.Devices()))
	}
}
