package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"littletable/internal/clock"
	"littletable/internal/schema"
	"littletable/internal/vfs"
)

// Crash-consistency harness: run a workload on a MemFS with SyncWrites on,
// take a CrashClone — the state an ext4-like disk could present after a
// power cut — at EVERY durability barrier (file fsync, rename, directory
// fsync), then reopen each snapshot and verify the recovered table is an
// exact prefix of insertion order (§3.1's guarantee). A snapshot taken at
// barrier k also stands in for every instant between barriers k and k+1:
// whatever happens in between is un-synced and is dropped by CrashClone's
// semantics anyway.

func quietLogf(string, ...interface{}) {}

// crashWorkload drives inserts/flushes/merges against tt and returns the
// number of rows inserted. Row seq values must count up from 0 in insertion
// order.
type crashWorkload struct {
	name string
	opts Options // Clock, FS, SyncWrites, Logf filled by the harness
	// run returns rows inserted and whether they were all flushed (so the
	// final snapshot must recover every one of them).
	run func(t *testing.T, tab *Table, clk *clock.Fake) (rows int, allFlushed bool)
	// wrapFS, when set, wraps the MemFS the table runs on (e.g. in a
	// LatencyFS so concurrent maintenance workers genuinely overlap);
	// barriers and crash clones still come from the underlying MemFS.
	wrapFS func(mem *vfs.MemFS) vfs.FS
	// onBarrier, when set, runs inside every barrier hook before the
	// crash clone is taken; workloads use it to observe in-flight state
	// at the exact instants the harness kills the process.
	onBarrier func()
}

// crashSeed returns the workload perturbation seed, set by the CI crash
// matrix via LTCRASH_SEED (default 1). Workloads jitter batch sizes and
// row counts with it, so distinct seeds explore different barrier
// sequences and flush-group shapes.
func crashSeed() int64 {
	if v := os.Getenv("LTCRASH_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return 1
}

func runCrashHarness(t *testing.T, w crashWorkload) {
	t.Helper()
	mem := vfs.NewMem()
	clk := clock.NewFake(testStart)
	opts := w.opts
	opts.Clock = clk
	opts.FS = mem
	if w.wrapFS != nil {
		opts.FS = w.wrapFS(mem)
	}
	opts.SyncWrites = true
	opts.Logf = quietLogf

	tab, err := CreateTable("/db", "usage", usageSchema(), 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()

	// Snapshot only after the table exists: before the first descriptor
	// commit there is no table to recover. With asynchronous flush workers
	// the hook fires from worker goroutines too, so the slice is locked.
	type snap struct {
		fs       *vfs.MemFS
		op, path string
	}
	var snapMu sync.Mutex
	var snaps []snap
	mem.SetBarrierHook(func(op, path string) {
		if w.onBarrier != nil {
			w.onBarrier()
		}
		c := mem.CrashClone()
		snapMu.Lock()
		snaps = append(snaps, snap{fs: c, op: op, path: path})
		snapMu.Unlock()
	})

	// On failure, dump the fault script — the exact barrier sequence this
	// run crash-cloned at, with the workload name and seed — so the CI
	// crash-matrix job can upload it as an artifact for reproduction.
	t.Cleanup(func() {
		dir := os.Getenv("LTCRASH_ARTIFACT")
		if !t.Failed() || dir == "" {
			return
		}
		var b strings.Builder
		fmt.Fprintf(&b, "workload %s seed %d barriers %d\n", w.name, crashSeed(), len(snaps))
		snapMu.Lock()
		for i, s := range snaps {
			fmt.Fprintf(&b, "%4d %-8s %s\n", i, s.op, s.path)
		}
		snapMu.Unlock()
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("fault-script artifact dir: %v", err)
			return
		}
		name := strings.ReplaceAll(t.Name(), "/", "_") + ".faults.txt"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o644); err != nil {
			t.Logf("fault-script artifact write: %v", err)
		}
	})

	inserted, allFlushed := w.run(t, tab, clk)
	mem.SetBarrierHook(nil)
	snaps = append(snaps, snap{fs: mem.CrashClone(), op: "final", path: ""})

	if len(snaps) < 5 {
		t.Fatalf("workload produced only %d durability barriers; not exercising the harness", len(snaps))
	}

	for i, s := range snaps {
		label := fmt.Sprintf("crash %d/%d after %s %s", i+1, len(snaps), s.op, s.path)
		re, err := OpenTable("/db", "usage", Options{
			Clock:      clock.NewFake(clk.Now()),
			FS:         s.fs,
			SyncWrites: true,
			Logf:       quietLogf,
		})
		if err != nil {
			t.Fatalf("%s: reopen failed: %v", label, err)
		}
		rows, err := re.QueryAll(NewQuery())
		if err != nil {
			re.Close()
			t.Fatalf("%s: query failed: %v", label, err)
		}
		if !isPrefixSet(seqsOf(rows)) {
			re.Close()
			t.Fatalf("%s: recovered %d rows, not an insertion-order prefix: %v",
				label, len(rows), seqsOf(rows))
		}
		if len(rows) > inserted {
			re.Close()
			t.Fatalf("%s: recovered %d rows, more than the %d inserted", label, len(rows), inserted)
		}
		if q := re.Stats().TabletsQuarantined.Load(); q != 0 {
			re.Close()
			t.Fatalf("%s: %d tablets quarantined; a pure power cut must never corrupt a synced tablet", label, q)
		}
		if i == len(snaps)-1 && allFlushed && len(rows) != inserted {
			re.Close()
			t.Fatalf("final crash state recovered %d rows, want all %d (workload flushed everything)", len(rows), inserted)
		}
		re.Close()
	}
}

// TestCrashAtEveryBarrierSingleTablet: one filling tablet, flushed in one
// group — the simplest commit sequence (tablet write+rename, descriptor
// write+rename).
func TestCrashAtEveryBarrierSingleTablet(t *testing.T) {
	runCrashHarness(t, crashWorkload{
		name: "single",
		run: func(t *testing.T, tab *Table, clk *clock.Fake) (int, bool) {
			now := clk.Now()
			rows := 40 + rand.New(rand.NewSource(crashSeed())).Int63n(24)
			n := 0
			for i := int64(0); i < rows; i++ {
				if err := tab.Insert([]schema.Row{usageRow(1, i, now+i, 0, int64(n))}); err != nil {
					t.Fatal(err)
				}
				n++
			}
			if err := tab.FlushAll(); err != nil {
				t.Fatal(err)
			}
			return n, true
		},
	})
}

// TestCrashAtEveryBarrierMultiPeriod: inserts alternate between time
// periods, creating several filling tablets and flush-dependency edges
// (§3.4.3); groups flush one step at a time with more inserts between
// steps, so crashes land between dependent descriptor commits.
func TestCrashAtEveryBarrierMultiPeriod(t *testing.T) {
	runCrashHarness(t, crashWorkload{
		name: "multi-period",
		run: func(t *testing.T, tab *Table, clk *clock.Fake) (int, bool) {
			now := clk.Now()
			rng := rand.New(rand.NewSource(crashSeed()))
			first, second := 30+rng.Intn(12), 20+rng.Intn(12)
			tsFor := []int64{now, now - 30*clock.Hour, now - 20*clock.Day}
			n := 0
			insert := func(k int) {
				t.Helper()
				ts := tsFor[k%len(tsFor)] + int64(n)
				if err := tab.Insert([]schema.Row{usageRow(1, int64(k), ts, 0, int64(n))}); err != nil {
					t.Fatal(err)
				}
				n++
			}
			for i := 0; i < first; i++ {
				insert(i)
			}
			if err := tab.FlushAll(); err != nil {
				t.Fatal(err)
			}
			for i := first; i < first+second; i++ {
				insert(i)
			}
			// Leave the last batch unflushed: crashes here must still
			// recover exactly the flushed prefix.
			return n, false
		},
	})
}

// TestCrashAtEveryBarrierAsyncPipeline is the dependency-graph kill test
// for the concurrent flush pipeline: inserts alternate between time
// periods (building flush-dependency edges), tablets seal at a tiny
// FlushSize while TWO background workers write groups concurrently, and
// the harness snapshots a crash image at every durability barrier those
// workers cross — i.e. it kills the process mid-pipeline, between
// concurrent tablet writes and in-order descriptor commits. Every
// recovered image must still be an exact prefix of insertion order: the
// in-order commit stage is the thing under test.
func TestCrashAtEveryBarrierAsyncPipeline(t *testing.T) {
	runCrashHarness(t, crashWorkload{
		name: "async-pipeline",
		opts: Options{FlushWorkers: 2, FlushSize: 1 << 10},
		run: func(t *testing.T, tab *Table, clk *clock.Fake) (int, bool) {
			now := clk.Now()
			rng := rand.New(rand.NewSource(crashSeed()))
			batches, per := 10+rng.Intn(5), 16+rng.Intn(9)
			tsFor := []int64{now, now - 30*clock.Hour, now - 20*clock.Day}
			n := 0
			for batch := 0; batch < batches; batch++ {
				rows := make([]schema.Row, 0, per)
				for i := 0; i < per; i++ {
					ts := tsFor[n%len(tsFor)] + int64(n)
					rows = append(rows, usageRow(1, int64(n%7), ts, 0, int64(n)))
					n++
				}
				if err := tab.Insert(rows); err != nil {
					t.Fatal(err)
				}
			}
			// Drain so the final image must hold every row; the interesting
			// crash points were already snapped while workers raced.
			if err := tab.FlushAll(); err != nil {
				t.Fatal(err)
			}
			return n, true
		},
	})
}

// TestCrashAtEveryBarrierDuringMerge: two flushed batches in the same
// period, then a merge — crashes land between the merge output's rename and
// the descriptor update that publishes it, the window where an orphan
// output and live inputs coexist.
func TestCrashAtEveryBarrierDuringMerge(t *testing.T) {
	runCrashHarness(t, crashWorkload{
		name: "merge",
		opts: Options{MergeDelay: 1},
		run: func(t *testing.T, tab *Table, clk *clock.Fake) (int, bool) {
			now := clk.Now()
			n := 0
			batch := func() {
				t.Helper()
				for i := 0; i < 30; i++ {
					if err := tab.Insert([]schema.Row{usageRow(1, int64(n), now-clock.Hour+int64(n), 0, int64(n))}); err != nil {
						t.Fatal(err)
					}
					n++
				}
				if err := tab.FlushAll(); err != nil {
					t.Fatal(err)
				}
			}
			batch()
			batch()
			clk.Advance(2 * clock.Second)
			if _, err := tab.MergeUntilStable(); err != nil {
				t.Fatal(err)
			}
			return n, true
		},
	})
}

// TestCrashAtEveryBarrierParallelMaintenance is the kill test for the
// concurrent maintenance scheduler: six merge-eligible periods, TWO
// background workers, and a LatencyFS stretching every merge write so the
// workers genuinely overlap. The harness snapshots a crash image at every
// barrier those merges cross — including the windows where two merge
// outputs exist but neither descriptor commit has published them — and the
// barrier hook actively waits until it has observed >= 2 merges in flight,
// so at least some crash images are taken mid-parallel-merge. Every image
// must recover all rows (they were flushed before maintenance started):
// merges rewrite durable data and must never lose it, no matter how many
// run at once or where the power cut lands.
func TestCrashAtEveryBarrierParallelMaintenance(t *testing.T) {
	var tabPtr atomic.Pointer[Table]
	var maintaining atomic.Bool
	var maxInFlight atomic.Int64
	runCrashHarness(t, crashWorkload{
		name: "parallel-maintenance",
		opts: Options{MergeWorkers: 2, MergeDelay: 1},
		wrapFS: func(mem *vfs.MemFS) vfs.FS {
			return vfs.LatencyFS{FS: mem, WriteDelay: 2 * time.Millisecond}
		},
		onBarrier: func() {
			tab := tabPtr.Load()
			if tab == nil || !maintaining.Load() {
				return
			}
			// Hold this barrier open briefly until a second merge starts, so
			// crash clones land while >= 2 merges are mid-write. Descriptor
			// barriers fire under t.mu — no new merge can claim while one is
			// held — so the wait must be bounded, not unconditional; the
			// overlap is actually observed at merge-output barriers, which
			// fire without the lock. MergesInFlightNow is lock-free, so
			// polling here cannot deadlock either barrier flavor.
			deadline := time.Now().Add(250 * time.Millisecond)
			for {
				if n := tab.MergesInFlightNow(); n > maxInFlight.Load() {
					maxInFlight.Store(n)
				}
				if maxInFlight.Load() >= 2 || time.Now().After(deadline) {
					return
				}
				time.Sleep(100 * time.Microsecond)
			}
		},
		run: func(t *testing.T, tab *Table, clk *clock.Fake) (int, bool) {
			tabPtr.Store(tab)
			now := clk.Now()
			n := 0
			const periods, tablets, rowsPer = 6, 3, 12
			for p := 0; p < periods; p++ {
				// Weeks-old bases: each p lands in its own coarse period whose
				// rollover (and pseudorandom post-rollover delay) is long past,
				// so every period is merge-eligible the moment MergeDelay is.
				base := now - int64(4+p)*7*clock.Day
				for b := 0; b < tablets; b++ {
					for i := 0; i < rowsPer; i++ {
						row := usageRow(1, int64(p*100+b*20+i), base+int64(b*rowsPer+i), 0, int64(n))
						if err := tab.Insert([]schema.Row{row}); err != nil {
							t.Fatal(err)
						}
						n++
					}
					if err := tab.FlushAll(); err != nil {
						t.Fatal(err)
					}
				}
			}
			clk.Advance(2 * clock.Second)
			maintaining.Store(true)
			if err := tab.MaintainUntilQuiet(); err != nil {
				t.Fatal(err)
			}
			maintaining.Store(false)
			return n, true
		},
	})
	if got := maxInFlight.Load(); got < 2 {
		t.Fatalf("never observed >= 2 merges in flight at a durability barrier (max %d); harness is not killing mid-parallel-maintenance", got)
	}
}
