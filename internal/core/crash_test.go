package core

import (
	"fmt"
	"sync"
	"testing"

	"littletable/internal/clock"
	"littletable/internal/schema"
	"littletable/internal/vfs"
)

// Crash-consistency harness: run a workload on a MemFS with SyncWrites on,
// take a CrashClone — the state an ext4-like disk could present after a
// power cut — at EVERY durability barrier (file fsync, rename, directory
// fsync), then reopen each snapshot and verify the recovered table is an
// exact prefix of insertion order (§3.1's guarantee). A snapshot taken at
// barrier k also stands in for every instant between barriers k and k+1:
// whatever happens in between is un-synced and is dropped by CrashClone's
// semantics anyway.

func quietLogf(string, ...interface{}) {}

// crashWorkload drives inserts/flushes/merges against tt and returns the
// number of rows inserted. Row seq values must count up from 0 in insertion
// order.
type crashWorkload struct {
	name string
	opts Options // Clock, FS, SyncWrites, Logf filled by the harness
	// run returns rows inserted and whether they were all flushed (so the
	// final snapshot must recover every one of them).
	run func(t *testing.T, tab *Table, clk *clock.Fake) (rows int, allFlushed bool)
}

func runCrashHarness(t *testing.T, w crashWorkload) {
	t.Helper()
	mem := vfs.NewMem()
	clk := clock.NewFake(testStart)
	opts := w.opts
	opts.Clock = clk
	opts.FS = mem
	opts.SyncWrites = true
	opts.Logf = quietLogf

	tab, err := CreateTable("/db", "usage", usageSchema(), 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()

	// Snapshot only after the table exists: before the first descriptor
	// commit there is no table to recover. With asynchronous flush workers
	// the hook fires from worker goroutines too, so the slice is locked.
	type snap struct {
		fs       *vfs.MemFS
		op, path string
	}
	var snapMu sync.Mutex
	var snaps []snap
	mem.SetBarrierHook(func(op, path string) {
		c := mem.CrashClone()
		snapMu.Lock()
		snaps = append(snaps, snap{fs: c, op: op, path: path})
		snapMu.Unlock()
	})

	inserted, allFlushed := w.run(t, tab, clk)
	mem.SetBarrierHook(nil)
	snaps = append(snaps, snap{fs: mem.CrashClone(), op: "final", path: ""})

	if len(snaps) < 5 {
		t.Fatalf("workload produced only %d durability barriers; not exercising the harness", len(snaps))
	}

	for i, s := range snaps {
		label := fmt.Sprintf("crash %d/%d after %s %s", i+1, len(snaps), s.op, s.path)
		re, err := OpenTable("/db", "usage", Options{
			Clock:      clock.NewFake(clk.Now()),
			FS:         s.fs,
			SyncWrites: true,
			Logf:       quietLogf,
		})
		if err != nil {
			t.Fatalf("%s: reopen failed: %v", label, err)
		}
		rows, err := re.QueryAll(NewQuery())
		if err != nil {
			re.Close()
			t.Fatalf("%s: query failed: %v", label, err)
		}
		if !isPrefixSet(seqsOf(rows)) {
			re.Close()
			t.Fatalf("%s: recovered %d rows, not an insertion-order prefix: %v",
				label, len(rows), seqsOf(rows))
		}
		if len(rows) > inserted {
			re.Close()
			t.Fatalf("%s: recovered %d rows, more than the %d inserted", label, len(rows), inserted)
		}
		if q := re.Stats().TabletsQuarantined.Load(); q != 0 {
			re.Close()
			t.Fatalf("%s: %d tablets quarantined; a pure power cut must never corrupt a synced tablet", label, q)
		}
		if i == len(snaps)-1 && allFlushed && len(rows) != inserted {
			re.Close()
			t.Fatalf("final crash state recovered %d rows, want all %d (workload flushed everything)", len(rows), inserted)
		}
		re.Close()
	}
}

// TestCrashAtEveryBarrierSingleTablet: one filling tablet, flushed in one
// group — the simplest commit sequence (tablet write+rename, descriptor
// write+rename).
func TestCrashAtEveryBarrierSingleTablet(t *testing.T) {
	runCrashHarness(t, crashWorkload{
		name: "single",
		run: func(t *testing.T, tab *Table, clk *clock.Fake) (int, bool) {
			now := clk.Now()
			n := 0
			for i := int64(0); i < 40; i++ {
				if err := tab.Insert([]schema.Row{usageRow(1, i, now+i, 0, int64(n))}); err != nil {
					t.Fatal(err)
				}
				n++
			}
			if err := tab.FlushAll(); err != nil {
				t.Fatal(err)
			}
			return n, true
		},
	})
}

// TestCrashAtEveryBarrierMultiPeriod: inserts alternate between time
// periods, creating several filling tablets and flush-dependency edges
// (§3.4.3); groups flush one step at a time with more inserts between
// steps, so crashes land between dependent descriptor commits.
func TestCrashAtEveryBarrierMultiPeriod(t *testing.T) {
	runCrashHarness(t, crashWorkload{
		name: "multi-period",
		run: func(t *testing.T, tab *Table, clk *clock.Fake) (int, bool) {
			now := clk.Now()
			tsFor := []int64{now, now - 30*clock.Hour, now - 20*clock.Day}
			n := 0
			insert := func(k int) {
				t.Helper()
				ts := tsFor[k%len(tsFor)] + int64(n)
				if err := tab.Insert([]schema.Row{usageRow(1, int64(k), ts, 0, int64(n))}); err != nil {
					t.Fatal(err)
				}
				n++
			}
			for i := 0; i < 30; i++ {
				insert(i)
			}
			if err := tab.FlushAll(); err != nil {
				t.Fatal(err)
			}
			for i := 30; i < 50; i++ {
				insert(i)
			}
			// Leave the last batch unflushed: crashes here must still
			// recover exactly the flushed prefix.
			return n, false
		},
	})
}

// TestCrashAtEveryBarrierAsyncPipeline is the dependency-graph kill test
// for the concurrent flush pipeline: inserts alternate between time
// periods (building flush-dependency edges), tablets seal at a tiny
// FlushSize while TWO background workers write groups concurrently, and
// the harness snapshots a crash image at every durability barrier those
// workers cross — i.e. it kills the process mid-pipeline, between
// concurrent tablet writes and in-order descriptor commits. Every
// recovered image must still be an exact prefix of insertion order: the
// in-order commit stage is the thing under test.
func TestCrashAtEveryBarrierAsyncPipeline(t *testing.T) {
	runCrashHarness(t, crashWorkload{
		name: "async-pipeline",
		opts: Options{FlushWorkers: 2, FlushSize: 1 << 10},
		run: func(t *testing.T, tab *Table, clk *clock.Fake) (int, bool) {
			now := clk.Now()
			tsFor := []int64{now, now - 30*clock.Hour, now - 20*clock.Day}
			n := 0
			for batch := 0; batch < 12; batch++ {
				rows := make([]schema.Row, 0, 20)
				for i := 0; i < 20; i++ {
					ts := tsFor[n%len(tsFor)] + int64(n)
					rows = append(rows, usageRow(1, int64(n%7), ts, 0, int64(n)))
					n++
				}
				if err := tab.Insert(rows); err != nil {
					t.Fatal(err)
				}
			}
			// Drain so the final image must hold every row; the interesting
			// crash points were already snapped while workers raced.
			if err := tab.FlushAll(); err != nil {
				t.Fatal(err)
			}
			return n, true
		},
	})
}

// TestCrashAtEveryBarrierDuringMerge: two flushed batches in the same
// period, then a merge — crashes land between the merge output's rename and
// the descriptor update that publishes it, the window where an orphan
// output and live inputs coexist.
func TestCrashAtEveryBarrierDuringMerge(t *testing.T) {
	runCrashHarness(t, crashWorkload{
		name: "merge",
		opts: Options{MergeDelay: 1},
		run: func(t *testing.T, tab *Table, clk *clock.Fake) (int, bool) {
			now := clk.Now()
			n := 0
			batch := func() {
				t.Helper()
				for i := 0; i < 30; i++ {
					if err := tab.Insert([]schema.Row{usageRow(1, int64(n), now-clock.Hour+int64(n), 0, int64(n))}); err != nil {
						t.Fatal(err)
					}
					n++
				}
				if err := tab.FlushAll(); err != nil {
					t.Fatal(err)
				}
			}
			batch()
			batch()
			clk.Advance(2 * clock.Second)
			if _, err := tab.MergeUntilStable(); err != nil {
				t.Fatal(err)
			}
			return n, true
		},
	})
}
