package core

import (
	"fmt"
	"path/filepath"

	"littletable/internal/period"
	"littletable/internal/schema"
	"littletable/internal/tablet"
)

// DeleteWhere implements the bulk delete the paper's conclusion says
// Meraki was investigating "to simplify compliance with regional privacy
// laws" (§7). It removes every row inside the two-dimensional box q for
// which filter also returns true (nil filter = everything in the box),
// returning the number of rows removed.
//
// Age-based TTL expiry remains the cheap path (§3.1); DeleteWhere is the
// targeted one: it first flushes in-memory tablets (holding the insert
// lock, so no writer interleaves), then rewrites each on-disk tablet that
// overlaps the box without the doomed rows — dropping a tablet outright
// when nothing survives — in one atomic descriptor update per tablet.
// Queries running concurrently keep their snapshots via refcounts.
func (t *Table) DeleteWhere(q Query, filter func(schema.Row) bool) (int64, error) {
	if q.MinTs > q.MaxTs {
		return 0, fmt.Errorf("%w: MinTs %d > MaxTs %d", ErrBadQuery, q.MinTs, q.MaxTs)
	}
	t.insertMu.Lock()
	defer t.insertMu.Unlock()
	// Rows only in memory must reach disk form so one code path handles
	// all of them.
	if err := t.flushPending(); err != nil {
		return 0, err
	}

	// Write side of maintMu: a bulk delete rewrites arbitrary tablets and
	// must not interleave with in-flight merges of the same span.
	t.maintMu.Lock()
	defer t.maintMu.Unlock()

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return 0, ErrTableClosed
	}
	sc := t.sc
	var victims []*diskTablet
	for _, dt := range t.disk {
		if dt.busy {
			continue
		}
		if dt.rec.MinTs <= q.MaxTs && dt.rec.MaxTs >= q.MinTs {
			dt.busy = true
			t.acquireLocked(dt)
			victims = append(victims, dt)
		}
	}
	t.mu.Unlock()

	var deleted int64
	for _, dt := range victims {
		n, err := t.rewriteWithout(sc, dt, q, filter)
		if err != nil {
			// Release remaining victims before bailing.
			t.mu.Lock()
			for _, v := range victims {
				v.busy = false
			}
			t.mu.Unlock()
			for _, v := range victims {
				t.release(v)
			}
			return deleted, err
		}
		deleted += n
	}
	t.mu.Lock()
	for _, v := range victims {
		v.busy = false
	}
	t.mu.Unlock()
	for _, v := range victims {
		t.release(v)
	}
	return deleted, nil
}

// rewriteWithout replaces one tablet with a copy lacking the rows that
// match (box ∧ filter). Returns rows removed.
func (t *Table) rewriteWithout(sc *schema.Schema, dt *diskTablet, q Query, filter func(schema.Row) bool) (int64, error) {
	inBox := func(row schema.Row) bool {
		ts := sc.Ts(row)
		if ts < q.MinTs || ts > q.MaxTs {
			return false
		}
		if q.Lower != nil {
			c := sc.CompareRowToKey(row, q.Lower)
			if c < 0 || (c == 0 && !q.LowerInc) {
				return false
			}
		}
		if q.Upper != nil {
			c := sc.CompareRowToKey(row, q.Upper)
			if c > 0 || (c == 0 && !q.UpperInc) {
				return false
			}
		}
		return filter == nil || filter(row)
	}

	// First pass: does anything actually match? Avoid rewriting tablets
	// the box only grazes by timespan.
	tabSc := dt.tab.Schema()
	probe := dt.tab.Cursor(true)
	any := false
	var kept int64
	for probe.Next() {
		if inBox(sc.Translate(tabSc, probe.Row())) {
			any = true
		} else {
			kept++
		}
	}
	if err := probe.Err(); err != nil {
		return 0, err
	}
	if !any {
		return 0, nil
	}

	t.mu.Lock()
	seq := t.nextSeq
	t.nextSeq++
	now := t.opts.Clock.Now()
	t.mu.Unlock()

	var removed int64
	var out *diskTablet
	if kept > 0 {
		path := filepath.Join(t.dir, tabletFileName(seq))
		w, err := tablet.Create(path, sc, tablet.WriterOptions{
			BlockSize:          t.opts.BlockSize,
			DisableCompression: t.opts.DisableCompression,
			DisableBloom:       t.opts.DisableBloom,
			Encoding:           t.opts.BlockEncoding,
			Sync:               t.opts.SyncWrites,
			FS:                 t.opts.FS,
		})
		if err != nil {
			return 0, err
		}
		c := dt.tab.Cursor(true)
		for c.Next() {
			row := sc.Translate(tabSc, c.Row())
			if inBox(row) {
				removed++
				continue
			}
			if err := w.Append(row); err != nil {
				_ = w.Abort() // best-effort cleanup; the original error wins
				return 0, err
			}
		}
		if err := c.Err(); err != nil {
			_ = w.Abort() // best-effort cleanup; the original error wins
			return 0, err
		}
		info, err := w.Close()
		if err != nil {
			return 0, err
		}
		t.stats.addEncode(info.Enc)
		tab, err := tablet.OpenFS(t.opts.FS, path)
		if err != nil {
			_ = t.opts.FS.Remove(path)
			return 0, fmt.Errorf("core: reopen rewritten tablet: %w", err)
		}
		t.attachCache(tab)
		out = &diskTablet{
			rec: tabletRecord{
				File:     filepath.Base(path),
				Seq:      seq,
				RowCount: info.RowCount,
				MinTs:    info.MinTs,
				MaxTs:    info.MaxTs,
				Bytes:    info.Bytes,
			},
			tab:       tab,
			path:      path,
			refs:      1,
			addedAt:   now,
			wroteGran: period.For(info.MinTs, now).Gran,
		}
	} else {
		removed = dt.rec.RowCount
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		if out != nil {
			out.tab.Close()
		}
		return 0, ErrTableClosed
	}
	t.dropLocked(dt)
	if out != nil {
		t.disk = append(t.disk, out)
		t.sortDiskLocked()
	}
	err := t.writeDescriptorLocked()
	t.mu.Unlock()
	if err != nil {
		return 0, fmt.Errorf("core: descriptor update after delete: %w", err)
	}
	return removed, nil
}
