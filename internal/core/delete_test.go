package core

import (
	"math/rand"
	"sort"
	"testing"

	"littletable/internal/clock"
	"littletable/internal/schema"
)

func TestDeleteWhereBasic(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for d := int64(0); d < 10; d++ {
		for s := int64(0); s < 10; s++ {
			mustInsert(t, tt.Table, usageRow(1, d, now-s*clock.Minute, 0, d*10+s))
		}
	}
	// Delete device 3 entirely (the "privacy request for one client" case).
	q := NewQuery()
	q.Lower = key(1, 3)
	q.Upper = key(1, 3)
	n, err := tt.DeleteWhere(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("deleted %d rows, want 10", n)
	}
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 90 {
		t.Fatalf("%d rows remain, want 90", len(rows))
	}
	for _, r := range rows {
		if r[1].Int == 3 {
			t.Fatal("device 3 row survived deletion")
		}
	}
}

func TestDeleteWhereTimeSlice(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for s := int64(0); s < 20; s++ {
		mustInsert(t, tt.Table, usageRow(1, 1, now-s*clock.Hour, 0, s))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Delete hours 5..9 back.
	q := NewQuery()
	q.MinTs = now - 9*clock.Hour
	q.MaxTs = now - 5*clock.Hour
	n, err := tt.DeleteWhere(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("deleted %d, want 5", n)
	}
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 15 {
		t.Fatalf("%d rows remain", len(rows))
	}
	for _, r := range rows {
		ts := r[2].Int
		if ts >= q.MinTs && ts <= q.MaxTs {
			t.Fatal("row inside deleted slice survived")
		}
	}
}

func TestDeleteWhereWithFilter(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for i := int64(0); i < 40; i++ {
		mustInsert(t, tt.Table, usageRow(1, i%4, now-i*clock.Second, float64(i%2), i))
	}
	// Delete only rows whose rate is 1 (a residual predicate).
	n, err := tt.DeleteWhere(NewQuery(), func(row schema.Row) bool {
		return row[3].Float == 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("deleted %d, want 20", n)
	}
	for _, r := range queryBox(t, tt.Table, NewQuery()) {
		if r[3].Float == 1 {
			t.Fatal("filtered row survived")
		}
	}
}

func TestDeleteWholeTabletDropsFile(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	old := now - 30*clock.Day
	for i := int64(0); i < 20; i++ {
		mustInsert(t, tt.Table, usageRow(9, i, old+i, 0, i))
	}
	for i := int64(0); i < 20; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now+i, 0, 100+i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	before := tt.DiskTabletCount()
	// The old-period tablet holds only network 9; deleting network 9 in
	// its time range should drop the whole tablet rather than rewrite it.
	q := NewQuery()
	q.Lower = key(9)
	q.Upper = key(9)
	n, err := tt.DeleteWhere(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("deleted %d", n)
	}
	if tt.DiskTabletCount() != before-1 {
		t.Fatalf("tablet count %d, want %d", tt.DiskTabletCount(), before-1)
	}
}

func TestDeleteSurvivesReopen(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for i := int64(0); i < 30; i++ {
		mustInsert(t, tt.Table, usageRow(1, i%3, now-i*clock.Minute, 0, i))
	}
	q := NewQuery()
	q.Lower = key(1, 1)
	q.Upper = key(1, 1)
	if _, err := tt.DeleteWhere(q, nil); err != nil {
		t.Fatal(err)
	}
	tt2 := reopen(t, tt)
	for _, r := range queryBox(t, tt2.Table, NewQuery()) {
		if r[1].Int == 1 {
			t.Fatal("deleted device resurrected after reopen")
		}
	}
}

func TestDeleteWithConcurrentReader(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for i := int64(0); i < 100; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now, 0, i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	it, err := tt.Query(NewQuery())
	if err != nil {
		t.Fatal(err)
	}
	// Delete everything while the iterator is open; its snapshot must
	// keep working.
	n, err := tt.DeleteWhere(NewQuery(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("deleted %d", n)
	}
	count := 0
	for it.Next() {
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if count != 100 {
		t.Fatalf("snapshot iterator saw %d rows", count)
	}
	if rows := queryBox(t, tt.Table, NewQuery()); len(rows) != 0 {
		t.Fatalf("post-delete query saw %d rows", len(rows))
	}
}

func TestDeleteThenReinsert(t *testing.T) {
	// Uniqueness bookkeeping must allow re-inserting a deleted key.
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	row := usageRow(1, 1, now, 1.5, 0)
	mustInsert(t, tt.Table, row)
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := tt.DeleteWhere(NewQuery(), nil); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, tt.Table, usageRow(1, 1, now, 2.5, 1))
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 1 || rows[0][3].Float != 2.5 {
		t.Fatalf("reinsert after delete: %v", rows)
	}
}

func TestDeleteInvalidBox(t *testing.T) {
	tt := newTestTable(t, Options{})
	q := NewQuery()
	q.MinTs, q.MaxTs = 5, 1
	if _, err := tt.DeleteWhere(q, nil); err == nil {
		t.Fatal("inverted box accepted")
	}
}

// TestDeleteMatchesReferenceModel: randomized boxes deleted from a model
// and the engine must leave identical survivors.
func TestDeleteMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	tt := newTestTable(t, Options{FlushSize: 2048})
	now := tt.clk.Now()
	sc := tt.Schema()
	var model []schema.Row
	for i := 0; i < 300; i++ {
		row := usageRow(rng.Int63n(3), rng.Int63n(5), now-rng.Int63n(5*clock.Day), 0, int64(i))
		if err := tt.Insert([]schema.Row{row}); err != nil {
			continue
		}
		model = append(model, row)
		if i%80 == 0 {
			if err := tt.FlushAll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for trial := 0; trial < 6; trial++ {
		q := randomBox(rng, now)
		q.Descending = false
		n, err := tt.DeleteWhere(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceFilter(sc, model, q)
		if int(n) != len(want) {
			t.Fatalf("trial %d: engine deleted %d, model %d", trial, n, len(want))
		}
		// Remove from model.
		doomed := map[int64]bool{}
		for _, r := range want {
			doomed[r[4].Int] = true
		}
		var next []schema.Row
		for _, r := range model {
			if !doomed[r[4].Int] {
				next = append(next, r)
			}
		}
		model = next
		// Survivors identical.
		got := queryBox(t, tt.Table, NewQuery())
		sort.Slice(model, func(i, j int) bool { return sc.CompareKeys(model[i], model[j]) < 0 })
		if len(got) != len(model) {
			t.Fatalf("trial %d: %d survivors, model %d", trial, len(got), len(model))
		}
		for i := range got {
			if sc.CompareKeys(got[i], model[i]) != 0 {
				t.Fatalf("trial %d: survivor %d differs", trial, i)
			}
		}
	}
}
