package core

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"littletable/internal/schema"
	"littletable/internal/vfs"
)

// descriptorFile is the name of a table's descriptor within its directory.
const descriptorFile = "desc.json"

// quarantineSuffix marks tablet files set aside because they failed to
// open: corrupt, truncated, or unreadable. Quarantined files are dropped
// from the descriptor but kept on disk for post-mortems; they are never
// deleted by orphan cleaning.
const quarantineSuffix = ".quarantine"

// tabletRecord is one on-disk tablet as named by the descriptor. LittleTable
// caches each tablet's timespan and "writes the list of on-disk tablets and
// their timespans to a table descriptor file after every change" (§3.2).
type tabletRecord struct {
	File     string `json:"file"`
	Seq      uint64 `json:"seq"` // creation order, for flush-order recovery
	RowCount int64  `json:"rows"`
	MinTs    int64  `json:"min_ts"`
	MaxTs    int64  `json:"max_ts"`
	Bytes    int64  `json:"bytes"`
	// Dir is the tablet's directory when tiered to cold storage (§6's
	// LHAM-style offload); empty means the table's own directory.
	Dir string `json:"dir,omitempty"`
}

// descriptor is the persistent root of a table: schema, TTL, and the
// authoritative tablet list. A tablet file not named here does not exist as
// far as recovery is concerned.
type descriptor struct {
	Name    string         `json:"name"`
	Schema  *schema.Schema `json:"schema"`
	TTL     int64          `json:"ttl_us"` // 0 = no expiry
	NextSeq uint64         `json:"next_seq"`
	Tablets []tabletRecord `json:"tablets"`
	Rollups []RollupRule   `json:"rollups,omitempty"` // continuous-downsampling rules
}

// writeDescriptor persists d atomically: write to a temporary file, then
// rename over the previous version (§3.2). With sync, the file is fsynced
// before the rename and the directory after it — the rename itself is not
// durable on ext4 until the directory's metadata reaches disk.
//
// Descriptor commits run under Table.mu by design: the tablet list the
// descriptor records and the in-memory list must change as one, or a
// crash between them replays rows into a tablet the descriptor already
// owns (§5 prefix durability). Commits are rare (flush/merge/install,
// not per-insert), so the stall is bounded and deliberate.
//
//ltlint:ignore lockorder descriptor commit and in-memory tablet list must be a single atomic transition under Table.mu; see comment above
func writeDescriptor(fsys vfs.FS, dir string, d *descriptor, sync bool) error {
	data, err := json.MarshalIndent(d, "", " ")
	if err != nil {
		return fmt.Errorf("core: marshal descriptor: %w", err)
	}
	tmp := filepath.Join(dir, descriptorFile+".tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			fsys.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, descriptorFile)); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if sync {
		if err := fsys.SyncDir(dir); err != nil {
			return err
		}
	}
	return nil
}

// readDescriptor loads a table's descriptor.
func readDescriptor(fsys vfs.FS, dir string) (*descriptor, error) {
	data, err := vfs.ReadFile(fsys, filepath.Join(dir, descriptorFile))
	if err != nil {
		return nil, err
	}
	var d descriptor
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("core: parse descriptor: %w", err)
	}
	if d.Schema == nil {
		return nil, fmt.Errorf("core: descriptor has no schema")
	}
	sort.Slice(d.Tablets, func(i, j int) bool { return d.Tablets[i].Seq < d.Tablets[j].Seq })
	return &d, nil
}

// cleanOrphans removes tablet files in dir that the descriptor does not
// name: leftovers from a crash between tablet write and descriptor update.
// Such rows were never durable (§3.1's guarantee is prefix-of-insertion
// order, anchored at the descriptor). Quarantined files are left alone.
func cleanOrphans(fsys vfs.FS, dir string, d *descriptor) error {
	named := make(map[string]bool, len(d.Tablets))
	for _, t := range d.Tablets {
		named[t.File] = true
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || name == descriptorFile || strings.HasSuffix(name, quarantineSuffix) {
			continue
		}
		if strings.HasSuffix(name, ".tab") && !named[name] {
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// tabletFileName names tablet files by creation sequence.
func tabletFileName(seq uint64) string { return fmt.Sprintf("%012d.tab", seq) }
