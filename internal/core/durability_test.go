package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"littletable/internal/clock"
	"littletable/internal/schema"
)

// reopen simulates a crash: the current Table is abandoned (its memtables
// lost, like a process death) and the directory is reopened.
func reopen(t *testing.T, tt *testTable) *testTable {
	t.Helper()
	tt.Table.Close()
	tab, err := OpenTable(tt.dir, "usage", tt.opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tab.Close() })
	return &testTable{Table: tab, clk: tt.clk, dir: tt.dir}
}

func seqsOf(rows []schema.Row) []int64 {
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[4].Int
	}
	return out
}

// isPrefixSet reports whether seqs is exactly {0, 1, ..., k-1} for some k.
func isPrefixSet(seqs []int64) bool {
	seen := make(map[int64]bool, len(seqs))
	for _, s := range seqs {
		if seen[s] {
			return false
		}
		seen[s] = true
	}
	for i := int64(0); i < int64(len(seqs)); i++ {
		if !seen[i] {
			return false
		}
	}
	return true
}

func TestCrashLosesOnlyUnflushedSuffix(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for i := int64(0); i < 50; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now, 0, i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for i := int64(50); i < 80; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now, 0, i))
	}
	// Crash without flushing the last 30 rows.
	tt2 := reopen(t, tt)
	rows := queryBox(t, tt2.Table, NewQuery())
	if len(rows) != 50 {
		t.Fatalf("recovered %d rows, want the flushed 50", len(rows))
	}
	if !isPrefixSet(seqsOf(rows)) {
		t.Error("recovered rows are not an insertion-order prefix")
	}
}

// TestPrefixDurabilityProperty drives randomized insert patterns across
// periods (creating multiple filling tablets and dependency edges, §3.4.3),
// flushes a random number of groups, crashes, and verifies the recovered
// rows are exactly a prefix of insertion order. This is invariant 3 of
// DESIGN.md.
func TestPrefixDurabilityProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tt := newTestTable(t, Options{FlushSize: 4096})
			now := tt.clk.Now()
			// Timestamps drawn from different periods: today (4h bins),
			// this week (day bins), older (week bins).
			tsChoices := []int64{
				now,
				now - 2*clock.Hour,
				now - 30*clock.Hour,
				now - 3*clock.Day,
				now - 20*clock.Day,
				now - 100*clock.Day,
			}
			n := 100 + rng.Intn(300)
			for i := 0; i < n; i++ {
				ts := tsChoices[rng.Intn(len(tsChoices))] + int64(i)
				mustInsert(t, tt.Table, usageRow(1, rng.Int63n(20), ts, 0, int64(i)))
			}
			// Flush a random number of pending groups, sometimes none.
			steps := rng.Intn(8)
			for s := 0; s < steps; s++ {
				if _, err := tt.FlushStep(); err != nil {
					t.Fatal(err)
				}
			}
			tt2 := reopen(t, tt)
			rows := queryBox(t, tt2.Table, NewQuery())
			if !isPrefixSet(seqsOf(rows)) {
				t.Fatalf("seed %d: recovered rows are not a prefix of insertion order (%d rows)", seed, len(rows))
			}
		})
	}
}

func TestOrphanTabletsCleanedOnOpen(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	mustInsert(t, tt.Table, usageRow(1, 1, now, 0, 0))
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	tableDir := filepath.Join(tt.dir, "usage")
	// Simulate a crash between tablet write and descriptor update: drop an
	// orphan .tab and a .tmp in the directory.
	orphan := filepath.Join(tableDir, "999999999999.tab")
	if err := os.WriteFile(orphan, []byte("partial tablet"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(tableDir, "000000000777.tab.tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	tt2 := reopen(t, tt)
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphan tablet not cleaned")
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("tmp file not cleaned")
	}
	rows := queryBox(t, tt2.Table, NewQuery())
	if len(rows) != 1 {
		t.Fatalf("recovered %d rows", len(rows))
	}
}

func TestRecoveryPreservesAllState(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for i := int64(0); i < 200; i++ {
		mustInsert(t, tt.Table, usageRow(i%3, i%7, now-i*clock.Minute, float64(i), i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	want := queryBox(t, tt.Table, NewQuery())
	tt2 := reopen(t, tt)
	got := queryBox(t, tt2.Table, NewQuery())
	if len(got) != len(want) {
		t.Fatalf("recovered %d rows, want %d", len(got), len(want))
	}
	sc := tt2.Schema()
	for i := range want {
		if sc.CompareKeys(got[i], want[i]) != 0 || got[i][3].Float != want[i][3].Float {
			t.Fatalf("row %d differs after recovery", i)
		}
	}
	// maxTs must be recovered for the uniqueness fast path to stay sound.
	if err := tt2.Insert([]schema.Row{usageRow(0, 0, now, 99, 999)}); err == nil {
		t.Error("duplicate accepted after recovery")
	}
}

func TestFlushDependencyCycle(t *testing.T) {
	// Interleave two periods so the dependency graph gets a cycle: a→b→a.
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	old := now - 30*clock.Day
	mustInsert(t, tt.Table, usageRow(1, 1, now, 0, 0)) // tablet A (today)
	mustInsert(t, tt.Table, usageRow(1, 1, old, 0, 1)) // tablet B (old week), edge A→B
	mustInsert(t, tt.Table, usageRow(1, 2, now, 0, 2)) // tablet A again, edge B→A
	mustInsert(t, tt.Table, usageRow(1, 2, old, 0, 3)) // tablet B, edge A→B
	// Force freeze of one of them via FlushAll's closure handling.
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Both tablets must have flushed; all four rows durable.
	tt2 := reopen(t, tt)
	rows := queryBox(t, tt2.Table, NewQuery())
	if len(rows) != 4 {
		t.Fatalf("recovered %d rows, want 4", len(rows))
	}
}

func TestSizeTriggeredFreezePullsDependencies(t *testing.T) {
	// Tablet B (old period) receives one row, then tablet A (current)
	// fills past the flush threshold. Freezing A must pull B into the same
	// flush group even though B is tiny, or a crash could retain A's rows
	// while losing B's earlier row.
	tt := newTestTable(t, Options{FlushSize: 8 * 1024})
	now := tt.clk.Now()
	old := now - 30*clock.Day
	mustInsert(t, tt.Table, usageRow(5, 5, old, 0, 0)) // B
	i := int64(1)
	for tt.MemTabletCount() > 0 && i < 10000 {
		// Fill A until it freezes (joins pending with B).
		mustInsert(t, tt.Table, usageRow(1, i, now, 0, i))
		i++
		pend := func() int {
			tt.mu.Lock()
			defer tt.mu.Unlock()
			return len(tt.pending)
		}()
		if pend > 0 {
			break
		}
	}
	tt.mu.Lock()
	if len(tt.pending) != 1 {
		tt.mu.Unlock()
		t.Fatalf("expected one pending group, got %d", len(tt.pending))
	}
	groupSize := len(tt.pending[0].tablets)
	tt.mu.Unlock()
	if groupSize != 2 {
		t.Fatalf("flush group has %d tablets, want 2 (dependency pulled in)", groupSize)
	}
	// One FlushStep publishes both atomically.
	if _, err := tt.FlushStep(); err != nil {
		t.Fatal(err)
	}
	tt2 := reopen(t, tt)
	rows := queryBox(t, tt2.Table, NewQuery())
	if !isPrefixSet(seqsOf(rows)) {
		t.Error("crash after dependency flush broke the prefix property")
	}
	found := false
	for _, r := range rows {
		if r[0].Int == 5 {
			found = true
		}
	}
	if !found {
		t.Error("dependency tablet's row missing after flush")
	}
}

func TestDescriptorSurvivesTTLAndMergeUpdates(t *testing.T) {
	tt := newTestTable(t, Options{MergeDelay: 1})
	now := tt.clk.Now()
	for i := int64(0); i < 100; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now-clock.Hour, 0, i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	mustFlushMore(t, tt, now, 100)
	tt.clk.Advance(2 * clock.Second)
	if _, err := tt.MergeUntilStable(); err != nil {
		t.Fatal(err)
	}
	tt2 := reopen(t, tt)
	rows := queryBox(t, tt2.Table, NewQuery())
	if len(rows) != 200 {
		t.Fatalf("recovered %d rows after merge + reopen", len(rows))
	}
}

// mustFlushMore inserts another 100 rows in the same period and flushes,
// giving the merge policy adjacent same-period inputs.
func mustFlushMore(t *testing.T, tt *testTable, now int64, base int64) {
	t.Helper()
	for i := int64(0); i < 100; i++ {
		mustInsert(t, tt.Table, usageRow(2, i, now-clock.Hour+i+1, 0, base+i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
}
