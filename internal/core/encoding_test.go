package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"littletable/internal/block"
	"littletable/internal/clock"
)

// buildEncodingDataset drives tt through a deterministic insert/flush/merge
// schedule seeded by rng. Both tables in the differential test run this
// with identically-seeded generators, so any divergence in what they later
// serve is the encoder's fault, not the schedule's.
func buildEncodingDataset(t *testing.T, rng *rand.Rand, tt *testTable) int {
	t.Helper()
	n := 0
	base := tt.clk.Now()
	for batch := 0; batch < 12; batch++ {
		for i := 0; i < 40; i++ {
			net := int64(1 + rng.Intn(3))
			dev := int64(rng.Intn(20))
			ts := base + int64(batch)*clock.Hour + int64(i)*clock.Second
			mustInsert(t, tt.Table, usageRow(net, dev, ts, float64(rng.Intn(1000))/8, int64(n)))
			n++
		}
		if err := tt.FlushAll(); err != nil {
			t.Fatal(err)
		}
		tt.clk.Advance(clock.Hour)
	}
	// Age everything past MergeDelay and run maintenance to completion so
	// the dataset has been through the merge (re-encode) path, not just
	// the flush path.
	tt.clk.Advance(2 * clock.Day)
	if err := tt.MaintainUntilQuiet(); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestEncodingDifferentialAutoVsLegacy is the columnar encoder's
// correctness proof at the engine level: two tables built through an
// identical randomized schedule — one writing auto-encoded blocks, one
// pinned to the legacy row-major layout — must serve bit-identical rows
// for full scans and random bounding boxes, at every query parallelism,
// after background merges have rewritten both.
func TestEncodingDifferentialAutoVsLegacy(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			mk := func(mode block.Mode, seed int64) (*testTable, int) {
				opts := Options{
					FlushSize:        2048,
					MergeDelay:       1 * clock.Second,
					MergeWorkers:     2,
					QueryParallelism: par,
					BlockEncoding:    mode,
				}
				tt := newTestTable(t, opts)
				n := buildEncodingDataset(t, rand.New(rand.NewSource(seed)), tt)
				return tt, n
			}
			seed := int64(100 + par)
			auto, nAuto := mk(block.ModeAuto, seed)
			legacy, nLegacy := mk(block.ModeLegacy, seed)
			if nAuto != nLegacy {
				t.Fatalf("schedules diverged: %d vs %d rows", nAuto, nLegacy)
			}

			// The comparison is only meaningful if the auto table actually
			// used the columnar layout somewhere.
			if s := auto.Stats().Snapshot(); s.BlocksEncodedColumnar == 0 {
				t.Fatal("auto table never chose the columnar layout; differential is vacuous")
			}
			if s := legacy.Stats().Snapshot(); s.BlocksEncodedColumnar != 0 {
				t.Fatalf("legacy table encoded %d columnar blocks", s.BlocksEncodedColumnar)
			}

			compare := func(q Query, label string) {
				t.Helper()
				got := queryBox(t, auto.Table, q)
				want := queryBox(t, legacy.Table, q)
				if len(got) != len(want) {
					t.Fatalf("%s: auto returned %d rows, legacy %d", label, len(got), len(want))
				}
				for i := range want {
					for j := range want[i] {
						if !got[i][j].Equal(want[i][j]) {
							t.Fatalf("%s: row %d col %d: auto %v, legacy %v",
								label, i, j, got[i][j], want[i][j])
						}
					}
				}
			}
			compare(NewQuery(), "full scan")
			rng := rand.New(rand.NewSource(seed * 7))
			for trial := 0; trial < 25; trial++ {
				compare(randomBox(rng, testStart), fmt.Sprintf("box %d", trial))
			}

			// Crash-reopen both: the on-disk images alone must still agree.
			compare2 := func(q Query) {
				t.Helper()
				a, l := reopen(t, auto), reopen(t, legacy)
				got := queryBox(t, a.Table, q)
				want := queryBox(t, l.Table, q)
				if len(got) != len(want) {
					t.Fatalf("reopen: auto %d rows, legacy %d", len(got), len(want))
				}
				for i := range want {
					for j := range want[i] {
						if !got[i][j].Equal(want[i][j]) {
							t.Fatalf("reopen: row %d col %d differs", i, j)
						}
					}
				}
			}
			compare2(NewQuery())
		})
	}
}

// TestCorruptFixtureQuarantined feeds the checked-in damaged v1 fixture
// through the open-time verification path: a tablet file whose block bytes
// fail their checksum must be quarantined, not served.
func TestCorruptFixtureQuarantined(t *testing.T) {
	tt := newTestTable(t, Options{VerifyOnOpen: true, Logf: quietLogf})
	now := tt.clk.Now()
	for i := int64(0); i < 10; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now, 0, i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	tableDir := filepath.Join(tt.dir, "usage")
	tabs := tabletFiles(t, tableDir)
	if len(tabs) != 1 {
		t.Fatalf("expected 1 tablet, found %d", len(tabs))
	}
	fixture, err := os.ReadFile(filepath.Join("..", "tablet", "testdata", "v1_corrupt.tab"))
	if err != nil {
		t.Fatalf("golden corrupt fixture missing: %v", err)
	}
	if err := os.WriteFile(tabs[0], fixture, 0o644); err != nil {
		t.Fatal(err)
	}

	tt2 := reopen(t, tt)
	if got := tt2.Stats().TabletsQuarantined.Load(); got != 1 {
		t.Errorf("TabletsQuarantined = %d, want 1", got)
	}
	if n := tt2.DiskTabletCount(); n != 0 {
		t.Errorf("DiskTabletCount = %d, want 0", n)
	}
	if _, err := os.Stat(tabs[0] + quarantineSuffix); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
}
