package core

import (
	"errors"
	"fmt"
	"path/filepath"

	"littletable/internal/tablet"
)

// FlushStep writes the oldest pending flush group to disk — one on-disk
// tablet per frozen in-memory tablet — and publishes them all in a single
// atomic descriptor update (§3.4.3). It reports whether a group was
// flushed. Safe to call concurrently with inserts and queries; concurrent
// FlushStep calls serialize.
//
// A failed flush loses nothing: the group stays at the head of the pending
// queue and the next FlushStep retries it. Consecutive failures and the
// eventual recovery are counted in Stats.
func (t *Table) FlushStep() (bool, error) {
	ok, err := t.flushStep()
	t.mu.Lock()
	if err != nil && !errors.Is(err, ErrTableClosed) {
		t.flushFails++
		t.stats.FlushFailures.Add(1)
	} else if ok && t.flushFails > 0 {
		t.flushFails = 0
		t.stats.FaultRecoveries.Add(1)
	}
	t.mu.Unlock()
	return ok, err
}

func (t *Table) flushStep() (bool, error) {
	t.flushMu.Lock()
	defer t.flushMu.Unlock()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return false, ErrTableClosed
	}
	if len(t.pending) == 0 {
		t.mu.Unlock()
		return false, nil
	}
	group := t.pending[0]
	// Reserve sequence numbers while holding the lock; write files after
	// releasing it so inserts and queries proceed during the I/O.
	seqs := make([]uint64, len(group.tablets))
	for i := range group.tablets {
		seqs[i] = t.nextSeq
		t.nextSeq++
	}
	now := t.opts.Clock.Now()
	t.mu.Unlock()

	newDisks := make([]*diskTablet, 0, len(group.tablets))
	for i, ft := range group.tablets {
		if ft.mt.Empty() {
			continue
		}
		path := filepath.Join(t.dir, tabletFileName(seqs[i]))
		w, err := tablet.Create(path, ft.mt.Schema(), tablet.WriterOptions{
			BlockSize:          t.opts.BlockSize,
			DisableCompression: t.opts.DisableCompression,
			DisableBloom:       t.opts.DisableBloom,
			Sync:               t.opts.SyncWrites,
			FS:                 t.opts.FS,
		})
		if err != nil {
			t.abortDisks(newDisks)
			return false, err
		}
		c := ft.mt.Cursor(true)
		for c.Next() {
			if err := w.Append(c.Row()); err != nil {
				w.Abort()
				t.abortDisks(newDisks)
				return false, err
			}
		}
		info, err := w.Close()
		if err != nil {
			t.abortDisks(newDisks)
			return false, err
		}
		tab, err := tablet.OpenFS(t.opts.FS, path)
		if err != nil {
			t.opts.FS.Remove(path)
			t.abortDisks(newDisks)
			return false, fmt.Errorf("core: reopen flushed tablet: %w", err)
		}
		t.attachCache(tab)
		newDisks = append(newDisks, &diskTablet{
			rec: tabletRecord{
				File:     filepath.Base(path),
				Seq:      seqs[i],
				RowCount: info.RowCount,
				MinTs:    info.MinTs,
				MaxTs:    info.MaxTs,
				Bytes:    info.Bytes,
			},
			tab:       tab,
			path:      path,
			refs:      1,
			addedAt:   now,
			wroteGran: ft.per.Gran,
		})
		t.stats.TabletsFlushed.Add(1)
		t.stats.BytesFlushed.Add(info.Bytes)
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.abortDisks(newDisks)
		return false, ErrTableClosed
	}
	// The group is still pending[0]: FlushStep calls serialize on flushMu
	// and only FlushStep removes groups. Verify anyway.
	if len(t.pending) == 0 || t.pending[0].tablets[0] != group.tablets[0] {
		t.mu.Unlock()
		t.abortDisks(newDisks)
		return false, fmt.Errorf("core: pending queue mutated during flush")
	}
	t.pending = t.pending[1:]
	t.disk = append(t.disk, newDisks...)
	t.sortDiskLocked()
	err := t.writeDescriptorLocked()
	if err != nil {
		// Roll back: the files exist but are not durable; drop them.
		for _, dt := range newDisks {
			t.dropLocked(dt)
		}
		// The rows are lost from memory; surface the error loudly.
		t.mu.Unlock()
		return false, fmt.Errorf("core: descriptor update failed, rows lost: %w", err)
	}
	t.flushCond.Broadcast()
	t.mu.Unlock()
	return true, nil
}

// abortDisks closes and deletes tablets written by a flush that could not
// be published; not being in the descriptor, they were never durable, and
// removing them now spares the next open an orphan sweep.
func (t *Table) abortDisks(disks []*diskTablet) {
	for _, dt := range disks {
		dt.tab.Close()
		_ = t.opts.FS.Remove(dt.path)
	}
}

// dropLocked removes dt from the live list (caller updates descriptor) and
// arranges deletion once readers drain. Caller holds t.mu.
func (t *Table) dropLocked(dt *diskTablet) {
	for i, d := range t.disk {
		if d == dt {
			t.disk = append(t.disk[:i], t.disk[i+1:]...)
			break
		}
	}
	dt.dropped = true
	dt.refs--
	if dt.refs == 0 {
		dt.tab.Close()
		_ = t.opts.FS.Remove(dt.path)
	}
}

// FlushAll freezes every filling tablet and drains the pending queue. Used
// at orderly shutdown and by tests; the durability model never requires it.
func (t *Table) FlushAll() error {
	t.insertMu.Lock()
	defer t.insertMu.Unlock()
	return t.flushPending()
}

// FlushBefore is the command §4.1.2 proposes: it "flushes to disk all
// tablets with timestamps before a given value", so aggregators can know
// their source rows are durable instead of assuming anything older than
// 20 minutes has reached disk. Flush-dependency closures may pull newer
// tablets along; over-flushing is always safe.
func (t *Table) FlushBefore(ts int64) error {
	t.insertMu.Lock()
	defer t.insertMu.Unlock()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrTableClosed
	}
	var doomed []*fillingTablet
	for _, ft := range t.filling {
		if ft.mt.Empty() {
			continue
		}
		lo, _ := ft.mt.Timespan()
		if lo < ts {
			doomed = append(doomed, ft)
		}
	}
	for _, ft := range doomed {
		t.freezeLocked(ft)
	}
	t.mu.Unlock()
	for {
		ok, err := t.FlushStep()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// flushPending freezes all filling tablets and drains pending groups.
// Callers hold insertMu.
func (t *Table) flushPending() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrTableClosed
	}
	for _, ft := range t.filling {
		t.freezeLocked(ft)
	}
	t.mu.Unlock()
	for {
		ok, err := t.FlushStep()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// Tick performs one round of time-driven maintenance: age-based freezing
// of filling tablets (§3.4.1's 10-minute bound on data loss), one merge
// round (§3.4.1–3.4.2), and TTL expiry (§3.3). The server calls it
// periodically; tests call it with a fake clock.
func (t *Table) Tick() error {
	now := t.opts.Clock.Now()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrTableClosed
	}
	for _, ft := range t.filling {
		if !ft.mt.Empty() && now-ft.mt.CreatedAt() >= t.opts.FlushAge {
			t.freezeLocked(ft)
		}
	}
	hasPending := len(t.pending) > 0
	t.mu.Unlock()

	if hasPending {
		for {
			ok, err := t.FlushStep()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
		}
	}
	if err := t.expireTTL(now); err != nil {
		return err
	}
	_, err := t.MergeStep()
	return err
}
