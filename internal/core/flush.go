package core

import (
	"errors"
	"fmt"
	"path/filepath"

	"littletable/internal/tablet"
)

// tickFlushRetries bounds how many consecutive flush errors one Tick
// absorbs before moving on to TTL expiry and merging; before this bound a
// single bad flush starved the rest of maintenance until the next tick.
const tickFlushRetries = 3

// FlushStep writes the oldest unclaimed pending flush group to disk — one
// on-disk tablet per frozen in-memory tablet — and publishes every written
// group at the head of the seal order in a single atomic descriptor update
// (§3.4.3). It reports whether it wrote a group. Safe to call concurrently
// with inserts, queries, and other FlushStep calls: each call claims its
// own group, files are written without table locks held, and the commit
// stage only ever publishes a prefix of the seal sequence, so the §3.1
// prefix-durability guarantee holds under concurrent flushing.
//
// A failed write loses nothing: the group returns to the queue and a later
// call retries it. Consecutive failures and the eventual recovery are
// counted in Stats. A failed descriptor commit DOES lose the affected
// rows, exactly as in the serial engine; the loss is counted
// (Stats.CommitFailures, Stats.RowsLost) and returned as ErrRowsLost.
func (t *Table) FlushStep() (bool, error) {
	ok, err := t.flushStep()
	t.mu.Lock()
	if err != nil && !errors.Is(err, ErrTableClosed) {
		t.flushFails++
		t.stats.FlushFailures.Add(1)
	} else if ok && t.flushFails > 0 {
		t.flushFails = 0
		t.stats.FaultRecoveries.Add(1)
	}
	t.mu.Unlock()
	return ok, err
}

func (t *Table) flushStep() (bool, error) {
	// Claim the oldest queued group and reserve its sequence numbers while
	// holding the lock; write files after releasing it so inserts and
	// queries proceed during the I/O.
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return false, ErrTableClosed
	}
	var g *flushGroup
	for _, cand := range t.pending {
		if cand.state == gsQueued {
			g = cand
			break
		}
	}
	if g == nil {
		t.mu.Unlock()
		return false, nil
	}
	g.state = gsWriting
	// Sequence numbers are reserved once, at first claim: claims follow
	// seal order, so Seq stays monotone in seal (= insertion) order, the
	// property descriptor.go's sort and diskLess tie-breaking rely on. A
	// retry after a failed write reuses the original reservation — those
	// seqs were never published.
	if g.seqs == nil {
		g.seqs = make([]uint64, len(g.tablets))
		for i := range g.tablets {
			g.seqs[i] = t.nextSeq
			t.nextSeq++
		}
	}
	now := t.opts.Clock.Now()
	t.mu.Unlock()

	disks, werr := t.writeGroup(g, now)

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.abortDisks(disks)
		return false, ErrTableClosed
	}
	if werr != nil {
		// Nothing lost: requeue the group for a later attempt, keeping its
		// reserved sequence numbers for the retry, and wake waiters so a
		// draining caller re-claims it rather than sleeping.
		g.state = gsQueued
		t.flushCond.Broadcast()
		t.mu.Unlock()
		return false, werr
	}
	g.state = gsWritten
	g.disks = disks
	err := t.commitWrittenLocked()
	t.flushCond.Broadcast()
	t.mu.Unlock()
	return err == nil, err
}

// writeGroup writes one on-disk tablet per non-empty frozen tablet in g and
// reopens each for reading. No table locks are held during the I/O. On
// error it cleans up its own partial output and returns nil tablets.
func (t *Table) writeGroup(g *flushGroup, now int64) ([]*diskTablet, error) {
	newDisks := make([]*diskTablet, 0, len(g.tablets))
	for i, ft := range g.tablets {
		if ft.mt.Empty() {
			continue
		}
		path := filepath.Join(t.dir, tabletFileName(g.seqs[i]))
		w, err := tablet.Create(path, ft.mt.Schema(), tablet.WriterOptions{
			BlockSize:          t.opts.BlockSize,
			DisableCompression: t.opts.DisableCompression,
			DisableBloom:       t.opts.DisableBloom,
			Encoding:           t.opts.BlockEncoding,
			Sync:               t.opts.SyncWrites,
			FS:                 t.opts.FS,
		})
		if err != nil {
			t.abortDisks(newDisks)
			return nil, err
		}
		c := ft.mt.Cursor(true)
		for c.Next() {
			if err := w.Append(c.Row()); err != nil {
				_ = w.Abort() // best-effort cleanup; the original error wins
				t.abortDisks(newDisks)
				return nil, err
			}
		}
		info, err := w.Close()
		if err != nil {
			t.abortDisks(newDisks)
			return nil, err
		}
		t.stats.addEncode(info.Enc)
		tab, err := tablet.OpenFS(t.opts.FS, path)
		if err != nil {
			t.opts.FS.Remove(path)
			t.abortDisks(newDisks)
			return nil, fmt.Errorf("core: reopen flushed tablet: %w", err)
		}
		t.attachCache(tab)
		newDisks = append(newDisks, &diskTablet{
			rec: tabletRecord{
				File:     filepath.Base(path),
				Seq:      g.seqs[i],
				RowCount: info.RowCount,
				MinTs:    info.MinTs,
				MaxTs:    info.MaxTs,
				Bytes:    info.Bytes,
			},
			tab:       tab,
			path:      path,
			refs:      1,
			addedAt:   now,
			wroteGran: ft.per.Gran,
		})
	}
	return newDisks, nil
}

// commitWrittenLocked publishes the longest fully-written prefix of the
// pending queue in one atomic descriptor update. Caller holds t.mu.
//
// Commit strictly follows seal order: a group whose files are on disk but
// whose predecessor is still writing stays uncommitted. Rows sealed later
// were inserted later (sealing clears lastInsert, so no dependency edge
// can point backward across a seal), so the descriptor always names a
// prefix of insertion order — the §3.1 guarantee.
func (t *Table) commitWrittenLocked() error {
	var committed []*flushGroup
	for len(t.pending) > 0 && t.pending[0].state == gsWritten {
		g := t.pending[0]
		t.pending = t.pending[1:]
		t.disk = append(t.disk, g.disks...)
		t.sealedBytes -= g.bytes
		committed = append(committed, g)
	}
	if len(committed) == 0 {
		return nil
	}
	t.sortDiskLocked()
	if err := t.writeDescriptorLocked(); err != nil {
		// Roll back: the files exist but are not durable; drop them. The
		// rows are lost from memory; count the loss and surface the error
		// loudly (callers on the synchronous path return it directly; the
		// background workers latch it for the next foreground caller).
		var lost int64
		for _, g := range committed {
			for _, f := range g.tablets {
				lost += int64(f.mt.Len())
			}
			for _, dt := range g.disks {
				t.dropLocked(dt)
			}
			g.disks = nil
		}
		t.stats.CommitFailures.Add(1)
		t.stats.RowsLost.Add(lost)
		return fmt.Errorf("%w: %d rows: %w", ErrRowsLost, lost, err)
	}
	for _, g := range committed {
		for _, dt := range g.disks {
			t.stats.TabletsFlushed.Add(1)
			t.stats.BytesFlushed.Add(dt.rec.Bytes)
		}
		g.disks = nil
	}
	// Freshly committed tablets are merge candidates (after MergeDelay);
	// let an idle maintenance worker take a look.
	t.kickMaintLocked()
	return nil
}

// abortDisks closes and deletes tablets written by a flush that could not
// be published; not being in the descriptor, they were never durable, and
// removing them now spares the next open an orphan sweep.
func (t *Table) abortDisks(disks []*diskTablet) {
	for _, dt := range disks {
		dt.tab.Close()
		_ = t.opts.FS.Remove(dt.path)
	}
}

// dropLocked removes dt from the live list (caller updates descriptor) and
// arranges deletion once readers drain. Caller holds t.mu.
func (t *Table) dropLocked(dt *diskTablet) {
	for i, d := range t.disk {
		if d == dt {
			t.disk = append(t.disk[:i], t.disk[i+1:]...)
			break
		}
	}
	dt.dropped = true
	dt.refs--
	if dt.refs == 0 {
		dt.tab.Close()
		_ = t.opts.FS.Remove(dt.path)
	}
}

// drainPending blocks until every group currently in the pending queue has
// committed. Groups claimed by concurrent flushers are waited on via the
// commit broadcast rather than re-written.
func (t *Table) drainPending() error {
	for {
		ok, err := t.FlushStep()
		if err != nil {
			return err
		}
		if ok {
			continue
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return ErrTableClosed
		}
		if len(t.pending) == 0 {
			// Drained — but a group claimed by a background worker may have
			// been lost to a failed commit; report that instead of success.
			err := t.asyncErr
			t.asyncErr = nil
			t.mu.Unlock()
			return err
		}
		// Everything left is in flight with another flusher; wait for a
		// state change and re-check.
		t.flushCond.Wait()
		t.mu.Unlock()
	}
}

// FlushAll seals every filling tablet and drains the pending queue. Used
// at orderly shutdown and by tests; the durability model never requires it.
func (t *Table) FlushAll() error {
	t.insertMu.Lock()
	defer t.insertMu.Unlock()
	return t.flushPending()
}

// FlushBefore is the command §4.1.2 proposes: it "flushes to disk all
// tablets with timestamps before a given value", so aggregators can know
// their source rows are durable instead of assuming anything older than
// 20 minutes has reached disk. Flush-dependency closures may pull newer
// tablets along; over-flushing is always safe.
func (t *Table) FlushBefore(ts int64) error {
	t.insertMu.Lock()
	defer t.insertMu.Unlock()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrTableClosed
	}
	var doomed []*fillingTablet
	for _, ft := range t.filling {
		if ft.mt.Empty() {
			continue
		}
		lo, _ := ft.mt.Timespan()
		if lo < ts {
			doomed = append(doomed, ft)
		}
	}
	for _, ft := range doomed {
		t.sealLocked(ft)
	}
	t.mu.Unlock()
	return t.drainPending()
}

// flushPending seals all filling tablets and drains pending groups.
// Callers hold insertMu.
func (t *Table) flushPending() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrTableClosed
	}
	for _, ft := range t.filling {
		t.sealLocked(ft)
	}
	t.mu.Unlock()
	return t.drainPending()
}

// Tick performs one round of time-driven maintenance: age-based sealing
// of filling tablets (§3.4.1's 10-minute bound on data loss), flushing,
// one merge round (§3.4.1–3.4.2), and TTL expiry (§3.3). The server calls
// it periodically; tests call it with a fake clock.
//
// With flush workers the tick only rings their doorbell; without them it
// drains every eligible sealed group itself, retrying a bounded number of
// times on error so one bad flush neither abandons the rest of the
// backlog until the next tick nor starves TTL expiry and merging.
//
// With merge workers (Options.MergeWorkers > 0), merging and expiry are
// likewise reduced to a doorbell ring: the maintenance workers drain
// them in the background, in parallel across disjoint periods. Their
// failures do not surface through Tick's return value — they are logged,
// counted (MergeFailures and friends), and retried on the backoff
// schedule, exactly like background flush failures.
func (t *Table) Tick() error {
	now := t.opts.Clock.Now()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrTableClosed
	}
	for _, ft := range t.filling {
		if !ft.mt.Empty() && now-ft.mt.CreatedAt() >= t.opts.FlushAge {
			t.sealLocked(ft)
		}
	}
	hasPending := len(t.pending) > 0
	async := t.flushKick != nil
	if hasPending && async {
		t.kickFlushLocked()
	}
	t.mu.Unlock()

	var flushErr error
	if hasPending && !async {
		retries := 0
		for {
			ok, err := t.FlushStep()
			if err != nil {
				if errors.Is(err, ErrTableClosed) {
					return err
				}
				flushErr = err
				if retries++; retries >= tickFlushRetries {
					break
				}
				continue
			}
			if !ok {
				break
			}
		}
	}
	// Row loss latched by a background flush surfaces here too, so a
	// server that only ever Ticks still observes it.
	flushErr = errors.Join(flushErr, t.takeAsyncErr())
	if t.maintKick != nil {
		t.mu.Lock()
		t.kickMaintLocked()
		t.mu.Unlock()
		return flushErr
	}
	if err := t.expireTTL(now); err != nil {
		return errors.Join(flushErr, err)
	}
	_, err := t.MergeStep()
	return errors.Join(flushErr, err)
}
