package core

import (
	"sync"
	"time"

	"littletable/internal/vfs"
)

// ioBudget is a token bucket over bytes of background-maintenance I/O
// (merge reads and writes), shared by every maintenance worker of one
// table. It bounds how much disk bandwidth compaction may consume so the
// foreground insert/query paths keep theirs; throttled bytes and time are
// counted in Stats. The bucket runs on the real clock — it paces I/O
// against a real disk, like the flush workers' retry backoff.
type ioBudget struct {
	stats *Stats
	stop  <-chan struct{} // closed at table close; unblocks waiters

	mu     sync.Mutex
	rate   float64 // bytes added per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// ioBudgetMinBurst keeps the bucket from quantizing tiny budgets into
// lockstep with individual block writes.
const ioBudgetMinBurst = 1 << 20

func newIOBudget(bytesPerSec int64, stop <-chan struct{}, stats *Stats) *ioBudget {
	b := &ioBudget{
		stats: stats,
		stop:  stop,
		rate:  float64(bytesPerSec),
		burst: float64(bytesPerSec),
		last:  time.Now(),
	}
	if b.burst < ioBudgetMinBurst {
		b.burst = ioBudgetMinBurst
	}
	b.tokens = b.burst
	return b
}

// take blocks until n bytes of budget are available and consumes them,
// reporting false when stop closed first (the table is shutting down, the
// pending I/O will be aborted anyway). Requests larger than the burst are
// consumed in burst-sized chunks so one huge merge cannot drain the bucket
// far ahead of its actual I/O and lock peers out for seconds.
func (b *ioBudget) take(n int64) bool {
	var throttled int64
	var waited time.Duration
	remaining := float64(n)
	for remaining > 0 {
		chunk := remaining
		if chunk > b.burst {
			chunk = b.burst
		}
		for {
			b.mu.Lock()
			now := time.Now()
			b.tokens += now.Sub(b.last).Seconds() * b.rate
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
			b.last = now
			if b.tokens >= chunk {
				b.tokens -= chunk
				b.mu.Unlock()
				break
			}
			need := chunk - b.tokens
			b.mu.Unlock()
			d := time.Duration(need / b.rate * float64(time.Second))
			if d < time.Millisecond {
				d = time.Millisecond
			}
			throttled += int64(chunk)
			waited += d
			select {
			case <-b.stop:
				return false
			case <-time.After(d):
			}
		}
		remaining -= chunk
	}
	if waited > 0 {
		b.stats.MaintenanceBytesThrottled.Add(throttled)
		b.stats.MaintenanceThrottleNs.Add(int64(waited))
	}
	return true
}

// budgetFS charges every written byte against the maintenance I/O budget
// before it reaches the underlying filesystem; merge output goes through
// it. Reads are charged separately, per input tablet, when the merge opens
// its sources (tablet readers pull blocks through prefetch pipelines, so
// per-call accounting there would be both invasive and late).
type budgetFS struct {
	vfs.FS
	b *ioBudget
}

func (f budgetFS) Create(name string) (vfs.File, error) {
	file, err := f.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &budgetFile{File: file, b: f.b}, nil
}

type budgetFile struct {
	vfs.File
	b *ioBudget
}

func (f *budgetFile) Write(p []byte) (int, error) {
	if !f.b.take(int64(len(p))) {
		return 0, ErrTableClosed
	}
	return f.File.Write(p)
}
