package core

import (
	"container/heap"
	"sort"

	"littletable/internal/ltval"
	"littletable/internal/schema"
	"littletable/internal/tablet"
)

// latestQuery is the descending prefix box LatestRow scans with: in
// descending key order with the full non-ts prefix, timestamps are the only
// varying key column, so the first match is the latest.
func latestQuery(prefix []ltval.Value) Query {
	return Query{
		Lower:      prefix,
		LowerInc:   true,
		Upper:      prefix,
		UpperInc:   true,
		MinTs:      minInt64,
		MaxTs:      maxInt64,
		Descending: true,
	}
}

// latestSpan is one tablet (disk or memory) with its timespan, as seen by
// LatestRow. Memory tablets are materialized into bounded row copies at
// snapshot time so the search never races concurrent inserts.
type latestSpan struct {
	lo, hi int64
	dt     *diskTablet
	ms     *memSource
}

// LatestRow finds the most recent row whose primary key begins with prefix
// (§3.4.5). It works backwards through groups of tablets with overlapping
// timespans: because distinct groups cover disjoint time ranges, the first
// group (newest first) containing any matching row contains the latest one.
// Within a group it opens descending cursors on each tablet; if the prefix
// names every key column except the timestamp, the first matching row is
// the answer, otherwise the group's matching rows are scanned for the
// maximum timestamp.
//
// When the prefix includes every non-timestamp key column, Bloom filters
// cannot help (the timestamp completes the key), but tablet last-key/
// timespan metadata still prunes; for point "does key exist" probes the
// uniqueness path uses the filters instead.
func (t *Table) LatestRow(prefix []ltval.Value) (schema.Row, bool, error) {
	if len(prefix) == 0 || len(prefix) > t.Schema().KeyLen() {
		return nil, false, ErrBadQuery
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, false, ErrTableClosed
	}
	sc := t.sc
	ttl := t.ttl
	now := t.opts.Clock.Now()
	q := latestQuery(prefix)
	var scannedMem int64
	var spans []latestSpan
	for _, dt := range t.disk {
		t.acquireLocked(dt)
		spans = append(spans, latestSpan{lo: dt.rec.MinTs, hi: dt.rec.MaxTs, dt: dt})
	}
	addMem := func(f *fillingTablet) {
		if f.mt.Empty() {
			return
		}
		lo, hi := f.mt.Timespan()
		spans = append(spans, latestSpan{lo: lo, hi: hi, ms: collectMemRows(sc, f.mt, &q, &scannedMem)})
	}
	for _, f := range t.filling {
		addMem(f)
	}
	for _, g := range t.pending {
		for _, f := range g.tablets {
			addMem(f)
		}
	}
	t.mu.Unlock()
	t.stats.RowsScanned.Add(scannedMem)
	defer func() {
		for _, s := range spans {
			if s.dt != nil {
				t.release(s.dt)
			}
		}
	}()

	expireLT := expireBefore(now, ttl)
	// Newest first; group spans whose time ranges overlap transitively.
	sort.Slice(spans, func(i, j int) bool { return spans[i].hi > spans[j].hi })
	// The prefix pins the timestamp only if it includes all other key
	// columns AND the ts column itself; "all but ts" means the first
	// matching row in descending key order has the latest ts.
	tsOrderedWithin := len(prefix) == sc.KeyLen()-1

	i := 0
	for i < len(spans) {
		j := i + 1
		groupLo := spans[i].lo
		for j < len(spans) && spans[j].hi >= groupLo {
			if spans[j].lo < groupLo {
				groupLo = spans[j].lo
			}
			j++
		}
		row, ok, err := t.latestInGroup(sc, spans[i:j], prefix, tsOrderedWithin, expireLT)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return row, true, nil
		}
		i = j
	}
	return nil, false, nil
}

// latestInGroup merges descending cursors over one overlapping-timespan
// group and returns the latest (maximum-timestamp) unexpired row whose key
// matches prefix.
func (t *Table) latestInGroup(sc *schema.Schema, group []latestSpan, prefix []ltval.Value, tsOrderedWithin bool, expireLT int64) (schema.Row, bool, error) {
	var scanned int64
	q := latestQuery(prefix)
	h := &mergeHeap{sc: sc, asc: false}
	var srcs []rowSource
	defer func() {
		for _, s := range srcs {
			s.close()
		}
	}()
	for ord, s := range group {
		var src rowSource
		if s.dt != nil {
			// Latest-row lookups read at most a handful of rows per source;
			// prefetch would load blocks they never reach.
			ds, err := newDiskSource(sc, s.dt.tab, &q, &scanned, tablet.ReadOptions{})
			if err != nil {
				return nil, false, err
			}
			src = ds
		} else {
			s.ms.i = 0 // rewind: materialized at snapshot time
			src = s.ms
		}
		srcs = append(srcs, src)
		if row, ok := src.next(); ok {
			heap.Push(h, heapItem{row: row, src: src, ord: ord})
		} else if err := src.err(); err != nil {
			return nil, false, err
		}
	}
	var best schema.Row
	var bestTs int64
	var lastKey schema.Row
	for h.Len() > 0 {
		top := h.item[0]
		row := top.row
		if next, ok := top.src.next(); ok {
			h.item[0].row = next
			heap.Fix(h, 0)
		} else {
			if err := top.src.err(); err != nil {
				return nil, false, err
			}
			heap.Pop(h)
		}
		if lastKey != nil && sc.CompareKeys(row, lastKey) == 0 {
			continue
		}
		lastKey = row
		ts := sc.Ts(row)
		if ts < expireLT {
			continue
		}
		if tsOrderedWithin {
			// First match is the latest: rows with this prefix differ only
			// in ts, and we iterate in descending key order.
			t.stats.RowsScanned.Add(scanned)
			return schema.CloneRow(row), true, nil
		}
		if best == nil || ts > bestTs {
			best = schema.CloneRow(row)
			bestTs = ts
		}
	}
	t.stats.RowsScanned.Add(scanned)
	if best != nil {
		return best, true, nil
	}
	return nil, false, nil
}
