package core

import (
	"errors"
	"time"

	"littletable/internal/period"
)

// Background maintenance scheduler.
//
// The paper's merge policy (§3.4.1–§3.4.2) never merges across time
// periods, so merges on distinct periods of the same table share no input
// tablets; they only contend on the short in-memory critical sections
// under mu and the descriptor write. That disjointness is what makes
// maintenance parallel-safe: the work queue here is "per table × time
// period", each period has at most one merge in flight (the merging set),
// each claimed input is marked busy under mu before any I/O starts, and
// commits remain serialized under mu, so recovery and open cursors see
// exactly the states the serial engine could produce.
//
// Fairness: a period busy enough to always have a fresh candidate pair
// could otherwise monopolize the workers while an old period's backlog
// lingers, voiding the appendix's O(log T) tablet bound. Each period
// therefore records when it first became claimable, and claims go to the
// longest-waiting period (priority aging); the accumulated queue delay is
// exported as Stats.MergeWaitNs (ExpiryWaitNs for TTL rounds).

// maintClaim is one claimed merge: the period it locks, the busy-marked
// inputs, and the output sequence number reserved under mu.
type maintClaim struct {
	per    period.Period
	inputs []*diskTablet
	seq    uint64
}

// kickMaintLocked rings the maintenance workers' doorbell (non-blocking;
// buffered(1) level trigger). No-op in serial mode. Caller holds t.mu.
func (t *Table) kickMaintLocked() {
	if t.maintKick == nil {
		return
	}
	select {
	case t.maintKick <- struct{}{}:
	default:
	}
}

// maintBroadcastLocked wakes MaintainUntilQuiet waiters after any change
// to maintenance state. Caller holds t.mu.
func (t *Table) maintBroadcastLocked() {
	if t.maintCond != nil {
		t.maintCond.Broadcast()
	}
}

// claimMergeLocked selects and claims the next merge, or returns nil when
// none applies: among periods with an eligible candidate set (per
// pickWithinGroupLocked) and no merge already in flight, it picks the one
// that has been waiting longest. When dry, it only reports whether a claim
// exists, without taking it — MaintainUntilQuiet and the workers use that
// to agree on "no work left". Claiming marks the inputs busy, enters the
// period into the merging set, and reserves the output seq. Caller holds
// t.mu; merge retry backoff is honored here so every path (serial
// MergeStep, workers, quiet checks) sees the same schedule.
func (t *Table) claimMergeLocked(now int64, dry bool) *maintClaim {
	if t.maintHold > 0 {
		// An export is copying sealed tablets out; merging would replace
		// pinned inputs and void the migration's grow-only snapshot.
		return nil
	}
	if t.mergeFails > 0 && now < t.mergeRetryAt {
		return nil
	}
	var best *maintClaim
	var bestSince int64
	seen := make(map[period.Period]bool)
	consider := func(group []*diskTablet, p period.Period) {
		seen[p] = true
		if t.merging[p] {
			return
		}
		ins := t.pickWithinGroupLocked(group, p, now)
		if ins == nil {
			delete(t.mergeWaitSince, p)
			return
		}
		since, ok := t.mergeWaitSince[p]
		if !ok {
			since = time.Now().UnixNano()
			t.mergeWaitSince[p] = since
		}
		if best == nil || since < bestSince {
			best = &maintClaim{per: p, inputs: ins}
			bestSince = since
		}
	}
	if t.opts.MergeAcrossPeriods {
		// Ablation baseline: one group spanning all time, no rollover
		// delay — the merge-as-much-as-possible policy of §6's systems.
		consider(t.disk, period.Period{Start: minInt64, End: maxInt64, Gran: period.FourHour})
	} else {
		// Walk groups of same-period tablets in timespan order.
		i := 0
		for i < len(t.disk) {
			p := period.For(t.disk[i].rec.MinTs, now)
			j := i
			for j < len(t.disk) && p.Contains(t.disk[j].rec.MinTs) {
				j++
			}
			consider(t.disk[i:j], p)
			i = j
		}
	}
	// Drop aging entries for periods that no longer exist on disk (merged
	// away, rolled into a coarser period) so the map stays bounded.
	for p := range t.mergeWaitSince {
		if !seen[p] {
			delete(t.mergeWaitSince, p)
		}
	}
	if best == nil || dry {
		return best
	}
	t.stats.MergeWaitNs.Add(time.Now().UnixNano() - bestSince)
	delete(t.mergeWaitSince, best.per)
	t.merging[best.per] = true
	for _, dt := range best.inputs {
		dt.busy = true
		t.acquireLocked(dt)
	}
	best.seq = t.nextSeq
	t.nextSeq++
	return best
}

// expiryDueLocked reports whether a TTL expiry round would reclaim at
// least one tablet right now, maintaining the waiting-since marker that
// feeds Stats.ExpiryWaitNs. Caller holds t.mu.
func (t *Table) expiryDueLocked(now int64) bool {
	if t.ttl <= 0 || t.expiring || t.maintHold > 0 {
		return false
	}
	cutoff := now - t.ttl
	for _, dt := range t.disk {
		if !dt.busy && dt.rec.MaxTs < cutoff {
			if t.expireWaitSince == 0 {
				t.expireWaitSince = time.Now().UnixNano()
			}
			return true
		}
	}
	t.expireWaitSince = 0
	return false
}

// hasMaintWorkLocked reports whether a maintenance worker calling
// MaintStep now would find something to do. Caller holds t.mu.
func (t *Table) hasMaintWorkLocked(now int64) bool {
	return t.expiryDueLocked(now) || t.claimMergeLocked(now, true) != nil
}

// MaintStep performs one unit of background maintenance: a due TTL expiry
// round if any (expiry is cheap — drop + descriptor write — and must not
// queue behind a long merge), otherwise one merge. It reports whether it
// did anything. Safe for concurrent use; the maintenance workers drain it.
func (t *Table) MaintStep() (bool, error) {
	now := t.opts.Clock.Now()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return false, ErrTableClosed
	}
	due := t.expiryDueLocked(now)
	t.mu.Unlock()
	if due {
		if err := t.expireTTL(now); err != nil {
			return true, err
		}
		return true, nil
	}
	return t.MergeStep()
}

// maintWorker is one background maintenance worker: woken by the
// doorbell, it drains MaintStep until nothing is claimable. Merge failures
// are logged, counted, and paced by MergeStep's clock-based backoff, so
// the worker itself never spins on a failing disk — it just parks until
// the next tick rings the doorbell. It exits when Close closes stopMaint.
func (t *Table) maintWorker() {
	defer t.maintWG.Done()
	for {
		select {
		case <-t.stopMaint:
			return
		case <-t.maintKick:
		}
		for {
			did, err := t.MaintStep()
			if err != nil {
				if errors.Is(err, ErrTableClosed) {
					return
				}
				break
			}
			if !did {
				break
			}
		}
	}
}

// MaintainUntilQuiet blocks until background maintenance has nothing left
// to do: no claimable merge, no due expiry, and nothing in flight. With no
// workers configured it drains inline (expiry + MergeUntilStable), so
// callers can use it regardless of mode. Work that is merely deferred — a
// tablet younger than MergeDelay, a period inside its rollover delay, a
// merge backoff window — does not keep it waiting; it describes the
// schedule now, not the schedule after the clock advances.
func (t *Table) MaintainUntilQuiet() error {
	if t.maintKick == nil {
		if err := t.ExpireNow(); err != nil {
			return err
		}
		_, err := t.MergeUntilStable()
		if err != nil {
			return err
		}
		return t.ExpireNow()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.kickMaintLocked()
	for {
		if t.closed {
			return ErrTableClosed
		}
		now := t.opts.Clock.Now()
		if !t.hasMaintWorkLocked(now) && len(t.merging) == 0 && !t.expiring {
			return nil
		}
		t.kickMaintLocked()
		t.maintCond.Wait()
	}
}

// MergesInFlightNow returns how many merges are currently running;
// tests and the crash harness sample it to prove real overlap.
func (t *Table) MergesInFlightNow() int64 {
	return t.stats.MergesInFlight.Load()
}
