package core

import (
	"sync"
	"testing"

	"littletable/internal/clock"
	"littletable/internal/schema"
)

// TestMergeRacesConcurrentFlushSamePeriod drives background merge workers
// against the async flush pipeline landing sealed tablets in the very
// period being merged: the merge's descriptor commit and the flush's must
// interleave without losing either side's tablets. Run under -race this is
// the scheduler's main aliasing test — claimed inputs are busy-marked
// under mu, so a flush appending to t.disk mid-merge must be preserved by
// the merge's commit (which re-reads t.disk rather than overwriting it).
func TestMergeRacesConcurrentFlushSamePeriod(t *testing.T) {
	tt := newTestTable(t, Options{
		MergeWorkers: 2,
		MergeDelay:   1 * clock.Second,
		FlushWorkers: 2,
		FlushSize:    1 << 10,
	})
	now := tt.clk.Now()
	// Weeks-old base: one coarse period, rollover delay long past.
	base := now - 5*clock.Week

	n := 0
	insertAt := func(ts int64) {
		t.Helper()
		mustInsert(t, tt.Table, usageRow(1, int64(n%9), ts, 0, int64(n)))
		n++
	}
	// Pre-seed three flushed tablets in the period so a merge is claimable
	// the moment the clock clears MergeDelay.
	for b := 0; b < 3; b++ {
		for i := 0; i < 30; i++ {
			insertAt(base + int64(n))
		}
		if err := tt.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	seeded := n
	tt.clk.Advance(2 * clock.Second)

	// Race: while the workers merge the seeded tablets, keep inserting into
	// the SAME period; FlushSize 1KiB seals tablets mid-merge and the flush
	// workers commit them concurrently with the merge's descriptor write.
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			if err := tt.Insert([]schema.Row{usageRow(1, int64(i%9), base + 10_000 + int64(i), 0, int64(seeded + i))}); err != nil {
				errCh <- err
				return
			}
		}
	}()
	if err := tt.MaintainUntilQuiet(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	n += 400

	// Drain: flush the stragglers, age them past MergeDelay, converge.
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	tt.clk.Advance(2 * clock.Second)
	if err := tt.MaintainUntilQuiet(); err != nil {
		t.Fatal(err)
	}

	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != n {
		t.Fatalf("lost rows across merge/flush race: got %d, inserted %d", len(rows), n)
	}
	if m := tt.Stats().Merges.Load(); m == 0 {
		t.Fatal("no merges ran; the race never happened")
	}
	if got := len(queryBox(t, reopen(t, tt).Table, NewQuery())); got != n {
		t.Fatalf("reopen after race recovered %d rows, want %d", got, n)
	}
}

// TestExpiryRacesMergeOfExpiringPeriod pits TTL expiry against merges of a
// period whose tablets are mid-expiry: one fully-expired period (expiry
// must reclaim it) and one merge-eligible live period (workers must merge
// it), with an extra goroutine hammering ExpireNow the whole time. Expiry
// skips busy (being-merged) tablets and merges drop expired rows, so
// whoever wins each tablet, the end state is the same: expired data gone,
// live data intact.
func TestExpiryRacesMergeOfExpiringPeriod(t *testing.T) {
	tt := newTestTable(t, Options{
		MergeWorkers: 2,
		MergeDelay:   1 * clock.Second,
	})
	if err := tt.AlterTTL(45 * clock.Day); err != nil {
		t.Fatal(err)
	}
	now := tt.clk.Now()
	doomedBase := now - 6*clock.Week // 42d old: expired once we advance 8d
	liveBase := now - 5*clock.Week   // 35d old: stays inside the 45d TTL

	n := 0
	fill := func(base int64) int {
		t.Helper()
		rows := 0
		for b := 0; b < 3; b++ {
			for i := 0; i < 12; i++ {
				mustInsert(t, tt.Table, usageRow(1, int64(b*20+i), base+int64(rows), 0, int64(n)))
				n++
				rows++
			}
			if err := tt.FlushAll(); err != nil {
				t.Fatal(err)
			}
		}
		return rows
	}
	fill(doomedBase)
	liveRows := fill(liveBase)

	// One jump makes the doomed period expired AND both periods
	// merge-eligible at once, so expiry and merge contend immediately.
	tt.clk.Advance(8 * clock.Day)

	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := tt.ExpireNow(); err != nil {
				errCh <- err
				return
			}
		}
	}()
	if err := tt.MaintainUntilQuiet(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// A merge that raced expiry may have produced a fresh all-expired
	// output; one more round reclaims it.
	if err := tt.MaintainUntilQuiet(); err != nil {
		t.Fatal(err)
	}

	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != liveRows {
		t.Fatalf("got %d rows after expiry/merge race, want the %d live ones", len(rows), liveRows)
	}
	for _, r := range rows {
		if r[2].Int < doomedBase+100 {
			t.Fatalf("expired-period row survived: %v", r)
		}
	}
	s := tt.Stats().Snapshot()
	if s.TabletsExpired == 0 {
		t.Fatal("nothing expired; the race never happened")
	}
	if s.Merges == 0 {
		t.Fatal("nothing merged; the race never happened")
	}
}
