package core

import (
	"container/heap"
	"errors"
	"fmt"
	"path/filepath"

	"littletable/internal/clock"
	"littletable/internal/period"
	"littletable/internal/schema"
	"littletable/internal/tablet"
)

// Merge retry backoff: a failed merge (bad disk, injected fault) must never
// take the table down — inserts and queries continue — but hammering a
// failing disk helps nobody, so retries back off exponentially, capped.
const (
	mergeBackoffBase = 1 * clock.Second
	mergeBackoffCap  = 60 * clock.Second
)

// mergeBackoffMaxDoublings bounds the doubling loop below on its own: 63
// doublings of a positive int64 base already wrap, and the cap is reached
// far sooner, so the iteration count must never track a pathological
// fails value.
const mergeBackoffMaxDoublings = 8

// mergeBackoff returns the delay before the next merge attempt after the
// given number of consecutive failures. The loop is capped explicitly —
// both by the delay cap and by an iteration bound — so no fails count,
// however large or corrupt, can overflow the multiplication.
func mergeBackoff(fails int) int64 {
	if fails > mergeBackoffMaxDoublings {
		fails = mergeBackoffMaxDoublings
	}
	d := int64(mergeBackoffBase)
	for i := 1; i < fails && d < mergeBackoffCap; i++ {
		d *= 2
	}
	if d > mergeBackoffCap {
		d = mergeBackoffCap
	}
	return d
}

// MergeStep runs one round of the merge policy (§3.4.1–§3.4.2, appendix):
//
//   - tablets are ordered by their timespans' lower bounds;
//   - only tablets within the same time period are merge candidates;
//   - the oldest adjacent pair (ti, ti+1) with |ti| <= 2|ti+1| seeds the
//     merge, extended with newer adjacent tablets up to MaxTabletSize;
//   - a tablet must be at least MergeDelay old, and a period that has just
//     rolled over into a coarser granularity waits an extra pseudorandom
//     fraction of the new period length, spreading merge load across
//     tables.
//
// It reports whether a merge was performed. The appendix proves this policy
// leaves O(log T) tablets and rewrites each row O(log T) times.
//
// A failed merge is not fatal: the inputs stay live, inserts and queries
// continue, and the next MergeStep after a capped exponential backoff
// retries. Failures, retries, and the eventual recovery are counted in
// Stats.
func (t *Table) MergeStep() (bool, error) {
	ok, err := t.mergeStep()

	t.mu.Lock()
	switch {
	case err != nil && !errors.Is(err, ErrTableClosed):
		if t.mergeFails > 0 {
			t.stats.MergeRetries.Add(1)
		}
		t.mergeFails++
		t.stats.MergeFailures.Add(1)
		d := mergeBackoff(t.mergeFails)
		t.mergeRetryAt = t.opts.Clock.Now() + d
		t.opts.Logf("littletable: table %s: merge failed (%d consecutive): %v; retrying in %ds",
			t.name, t.mergeFails, err, d/clock.Second)
		// The backoff changed the schedule; MaintainUntilQuiet waiters
		// must re-evaluate or they would wait out the backoff window.
		t.maintBroadcastLocked()
	case ok && t.mergeFails > 0:
		t.stats.MergeRetries.Add(1)
		t.stats.FaultRecoveries.Add(1)
		t.mergeFails = 0
		t.mergeRetryAt = 0
	}
	t.mu.Unlock()
	return ok, err
}

// mergeStep claims one merge (see claimMergeLocked for the schedule:
// per-period exclusivity, priority aging, retry backoff) and runs it.
// Merges take the read side of maintMu, so merges on disjoint periods
// overlap while DeleteWhere and tiering still exclude them wholesale.
func (t *Table) mergeStep() (bool, error) {
	t.maintMu.RLock()
	defer t.maintMu.RUnlock()

	now := t.opts.Clock.Now()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return false, ErrTableClosed
	}
	c := t.claimMergeLocked(now, false)
	if c == nil {
		t.mu.Unlock()
		return false, nil
	}
	sc := t.sc
	ttl := t.ttl
	t.mu.Unlock()

	t.stats.MergesInFlight.Add(1)
	out, err := t.mergeTablets(sc, c.inputs, c.seq, expireBefore(now, ttl), now)
	t.stats.MergesInFlight.Add(-1)

	t.mu.Lock()
	delete(t.merging, c.per)
	for _, dt := range c.inputs {
		dt.busy = false
	}
	if err != nil || t.closed {
		t.maintBroadcastLocked()
		t.mu.Unlock()
		for _, dt := range c.inputs {
			t.release(dt)
		}
		if err == nil {
			err = ErrTableClosed
		}
		return false, err
	}
	for _, dt := range c.inputs {
		t.dropLocked(dt)
	}
	t.disk = append(t.disk, out)
	t.sortDiskLocked()
	t.bumpDescGenLocked()
	// Count the merge before the broadcast below: the moment waiters wake
	// and observe "no work left", the counters must already reflect this
	// merge, or a MaintainUntilQuiet caller can read Stats before the
	// worker finishes persisting and see the merge it just waited for
	// missing.
	t.stats.Merges.Add(1)
	t.stats.BytesMerged.Add(out.rec.Bytes)
	t.stats.RowsRewritten.Add(out.rec.RowCount)
	// The output tablet may itself seed the period's next merge; tell an
	// idle worker, and wake MaintainUntilQuiet waiters either way.
	t.kickMaintLocked()
	t.maintBroadcastLocked()
	t.mu.Unlock()
	// Persist outside mu so inserts never stall behind the descriptor's
	// disk latency; the claim still holds refs on the inputs, so their
	// files outlive every on-disk descriptor that names them — release
	// (and with it deletion) strictly follows the persist.
	derr := t.persistDescriptor()
	for _, dt := range c.inputs {
		t.release(dt)
	}
	if derr != nil {
		return false, fmt.Errorf("core: descriptor update after merge: %w", derr)
	}
	return true, nil
}

func (t *Table) pickWithinGroupLocked(group []*diskTablet, p period.Period, now int64) []*diskTablet {
	if len(group) < 2 {
		return nil
	}
	// Rollover delay (§3.4.2): periods coarser than 4h gained their current
	// granularity when they ended; delay merging by a pseudorandom fraction
	// of the period length, seeded per (table, period).
	if p.Gran != period.FourHour {
		frac := period.MergeDelayFraction(mergeSeed(t.name, p.Start))
		if now < p.End+int64(frac*float64(p.Gran.Length())) {
			return nil
		}
	}
	eligible := func(dt *diskTablet) bool {
		return !dt.busy && now-dt.addedAt >= t.opts.MergeDelay
	}
	for i := 0; i+1 < len(group); i++ {
		a, b := group[i], group[i+1]
		if !eligible(a) || !eligible(b) {
			continue
		}
		if a.rec.Bytes > 2*b.rec.Bytes {
			continue
		}
		total := a.rec.Bytes + b.rec.Bytes
		if total > t.opts.MaxTabletSize {
			continue
		}
		ins := []*diskTablet{a, b}
		// "It includes in this merge any newer tablets adjacent to this
		// pair, up to a maximum tablet size" (§3.4.1).
		for k := i + 2; k < len(group); k++ {
			c := group[k]
			if !eligible(c) || total+c.rec.Bytes > t.opts.MaxTabletSize {
				break
			}
			ins = append(ins, c)
			total += c.rec.Bytes
		}
		return ins
	}
	return nil
}

// mergeSeed hashes (table, period start) for the rollover delay fraction.
func mergeSeed(name string, periodStart int64) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range name {
		h ^= uint64(c)
		h *= 1099511628211
	}
	h ^= uint64(periodStart)
	h *= 1099511628211
	return h
}

// mergeTablets merge-sorts the inputs into one new tablet in a single pass
// (§3.4.1), translating rows to the current schema and dropping rows whose
// timestamps have expired.
func (t *Table) mergeTablets(sc *schema.Schema, inputs []*diskTablet, seq uint64, expireLT int64, now int64) (*diskTablet, error) {
	// Maintenance I/O budget: writes are metered as they happen (the
	// budgetFS wrapper below); reads are charged up front per input
	// tablet, since a merge reads every block of every input exactly once.
	writeFS := t.opts.FS
	if t.ioBudget != nil {
		writeFS = budgetFS{FS: t.opts.FS, b: t.ioBudget}
	}
	path := filepath.Join(t.dir, tabletFileName(seq))
	w, err := tablet.Create(path, sc, tablet.WriterOptions{
		BlockSize:          t.opts.BlockSize,
		DisableCompression: t.opts.DisableCompression,
		DisableBloom:       t.opts.DisableBloom,
		Encoding:           t.opts.BlockEncoding,
		Sync:               t.opts.SyncWrites,
		FS:                 writeFS,
	})
	if err != nil {
		return nil, err
	}

	var scanned int64
	q := NewQuery()
	h := &mergeHeap{sc: sc, asc: true}
	// Merges read every block of every input sequentially, the best case for
	// prefetch; no context, since a merge runs to completion or error.
	ro := tablet.ReadOptions{PrefetchDepth: t.opts.prefetchDepth()}
	var srcs []rowSource
	defer func() {
		for _, src := range srcs {
			src.close()
		}
	}()
	for ord, dt := range inputs {
		if t.ioBudget != nil && !t.ioBudget.take(dt.rec.Bytes) {
			_ = w.Abort() // best-effort cleanup; the close wins
			return nil, ErrTableClosed
		}
		src, err := newDiskSource(sc, dt.tab, &q, &scanned, ro)
		if err != nil {
			_ = w.Abort() // best-effort cleanup; the original error wins
			return nil, err
		}
		srcs = append(srcs, src)
		if row, ok := src.next(); ok {
			heap.Push(h, heapItem{row: row, src: src, ord: ord})
		} else if e := src.err(); e != nil {
			_ = w.Abort() // best-effort cleanup; the original error wins
			return nil, e
		}
	}
	var lastKey schema.Row
	for h.Len() > 0 {
		top := h.item[0]
		row := top.row
		if next, ok := top.src.next(); ok {
			h.item[0].row = next
			heap.Fix(h, 0)
		} else {
			if e := top.src.err(); e != nil {
				_ = w.Abort() // best-effort cleanup; the original error wins
				return nil, e
			}
			heap.Pop(h)
		}
		if lastKey != nil && sc.CompareKeys(row, lastKey) == 0 {
			continue
		}
		lastKey = row
		if sc.Ts(row) < expireLT {
			continue // row already expired; reclaim during the rewrite
		}
		if err := w.Append(row); err != nil {
			_ = w.Abort() // best-effort cleanup; the original error wins
			return nil, err
		}
	}
	if w.RowCount() == 0 {
		// Everything expired: still produce the (empty) tablet so the
		// inputs can be dropped; the TTL reaper will delete it promptly.
		// Simpler than a special-case descriptor path.
	}
	info, err := w.Close()
	if err != nil {
		return nil, err
	}
	t.stats.addEncode(info.Enc)
	tab, err := tablet.OpenFS(t.opts.FS, path)
	if err != nil {
		_ = t.opts.FS.Remove(path)
		return nil, fmt.Errorf("core: reopen merged tablet: %w", err)
	}
	t.attachCache(tab)
	minTs, maxTs := info.MinTs, info.MaxTs
	if info.RowCount == 0 {
		// Preserve the inputs' span so ordering invariants hold.
		minTs, maxTs = inputs[0].rec.MinTs, inputs[0].rec.MaxTs
	}
	return &diskTablet{
		rec: tabletRecord{
			File:     filepath.Base(path),
			Seq:      seq,
			RowCount: info.RowCount,
			MinTs:    minTs,
			MaxTs:    maxTs,
			Bytes:    info.Bytes,
		},
		tab:       tab,
		path:      path,
		refs:      1,
		addedAt:   now,
		wroteGran: period.For(minTs, now).Gran,
	}, nil
}

// MergeUntilStable runs merge rounds until none applies, returning the
// number performed. Benchmarks for the appendix's logarithmic bounds and
// Figure 3 use it.
func (t *Table) MergeUntilStable() (int, error) {
	n := 0
	for {
		ok, err := t.MergeStep()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}
