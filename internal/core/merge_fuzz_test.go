package core

import (
	"encoding/binary"
	"testing"

	"littletable/internal/clock"
	"littletable/internal/period"
)

// FuzzMergePolicy fabricates random on-disk tablet sets — arbitrary
// timespans, sizes, busy flags, and ages — and asserts the invariants of
// the merge policy (§3.4.1–§3.4.2) that make parallel maintenance safe:
// a claim never spans time periods, its seed pair satisfies
// |ti| <= 2|ti+1|, its total stays within MaxTabletSize, every input was
// eligible (not busy, at least MergeDelay old), the claimed inputs are
// adjacent in timespan order, and two live claims never share a period or
// an input tablet.
func FuzzMergePolicy(f *testing.F) {
	f.Add([]byte{})
	// Two small same-period tablets, both old enough to merge.
	f.Add([]byte{
		0, 0, 8, 0, 20,
		0, 0, 8, 0, 20,
	})
	// A large-then-small pair (seed rule must reject), then an equal pair.
	f.Add([]byte{
		0, 0, 255, 255, 20,
		0, 0, 1, 0, 20,
		1, 0, 4, 0, 20,
		1, 0, 4, 0, 20,
	})
	// Tablets scattered across many periods, mixed busy/young flags.
	f.Add([]byte{
		0, 0, 8, 0, 0,
		100, 0, 8, 0, 21,
		100, 0, 8, 0, 20,
		200, 1, 8, 0, 4,
		200, 1, 8, 0, 20,
		0, 2, 8, 0, 20,
		0, 2, 8, 0, 20,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		const rec = 5 // 2 bytes ts offset, 2 bytes size, 1 byte flags
		nTab := len(data) / rec
		if nTab > 64 {
			nTab = 64
		}
		now := testStart
		opts := Options{
			// Small MaxTabletSize relative to the 16-bit fuzzed sizes, so
			// the size cap actually binds on many inputs.
			MaxTabletSize: 128 << 10,
			MergeDelay:    1 * clock.Second,
		}
		tbl := &Table{
			name:           "fuzz",
			opts:           opts.withDefaults(),
			merging:        make(map[period.Period]bool),
			mergeWaitSince: make(map[period.Period]int64),
		}
		for i := 0; i < nTab; i++ {
			b := data[i*rec : (i+1)*rec]
			off := int64(binary.LittleEndian.Uint16(b[0:2])) * clock.Hour / 8
			size := int64(binary.LittleEndian.Uint16(b[2:4])) + 1
			flags := b[4]
			minTs := now - off
			tbl.disk = append(tbl.disk, &diskTablet{
				rec: tabletRecord{
					Seq:      uint64(i),
					RowCount: 1,
					MinTs:    minTs,
					MaxTs:    minTs,
					Bytes:    size,
				},
				busy:    flags&1 != 0,
				addedAt: now - int64(flags>>1)*clock.Second/4,
				refs:    1,
			})
		}
		tbl.sortDiskLocked()

		checkClaim := func(c *maintClaim, label string) {
			t.Helper()
			ins := c.inputs
			if len(ins) < 2 {
				t.Fatalf("%s: claim with %d inputs; a merge needs at least a pair", label, len(ins))
			}
			p := period.For(ins[0].rec.MinTs, now)
			if p != c.per {
				t.Fatalf("%s: claim period %+v but first input lives in %+v", label, c.per, p)
			}
			var total int64
			for k, dt := range ins {
				if !p.Contains(dt.rec.MinTs) {
					t.Fatalf("%s: input %d (minTs %d) crosses out of period %+v", label, k, dt.rec.MinTs, p)
				}
				if now-dt.addedAt < tbl.opts.MergeDelay {
					t.Fatalf("%s: input %d only %dus old, MergeDelay %dus", label, k, now-dt.addedAt, tbl.opts.MergeDelay)
				}
				total += dt.rec.Bytes
			}
			if ins[0].rec.Bytes > 2*ins[1].rec.Bytes {
				t.Fatalf("%s: seed pair violates |ti| <= 2|ti+1|: %d > 2*%d", label, ins[0].rec.Bytes, ins[1].rec.Bytes)
			}
			if total > tbl.opts.MaxTabletSize {
				t.Fatalf("%s: claim totals %d bytes > MaxTabletSize %d", label, total, tbl.opts.MaxTabletSize)
			}
			first := -1
			for i, dt := range tbl.disk {
				if dt == ins[0] {
					first = i
					break
				}
			}
			if first < 0 {
				t.Fatalf("%s: claimed input not on disk", label)
			}
			for k, dt := range ins {
				if tbl.disk[first+k] != dt {
					t.Fatalf("%s: inputs not adjacent in timespan order at offset %d", label, k)
				}
			}
		}

		// Dry pass: the schedule check must not mutate state, and its
		// candidate must already satisfy every policy invariant, including
		// input eligibility (nothing busy).
		dry := tbl.claimMergeLocked(now, true)
		if dry != nil {
			checkClaim(dry, "dry")
			for k, dt := range dry.inputs {
				if dt.busy {
					t.Fatalf("dry: input %d busy; dry runs must not claim", k)
				}
			}
		}

		c := tbl.claimMergeLocked(now, false)
		if (c == nil) != (dry == nil) {
			t.Fatalf("dry run found work = %v but real claim found work = %v", dry != nil, c != nil)
		}
		if c == nil {
			return
		}
		checkClaim(c, "claim")
		for k, dt := range c.inputs {
			if !dt.busy {
				t.Fatalf("claimed input %d not marked busy", k)
			}
		}
		if !tbl.merging[c.per] {
			t.Fatal("claimed period not in the merging set")
		}

		// A second claim (another worker arriving) must pick a disjoint
		// period and share no input with the first.
		taken := make(map[*diskTablet]bool, len(c.inputs))
		for _, dt := range c.inputs {
			taken[dt] = true
		}
		if c2 := tbl.claimMergeLocked(now, false); c2 != nil {
			checkClaim(c2, "claim2")
			if c2.per == c.per {
				t.Fatal("two concurrent claims on the same period")
			}
			if c2.seq == c.seq {
				t.Fatal("two claims reserved the same output seq")
			}
			for k, dt := range c2.inputs {
				if taken[dt] {
					t.Fatalf("concurrent claims share input %d", k)
				}
			}
		}
	})
}
