package core

import (
	"math"
	"math/rand"
	"testing"

	"littletable/internal/clock"
)

// fillAndFlush inserts n rows with sequential device ids starting at base,
// all timestamped within one hour of now, then flushes, producing one
// on-disk tablet per call.
func fillAndFlush(t testing.TB, tt *testTable, base, n int64, ts int64) {
	t.Helper()
	for i := int64(0); i < n; i++ {
		mustInsert(t, tt.Table, usageRow(1, base+i, ts+base+i, 0, base+i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeReducesTabletCount(t *testing.T) {
	tt := newTestTable(t, Options{MergeDelay: clock.Second})
	now := tt.clk.Now()
	for k := int64(0); k < 8; k++ {
		fillAndFlush(t, tt, k*100, 100, now-clock.Hour)
	}
	if tt.DiskTabletCount() != 8 {
		t.Fatalf("setup produced %d tablets", tt.DiskTabletCount())
	}
	tt.clk.Advance(2 * clock.Second)
	n, err := tt.MergeUntilStable()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no merges performed")
	}
	if tt.DiskTabletCount() >= 8 {
		t.Errorf("merging left %d tablets", tt.DiskTabletCount())
	}
	// All rows still present and ordered.
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 800 {
		t.Fatalf("merge lost rows: %d", len(rows))
	}
}

func TestMergeRespectsDelay(t *testing.T) {
	tt := newTestTable(t, Options{MergeDelay: 90 * clock.Second})
	now := tt.clk.Now()
	fillAndFlush(t, tt, 0, 50, now-clock.Hour)
	fillAndFlush(t, tt, 100, 50, now-clock.Hour)
	ok, err := tt.MergeStep()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("merged before the 90s delay")
	}
	tt.clk.Advance(91 * clock.Second)
	ok, err = tt.MergeStep()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("did not merge after the delay")
	}
}

func TestMergeNeverCrossesPeriods(t *testing.T) {
	tt := newTestTable(t, Options{MergeDelay: clock.Second})
	now := tt.clk.Now()
	// Two tablets in one old week, two in another old week.
	weekA := now - 60*clock.Day
	weekB := now - 30*clock.Day
	fillAndFlush(t, tt, 0, 50, weekA)
	fillAndFlush(t, tt, 100, 50, weekA+clock.Hour)
	fillAndFlush(t, tt, 200, 50, weekB)
	fillAndFlush(t, tt, 300, 50, weekB+clock.Hour)
	// Let the rollover delay pass: a full week plus slack.
	tt.clk.Advance(8 * clock.Day)
	if _, err := tt.MergeUntilStable(); err != nil {
		t.Fatal(err)
	}
	// Periods must remain separate: at least two tablets, and no tablet
	// spans both weeks.
	tt.mu.Lock()
	defer tt.mu.Unlock()
	if len(tt.disk) < 2 {
		t.Fatalf("merging collapsed across periods: %d tablets", len(tt.disk))
	}
	for _, dt := range tt.disk {
		spanA := dt.rec.MinTs < weekA+clock.Day
		spanB := dt.rec.MaxTs > weekB-clock.Day
		if spanA && spanB {
			t.Errorf("tablet [%d, %d] spans both weeks", dt.rec.MinTs, dt.rec.MaxTs)
		}
	}
}

func TestMergePreservesTimespanOrdering(t *testing.T) {
	tt := newTestTable(t, Options{MergeDelay: clock.Second})
	now := tt.clk.Now()
	rng := rand.New(rand.NewSource(9))
	// Many small flushes at varying old timestamps.
	for k := int64(0); k < 12; k++ {
		ts := now - 50*clock.Day + rng.Int63n(20)*clock.Day
		fillAndFlush(t, tt, k*1000, 30, ts)
	}
	tt.clk.Advance(10 * clock.Day)
	if _, err := tt.MergeUntilStable(); err != nil {
		t.Fatal(err)
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	for i := 1; i < len(tt.disk); i++ {
		if tt.disk[i-1].rec.MinTs > tt.disk[i].rec.MinTs {
			t.Fatal("disk tablets out of timespan order after merging")
		}
	}
}

func TestMergeRespectsMaxTabletSize(t *testing.T) {
	tt := newTestTable(t, Options{MergeDelay: clock.Second, MaxTabletSize: 4096})
	now := tt.clk.Now()
	for k := int64(0); k < 6; k++ {
		fillAndFlush(t, tt, k*100, 60, now-clock.Hour)
	}
	tt.clk.Advance(2 * clock.Second)
	if _, err := tt.MergeUntilStable(); err != nil {
		t.Fatal(err)
	}
	tt.mu.Lock()
	defer tt.mu.Unlock()
	for _, dt := range tt.disk {
		// Allow slack: the cap applies to the sum of input sizes, and
		// merged output can differ slightly from that sum.
		if dt.rec.Bytes > 8192 {
			t.Errorf("merged tablet of %d bytes exceeds cap", dt.rec.Bytes)
		}
	}
}

// TestMergeLogarithmicTabletCount verifies the appendix's first claim: when
// no more merges apply, the number of tablets in a period is O(log T).
func TestMergeLogarithmicTabletCount(t *testing.T) {
	tt := newTestTable(t, Options{MergeDelay: 1, MaxTabletSize: 1 << 40})
	now := tt.clk.Now()
	ts := now - 60*clock.Day // one old week, single period
	const flushes = 40
	rng := rand.New(rand.NewSource(4))
	total := int64(0)
	for k := 0; k < flushes; k++ {
		n := 10 + rng.Int63n(90)
		for i := int64(0); i < n; i++ {
			mustInsert(t, tt.Table, usageRow(1, total+i, ts+total+i, 0, 0))
		}
		total += n
		if err := tt.FlushAll(); err != nil {
			t.Fatal(err)
		}
		tt.clk.Advance(clock.Second)
		if _, err := tt.MergeUntilStable(); err != nil {
			t.Fatal(err)
		}
	}
	got := tt.DiskTabletCount()
	bound := int(3*math.Log2(float64(total))) + 3
	if got > bound {
		t.Errorf("stable tablet count %d exceeds O(log T) bound %d for %d rows", got, bound, total)
	}
	// No merges left and the invariant |t_i| > 2|t_{i+1}| holds.
	tt.mu.Lock()
	defer tt.mu.Unlock()
	for i := 0; i+1 < len(tt.disk); i++ {
		if tt.disk[i].rec.Bytes <= 2*tt.disk[i+1].rec.Bytes {
			t.Errorf("tablets %d,%d still mergeable: %d <= 2*%d",
				i, i+1, tt.disk[i].rec.Bytes, tt.disk[i+1].rec.Bytes)
		}
	}
}

// TestMergeLogarithmicRewrites verifies the appendix's second claim: no row
// is rewritten more than O(log T) times.
func TestMergeLogarithmicRewrites(t *testing.T) {
	tt := newTestTable(t, Options{MergeDelay: 1, MaxTabletSize: 1 << 40})
	now := tt.clk.Now()
	ts := now - 60*clock.Day
	const flushes = 50
	const perFlush = 64
	for k := int64(0); k < flushes; k++ {
		for i := int64(0); i < perFlush; i++ {
			mustInsert(t, tt.Table, usageRow(1, k*perFlush+i, ts+k*perFlush+i, 0, 0))
		}
		if err := tt.FlushAll(); err != nil {
			t.Fatal(err)
		}
		tt.clk.Advance(clock.Second)
		if _, err := tt.MergeUntilStable(); err != nil {
			t.Fatal(err)
		}
	}
	total := int64(flushes * perFlush)
	s := tt.Stats().Snapshot()
	// Average rewrites per row must be O(log T).
	avg := float64(s.RowsRewritten) / float64(total)
	bound := 2*math.Log2(float64(total)) + 2
	if avg > bound {
		t.Errorf("average rewrites per row %.1f exceeds O(log T) bound %.1f", avg, bound)
	}
	if s.Merges == 0 {
		t.Error("no merges happened; test is vacuous")
	}
}

func TestMergeDropsExpiredRows(t *testing.T) {
	tt := newTestTable(t, Options{MergeDelay: 1})
	now := tt.clk.Now()
	if err := tt.AlterTTL(10 * clock.Day); err != nil {
		t.Fatal(err)
	}
	old := now - 9*clock.Day // near expiry
	fillAndFlush(t, tt, 0, 50, old)
	fillAndFlush(t, tt, 100, 50, old+clock.Minute)
	// Advance so the rows are expired but the tablet's period has long
	// rolled over (merge allowed).
	tt.clk.Advance(5 * clock.Day)
	if _, err := tt.MergeUntilStable(); err != nil {
		t.Fatal(err)
	}
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 0 {
		t.Errorf("expired rows still returned: %d", len(rows))
	}
	// The merged tablet should contain zero rows (all dropped).
	tt.mu.Lock()
	var live int64
	for _, dt := range tt.disk {
		live += dt.rec.RowCount
	}
	tt.mu.Unlock()
	if live != 0 {
		t.Errorf("merge kept %d expired rows", live)
	}
}

func TestMergeWriteAmplificationBounded(t *testing.T) {
	// Figure 3's analysis: with a high insert rate the equilibrium write
	// amplification is about 2. Simulate steady flushes and check the
	// cumulative amplification stays modest.
	tt := newTestTable(t, Options{MergeDelay: 1, MaxTabletSize: 1 << 20})
	now := tt.clk.Now()
	ts := now - 60*clock.Day
	for k := int64(0); k < 60; k++ {
		for i := int64(0); i < 50; i++ {
			mustInsert(t, tt.Table, usageRow(1, k*50+i, ts+k*50+i, 0, 0))
		}
		if err := tt.FlushAll(); err != nil {
			t.Fatal(err)
		}
		tt.clk.Advance(clock.Second)
		if _, err := tt.MergeUntilStable(); err != nil {
			t.Fatal(err)
		}
	}
	s := tt.Stats().Snapshot()
	wa := s.WriteAmplification()
	if wa > 8 {
		t.Errorf("write amplification %.1f is far above the paper's ~2-4 range", wa)
	}
	if wa < 1 {
		t.Errorf("write amplification %.1f < 1 is impossible", wa)
	}
}

func TestMergeWithConcurrentQuery(t *testing.T) {
	// An open iterator must keep returning correct rows even when its
	// tablets are merged away beneath it (refcounted drop).
	tt := newTestTable(t, Options{MergeDelay: 1})
	now := tt.clk.Now()
	fillAndFlush(t, tt, 0, 100, now-clock.Hour)
	fillAndFlush(t, tt, 100, 100, now-clock.Hour+200)
	it, err := tt.Query(NewQuery())
	if err != nil {
		t.Fatal(err)
	}
	// Merge while the iterator is open.
	tt.clk.Advance(2 * clock.Second)
	if _, err := tt.MergeUntilStable(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if n != 200 {
		t.Fatalf("iterator under merge returned %d rows", n)
	}
	// New query sees the merged layout.
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 200 {
		t.Fatalf("post-merge query returned %d rows", len(rows))
	}
}

func TestRolloverDelaySpreadsMerges(t *testing.T) {
	// Two tablets in yesterday's day-period: merging must wait for the
	// pseudorandom fraction of a day past the period end.
	tt := newTestTable(t, Options{MergeDelay: 1})
	now := tt.clk.Now()
	yesterday := ((now / clock.Day) - 1) * clock.Day
	fillAndFlush(t, tt, 0, 50, yesterday+clock.Hour)
	fillAndFlush(t, tt, 100, 50, yesterday+2*clock.Hour)
	tt.clk.Advance(2 * clock.Second)
	// Right now the period [yesterday, yesterday+1d) ended at most 1 day
	// ago; the delay is a fraction of one day past period end. Advancing a
	// full day guarantees eligibility regardless of the fraction.
	before, err := tt.MergeStep()
	if err != nil {
		t.Fatal(err)
	}
	tt.clk.Advance(clock.Day + clock.Hour)
	after, err := tt.MergeStep()
	if err != nil {
		t.Fatal(err)
	}
	if !before && !after {
		t.Error("merge never became eligible after rollover delay")
	}
}
