package core

import (
	"errors"
	"fmt"
	"path/filepath"

	"littletable/internal/period"
	"littletable/internal/tablet"
)

// Sealed-tablet export and import: the primitives behind live table
// migration between shards. Because tablets are immutable once written and
// the descriptor is the sole durability root (§3.2), a table replica is
// nothing more than a byte copy of its sealed tablet files plus descriptor
// entries naming them — there is no WAL to replicate. Prefix durability
// (§5) makes this the natural replication unit.
//
// Export protocol: BeginExport freeze-flushes the table, takes a
// maintenance hold (no merges, no TTL expiry — the tablet set can then
// only GROW, by flushes of new inserts), and pins the current disk
// tablets so their files outlive any concurrent drop. ReadExportAt serves
// raw file bytes from the pinned set. Re-invoking BeginExport refreshes
// the snapshot under the same hold, which is how a cutover pass picks up
// tablets flushed since the first pass. EndExport releases pins and hold.
//
// Import: InstallTablet writes received bytes as a new tablet file under
// a locally reserved sequence number, fully verifies it (footer parse +
// every block checksum — these are network bytes), and publishes it with
// an atomic descriptor commit. A crash between file write and commit
// leaves an orphan that the next open deletes; the source still owns the
// table until the router flips placement, so nothing is lost.

// ErrNoExport reports a ReadExportAt against a file that is not part of
// the current export snapshot.
var ErrNoExport = errors.New("core: file not in export snapshot")

// TabletInfo describes one exported sealed tablet.
type TabletInfo struct {
	File     string
	Seq      uint64
	RowCount int64
	MinTs    int64
	MaxTs    int64
	Bytes    int64
}

// BeginExport freezes the table for export: every in-memory tablet is
// flushed, maintenance is held, and the resulting on-disk tablet set is
// pinned and returned. Calling it again refreshes the snapshot (new pins
// replace old) while keeping the hold.
func (t *Table) BeginExport() ([]TabletInfo, error) {
	// Flush first: the manifest must cover every row accepted so far.
	// FlushAll takes insertMu, so it cannot run under mu.
	if err := t.FlushAll(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrTableClosed
	}
	if t.exports == nil {
		t.maintHold++
	}
	prev := t.exports
	t.exports = make(map[string]*diskTablet, len(t.disk))
	infos := make([]TabletInfo, 0, len(t.disk))
	for _, dt := range t.disk {
		t.acquireLocked(dt)
		t.exports[dt.rec.File] = dt
		infos = append(infos, TabletInfo{
			File:     dt.rec.File,
			Seq:      dt.rec.Seq,
			RowCount: dt.rec.RowCount,
			MinTs:    dt.rec.MinTs,
			MaxTs:    dt.rec.MaxTs,
			Bytes:    dt.rec.Bytes,
		})
	}
	t.mu.Unlock()
	t.releasePins(prev)
	return infos, nil
}

// ReadExportAt reads raw bytes of a pinned exported tablet file at off.
// It reports the file's total size alongside the bytes read, so a copier
// can chunk without a separate stat round trip.
func (t *Table) ReadExportAt(file string, off int64, p []byte) (n int, total int64, err error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return 0, 0, ErrTableClosed
	}
	dt := t.exports[file]
	if dt == nil {
		t.mu.Unlock()
		return 0, 0, fmt.Errorf("%w: %q", ErrNoExport, file)
	}
	// Hold our own reference across the I/O: the pin could be released by
	// a concurrent EndExport while we read.
	t.acquireLocked(dt)
	t.mu.Unlock()
	defer t.release(dt)
	total = dt.tab.SizeBytes()
	if off >= total {
		return 0, total, nil
	}
	n, err = dt.tab.ReadRawAt(p, off)
	return n, total, err
}

// EndExport releases the export snapshot and the maintenance hold.
// Idempotent: ending a table with no export in progress is a no-op.
func (t *Table) EndExport() {
	t.mu.Lock()
	if t.exports == nil {
		t.mu.Unlock()
		return
	}
	prev := t.exports
	t.exports = nil
	t.maintHold--
	if t.maintHold == 0 {
		// Merges and expiry may have become claimable while held.
		t.kickMaintLocked()
	}
	t.mu.Unlock()
	t.releasePins(prev)
}

// releasePins drops a superseded snapshot's references. A pinned tablet
// that was dropped while exported (a DeleteWhere racing the export —
// merges can't, they're held) is deleted here on its last reference.
// Caller must NOT hold t.mu.
func (t *Table) releasePins(prev map[string]*diskTablet) {
	for _, dt := range prev {
		t.release(dt)
	}
}

// HoldMaintenance pauses merges and TTL expiry until the returned release
// function is called (safe to call once; extra calls are no-ops). Flushes
// are unaffected — they only ever ADD tablets. Used by exports and tests.
func (t *Table) HoldMaintenance() (release func()) {
	t.mu.Lock()
	t.maintHold++
	t.mu.Unlock()
	released := false
	return func() {
		t.mu.Lock()
		if !released {
			released = true
			t.maintHold--
			if t.maintHold == 0 {
				t.kickMaintLocked()
			}
		}
		t.mu.Unlock()
	}
}

// InstallTablet writes data — the full byte image of a sealed tablet
// shipped from another shard — as a new local tablet and publishes it in
// the descriptor. The image is fully verified before publication: footer
// parsed, every block checksum checked, and the advertised row count and
// timespan compared against the file's own footer. On any failure the
// file is removed and nothing is published.
func (t *Table) InstallTablet(data []byte, rowCount, minTs, maxTs int64) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrTableClosed
	}
	seq := t.nextSeq
	t.nextSeq++
	t.mu.Unlock()

	// Stage to a temporary name and rename into place (§3.2): recovery
	// scans the directory for tablet files, so a crash mid-write must
	// never leave a half-written image under a name recovery would open.
	path := filepath.Join(t.dir, tabletFileName(seq))
	tmp := path + ".tmp"
	f, err := t.opts.FS.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		t.opts.FS.Remove(tmp)
		return err
	}
	if t.opts.SyncWrites {
		if err := f.Sync(); err != nil {
			f.Close()
			t.opts.FS.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		t.opts.FS.Remove(tmp)
		return err
	}
	if err := t.opts.FS.Rename(tmp, path); err != nil {
		t.opts.FS.Remove(tmp)
		return err
	}
	if t.opts.SyncWrites {
		if err := t.opts.FS.SyncDir(t.dir); err != nil {
			t.opts.FS.Remove(path)
			return err
		}
	}

	tab, err := tablet.OpenFS(t.opts.FS, path)
	if err == nil {
		// Unconditional full verification: these bytes crossed the network,
		// and a corrupt tablet discovered now costs one retry instead of a
		// quarantine at some future open.
		if verr := tab.VerifyBlocks(); verr != nil {
			tab.Close()
			tab, err = nil, verr
		}
	}
	if err == nil {
		gotRows := tab.RowCount()
		gotMin, gotMax := tab.Timespan()
		if gotRows != rowCount || gotMin != minTs || gotMax != maxTs {
			tab.Close()
			tab, err = nil, fmt.Errorf("core: migrated tablet metadata mismatch: rows %d/%d ts [%d,%d]/[%d,%d]",
				gotRows, rowCount, gotMin, gotMax, minTs, maxTs)
		}
	}
	if err != nil {
		t.opts.FS.Remove(path)
		return fmt.Errorf("core: install tablet: %w", err)
	}

	t.attachCache(tab)
	now := t.opts.Clock.Now()
	dt := &diskTablet{
		rec: tabletRecord{
			File:     filepath.Base(path),
			Seq:      seq,
			RowCount: rowCount,
			MinTs:    minTs,
			MaxTs:    maxTs,
			Bytes:    int64(len(data)),
		},
		tab:       tab,
		path:      path,
		refs:      1,
		addedAt:   now,
		wroteGran: period.For(minTs, now).Gran,
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		tab.Close()
		t.opts.FS.Remove(path)
		return ErrTableClosed
	}
	t.disk = append(t.disk, dt)
	if rowCount > 0 && (maxTs > t.maxTs || !t.hasRows) {
		t.maxTs = maxTs
		t.hasRows = true
	}
	t.sortDiskLocked()
	if err := t.writeDescriptorLocked(); err != nil {
		t.dropLocked(dt)
		t.mu.Unlock()
		return err
	}
	t.stats.TabletsInstalled.Add(1)
	t.stats.BytesInstalled.Add(int64(len(data)))
	t.kickMaintLocked()
	t.mu.Unlock()
	return nil
}
