package core

import (
	"errors"
	"testing"

	"littletable/internal/clock"
)

// exportAll reads every exported tablet's full byte image.
func exportAll(t *testing.T, tab *Table, infos []TabletInfo) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(infos))
	for _, in := range infos {
		buf := make([]byte, in.Bytes)
		var off int64
		for off < in.Bytes {
			n, total, err := tab.ReadExportAt(in.File, off, buf[off:])
			if err != nil {
				t.Fatalf("ReadExportAt %s@%d: %v", in.File, off, err)
			}
			if total != in.Bytes {
				t.Fatalf("ReadExportAt total %d, manifest says %d", total, in.Bytes)
			}
			if n == 0 {
				t.Fatalf("ReadExportAt %s@%d: zero read", in.File, off)
			}
			off += int64(n)
		}
		out[in.File] = buf
	}
	return out
}

func TestExportInstallRoundTrip(t *testing.T) {
	src := newTestTable(t, Options{})
	now := src.clk.Now()
	var want []int64
	for i := int64(0); i < 50; i++ {
		mustInsert(t, src.Table, usageRow(1, i, now+i*clock.Second, float64(i), i))
		want = append(want, i)
	}
	// Two flushes so the export has more than one tablet.
	if i := int64(50); true {
		if err := src.FlushAll(); err != nil {
			t.Fatal(err)
		}
		mustInsert(t, src.Table, usageRow(1, i, now+i*clock.Second, float64(i), i))
		want = append(want, i)
	}

	infos, err := src.BeginExport()
	if err != nil {
		t.Fatal(err)
	}
	defer src.EndExport()
	if len(infos) < 2 {
		t.Fatalf("expected >=2 exported tablets, got %d", len(infos))
	}
	images := exportAll(t, src.Table, infos)

	// Install onto a fresh table — the target shard's replica.
	dstDir := t.TempDir()
	dst, err := CreateTable(dstDir, "usage", usageSchema(), 0, Options{Clock: clock.NewFake(testStart)})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	for _, in := range infos {
		if err := dst.InstallTablet(images[in.File], in.RowCount, in.MinTs, in.MaxTs); err != nil {
			t.Fatalf("InstallTablet %s: %v", in.File, err)
		}
	}
	rows := queryBox(t, dst, NewQuery())
	if len(rows) != len(want) {
		t.Fatalf("replica has %d rows, want %d", len(rows), len(want))
	}
	if got := dst.Stats().TabletsInstalled.Load(); got != int64(len(infos)) {
		t.Errorf("TabletsInstalled = %d, want %d", got, len(infos))
	}

	// The replica must survive reopen: installs are descriptor-committed.
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenTable(dstDir, "usage", Options{Clock: clock.NewFake(testStart)})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rows = queryBox(t, re, NewQuery())
	if len(rows) != len(want) {
		t.Fatalf("reopened replica has %d rows, want %d", len(rows), len(want))
	}
}

func TestInstallTabletRejectsCorruptImage(t *testing.T) {
	src := newTestTable(t, Options{})
	now := src.clk.Now()
	for i := int64(0); i < 20; i++ {
		mustInsert(t, src.Table, usageRow(1, i, now+i, 1.0, i))
	}
	infos, err := src.BeginExport()
	if err != nil {
		t.Fatal(err)
	}
	defer src.EndExport()
	images := exportAll(t, src.Table, infos)
	in := infos[0]
	img := images[in.File]

	dst := newTestTable(t, Options{})
	// Flip a byte mid-file: block checksum verification must catch it.
	bad := append([]byte(nil), img...)
	bad[len(bad)/2] ^= 0xff
	if err := dst.InstallTablet(bad, in.RowCount, in.MinTs, in.MaxTs); err == nil {
		t.Fatal("corrupt image installed without error")
	}
	// Truncation must be caught too.
	if err := dst.InstallTablet(img[:len(img)-7], in.RowCount, in.MinTs, in.MaxTs); err == nil {
		t.Fatal("truncated image installed without error")
	}
	// Metadata mismatch (wrong advertised row count) must be caught.
	if err := dst.InstallTablet(img, in.RowCount+1, in.MinTs, in.MaxTs); err == nil {
		t.Fatal("row-count mismatch installed without error")
	}
	if n := dst.DiskTabletCount(); n != 0 {
		t.Fatalf("failed installs left %d disk tablets", n)
	}
	// A good image still installs after the failures.
	if err := dst.InstallTablet(img, in.RowCount, in.MinTs, in.MaxTs); err != nil {
		t.Fatal(err)
	}
}

func TestExportPinsSurviveDrop(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for i := int64(0); i < 10; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now+i, 1.0, i))
	}
	infos, err := tt.BeginExport()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 {
		t.Fatal("no tablets exported")
	}
	// Delete every row: the tablets are dropped from the descriptor, but
	// the export pins must keep the files readable.
	if _, err := tt.DeleteWhere(NewQuery(), nil); err != nil {
		t.Fatal(err)
	}
	img := make([]byte, infos[0].Bytes)
	if _, _, err := tt.ReadExportAt(infos[0].File, 0, img); err != nil {
		t.Fatalf("pinned tablet unreadable after drop: %v", err)
	}
	tt.EndExport()
	// After the pins are gone the file is deleted with them.
	if _, _, err := tt.ReadExportAt(infos[0].File, 0, img); err == nil {
		t.Fatal("read succeeded after EndExport")
	} else if !errors.Is(err, ErrNoExport) {
		t.Fatalf("want ErrNoExport, got %v", err)
	}
}

func TestMaintenanceHoldBlocksMergeAndExpiry(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	// Several small tablets in one period: normally merge candidates.
	for i := int64(0); i < 6; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now+i, 1.0, i))
		if err := tt.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tt.AlterTTL(clock.Second); err != nil {
		t.Fatal(err)
	}
	release := tt.HoldMaintenance()
	// Let wall-clock style maintenance run with everything expired and
	// mergeable: the hold must stop both.
	tt.clk.Advance(3600 * clock.Second)
	before := tt.DiskTabletCount()
	for i := 0; i < 5; i++ {
		if _, err := tt.MaintStep(); err != nil {
			t.Fatal(err)
		}
		if err := tt.ExpireNow(); err != nil {
			t.Fatal(err)
		}
	}
	if got := tt.DiskTabletCount(); got != before {
		t.Fatalf("maintenance ran under hold: %d -> %d tablets", before, got)
	}
	release()
	// Released: expiry reclaims everything expired.
	if err := tt.ExpireNow(); err != nil {
		t.Fatal(err)
	}
	if got := tt.DiskTabletCount(); got != 0 {
		t.Fatalf("expiry after release left %d tablets", got)
	}
	release() // double release is a no-op
}

func TestBeginExportRefreshGrowsSnapshot(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	mustInsert(t, tt.Table, usageRow(1, 1, now, 1.0, 0))
	first, err := tt.BeginExport()
	if err != nil {
		t.Fatal(err)
	}
	defer tt.EndExport()
	// New rows after the first pass: a refresh must include their tablets
	// and keep every earlier tablet (maintenance is held, the set only
	// grows).
	mustInsert(t, tt.Table, usageRow(1, 2, now+1, 2.0, 1))
	second, err := tt.BeginExport()
	if err != nil {
		t.Fatal(err)
	}
	if len(second) <= len(first) {
		t.Fatalf("refresh did not grow: %d -> %d", len(first), len(second))
	}
	seqs := make(map[uint64]bool, len(second))
	for _, in := range second {
		seqs[in.Seq] = true
	}
	for _, in := range first {
		if !seqs[in.Seq] {
			t.Fatalf("refresh lost tablet seq %d", in.Seq)
		}
	}
}
