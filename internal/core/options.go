// Package core implements the LittleTable table engine (§3): tables as
// unions of in-memory and on-disk tablets, two-dimensional clustering by
// timestamp and primary key, flush-dependency tracking for prefix
// durability, the time-period-aware merge policy, TTL expiry, primary-key
// uniqueness enforcement, bounded 2-D queries, and latest-row lookups.
package core

import (
	"log"

	"littletable/internal/block"
	"littletable/internal/clock"
	"littletable/internal/vfs"
)

// Defaults from the paper.
const (
	// DefaultFlushSize: "we set the default flush size to 16 MB, which is
	// large enough to sustain roughly 95% of the disk's peak write rate"
	// (§3.3).
	DefaultFlushSize = 16 << 20

	// DefaultFlushAge: "LittleTable by default flushes an in-memory tablet
	// no longer than 10-minutes after it first adds a row" (§3.4.1).
	DefaultFlushAge = 10 * clock.Minute

	// DefaultMaxTabletSize: "limits merged tablet sizes to 128 MB, its
	// default settings" (§5.1.3).
	DefaultMaxTabletSize = 128 << 20

	// DefaultMergeDelay: "LittleTable waits until 90 seconds after a tablet
	// is written before merging it" (§5.1.3).
	DefaultMergeDelay = 90 * clock.Second

	// DefaultMaxPendingTablets caps frozen tablets awaiting flush; §5.1.3
	// limits memory "so that at any time there are at most 100 outstanding
	// tablets waiting to be flushed to disk".
	DefaultMaxPendingTablets = 100

	// DefaultQueryRowLimit is the server-side cap per query response; the
	// client re-submits with an updated start bound when it sees the
	// more-available flag (§3.5).
	DefaultQueryRowLimit = 16384

	// DefaultQueryParallelism is how many tablet sources a query opens and
	// positions concurrently. Opening a tablet source costs up to four
	// reads (§3.5's footer seeks plus the first block), independent per
	// tablet until the merge point, so overlapping them cuts first-row
	// latency on multi-tablet queries.
	DefaultQueryParallelism = 4

	// DefaultPrefetchDepth is how many blocks each on-disk tablet source
	// reads ahead of its cursor. While the single merge goroutine drains
	// one source, the others' pipelines keep loading, hiding block latency
	// behind the merge.
	DefaultPrefetchDepth = 2

	// DefaultInsertBatch is how many rows one table-lock acquisition
	// applies. §5.1.2's Figure 2 shows batch size dominating insert
	// throughput; above the transport, amortizing the lock and the
	// uniqueness fast path over a chunk of rows is the in-process analogue.
	DefaultInsertBatch = 256

	// DefaultMaxUnflushedBytes caps sealed-but-unflushed memtable bytes
	// when asynchronous flushing is enabled. Inserters that would push the
	// backlog past the cap block (counted in Stats.BackpressureStalls)
	// until flush workers catch up, bounding memory the way §5.1.3's
	// 100-outstanding-tablets rule does, but in bytes.
	DefaultMaxUnflushedBytes = 256 << 20
)

// Options configure a Table. The zero value of each field selects the
// paper's default.
type Options struct {
	// Clock supplies engine time; defaults to the wall clock.
	Clock clock.Clock

	// FlushSize is the in-memory tablet size that triggers a flush.
	FlushSize int

	// FlushAge is the maximum age of an in-memory tablet before flushing,
	// bounding crash data loss.
	FlushAge int64

	// MaxTabletSize caps merged tablet output size.
	MaxTabletSize int64

	// MergeDelay is the minimum age of an on-disk tablet before it may be
	// merged, so each merge sees more input.
	MergeDelay int64

	// MaxPendingTablets caps frozen tablets awaiting flush; inserts flush
	// synchronously beyond it (backpressure).
	MaxPendingTablets int

	// FlushWorkers is the number of background flush workers. 0 (the
	// default) keeps the seed's synchronous model: sealed tablets are
	// written by the maintenance ticker or by the inserter that trips
	// backpressure. With workers, a filling tablet that reaches FlushSize
	// is sealed, swapped for a fresh memtable, and written to disk in the
	// background while inserts continue; the flush-dependency graph's
	// seal order still decides descriptor commit order, so the §3.1
	// prefix-durability guarantee is unchanged.
	FlushWorkers int

	// MergeWorkers is the number of background maintenance workers running
	// merges and TTL expiry. 0 (the default) keeps the serial model:
	// maintenance runs inline in Tick, one merge at a time. With workers,
	// merges on disjoint time periods of the same table proceed in
	// parallel — the §3.4.2 policy never merges across periods, so two
	// merges on different periods share no input tablets — while the
	// `busy` flags and mu-serialized descriptor commits keep recovery and
	// open cursors correct exactly as in the serial engine.
	MergeWorkers int

	// MaintenanceIOBytesPerSec caps the bytes per second of maintenance
	// I/O (merge reads + writes) across all workers of this table, via a
	// shared token bucket, so background compaction cannot starve the
	// foreground insert/query paths of disk bandwidth. 0 (the default)
	// means unlimited.
	MaintenanceIOBytesPerSec int64

	// InsertBatch is the maximum number of rows applied per table-lock
	// acquisition on the insert path. 0 selects the default; negative
	// values apply row-at-a-time (the seed behaviour).
	InsertBatch int

	// MaxUnflushedBytes caps the encoded bytes of sealed-but-unflushed
	// tablets. Inserters block once the backlog exceeds it, so a slow disk
	// produces bounded memory and a stall counter instead of an OOM.
	// 0 selects the default; negative disables the cap.
	MaxUnflushedBytes int64

	// BlockSize is the on-disk block size; default 64 kB.
	BlockSize int

	// BlockEncoding selects the block encoding for newly written tablets:
	// block.ModeAuto (default) trial-encodes each block per column and
	// keeps the smaller image; block.ModeLegacy reproduces the
	// pre-columnar format byte-for-byte (including version-1 footers), the
	// -block-encoding=legacy escape hatch. Reading is unaffected: both
	// modes read every tablet version.
	BlockEncoding block.Mode

	// QueryRowLimit is the server-enforced per-response row cap.
	QueryRowLimit int

	// BlockCacheBytes enables a per-table LRU over parsed blocks. The
	// paper's deployment leans on the OS page cache; an explicit cache
	// additionally skips checksum, decompression, and parsing on repeat
	// reads, and deduplicates concurrent loads of the same block
	// (singleflight). 0 disables it.
	BlockCacheBytes int64

	// QueryParallelism is how many on-disk tablet sources one query opens
	// and positions concurrently. 0 selects the default; 1 or a negative
	// value opens serially.
	QueryParallelism int

	// PrefetchDepth is the per-tablet-source block prefetch pipeline
	// depth. 0 selects the default; a negative value disables prefetch
	// entirely (blocks load synchronously, the pre-parallel behaviour).
	PrefetchDepth int

	// DisableCompression turns off lzf for blocks and footers.
	DisableCompression bool

	// DisableBloom turns off per-tablet Bloom filters.
	DisableBloom bool

	// SyncWrites fsyncs tablets and descriptors. LittleTable trades
	// durability for write load (§2.3.4); off by default like production.
	SyncWrites bool

	// FS abstracts filesystem access for every file the table touches —
	// tablets, descriptor, cold tiers. nil selects the real OS filesystem;
	// tests inject fault-injecting (vfs.FaultFS) or crash-simulating
	// (vfs.MemFS) implementations.
	FS vfs.FS

	// Logf sinks engine warnings: quarantined tablets, merge retries.
	// Default log.Printf.
	Logf func(format string, args ...interface{})

	// VerifyOnOpen reads and checksums every block of every tablet during
	// OpenTable, so latent corruption (a bit-flipped block that footer
	// loading cannot see) is quarantined up front instead of surfacing as
	// query errors later. It makes open cost proportional to table size;
	// off by default.
	VerifyOnOpen bool

	// MergeAcrossPeriods is an ABLATION switch: it disables the time-period
	// isolation of §3.4.2, making the merge policy behave like the systems
	// the paper contrasts with, whose "merge policies aim to combine as
	// many tablets as possible" (§6). Old and new rows then share tablets,
	// and recent-window queries scan rows they do not return. Benchmarks
	// only; never enable in production use.
	MergeAcrossPeriods bool
}

func (o Options) withDefaults() Options {
	if o.Clock == nil {
		o.Clock = clock.Real{}
	}
	if o.FlushSize == 0 {
		o.FlushSize = DefaultFlushSize
	}
	if o.FlushAge == 0 {
		o.FlushAge = DefaultFlushAge
	}
	if o.MaxTabletSize == 0 {
		o.MaxTabletSize = DefaultMaxTabletSize
	}
	if o.MergeDelay == 0 {
		o.MergeDelay = DefaultMergeDelay
	}
	if o.MaxPendingTablets == 0 {
		o.MaxPendingTablets = DefaultMaxPendingTablets
	}
	if o.BlockSize == 0 {
		o.BlockSize = block.TargetSize
	}
	if o.QueryRowLimit == 0 {
		o.QueryRowLimit = DefaultQueryRowLimit
	}
	if o.QueryParallelism == 0 {
		o.QueryParallelism = DefaultQueryParallelism
	}
	if o.PrefetchDepth == 0 {
		o.PrefetchDepth = DefaultPrefetchDepth
	}
	if o.InsertBatch == 0 {
		o.InsertBatch = DefaultInsertBatch
	}
	if o.MaxUnflushedBytes == 0 {
		o.MaxUnflushedBytes = DefaultMaxUnflushedBytes
	}
	if o.FS == nil {
		o.FS = vfs.OsFS{}
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// queryParallelism returns the effective worker count (>= 1).
func (o Options) queryParallelism() int {
	if o.QueryParallelism < 1 {
		return 1
	}
	return o.QueryParallelism
}

// prefetchDepth returns the effective pipeline depth (0 = disabled).
func (o Options) prefetchDepth() int {
	if o.PrefetchDepth < 0 {
		return 0
	}
	return o.PrefetchDepth
}

// insertBatch returns the effective rows-per-lock chunk size (>= 1).
func (o Options) insertBatch() int {
	if o.InsertBatch < 1 {
		return 1
	}
	return o.InsertBatch
}

// maxUnflushedBytes returns the effective backlog cap (0 = unlimited).
func (o Options) maxUnflushedBytes() int64 {
	if o.MaxUnflushedBytes < 0 {
		return 0
	}
	return o.MaxUnflushedBytes
}

// mergeWorkers returns the effective maintenance worker count (0 = serial).
func (o Options) mergeWorkers() int {
	if o.MergeWorkers < 0 {
		return 0
	}
	return o.MergeWorkers
}

// maintenanceIOBytesPerSec returns the effective budget (0 = unlimited).
func (o Options) maintenanceIOBytesPerSec() int64 {
	if o.MaintenanceIOBytesPerSec < 0 {
		return 0
	}
	return o.MaintenanceIOBytesPerSec
}
