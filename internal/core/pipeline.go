package core

import (
	"errors"
	"time"
)

// Background flush worker retry backoff bounds. Workers use the real clock
// (not Options.Clock) because backoff paces retries against a real disk.
const (
	flushRetryBase = 10 * time.Millisecond
	flushRetryMax  = 2 * time.Second
)

// kickFlushLocked rings the flush workers' doorbell (non-blocking; the
// channel is a buffered(1) level trigger). No-op in synchronous mode.
// Caller holds t.mu.
func (t *Table) kickFlushLocked() {
	if t.flushKick == nil {
		return
	}
	select {
	case t.flushKick <- struct{}{}:
	default:
	}
}

// flushWorker is one background flusher: woken by the seal doorbell, it
// drains queued groups, backing off exponentially on failures so a bad
// disk is not hammered (Stats.FlushFailures/FaultRecoveries record the
// episode). It exits when Close closes stopFlush.
func (t *Table) flushWorker() {
	defer t.flushWG.Done()
	backoff := flushRetryBase
	for {
		select {
		case <-t.stopFlush:
			return
		case <-t.flushKick:
		}
		for {
			ok, err := t.FlushStep()
			if err != nil {
				if errors.Is(err, ErrTableClosed) {
					return
				}
				if errors.Is(err, ErrRowsLost) {
					// Unlike a failed write, a failed commit is not retried —
					// the rows are already gone (counted in Stats.RowsLost).
					// Latch the error so the next Insert/Tick/FlushAll caller
					// observes the loss rather than only this log line.
					t.mu.Lock()
					t.asyncErr = err
					t.mu.Unlock()
				}
				t.opts.Logf("littletable: async flush %s: %v (retrying in %v)", t.name, err, backoff)
				select {
				case <-t.stopFlush:
					return
				case <-time.After(backoff):
				}
				if backoff *= 2; backoff > flushRetryMax {
					backoff = flushRetryMax
				}
				continue
			}
			backoff = flushRetryBase
			if !ok {
				break
			}
			t.stats.AsyncFlushes.Add(1)
		}
	}
}

// backpressure blocks the inserter while the sealed-but-unflushed backlog
// exceeds its limits — either §5.1.3's outstanding-tablet count or the
// byte cap. With flush workers the inserter parks on the commit broadcast
// (counted as a stall); without them it becomes disk-bound, draining its
// own backlog exactly as the serial engine did. Called with insertMu held
// and no other locks.
func (t *Table) backpressure() error {
	capBytes := t.opts.maxUnflushedBytes()
	t.mu.Lock()
	if !t.overBacklogLocked(capBytes) {
		t.mu.Unlock()
		return nil
	}
	t.stats.BackpressureStalls.Add(1)
	if t.flushKick != nil {
		t.kickFlushLocked()
		for !t.closed && t.overBacklogLocked(capBytes) {
			t.flushCond.Wait()
		}
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return ErrTableClosed
		}
		return nil
	}
	t.mu.Unlock()
	for {
		ok, err := t.FlushStep()
		if err != nil {
			return err
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return ErrTableClosed
		}
		if !t.overBacklogLocked(capBytes) {
			t.mu.Unlock()
			return nil
		}
		if !ok {
			// Still over the cap with nothing claimable: every queued group
			// is in flight with a concurrent flusher (another inserter's
			// backpressure loop or a Tick). Wait for its commit or requeue
			// broadcast instead of returning with the cap exceeded.
			t.flushCond.Wait()
		}
		t.mu.Unlock()
	}
}

// overBacklogLocked reports whether the sealed-but-unflushed backlog is at
// or past either limit. Caller holds t.mu.
func (t *Table) overBacklogLocked(capBytes int64) bool {
	if t.pendingTabletsLocked() >= t.opts.MaxPendingTablets {
		return true
	}
	return capBytes > 0 && t.sealedBytes > capBytes
}

// SealedBytes returns the encoded bytes of sealed-but-unflushed tablets
// (the quantity the backpressure cap bounds).
func (t *Table) SealedBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sealedBytes
}

// FlushQueueDepth returns the number of sealed flush groups not yet
// committed, including any currently being written.
func (t *Table) FlushQueueDepth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pending)
}
