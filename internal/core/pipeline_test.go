package core

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"littletable/internal/clock"
	"littletable/internal/schema"
	"littletable/internal/vfs"
)

// waitPipelineIdle polls until the flush workers have committed every
// sealed group.
func waitPipelineIdle(t testing.TB, tab *Table) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for tab.FlushQueueDepth() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("flush queue still %d deep after 10s", tab.FlushQueueDepth())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAsyncFlushDrainsInBackground: with flush workers, sealing a tablet
// must not require any FlushStep/Tick caller — the backlog drains on its
// own and every row stays readable throughout.
func TestAsyncFlushDrainsInBackground(t *testing.T) {
	tt := newTestTable(t, Options{FlushWorkers: 2, FlushSize: 4 << 10})
	now := tt.clk.Now()
	const n = 2000
	rows := make([]schema.Row, 0, n)
	for i := int64(0); i < n; i++ {
		rows = append(rows, usageRow(1, i%100, now-i*clock.Second, 0, i))
	}
	mustInsert(t, tt.Table, rows...)
	waitPipelineIdle(t, tt.Table)

	s := tt.Stats().Snapshot()
	if s.TabletsSealed == 0 {
		t.Fatal("no tablets sealed; FlushSize never tripped")
	}
	if s.AsyncFlushes == 0 {
		t.Error("no async flushes recorded despite workers enabled")
	}
	if s.GroupCommits == 0 || s.InsertBatches != 1 {
		t.Errorf("GroupCommits=%d InsertBatches=%d, want >=1 and 1", s.GroupCommits, s.InsertBatches)
	}
	if tt.DiskTabletCount() == 0 {
		t.Error("no on-disk tablets after background flushing")
	}
	if tt.SealedBytes() != 0 {
		t.Errorf("SealedBytes = %d after drain, want 0", tt.SealedBytes())
	}
	if got := queryBox(t, tt.Table, NewQuery()); len(got) != n {
		t.Fatalf("query returned %d rows, want %d", len(got), n)
	}
}

// TestFlushAllWithWorkers: FlushAll must drain groups that concurrent
// workers have already claimed, waiting on their commits rather than
// re-writing them.
func TestFlushAllWithWorkers(t *testing.T) {
	tt := newTestTable(t, Options{FlushWorkers: 2, FlushSize: 4 << 10})
	now := tt.clk.Now()
	const n = 1200
	rows := make([]schema.Row, 0, n)
	for i := int64(0); i < n; i++ {
		rows = append(rows, usageRow(2, i%64, now-i*clock.Second, 0, i))
	}
	mustInsert(t, tt.Table, rows...)
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if d := tt.FlushQueueDepth(); d != 0 {
		t.Errorf("FlushQueueDepth = %d after FlushAll", d)
	}
	if m := tt.MemTabletCount(); m != 0 {
		t.Errorf("MemTabletCount = %d after FlushAll", m)
	}
	if got := queryBox(t, tt.Table, NewQuery()); len(got) != n {
		t.Fatalf("query returned %d rows, want %d", len(got), n)
	}
}

// TestBackpressureSyncSelfDrains: without workers, an inserter that trips
// the unflushed-bytes cap becomes disk-bound and drains its own backlog,
// exactly like the seed engine's pending-tablet limit.
func TestBackpressureSyncSelfDrains(t *testing.T) {
	tt := newTestTable(t, Options{FlushSize: 2 << 10, MaxUnflushedBytes: 1})
	now := tt.clk.Now()
	const n = 1000
	rows := make([]schema.Row, 0, n)
	for i := int64(0); i < n; i++ {
		rows = append(rows, usageRow(3, i%32, now-i*clock.Second, 0, i))
	}
	mustInsert(t, tt.Table, rows...)
	s := tt.Stats().Snapshot()
	if s.BackpressureStalls == 0 {
		t.Error("no backpressure stalls despite a 1-byte cap")
	}
	if d := tt.FlushQueueDepth(); d != 0 {
		t.Errorf("FlushQueueDepth = %d; self-drain left a backlog", d)
	}
	if tt.DiskTabletCount() == 0 {
		t.Error("nothing flushed by backpressure self-drain")
	}
	if got := queryBox(t, tt.Table, NewQuery()); len(got) != n {
		t.Fatalf("query returned %d rows, want %d", len(got), n)
	}
}

// TestBackpressureAsyncBlocksUntilDrained: with workers, the same cap must
// block the inserter (counted as stalls) until the workers catch up — and
// never deadlock.
func TestBackpressureAsyncBlocksUntilDrained(t *testing.T) {
	tt := newTestTable(t, Options{FlushWorkers: 1, FlushSize: 2 << 10, MaxUnflushedBytes: 1})
	now := tt.clk.Now()
	const n = 1000
	rows := make([]schema.Row, 0, n)
	for i := int64(0); i < n; i++ {
		rows = append(rows, usageRow(4, i%32, now-i*clock.Second, 0, i))
	}
	done := make(chan error, 1)
	go func() { done <- tt.Insert(rows) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("insert deadlocked under async backpressure")
	}
	if s := tt.Stats().Snapshot(); s.BackpressureStalls == 0 {
		t.Error("no backpressure stalls despite a 1-byte cap")
	}
	waitPipelineIdle(t, tt.Table)
	if got := queryBox(t, tt.Table, NewQuery()); len(got) != n {
		t.Fatalf("query returned %d rows, want %d", len(got), n)
	}
}

// TestIntraChunkDuplicateAcrossSeal: two same-key rows in one insert chunk
// must be rejected even when the first trips FlushSize mid-chunk and the
// duplicate would land in a fresh memtable that never saw it. Regression:
// the batched pre-check probed only table state, which cannot see rows
// earlier in the same (not yet applied) chunk, and the memtable collision
// backstop is blind across a mid-chunk seal.
func TestIntraChunkDuplicateAcrossSeal(t *testing.T) {
	// FlushSize 1: every applied row seals its tablet immediately, so the
	// duplicate's memtable is always fresh.
	tt := newTestTable(t, Options{FlushSize: 1})
	now := tt.clk.Now()
	err := tt.Insert([]schema.Row{
		usageRow(9, 1, now, 1.0, 0),
		usageRow(9, 2, now, 2.0, 1),
		usageRow(9, 1, now, 3.0, 2), // duplicates row 0's key
	})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("Insert = %v, want ErrDuplicateKey", err)
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	got := queryBox(t, tt.Table, NewQuery())
	if len(got) != 2 {
		t.Fatalf("%d rows retained, want 2 (rows before the duplicate)", len(got))
	}
	sc := tt.Schema()
	if sc.CompareKeys(got[0], got[1]) == 0 {
		t.Fatal("duplicate primary keys persisted")
	}
}

// TestAsyncCommitFailureSurfaces: when a background flush's descriptor
// commit fails, the sealed rows are gone — that loss must be counted
// (CommitFailures, RowsLost) and returned to a foreground caller as
// ErrRowsLost, not merely logged by the worker.
func TestAsyncCommitFailureSurfaces(t *testing.T) {
	ffs := vfs.NewFault(vfs.NewMem())
	clk := clock.NewFake(testStart)
	tab, err := CreateTable("/db", "usage", usageSchema(), 0, Options{
		Clock: clk, FS: ffs, Logf: quietLogf,
		FlushWorkers: 1, FlushSize: 2 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()

	// Tablet files write fine; the rename publishing the next descriptor
	// fails once, dropping every group in that commit's prefix.
	ffs.Inject(&vfs.Fault{Op: vfs.OpRename, Path: descriptorFile, Nth: 1})
	now := clk.Now()
	const n = 600
	rows := make([]schema.Row, 0, n)
	for i := int64(0); i < n; i++ {
		rows = append(rows, usageRow(7, i%32, now-i*clock.Second, 0, i))
	}
	err = tab.Insert(rows)
	// The worker may latch the loss while the insert is still applying
	// chunks, in which case the insert itself reports it.
	observed := errors.Is(err, ErrRowsLost)
	if err != nil && !observed {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for tab.Stats().RowsLost.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("commit fault never fired")
		}
		time.Sleep(time.Millisecond)
	}
	for !observed {
		if time.Now().After(deadline) {
			t.Fatal("row loss never surfaced to a foreground caller")
		}
		if err := tab.Tick(); err != nil {
			if !errors.Is(err, ErrRowsLost) {
				t.Fatal(err)
			}
			observed = true
		}
		time.Sleep(time.Millisecond)
	}

	waitPipelineIdle(t, tab)
	s := tab.Stats().Snapshot()
	if s.CommitFailures != 1 {
		t.Errorf("CommitFailures = %d, want 1", s.CommitFailures)
	}
	if s.RowsLost <= 0 || s.RowsLost > n {
		t.Errorf("RowsLost = %d, want 1..%d", s.RowsLost, n)
	}
	// The latch is cleared once taken: a later caller is not haunted.
	if err := tab.Tick(); err != nil {
		t.Errorf("Tick after loss was surfaced = %v, want nil", err)
	}
	got, err := tab.QueryAll(NewQuery())
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(got)) != n-s.RowsLost {
		t.Fatalf("%d rows readable, want %d (inserted %d, lost %d)",
			len(got), n-s.RowsLost, n, s.RowsLost)
	}
}

// TestBackpressureSyncConcurrentInserters: without workers, concurrent
// inserters over the cap must cooperate — one that finds every queued
// group claimed by a peer waits for the peer's commit instead of returning
// with the cap exceeded — and must never deadlock doing so.
func TestBackpressureSyncConcurrentInserters(t *testing.T) {
	tt := newTestTable(t, Options{FlushSize: 2 << 10, MaxUnflushedBytes: 1})
	now := tt.clk.Now()
	const workers, per = 4, 300
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rows := make([]schema.Row, 0, per)
			for i := int64(0); i < per; i++ {
				rows = append(rows, usageRow(int64(300+w), i%16, now-i*clock.Second, 0, i))
			}
			if err := tt.Insert(rows); err != nil {
				t.Errorf("inserter %d: %v", w, err)
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent sync backpressure deadlocked")
	}
	if t.Failed() {
		return
	}
	if s := tt.Stats().Snapshot(); s.BackpressureStalls == 0 {
		t.Error("no backpressure stalls despite a 1-byte cap")
	}
	if d := tt.FlushQueueDepth(); d != 0 {
		t.Errorf("FlushQueueDepth = %d after all inserters returned", d)
	}
	if got := queryBox(t, tt.Table, NewQuery()); len(got) != workers*per {
		t.Fatalf("query returned %d rows, want %d", len(got), workers*per)
	}
}

// TestGroupCommitConcurrentInserters: concurrent Insert calls must all
// land (group-commit application preserves per-batch results) and the
// insert lock must be taken at most once per batch, usually less.
func TestGroupCommitConcurrentInserters(t *testing.T) {
	tt := newTestTable(t, Options{FlushWorkers: 2, FlushSize: 32 << 10})
	const workers, batches, per = 4, 25, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				rows := make([]schema.Row, 0, per)
				for i := 0; i < per; i++ {
					seq := int64(b*per + i)
					rows = append(rows, usageRow(int64(200+w), seq, testStart+seq, 0, seq))
				}
				if err := tt.Insert(rows); err != nil {
					t.Errorf("inserter %d: %v", w, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	s := tt.Stats().Snapshot()
	total := int64(workers * batches * per)
	if s.RowsInserted != total {
		t.Errorf("RowsInserted = %d, want %d", s.RowsInserted, total)
	}
	if s.InsertBatches != workers*batches {
		t.Errorf("InsertBatches = %d, want %d", s.InsertBatches, workers*batches)
	}
	if s.GroupCommits == 0 || s.GroupCommits > s.InsertBatches {
		t.Errorf("GroupCommits = %d, want 1..%d", s.GroupCommits, s.InsertBatches)
	}
	if got := queryBox(t, tt.Table, NewQuery()); int64(len(got)) != total {
		t.Fatalf("query returned %d rows, want %d", len(got), total)
	}
}

// TestAsyncFlushRetriesAfterFault: a write fault on the async path must
// not lose rows or wedge the pipeline — the worker backs off, retries,
// and the backlog drains once the disk heals.
func TestAsyncFlushRetriesAfterFault(t *testing.T) {
	ffs := vfs.NewFault(vfs.NewMem())
	clk := clock.NewFake(testStart)
	tab, err := CreateTable("/db", "usage", usageSchema(), 0, Options{
		Clock: clk, FS: ffs, Logf: quietLogf,
		FlushWorkers: 1, FlushSize: 2 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()

	ffs.Inject(&vfs.Fault{Op: vfs.OpCreate, Path: ".tab", Nth: 1})
	now := clk.Now()
	const n = 600
	rows := make([]schema.Row, 0, n)
	for i := int64(0); i < n; i++ {
		rows = append(rows, usageRow(5, i%32, now-i*clock.Second, 0, i))
	}
	if err := tab.Insert(rows); err != nil {
		t.Fatal(err)
	}
	waitPipelineIdle(t, tab)
	s := tab.Stats().Snapshot()
	if ffs.Injected() == 0 {
		t.Fatal("fault never fired; test exercised nothing")
	}
	if s.FlushFailures == 0 || s.FaultRecoveries == 0 {
		t.Errorf("FlushFailures=%d FaultRecoveries=%d, want both > 0", s.FlushFailures, s.FaultRecoveries)
	}
	got, err := tab.QueryAll(NewQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("query returned %d rows, want %d", len(got), n)
	}
}

// TestCloseStopsFlushWorkers: Close must stop the worker pool promptly —
// even mid-backoff with an undrainable backlog — and leak no goroutines.
func TestCloseStopsFlushWorkers(t *testing.T) {
	baseline := stableGoroutineCount()
	ffs := vfs.NewFault(vfs.NewMem())
	clk := clock.NewFake(testStart)
	tab, err := CreateTable("/db", "usage", usageSchema(), 0, Options{
		Clock: clk, FS: ffs, Logf: quietLogf,
		FlushWorkers: 4, FlushSize: 1 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every tablet write fails: the backlog is permanently stuck and the
	// workers sit in retry backoff.
	ffs.Inject(&vfs.Fault{Op: vfs.OpCreate, Path: ".tab", Persistent: true})
	now := clk.Now()
	rows := make([]schema.Row, 0, 400)
	for i := int64(0); i < 400; i++ {
		rows = append(rows, usageRow(6, i%16, now-i*clock.Second, 0, i))
	}
	if err := tab.Insert(rows); err != nil {
		t.Fatal(err)
	}
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}
	checkGoroutineCount(t, baseline)
}

// TestInsertAfterCloseFailsFast: inserters parked on backpressure when the
// table closes must return ErrTableClosed, not hang.
func TestInsertAfterCloseFails(t *testing.T) {
	tt := newTestTable(t, Options{FlushWorkers: 1})
	if err := tt.Close(); err != nil {
		t.Fatal(err)
	}
	err := tt.Insert([]schema.Row{usageRow(1, 1, testStart, 0, 0)})
	if !errors.Is(err, ErrTableClosed) {
		t.Fatalf("Insert after close = %v, want ErrTableClosed", err)
	}
}

// TestEightTableAsyncStress is the write-path analogue of the read-path
// stress: concurrent inserters across 8 tables while each table's flush
// workers run, then a differential check that every accepted row — and
// nothing else — is readable, and that the worker pools shut down clean.
func TestEightTableAsyncStress(t *testing.T) {
	baseline := stableGoroutineCount()
	root := t.TempDir()
	const tables = 8
	const inserters = 2 // per table

	type tableState struct {
		tab  *Table
		mu   sync.Mutex
		rows []schema.Row // accepted rows, the differential model
	}
	clk := clock.NewFake(testStart)
	states := make([]*tableState, tables)
	for i := range states {
		tab, err := CreateTable(root, "usage"+string(rune('a'+i)), usageSchema(), 0, Options{
			Clock: clk, Logf: quietLogf,
			FlushWorkers: 2, FlushSize: 4 << 10, MaxUnflushedBytes: 64 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		states[i] = &tableState{tab: tab}
	}

	duration := time.Second
	if testing.Short() {
		duration = 300 * time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for ti, st := range states {
		for w := 0; w < inserters; w++ {
			ti, st, w := ti, st, w
			wg.Add(1)
			go func() {
				defer wg.Done()
				seq := int64(0)
				for {
					select {
					case <-stop:
						return
					default:
					}
					// Keyspace partitioned per (table, inserter): no
					// duplicate-key rejections, so every batch must land.
					batch := make([]schema.Row, 0, 16)
					for i := 0; i < 16; i++ {
						batch = append(batch, usageRow(int64(100+w), seq%50, testStart+seq, 0, seq))
						seq++
					}
					if err := st.tab.Insert(batch); err != nil {
						t.Errorf("table %d inserter %d: %v", ti, w, err)
						return
					}
					st.mu.Lock()
					st.rows = append(st.rows, batch...)
					st.mu.Unlock()
				}
			}()
		}
	}
	time.Sleep(duration)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	for ti, st := range states {
		if err := st.tab.FlushAll(); err != nil {
			t.Fatalf("table %d: FlushAll: %v", ti, err)
		}
		sc := st.tab.Schema()
		want := st.rows
		sort.Slice(want, func(i, j int) bool { return sc.CompareKeys(want[i], want[j]) < 0 })
		got, err := st.tab.QueryAll(NewQuery())
		if err != nil {
			t.Fatalf("table %d: %v", ti, err)
		}
		if len(got) != len(want) {
			t.Fatalf("table %d: %d rows readable, model has %d", ti, len(got), len(want))
		}
		for i := range got {
			if sc.CompareKeys(got[i], want[i]) != 0 {
				t.Fatalf("table %d: row %d diverges from model", ti, i)
			}
		}
	}
	for _, st := range states {
		if err := st.tab.Close(); err != nil {
			t.Fatal(err)
		}
	}
	checkGoroutineCount(t, baseline)
}
