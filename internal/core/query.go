package core

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"

	"littletable/internal/ltval"
	"littletable/internal/memtable"
	"littletable/internal/schema"
	"littletable/internal/tablet"
)

// Query is a two-dimensional bounding box (§3.1): primary keys or prefixes
// thereof in one dimension, timestamps in the other. Bounds may be
// inclusive or exclusive. Use NewQuery for an unbounded starting point.
type Query struct {
	// Lower and Upper bound the primary key; nil means unbounded. A bound
	// shorter than the full key acts as a prefix: rows equal on the prefix
	// are inside an inclusive bound and outside an exclusive one.
	Lower, Upper       []ltval.Value
	LowerInc, UpperInc bool

	// MinTs and MaxTs bound row timestamps, inclusive.
	MinTs, MaxTs int64

	// Descending reverses the result order (§3.5).
	Descending bool

	// Limit caps returned rows; 0 means no client limit. The server applies
	// its own limit on top and signals more-available.
	Limit int
}

// TsMin and TsMax are the unbounded timestamp sentinels for Query.
const (
	TsMin int64 = minInt64
	TsMax int64 = maxInt64
)

// NewQuery returns a query matching every row, to be narrowed by callers.
func NewQuery() Query {
	return Query{LowerInc: true, UpperInc: true, MinTs: minInt64, MaxTs: maxInt64}
}

// rowSource yields rows of the table's current schema in key order.
type rowSource interface {
	// next advances and returns the next row, or ok=false when exhausted.
	next() (schema.Row, bool)
	err() error
	close()
}

// memSource iterates rows copied out of a memtable at snapshot time, so
// queries never race concurrent inserts into the live tree. The copies are
// bounded by the query's box.
type memSource struct {
	rows []schema.Row
	i    int
}

func (m *memSource) next() (schema.Row, bool) {
	if m.i >= len(m.rows) {
		return nil, false
	}
	r := m.rows[m.i]
	m.i++
	return r, true
}
func (m *memSource) err() error { return nil }
func (m *memSource) close()     {}

// collectMemRows copies the rows of mt that fall inside the query's key
// box, in the query's direction. Time filtering happens at the iterator.
func collectMemRows(cur *schema.Schema, mt *memtable.Memtable, q *Query, scanned *int64) *memSource {
	var c *memtable.Cursor
	asc := !q.Descending
	start := q.Lower
	if !asc {
		start = q.Upper
	}
	if start == nil {
		c = mt.Cursor(asc)
	} else {
		c = mt.Seek(start, asc)
	}
	sc := mt.Schema()
	ms := &memSource{}
	for c.Next() {
		row := c.Row()
		*scanned++
		if asc {
			if !q.LowerInc && q.Lower != nil && sc.CompareRowToKey(row, q.Lower) == 0 {
				continue
			}
			if q.Upper != nil {
				cmp := sc.CompareRowToKey(row, q.Upper)
				if cmp > 0 || (cmp == 0 && !q.UpperInc) {
					break
				}
			}
		} else {
			if !q.UpperInc && q.Upper != nil && sc.CompareRowToKey(row, q.Upper) == 0 {
				continue
			}
			if q.Lower != nil {
				cmp := sc.CompareRowToKey(row, q.Lower)
				if cmp < 0 || (cmp == 0 && !q.LowerInc) {
					break
				}
			}
		}
		// Copy: the live tree may keep growing under the inserter.
		ms.rows = append(ms.rows, cur.Translate(sc, schema.CloneRow(row)))
	}
	return ms
}

// diskSource adapts a tablet cursor: bound-aware stopping, exclusive-bound
// skipping, schema translation, and scan accounting.
type diskSource struct {
	cur     *schema.Schema
	tabSc   *schema.Schema
	c       *tablet.Cursor
	q       *Query
	scanned *int64
	done    bool
}

func newDiskSource(cur *schema.Schema, tab *tablet.Tablet, q *Query, scanned *int64, ro tablet.ReadOptions) (*diskSource, error) {
	asc := !q.Descending
	start := q.Lower
	if !asc {
		start = q.Upper
	}
	var c *tablet.Cursor
	var err error
	if start == nil {
		c = tab.CursorOpts(asc, ro)
	} else {
		c, err = tab.SeekOpts(start, asc, ro)
		if err != nil {
			return nil, err
		}
	}
	return &diskSource{cur: cur, tabSc: tab.Schema(), c: c, q: q, scanned: scanned}, nil
}

func (d *diskSource) next() (schema.Row, bool) {
	if d.done {
		return nil, false
	}
	asc := !d.q.Descending
	for d.c.Next() {
		row := d.c.Row()
		*d.scanned++
		if asc {
			if !d.q.LowerInc && d.q.Lower != nil && d.tabSc.CompareRowToKey(row, d.q.Lower) == 0 {
				continue
			}
			if d.q.Upper != nil {
				cmp := d.tabSc.CompareRowToKey(row, d.q.Upper)
				if cmp > 0 || (cmp == 0 && !d.q.UpperInc) {
					d.done = true
					return nil, false
				}
			}
		} else {
			if !d.q.UpperInc && d.q.Upper != nil && d.tabSc.CompareRowToKey(row, d.q.Upper) == 0 {
				continue
			}
			if d.q.Lower != nil {
				cmp := d.tabSc.CompareRowToKey(row, d.q.Lower)
				if cmp < 0 || (cmp == 0 && !d.q.LowerInc) {
					d.done = true
					return nil, false
				}
			}
		}
		return d.cur.Translate(d.tabSc, row), true
	}
	d.done = true
	return nil, false
}

func (d *diskSource) err() error { return d.c.Err() }
func (d *diskSource) close()     { d.c.Close() }

// mergeHeap merge-sorts rowSources by primary key (§3.2: "merge-sorts the
// resulting streams to form a single result stream ordered by primary
// key").
type mergeHeap struct {
	sc   *schema.Schema
	asc  bool
	item []heapItem
}

type heapItem struct {
	row schema.Row
	src rowSource
	ord int // source index, breaking ties deterministically (newer first)
}

func (h *mergeHeap) Len() int { return len(h.item) }
func (h *mergeHeap) Less(i, j int) bool {
	c := h.sc.CompareKeys(h.item[i].row, h.item[j].row)
	if c == 0 {
		return h.item[i].ord > h.item[j].ord // newer source wins ties
	}
	if h.asc {
		return c < 0
	}
	return c > 0
}
func (h *mergeHeap) Swap(i, j int)      { h.item[i], h.item[j] = h.item[j], h.item[i] }
func (h *mergeHeap) Push(x interface{}) { h.item = append(h.item, x.(heapItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := h.item
	n := len(old)
	it := old[n-1]
	h.item = old[:n-1]
	return it
}

// Iterator streams a query's result rows. The merge itself runs on the
// calling goroutine, but each on-disk source may own a block-prefetch
// goroutine; Close must be called to stop them and release tablet
// references. Close is idempotent and safe to call concurrently with Next.
type Iterator struct {
	t        *Table
	q        Query
	sc       *schema.Schema
	ctx      context.Context
	cancel   context.CancelFunc
	expireLT int64 // rows with ts < expireLT are expired (TTL)

	// mu serializes Next against Close; all fields below are guarded by
	// it once the iterator is returned to the caller.
	mu       sync.Mutex
	h        *mergeHeap
	sources  []rowSource
	disks    []*diskTablet
	row      schema.Row
	returned int
	scanned  int64
	firstErr error
	closed   bool
	lastKey  schema.Row // for duplicate suppression across sources
}

// Query opens an iterator over the bounding box q. The iterator sees a
// snapshot of the tablet list; rows inserted concurrently may or may not
// appear (§3.1's weak read guarantee), but the result is always key-ordered
// and duplicate-free.
func (t *Table) Query(q Query) (*Iterator, error) {
	//ltlint:ignore ctxprop Query is the public context-free shim: this Background is the designated root of the chain
	return t.QueryCtx(context.Background(), q)
}

// QueryCtx is Query bound to a context: cancelling ctx stops the
// iterator's block loads and prefetch pipelines promptly, so a timed-out
// or abandoned server query stops consuming disk.
func (t *Table) QueryCtx(ctx context.Context, q Query) (*Iterator, error) {
	if q.MinTs > q.MaxTs {
		return nil, fmt.Errorf("%w: MinTs %d > MaxTs %d", ErrBadQuery, q.MinTs, q.MaxTs)
	}
	if q.Lower != nil && q.Upper != nil {
		// Compare only the common prefix: a lower bound that extends the
		// upper prefix (e.g. lower (n, d, ts₀) under upper prefix (n, d))
		// is a legitimate box, not an inversion.
		n := len(q.Lower)
		if len(q.Upper) < n {
			n = len(q.Upper)
		}
		for i := 0; i < n; i++ {
			c := q.Lower[i].Compare(q.Upper[i])
			if c > 0 {
				return nil, fmt.Errorf("%w: lower key above upper key", ErrBadQuery)
			}
			if c < 0 {
				break
			}
		}
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrTableClosed
	}
	sc := t.sc
	ttl := t.ttl
	qctx, cancel := context.WithCancel(ctx)
	it := &Iterator{
		t:        t,
		q:        q,
		sc:       sc,
		ctx:      qctx,
		cancel:   cancel,
		expireLT: expireBefore(t.opts.Clock.Now(), ttl),
		h:        &mergeHeap{sc: sc, asc: !q.Descending},
	}
	var disks []*diskTablet
	for _, dt := range t.disk {
		if dt.rec.MinTs <= q.MaxTs && dt.rec.MaxTs >= q.MinTs {
			t.acquireLocked(dt)
			disks = append(disks, dt)
		}
	}
	it.disks = disks
	// Memtable rows are copied out while holding the lock: the filling
	// trees mutate under concurrent inserts, and §3.1 only promises that a
	// concurrent query returns some, all, or none of the racing rows — it
	// must still never corrupt or mis-order.
	var memSrcs []*memSource
	collectMem := func(f *fillingTablet) {
		if f.mt.Empty() {
			return
		}
		lo, hi := f.mt.Timespan()
		if lo <= q.MaxTs && hi >= q.MinTs {
			memSrcs = append(memSrcs, collectMemRows(sc, f.mt, &it.q, &it.scanned))
		}
	}
	for _, f := range t.filling {
		collectMem(f)
	}
	for _, g := range t.pending {
		for _, f := range g.tablets {
			collectMem(f)
		}
	}
	t.mu.Unlock()

	t.stats.Queries.Add(1)
	// Disk sources open outside the lock: seeks touch the filesystem. A
	// worker pool opens and positions them concurrently — each open costs
	// footer and first-block reads that are independent until the merge
	// point — falling back to a serial loop at parallelism 1.
	ro := tablet.ReadOptions{Ctx: qctx, PrefetchDepth: t.opts.prefetchDepth()}
	dsrcs := make([]*diskSource, len(disks))
	errs := make([]error, len(disks))
	par := t.opts.queryParallelism()
	if par > len(disks) {
		par = len(disks)
	}
	if par > 1 {
		t.stats.ParallelOpens.Add(int64(len(disks)))
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					dsrcs[i], errs[i] = newDiskSource(sc, disks[i].tab, &it.q, &it.scanned, ro)
				}
			}()
		}
		for i := range disks {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i, dt := range disks {
			dsrcs[i], errs[i] = newDiskSource(sc, dt.tab, &it.q, &it.scanned, ro)
			if errs[i] != nil {
				break
			}
		}
	}
	for _, src := range dsrcs {
		if src != nil {
			it.sources = append(it.sources, src)
		}
	}
	for _, err := range errs {
		if err != nil {
			t.stats.ReadErrors.Add(1)
			it.Close()
			return nil, err
		}
	}
	// Prime the heap in tablet order so ties break deterministically
	// (newer source wins) regardless of open order.
	ord := 0
	it.sources = it.sources[:0]
	for _, src := range dsrcs {
		it.push(src, ord)
		ord++
	}
	for _, src := range memSrcs {
		it.push(src, ord)
		ord++
	}
	if it.firstErr != nil {
		err := it.firstErr
		it.Close()
		return nil, err
	}
	return it, nil
}

func (it *Iterator) push(src rowSource, ord int) {
	it.sources = append(it.sources, src)
	if row, ok := src.next(); ok {
		heap.Push(it.h, heapItem{row: row, src: src, ord: ord})
	} else if err := src.err(); err != nil && it.firstErr == nil {
		it.firstErr = err
		it.t.stats.ReadErrors.Add(1)
	}
}

// Next advances to the next result row.
func (it *Iterator) Next() bool {
	it.mu.Lock()
	defer it.mu.Unlock()
	if it.closed || it.firstErr != nil {
		return false
	}
	if it.q.Limit > 0 && it.returned >= it.q.Limit {
		return false
	}
	for it.h.Len() > 0 {
		top := it.h.item[0]
		row := top.row
		if next, ok := top.src.next(); ok {
			it.h.item[0].row = next
			heap.Fix(it.h, 0)
		} else {
			if err := top.src.err(); err != nil && it.firstErr == nil {
				it.firstErr = err
				if !errors.Is(err, context.Canceled) {
					// Cancellation surfacing mid-merge (a concurrent
					// Close, a server timeout) is not a storage fault.
					it.t.stats.ReadErrors.Add(1)
				}
				return false
			}
			heap.Pop(it.h)
		}
		// Duplicate keys across tablets cannot arise from correct inserts,
		// but suppress them defensively; the newest source surfaced first.
		if it.lastKey != nil && it.sc.CompareKeys(row, it.lastKey) == 0 {
			continue
		}
		it.lastKey = row
		ts := it.sc.Ts(row)
		if ts < it.q.MinTs || ts > it.q.MaxTs {
			continue // outside the box's time bounds (§3.2)
		}
		if ts < it.expireLT {
			continue // expired by TTL but not yet reclaimed (§3.3)
		}
		it.row = row
		it.returned++
		return true
	}
	return false
}

// Row returns the current row; valid after Next reports true, until the
// following Next call.
func (it *Iterator) Row() schema.Row {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.row
}

// Err returns the first error the iterator encountered.
func (it *Iterator) Err() error {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.firstErr
}

// Scanned returns rows examined so far, the numerator of Figure 9's
// scan-efficiency ratio.
func (it *Iterator) Scanned() int64 {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.scanned
}

// Returned returns rows yielded so far.
func (it *Iterator) Returned() int {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.returned
}

// Close stops prefetch pipelines, releases tablet references, and records
// scan statistics. It is idempotent and safe to call concurrently with
// Next: the context cancellation unblocks any in-flight block wait, and
// the mutex serializes the teardown against the merge loop.
func (it *Iterator) Close() error {
	// Cancel first, outside the lock: a Next blocked on a prefetched
	// block must see the cancellation to release the lock.
	it.cancel()
	it.mu.Lock()
	defer it.mu.Unlock()
	if it.closed {
		return nil
	}
	it.closed = true
	for _, src := range it.sources {
		if d, ok := src.(*diskSource); ok {
			it.t.stats.BlocksRead.Add(int64(d.c.BlocksRead))
			it.t.stats.PrefetchHits.Add(int64(d.c.PrefetchHits))
		}
		src.close()
	}
	for _, dt := range it.disks {
		it.t.release(dt)
	}
	it.t.stats.RowsScanned.Add(it.scanned)
	it.t.stats.RowsReturned.Add(int64(it.returned))
	return nil
}

// QueryAll is a convenience that materializes a query's full result.
func (t *Table) QueryAll(q Query) ([]schema.Row, error) {
	it, err := t.Query(q)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var rows []schema.Row
	for it.Next() {
		rows = append(rows, schema.CloneRow(it.Row()))
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}
