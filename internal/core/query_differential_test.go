package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"littletable/internal/clock"
	"littletable/internal/schema"
)

// TestQueryDifferentialParallel is the parallel read path's correctness
// proof: for each query parallelism (1, 2, 8 — serial, contended pool,
// wider-than-source pool), build tables through a random schedule of
// inserts, flushes, merges, bulk deletes, and TTL expirations, then check
// over a thousand randomized bounding-box queries bit-for-bit against a
// naive sorted-slice model. Any divergence between the serial and parallel
// merge paths — ordering, duplicate suppression, TTL filtering, bound
// handling — fails here. Run under -race this also exercises the worker
// pool, prefetch pipelines, and block-cache singleflight for data races.
func TestQueryDifferentialParallel(t *testing.T) {
	configs := []struct {
		par      int
		prefetch int
		cache    int64
	}{
		{par: 1, prefetch: -1, cache: 0},      // the pre-parallel engine
		{par: 2, prefetch: 2, cache: 0},       // contended pool, no cache
		{par: 8, prefetch: 3, cache: 4 << 20}, // wide pool + singleflight cache
	}
	const seeds = 7
	const trials = 50 // 3 configs x 7 seeds x 50 = 1050 queries
	for _, cfg := range configs {
		t.Run(fmt.Sprintf("parallelism=%d", cfg.par), func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				rng := rand.New(rand.NewSource(seed*1000 + int64(cfg.par)))
				tt := newTestTable(t, Options{
					FlushSize:        2048,
					MergeDelay:       1,
					QueryParallelism: cfg.par,
					PrefetchDepth:    cfg.prefetch,
					BlockCacheBytes:  cfg.cache,
				})
				sc := tt.Schema()
				model, ttl := buildRandomHistory(t, rng, tt)
				now := tt.clk.Now()
				live := model[:0:0]
				for _, row := range model {
					if ttl > 0 && sc.Ts(row) < now-ttl {
						continue
					}
					live = append(live, row)
				}
				sort.Slice(live, func(i, j int) bool {
					return sc.CompareKeys(live[i], live[j]) < 0
				})
				for trial := 0; trial < trials; trial++ {
					q := randomBox(rng, testStart)
					got, err := tt.QueryAll(q)
					if err != nil {
						t.Fatal(err)
					}
					want := referenceFilter(sc, live, q)
					if len(got) != len(want) {
						t.Fatalf("par %d seed %d trial %d: got %d rows, want %d (box %+v)",
							cfg.par, seed, trial, len(got), len(want), q)
					}
					for i := range want {
						if sc.CompareKeys(got[i], want[i]) != 0 {
							t.Fatalf("par %d seed %d trial %d: row %d differs",
								cfg.par, seed, trial, i)
						}
					}
				}
			}
		})
	}
}

// buildRandomHistory drives tt through a random schedule of inserts,
// flushes, merges, deletes, and TTL changes, and returns the surviving
// model rows plus the final TTL. Deleted rows leave the model; expired
// rows stay (physical reclamation may lag), so callers filter by TTL.
func buildRandomHistory(t *testing.T, rng *rand.Rand, tt *testTable) (model []schema.Row, ttl int64) {
	t.Helper()
	sc := tt.Schema()
	seq := int64(0)
	steps := 250 + rng.Intn(150)
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(100); {
		case op < 60: // insert a small batch of rows over the last ~10 days
			n := 1 + rng.Intn(4)
			for i := 0; i < n; i++ {
				row := usageRow(
					rng.Int63n(4), rng.Int63n(6),
					tt.clk.Now()-rng.Int63n(40*clock.Day),
					rng.Float64(), seq,
				)
				if err := tt.Insert([]schema.Row{row}); err != nil {
					continue // random key collision
				}
				model = append(model, row)
				seq++
			}
		case op < 72: // flush, spreading rows into on-disk tablets
			if err := tt.FlushAll(); err != nil {
				t.Fatal(err)
			}
		case op < 80: // merge round
			tt.clk.Advance(2 * clock.Second)
			if _, err := tt.MergeStep(); err != nil {
				t.Fatal(err)
			}
		case op < 88: // bulk delete a random box
			q := randomBox(rng, tt.clk.Now())
			q.Descending = false
			if _, err := tt.DeleteWhere(q, nil); err != nil {
				t.Fatal(err)
			}
			kept := model[:0]
			for _, row := range model {
				if !referenceInBox(sc, row, q) {
					kept = append(kept, row)
				}
			}
			model = kept
		case op < 94: // tighten TTL and expire
			next := []int64{15 * clock.Day, 25 * clock.Day}[rng.Intn(2)]
			if ttl == 0 || next < ttl {
				ttl = next
			}
			if err := tt.AlterTTL(ttl); err != nil {
				t.Fatal(err)
			}
			if err := tt.ExpireNow(); err != nil {
				t.Fatal(err)
			}
		default: // let time pass a little
			tt.clk.Advance(clock.Minute)
		}
	}
	return model, ttl
}

// referenceInBox reports whether row falls inside q's two-dimensional box.
func referenceInBox(sc *schema.Schema, row schema.Row, q Query) bool {
	if q.Lower != nil {
		c := sc.CompareRowToKey(row, q.Lower)
		if c < 0 || (c == 0 && !q.LowerInc) {
			return false
		}
	}
	if q.Upper != nil {
		c := sc.CompareRowToKey(row, q.Upper)
		if c > 0 || (c == 0 && !q.UpperInc) {
			return false
		}
	}
	ts := sc.Ts(row)
	return ts >= q.MinTs && ts <= q.MaxTs
}
