package core

import (
	"math/rand"
	"sort"
	"testing"

	"littletable/internal/clock"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// TestQueryBoxMatchesReferenceModel is the bounding-box exactness property
// (DESIGN.md invariant 2): against a table whose rows are split across
// memtables, flushed tablets, and merged tablets, every randomly drawn
// two-dimensional box must return exactly the rows a naive in-memory
// reference filter selects, in exactly key order.
func TestQueryBoxMatchesReferenceModel(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			tt := newTestTable(t, Options{FlushSize: 2048, MergeDelay: 1})
			now := tt.clk.Now()
			sc := tt.Schema()

			// Reference model: all inserted rows.
			var model []schema.Row
			n := 200 + rng.Intn(400)
			for i := 0; i < n; i++ {
				row := usageRow(
					rng.Int63n(4),
					rng.Int63n(6),
					now-rng.Int63n(10*clock.Day),
					rng.Float64(),
					int64(i),
				)
				err := tt.Insert([]schema.Row{row})
				if err != nil {
					// Random key collision: skip, like an application would.
					continue
				}
				model = append(model, row)
				// Occasionally flush and merge to spread rows across
				// storage layers.
				if rng.Intn(50) == 0 {
					if err := tt.FlushAll(); err != nil {
						t.Fatal(err)
					}
				}
				if rng.Intn(120) == 0 {
					tt.clk.Advance(2 * clock.Second)
					if _, err := tt.MergeUntilStable(); err != nil {
						t.Fatal(err)
					}
				}
			}
			sort.Slice(model, func(i, j int) bool {
				return sc.CompareKeys(model[i], model[j]) < 0
			})

			for trial := 0; trial < 40; trial++ {
				q := randomBox(rng, now)
				got, err := tt.QueryAll(q)
				if err != nil {
					t.Fatal(err)
				}
				want := referenceFilter(sc, model, q)
				if len(got) != len(want) {
					t.Fatalf("seed %d trial %d: got %d rows, want %d (box %+v)",
						seed, trial, len(got), len(want), q)
				}
				for i := range want {
					if sc.CompareKeys(got[i], want[i]) != 0 {
						t.Fatalf("seed %d trial %d: row %d differs", seed, trial, i)
					}
				}
			}
		})
	}
}

// randomBox draws a random 2-D query box, sometimes unbounded on each side.
func randomBox(rng *rand.Rand, now int64) Query {
	q := NewQuery()
	if rng.Intn(3) > 0 {
		n := rng.Int63n(5)
		pfx := []ltval.Value{ltval.NewInt64(n)}
		if rng.Intn(2) == 0 {
			pfx = append(pfx, ltval.NewInt64(rng.Int63n(7)))
		}
		q.Lower = pfx
		q.LowerInc = rng.Intn(4) > 0
	}
	if rng.Intn(3) > 0 {
		n := rng.Int63n(5)
		pfx := []ltval.Value{ltval.NewInt64(n)}
		if rng.Intn(2) == 0 {
			pfx = append(pfx, ltval.NewInt64(rng.Int63n(7)))
		}
		if q.Lower != nil && schema.CompareKeySlices(pfx, q.Lower) < 0 {
			q.Lower, q.Upper = pfx, q.Lower
			q.LowerInc = true
		} else {
			q.Upper = pfx
		}
		q.UpperInc = rng.Intn(4) > 0
	}
	if rng.Intn(2) == 0 {
		lo := now - rng.Int63n(12*clock.Day)
		hi := lo + rng.Int63n(6*clock.Day)
		q.MinTs, q.MaxTs = lo, hi
	}
	q.Descending = rng.Intn(3) == 0
	return q
}

// referenceFilter applies the box semantics naively to the sorted model.
func referenceFilter(sc *schema.Schema, model []schema.Row, q Query) []schema.Row {
	var out []schema.Row
	for _, row := range model {
		if q.Lower != nil {
			c := sc.CompareRowToKey(row, q.Lower)
			if c < 0 || (c == 0 && !q.LowerInc) {
				continue
			}
		}
		if q.Upper != nil {
			c := sc.CompareRowToKey(row, q.Upper)
			if c > 0 || (c == 0 && !q.UpperInc) {
				continue
			}
		}
		ts := sc.Ts(row)
		if ts < q.MinTs || ts > q.MaxTs {
			continue
		}
		out = append(out, row)
	}
	if q.Descending {
		for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
			out[i], out[j] = out[j], out[i]
		}
	}
	return out
}

// TestLatestRowMatchesReferenceModel cross-checks LatestRow against the
// naive maximum over the model for random prefixes.
func TestLatestRowMatchesReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tt := newTestTable(t, Options{FlushSize: 4096})
	now := tt.clk.Now()
	sc := tt.Schema()
	var model []schema.Row
	for i := 0; i < 500; i++ {
		row := usageRow(rng.Int63n(3), rng.Int63n(5), now-rng.Int63n(40*clock.Day), 0, int64(i))
		if err := tt.Insert([]schema.Row{row}); err != nil {
			continue
		}
		model = append(model, row)
		if i%97 == 0 {
			if err := tt.FlushAll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for trial := 0; trial < 60; trial++ {
		prefix := []ltval.Value{ltval.NewInt64(rng.Int63n(4))}
		if rng.Intn(2) == 0 {
			prefix = append(prefix, ltval.NewInt64(rng.Int63n(6)))
		}
		got, found, err := tt.LatestRow(prefix)
		if err != nil {
			t.Fatal(err)
		}
		var want schema.Row
		for _, row := range model {
			if sc.CompareRowToKey(row, prefix) != 0 {
				continue
			}
			if want == nil || sc.Ts(row) > sc.Ts(want) {
				want = row
			}
		}
		if (want != nil) != found {
			t.Fatalf("trial %d: found=%v, model says %v", trial, found, want != nil)
		}
		if found && sc.CompareKeys(got, want) != 0 {
			t.Fatalf("trial %d: latest row mismatch: got ts %d, want ts %d",
				trial, sc.Ts(got), sc.Ts(want))
		}
	}
}
