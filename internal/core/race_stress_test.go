package core

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"littletable/internal/clock"
	"littletable/internal/schema"
)

// stressOptions enables every piece of the parallel read path, so the
// race detector sees the worker pool, the prefetch goroutines, and the
// block cache's singleflight all at once.
func stressOptions() Options {
	return Options{
		FlushSize:        4 << 10,
		MergeDelay:       clock.Second,
		QueryParallelism: 4,
		PrefetchDepth:    2,
		BlockCacheBytes:  4 << 20,
	}
}

// fillTablets spreads rows across n on-disk tablets plus a live memtable.
func fillTablets(t testing.TB, tt *testTable, tablets, rowsPer int) {
	t.Helper()
	seq := int64(0)
	for r := 0; r < tablets; r++ {
		rows := make([]schema.Row, 0, rowsPer)
		for i := 0; i < rowsPer; i++ {
			rows = append(rows, usageRow(int64(i%4), int64(r), testStart-int64(i)*clock.Second, 0, seq))
			seq++
		}
		mustInsert(t, tt.Table, rows...)
		if err := tt.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestIteratorCloseIdempotent checks that Close may be called repeatedly,
// before exhaustion, and after an explicit drain, with prefetch pipelines
// in flight each time.
func TestIteratorCloseIdempotent(t *testing.T) {
	tt := newTestTable(t, stressOptions())
	fillTablets(t, tt, 6, 200)
	for _, drain := range []int{0, 10, 1 << 30} {
		it, err := tt.Query(NewQuery())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < drain && it.Next(); i++ {
		}
		for i := 0; i < 3; i++ {
			if err := it.Close(); err != nil {
				t.Fatalf("Close #%d: %v", i, err)
			}
		}
		if it.Next() {
			t.Fatal("Next returned true after Close")
		}
	}
}

// TestIteratorCloseConcurrentWithNext races Close against a goroutine
// mid-merge: Close must unblock any in-flight block wait (via context
// cancellation), never panic, and leave no goroutine behind.
func TestIteratorCloseConcurrentWithNext(t *testing.T) {
	tt := newTestTable(t, stressOptions())
	fillTablets(t, tt, 8, 300)
	baseline := stableGoroutineCount()
	for round := 0; round < 30; round++ {
		it, err := tt.Query(NewQuery())
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for it.Next() {
			}
		}()
		if round%3 != 0 {
			time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		}
		it.Close()
		<-done
		it.Close() // second close after the reader stopped
	}
	checkGoroutineCount(t, baseline)
}

// TestQueryGoroutineLeak is the prefetch-goroutine regression test: after
// many queries — fully drained, abandoned mid-iteration, and cancelled —
// the process goroutine count must return to its baseline. A prefetcher
// leaked by any Close path fails this within a few rounds.
func TestQueryGoroutineLeak(t *testing.T) {
	tt := newTestTable(t, stressOptions())
	fillTablets(t, tt, 8, 250)
	baseline := stableGoroutineCount()
	for round := 0; round < 50; round++ {
		it, err := tt.Query(NewQuery())
		if err != nil {
			t.Fatal(err)
		}
		switch round % 3 {
		case 0: // full drain
			for it.Next() {
			}
		case 1: // abandon after a few rows, prefetchers still loaded
			for i := 0; i < 5 && it.Next(); i++ {
			}
		case 2: // close immediately, before any Next
		}
		it.Close()
	}
	checkGoroutineCount(t, baseline)
}

func stableGoroutineCount() int {
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	return runtime.NumGoroutine()
}

func checkGoroutineCount(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines leaked: %d live, baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentReadWriteStress runs inserters, queriers (some abandoning
// iterators mid-merge with prefetchers in flight), a merger, and TTL
// expiry concurrently for a couple of seconds — the configuration the
// race detector needs to certify the parallel read path. Afterwards every
// successfully inserted row must be present: no lost rows, no duplicate
// surfacing, no wedged iterators.
func TestConcurrentReadWriteStress(t *testing.T) {
	tt := newTestTable(t, stressOptions())
	if err := tt.AlterTTL(300 * clock.Day); err != nil {
		t.Fatal(err)
	}
	sc := tt.Schema()
	fillTablets(t, tt, 4, 100) // pre-seeded tablets so queries hit disk at once

	duration := 2 * time.Second
	if testing.Short() {
		duration = 500 * time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var inserted atomic.Int64 // rows committed by inserters
	var queried atomic.Int64  // rows observed by queriers

	const inserters = 3
	for w := 0; w < inserters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			seq := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Key space partitioned by inserter (network = 100+w), so
				// inserts never collide and every accepted row must survive.
				row := usageRow(int64(100+w), seq%50, testStart+seq, 0, seq)
				if err := tt.Insert([]schema.Row{row}); err != nil {
					t.Errorf("inserter %d: %v", w, err)
					return
				}
				inserted.Add(1)
				seq++
			}
		}()
	}

	const queriers = 3
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				it, err := tt.Query(NewQuery())
				if err != nil {
					t.Errorf("querier %d: %v", w, err)
					return
				}
				limit := 1 << 30
				if rng.Intn(2) == 0 {
					limit = rng.Intn(200) // abandon mid-iteration
				}
				rows := 0
				var last schema.Row
				for rows < limit && it.Next() {
					row := it.Row()
					if last != nil && sc.CompareKeys(last, row) >= 0 {
						t.Errorf("querier %d: rows out of order", w)
						it.Close()
						return
					}
					last = schema.CloneRow(row)
					rows++
				}
				if err := it.Err(); err != nil {
					t.Errorf("querier %d: %v", w, err)
				}
				it.Close()
				queried.Add(int64(rows))
			}
		}()
	}

	// Maintenance: flushes, merges, and TTL expiry sweeping concurrently
	// with the readers, retiring the very tablets their iterators hold
	// refs on.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tt.clk.Advance(2 * clock.Second)
			if err := tt.FlushAll(); err != nil {
				t.Errorf("maintenance flush: %v", err)
				return
			}
			if _, err := tt.MergeStep(); err != nil {
				t.Errorf("maintenance merge: %v", err)
				return
			}
			if i%7 == 6 {
				if err := tt.ExpireNow(); err != nil {
					t.Errorf("maintenance expire: %v", err)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// No lost rows: everything the inserters committed is still there.
	// (TTL is 300 days and all stress timestamps are near testStart, so
	// the expiry sweeps reclaimed nothing.)
	var stressRows int64
	q := NewQuery()
	it, err := tt.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for it.Next() {
		if it.Row()[0].Int >= 100 {
			stressRows++
		}
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if stressRows != inserted.Load() {
		t.Fatalf("lost rows: %d inserted, %d readable", inserted.Load(), stressRows)
	}
	if queried.Load() == 0 {
		t.Fatal("queriers observed no rows; stress exercised nothing")
	}
}
