package core

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"littletable/internal/clock"
	"littletable/internal/vfs"
)

// Recovery edge cases: what OpenTable does when the directory holds not the
// clean aftermath of a crash but actively damaged state — truncated or
// garbage descriptors, truncated or bit-flipped tablets, injected I/O
// errors. The contract: a damaged descriptor is a clean open error (never a
// panic, never silent data invention); a damaged tablet is quarantined and
// the table serves what remains.

// tabletFiles lists the *.tab files in a table directory, sorted.
func tabletFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tab") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out
}

func corruptFile(t *testing.T, path string, mutate func([]byte) []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGarbageDescriptorFailsOpenCleanly(t *testing.T) {
	tt := newTestTable(t, Options{Logf: quietLogf})
	mustInsert(t, tt.Table, usageRow(1, 1, tt.clk.Now(), 0, 0))
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	tt.Close()
	desc := filepath.Join(tt.dir, "usage", descriptorFile)
	if err := os.WriteFile(desc, []byte("{{{ not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenTable(tt.dir, "usage", Options{Logf: quietLogf})
	if err == nil {
		t.Fatal("open succeeded over a garbage descriptor")
	}
	if !strings.Contains(err.Error(), "descriptor") {
		t.Errorf("error does not identify the descriptor: %v", err)
	}
}

func TestTruncatedDescriptorFailsOpenCleanly(t *testing.T) {
	tt := newTestTable(t, Options{Logf: quietLogf})
	mustInsert(t, tt.Table, usageRow(1, 1, tt.clk.Now(), 0, 0))
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	tt.Close()
	desc := filepath.Join(tt.dir, "usage", descriptorFile)
	corruptFile(t, desc, func(b []byte) []byte { return b[:len(b)/2] })
	if _, err := OpenTable(tt.dir, "usage", Options{Logf: quietLogf}); err == nil {
		t.Fatal("open succeeded over a truncated descriptor")
	}
}

func TestLeftoverDescriptorTmpRemovedOnOpen(t *testing.T) {
	tt := newTestTable(t, Options{Logf: quietLogf})
	mustInsert(t, tt.Table, usageRow(1, 1, tt.clk.Now(), 0, 0))
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-descriptor-write leaves desc.json.tmp; the committed
	// descriptor must win and the leftover must go.
	tmp := filepath.Join(tt.dir, "usage", descriptorFile+".tmp")
	if err := os.WriteFile(tmp, []byte("half-written desc"), 0o644); err != nil {
		t.Fatal(err)
	}
	tt2 := reopen(t, tt)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("leftover descriptor tmp not removed")
	}
	if rows := queryBox(t, tt2.Table, NewQuery()); len(rows) != 1 {
		t.Fatalf("recovered %d rows, want 1", len(rows))
	}
}

// TestTruncatedTabletQuarantined is the headline degradation case: one of
// two tablets is truncated mid-record (a real torn disk, not a clean
// crash), and the table must open, quarantine it, and serve the other.
func TestTruncatedTabletQuarantined(t *testing.T) {
	tt := newTestTable(t, Options{Logf: quietLogf})
	now := tt.clk.Now()
	// Two periods → two tablets in one flush.
	for i := int64(0); i < 20; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now, 0, i))
	}
	for i := int64(20); i < 40; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now-20*clock.Day, 0, i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	tableDir := filepath.Join(tt.dir, "usage")
	tabs := tabletFiles(t, tableDir)
	if len(tabs) != 2 {
		t.Fatalf("expected 2 tablets, found %d", len(tabs))
	}
	victim := tabs[0]
	corruptFile(t, victim, func(b []byte) []byte { return b[:len(b)/3] })

	tt2 := reopen(t, tt)
	if got := tt2.Stats().TabletsQuarantined.Load(); got != 1 {
		t.Errorf("TabletsQuarantined = %d, want 1", got)
	}
	if n := tt2.DiskTabletCount(); n != 1 {
		t.Errorf("DiskTabletCount = %d, want 1", n)
	}
	rows := queryBox(t, tt2.Table, NewQuery())
	if len(rows) != 20 {
		t.Fatalf("recovered %d rows, want the surviving tablet's 20", len(rows))
	}
	if _, err := os.Stat(victim + quarantineSuffix); err != nil {
		t.Errorf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Errorf("damaged tablet still present under its original name")
	}

	// The reduced descriptor was persisted: a second open must come up
	// clean, with no fresh quarantines, and the quarantine file untouched.
	tt3 := reopen(t, tt2)
	if got := tt3.Stats().TabletsQuarantined.Load(); got != 0 {
		t.Errorf("second open quarantined %d tablets, want 0", got)
	}
	if len(queryBox(t, tt3.Table, NewQuery())) != 20 {
		t.Error("rows lost on second open")
	}
	if _, err := os.Stat(victim + quarantineSuffix); err != nil {
		t.Errorf("quarantine file removed by orphan cleaning: %v", err)
	}
}

// TestBitFlippedBlockQuarantinedWithVerify: a single flipped byte inside a
// block is invisible to footer loading; VerifyOnOpen must catch the
// checksum mismatch and quarantine the tablet instead of letting queries
// fail later.
func TestBitFlippedBlockQuarantined(t *testing.T) {
	tt := newTestTable(t, Options{Logf: quietLogf})
	now := tt.clk.Now()
	for i := int64(0); i < 100; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now+i, float64(i), i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	tt.Close()
	tableDir := filepath.Join(tt.dir, "usage")
	tabs := tabletFiles(t, tableDir)
	if len(tabs) != 1 {
		t.Fatalf("expected 1 tablet, found %d", len(tabs))
	}
	corruptFile(t, tabs[0], func(b []byte) []byte {
		b[64] ^= 0x40 // one bit, inside the first block record
		return b
	})

	// Footer-only open cannot see the damage.
	plain, err := OpenTable(tt.dir, "usage", Options{Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	if got := plain.Stats().TabletsQuarantined.Load(); got != 0 {
		t.Errorf("footer-only open quarantined %d tablets; damage is inside a block", got)
	}
	// ...but the damage surfaces as a query error, not a panic.
	if _, err := plain.QueryAll(NewQuery()); err == nil {
		t.Error("query over a bit-flipped block succeeded")
	}
	if got := plain.Stats().ReadErrors.Load(); got == 0 {
		t.Error("ReadErrors not counted for the corrupt block")
	}
	plain.Close()

	verified, err := OpenTable(tt.dir, "usage", Options{Logf: quietLogf, VerifyOnOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	defer verified.Close()
	if got := verified.Stats().TabletsQuarantined.Load(); got != 1 {
		t.Errorf("VerifyOnOpen quarantined %d tablets, want 1", got)
	}
	rows, err := verified.QueryAll(NewQuery())
	if err != nil {
		t.Fatalf("query after quarantine: %v", err)
	}
	if len(rows) != 0 {
		t.Errorf("quarantined tablet still served %d rows", len(rows))
	}
}

// TestInjectedReadErrorSurfacesAsQueryError: a failing disk read mid-query
// is a per-query error; the table stays up and recovers when the fault
// clears.
func TestInjectedReadErrorSurfacesAsQueryError(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFault(vfs.OsFS{})
	clk := clock.NewFake(testStart)
	tab, err := CreateTable(dir, "usage", usageSchema(), 0, Options{
		Clock: clk, FS: ffs, Logf: quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	now := clk.Now()
	for i := int64(0); i < 50; i++ {
		mustInsert(t, tab, usageRow(1, i, now+i, 0, i))
	}
	if err := tab.FlushAll(); err != nil {
		t.Fatal(err)
	}

	ffs.Inject(&vfs.Fault{Op: vfs.OpRead, Path: ".tab", Persistent: true})
	if _, err := tab.QueryAll(NewQuery()); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("query error = %v, want injected fault", err)
	}
	if got := tab.Stats().ReadErrors.Load(); got == 0 {
		t.Error("ReadErrors not counted")
	}

	ffs.Clear()
	rows, err := tab.QueryAll(NewQuery())
	if err != nil {
		t.Fatalf("query after fault cleared: %v", err)
	}
	if len(rows) != 50 {
		t.Fatalf("got %d rows after fault cleared, want 50", len(rows))
	}
}

// TestFlushFailureRetriesWithoutLoss: a failed flush leaves the group
// pending; the retry flushes it and nothing is lost.
func TestFlushFailureRetriesWithoutLoss(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFault(vfs.OsFS{})
	clk := clock.NewFake(testStart)
	tab, err := CreateTable(dir, "usage", usageSchema(), 0, Options{
		Clock: clk, FS: ffs, Logf: quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	now := clk.Now()
	for i := int64(0); i < 30; i++ {
		mustInsert(t, tab, usageRow(1, i, now+i, 0, i))
	}

	ffs.Inject(&vfs.Fault{Op: vfs.OpCreate, Path: ".tab"})
	if err := tab.FlushAll(); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("FlushAll error = %v, want injected fault", err)
	}
	if got := tab.Stats().FlushFailures.Load(); got != 1 {
		t.Errorf("FlushFailures = %d, want 1", got)
	}

	if err := tab.FlushAll(); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	if got := tab.Stats().FaultRecoveries.Load(); got != 1 {
		t.Errorf("FaultRecoveries = %d, want 1", got)
	}

	// Crash-reopen: every row must have made it.
	tab.Close()
	re, err := OpenTable(dir, "usage", Options{Clock: clk, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rows, err := re.QueryAll(NewQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 || !isPrefixSet(seqsOf(rows)) {
		t.Fatalf("recovered %d rows after flush retry, want all 30", len(rows))
	}
}

// TestMergeFailureBacksOffAndRetries: a failed merge must not take the
// table down or be retried in a hot loop; after the backoff expires the
// retry succeeds and is counted as a recovery.
func TestMergeFailureBacksOffAndRetries(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFault(vfs.OsFS{})
	clk := clock.NewFake(testStart)
	tab, err := CreateTable(dir, "usage", usageSchema(), 0, Options{
		Clock: clk, FS: ffs, Logf: quietLogf, MergeDelay: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	now := clk.Now()
	seq := int64(0)
	batch := func() {
		t.Helper()
		for i := 0; i < 50; i++ {
			mustInsert(t, tab, usageRow(1, seq, now-clock.Hour+seq, 0, seq))
			seq++
		}
		if err := tab.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	batch()
	batch()
	if n := tab.DiskTabletCount(); n != 2 {
		t.Fatalf("expected 2 tablets before merge, got %d", n)
	}
	clk.Advance(2 * clock.Second)

	ffs.Inject(&vfs.Fault{Op: vfs.OpCreate, Path: ".tab"})
	ok, err := tab.MergeStep()
	if ok || !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("MergeStep = (%v, %v), want failed merge", ok, err)
	}
	if got := tab.Stats().MergeFailures.Load(); got != 1 {
		t.Errorf("MergeFailures = %d, want 1", got)
	}
	// Inputs intact; queries unaffected.
	if n := tab.DiskTabletCount(); n != 2 {
		t.Errorf("failed merge changed tablet count to %d", n)
	}
	if rows, err := tab.QueryAll(NewQuery()); err != nil || len(rows) != 100 {
		t.Errorf("query after failed merge: %d rows, err %v", len(rows), err)
	}

	// Within the backoff window: no attempt at all.
	ok, err = tab.MergeStep()
	if ok || err != nil {
		t.Fatalf("MergeStep inside backoff = (%v, %v), want (false, nil)", ok, err)
	}
	if got := tab.Stats().MergeFailures.Load(); got != 1 {
		t.Errorf("backed-off MergeStep attempted a merge (failures %d)", got)
	}

	// Past the backoff: retry succeeds.
	clk.Advance(2 * clock.Second)
	ok, err = tab.MergeStep()
	if !ok || err != nil {
		t.Fatalf("MergeStep after backoff = (%v, %v), want success", ok, err)
	}
	if got := tab.Stats().MergeRetries.Load(); got != 1 {
		t.Errorf("MergeRetries = %d, want 1", got)
	}
	if got := tab.Stats().FaultRecoveries.Load(); got != 1 {
		t.Errorf("FaultRecoveries = %d, want 1", got)
	}
	if n := tab.DiskTabletCount(); n != 1 {
		t.Errorf("tablet count after recovered merge = %d, want 1", n)
	}
	if rows, err := tab.QueryAll(NewQuery()); err != nil || len(rows) != 100 {
		t.Errorf("query after recovered merge: %d rows, err %v", len(rows), err)
	}
}

// TestMergeBackoffCapGrows: repeated failures stretch the backoff
// exponentially up to the cap, never beyond.
func TestMergeBackoffGrowth(t *testing.T) {
	want := []int64{
		1 * clock.Second, 2 * clock.Second, 4 * clock.Second, 8 * clock.Second,
		16 * clock.Second, 32 * clock.Second, 60 * clock.Second, 60 * clock.Second,
	}
	for i, w := range want {
		if got := mergeBackoff(i + 1); got != w {
			t.Errorf("mergeBackoff(%d) = %d, want %d", i+1, got, w)
		}
	}
}

// TestMergeBackoffCapped: the doubling loop is iteration-capped, so a
// pathological mergeFails count — a long outage, or a corrupt value —
// can neither overflow the int64 multiplication nor spin; every count
// past the cap yields exactly the cap.
func TestMergeBackoffCapped(t *testing.T) {
	const maxInt = int(^uint(0) >> 1)
	for _, fails := range []int{mergeBackoffMaxDoublings + 1, 100, 1 << 40, maxInt} {
		if got := mergeBackoff(fails); got != mergeBackoffCap {
			t.Errorf("mergeBackoff(%d) = %d, want cap %d", fails, got, int64(mergeBackoffCap))
		}
	}
	if got := mergeBackoff(-5); got != mergeBackoffBase {
		t.Errorf("mergeBackoff(-5) = %d, want base %d", got, int64(mergeBackoffBase))
	}
}
