package core

import (
	"errors"
	"fmt"
	"math"

	"littletable/internal/agg"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// RollupRule declares one continuous-downsampling job on a table: rows
// are aggregated into (bucket × key-prefix) groups and materialized as
// rows of a destination table with its own, typically much longer, TTL —
// the paper's pattern of keeping raw data briefly and derived summaries
// for years (§2.2, §4.2). Rules are part of the table descriptor, so
// they survive restarts and run wherever the table lands.
type RollupRule struct {
	// Dest names the destination table. It is created on first run with
	// DestSchema and TTL if it does not exist.
	Dest string `json:"dest"`
	// BucketWidth is the rollup bucket in microseconds; required.
	BucketWidth int64 `json:"bucket_width_us"`
	// GroupCols is how many leading primary-key columns to group by.
	GroupCols int `json:"group_cols"`
	// Aggs are the aggregates each destination row materializes.
	Aggs []agg.Agg `json:"aggs"`
	// TTL is the destination table's time-to-live; 0 = keep forever.
	TTL int64 `json:"ttl_us"`
	// Lag is how far behind now a bucket must end before it is rolled
	// up. A bucket is processed once, when it is final; rows arriving
	// later than Lag after their bucket closed are not re-aggregated.
	Lag int64 `json:"lag_us"`
}

// Spec returns the aggregation spec the rule runs.
func (r RollupRule) Spec() agg.Spec {
	return agg.Spec{BucketWidth: r.BucketWidth, GroupCols: r.GroupCols, Aggs: r.Aggs}
}

// Validate checks the rule against the source table's schema.
func (r RollupRule) Validate(src *schema.Schema) error {
	if r.Dest == "" {
		return errors.New("core: rollup rule has no destination table")
	}
	if r.BucketWidth <= 0 {
		return fmt.Errorf("core: rollup bucket width %d must be positive", r.BucketWidth)
	}
	if r.Lag < 0 {
		return fmt.Errorf("core: negative rollup lag %d", r.Lag)
	}
	if err := agg.ValidateSpec(src, r.Spec()); err != nil {
		return err
	}
	// Building the destination schema catches output-name collisions
	// (two aggregates over the same column, a group column named like an
	// aggregate output).
	_, err := r.DestSchema(src)
	return err
}

// DestSchema derives the destination table's schema from the source's:
// the group-key columns, the bucket timestamp, then one column per
// aggregate named by OutputColumn. The primary key is (group cols, ts),
// so each (group, bucket) pair is exactly one row — which is what makes
// re-running a bucket idempotent under primary-key uniqueness.
func (r RollupRule) DestSchema(src *schema.Schema) (*schema.Schema, error) {
	var cols []schema.Column
	var key []string
	for i := 0; i < r.GroupCols && i < len(src.Key)-1; i++ {
		c := src.Columns[src.Key[i]]
		cols = append(cols, schema.Column{Name: c.Name, Type: c.Type})
		key = append(key, c.Name)
	}
	cols = append(cols, schema.Column{Name: schema.TimestampColumn, Type: ltval.Timestamp})
	key = append(key, schema.TimestampColumn)
	for _, a := range r.Aggs {
		cols = append(cols, schema.Column{Name: a.OutputColumn(), Type: aggOutputType(src, a)})
	}
	return schema.New(cols, key)
}

// aggOutputType is the column type an aggregate materializes as.
func aggOutputType(src *schema.Schema, a agg.Agg) ltval.Type {
	switch a.Func {
	case agg.Count:
		return ltval.Int64
	case agg.Avg, agg.Quantile:
		return ltval.Double
	}
	idx := src.ColumnIndex(a.Col)
	if idx < 0 {
		return ltval.Invalid // Validate rejects this before it matters
	}
	if a.Func == agg.Sum {
		if src.ColumnClass(idx) == schema.ClassFloat {
			return ltval.Double
		}
		return ltval.Int64 // int32 sums widen; saturation clamps the rest
	}
	return src.Columns[idx].Type // Min/Max keep the source type
}

// SetRollups replaces the table's rollup rules and persists them in the
// descriptor. Rules are validated against the current schema; duplicate
// destinations are rejected (two rules writing one table would fight
// over the watermark).
func (t *Table) SetRollups(rules []RollupRule) error {
	t.insertMu.Lock()
	defer t.insertMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrTableClosed
	}
	seen := make(map[string]bool, len(rules))
	for _, r := range rules {
		if err := r.Validate(t.sc); err != nil {
			return err
		}
		if r.Dest == t.name {
			return fmt.Errorf("core: rollup destination %q is the source table", r.Dest)
		}
		if seen[r.Dest] {
			return fmt.Errorf("core: two rollup rules write destination %q", r.Dest)
		}
		seen[r.Dest] = true
	}
	old := t.rollups
	t.rollups = append([]RollupRule(nil), rules...)
	if err := t.writeDescriptorLocked(); err != nil {
		t.rollups = old
		return err
	}
	return nil
}

// Rollups returns a copy of the table's rollup rules.
func (t *Table) Rollups() []RollupRule {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]RollupRule(nil), t.rollups...)
}

// BudgetMaintenanceIO charges n bytes against the table's maintenance
// I/O budget, blocking until the token bucket covers them. It returns
// false if the table closed while waiting. With no budget configured it
// is free. Rollup jobs run through it so downsampling competes with
// merges for the same bounded background bandwidth instead of the
// foreground's.
func (t *Table) BudgetMaintenanceIO(n int64) bool {
	b := t.ioBudget
	if b == nil || n <= 0 {
		return true
	}
	return b.take(n)
}

// rollupIOChunk batches budget charges so the token bucket is taken per
// ~64KiB of rollup traffic, not per row.
const rollupIOChunk = 64 << 10

// RollupStep runs one rollup pass: it aggregates every source bucket
// that became final since the last pass and inserts the resulting rows
// into dest. now is the rollup clock (microseconds, same epoch as row
// timestamps); a bucket is final once it ends at or before now−Lag.
//
// Crash consistency (§4.1.2): the watermark is not stored anywhere — it
// is re-derived each pass from dest's own durable contents, probing for
// the latest destination timestamp. Dest rows are generated and inserted
// in ascending bucket order, so LittleTable's prefix-of-insertion-order
// durability means a crash leaves dest with every bucket before the
// watermark complete and at most the watermark bucket partial. The pass
// re-aggregates from the start of the watermark bucket; regenerated rows
// that already landed are skipped by primary-key uniqueness, missing
// groups are filled in, and no bucket is ever double-counted — the
// destination row for a (group, bucket) is written exactly once.
func RollupStep(src, dest *Table, rule RollupRule, now int64) (written int64, err error) {
	spec := rule.Spec()
	end := spec.BucketStart(now - rule.Lag) // buckets ending here or later are not final
	if end == math.MinInt64 {
		return 0, nil // degenerate clock: nothing can be final yet
	}
	start := int64(math.MinInt64)
	wm, ok, err := destWatermark(dest, end-1)
	if err != nil {
		return 0, err
	}
	if ok {
		start = spec.BucketStart(wm)
	}
	if start >= end {
		return 0, nil // nothing newly final
	}
	acc, err := agg.NewAccumulator(src.Schema(), spec)
	if err != nil {
		return 0, err
	}
	it, err := src.Query(Query{MinTs: start, MaxTs: end - 1})
	if err != nil {
		return 0, err
	}
	var pendingIO int64
	charge := func(n int64) bool {
		pendingIO += n
		if pendingIO < rollupIOChunk {
			return true
		}
		n, pendingIO = pendingIO, 0
		return src.BudgetMaintenanceIO(n)
	}
	for it.Next() {
		row := it.Row()
		var sz int64
		for _, v := range row {
			sz += int64(v.EncodedSize())
		}
		if !charge(sz) {
			it.Close()
			return 0, ErrTableClosed
		}
		acc.Add(row)
	}
	scanErr := it.Err()
	it.Close()
	if scanErr != nil {
		return 0, scanErr
	}
	destSc := dest.Schema()
	// Groups() sorts by (bucket, key), so the rows below are generated —
	// and inserted — in ascending bucket order, the order the watermark
	// recovery argument depends on.
	outs := agg.Finalize(spec, acc.Groups())
	rows := make([]schema.Row, 0, len(outs))
	for _, o := range outs {
		row := make(schema.Row, 0, len(destSc.Columns))
		row = append(row, o.Key...)
		row = append(row, ltval.NewTimestamp(o.Bucket))
		for i, v := range o.Values {
			if v.Type == ltval.Invalid {
				// Min/Max over a group whose values were all NaN: no
				// value to report; materialize the column's zero.
				v = ltval.Zero(destSc.Columns[len(o.Key)+1+i].Type)
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	written, err = insertTolerant(dest, rows)
	if written > 0 {
		src.stats.RollupRuns.Add(1)
		src.stats.RollupRowsWritten.Add(written)
	}
	if err != nil {
		return written, err
	}
	if !src.BudgetMaintenanceIO(pendingIO) {
		return written, ErrTableClosed
	}
	return written, nil
}

// destWatermark finds the latest destination timestamp at or below
// limit, probing exponentially widening recent windows before falling
// back to a full scan — on a steadily rolled-up table the newest row is
// moments below limit, so the first narrow probe usually wins and only
// touches tablets overlapping the window (§4.1.2's recovery idiom).
func destWatermark(dest *Table, limit int64) (int64, bool, error) {
	for span := int64(1_000_000); span > 0 && span < 1<<60; span *= 16 { // 1s in µs, widening
		lo := limit - span
		if lo > limit { // subtraction wrapped below MinInt64
			break
		}
		ts, ok, err := maxTsInRange(dest, lo, limit)
		if err != nil || ok {
			return ts, ok, err
		}
	}
	return maxTsInRange(dest, math.MinInt64, limit)
}

// maxTsInRange scans dest rows with min ≤ ts ≤ max and returns the
// largest timestamp seen.
func maxTsInRange(dest *Table, min, max int64) (int64, bool, error) {
	it, err := dest.Query(Query{MinTs: min, MaxTs: max})
	if err != nil {
		return 0, false, err
	}
	defer it.Close()
	sc := dest.Schema()
	var best int64
	found := false
	for it.Next() {
		if ts := sc.Ts(it.Row()); !found || ts > best {
			best, found = ts, true
		}
	}
	return best, found, it.Err()
}

// insertTolerant inserts rows in order, skipping rows whose primary key
// already exists — the idempotent-replay half of the watermark recovery.
// The batch path is tried first; on a duplicate it degrades to per-row
// inserts, preserving order so the prefix-durability argument holds.
func insertTolerant(dest *Table, rows []schema.Row) (int64, error) {
	if len(rows) == 0 {
		return 0, nil
	}
	err := dest.Insert(rows)
	if err == nil {
		return int64(len(rows)), nil
	}
	if !errors.Is(err, ErrDuplicateKey) {
		return 0, err
	}
	var written int64
	for _, row := range rows {
		err := dest.Insert([]schema.Row{row})
		switch {
		case err == nil:
			written++
		case errors.Is(err, ErrDuplicateKey):
			// Already durable from the pass the crash interrupted.
		default:
			return written, err
		}
	}
	return written, nil
}
