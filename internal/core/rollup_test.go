package core

import (
	"fmt"
	"sync"
	"testing"

	"littletable/internal/agg"
	"littletable/internal/clock"
	"littletable/internal/ltval"
	"littletable/internal/vfs"
)

// usageRollupRule aggregates the usage test schema per network per
// minute: row count, sum of seq (int64, exactly checkable), max of rate.
func usageRollupRule() RollupRule {
	return RollupRule{
		Dest:        "usage_1m",
		BucketWidth: clock.Minute,
		GroupCols:   1, // network
		Aggs: []agg.Agg{
			{Func: agg.Count},
			{Func: agg.Sum, Col: "seq"},
			{Func: agg.Max, Col: "rate"},
		},
	}
}

// rollupExpect is the exact destination row a (network, bucket) group
// must materialize as.
type rollupExpect struct {
	count, sumSeq int64
	maxRate       float64
}

// populateRollupSrc inserts rowsPerGroup rows for every (network,
// bucket) pair and returns the exact expected destination contents.
// seq is globally increasing so sums differ per group.
func populateRollupSrc(t *testing.T, src *Table, networks, buckets, rowsPerGroup int, base int64) map[string]rollupExpect {
	t.Helper()
	want := make(map[string]rollupExpect)
	seq := int64(0)
	for b := 0; b < buckets; b++ {
		for n := 1; n <= networks; n++ {
			k := fmt.Sprintf("%d|%d", n, base+int64(b)*clock.Minute)
			e := want[k]
			for d := 0; d < rowsPerGroup; d++ {
				ts := base + int64(b)*clock.Minute + int64(d)
				rate := float64(n*10 + b + d)
				mustInsert(t, src, usageRow(int64(n), int64(d), ts, rate, seq))
				e.count++
				e.sumSeq += seq
				if rate > e.maxRate || e.count == 1 {
					e.maxRate = rate
				}
				seq++
			}
			want[k] = e
		}
	}
	return want
}

// checkRollupDest verifies every destination row exactly equals the
// expected final aggregate for its group — a torn or double-counted
// bucket shows up as a wrong count/sum — and that no group appears
// twice. complete additionally requires every expected group present.
func checkRollupDest(t *testing.T, label string, dest *Table, want map[string]rollupExpect, complete bool) {
	t.Helper()
	rows, err := dest.QueryAll(NewQuery())
	if err != nil {
		t.Fatalf("%s: dest query: %v", label, err)
	}
	seen := make(map[string]bool)
	for _, row := range rows {
		// Dest layout: network, ts, count, sum_seq, max_rate.
		k := fmt.Sprintf("%d|%d", row[0].Int, row[1].Int)
		if seen[k] {
			t.Fatalf("%s: group %s materialized twice", label, k)
		}
		seen[k] = true
		e, ok := want[k]
		if !ok {
			t.Fatalf("%s: unexpected dest group %s", label, k)
		}
		if row[2].Int != e.count || row[3].Int != e.sumSeq || row[4].Float != e.maxRate {
			t.Fatalf("%s: group %s = (count %d, sum %d, max %g), want (%d, %d, %g) — torn or double-counted bucket",
				label, k, row[2].Int, row[3].Int, row[4].Float, e.count, e.sumSeq, e.maxRate)
		}
	}
	if complete && len(rows) != len(want) {
		t.Fatalf("%s: dest has %d groups, want %d", label, len(rows), len(want))
	}
}

func TestRollupDestSchema(t *testing.T) {
	rule := usageRollupRule()
	sc, err := rule.DestSchema(usageSchema())
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"network", "ts", "count", "sum_seq", "max_rate"}
	if len(sc.Columns) != len(wantCols) {
		t.Fatalf("dest schema has %d columns, want %d", len(sc.Columns), len(wantCols))
	}
	for i, name := range wantCols {
		if sc.Columns[i].Name != name {
			t.Fatalf("column %d = %q, want %q", i, sc.Columns[i].Name, name)
		}
	}
	wantTypes := []ltval.Type{ltval.Int64, ltval.Timestamp, ltval.Int64, ltval.Int64, ltval.Double}
	for i, ty := range wantTypes {
		if sc.Columns[i].Type != ty {
			t.Fatalf("column %q type = %v, want %v", sc.Columns[i].Name, sc.Columns[i].Type, ty)
		}
	}
	if sc.KeyLen() != 2 {
		t.Fatalf("dest key length %d, want 2 (network, ts)", sc.KeyLen())
	}
}

func TestSetRollupsValidatesAndPersists(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake(testStart)
	tab, err := CreateTable(dir, "usage", usageSchema(), 0, Options{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	bad := usageRollupRule()
	bad.Aggs = []agg.Agg{{Func: agg.Sum, Col: "nope"}}
	if err := tab.SetRollups([]RollupRule{bad}); err == nil {
		t.Fatal("rule over unknown column accepted")
	}
	self := usageRollupRule()
	self.Dest = "usage"
	if err := tab.SetRollups([]RollupRule{self}); err == nil {
		t.Fatal("self-referential rule accepted")
	}
	rule := usageRollupRule()
	if err := tab.SetRollups([]RollupRule{rule}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenTable(dir, "usage", Options{Clock: clock.NewFake(clk.Now())})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Rollups()
	if len(got) != 1 || got[0].Dest != "usage_1m" || got[0].BucketWidth != clock.Minute || len(got[0].Aggs) != 3 {
		t.Fatalf("rules did not survive reopen: %+v", got)
	}
}

// TestRollupStepWatermark runs two passes with the finality horizon
// advancing between them: the first must materialize only the buckets
// already final, the second only the newly final remainder, and a third
// pass with nothing new must write nothing — the exactly-once contract
// in the steady state.
func TestRollupStepWatermark(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake(testStart)
	opts := Options{Clock: clk, Logf: quietLogf}
	src, err := CreateTable(dir, "usage", usageSchema(), 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	rule := usageRollupRule()
	rule.Lag = clock.Minute
	spec := rule.Spec()
	destSc, err := rule.DestSchema(src.Schema())
	if err != nil {
		t.Fatal(err)
	}
	dest, err := CreateTable(dir, rule.Dest, destSc, rule.TTL, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer dest.Close()

	const networks, buckets, per = 2, 6, 3
	base := spec.BucketStart(testStart - clock.Hour)
	want := populateRollupSrc(t, src, networks, buckets, per, base)

	// now1: buckets 0..3 final (bucket 4 ends at base+5m > now1-Lag).
	now1 := base + 5*clock.Minute
	w1, err := RollupStep(src, dest, rule, now1)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != networks*4 {
		t.Fatalf("pass 1 wrote %d rows, want %d", w1, networks*4)
	}
	partial := make(map[string]rollupExpect)
	for b := 0; b < 4; b++ {
		for n := 1; n <= networks; n++ {
			k := fmt.Sprintf("%d|%d", n, base+int64(b)*clock.Minute)
			partial[k] = want[k]
		}
	}
	checkRollupDest(t, "pass 1", dest, partial, true)

	// now2: everything final.
	now2 := base + int64(buckets+1)*clock.Minute
	w2, err := RollupStep(src, dest, rule, now2)
	if err != nil {
		t.Fatal(err)
	}
	if w2 != networks*(buckets-4) {
		t.Fatalf("pass 2 wrote %d rows, want %d", w2, networks*(buckets-4))
	}
	checkRollupDest(t, "pass 2", dest, want, true)

	w3, err := RollupStep(src, dest, rule, now2)
	if err != nil {
		t.Fatal(err)
	}
	if w3 != 0 {
		t.Fatalf("steady-state pass wrote %d rows, want 0", w3)
	}
	checkRollupDest(t, "pass 3", dest, want, true)

	if runs := src.Stats().RollupRuns.Load(); runs != 2 {
		t.Fatalf("RollupRuns = %d, want 2 (third pass wrote nothing)", runs)
	}
	if n := src.Stats().RollupRowsWritten.Load(); n != int64(networks*buckets) {
		t.Fatalf("RollupRowsWritten = %d, want %d", n, networks*buckets)
	}
}

// TestRollupCrashAtEveryBarrier is the kill test for continuous
// downsampling: a fully populated source rolls up into a destination
// whose tiny flush size and async workers force durability barriers in
// the middle of the rollup's insert stream, and the harness takes a
// crash image at every one. Each image must reopen to a destination
// with no torn rollup row and no double-counted bucket (every present
// row exactly equals its final aggregate), and re-running the rollup on
// the recovered pair must converge to exactly the full expected
// contents — the watermark re-derivation plus primary-key-idempotent
// replay is the mechanism under test.
func TestRollupCrashAtEveryBarrier(t *testing.T) {
	mem := vfs.NewMem()
	clk := clock.NewFake(testStart)
	srcOpts := Options{Clock: clk, FS: mem, SyncWrites: true, Logf: quietLogf}
	src, err := CreateTable("/db", "usage", usageSchema(), 0, srcOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	rule := usageRollupRule()
	spec := rule.Spec()
	destSc, err := rule.DestSchema(src.Schema())
	if err != nil {
		t.Fatal(err)
	}
	// Tiny flush size + async workers: rollup inserts seal and flush
	// mid-stream, so barriers — and crash images — land inside a pass.
	destOpts := Options{Clock: clk, FS: mem, SyncWrites: true, Logf: quietLogf,
		FlushWorkers: 2, FlushSize: 256}
	dest, err := CreateTable("/db", rule.Dest, destSc, rule.TTL, destOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer dest.Close()

	const networks, buckets, per = 3, 6, 4
	base := spec.BucketStart(testStart - clock.Hour)
	want := populateRollupSrc(t, src, networks, buckets, per, base)
	if err := src.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Snapshot every durability barrier from here on: the source is
	// durable, so every image captures the rollup path mid-write.
	type snap struct {
		fs       *vfs.MemFS
		op, path string
	}
	var snapMu sync.Mutex
	var snaps []snap
	mem.SetBarrierHook(func(op, path string) {
		c := mem.CrashClone()
		snapMu.Lock()
		snaps = append(snaps, snap{fs: c, op: op, path: path})
		snapMu.Unlock()
	})

	// Two passes with the horizon advancing, so the second pass probes a
	// non-empty destination watermark under the barrier hook too.
	now1 := base + 5*clock.Minute // buckets 0..4 final (Lag 0)
	if _, err := RollupStep(src, dest, rule, now1); err != nil {
		t.Fatal(err)
	}
	if err := dest.FlushAll(); err != nil {
		t.Fatal(err)
	}
	nowFinal := base + int64(buckets)*clock.Minute
	if _, err := RollupStep(src, dest, rule, nowFinal); err != nil {
		t.Fatal(err)
	}
	if err := dest.FlushAll(); err != nil {
		t.Fatal(err)
	}
	mem.SetBarrierHook(nil)
	snaps = append(snaps, snap{fs: mem.CrashClone(), op: "final", path: ""})
	if len(snaps) < 5 {
		t.Fatalf("rollup produced only %d durability barriers; not exercising the harness", len(snaps))
	}

	for i, s := range snaps {
		label := fmt.Sprintf("crash %d/%d after %s %s", i+1, len(snaps), s.op, s.path)
		reOpts := Options{Clock: clock.NewFake(nowFinal), FS: s.fs, SyncWrites: true, Logf: quietLogf}
		reSrc, err := OpenTable("/db", "usage", reOpts)
		if err != nil {
			t.Fatalf("%s: reopen src: %v", label, err)
		}
		reDest, err := OpenTable("/db", rule.Dest, reOpts)
		if err != nil {
			reSrc.Close()
			t.Fatalf("%s: reopen dest: %v", label, err)
		}
		if q := reDest.Stats().TabletsQuarantined.Load(); q != 0 {
			t.Fatalf("%s: %d dest tablets quarantined after a pure power cut", label, q)
		}
		// Whatever survived must already be exact — a crash may lose
		// trailing rows, never tear or double-count one.
		checkRollupDest(t, label+" (recovered)", reDest, want, false)
		// Recovery: one more pass must converge to exactly the full set.
		if _, err := RollupStep(reSrc, reDest, rule, nowFinal); err != nil {
			t.Fatalf("%s: recovery rollup: %v", label, err)
		}
		checkRollupDest(t, label+" (resumed)", reDest, want, true)
		reDest.Close()
		reSrc.Close()
	}
}

// TestRollupSumSaturationSurvivesRollup pins saturating semantics end to
// end: a group whose int64 sum overflows materializes the sticky clamp,
// not a wrapped number.
func TestRollupSumSaturation(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake(testStart)
	opts := Options{Clock: clk, Logf: quietLogf}
	src, err := CreateTable(dir, "usage", usageSchema(), 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	rule := usageRollupRule()
	spec := rule.Spec()
	destSc, err := rule.DestSchema(src.Schema())
	if err != nil {
		t.Fatal(err)
	}
	dest, err := CreateTable(dir, rule.Dest, destSc, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer dest.Close()
	base := spec.BucketStart(testStart - clock.Hour)
	huge := int64(1) << 62
	for d := int64(0); d < 4; d++ {
		mustInsert(t, src, usageRow(1, d, base+d, 1.0, huge))
	}
	if _, err := RollupStep(src, dest, rule, base+2*clock.Minute); err != nil {
		t.Fatal(err)
	}
	rows, err := dest.QueryAll(NewQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d dest rows, want 1", len(rows))
	}
	if got := rows[0][3].Int; got != int64(^uint64(0)>>1) { // MaxInt64
		t.Fatalf("overflowed sum materialized %d, want saturated MaxInt64", got)
	}
}
