package core

import (
	"math/rand"
	"sort"
	"testing"

	"littletable/internal/clock"
	"littletable/internal/schema"
)

// TestEngineStateMachine is a model-based test over the engine's full
// operation surface: random interleavings of inserts, flushes, merges,
// TTL expiry, bulk deletes, clock advances, and crash/reopens, checked
// after every step against an in-memory reference model. The model tracks
// durability explicitly: rows are "volatile" until the flush that covers
// them completes, and a crash must retain exactly a prefix of insertion
// order.
func TestEngineStateMachine(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run("", func(t *testing.T) {
			runStateMachine(t, seed, 400, Options{FlushSize: 4 << 10, MergeDelay: clock.Second})
		})
	}
}

// TestEngineStateMachineParallel re-runs the state machine with the
// parallel read path fully enabled — worker-pool opens, prefetch
// pipelines, and the shared block cache — so every model verification
// also checks that parallel queries agree with the reference through
// crashes, merges, deletes, and TTL changes.
func TestEngineStateMachineParallel(t *testing.T) {
	for seed := int64(20); seed < 24; seed++ {
		t.Run("", func(t *testing.T) {
			runStateMachine(t, seed, 400, Options{
				FlushSize:        4 << 10,
				MergeDelay:       clock.Second,
				QueryParallelism: 8,
				PrefetchDepth:    3,
				BlockCacheBytes:  4 << 20,
			})
		})
	}
}

type modelRow struct {
	row     schema.Row
	seq     int64
	durable bool
}

func runStateMachine(t *testing.T, seed int64, steps int, opts Options) {
	rng := rand.New(rand.NewSource(seed))
	tt := newTestTable(t, opts)
	sc := tt.Schema()
	ttl := int64(0)

	var model []modelRow
	var seq int64

	exists := func(row schema.Row) bool {
		for _, m := range model {
			if sc.CompareKeys(m.row, row) == 0 {
				return true
			}
		}
		return false
	}
	liveRows := func(now int64) []schema.Row {
		var out []schema.Row
		for _, m := range model {
			if ttl > 0 && sc.Ts(m.row) < now-ttl {
				continue
			}
			out = append(out, m.row)
		}
		sort.Slice(out, func(i, j int) bool { return sc.CompareKeys(out[i], out[j]) < 0 })
		return out
	}

	verify := func(step int) {
		got := queryBox(t, tt.Table, NewQuery())
		want := liveRows(tt.clk.Now())
		if len(got) != len(want) {
			t.Fatalf("seed %d step %d: engine has %d rows, model %d", seed, step, len(got), len(want))
		}
		for i := range want {
			if sc.CompareKeys(got[i], want[i]) != 0 {
				t.Fatalf("seed %d step %d: row %d differs", seed, step, i)
			}
		}
	}

	for step := 0; step < steps; step++ {
		switch op := rng.Intn(100); {
		case op < 55: // insert a small batch
			n := 1 + rng.Intn(5)
			for i := 0; i < n; i++ {
				ts := tt.clk.Now() - rng.Int63n(20*clock.Day)
				row := usageRow(rng.Int63n(3), rng.Int63n(4), ts, float64(step), seq)
				if exists(row) {
					if err := tt.Insert([]schema.Row{row}); err == nil {
						t.Fatalf("seed %d step %d: duplicate accepted", seed, step)
					}
					continue
				}
				if err := tt.Insert([]schema.Row{row}); err != nil {
					t.Fatalf("seed %d step %d: insert: %v", seed, step, err)
				}
				model = append(model, modelRow{row: row, seq: seq})
				seq++
			}
		case op < 65: // flush everything
			if err := tt.FlushAll(); err != nil {
				t.Fatal(err)
			}
			for i := range model {
				model[i].durable = true
			}
		case op < 72: // one merge round
			tt.clk.Advance(2 * clock.Second)
			if _, err := tt.MergeStep(); err != nil {
				t.Fatal(err)
			}
		case op < 78: // advance time substantially
			tt.clk.Advance(time64(rng))
		case op < 84: // alter TTL (only ever tightening) and expire
			// Loosening a TTL would resurface rows the engine still holds
			// physically but the model dropped at a crash (the crash
			// rebuild reads through the TTL filter); production TTL changes
			// for privacy compliance only tighten, so the model does too.
			var candidates []int64
			for _, c := range []int64{5 * clock.Day, 15 * clock.Day} {
				if ttl == 0 || c <= ttl {
					candidates = append(candidates, c)
				}
			}
			ttl = candidates[rng.Intn(len(candidates))]
			if err := tt.AlterTTL(ttl); err != nil {
				t.Fatal(err)
			}
			if err := tt.ExpireNow(); err != nil {
				t.Fatal(err)
			}
			// Expired rows may be physically reclaimed; the model keeps
			// them but liveRows filters, matching query semantics.
		case op < 92: // bulk delete a random box
			q := randomBox(rng, tt.clk.Now())
			q.Descending = false
			if _, err := tt.DeleteWhere(q, nil); err != nil {
				t.Fatal(err)
			}
			var kept []modelRow
			for _, m := range model {
				row := m.row
				doomed := true
				if q.Lower != nil {
					c := sc.CompareRowToKey(row, q.Lower)
					if c < 0 || (c == 0 && !q.LowerInc) {
						doomed = false
					}
				}
				if q.Upper != nil {
					c := sc.CompareRowToKey(row, q.Upper)
					if c > 0 || (c == 0 && !q.UpperInc) {
						doomed = false
					}
				}
				if ts := sc.Ts(row); ts < q.MinTs || ts > q.MaxTs {
					doomed = false
				}
				if !doomed {
					kept = append(kept, m)
				}
			}
			model = kept
			// DeleteWhere flushes as a side effect.
			for i := range model {
				model[i].durable = true
			}
		default: // crash + reopen
			tt2 := reopen(t, tt)
			tt.Table = tt2.Table
			// The crash drops volatile rows — which must form a suffix of
			// insertion order among surviving rows.
			var kept []modelRow
			for _, m := range model {
				if m.durable {
					kept = append(kept, m)
				}
			}
			// Engine may have flushed more than the model knows (size
			// triggers); reconcile: whatever the engine retained must be a
			// superset of the durable model rows and a prefix by seq.
			got := queryBox(t, tt.Table, NewQuery())
			gotKeys := map[string]bool{}
			for _, r := range got {
				gotKeys[string(sc.AppendKey(nil, r))] = true
			}
			for _, m := range kept {
				if ttl > 0 && sc.Ts(m.row) < tt.clk.Now()-ttl {
					continue
				}
				if !gotKeys[string(sc.AppendKey(nil, m.row))] {
					t.Fatalf("seed %d step %d: durable row lost in crash", seed, step)
				}
			}
			// Rebuild the model from engine truth (all now durable),
			// preserving seq order for the prefix check.
			surviving := map[string]bool{}
			for _, r := range got {
				surviving[string(sc.AppendKey(nil, r))] = true
			}
			var next []modelRow
			maxSeq, minMissing := int64(-1), int64(1<<62)
			for _, m := range model {
				if surviving[string(sc.AppendKey(nil, m.row))] {
					m.durable = true
					next = append(next, m)
					if m.seq > maxSeq {
						maxSeq = m.seq
					}
				} else if ttl == 0 || sc.Ts(m.row) >= tt.clk.Now()-ttl {
					if m.seq < minMissing {
						minMissing = m.seq
					}
				}
			}
			// Prefix-of-insertion-order: no retained row may have a larger
			// seq than a lost one... unless the lost one was removed by a
			// delete (model already dropped those) or TTL (filtered above).
			if minMissing < maxSeq {
				t.Fatalf("seed %d step %d: crash kept seq %d but lost seq %d", seed, step, maxSeq, minMissing)
			}
			model = next
		}
		if step%20 == 19 {
			verify(step)
		}
	}
	verify(steps)
}

func time64(rng *rand.Rand) int64 {
	return []int64{clock.Minute, clock.Hour, clock.Day}[rng.Intn(3)]
}
