package core

import (
	"sync/atomic"

	"littletable/internal/block"
)

// Stats are per-table counters, exported for the production-metrics
// reproduction (§5.2): scan efficiency (Figure 9), insert/query rates
// (§5.2.3), and merge write amplification (§5.1.3).
type Stats struct {
	RowsInserted   atomic.Int64
	InsertBatches  atomic.Int64
	RowsReturned   atomic.Int64
	RowsScanned    atomic.Int64
	Queries        atomic.Int64
	TabletsFlushed atomic.Int64
	BytesFlushed   atomic.Int64
	Merges         atomic.Int64
	BytesMerged    atomic.Int64 // bytes written by merges (rewrite cost)
	RowsRewritten  atomic.Int64 // rows rewritten by merges
	TabletsExpired atomic.Int64
	UniqueFastNew  atomic.Int64 // uniqueness via newest-timestamp fast path
	UniqueFastKey  atomic.Int64 // uniqueness via largest-key fast path
	UniqueBloom    atomic.Int64 // uniqueness resolved by Bloom filters alone
	UniqueProbes   atomic.Int64 // uniqueness requiring a point read

	// Robustness counters: how the table has coped with bad storage.
	TabletsQuarantined atomic.Int64 // tablets set aside as corrupt at open
	FlushFailures      atomic.Int64 // flush attempts that returned an error
	MergeFailures      atomic.Int64 // merge attempts that returned an error
	MergeRetries       atomic.Int64 // merge attempts made after a failure
	FaultRecoveries    atomic.Int64 // flush/merge successes after >=1 failure
	ReadErrors         atomic.Int64 // query-time tablet read errors surfaced

	// Parallel read-path counters.
	BlocksRead    atomic.Int64 // blocks obtained by query cursors
	PrefetchHits  atomic.Int64 // blocks served by a prefetch pipeline
	ParallelOpens atomic.Int64 // tablet sources opened by a query worker pool

	// Write-pipeline counters.
	GroupCommits       atomic.Int64 // insert-lock acquisitions that applied >=1 queued batch
	TabletsSealed      atomic.Int64 // memtables sealed (frozen + swapped for a fresh one)
	AsyncFlushes       atomic.Int64 // flush groups written by background workers
	BackpressureStalls atomic.Int64 // inserts that blocked on the unflushed-bytes cap
	CommitFailures     atomic.Int64 // descriptor commits that failed, losing sealed rows
	RowsLost           atomic.Int64 // rows dropped by failed descriptor commits

	// Maintenance-scheduler counters.
	MergesInFlight            atomic.Int64 // gauge: merges currently running
	MergeWaitNs               atomic.Int64 // ns merge-eligible periods waited for a worker
	ExpiriesInFlight          atomic.Int64 // gauge: TTL expiry rounds currently running
	ExpiryWaitNs              atomic.Int64 // ns due expiry work waited for a worker
	ExpiryRuns                atomic.Int64 // expiry rounds that reclaimed >=1 tablet
	MaintenanceBytesThrottled atomic.Int64 // maintenance I/O bytes delayed by the budget
	MaintenanceThrottleNs     atomic.Int64 // ns maintenance spent blocked in the budget

	// Migration counters (sealed-tablet shipping between shards).
	TabletsInstalled atomic.Int64 // tablets received from another shard and published
	BytesInstalled   atomic.Int64 // bytes of those tablets

	// Block-encoding counters (flush + merge + retention rewrites).
	BlocksEncoded         atomic.Int64 // blocks finished by tablet writers
	BlocksEncodedColumnar atomic.Int64 // blocks that chose the columnar layout
	BytesBeforeEncode     atomic.Int64 // legacy-image bytes before codec selection
	BytesAfterEncode      atomic.Int64 // bytes of the chosen block images
	ColumnsDeltaEncoded   atomic.Int64 // columns written delta-of-delta
	ColumnsXOREncoded     atomic.Int64 // columns written as XOR bitstreams
	ColumnsDictEncoded    atomic.Int64 // columns written dictionary/lzf
	ColumnsPlainEncoded   atomic.Int64 // columns that fell back to plain

	// Aggregation + downsampling counters (ROADMAP item 3). Agg* count
	// the MsgAggQuery read path per scanned table; Rollup* count the
	// continuous-downsampling jobs with this table as the source.
	AggQueries        atomic.Int64 // agg queries that scanned this table
	AggRowsFolded     atomic.Int64 // rows folded into group states by agg queries
	RollupRuns        atomic.Int64 // rollup job runs that wrote >=1 bucket
	RollupRowsWritten atomic.Int64 // rows written into rollup destinations
}

// addEncode folds a tablet writer's encoder report into the counters.
func (s *Stats) addEncode(e block.EncodeStats) {
	s.BlocksEncoded.Add(e.Blocks)
	s.BlocksEncodedColumnar.Add(e.ColumnarBlocks)
	s.BytesBeforeEncode.Add(e.BytesBefore)
	s.BytesAfterEncode.Add(e.BytesAfter)
	s.ColumnsDeltaEncoded.Add(e.ColsDelta)
	s.ColumnsXOREncoded.Add(e.ColsXOR)
	s.ColumnsDictEncoded.Add(e.ColsDict)
	s.ColumnsPlainEncoded.Add(e.ColsPlain)
}

// StatsSnapshot is a plain copy of the counters at one instant.
type StatsSnapshot struct {
	RowsInserted   int64
	InsertBatches  int64
	RowsReturned   int64
	RowsScanned    int64
	Queries        int64
	TabletsFlushed int64
	BytesFlushed   int64
	Merges         int64
	BytesMerged    int64
	RowsRewritten  int64
	TabletsExpired int64
	UniqueFastNew  int64
	UniqueFastKey  int64
	UniqueBloom    int64
	UniqueProbes   int64

	TabletsQuarantined int64
	FlushFailures      int64
	MergeFailures      int64
	MergeRetries       int64
	FaultRecoveries    int64
	ReadErrors         int64

	BlocksRead    int64
	PrefetchHits  int64
	ParallelOpens int64

	GroupCommits       int64
	TabletsSealed      int64
	AsyncFlushes       int64
	BackpressureStalls int64
	CommitFailures     int64
	RowsLost           int64

	MergesInFlight            int64
	MergeWaitNs               int64
	ExpiriesInFlight          int64
	ExpiryWaitNs              int64
	ExpiryRuns                int64
	MaintenanceBytesThrottled int64
	MaintenanceThrottleNs     int64

	TabletsInstalled int64
	BytesInstalled   int64

	BlocksEncoded         int64
	BlocksEncodedColumnar int64
	BytesBeforeEncode     int64
	BytesAfterEncode      int64
	ColumnsDeltaEncoded   int64
	ColumnsXOREncoded     int64
	ColumnsDictEncoded    int64
	ColumnsPlainEncoded   int64

	AggQueries        int64
	AggRowsFolded     int64
	RollupRuns        int64
	RollupRowsWritten int64
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		RowsInserted:   s.RowsInserted.Load(),
		InsertBatches:  s.InsertBatches.Load(),
		RowsReturned:   s.RowsReturned.Load(),
		RowsScanned:    s.RowsScanned.Load(),
		Queries:        s.Queries.Load(),
		TabletsFlushed: s.TabletsFlushed.Load(),
		BytesFlushed:   s.BytesFlushed.Load(),
		Merges:         s.Merges.Load(),
		BytesMerged:    s.BytesMerged.Load(),
		RowsRewritten:  s.RowsRewritten.Load(),
		TabletsExpired: s.TabletsExpired.Load(),
		UniqueFastNew:  s.UniqueFastNew.Load(),
		UniqueFastKey:  s.UniqueFastKey.Load(),
		UniqueBloom:    s.UniqueBloom.Load(),
		UniqueProbes:   s.UniqueProbes.Load(),

		TabletsQuarantined: s.TabletsQuarantined.Load(),
		FlushFailures:      s.FlushFailures.Load(),
		MergeFailures:      s.MergeFailures.Load(),
		MergeRetries:       s.MergeRetries.Load(),
		FaultRecoveries:    s.FaultRecoveries.Load(),
		ReadErrors:         s.ReadErrors.Load(),

		BlocksRead:    s.BlocksRead.Load(),
		PrefetchHits:  s.PrefetchHits.Load(),
		ParallelOpens: s.ParallelOpens.Load(),

		GroupCommits:       s.GroupCommits.Load(),
		TabletsSealed:      s.TabletsSealed.Load(),
		AsyncFlushes:       s.AsyncFlushes.Load(),
		BackpressureStalls: s.BackpressureStalls.Load(),
		CommitFailures:     s.CommitFailures.Load(),
		RowsLost:           s.RowsLost.Load(),

		MergesInFlight:            s.MergesInFlight.Load(),
		MergeWaitNs:               s.MergeWaitNs.Load(),
		ExpiriesInFlight:          s.ExpiriesInFlight.Load(),
		ExpiryWaitNs:              s.ExpiryWaitNs.Load(),
		ExpiryRuns:                s.ExpiryRuns.Load(),
		MaintenanceBytesThrottled: s.MaintenanceBytesThrottled.Load(),
		MaintenanceThrottleNs:     s.MaintenanceThrottleNs.Load(),

		TabletsInstalled: s.TabletsInstalled.Load(),
		BytesInstalled:   s.BytesInstalled.Load(),

		BlocksEncoded:         s.BlocksEncoded.Load(),
		BlocksEncodedColumnar: s.BlocksEncodedColumnar.Load(),
		BytesBeforeEncode:     s.BytesBeforeEncode.Load(),
		BytesAfterEncode:      s.BytesAfterEncode.Load(),
		ColumnsDeltaEncoded:   s.ColumnsDeltaEncoded.Load(),
		ColumnsXOREncoded:     s.ColumnsXOREncoded.Load(),
		ColumnsDictEncoded:    s.ColumnsDictEncoded.Load(),
		ColumnsPlainEncoded:   s.ColumnsPlainEncoded.Load(),

		AggQueries:        s.AggQueries.Load(),
		AggRowsFolded:     s.AggRowsFolded.Load(),
		RollupRuns:        s.RollupRuns.Load(),
		RollupRowsWritten: s.RollupRowsWritten.Load(),
	}
}

// ScanRatio returns rows scanned / rows returned across all queries so far,
// the per-table quantity behind Figure 9. Returns 0 with no returned rows.
func (s StatsSnapshot) ScanRatio() float64 {
	if s.RowsReturned == 0 {
		return 0
	}
	return float64(s.RowsScanned) / float64(s.RowsReturned)
}

// WriteAmplification returns total bytes written (flushes + merges) per
// byte flushed, the quantity behind Figure 3's equilibrium analysis.
func (s StatsSnapshot) WriteAmplification() float64 {
	if s.BytesFlushed == 0 {
		return 0
	}
	return float64(s.BytesFlushed+s.BytesMerged) / float64(s.BytesFlushed)
}
