package core

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"littletable/internal/blockcache"
	"littletable/internal/ltval"
	"littletable/internal/memtable"
	"littletable/internal/period"
	"littletable/internal/schema"
	"littletable/internal/tablet"
	"littletable/internal/vfs"
)

// Errors returned by table operations.
var (
	ErrDuplicateKey = errors.New("core: duplicate primary key")
	ErrTableClosed  = errors.New("core: table closed")
	ErrBadQuery     = errors.New("core: invalid query")

	// ErrRowsLost reports that sealed rows were dropped because the
	// descriptor commit failed after their tablet files were written. The
	// loss is permanent (the rows are gone from memory and were never
	// durable); callers receive it so the loss is observed, not merely
	// logged. On a background flush it is latched and returned by the next
	// Insert, Tick, or FlushAll — that caller's own operation succeeded.
	ErrRowsLost = errors.New("core: descriptor commit failed, rows lost")
)

// fillingTablet is an in-memory tablet accepting inserts for one time
// period (§3.4.3: LittleTable fills several in-memory tablets at once,
// binned by the same periods it uses to limit merging).
type fillingTablet struct {
	mt  *memtable.Memtable
	per period.Period
	// prereqs are tablets that must be flushed before this one (the flush
	// dependency graph of §3.4.3; edge u→t is stored as t.prereqs[u]).
	prereqs map[*fillingTablet]bool
	frozen  bool
}

// groupState tracks a sealed flush group through the write pipeline.
type groupState int

const (
	// gsQueued: sealed, waiting for a flusher to claim it.
	gsQueued groupState = iota
	// gsWriting: a flusher is writing its tablet files.
	gsWriting
	// gsWritten: files are on disk, awaiting an in-order descriptor commit.
	gsWritten
)

// flushGroup is a set of frozen tablets that must reach the descriptor in a
// single atomic update (a dependency closure). Groups are sealed in
// insertion order and commit in that same order — files may be written
// concurrently by several flush workers, but the descriptor only ever
// names a prefix of the seal sequence, which is what preserves the §3.1
// prefix-durability guarantee under concurrent flushing.
type flushGroup struct {
	tablets []*fillingTablet
	bytes   int64 // encoded memtable bytes at seal time (backpressure accounting)

	// Pipeline state, guarded by Table.mu.
	state groupState
	seqs  []uint64      // tablet sequence numbers, reserved at claim time
	disks []*diskTablet // written but uncommitted output
}

// diskTablet is an open on-disk tablet plus lifecycle state. The base
// reference is held by the table; queries take additional references so
// merges and TTL expiry can drop tablets without invalidating open cursors.
type diskTablet struct {
	rec       tabletRecord
	tab       *tablet.Tablet
	path      string
	refs      int  // guarded by Table.mu
	dropped   bool // no longer in the descriptor
	busy      bool // being merged; excluded from further maintenance
	addedAt   int64
	wroteGran period.Granularity // granularity at write time, for merge delay
}

// Table is one LittleTable table: a union of in-memory and on-disk tablets
// (§3.2). All methods are safe for concurrent use. Inserts to a table are
// serialized with respect to each other but not with queries, mirroring the
// paper's lock-table design (§3.4.4).
type Table struct {
	name string
	dir  string
	opts Options

	// insertMu serializes batch application and schema changes; queries do
	// not take it. Inserters enqueue onto insertQ first, so whichever
	// caller holds insertMu applies every queued batch in one go (group
	// commit): the lock is taken once per group of batches, not once per
	// row.
	insertMu sync.Mutex

	// iqMu guards insertQ, the group-commit queue of waiting batches.
	iqMu    sync.Mutex
	insertQ []*insertReq

	// maintMu coordinates structural maintenance. Merges take the read
	// side — merges on disjoint periods share no inputs (§3.4.2 forbids
	// cross-period merges), so they may run in parallel, serialized only
	// by the per-period merging set and busy flags under mu. DeleteWhere
	// and tiering take the write side: they rewrite or relocate arbitrary
	// tablets and must see no merge in flight. Flushes never take it: the
	// group state machine under mu orders their commits. Lock order:
	// maintMu before mu.
	maintMu sync.RWMutex

	// descMu serializes descriptor file writes. Foreground paths write
	// synchronously under mu (writeDescriptorLocked, lock order mu →
	// descMu); background maintenance commits mutate state and bump
	// descGen under mu, then persist OUTSIDE mu (persistDescriptor), so
	// inserts never wait out a descriptor's disk latency behind a merge.
	// The generation pair keeps the on-disk descriptor monotone: a
	// snapshot is only written if no newer one already landed.
	descMu      sync.Mutex
	descGen     uint64 // guarded by mu: state changes needing persistence
	descWritten uint64 // guarded by descMu: last generation on disk

	// mu guards the fields below. It is held only for short, in-memory
	// critical sections plus foreground descriptor writes.
	mu          sync.Mutex
	flushCond   *sync.Cond
	sc          *schema.Schema
	ttl         int64
	rollups     []RollupRule
	nextSeq     uint64
	filling     map[period.Period]*fillingTablet
	lastInsert  *fillingTablet
	pending     []*flushGroup
	sealedBytes int64         // sum of pending groups' bytes not yet committed
	disk        []*diskTablet // sorted by (MinTs, Seq)
	maxTs       int64
	hasRows     bool
	closed      bool

	// Flush worker pool (nil/zero when Options.FlushWorkers == 0).
	flushKick chan struct{} // buffered(1) doorbell: sealed work exists
	stopFlush chan struct{} // closed by Close to stop the workers
	flushWG   sync.WaitGroup

	// Maintenance worker pool (maintKick nil when Options.MergeWorkers ==
	// 0; the rest initialized always so serial MergeStep shares the claim
	// logic). merging holds periods with a merge in flight; mergeWaitSince
	// and expireWaitSince record when work first became claimable, for
	// priority aging and the *WaitNs counters. All guarded by mu except
	// the WaitGroup and channels.
	maintKick       chan struct{} // buffered(1) doorbell: maintenance work exists
	stopMaint       chan struct{} // closed by Close; also unblocks the I/O budget
	maintWG         sync.WaitGroup
	maintCond       *sync.Cond // broadcast on any maintenance state change
	merging         map[period.Period]bool
	mergeWaitSince  map[period.Period]int64 // period -> wall ns first claimable
	expiring        bool
	expireWaitSince int64
	ioBudget        *ioBudget // nil when MaintenanceIOBytesPerSec == 0

	// Fault-recovery state (guarded by mu): consecutive flush/merge
	// failures and, for merges, the earliest time of the next attempt
	// (capped exponential backoff so a failing disk is not hammered).
	flushFails   int
	mergeFails   int
	mergeRetryAt int64

	// Export state (guarded by mu): the pinned sealed-tablet snapshot a
	// migration is copying out, keyed by file name, and the count of
	// outstanding maintenance holds. While maintHold > 0 no merge is
	// claimed and no TTL expiry runs, so the disk tablet set only grows
	// (flushes are unaffected — they only add tablets); that monotonicity
	// is what lets a migration's cutover pass copy just the delta.
	exports   map[string]*diskTablet
	maintHold int

	// asyncErr latches a row-loss error (ErrRowsLost) from a background
	// flush so the next foreground caller returns it instead of the loss
	// surviving only as a log line. Guarded by mu; cleared when taken.
	asyncErr error

	stats Stats

	// blockCache, when enabled, is shared by every tablet this table
	// opens; handles make keys unique per open instance.
	blockCache *blockcache.Cache
	nextHandle atomic.Uint64
}

// CreateTable makes a new table directory under root and returns the open
// table. ttl of 0 means rows never expire.
func CreateTable(root, name string, sc *schema.Schema, ttl int64, opts Options) (*Table, error) {
	o := opts.withDefaults()
	dir := filepath.Join(root, name)
	if err := o.FS.MkdirAll(dir); err != nil {
		return nil, err
	}
	if _, err := o.FS.Stat(filepath.Join(dir, descriptorFile)); err == nil {
		return nil, fmt.Errorf("core: table %q already exists", name)
	}
	d := &descriptor{Name: name, Schema: sc, TTL: ttl, NextSeq: 1}
	if err := writeDescriptor(o.FS, dir, d, o.SyncWrites); err != nil {
		return nil, err
	}
	return openTable(dir, d, o)
}

// OpenTable opens an existing table directory, recovering from any crash:
// tablet files not named by the descriptor are deleted (their rows were
// never durable), preserving the prefix-of-insertion-order guarantee.
// Tablets that fail to open — truncated, corrupt, or unreadable — are
// quarantined (renamed *.quarantine, dropped from the descriptor) and the
// table opens over the survivors; one bad file never takes the table down.
func OpenTable(root, name string, opts Options) (*Table, error) {
	o := opts.withDefaults()
	dir := filepath.Join(root, name)
	d, err := readDescriptor(o.FS, dir)
	if err != nil {
		return nil, err
	}
	if err := cleanOrphans(o.FS, dir, d); err != nil {
		return nil, err
	}
	return openTable(dir, d, o)
}

func openTable(dir string, d *descriptor, opts Options) (*Table, error) {
	t := &Table{
		name:    d.Name,
		dir:     dir,
		opts:    opts,
		sc:      d.Schema,
		ttl:     d.TTL,
		rollups: d.Rollups,
		nextSeq: d.NextSeq,
		filling: make(map[period.Period]*fillingTablet),
	}
	t.flushCond = sync.NewCond(&t.mu)
	t.maintCond = sync.NewCond(&t.mu)
	t.merging = make(map[period.Period]bool)
	t.mergeWaitSince = make(map[period.Period]int64)
	t.stopMaint = make(chan struct{})
	if rate := opts.maintenanceIOBytesPerSec(); rate > 0 {
		t.ioBudget = newIOBudget(rate, t.stopMaint, &t.stats)
	}
	if opts.BlockCacheBytes > 0 {
		t.blockCache = blockcache.New(opts.BlockCacheBytes)
	}
	now := opts.Clock.Now()
	quarantined := 0
	for _, rec := range d.Tablets {
		loc := dir
		if rec.Dir != "" {
			loc = rec.Dir // cold-tiered tablet (§6)
		}
		path := filepath.Join(loc, rec.File)
		tab, err := tablet.OpenFS(opts.FS, path)
		if err == nil && opts.VerifyOnOpen {
			if verr := tab.VerifyBlocks(); verr != nil {
				tab.Close()
				tab, err = nil, verr
			}
		}
		if err != nil {
			// Degrade instead of dying: set the damaged file aside, drop it
			// from the descriptor, and keep serving the remaining tablets.
			t.quarantine(path, rec, err)
			quarantined++
			continue
		}
		t.attachCache(tab)
		dt := &diskTablet{
			rec:       rec,
			tab:       tab,
			path:      path,
			refs:      1,
			addedAt:   now,
			wroteGran: period.For(rec.MinTs, now).Gran,
		}
		t.disk = append(t.disk, dt)
		if rec.MaxTs > t.maxTs || !t.hasRows {
			t.maxTs = rec.MaxTs
			t.hasRows = true
		}
	}
	t.sortDiskLocked()
	if quarantined > 0 {
		// Persist the reduced tablet list so the next open does not trip
		// over the same files; the quarantined rows are gone from the
		// table's point of view.
		if err := t.writeDescriptorLocked(); err != nil {
			t.closeAllLocked()
			return nil, fmt.Errorf("core: descriptor update after quarantine: %w", err)
		}
	}
	if opts.FlushWorkers > 0 {
		t.flushKick = make(chan struct{}, 1)
		t.stopFlush = make(chan struct{})
		for i := 0; i < opts.FlushWorkers; i++ {
			t.flushWG.Add(1)
			go t.flushWorker()
		}
	}
	if n := opts.mergeWorkers(); n > 0 {
		t.maintKick = make(chan struct{}, 1)
		for i := 0; i < n; i++ {
			t.maintWG.Add(1)
			go t.maintWorker()
		}
	}
	return t, nil
}

// quarantine sets aside a tablet file that failed to open: renamed to
// *.quarantine (kept for post-mortems, invisible to orphan cleaning),
// logged, and counted. Rename failure is tolerated — the file then remains
// as an orphan and its rows are equally lost — because quarantine must
// never be the thing that takes the table down.
func (t *Table) quarantine(path string, rec tabletRecord, cause error) {
	qpath := path + quarantineSuffix
	if err := t.opts.FS.Rename(path, qpath); err != nil {
		t.opts.Logf("littletable: quarantine rename %s: %v", rec.File, err)
	} else if t.opts.SyncWrites {
		if err := t.opts.FS.SyncDir(vfs.DirOf(path)); err != nil {
			t.opts.Logf("littletable: quarantine syncdir %s: %v", rec.File, err)
		}
	}
	t.opts.Logf("littletable: quarantined tablet %s (%d rows): %v", rec.File, rec.RowCount, cause)
	t.stats.TabletsQuarantined.Add(1)
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the current schema.
func (t *Table) Schema() *schema.Schema {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sc
}

// TTL returns the row time-to-live in microseconds (0 = never expires).
func (t *Table) TTL() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ttl
}

// Stats exposes the table's counters.
func (t *Table) Stats() *Stats { return &t.stats }

// Now returns the engine's current time in microseconds; the server uses
// it to timestamp rows whose clients omitted one (§3.1).
func (t *Table) Now() int64 { return t.opts.Clock.Now() }

// attachCache connects a freshly opened tablet to the table's shared block
// cache, when one is configured.
func (t *Table) attachCache(tab *tablet.Tablet) {
	if t.blockCache != nil {
		tab.SetBlockCache(t.blockCache, t.nextHandle.Add(1))
	}
}

// BlockCacheStats reports cumulative cache hits and misses (zeros when the
// cache is disabled).
func (t *Table) BlockCacheStats() (hits, misses int64) {
	if t.blockCache == nil {
		return 0, 0
	}
	return t.blockCache.Stats()
}

// DiskTabletCount returns the number of on-disk tablets.
func (t *Table) DiskTabletCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.disk)
}

// MemTabletCount returns filling plus frozen-pending in-memory tablets.
func (t *Table) MemTabletCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.filling)
	for _, g := range t.pending {
		n += len(g.tablets)
	}
	return n
}

// DiskBytes returns the on-disk size of all tablets.
func (t *Table) DiskBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, dt := range t.disk {
		n += dt.rec.Bytes
	}
	return n
}

// RowEstimate returns the row count across disk tablets and memtables.
func (t *Table) RowEstimate() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, dt := range t.disk {
		n += dt.rec.RowCount
	}
	for _, f := range t.filling {
		n += int64(f.mt.Len())
	}
	for _, g := range t.pending {
		for _, f := range g.tablets {
			n += int64(f.mt.Len())
		}
	}
	return n
}

func (t *Table) sortDiskLocked() {
	// Insertion sort: the list is nearly sorted after every mutation.
	d := t.disk
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && diskLess(d[j], d[j-1]); j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
}

// diskLess orders tablets by their timespans' lower bounds (§3.4.1), with
// creation sequence as the tiebreaker.
func diskLess(a, b *diskTablet) bool {
	if a.rec.MinTs != b.rec.MinTs {
		return a.rec.MinTs < b.rec.MinTs
	}
	return a.rec.Seq < b.rec.Seq
}

// insertReq is one caller's batch waiting in the group-commit queue.
type insertReq struct {
	rows []schema.Row
	sc   *schema.Schema // schema the rows were validated against
	err  error
	done chan struct{}
}

// Insert adds a batch of rows. Each row must match the schema; a row whose
// timestamp is zero and whose key duplicates nothing is NOT timestamped
// here — timestamp defaulting is the wire layer's job (§3.1). Inserts are
// atomic per row, not per batch: on error, rows before the failing one
// remain inserted, matching a database whose batches are a transport
// optimization rather than transactions.
//
// Concurrent Insert calls group-commit: each caller validates its rows
// against the schema outside any lock and enqueues them, and whichever
// caller holds the insert lock applies every queued batch before
// releasing it. Batches are applied in queue order, so "insertion order"
// under concurrency is the order batches entered the queue.
func (t *Table) Insert(rows []schema.Row) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrTableClosed
	}
	sc := t.sc
	t.mu.Unlock()
	for _, row := range rows {
		if err := sc.Validate(row); err != nil {
			return err
		}
	}

	req := &insertReq{rows: rows, sc: sc, done: make(chan struct{})}
	t.iqMu.Lock()
	t.insertQ = append(t.insertQ, req)
	t.iqMu.Unlock()

	t.insertMu.Lock()
	t.iqMu.Lock()
	queued := t.insertQ
	t.insertQ = nil
	t.iqMu.Unlock()
	if len(queued) > 0 {
		t.stats.GroupCommits.Add(1)
		for _, r := range queued {
			r.err = t.applyBatch(r)
			close(r.done)
		}
	}
	t.insertMu.Unlock()
	// Our batch may have been applied by a previous lock holder, in which
	// case queued above was empty or ours was not in it; either way the
	// result is on the request.
	<-req.done
	if req.err != nil {
		return req.err
	}
	// A background flush may have lost previously accepted rows (a failed
	// descriptor commit); surface that to the next caller. ErrRowsLost
	// refers to those earlier rows — this batch itself was applied.
	return t.takeAsyncErr()
}

// takeAsyncErr returns and clears the row-loss error latched by a
// background flush, if any.
func (t *Table) takeAsyncErr() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.asyncErr
	t.asyncErr = nil
	return err
}

// applyBatch uniqueness-checks and applies one caller's rows in chunks of
// Options.InsertBatch, taking the table lock once per chunk instead of
// once per row. Caller holds insertMu.
func (t *Table) applyBatch(req *insertReq) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrTableClosed
	}
	sc := t.sc
	maxTs, hasRows := t.maxTs, t.hasRows
	t.mu.Unlock()
	if sc != req.sc {
		// A schema change slipped in between validation and application;
		// re-validate under the current schema.
		for _, row := range req.rows {
			if err := sc.Validate(row); err != nil {
				return err
			}
		}
	}

	now := t.opts.Clock.Now()
	inserted := int64(0)
	defer func() {
		// Count exactly what landed: a mid-batch failure (duplicate key)
		// leaves the earlier rows inserted (batches are a transport
		// optimization, not transactions).
		t.stats.RowsInserted.Add(inserted)
		t.stats.InsertBatches.Add(1)
	}()
	rows := req.rows
	chunk := t.opts.insertBatch()
	for len(rows) > 0 {
		n := chunk
		if n > len(rows) {
			n = len(rows)
		}
		// Uniqueness, cheapest check first (§3.4.4), amortized over the
		// chunk: a row whose timestamp exceeds every timestamp in the
		// table — and in the rows about to be applied ahead of it — is
		// unique without taking the lock (keys embed the timestamp). Only
		// rows that fail this batch fast path pay the per-row check.
		// insertMu is held, so no other inserter can move maxTs under us;
		// nothing else ever raises it. A row that fails truncates the
		// chunk: the rows before it still apply (per-row atomicity), then
		// its error surfaces.
		//
		// checkUnique probes table state, which cannot see rows earlier in
		// this same chunk (none are applied until applyChunk below), so
		// intra-chunk duplicates are caught here. memtable.Insert's
		// collision check is not a reliable backstop: a mid-chunk seal
		// swaps in a fresh memtable that has never seen the earlier row.
		// Keys embed the timestamp, so only rows sharing a timestamp can
		// collide: chunk rows are indexed by ts, and a row that finds an
		// earlier same-ts row compares full keys. The second of a duplicate
		// pair always has ts <= maxTs (the first raised maxTs to at least
		// their shared ts), so checking on the slow path alone is complete.
		var chunkErr error
		var byTs map[int64][]int // ts -> chunk rows seen with that ts
		if n > 1 {
			byTs = make(map[int64][]int, n)
		}
		for i, row := range rows[:n] {
			ts := sc.Ts(row)
			if hasRows && ts <= maxTs {
				for _, j := range byTs[ts] {
					if sc.CompareKeys(row, rows[j]) == 0 {
						n, chunkErr = i, fmt.Errorf("%w: %v", ErrDuplicateKey, sc.KeyOf(row))
						break
					}
				}
				if chunkErr != nil {
					break
				}
				unique, err := t.checkUnique(sc, row, now)
				if err != nil {
					n, chunkErr = i, err
					break
				}
				if !unique {
					n, chunkErr = i, fmt.Errorf("%w: %v", ErrDuplicateKey, sc.KeyOf(row))
					break
				}
			} else {
				t.stats.UniqueFastNew.Add(1)
			}
			if byTs != nil {
				byTs[ts] = append(byTs[ts], i)
			}
			if !hasRows || ts > maxTs {
				maxTs, hasRows = ts, true
			}
		}
		applied, err := t.applyChunk(sc, rows[:n], now)
		inserted += int64(applied)
		if err != nil {
			return err
		}
		if chunkErr != nil {
			return chunkErr
		}
		rows = rows[n:]
		if err := t.backpressure(); err != nil {
			return err
		}
	}
	return nil
}

// applyChunk routes validated, uniqueness-checked rows to their periods'
// filling tablets under one lock acquisition, maintaining the
// flush-dependency graph and sealing tablets that reach FlushSize. It
// returns how many rows were applied (all of them unless two rows in the
// chunk collide on a key).
func (t *Table) applyChunk(sc *schema.Schema, rows []schema.Row, now int64) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return 0, ErrTableClosed
	}
	for i, row := range rows {
		ts := sc.Ts(row)
		per := period.For(ts, now)
		ft := t.filling[per]
		if ft == nil {
			ft = &fillingTablet{mt: memtable.New(sc), per: per}
			t.filling[per] = ft
		}
		// Flush-dependency edge (§3.4.3): if the previous insert landed in
		// a different, still-unflushed tablet u, then u must flush before
		// ft so that retained rows are always a prefix of insertion order.
		if t.lastInsert != nil && t.lastInsert != ft && !t.lastInsert.frozen {
			if ft.prereqs == nil {
				ft.prereqs = make(map[*fillingTablet]bool)
			}
			ft.prereqs[t.lastInsert] = true
		}
		t.lastInsert = ft
		if !ft.mt.Insert(now, row) {
			// Uniqueness — including intra-chunk duplicates — was vetted
			// before application; a collision here is a defensive backstop
			// that should be unreachable.
			return i, fmt.Errorf("%w: %v", ErrDuplicateKey, sc.KeyOf(row))
		}
		if ts > t.maxTs || !t.hasRows {
			t.maxTs = ts
			t.hasRows = true
		}
		if ft.mt.SizeBytes() >= t.opts.FlushSize {
			t.sealLocked(ft)
		}
	}
	return len(rows), nil
}

func (t *Table) pendingTabletsLocked() int {
	n := 0
	for _, g := range t.pending {
		n += len(g.tablets)
	}
	return n
}

// sealLocked freezes ft together with the transitive closure of tablets
// that must flush before it, swapping each out of the filling set and
// appending them to the pending queue as one atomic flush group. Cycles in
// the dependency graph (§3.4.3) simply land in the same group. The group's
// encoded size joins the sealed-but-unflushed backlog for backpressure
// accounting, and the flush workers' doorbell rings.
func (t *Table) sealLocked(ft *fillingTablet) {
	if ft.frozen {
		return
	}
	var group []*fillingTablet
	var visit func(f *fillingTablet)
	visit = func(f *fillingTablet) {
		if f.frozen {
			return
		}
		f.frozen = true
		f.mt.Freeze()
		delete(t.filling, f.per)
		if t.lastInsert == f {
			t.lastInsert = nil
		}
		for u := range f.prereqs {
			visit(u)
		}
		group = append(group, f)
	}
	visit(ft)
	// Order within the group doesn't affect durability (the descriptor
	// update is atomic), but flushing older periods first keeps the disk
	// list closer to sorted.
	for i := 1; i < len(group); i++ {
		for j := i; j > 0 && group[j].per.Start < group[j-1].per.Start; j-- {
			group[j], group[j-1] = group[j-1], group[j]
		}
	}
	g := &flushGroup{tablets: group}
	for _, f := range group {
		g.bytes += int64(f.mt.SizeBytes())
	}
	t.sealedBytes += g.bytes
	t.stats.TabletsSealed.Add(int64(len(group)))
	t.pending = append(t.pending, g)
	t.kickFlushLocked()
}

// acquireLocked takes a read reference on dt.
func (t *Table) acquireLocked(dt *diskTablet) { dt.refs++ }

// release drops a reference; the last release of a dropped tablet closes
// and deletes it.
func (t *Table) release(dt *diskTablet) {
	t.mu.Lock()
	dt.refs--
	drop := dt.dropped && dt.refs == 0
	t.mu.Unlock()
	if drop {
		dt.tab.Close()
		t.opts.FS.Remove(dt.path)
	}
}

// Close flushes nothing (matching the durability model: a crash and a
// close lose the same unflushed rows unless FlushAll is called first) and
// releases all resources.
func (t *Table) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	if t.stopFlush != nil {
		close(t.stopFlush)
	}
	// stopMaint also unblocks maintenance I/O parked in the token bucket.
	close(t.stopMaint)
	// Wake inserters stalled on backpressure, drainers waiting for
	// in-flight groups, and MaintainUntilQuiet waiters; they observe
	// closed and bail out.
	t.flushCond.Broadcast()
	t.maintCond.Broadcast()
	t.mu.Unlock()
	// Workers may be mid-write; they notice closed at commit time, abort
	// their output files, and exit before we tear the tablet list down.
	t.flushWG.Wait()
	t.maintWG.Wait()
	t.mu.Lock()
	t.closeAllLocked()
	t.mu.Unlock()
	return nil
}

func (t *Table) closeAllLocked() {
	for _, dt := range t.disk {
		dt.tab.Close()
	}
	t.disk = nil
	t.filling = map[period.Period]*fillingTablet{}
	t.pending = nil
	t.sealedBytes = 0
}

// AlterTTL changes the table's time-to-live and persists it.
func (t *Table) AlterTTL(ttl int64) error {
	t.insertMu.Lock()
	defer t.insertMu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrTableClosed
	}
	old := t.ttl
	t.ttl = ttl
	if err := t.writeDescriptorLocked(); err != nil {
		t.ttl = old
		return err
	}
	return nil
}

// AddColumn appends a column to the schema (§3.5). Existing tablets keep
// their old schema version; reads translate.
func (t *Table) AddColumn(col schema.Column) error {
	return t.alterSchema(func(sc *schema.Schema) (*schema.Schema, error) {
		return sc.AddColumn(col)
	})
}

// WidenColumn widens an int32 value column to int64 (§3.5).
func (t *Table) WidenColumn(name string) error {
	return t.alterSchema(func(sc *schema.Schema) (*schema.Schema, error) {
		return sc.WidenColumn(name)
	})
}

func (t *Table) alterSchema(f func(*schema.Schema) (*schema.Schema, error)) error {
	t.insertMu.Lock()
	defer t.insertMu.Unlock()
	// Schema changes must not interleave with a flush writing the old
	// schema header after the descriptor says otherwise; flushing pending
	// tablets first keeps every on-disk tablet self-describing anyway, so
	// just drain.
	if err := t.flushPending(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrTableClosed
	}
	next, err := f(t.sc)
	if err != nil {
		return err
	}
	old := t.sc
	t.sc = next
	// In-memory filling tablets hold rows of the old schema; seal them so
	// subsequent inserts (new arity) start fresh tablets.
	for _, ft := range t.filling {
		t.sealLocked(ft)
	}
	if err := t.writeDescriptorLocked(); err != nil {
		t.sc = old
		return err
	}
	return nil
}

// buildDescriptorLocked snapshots the current persistable state; callers
// hold t.mu.
func (t *Table) buildDescriptorLocked() *descriptor {
	d := &descriptor{
		Name:    t.name,
		Schema:  t.sc,
		TTL:     t.ttl,
		NextSeq: t.nextSeq,
		Rollups: t.rollups,
	}
	for _, dt := range t.disk {
		d.Tablets = append(d.Tablets, dt.rec)
	}
	return d
}

// writeDescriptorLocked persists current state synchronously; callers hold
// t.mu. Foreground paths (flush commit, schema changes, deletes) use it so
// their error handling stays atomic with the mutation; it takes descMu for
// the file write so it cannot interleave with a background
// persistDescriptor and regress the on-disk snapshot.
func (t *Table) writeDescriptorLocked() error {
	t.descGen++
	gen := t.descGen
	d := t.buildDescriptorLocked()
	t.descMu.Lock()
	defer t.descMu.Unlock()
	if err := writeDescriptor(t.opts.FS, t.dir, d, t.opts.SyncWrites); err != nil {
		return err
	}
	if gen > t.descWritten {
		t.descWritten = gen
	}
	return nil
}

// bumpDescGenLocked records that in-memory state has moved ahead of the
// on-disk descriptor; the caller must follow up with persistDescriptor
// after releasing mu. Caller holds t.mu.
func (t *Table) bumpDescGenLocked() { t.descGen++ }

// persistDescriptor writes the newest descriptor snapshot without holding
// t.mu across the disk I/O: snapshot under mu (cheap), write under descMu.
// If a later generation already reached disk — a racing commit persisted a
// snapshot that includes this caller's mutation, since snapshots are
// always of the full current state — the write is skipped. Success means
// the on-disk descriptor reflects at least the state at the caller's bump.
// Caller must NOT hold t.mu.
func (t *Table) persistDescriptor() error {
	t.mu.Lock()
	gen := t.descGen
	d := t.buildDescriptorLocked()
	t.mu.Unlock()
	t.descMu.Lock()
	defer t.descMu.Unlock()
	if gen <= t.descWritten {
		return nil
	}
	if err := writeDescriptor(t.opts.FS, t.dir, d, t.opts.SyncWrites); err != nil {
		return err
	}
	t.descWritten = gen
	return nil
}

// expireBefore returns the timestamp before which rows are expired, or
// math.MinInt64-ish sentinel when no TTL is set.
func expireBefore(now, ttl int64) int64 {
	if ttl <= 0 {
		return minInt64
	}
	return now - ttl
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// LastKeyInPeriod support: maxKeyOf returns the largest key in a memtable
// as encoded values, for the uniqueness fast path.
func memMaxKey(sc *schema.Schema, mt *memtable.Memtable) ([]ltval.Value, bool) {
	row, ok := mt.MaxKeyRow()
	if !ok {
		return nil, false
	}
	return sc.KeyOf(row), true
}
