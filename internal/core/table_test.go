package core

import (
	"errors"
	"fmt"
	"testing"

	"littletable/internal/clock"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// Test scaffolding: the paper's running example table keyed by
// (network, device, ts).

var testStart = int64(1_782_018_420) * clock.Second // mid-day, mid-week

func usageSchema() *schema.Schema {
	return schema.MustNew([]schema.Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "device", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "rate", Type: ltval.Double},
		{Name: "seq", Type: ltval.Int64}, // insertion order, for durability tests
	}, []string{"network", "device", "ts"})
}

func usageRow(n, d, ts int64, rate float64, seq int64) schema.Row {
	return schema.Row{
		ltval.NewInt64(n), ltval.NewInt64(d), ltval.NewTimestamp(ts),
		ltval.NewDouble(rate), ltval.NewInt64(seq),
	}
}

func key(vals ...int64) []ltval.Value {
	out := make([]ltval.Value, len(vals))
	for i, v := range vals {
		if i == 2 {
			out[i] = ltval.NewTimestamp(v)
		} else {
			out[i] = ltval.NewInt64(v)
		}
	}
	return out
}

type testTable struct {
	*Table
	clk *clock.Fake
	dir string
}

func newTestTable(t testing.TB, opts Options) *testTable {
	t.Helper()
	dir := t.TempDir()
	clk := clock.NewFake(testStart)
	opts.Clock = clk
	tab, err := CreateTable(dir, "usage", usageSchema(), 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tab.Close() })
	return &testTable{Table: tab, clk: clk, dir: dir}
}

func mustInsert(t testing.TB, tab *Table, rows ...schema.Row) {
	t.Helper()
	if err := tab.Insert(rows); err != nil {
		t.Fatal(err)
	}
}

func queryBox(t testing.TB, tab *Table, q Query) []schema.Row {
	t.Helper()
	rows, err := tab.QueryAll(q)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestInsertAndQueryMemoryOnly(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	mustInsert(t, tt.Table,
		usageRow(1, 1, now, 1.0, 0),
		usageRow(1, 2, now, 2.0, 1),
		usageRow(2, 1, now, 3.0, 2),
	)
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Key-ordered.
	if rows[0][0].Int != 1 || rows[0][1].Int != 1 || rows[2][0].Int != 2 {
		t.Errorf("rows out of order: %v", rows)
	}
	if tt.DiskTabletCount() != 0 {
		t.Error("unexpected disk tablets")
	}
}

func TestQueryAfterFlush(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for i := int64(0); i < 100; i++ {
		mustInsert(t, tt.Table, usageRow(i%4, i%10, now-i*clock.Minute, float64(i), i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if tt.DiskTabletCount() == 0 {
		t.Fatal("no disk tablets after FlushAll")
	}
	if tt.MemTabletCount() != 0 {
		t.Fatal("memtables remain after FlushAll")
	}
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 100 {
		t.Fatalf("got %d rows after flush", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if tt.Schema().CompareKeys(rows[i-1], rows[i]) >= 0 {
			t.Fatal("rows not key-ordered after flush")
		}
	}
}

func TestQueryMergesMemoryAndDisk(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	mustInsert(t, tt.Table, usageRow(1, 1, now-clock.Minute, 1, 0))
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, tt.Table, usageRow(1, 2, now, 2, 1)) // stays in memory
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0][1].Int != 1 || rows[1][1].Int != 2 {
		t.Error("merge across memory and disk out of order")
	}
}

func TestBoundingBoxQuery(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	// 4 networks × 5 devices × 10 samples, one per minute.
	for n := int64(0); n < 4; n++ {
		for d := int64(0); d < 5; d++ {
			for s := int64(0); s < 10; s++ {
				mustInsert(t, tt.Table, usageRow(n, d, now-s*clock.Minute, float64(s), 0))
			}
		}
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Rectangle: network 2, all devices, last 5 minutes (6 samples each:
	// s=0..5 inclusive bounds).
	q := NewQuery()
	q.Lower = key(2)
	q.Upper = key(2)
	q.MinTs = now - 5*clock.Minute
	q.MaxTs = now
	rows := queryBox(t, tt.Table, q)
	if len(rows) != 5*6 {
		t.Fatalf("rectangle returned %d rows, want 30", len(rows))
	}
	for _, r := range rows {
		if r[0].Int != 2 {
			t.Fatal("row outside key bounds")
		}
		if ts := r[2].Int; ts < q.MinTs || ts > q.MaxTs {
			t.Fatal("row outside ts bounds")
		}
	}
	// Narrower: single device.
	q.Lower = key(2, 3)
	q.Upper = key(2, 3)
	rows = queryBox(t, tt.Table, q)
	if len(rows) != 6 {
		t.Fatalf("device rectangle returned %d rows, want 6", len(rows))
	}
}

func TestQueryExclusiveBounds(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for d := int64(0); d < 5; d++ {
		mustInsert(t, tt.Table, usageRow(1, d, now, 0, 0))
	}
	q := NewQuery()
	q.Lower = key(1, 1, now)
	q.LowerInc = false
	q.Upper = key(1, 3, now)
	q.UpperInc = false
	rows := queryBox(t, tt.Table, q)
	if len(rows) != 1 || rows[0][1].Int != 2 {
		t.Fatalf("exclusive bounds returned %v", rows)
	}
	// Exclusive prefix bound skips the whole prefix range.
	q2 := NewQuery()
	q2.Lower = key(1, 1)
	q2.LowerInc = false
	rows = queryBox(t, tt.Table, q2)
	if len(rows) != 3 { // devices 2, 3, 4
		t.Fatalf("exclusive prefix lower bound returned %d rows, want 3", len(rows))
	}
}

func TestQueryDescending(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for i := int64(0); i < 20; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now, 0, i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, tt.Table, usageRow(1, 20, now, 0, 20))
	q := NewQuery()
	q.Descending = true
	rows := queryBox(t, tt.Table, q)
	if len(rows) != 21 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i := range rows {
		if rows[i][1].Int != int64(20-i) {
			t.Fatalf("descending order broken at %d: %v", i, rows[i][1])
		}
	}
}

func TestQueryLimit(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for i := int64(0); i < 50; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now, 0, 0))
	}
	q := NewQuery()
	q.Limit = 7
	rows := queryBox(t, tt.Table, q)
	if len(rows) != 7 {
		t.Fatalf("limit returned %d rows", len(rows))
	}
}

func TestQueryInvalid(t *testing.T) {
	tt := newTestTable(t, Options{})
	q := NewQuery()
	q.MinTs, q.MaxTs = 10, 5
	if _, err := tt.Query(q); !errors.Is(err, ErrBadQuery) {
		t.Errorf("inverted ts bounds: %v", err)
	}
	q = NewQuery()
	q.Lower = key(5)
	q.Upper = key(2)
	if _, err := tt.Query(q); !errors.Is(err, ErrBadQuery) {
		t.Errorf("inverted key bounds: %v", err)
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	mustInsert(t, tt.Table, usageRow(1, 1, now, 1, 0))
	// Duplicate in memory.
	if err := tt.Insert([]schema.Row{usageRow(1, 1, now, 2, 1)}); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("memory duplicate: %v", err)
	}
	// Duplicate after flush (on disk).
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := tt.Insert([]schema.Row{usageRow(1, 1, now, 2, 1)}); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("disk duplicate: %v", err)
	}
	// Duplicate within one batch.
	r := usageRow(9, 9, now, 0, 0)
	if err := tt.Insert([]schema.Row{r, r}); !errors.Is(err, ErrDuplicateKey) {
		t.Errorf("batch duplicate: %v", err)
	}
	// Same key cells, different ts: not a duplicate.
	mustInsert(t, tt.Table, usageRow(1, 1, now+1, 1, 2))
}

func TestUniquenessFastPaths(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	// Ascending timestamps: every insert should take the newest-ts path.
	for i := int64(0); i < 10; i++ {
		mustInsert(t, tt.Table, usageRow(1, 1, now+i, 0, i))
	}
	s := tt.Stats().Snapshot()
	if s.UniqueFastNew != 10 {
		t.Errorf("UniqueFastNew = %d, want 10", s.UniqueFastNew)
	}
	// Same timestamp, ascending keys: the largest-key path.
	for d := int64(2); d < 12; d++ {
		mustInsert(t, tt.Table, usageRow(1, d, now, 0, 0))
	}
	s = tt.Stats().Snapshot()
	if s.UniqueFastKey != 10 {
		t.Errorf("UniqueFastKey = %d, want 10", s.UniqueFastKey)
	}
	if s.UniqueProbes != 0 {
		t.Errorf("UniqueProbes = %d, want 0 for ordered inserts", s.UniqueProbes)
	}
	// A non-duplicate row landing amid existing keys must still insert,
	// via the bloom/probe path.
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, tt.Table, usageRow(1, 0, now, 0, 0))
	s = tt.Stats().Snapshot()
	if s.UniqueBloom+s.UniqueProbes == 0 {
		t.Error("mid-range insert used no bloom/probe path")
	}
}

func TestValidateRejectsBadRows(t *testing.T) {
	tt := newTestTable(t, Options{})
	bad := usageRow(1, 1, 1, 1, 1)[:3]
	if err := tt.Insert([]schema.Row{bad}); err == nil {
		t.Error("short row accepted")
	}
}

func TestStatsScanAccounting(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	// Two devices interleaved in time; query only recent data of one.
	for i := int64(0); i < 100; i++ {
		mustInsert(t, tt.Table, usageRow(1, i%2, now-i*clock.Second, 0, i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	q := NewQuery()
	q.Lower = key(1, 0)
	q.Upper = key(1, 0)
	rows := queryBox(t, tt.Table, q)
	if len(rows) != 50 {
		t.Fatalf("got %d rows", len(rows))
	}
	s := tt.Stats().Snapshot()
	if s.RowsReturned != 50 {
		t.Errorf("RowsReturned = %d", s.RowsReturned)
	}
	if s.RowsScanned < 50 {
		t.Errorf("RowsScanned = %d < returned", s.RowsScanned)
	}
	if s.ScanRatio() > 1.5 {
		t.Errorf("ScanRatio = %.2f for a clustered query; expected near 1", s.ScanRatio())
	}
}

func TestTableClosed(t *testing.T) {
	tt := newTestTable(t, Options{})
	if err := tt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tt.Insert([]schema.Row{usageRow(1, 1, 1, 1, 1)}); !errors.Is(err, ErrTableClosed) {
		t.Errorf("insert after close: %v", err)
	}
	if _, err := tt.Query(NewQuery()); !errors.Is(err, ErrTableClosed) {
		t.Errorf("query after close: %v", err)
	}
	if err := tt.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestCreateTableTwiceFails(t *testing.T) {
	tt := newTestTable(t, Options{})
	if _, err := CreateTable(tt.dir, "usage", usageSchema(), 0, Options{Clock: tt.clk}); err == nil {
		t.Error("second CreateTable succeeded")
	}
}

func TestFlushSizeTrigger(t *testing.T) {
	// Tiny flush size: every few inserts should spill a tablet without any
	// explicit flush calls.
	tt := newTestTable(t, Options{FlushSize: 2048})
	now := tt.clk.Now()
	for i := int64(0); i < 500; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now, 0, i))
	}
	// Size triggers freeze; groups flush on FlushStep.
	for {
		ok, err := tt.FlushStep()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if tt.DiskTabletCount() < 2 {
		t.Errorf("DiskTabletCount = %d, want several from size trigger", tt.DiskTabletCount())
	}
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 500 {
		t.Fatalf("lost rows across size-triggered flushes: %d", len(rows))
	}
}

func TestFlushAgeTrigger(t *testing.T) {
	tt := newTestTable(t, Options{FlushAge: 10 * clock.Minute})
	now := tt.clk.Now()
	mustInsert(t, tt.Table, usageRow(1, 1, now, 0, 0))
	if err := tt.Tick(); err != nil {
		t.Fatal(err)
	}
	if tt.DiskTabletCount() != 0 {
		t.Error("flushed before age limit")
	}
	tt.clk.Advance(11 * clock.Minute)
	if err := tt.Tick(); err != nil {
		t.Fatal(err)
	}
	if tt.DiskTabletCount() != 1 {
		t.Errorf("DiskTabletCount = %d after age trigger", tt.DiskTabletCount())
	}
}

func TestQueryRowLimitOption(t *testing.T) {
	// Server-enforced limit handled at wire layer; engine Limit in Query.
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for i := int64(0); i < 10; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now, 0, i))
	}
	it, err := tt.Query(NewQuery())
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	n := 0
	for it.Next() {
		n++
	}
	if n != 10 {
		t.Fatalf("iterated %d rows", n)
	}
	if it.Returned() != 10 || it.Scanned() < 10 {
		t.Error("iterator accounting wrong")
	}
}

func TestEmptyTableQuery(t *testing.T) {
	tt := newTestTable(t, Options{})
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 0 {
		t.Errorf("empty table returned %d rows", len(rows))
	}
	row, ok, err := tt.LatestRow(key(1))
	if err != nil || ok || row != nil {
		t.Errorf("LatestRow on empty table: %v %v %v", row, ok, err)
	}
}

func TestManyTimestampsSameKeyPrefix(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	const n = 1000
	for i := int64(0); i < n; i++ {
		mustInsert(t, tt.Table, usageRow(1, 1, now-i*clock.Second, float64(i), i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	q := NewQuery()
	q.Lower = key(1, 1)
	q.Upper = key(1, 1)
	q.MinTs = now - 99*clock.Second
	q.MaxTs = now
	rows := queryBox(t, tt.Table, q)
	if len(rows) != 100 {
		t.Fatalf("time-sliced query returned %d rows, want 100", len(rows))
	}
}

func TestInsertBatchSizes(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	var batch []schema.Row
	for i := int64(0); i < 512; i++ {
		batch = append(batch, usageRow(1, i, now, 0, i))
	}
	if err := tt.Insert(batch); err != nil {
		t.Fatal(err)
	}
	if got := tt.Stats().Snapshot(); got.RowsInserted != 512 || got.InsertBatches != 1 {
		t.Errorf("stats: %+v", got)
	}
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 512 {
		t.Fatalf("batch insert lost rows: %d", len(rows))
	}
}

func TestRowEstimateAndDiskBytes(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for i := int64(0); i < 64; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now, 0, i))
	}
	if tt.RowEstimate() != 64 {
		t.Errorf("RowEstimate = %d", tt.RowEstimate())
	}
	if tt.DiskBytes() != 0 {
		t.Error("DiskBytes nonzero before flush")
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if tt.RowEstimate() != 64 {
		t.Errorf("RowEstimate after flush = %d", tt.RowEstimate())
	}
	if tt.DiskBytes() == 0 {
		t.Error("DiskBytes zero after flush")
	}
}

func ExampleTable_Query() {
	// Compile-time presence of a runnable doc example for the query API.
	fmt.Println("see examples/quickstart")
	// Output: see examples/quickstart
}

func TestBlockCacheSpeedsRepeatQueries(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake(testStart)
	tab, err := CreateTable(dir, "usage", usageSchema(), 0, Options{
		Clock:           clk,
		BlockCacheBytes: 4 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	now := clk.Now()
	for i := int64(0); i < 2000; i++ {
		mustInsert(t, tab, usageRow(1, i%8, now-i*clock.Second, 0, i))
	}
	if err := tab.FlushAll(); err != nil {
		t.Fatal(err)
	}
	q := NewQuery()
	q.Lower = key(1, 3)
	q.Upper = q.Lower
	first, err := tab.QueryAll(q)
	if err != nil {
		t.Fatal(err)
	}
	_, missesAfterFirst := tab.BlockCacheStats()
	if missesAfterFirst == 0 {
		t.Fatal("first query should miss the cache")
	}
	second, err := tab.QueryAll(q)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := tab.BlockCacheStats()
	if hits == 0 {
		t.Fatal("second query never hit the cache")
	}
	if misses != missesAfterFirst {
		t.Errorf("second query missed again: %d → %d", missesAfterFirst, misses)
	}
	// Same results either way.
	if len(first) != len(second) {
		t.Fatalf("cached query returned %d rows vs %d", len(second), len(first))
	}
	for i := range first {
		if tab.Schema().CompareKeys(first[i], second[i]) != 0 {
			t.Fatal("cached query returned different rows")
		}
	}
}

func TestBlockCacheDisabledByDefault(t *testing.T) {
	tt := newTestTable(t, Options{})
	if h, m := tt.BlockCacheStats(); h != 0 || m != 0 {
		t.Error("cache active without opt-in")
	}
}

func TestPartialBatchStatsAccurate(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	mustInsert(t, tt.Table, usageRow(1, 1, now, 0, 0))
	// Batch of three where the second duplicates an existing key: the
	// first lands, the rest do not, and stats must say exactly that.
	batch := []schema.Row{
		usageRow(2, 2, now, 0, 1),
		usageRow(1, 1, now, 0, 2), // duplicate
		usageRow(3, 3, now, 0, 3),
	}
	if err := tt.Insert(batch); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("batch: %v", err)
	}
	s := tt.Stats().Snapshot()
	if s.RowsInserted != 2 { // the original + the first batch row
		t.Errorf("RowsInserted = %d, want 2", s.RowsInserted)
	}
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 2 {
		t.Errorf("table has %d rows", len(rows))
	}
}
