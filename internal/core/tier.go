package core

import (
	"fmt"
	"io"
	"path/filepath"

	"littletable/internal/tablet"
	"littletable/internal/vfs"
)

// TierColdTablets implements the cold-storage offload the paper's related
// work discusses (§6): "LHAM introduced the idea of moving older data in a
// log-structured system to write-once media. This approach is especially
// attractive for time-series data, where very old values are accessed
// infrequently but remain valuable, and we are considering using Amazon S3
// or another cloud service as an additional backing store."
//
// Tablets whose newest row is older than olderThan are copied into
// coldDir — the stand-in for the cheaper backing store — and the table's
// descriptor is updated to reference them there; the hot copies are then
// removed. Queries keep working transparently: a tablet's location is
// invisible above the descriptor. Returns the number of tablets moved.
func (t *Table) TierColdTablets(olderThan int64, coldDir string) (int, error) {
	if err := t.opts.FS.MkdirAll(coldDir); err != nil {
		return 0, err
	}
	// Write side of maintMu: tiering relocates tablet files and must see
	// no merge in flight.
	t.maintMu.Lock()
	defer t.maintMu.Unlock()

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return 0, ErrTableClosed
	}
	var victims []*diskTablet
	for _, dt := range t.disk {
		if dt.busy || dt.rec.Dir != "" {
			continue // already cold
		}
		if dt.rec.MaxTs < olderThan {
			dt.busy = true
			t.acquireLocked(dt)
			victims = append(victims, dt)
		}
	}
	t.mu.Unlock()

	moved := 0
	var firstErr error
	for _, dt := range victims {
		if firstErr != nil {
			break
		}
		coldPath := filepath.Join(coldDir, dt.rec.File)
		if err := copyFileAtomic(t.opts.FS, dt.path, coldPath, t.opts.SyncWrites); err != nil {
			firstErr = fmt.Errorf("core: tier %s: %w", dt.rec.File, err)
			break
		}
		tab, err := tablet.OpenFS(t.opts.FS, coldPath)
		if err != nil {
			t.opts.FS.Remove(coldPath)
			firstErr = fmt.Errorf("core: open cold tablet: %w", err)
			break
		}
		t.attachCache(tab)
		rec := dt.rec
		rec.Dir = coldDir
		cold := &diskTablet{
			rec:       rec,
			tab:       tab,
			path:      coldPath,
			refs:      1,
			addedAt:   dt.addedAt,
			wroteGran: dt.wroteGran,
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			tab.Close()
			t.opts.FS.Remove(coldPath)
			firstErr = ErrTableClosed
			break
		}
		t.dropLocked(dt) // hot copy deleted once readers drain
		t.disk = append(t.disk, cold)
		t.sortDiskLocked()
		err = t.writeDescriptorLocked()
		t.mu.Unlock()
		if err != nil {
			firstErr = fmt.Errorf("core: descriptor update after tiering: %w", err)
			break
		}
		moved++
	}
	t.mu.Lock()
	for _, dt := range victims {
		dt.busy = false
	}
	t.mu.Unlock()
	for _, dt := range victims {
		t.release(dt)
	}
	return moved, firstErr
}

// ColdTabletCount reports how many tablets live in a cold directory.
func (t *Table) ColdTabletCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, dt := range t.disk {
		if dt.rec.Dir != "" {
			n++
		}
	}
	return n
}

// copyFileAtomic copies src to dst through fsys via a temporary file and a
// rename. With sync, the copy is fsynced before the rename and the target
// directory after it, so the cold copy is durable before the hot one is
// dropped from the descriptor.
func copyFileAtomic(fsys vfs.FS, src, dst string, sync bool) error {
	in, err := fsys.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	st, err := in.Stat()
	if err != nil {
		return err
	}
	tmp := dst + ".tmp"
	out, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, io.NewSectionReader(in, 0, st.Size())); err != nil {
		out.Close()
		fsys.Remove(tmp)
		return err
	}
	if sync {
		if err := out.Sync(); err != nil {
			out.Close()
			fsys.Remove(tmp)
			return err
		}
	}
	if err := out.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, dst); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if sync {
		return fsys.SyncDir(vfs.DirOf(dst))
	}
	return nil
}
