package core

import (
	"os"
	"path/filepath"
	"testing"

	"littletable/internal/clock"
)

func TestTierColdTablets(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	// Old data (a quarter back) and fresh data.
	for i := int64(0); i < 50; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now-90*clock.Day+i, 0, i))
	}
	for i := int64(0); i < 50; i++ {
		mustInsert(t, tt.Table, usageRow(2, i, now-i*clock.Second, 0, 100+i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	coldDir := filepath.Join(t.TempDir(), "cold")
	moved, err := tt.TierColdTablets(now-30*clock.Day, coldDir)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("no tablets tiered")
	}
	if tt.ColdTabletCount() != moved {
		t.Fatalf("ColdTabletCount = %d, moved %d", tt.ColdTabletCount(), moved)
	}
	// Cold files exist; their hot twins are gone.
	ents, err := os.ReadDir(coldDir)
	if err != nil || len(ents) != moved {
		t.Fatalf("cold dir: %d files, %v", len(ents), err)
	}
	for _, e := range ents {
		if _, err := os.Stat(filepath.Join(tt.dir, "usage", e.Name())); !os.IsNotExist(err) {
			t.Fatalf("hot copy of %s survives", e.Name())
		}
	}
	// Queries read cold data transparently.
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 100 {
		t.Fatalf("query across tiers: %d rows", len(rows))
	}
	// Idempotent: nothing left to move.
	again, err := tt.TierColdTablets(now-30*clock.Day, coldDir)
	if err != nil || again != 0 {
		t.Fatalf("second tiering moved %d, %v", again, err)
	}
}

func TestTierSurvivesReopen(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for i := int64(0); i < 30; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now-90*clock.Day+i, 0, i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	coldDir := filepath.Join(t.TempDir(), "cold")
	if _, err := tt.TierColdTablets(now-clock.Day, coldDir); err != nil {
		t.Fatal(err)
	}
	tt2 := reopen(t, tt)
	if tt2.ColdTabletCount() == 0 {
		t.Fatal("cold location lost across reopen")
	}
	rows := queryBox(t, tt2.Table, NewQuery())
	if len(rows) != 30 {
		t.Fatalf("rows after reopen: %d", len(rows))
	}
}

func TestTierFreshDataStaysHot(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for i := int64(0); i < 20; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now-i, 0, i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	moved, err := tt.TierColdTablets(now-clock.Day, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 || tt.ColdTabletCount() != 0 {
		t.Fatalf("fresh tablets tiered: %d", moved)
	}
}

func TestTieredTabletExpiresByTTL(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for i := int64(0); i < 20; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now-100*clock.Day+i, 0, i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	coldDir := filepath.Join(t.TempDir(), "cold")
	if _, err := tt.TierColdTablets(now-clock.Day, coldDir); err != nil {
		t.Fatal(err)
	}
	if err := tt.AlterTTL(50 * clock.Day); err != nil {
		t.Fatal(err)
	}
	if err := tt.ExpireNow(); err != nil {
		t.Fatal(err)
	}
	if tt.DiskTabletCount() != 0 {
		t.Fatal("expired cold tablet not reclaimed")
	}
	ents, _ := os.ReadDir(coldDir)
	if len(ents) != 0 {
		t.Fatalf("cold file not deleted on expiry: %d remain", len(ents))
	}
}

func TestTieredTabletQueriedWithConcurrentReader(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for i := int64(0); i < 40; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now-90*clock.Day+i, 0, i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	it, err := tt.Query(NewQuery())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tt.TierColdTablets(now-clock.Day, t.TempDir()); err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.Next() {
		n++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	it.Close()
	if n != 40 {
		t.Fatalf("snapshot under tiering saw %d rows", n)
	}
}
