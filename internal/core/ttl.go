package core

// expireTTL reclaims disk space by removing from the descriptor, and then
// deleting, any tablet whose rows have all passed their TTL (§3.3). Rows
// that expire before their tablet does are filtered from query results by
// the iterator.
func (t *Table) expireTTL(now int64) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrTableClosed
	}
	if t.ttl <= 0 {
		t.mu.Unlock()
		return nil
	}
	cutoff := now - t.ttl
	var doomed []*diskTablet
	for _, dt := range t.disk {
		if !dt.busy && dt.rec.MaxTs < cutoff {
			doomed = append(doomed, dt)
		}
	}
	if len(doomed) == 0 {
		t.mu.Unlock()
		return nil
	}
	for _, dt := range doomed {
		t.dropLocked(dt)
	}
	err := t.writeDescriptorLocked()
	t.mu.Unlock()
	if err != nil {
		return err
	}
	t.stats.TabletsExpired.Add(int64(len(doomed)))
	return nil
}

// ExpireNow runs TTL reclamation immediately; tests and the ltbench
// harness use it, while the server relies on Tick.
func (t *Table) ExpireNow() error {
	return t.expireTTL(t.opts.Clock.Now())
}
