package core

import "time"

// expireTTL reclaims disk space by removing from the descriptor, and then
// deleting, any tablet whose rows have all passed their TTL (§3.3). Rows
// that expire before their tablet does are filtered from query results by
// the iterator. At most one expiry round runs at a time (the expiring
// flag); tablets being merged are skipped — the merge itself drops their
// expired rows, and its output becomes reclaimable on a later round.
func (t *Table) expireTTL(now int64) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrTableClosed
	}
	if t.ttl <= 0 || t.expiring || t.maintHold > 0 {
		t.mu.Unlock()
		return nil
	}
	cutoff := now - t.ttl
	var doomed []*diskTablet
	for _, dt := range t.disk {
		if !dt.busy && dt.rec.MaxTs < cutoff {
			doomed = append(doomed, dt)
		}
	}
	if len(doomed) == 0 {
		t.expireWaitSince = 0
		t.mu.Unlock()
		return nil
	}
	t.expiring = true
	if t.expireWaitSince != 0 {
		t.stats.ExpiryWaitNs.Add(time.Now().UnixNano() - t.expireWaitSince)
		t.expireWaitSince = 0
	}
	t.stats.ExpiriesInFlight.Add(1)
	for _, dt := range doomed {
		// Hold a ref across the descriptor persist below: the files must
		// outlive any on-disk descriptor that still names them, so deletion
		// (at release) strictly follows the persist.
		t.acquireLocked(dt)
		t.dropLocked(dt)
	}
	t.bumpDescGenLocked()
	t.mu.Unlock()
	// Persist outside mu so inserts never stall behind the descriptor's
	// disk latency; the expiring flag keeps further rounds out meanwhile.
	err := t.persistDescriptor()
	for _, dt := range doomed {
		t.release(dt)
	}
	t.mu.Lock()
	t.expiring = false
	t.stats.ExpiriesInFlight.Add(-1)
	t.maintBroadcastLocked()
	t.mu.Unlock()
	if err != nil {
		return err
	}
	t.stats.TabletsExpired.Add(int64(len(doomed)))
	t.stats.ExpiryRuns.Add(1)
	return nil
}

// ExpireNow runs TTL reclamation immediately; tests and the ltbench
// harness use it, while the server relies on Tick.
func (t *Table) ExpireNow() error {
	return t.expireTTL(t.opts.Clock.Now())
}
