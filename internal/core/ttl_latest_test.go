package core

import (
	"errors"
	"sync"
	"testing"

	"littletable/internal/clock"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

func TestTTLFiltersQueryResults(t *testing.T) {
	tt := newTestTable(t, Options{})
	if err := tt.AlterTTL(7 * clock.Day); err != nil {
		t.Fatal(err)
	}
	now := tt.clk.Now()
	mustInsert(t, tt.Table,
		usageRow(1, 1, now-10*clock.Day, 0, 0), // already expired
		usageRow(1, 2, now-clock.Day, 0, 1),    // live
	)
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 1 || rows[0][1].Int != 2 {
		t.Fatalf("TTL filter failed: %v", rows)
	}
}

func TestTTLReclaimsTablets(t *testing.T) {
	tt := newTestTable(t, Options{})
	if err := tt.AlterTTL(7 * clock.Day); err != nil {
		t.Fatal(err)
	}
	now := tt.clk.Now()
	for i := int64(0); i < 50; i++ {
		mustInsert(t, tt.Table, usageRow(1, i, now-clock.Day, 0, i))
	}
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if tt.DiskTabletCount() != 1 {
		t.Fatalf("setup: %d tablets", tt.DiskTabletCount())
	}
	// Not expired yet.
	if err := tt.ExpireNow(); err != nil {
		t.Fatal(err)
	}
	if tt.DiskTabletCount() != 1 {
		t.Error("tablet reclaimed before TTL")
	}
	tt.clk.Advance(8 * clock.Day)
	if err := tt.ExpireNow(); err != nil {
		t.Fatal(err)
	}
	if tt.DiskTabletCount() != 0 {
		t.Errorf("tablet not reclaimed: %d remain", tt.DiskTabletCount())
	}
	if s := tt.Stats().Snapshot(); s.TabletsExpired != 1 {
		t.Errorf("TabletsExpired = %d", s.TabletsExpired)
	}
	// After reopen, no expired tablets resurface.
	tt2 := reopen(t, tt)
	if rows := queryBox(t, tt2.Table, NewQuery()); len(rows) != 0 {
		t.Errorf("expired rows recovered: %d", len(rows))
	}
}

func TestTTLPartialTablet(t *testing.T) {
	// A tablet whose rows straddle the expiry cutoff stays on disk but
	// queries filter the expired half.
	tt := newTestTable(t, Options{})
	if err := tt.AlterTTL(7 * clock.Day); err != nil {
		t.Fatal(err)
	}
	now := tt.clk.Now()
	mustInsert(t, tt.Table,
		usageRow(1, 1, now-6*clock.Day, 0, 0),
		usageRow(1, 2, now-5*clock.Day, 0, 1),
	)
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	tt.clk.Advance(2 * clock.Day) // device 1's row now expired
	if err := tt.ExpireNow(); err != nil {
		t.Fatal(err)
	}
	if tt.DiskTabletCount() != 1 {
		t.Error("straddling tablet wrongly reclaimed")
	}
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 1 || rows[0][1].Int != 2 {
		t.Fatalf("partial expiry filter wrong: %v", rows)
	}
}

func TestAlterTTLPersists(t *testing.T) {
	tt := newTestTable(t, Options{})
	if err := tt.AlterTTL(3 * clock.Day); err != nil {
		t.Fatal(err)
	}
	tt2 := reopen(t, tt)
	if tt2.TTL() != 3*clock.Day {
		t.Errorf("TTL after reopen = %d", tt2.TTL())
	}
}

func TestLatestRowBasic(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	for i := int64(0); i < 10; i++ {
		mustInsert(t, tt.Table, usageRow(1, 1, now-i*clock.Hour, float64(i), i))
		mustInsert(t, tt.Table, usageRow(1, 2, now-i*clock.Hour-1, float64(i), i))
	}
	// Full non-ts prefix: (network, device).
	row, ok, err := tt.LatestRow(key(1, 1))
	if err != nil || !ok {
		t.Fatalf("LatestRow: %v %v", ok, err)
	}
	if row[2].Int != now {
		t.Errorf("latest ts = %d, want %d", row[2].Int, now)
	}
	// Shorter prefix: network only; latest row of the network.
	row, ok, err = tt.LatestRow(key(1))
	if err != nil || !ok {
		t.Fatalf("LatestRow(network): %v %v", ok, err)
	}
	if row[2].Int != now {
		t.Errorf("latest network ts = %d", row[2].Int)
	}
	// Missing prefix.
	_, ok, err = tt.LatestRow(key(99))
	if err != nil || ok {
		t.Errorf("LatestRow(missing) = %v, %v", ok, err)
	}
}

func TestLatestRowAcrossTablets(t *testing.T) {
	// The latest row lives arbitrarily far in the past (§3.4.5's hard
	// case): the search must walk back through groups until it finds it.
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	// Device 7's only row is 90 days old; lots of newer data for others.
	mustInsert(t, tt.Table, usageRow(1, 7, now-90*clock.Day, 42, 0))
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	for w := int64(1); w <= 8; w++ {
		for i := int64(0); i < 20; i++ {
			mustInsert(t, tt.Table, usageRow(1, 1, now-w*clock.Week+i*clock.Minute, 0, 0))
		}
		if err := tt.FlushAll(); err != nil {
			t.Fatal(err)
		}
	}
	row, ok, err := tt.LatestRow(key(1, 7))
	if err != nil || !ok {
		t.Fatalf("LatestRow: %v %v", ok, err)
	}
	if row[3].Float != 42 {
		t.Errorf("found wrong row: %v", row)
	}
	// Latest for device 1 is in the newest group.
	row, ok, _ = tt.LatestRow(key(1, 1))
	if !ok || row[2].Int != now-1*clock.Week+19*clock.Minute {
		t.Errorf("latest for device 1: %v %v", ok, row)
	}
}

func TestLatestRowMemoryAndDisk(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	mustInsert(t, tt.Table, usageRow(1, 1, now-clock.Hour, 1, 0))
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	mustInsert(t, tt.Table, usageRow(1, 1, now, 2, 1)) // newer, in memory
	row, ok, err := tt.LatestRow(key(1, 1))
	if err != nil || !ok {
		t.Fatal(err)
	}
	if row[3].Float != 2 {
		t.Errorf("latest should be the in-memory row: %v", row)
	}
}

func TestLatestRowRespectsTTL(t *testing.T) {
	tt := newTestTable(t, Options{})
	if err := tt.AlterTTL(clock.Day); err != nil {
		t.Fatal(err)
	}
	now := tt.clk.Now()
	mustInsert(t, tt.Table, usageRow(1, 1, now-2*clock.Day, 0, 0)) // expired
	_, ok, err := tt.LatestRow(key(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("LatestRow returned an expired row")
	}
}

func TestLatestRowInvalidPrefix(t *testing.T) {
	tt := newTestTable(t, Options{})
	if _, _, err := tt.LatestRow(nil); !errors.Is(err, ErrBadQuery) {
		t.Errorf("nil prefix: %v", err)
	}
	long := key(1, 2, 3)
	long = append(long, ltval.NewInt64(4))
	if _, _, err := tt.LatestRow(long); !errors.Is(err, ErrBadQuery) {
		t.Errorf("overlong prefix: %v", err)
	}
}

func TestAddColumnAndReadBack(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	mustInsert(t, tt.Table, usageRow(1, 1, now-clock.Minute, 1.5, 0))
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := tt.AddColumn(schema.Column{
		Name: "tag", Type: ltval.String, Default: ltval.NewString("untagged"),
	}); err != nil {
		t.Fatal(err)
	}
	// Old rows read back with the default filled in.
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 1 || len(rows[0]) != 6 {
		t.Fatalf("rows after AddColumn: %v", rows)
	}
	if string(rows[0][5].Bytes) != "untagged" {
		t.Errorf("default fill = %v", rows[0][5])
	}
	// New rows carry the new column.
	newRow := append(usageRow(1, 2, now, 2.5, 1), ltval.NewString("classroom"))
	mustInsert(t, tt.Table, newRow)
	rows = queryBox(t, tt.Table, NewQuery())
	if len(rows) != 2 || string(rows[1][5].Bytes) != "classroom" {
		t.Fatalf("mixed-schema read: %v", rows)
	}
	// Survives reopen (flush first: reopen simulates a crash, and the new
	// row would otherwise be legitimately lost).
	if err := tt.FlushAll(); err != nil {
		t.Fatal(err)
	}
	tt2 := reopen(t, tt)
	rows = queryBox(t, tt2.Table, NewQuery())
	if len(rows) != 2 || string(rows[0][5].Bytes) != "untagged" {
		t.Fatalf("after reopen: %v", rows)
	}
}

func TestWidenColumnAndReadBack(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewFake(testStart)
	sc := schema.MustNew([]schema.Column{
		{Name: "k", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "count", Type: ltval.Int32},
	}, []string{"k", "ts"})
	tab, err := CreateTable(dir, "counters", sc, 0, Options{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	now := clk.Now()
	if err := tab.Insert([]schema.Row{{ltval.NewInt64(1), ltval.NewTimestamp(now), ltval.NewInt32(7)}}); err != nil {
		t.Fatal(err)
	}
	if err := tab.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := tab.WidenColumn("count"); err != nil {
		t.Fatal(err)
	}
	// Old row reads back as int64.
	rows, err := tab.QueryAll(NewQuery())
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][2].Type != ltval.Int64 || rows[0][2].Int != 7 {
		t.Fatalf("widened read: %v", rows[0][2])
	}
	// New rows insert with int64.
	if err := tab.Insert([]schema.Row{{ltval.NewInt64(1), ltval.NewTimestamp(now + 1), ltval.NewInt64(1 << 40)}}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentInsertAndQuery(t *testing.T) {
	tt := newTestTable(t, Options{FlushSize: 16 * 1024})
	now := tt.clk.Now()
	const writers = 1 // single writer per the model; queries race it
	const perWriter = 2000
	var wg sync.WaitGroup
	wg.Add(writers + 2)
	errCh := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		go func() {
			defer wg.Done()
			for i := int64(0); i < perWriter; i++ {
				if err := tt.Insert([]schema.Row{usageRow(1, i%50, now+i, 0, i)}); err != nil {
					errCh <- err
					return
				}
				if i%500 == 0 {
					if _, err := tt.FlushStep(); err != nil {
						errCh <- err
						return
					}
				}
			}
		}()
	}
	for r := 0; r < 2; r++ {
		go func() {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				q := NewQuery()
				q.Lower = key(1)
				q.Upper = key(1)
				rows, err := tt.QueryAll(q)
				if err != nil {
					errCh <- err
					return
				}
				// Results must be ordered and duplicate-free regardless of
				// concurrent inserts.
				sc := tt.Schema()
				for i := 1; i < len(rows); i++ {
					if sc.CompareKeys(rows[i-1], rows[i]) >= 0 {
						errCh <- errors.New("unordered result under concurrency")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != perWriter {
		t.Fatalf("lost rows under concurrency: %d", len(rows))
	}
}

func TestFlushBefore(t *testing.T) {
	tt := newTestTable(t, Options{})
	now := tt.clk.Now()
	// One tablet entirely before the cutoff (old week), one after (today).
	mustInsert(t, tt.Table, usageRow(1, 1, now-30*clock.Day, 0, 0))
	mustInsert(t, tt.Table, usageRow(1, 1, now, 0, 1))
	if err := tt.FlushBefore(now - clock.Day); err != nil {
		t.Fatal(err)
	}
	if tt.DiskTabletCount() < 1 {
		t.Fatal("FlushBefore flushed nothing")
	}
	// The today tablet may legitimately stay in memory (its timespan
	// starts after the cutoff and it has no dependency forcing it out)...
	// but in this insert order (old row first, then new) the dependency
	// edge points old→new, so only the old tablet must be on disk.
	rows := queryBox(t, tt.Table, NewQuery())
	if len(rows) != 2 {
		t.Fatalf("rows after FlushBefore: %d", len(rows))
	}
	// Everything before the cutoff is durable: crash and verify.
	tt2 := reopen(t, tt)
	found := false
	for _, r := range queryBox(t, tt2.Table, NewQuery()) {
		if r[4].Int == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("pre-cutoff row not durable after FlushBefore + crash")
	}
}
