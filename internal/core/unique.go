package core

import (
	"littletable/internal/ltval"
	"littletable/internal/memtable"
	"littletable/internal/schema"
)

// checkUnique implements §3.4.4's primary-key uniqueness enforcement,
// cheapest check first:
//
//  1. A row whose timestamp is newer than every row in the table is unique
//     (keys embed the timestamp), using only cached metadata.
//  2. A row whose key exceeds the largest key of every tablet that could
//     contain its timestamp is unique, using only tablet indexes. This is
//     the fast path aggregators hit, since they insert in ascending key
//     order within each period.
//  3. Bloom filters rule out most remaining disk tablets without I/O.
//  4. Whatever survives requires a point read.
//
// Inserts hold insertMu (the paper's lock table: other inserts to the same
// table block; queries continue), so two racing inserts cannot both pass.
func (t *Table) checkUnique(sc *schema.Schema, row schema.Row, now int64) (bool, error) {
	ts := sc.Ts(row)

	t.mu.Lock()
	if t.hasRows && ts > t.maxTs {
		t.mu.Unlock()
		t.stats.UniqueFastNew.Add(1)
		return true, nil
	}
	if !t.hasRows {
		t.mu.Unlock()
		t.stats.UniqueFastNew.Add(1)
		return true, nil
	}

	// Collect the tablets whose timespan contains ts.
	var disks []*diskTablet
	var mems []*memtable.Memtable
	for _, dt := range t.disk {
		if dt.rec.MinTs <= ts && ts <= dt.rec.MaxTs {
			t.acquireLocked(dt)
			disks = append(disks, dt)
		}
	}
	collect := func(f *fillingTablet) {
		if f.mt.Empty() {
			return
		}
		lo, hi := f.mt.Timespan()
		if lo <= ts && ts <= hi {
			mems = append(mems, f.mt)
		}
	}
	for _, f := range t.filling {
		collect(f)
	}
	for _, g := range t.pending {
		for _, f := range g.tablets {
			collect(f)
		}
	}
	t.mu.Unlock()
	defer func() {
		for _, dt := range disks {
			t.release(dt)
		}
	}()

	if len(disks) == 0 && len(mems) == 0 {
		t.stats.UniqueFastNew.Add(1)
		return true, nil
	}

	// Fast path 2: larger than every candidate tablet's largest key.
	key := sc.KeyOf(row)
	larger := true
	for _, mt := range mems {
		if mk, ok := memMaxKey(mt.Schema(), mt); ok && schema.CompareKeySlices(key, mk) <= 0 {
			larger = false
			break
		}
	}
	if larger {
		for _, dt := range disks {
			lk, err := dt.tab.LastKey()
			if err != nil {
				return false, err
			}
			if lk != nil && compareKeyAcrossSchemas(key, lk) <= 0 {
				larger = false
				break
			}
		}
	}
	if larger {
		t.stats.UniqueFastKey.Add(1)
		return true, nil
	}

	// Memtable point lookups are cheap; do them before Bloom/disk work.
	// Note rows in memtables are in the current schema's key layout (key
	// columns never change).
	for _, mt := range mems {
		if mt.Contains(key) {
			return false, nil
		}
	}

	// Bloom filters (§3.4.5: "would also be useful to check for duplicate
	// keys during inserts").
	encKey := sc.AppendKey(nil, row)
	var probe []*diskTablet
	for _, dt := range disks {
		if dt.tab.MayContainKey(encKey) {
			probe = append(probe, dt)
		}
	}
	if len(probe) == 0 {
		t.stats.UniqueBloom.Add(1)
		return true, nil
	}

	// Slow path: point reads, possibly touching disk. insertMu is held;
	// t.mu is not, so queries proceed unencumbered (§3.4.4).
	t.stats.UniqueProbes.Add(1)
	for _, dt := range probe {
		c, err := dt.tab.Seek(key, true)
		if err != nil {
			return false, err
		}
		if c.Next() {
			if dt.tab.Schema().CompareRowToKey(c.Row(), key) == 0 {
				return false, nil
			}
		}
		if err := c.Err(); err != nil {
			return false, err
		}
	}
	return true, nil
}

// compareKeyAcrossSchemas compares key-ordered value slices where int
// widths may differ between schema versions; ltval.Compare already orders
// Int32 against Int64 numerically.
func compareKeyAcrossSchemas(a, b []ltval.Value) int {
	return schema.CompareKeySlices(a, b)
}
