package devicesim

import "littletable/internal/clock"

// Camera motion encoding (§4.3): a 960×540 frame divides into 60×34
// macroblocks of 16×16 pixels, grouped into coarse cells of six columns
// and four rows of macroblocks — a 10×9 grid of coarse cells. A motion
// event is one 32-bit word: a nibble each for the coarse cell's row and
// column, and one bit for each of the cell's 24 macroblocks. Successive
// frames with motion in the same cell coalesce, OR-ing their bit vectors
// into one event with a duration.
const (
	FrameWidth  = 960
	FrameHeight = 540
	MacroSize   = 16 // 16×16 pixel macroblocks

	// Macroblock grid: 60 × 34 (540/16 rounds up).
	MacroCols = FrameWidth / MacroSize                    // 60
	MacroRows = (FrameHeight + MacroSize - 1) / MacroSize // 34

	// Coarse cells: 6 × 4 macroblocks each.
	CellMacroCols = 6
	CellMacroRows = 4
	CoarseCols    = MacroCols / CellMacroCols                       // 10
	CoarseRows    = (MacroRows + CellMacroRows - 1) / CellMacroRows // 9
)

// MotionEvent is one coalesced motion observation.
type MotionEvent struct {
	ID         int64
	Ts         int64 // start of motion
	DurationMs int32
	Word       uint32 // encoded cell + macroblock bits
}

// EncodeMotionWord packs a coarse cell position and macroblock bit vector:
// bits 31–28 row nibble, 27–24 column nibble, 23–0 macroblock bits (row-
// major within the cell: bit = mrow*CellMacroCols + mcol).
func EncodeMotionWord(cellRow, cellCol int, blocks uint32) uint32 {
	return uint32(cellRow&0xf)<<28 | uint32(cellCol&0xf)<<24 | blocks&0xffffff
}

// DecodeMotionWord unpacks EncodeMotionWord.
func DecodeMotionWord(w uint32) (cellRow, cellCol int, blocks uint32) {
	return int(w >> 28), int(w >> 24 & 0xf), w & 0xffffff
}

// maxRetainedMotion bounds the camera-side ring buffer.
const maxRetainedMotion = 16384

// Camera simulates the on-camera background process of §4.3: objects move
// through the frame producing coalesced per-cell motion events. Over a
// recent week production cameras averaged 51,000 rows each; the default
// rates land in that regime when advanced over simulated days.
type Camera struct {
	events []MotionEvent
	nextID int64
	// A wandering "object" drives spatial locality in the motion.
	objRow, objCol int
}

func newCamera(r *rng) *Camera {
	return &Camera{
		nextID: 1,
		objRow: int(r.intn(CoarseRows)),
		objCol: int(r.intn(CoarseCols)),
	}
}

// advance generates motion events in (from, to]. Event rate ≈ one
// coalesced event per ~12 seconds of wall time, matching 51k/week.
func (c *Camera) advance(r *rng, from, to int64) {
	const meanGap = 12 * clock.Second
	t := from + r.intn(meanGap)
	for t < to {
		// The object drifts to an adjacent cell.
		c.objRow = clampInt(c.objRow+int(r.intn(3))-1, 0, CoarseRows-1)
		c.objCol = clampInt(c.objCol+int(r.intn(3))-1, 0, CoarseCols-1)
		// Motion covers a random subset of the cell's macroblocks, biased
		// toward contiguous runs.
		blocks := uint32(0)
		start := int(r.intn(24))
		run := 1 + int(r.intn(12))
		for i := 0; i < run; i++ {
			blocks |= 1 << uint((start+i)%24)
		}
		// The bottom coarse-cell row extends past the 540-pixel frame edge
		// (34 macroblock rows don't divide evenly by 4); cameras never
		// report motion in macroblocks outside the frame.
		blocks &= ValidBlockMask(c.objRow)
		if blocks == 0 {
			blocks = 1
		}
		c.events = append(c.events, MotionEvent{
			ID:         c.nextID,
			Ts:         t,
			DurationMs: int32(200 + r.intn(5000)),
			Word:       EncodeMotionWord(c.objRow, c.objCol, blocks),
		})
		c.nextID++
		if len(c.events) > maxRetainedMotion {
			c.events = c.events[len(c.events)-maxRetainedMotion:]
		}
		t += meanGap/2 + r.intn(meanGap)
	}
}

// ValidBlockMask returns the macroblock bits of a coarse-cell row that lie
// inside the frame: the last row of cells is only half-covered because 34
// macroblock rows do not divide evenly into rows of 4.
func ValidBlockMask(cellRow int) uint32 {
	mask := uint32(0)
	for lr := 0; lr < CellMacroRows; lr++ {
		if cellRow*CellMacroRows+lr >= MacroRows {
			break
		}
		for lc := 0; lc < CellMacroCols; lc++ {
			mask |= 1 << uint(lr*CellMacroCols+lc)
		}
	}
	return mask
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// CellsForRect returns the coarse cells and per-cell macroblock masks that
// intersect a pixel rectangle [x0,x1)×[y0,y1) — the search geometry for
// "any rectangular area of interest in a camera's video frame" (§4.3).
func CellsForRect(x0, y0, x1, y1 int) map[[2]int]uint32 {
	out := map[[2]int]uint32{}
	if x0 >= x1 || y0 >= y1 {
		return out
	}
	if x1 > FrameWidth {
		x1 = FrameWidth
	}
	if y1 > FrameHeight+MacroSize {
		y1 = FrameHeight + MacroSize
	}
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	for mr := 0; mr < MacroRows; mr++ {
		for mc := 0; mc < MacroCols; mc++ {
			px0, py0 := mc*MacroSize, mr*MacroSize
			px1, py1 := px0+MacroSize, py0+MacroSize
			if px1 <= x0 || px0 >= x1 || py1 <= y0 || py0 >= y1 {
				continue
			}
			cellRow, cellCol := mr/CellMacroRows, mc/CellMacroCols
			bit := uint32(1) << uint((mr%CellMacroRows)*CellMacroCols+(mc%CellMacroCols))
			key := [2]int{cellRow, cellCol}
			out[key] |= bit
		}
	}
	return out
}

// MotionMatchesRect reports whether an encoded motion word indicates
// motion inside the pixel rectangle.
func MotionMatchesRect(word uint32, cells map[[2]int]uint32) bool {
	row, col, blocks := DecodeMotionWord(word)
	mask, ok := cells[[2]int{row, col}]
	return ok && blocks&mask != 0
}
