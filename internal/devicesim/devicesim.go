// Package devicesim simulates the Meraki device fleet the paper's
// applications gather time-series data from (§2.1, §4). It stands in for
// real hardware reached over mtunnel, preserving the protocol properties
// the applications depend on:
//
//   - byte counters are monotonically increasing current values, so a
//     grabber that re-polls after a crash recovers recent data (§4.1.1);
//   - event logs carry unique ids from a monotonically increasing counter,
//     support fetch-after-id, and report their oldest retained event for
//     grabbers whose cache is arbitrarily stale (§4.2);
//   - cameras coalesce per-coarse-cell motion into single 32-bit-encoded
//     events (§4.3);
//   - devices go offline and come back, producing the unavailability gaps
//     and out-of-order timestamps the engine must absorb (§3.4.3).
//
// Simulation is deterministic per (seed, device id) and driven by an
// injected clock.
package devicesim

import (
	"sort"
	"sync"

	"littletable/internal/clock"
)

// Event is one device log entry (DHCP lease, 802.1X auth, association...).
type Event struct {
	ID   int64
	Ts   int64 // device-side time the event occurred
	Type string
	Info string
}

// Event types devices emit (§4.2).
var eventTypes = []string{
	"dhcp_lease", "assoc", "disassoc", "8021x_auth", "dfs_event", "vpn_up",
}

// maxRetainedEvents bounds the device-side log ring; devices have finite
// flash.
const maxRetainedEvents = 4096

// Device is one simulated device.
type Device struct {
	ID        int64
	NetworkID int64
	Kind      string

	mu          sync.Mutex
	rng         rng
	online      bool
	counter     uint64 // lifetime bytes transferred
	rateBase    uint64 // bytes/second baseline
	lastAdvance int64
	nextEventID int64
	events      []Event
	eventRate   float64 // expected events per minute
	camera      *Camera
}

// rng is xorshift64*, deterministic and dependency-free (the paper's
// benchmarks use an xorshift generator, §5.1.1).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 2685821657736338717
}

// intn returns a value in [0, n).
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// Fleet is a set of devices sharing a clock.
type Fleet struct {
	clk  clock.Clock
	mu   sync.Mutex
	devs map[int64]*Device
	seed uint64
}

// NewFleet returns an empty fleet.
func NewFleet(clk clock.Clock, seed uint64) *Fleet {
	return &Fleet{clk: clk, devs: map[int64]*Device{}, seed: seed}
}

// AddDevice creates a device. Cameras additionally produce motion events.
func (f *Fleet) AddDevice(id, networkID int64, kind string) *Device {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := &Device{
		ID:          id,
		NetworkID:   networkID,
		Kind:        kind,
		rng:         rng{s: f.seed ^ uint64(id)*0x9e3779b97f4a7c15 ^ 1},
		online:      true,
		nextEventID: 1,
		lastAdvance: f.clk.Now(),
	}
	d.rateBase = 1000 + uint64(d.rng.intn(500_000)) // 1 kB/s – 500 kB/s
	d.eventRate = 0.2 + d.rng.float()*2             // 0.2–2.2 events/min
	if kind == "camera" {
		d.camera = newCamera(&d.rng)
	}
	f.devs[id] = d
	return d
}

// Device returns a device by id, or nil.
func (f *Fleet) Device(id int64) *Device {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.devs[id]
}

// Devices returns all devices (unordered).
func (f *Fleet) Devices() []*Device {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*Device, 0, len(f.devs))
	for _, d := range f.devs {
		out = append(out, d)
	}
	return out
}

// AdvanceAll simulates every device up to the fleet clock's current time.
func (f *Fleet) AdvanceAll() {
	now := f.clk.Now()
	for _, d := range f.Devices() {
		d.Advance(now)
	}
}

// Advance simulates device activity up to time `to`. Devices keep
// operating while offline — counters advance and events accumulate — which
// is exactly why recently-lost data is recoverable once they reconnect.
func (d *Device) Advance(to int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if to <= d.lastAdvance {
		return
	}
	elapsed := to - d.lastAdvance
	// Byte counter: baseline rate with multiplicative noise.
	secs := float64(elapsed) / float64(clock.Second)
	noise := 0.5 + d.rng.float()
	d.counter += uint64(float64(d.rateBase) * secs * noise)
	// Events: Poisson-ish via per-minute expectation.
	expected := d.eventRate * secs / 60
	n := int64(expected)
	if d.rng.float() < expected-float64(n) {
		n++
	}
	// Event ids are assigned in timestamp order on the device, so sort the
	// window's timestamps before appending.
	if n > 0 {
		tss := make([]int64, n)
		for i := range tss {
			tss[i] = d.lastAdvance + d.rng.intn(elapsed)
		}
		sort.Slice(tss, func(i, j int) bool { return tss[i] < tss[j] })
		for _, ts := range tss {
			d.appendEventLocked(ts)
		}
	}
	if d.camera != nil {
		d.camera.advance(&d.rng, d.lastAdvance, to)
	}
	d.lastAdvance = to
}

func (d *Device) appendEventLocked(ts int64) {
	// Event timestamps are strictly increasing on the device, matching the
	// monotonic id counter; this also keeps (network, device, ts) keys
	// unique when grabbers store events (§4.2).
	if n := len(d.events); n > 0 && ts <= d.events[n-1].Ts {
		ts = d.events[n-1].Ts + 1
	}
	ev := Event{
		ID:   d.nextEventID,
		Ts:   ts,
		Type: eventTypes[d.rng.intn(int64(len(eventTypes)))],
		Info: "client=" + macString(d.rng.next()),
	}
	d.nextEventID++
	d.events = append(d.events, ev)
	if len(d.events) > maxRetainedEvents {
		d.events = d.events[len(d.events)-maxRetainedEvents:]
	}
}

func macString(u uint64) string {
	const hexdig = "0123456789abcdef"
	b := make([]byte, 0, 17)
	for i := 0; i < 6; i++ {
		c := byte(u >> (8 * i))
		if i > 0 {
			b = append(b, ':')
		}
		b = append(b, hexdig[c>>4], hexdig[c&0xf])
	}
	return string(b)
}

// SetOnline changes reachability; fetches fail while offline.
func (d *Device) SetOnline(online bool) {
	d.mu.Lock()
	d.online = online
	d.mu.Unlock()
}

// Online reports reachability.
func (d *Device) Online() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.online
}

// FetchCounter returns the device's lifetime byte counter, or ok=false if
// the device is unreachable (§4.1.1: UsageGrabber polls this).
func (d *Device) FetchCounter() (uint64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.online {
		return 0, false
	}
	return d.counter, true
}

// FetchEventsAfter returns up to max events with id > afterID, oldest
// first (§4.2: the grabber supplies its latest seen id and the device
// replies with anything newer). ok=false means unreachable.
func (d *Device) FetchEventsAfter(afterID int64, max int) ([]Event, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.online {
		return nil, false
	}
	var out []Event
	for _, ev := range d.events {
		if ev.ID > afterID {
			out = append(out, ev)
			if max > 0 && len(out) >= max {
				break
			}
		}
	}
	return out, true
}

// OldestEvent returns the oldest retained event (§4.2: a device polled
// without a previous id "responds with the oldest event it has stored").
func (d *Device) OldestEvent() (Event, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.online || len(d.events) == 0 {
		return Event{}, false
	}
	return d.events[0], true
}

// LatestEventID returns the most recent event id assigned.
func (d *Device) LatestEventID() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nextEventID - 1
}

// FetchMotionAfter returns camera motion events with id > afterID
// (cameras only).
func (d *Device) FetchMotionAfter(afterID int64, max int) ([]MotionEvent, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.online || d.camera == nil {
		return nil, d.online && d.camera != nil
	}
	var out []MotionEvent
	for _, ev := range d.camera.events {
		if ev.ID > afterID {
			out = append(out, ev)
			if max > 0 && len(out) >= max {
				break
			}
		}
	}
	return out, true
}
