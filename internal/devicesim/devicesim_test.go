package devicesim

import (
	"testing"

	"littletable/internal/clock"
)

const start = 1_782_018_420 * clock.Second

func newFleet(t *testing.T) (*Fleet, *clock.Fake) {
	t.Helper()
	clk := clock.NewFake(start)
	return NewFleet(clk, 42), clk
}

func TestCounterMonotonic(t *testing.T) {
	f, clk := newFleet(t)
	d := f.AddDevice(1, 10, "access_point")
	var prev uint64
	for i := 0; i < 20; i++ {
		clk.Advance(clock.Minute)
		d.Advance(clk.Now())
		c, ok := d.FetchCounter()
		if !ok {
			t.Fatal("online fetch failed")
		}
		if c < prev {
			t.Fatalf("counter went backwards: %d < %d", c, prev)
		}
		if i > 0 && c == prev {
			t.Fatal("counter did not advance over a minute")
		}
		prev = c
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	run := func() uint64 {
		clk := clock.NewFake(start)
		f := NewFleet(clk, 7)
		d := f.AddDevice(1, 1, "switch")
		clk.Advance(clock.Hour)
		d.Advance(clk.Now())
		c, _ := d.FetchCounter()
		return c
	}
	if run() != run() {
		t.Error("same seed produced different counters")
	}
}

func TestOfflineFetchFails(t *testing.T) {
	f, clk := newFleet(t)
	d := f.AddDevice(1, 10, "access_point")
	d.SetOnline(false)
	if _, ok := d.FetchCounter(); ok {
		t.Error("offline counter fetch succeeded")
	}
	if _, ok := d.FetchEventsAfter(0, 10); ok {
		t.Error("offline event fetch succeeded")
	}
	// Device keeps operating while offline: on reconnect, the counter has
	// advanced (recoverability, §4.1.1).
	before := d.counterSnapshot()
	clk.Advance(clock.Hour)
	d.Advance(clk.Now())
	d.SetOnline(true)
	after, ok := d.FetchCounter()
	if !ok || after <= before {
		t.Error("offline period did not accumulate counter growth")
	}
}

func (d *Device) counterSnapshot() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.counter
}

func TestEventsMonotonicIDs(t *testing.T) {
	f, clk := newFleet(t)
	d := f.AddDevice(1, 10, "access_point")
	clk.Advance(6 * clock.Hour)
	d.Advance(clk.Now())
	evs, ok := d.FetchEventsAfter(0, 0)
	if !ok {
		t.Fatal("fetch failed")
	}
	if len(evs) == 0 {
		t.Fatal("no events after 6 hours")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].ID != evs[i-1].ID+1 {
			t.Fatalf("non-contiguous ids at %d", i)
		}
		if evs[i].Ts < evs[i-1].Ts {
			t.Fatalf("event timestamps out of order at %d", i)
		}
	}
}

func TestFetchAfterID(t *testing.T) {
	f, clk := newFleet(t)
	d := f.AddDevice(1, 10, "access_point")
	clk.Advance(6 * clock.Hour)
	d.Advance(clk.Now())
	all, _ := d.FetchEventsAfter(0, 0)
	if len(all) < 3 {
		t.Skip("too few events for this seed")
	}
	mid := all[len(all)/2].ID
	tail, _ := d.FetchEventsAfter(mid, 0)
	if len(tail) != len(all)-len(all)/2-1 {
		t.Fatalf("fetch after %d returned %d events, want %d", mid, len(tail), len(all)-len(all)/2-1)
	}
	for _, ev := range tail {
		if ev.ID <= mid {
			t.Fatal("returned event at or before the requested id")
		}
	}
	// Cap respected.
	capped, _ := d.FetchEventsAfter(0, 2)
	if len(capped) != 2 {
		t.Fatalf("max cap returned %d", len(capped))
	}
}

func TestOldestEventAfterRetentionDrop(t *testing.T) {
	f, clk := newFleet(t)
	d := f.AddDevice(1, 10, "access_point")
	// Long enough that the 4096-event ring drops the head.
	for i := 0; i < 400; i++ {
		clk.Advance(24 * clock.Hour)
		d.Advance(clk.Now())
	}
	oldest, ok := d.OldestEvent()
	if !ok {
		t.Fatal("no oldest event")
	}
	if d.LatestEventID() > maxRetainedEvents && oldest.ID == 1 {
		t.Error("retention never dropped old events")
	}
	evs, _ := d.FetchEventsAfter(0, 0)
	if evs[0].ID != oldest.ID {
		t.Error("OldestEvent disagrees with FetchEventsAfter(0)")
	}
}

func TestMotionWordRoundTrip(t *testing.T) {
	for row := 0; row < CoarseRows; row++ {
		for col := 0; col < CoarseCols; col++ {
			blocks := uint32(0xabcdef) & 0xffffff
			w := EncodeMotionWord(row, col, blocks)
			r, c, b := DecodeMotionWord(w)
			if r != row || c != col || b != blocks {
				t.Fatalf("round trip (%d,%d): got (%d,%d,%x)", row, col, r, c, b)
			}
		}
	}
}

func TestGridDimensions(t *testing.T) {
	if MacroCols != 60 || MacroRows != 34 {
		t.Errorf("macroblock grid %dx%d, want 60x34 (§4.3)", MacroCols, MacroRows)
	}
	if CellMacroCols*CellMacroRows != 24 {
		t.Error("coarse cells must hold 24 macroblocks (24 bits)")
	}
	if CoarseCols > 16 || CoarseRows > 16 {
		t.Error("coarse coordinates must fit in a nibble")
	}
}

func TestCameraGeneratesMotion(t *testing.T) {
	f, clk := newFleet(t)
	cam := f.AddDevice(1, 10, "camera")
	clk.Advance(clock.Hour)
	cam.Advance(clk.Now())
	evs, ok := cam.FetchMotionAfter(0, 0)
	if !ok || len(evs) == 0 {
		t.Fatal("camera produced no motion in an hour")
	}
	// Roughly one event per ~12-18s: an hour gives 200-300.
	if len(evs) < 100 || len(evs) > 600 {
		t.Errorf("motion rate off: %d events/hour", len(evs))
	}
	for i, ev := range evs {
		r, c, blocks := DecodeMotionWord(ev.Word)
		if r >= CoarseRows || c >= CoarseCols {
			t.Fatalf("event %d outside grid: (%d,%d)", i, r, c)
		}
		if blocks == 0 {
			t.Fatalf("event %d has no macroblock bits", i)
		}
		if i > 0 && ev.ID != evs[i-1].ID+1 {
			t.Fatalf("motion ids not contiguous at %d", i)
		}
	}
}

func TestNonCameraHasNoMotion(t *testing.T) {
	f, clk := newFleet(t)
	d := f.AddDevice(1, 10, "switch")
	clk.Advance(clock.Hour)
	d.Advance(clk.Now())
	evs, ok := d.FetchMotionAfter(0, 0)
	if ok || evs != nil {
		t.Error("non-camera returned motion")
	}
}

func TestCellsForRect(t *testing.T) {
	// Full frame covers every cell.
	all := CellsForRect(0, 0, FrameWidth, FrameHeight)
	if len(all) != CoarseCols*CoarseRows {
		t.Errorf("full frame covers %d cells, want %d", len(all), CoarseCols*CoarseRows)
	}
	// A single macroblock's rectangle maps to exactly one cell, one bit.
	one := CellsForRect(0, 0, MacroSize, MacroSize)
	if len(one) != 1 {
		t.Fatalf("one-macroblock rect covers %d cells", len(one))
	}
	for _, mask := range one {
		if mask != 1 {
			t.Errorf("one-macroblock mask = %x", mask)
		}
	}
	// Degenerate rectangle.
	if len(CellsForRect(100, 100, 100, 100)) != 0 {
		t.Error("empty rect matched cells")
	}
}

func TestMotionMatchesRect(t *testing.T) {
	cells := CellsForRect(0, 0, 96, 64) // cell (0,0) region
	w := EncodeMotionWord(0, 0, 0x1)
	if !MotionMatchesRect(w, cells) {
		t.Error("motion in rect not matched")
	}
	w2 := EncodeMotionWord(5, 5, 0xffffff)
	if MotionMatchesRect(w2, cells) {
		t.Error("motion outside rect matched")
	}
}

func TestAdvanceAll(t *testing.T) {
	f, clk := newFleet(t)
	for i := int64(1); i <= 5; i++ {
		f.AddDevice(i, 1, "access_point")
	}
	clk.Advance(clock.Minute)
	f.AdvanceAll()
	for _, d := range f.Devices() {
		c, _ := d.FetchCounter()
		if c == 0 {
			t.Fatalf("device %d did not advance", d.ID)
		}
	}
	if f.Device(3) == nil || f.Device(99) != nil {
		t.Error("Device lookup wrong")
	}
}
