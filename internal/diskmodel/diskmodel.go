// Package diskmodel simulates the spinning disk of §5.1.1 — a 7,200 RPM
// drive with ~8 ms combined seek and rotational latency, ~120 MB/s
// sequential throughput, OS readahead (128 kB default, 1 MB in Figure 5's
// second configuration), and a drive cache that provides additional
// readahead. Replaying a tablet reader's real I/O trace (internal/iotrace)
// through this model regenerates the seek-vs-sequential economics behind
// Figures 5 and 6 and the 31 ms first-row headline, independent of the
// machine the benchmarks actually run on.
//
// The model is deliberately simple: files are laid out contiguously (ext4
// stores tablets under 1 GB in a single extent, §3.5), a read within a
// file's current readahead window is a page-cache hit, and any other read
// costs a seek (if the head must move) plus the transfer of the readahead
// window at sequential throughput.
package diskmodel

// Disk describes the modeled hardware. The zero value is unusable; use
// Paper() for §5.1.1's measurements.
type Disk struct {
	// SeekSeconds is the average combined seek + rotational latency.
	SeekSeconds float64
	// Throughput is sequential transfer speed in bytes/second.
	Throughput float64
	// Readahead is the OS file readahead in bytes.
	Readahead int64
	// DriveReadahead is the extra prefetch the drive's internal cache
	// provides beyond the OS request (§5.1.5 suspects the 64 MB drive
	// cache explains throughput above the naive model).
	DriveReadahead int64
}

// Paper returns the benchmark hardware of §5.1.1: 8 ms seeks, 120 MB/s,
// 128 kB readahead.
func Paper() Disk {
	return Disk{
		SeekSeconds:    0.008,
		Throughput:     120e6,
		Readahead:      128 << 10,
		DriveReadahead: 128 << 10,
	}
}

// WithReadahead returns a copy with the OS readahead changed (Figure 5
// compares 128 kB against 1 MB).
func (d Disk) WithReadahead(bytes int64) Disk {
	d.Readahead = bytes
	return d
}

// Sim replays an access stream against the model, accounting time.
type Sim struct {
	d        Disk
	fileBase []int64 // platter offset of each file
	fileSize []int64
	head     int64 // current head position (absolute)
	started  bool
	// buffered readahead window per file: [start, end) in file offsets.
	winStart []int64
	winEnd   []int64

	seeks     int
	bytesRead int64 // physical bytes transferred
	seconds   float64
}

// NewSim lays out the given files contiguously on the platter.
func NewSim(d Disk, fileSizes []int64) *Sim {
	s := &Sim{
		d:        d,
		fileBase: make([]int64, len(fileSizes)),
		fileSize: append([]int64(nil), fileSizes...),
		winStart: make([]int64, len(fileSizes)),
		winEnd:   make([]int64, len(fileSizes)),
	}
	var off int64
	for i, size := range fileSizes {
		s.fileBase[i] = off
		off += size
		s.winStart[i], s.winEnd[i] = 0, 0
	}
	return s
}

// Read accounts one logical read of n bytes at off within file.
func (s *Sim) Read(file int, off int64, n int) {
	end := off + int64(n)
	// Page-cache hit: fully inside the file's buffered window.
	if off >= s.winStart[file] && end <= s.winEnd[file] {
		return
	}
	// Sequential extension: a read overlapping or starting exactly at the
	// window's end continues the streaming readahead — the kernel extends
	// the window without the application paying a seek (as long as the
	// head is still there).
	fetchStart := off
	extending := false
	if s.winEnd[file] > 0 && off >= s.winStart[file] && off <= s.winEnd[file] {
		fetchStart = s.winEnd[file]
		extending = true
	}
	fetch := end - fetchStart
	if ra := s.d.Readahead + s.d.DriveReadahead; fetch < ra {
		fetch = ra
	}
	// Readahead never runs past the end of the file (extent).
	if file < len(s.fileSize) {
		if max := s.fileSize[file] - fetchStart; fetch > max {
			fetch = max
		}
	}
	if fetch <= 0 {
		return
	}
	abs := s.fileBase[file] + fetchStart
	if !s.started || abs != s.head {
		s.seconds += s.d.SeekSeconds
		s.seeks++
	}
	s.started = true
	s.seconds += float64(fetch) / s.d.Throughput
	s.bytesRead += fetch
	s.head = abs + fetch
	if extending {
		s.winEnd[file] = fetchStart + fetch
	} else {
		s.winStart[file], s.winEnd[file] = off, fetchStart+fetch
	}
}

// Write accounts a sequential write of n bytes at the head (tablet flushes
// and merges write whole files sequentially).
func (s *Sim) Write(n int64) {
	if !s.started {
		s.seconds += s.d.SeekSeconds
		s.seeks++
		s.started = true
	}
	s.seconds += float64(n) / s.d.Throughput
	s.bytesRead += 0
	s.head += n
}

// Seeks returns the number of head movements accounted.
func (s *Sim) Seeks() int { return s.seeks }

// Seconds returns modeled elapsed time.
func (s *Sim) Seconds() float64 { return s.seconds }

// BytesTransferred returns physical bytes read.
func (s *Sim) BytesTransferred() int64 { return s.bytesRead }

// ThroughputBytesPerSec divides useful (logical) bytes by modeled time.
func (s *Sim) ThroughputBytesPerSec(logicalBytes int64) float64 {
	if s.seconds == 0 {
		return 0
	}
	return float64(logicalBytes) / s.seconds
}

// Tagged is the iotrace.TaggedAccess shape, re-declared to avoid a
// dependency direction from diskmodel to iotrace.
type Tagged struct {
	File   int
	Offset int64
	Len    int
}

// Replay runs a whole trace and returns the simulator for inspection.
func Replay(d Disk, fileSizes []int64, trace []Tagged) *Sim {
	s := NewSim(d, fileSizes)
	for _, a := range trace {
		s.Read(a.File, a.Offset, a.Len)
	}
	return s
}

// SequentialReadSeconds estimates reading n bytes in one sequential run:
// one seek plus transfer. The "disk peak" baseline in the figures.
func (d Disk) SequentialReadSeconds(n int64) float64 {
	return d.SeekSeconds + float64(n)/d.Throughput
}

// SequentialWriteSeconds mirrors SequentialReadSeconds for writes.
func (d Disk) SequentialWriteSeconds(n int64) float64 {
	return d.SeekSeconds + float64(n)/d.Throughput
}
