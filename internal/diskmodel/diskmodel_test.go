package diskmodel

import (
	"math"
	"testing"
)

func TestSequentialReadIsOneSeeek(t *testing.T) {
	d := Paper()
	s := NewSim(d, []int64{100 << 20})
	// Read the file in readahead-aligned chunks, fully sequential.
	ra := d.Readahead + d.DriveReadahead
	for off := int64(0); off < 100<<20; off += ra {
		s.Read(0, off, int(ra))
	}
	if s.Seeks() != 1 {
		t.Errorf("sequential read cost %d seeks, want 1", s.Seeks())
	}
	want := d.SequentialReadSeconds(100 << 20)
	if math.Abs(s.Seconds()-want)/want > 0.01 {
		t.Errorf("sequential time %.4f, want %.4f", s.Seconds(), want)
	}
}

func TestPageCacheHitIsFree(t *testing.T) {
	s := NewSim(Paper(), []int64{10 << 20})
	s.Read(0, 0, 4096)
	before := s.Seconds()
	s.Read(0, 4096, 4096) // inside the readahead window
	if s.Seconds() != before {
		t.Error("cached read cost time")
	}
}

func TestAlternatingFilesSeek(t *testing.T) {
	// Round-robin between two files: every read seeks. This is Figure 5's
	// mechanism ("the disk arm must seek back and forth between tablets").
	d := Paper()
	s := NewSim(d, []int64{1 << 30, 1 << 30})
	const rounds = 50
	ra := int(d.Readahead + d.DriveReadahead)
	for i := 0; i < rounds; i++ {
		s.Read(0, int64(i*ra), ra)
		s.Read(1, int64(i*ra), ra)
	}
	if s.Seeks() != 2*rounds {
		t.Errorf("alternating reads: %d seeks, want %d", s.Seeks(), 2*rounds)
	}
}

func TestLargerReadaheadRaisesInterleavedThroughput(t *testing.T) {
	// Figure 5's comparison: with many tablets, 1 MB readahead sustains
	// much higher throughput than 128 kB.
	run := func(d Disk) float64 {
		const files = 32
		sizes := make([]int64, files)
		for i := range sizes {
			sizes[i] = 64 << 20
		}
		s := NewSim(d, sizes)
		var logical int64
		ra := int(d.Readahead + d.DriveReadahead)
		for off := 0; off < 16<<20; off += ra {
			for f := 0; f < files; f++ {
				s.Read(f, int64(off), ra)
				logical += int64(ra)
			}
		}
		return s.ThroughputBytesPerSec(logical)
	}
	small := run(Paper())                        // 128 kB + drive cache
	large := run(Paper().WithReadahead(1 << 20)) // 1 MB + drive cache
	if large <= small {
		t.Errorf("1MB readahead (%.1f MB/s) not faster than 128kB (%.1f MB/s)",
			large/1e6, small/1e6)
	}
	// Shape targets from Figure 5: the small-readahead curve levels off in
	// the tens of MB/s, far below the 120 MB/s peak; the large one roughly
	// doubles it.
	if small > 60e6 {
		t.Errorf("small-readahead interleaved throughput %.1f MB/s too close to peak", small/1e6)
	}
	if large < 1.5*small {
		t.Errorf("readahead gain only %.2fx", large/small)
	}
}

func TestFirstRowSeekCounts(t *testing.T) {
	// Figure 6's model: reading a cold tablet's footer takes 3 accesses
	// (trailer, footer header, footer body — plus the inode the paper
	// counts, which our model folds into the first seek) and the block
	// read one more. Model: distinct non-contiguous reads each cost ~8 ms.
	d := Paper()
	s := NewSim(d, []int64{16 << 20})
	size := int64(16 << 20)
	s.Read(0, size-16, 16)          // trailer
	s.Read(0, size-60000, 13)       // footer header
	s.Read(0, size-60000+13, 55000) // footer body (cached: same window? no — offset not in window)
	s.Read(0, 8<<20, 64<<10)        // a block in the middle
	if s.Seeks() < 3 || s.Seeks() > 4 {
		t.Errorf("cold first-row read cost %d seeks, want 3-4", s.Seeks())
	}
	// ~4 seeks ≈ 31 ms: the paper's headline first-row latency.
	if s.Seconds() < 0.020 || s.Seconds() > 0.045 {
		t.Errorf("modeled first-row latency %.1f ms, want ≈31 ms", s.Seconds()*1000)
	}
}

func TestReplay(t *testing.T) {
	trace := []Tagged{
		{File: 0, Offset: 0, Len: 4096},
		{File: 0, Offset: 4096, Len: 4096}, // cached
		{File: 1, Offset: 0, Len: 4096},    // seek
	}
	s := Replay(Paper(), []int64{1 << 20, 1 << 20}, trace)
	if s.Seeks() != 2 {
		t.Errorf("replay seeks = %d", s.Seeks())
	}
}

func TestWriteAccounting(t *testing.T) {
	d := Paper()
	s := NewSim(d, nil)
	s.Write(16 << 20)
	want := d.SequentialWriteSeconds(16 << 20)
	if math.Abs(s.Seconds()-want) > 1e-9 {
		t.Errorf("write time %.4f, want %.4f", s.Seconds(), want)
	}
	// 16 MB flush sustains ~95% of peak write rate (§3.3).
	frac := (float64(16<<20) / d.Throughput) / s.Seconds()
	if frac < 0.93 || frac > 1.0 {
		t.Errorf("16MB flush efficiency %.3f, want ≈0.95", frac)
	}
}

func TestZeroTimeThroughput(t *testing.T) {
	s := NewSim(Paper(), nil)
	if s.ThroughputBytesPerSec(100) != 0 {
		t.Error("throughput with no time should be 0")
	}
}
