// Package hll implements HyperLogLog, the fixed-size probabilistic set
// representation Dashboard's aggregators use to track distinct clients
// (§4.1.2): it permits unions and yields cardinality estimates with
// bounded relative error, and its fixed size makes it storable as a blob
// column in a LittleTable table.
//
// This is the standard Flajolet–Fusy–Gandouet–Meunier estimator with the
// small-range (linear counting) and large-range corrections.
package hll

import (
	"errors"
	"math"
)

// Precision is the register-count exponent: m = 2^Precision registers.
// 14 gives a standard error of 1.04/√m ≈ 0.8% in 16 kB... at one byte per
// register, 16384 bytes. Dashboard-scale per-network sketches use 12
// (4 kB, ~1.6% error); the default splits the difference.
const DefaultPrecision = 12

// Sketch is a HyperLogLog counter. The zero value is unusable; call New.
type Sketch struct {
	p    uint8
	regs []uint8
}

// Errors returned by the package.
var (
	ErrPrecision = errors.New("hll: precision must be in [4, 16]")
	ErrMismatch  = errors.New("hll: precision mismatch in union")
	ErrCorrupt   = errors.New("hll: corrupt sketch encoding")
)

// New returns an empty sketch with 2^p registers.
func New(p uint8) (*Sketch, error) {
	if p < 4 || p > 16 {
		return nil, ErrPrecision
	}
	return &Sketch{p: p, regs: make([]uint8, 1<<p)}, nil
}

// MustNew is New for constant precisions.
func MustNew(p uint8) *Sketch {
	s, err := New(p)
	if err != nil {
		panic(err)
	}
	return s
}

// Precision returns the sketch's precision.
func (s *Sketch) Precision() uint8 { return s.p }

// SizeBytes returns the register array size.
func (s *Sketch) SizeBytes() int { return len(s.regs) }

// hash64 is a 64-bit finalizer-mix over FNV-1a, giving well-distributed
// bits from arbitrary keys.
func hash64(key []byte) uint64 {
	var h uint64 = 14695981039346656037
	for _, c := range key {
		h ^= uint64(c)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Add inserts a key.
func (s *Sketch) Add(key []byte) {
	s.AddHash(hash64(key))
}

// AddHash inserts a pre-hashed key.
func (s *Sketch) AddHash(h uint64) {
	idx := h >> (64 - s.p)
	rest := h<<s.p | 1<<(s.p-1) // ensure termination
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > s.regs[idx] {
		s.regs[idx] = rank
	}
}

// Estimate returns the approximate number of distinct keys added.
func (s *Sketch) Estimate() uint64 {
	m := float64(len(s.regs))
	var sum float64
	zeros := 0
	for _, r := range s.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := alphaM(len(s.regs))
	est := alpha * m * m / sum
	// Small-range correction: linear counting.
	if est <= 2.5*m && zeros > 0 {
		return uint64(m * math.Log(m/float64(zeros)))
	}
	// Large-range correction for 64-bit hashes is negligible below 2^57;
	// apply the classic 32-bit-era correction only in its regime.
	const two32 = 1 << 32
	if est > two32/30.0 {
		est = -two32 * math.Log(1-est/two32)
	}
	return uint64(est + 0.5)
}

func alphaM(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Merge unions other into s: afterwards s estimates the cardinality of the
// union of both key sets. This is what lets aggregators combine per-device
// sketches into per-network ones.
func (s *Sketch) Merge(other *Sketch) error {
	if s.p != other.p {
		return ErrMismatch
	}
	for i, r := range other.regs {
		if r > s.regs[i] {
			s.regs[i] = r
		}
	}
	return nil
}

// Clone copies the sketch.
func (s *Sketch) Clone() *Sketch {
	c := &Sketch{p: s.p, regs: make([]uint8, len(s.regs))}
	copy(c.regs, s.regs)
	return c
}

// Marshal serializes the sketch: [p][registers...]. Stored in LittleTable
// blob columns by the client-tracking aggregators.
func (s *Sketch) Marshal() []byte {
	out := make([]byte, 1+len(s.regs))
	out[0] = s.p
	copy(out[1:], s.regs)
	return out
}

// Unmarshal reverses Marshal.
func Unmarshal(b []byte) (*Sketch, error) {
	if len(b) < 1 {
		return nil, ErrCorrupt
	}
	p := b[0]
	if p < 4 || p > 16 {
		return nil, ErrCorrupt
	}
	if len(b) != 1+(1<<p) {
		return nil, ErrCorrupt
	}
	s := &Sketch{p: p, regs: make([]uint8, 1<<p)}
	copy(s.regs, b[1:])
	return s, nil
}
