package hll

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestEmptyEstimate(t *testing.T) {
	s := MustNew(12)
	if got := s.Estimate(); got != 0 {
		t.Errorf("empty estimate = %d", got)
	}
}

func TestPrecisionBounds(t *testing.T) {
	if _, err := New(3); err == nil {
		t.Error("precision 3 accepted")
	}
	if _, err := New(17); err == nil {
		t.Error("precision 17 accepted")
	}
	if _, err := New(4); err != nil {
		t.Error("precision 4 rejected")
	}
}

func TestAccuracyAcrossScales(t *testing.T) {
	for _, n := range []int{10, 100, 1000, 10000, 200000} {
		s := MustNew(12)
		for i := 0; i < n; i++ {
			s.Add([]byte(fmt.Sprintf("client-%d", i)))
		}
		got := float64(s.Estimate())
		relErr := math.Abs(got-float64(n)) / float64(n)
		// Standard error at p=12 is ~1.6%; allow 5 sigma.
		if relErr > 0.08 {
			t.Errorf("n=%d: estimate %.0f, rel err %.3f", n, got, relErr)
		}
	}
}

func TestDuplicatesDontInflate(t *testing.T) {
	s := MustNew(12)
	for round := 0; round < 10; round++ {
		for i := 0; i < 1000; i++ {
			s.Add([]byte(fmt.Sprintf("client-%d", i)))
		}
	}
	got := float64(s.Estimate())
	if math.Abs(got-1000)/1000 > 0.08 {
		t.Errorf("repeated adds changed estimate to %.0f", got)
	}
}

func TestMerge(t *testing.T) {
	a := MustNew(12)
	b := MustNew(12)
	for i := 0; i < 5000; i++ {
		a.Add([]byte(fmt.Sprintf("a-%d", i)))
		b.Add([]byte(fmt.Sprintf("b-%d", i)))
	}
	// Overlap: half of b's keys also in a.
	for i := 0; i < 2500; i++ {
		a.Add([]byte(fmt.Sprintf("b-%d", i)))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := float64(a.Estimate())
	want := 10000.0 // 5000 a's + 5000 b's, overlap already counted once
	if math.Abs(got-want)/want > 0.08 {
		t.Errorf("merged estimate %.0f, want ≈%.0f", got, want)
	}
}

func TestMergeMismatch(t *testing.T) {
	a := MustNew(12)
	b := MustNew(10)
	if err := a.Merge(b); err != ErrMismatch {
		t.Errorf("mismatched merge: %v", err)
	}
}

func TestMergeCommutes(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		a1, b1 := MustNew(8), MustNew(8)
		a2, b2 := MustNew(8), MustNew(8)
		for _, x := range xs {
			k := []byte(fmt.Sprint(x))
			a1.Add(k)
			a2.Add(k)
		}
		for _, y := range ys {
			k := []byte(fmt.Sprint(y))
			b1.Add(k)
			b2.Add(k)
		}
		a1.Merge(b1) // a ∪ b
		b2.Merge(a2) // b ∪ a
		return a1.Estimate() == b2.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	s := MustNew(10)
	for i := 0; i < 3000; i++ {
		s.Add([]byte(fmt.Sprintf("k%d", i)))
	}
	g, err := Unmarshal(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if g.Estimate() != s.Estimate() || g.Precision() != 10 {
		t.Errorf("round trip: %d vs %d", g.Estimate(), s.Estimate())
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	for _, b := range [][]byte{nil, {12}, {3, 0}, {12, 1, 2, 3}, make([]byte, 100)} {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("corrupt %v accepted", b)
		}
	}
}

func TestClone(t *testing.T) {
	s := MustNew(8)
	s.Add([]byte("x"))
	c := s.Clone()
	c.Add([]byte("y"))
	if s.Estimate() == c.Estimate() {
		t.Error("clone shares registers")
	}
}

func TestSizeBytes(t *testing.T) {
	if MustNew(12).SizeBytes() != 4096 {
		t.Error("p=12 should be 4096 registers")
	}
}

func BenchmarkAdd(b *testing.B) {
	s := MustNew(DefaultPrecision)
	key := []byte("client-mac-00:11:22:33:44:55")
	for i := 0; i < b.N; i++ {
		s.Add(key)
	}
}

func BenchmarkEstimate(b *testing.B) {
	s := MustNew(DefaultPrecision)
	for i := 0; i < 100000; i++ {
		s.Add([]byte(fmt.Sprint(i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Estimate()
	}
}
