// Package iotrace wraps an io.ReaderAt to record the access pattern a
// tablet reader produces: every (offset, length) in order. The disk-model
// benchmarks (Figures 5 and 6) replay these traces through a simulated
// spinning disk, so the figures measure the engine's real I/O behaviour
// under the paper's hardware model rather than this machine's SSD or page
// cache.
package iotrace

import (
	"io"
	"sync"
)

// Access is one read: offset and length in bytes.
type Access struct {
	Offset int64
	Len    int
}

// Tracer records accesses through an io.ReaderAt. Safe for concurrent use.
type Tracer struct {
	r io.ReaderAt

	mu       sync.Mutex
	accesses []Access
	closed   bool
	closer   io.Closer
}

// New wraps r. If r also implements io.Closer, Close forwards.
func New(r io.ReaderAt) *Tracer {
	t := &Tracer{r: r}
	if c, ok := r.(io.Closer); ok {
		t.closer = c
	}
	return t
}

// ReadAt implements io.ReaderAt, recording the access.
func (t *Tracer) ReadAt(p []byte, off int64) (int, error) {
	t.mu.Lock()
	t.accesses = append(t.accesses, Access{Offset: off, Len: len(p)})
	t.mu.Unlock()
	return t.r.ReadAt(p, off)
}

// Close implements io.Closer.
func (t *Tracer) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	if t.closer != nil {
		return t.closer.Close()
	}
	return nil
}

// Accesses returns a copy of the recorded trace in order.
func (t *Tracer) Accesses() []Access {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Access, len(t.accesses))
	copy(out, t.accesses)
	return out
}

// Reset clears the trace, e.g. between the footer-read phase and the
// query phase of a first-row-latency measurement.
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.accesses = nil
	t.mu.Unlock()
}

// Count returns the number of accesses so far.
func (t *Tracer) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.accesses)
}

// BytesRead sums the access lengths.
func (t *Tracer) BytesRead() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, a := range t.accesses {
		n += int64(a.Len)
	}
	return n
}

// Multi aggregates traces from several tracers (one per tablet file) into
// a single interleaved stream for the disk model; the interleaving is the
// order ReadAt calls actually happened across files.
type Multi struct {
	mu       sync.Mutex
	accesses []TaggedAccess
}

// TaggedAccess is an access tagged with the file it hit, so the disk model
// can account per-file head positions.
type TaggedAccess struct {
	File   int
	Offset int64
	Len    int
}

// NewMulti returns an empty aggregate trace.
func NewMulti() *Multi { return &Multi{} }

// Wrap returns a tracer for file index i that also appends into m.
func (m *Multi) Wrap(i int, r io.ReaderAt) *FileTracer {
	return &FileTracer{m: m, file: i, r: r}
}

// FileTracer is Multi's per-file wrapper.
type FileTracer struct {
	m    *Multi
	file int
	r    io.ReaderAt
}

// ReadAt implements io.ReaderAt.
func (f *FileTracer) ReadAt(p []byte, off int64) (int, error) {
	f.m.mu.Lock()
	f.m.accesses = append(f.m.accesses, TaggedAccess{File: f.file, Offset: off, Len: len(p)})
	f.m.mu.Unlock()
	return f.r.ReadAt(p, off)
}

// Close implements io.Closer.
func (f *FileTracer) Close() error {
	if c, ok := f.r.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Accesses returns the interleaved trace.
func (m *Multi) Accesses() []TaggedAccess {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]TaggedAccess, len(m.accesses))
	copy(out, m.accesses)
	return out
}

// Reset clears the trace.
func (m *Multi) Reset() {
	m.mu.Lock()
	m.accesses = nil
	m.mu.Unlock()
}
