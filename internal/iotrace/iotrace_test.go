package iotrace

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
)

type fakeReaderAt struct {
	data   []byte
	closed bool
}

func (f *fakeReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *fakeReaderAt) Close() error {
	f.closed = true
	return nil
}

func TestTracerRecordsAccesses(t *testing.T) {
	src := &fakeReaderAt{data: bytes.Repeat([]byte{7}, 1024)}
	tr := New(src)
	buf := make([]byte, 100)
	if _, err := tr.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ReadAt(buf[:50], 500); err != nil {
		t.Fatal(err)
	}
	acc := tr.Accesses()
	if len(acc) != 2 {
		t.Fatalf("accesses: %v", acc)
	}
	if acc[0] != (Access{Offset: 0, Len: 100}) || acc[1] != (Access{Offset: 500, Len: 50}) {
		t.Fatalf("accesses: %v", acc)
	}
	if tr.Count() != 2 || tr.BytesRead() != 150 {
		t.Errorf("Count=%d BytesRead=%d", tr.Count(), tr.BytesRead())
	}
	// Reads pass data through.
	if buf[0] != 7 {
		t.Error("data not forwarded")
	}
	tr.Reset()
	if tr.Count() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestTracerCloseForwards(t *testing.T) {
	src := &fakeReaderAt{}
	tr := New(src)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if !src.closed {
		t.Error("Close not forwarded")
	}
	// A plain ReaderAt without Close is fine too.
	tr2 := New(bytes.NewReader([]byte("x")))
	if err := tr2.Close(); err != nil {
		t.Error(err)
	}
}

func TestMultiInterleaving(t *testing.T) {
	m := NewMulti()
	a := m.Wrap(0, bytes.NewReader(bytes.Repeat([]byte{1}, 100)))
	b := m.Wrap(1, bytes.NewReader(bytes.Repeat([]byte{2}, 100)))
	buf := make([]byte, 10)
	a.ReadAt(buf, 0)
	b.ReadAt(buf, 20)
	a.ReadAt(buf, 30)
	acc := m.Accesses()
	if len(acc) != 3 {
		t.Fatalf("accesses: %v", acc)
	}
	want := []TaggedAccess{
		{File: 0, Offset: 0, Len: 10},
		{File: 1, Offset: 20, Len: 10},
		{File: 0, Offset: 30, Len: 10},
	}
	for i := range want {
		if acc[i] != want[i] {
			t.Fatalf("access %d = %v, want %v", i, acc[i], want[i])
		}
	}
	m.Reset()
	if len(m.Accesses()) != 0 {
		t.Error("Reset did not clear")
	}
}

func TestErrorsPropagate(t *testing.T) {
	tr := New(bytes.NewReader([]byte("abc")))
	buf := make([]byte, 10)
	if _, err := tr.ReadAt(buf, 100); !errors.Is(err, io.EOF) {
		t.Errorf("want EOF, got %v", err)
	}
	// The failed access is still recorded (it happened).
	if tr.Count() != 1 {
		t.Error("failed access not recorded")
	}
}

func TestConcurrentTracing(t *testing.T) {
	tr := New(bytes.NewReader(bytes.Repeat([]byte{9}, 4096)))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 16)
			for j := 0; j < 100; j++ {
				tr.ReadAt(buf, int64(j*16))
			}
		}()
	}
	wg.Wait()
	if tr.Count() != 800 {
		t.Errorf("Count = %d", tr.Count())
	}
}
