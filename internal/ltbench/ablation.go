package ltbench

import (
	"fmt"

	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// AblationConfig scales the design-choice ablations.
type AblationConfig struct {
	Days       int   // history span
	RowsPerDay int64 // rows inserted per simulated day
	Devices    int64
	Dir        string
}

func (c *AblationConfig) defaults() {
	if c.Days == 0 {
		c.Days = 28
	}
	if c.RowsPerDay == 0 {
		c.RowsPerDay = 2000
	}
	if c.Devices == 0 {
		c.Devices = 20
	}
}

// RunAblations measures LittleTable's two headline design choices against
// their ablated baselines:
//
//  1. Period-aware merging (§3.4.2) vs. the merge-everything policy of
//     §6's related systems: the scan efficiency of a recent-window query
//     collapses when months-old rows share tablets with today's.
//  2. Per-tablet Bloom filters (§3.4.5) vs. none: out-of-order inserts
//     fall back to point probes against every overlapping tablet instead
//     of being screened out.
func RunAblations(cfg AblationConfig) (*Result, error) {
	cfg.defaults()
	res := &Result{
		Figure: "Ablations",
		Title:  "Design-choice ablations: period-aware merging and Bloom filters",
	}

	// --- Ablation 1: period-aware merging ---
	scanRatio := func(acrossPeriods bool) (float64, int, error) {
		dir, err := scratchDir(cfg.Dir, "abl")
		if err != nil {
			return 0, 0, err
		}
		defer scratchRemove(dir)
		clk := clock.NewFake(1_782_018_420 * clock.Second)
		tab, err := core.CreateTable(dir, "t", usageLikeSchema(), 0, core.Options{
			Clock:              clk,
			MergeDelay:         1,
			MaxTabletSize:      1 << 40,
			MergeAcrossPeriods: acrossPeriods,
		})
		if err != nil {
			return 0, 0, err
		}
		defer tab.Close()
		// A month of history: insert day by day, merging as time passes —
		// exactly the regime where period isolation matters.
		for day := 0; day < cfg.Days; day++ {
			var rows []schema.Row
			for i := int64(0); i < cfg.RowsPerDay; i++ {
				ts := clk.Now() - clock.Day + (clock.Day*i)/cfg.RowsPerDay
				rows = append(rows, schema.Row{
					ltval.NewInt64(1),
					ltval.NewInt64(i % cfg.Devices),
					ltval.NewTimestamp(ts),
					ltval.NewDouble(float64(i)),
				})
			}
			if err := tab.Insert(rows); err != nil {
				return 0, 0, err
			}
			if err := tab.FlushAll(); err != nil {
				return 0, 0, err
			}
			clk.Advance(clock.Day)
			if _, err := tab.MergeUntilStable(); err != nil {
				return 0, 0, err
			}
		}
		// Today's data, so the recent-window query has rows to return.
		var fresh []schema.Row
		for i := int64(0); i < cfg.RowsPerDay; i++ {
			ts := clk.Now() - 4*clock.Hour + (4*clock.Hour*i)/cfg.RowsPerDay
			fresh = append(fresh, schema.Row{
				ltval.NewInt64(1),
				ltval.NewInt64(i % cfg.Devices),
				ltval.NewTimestamp(ts),
				ltval.NewDouble(float64(i)),
			})
		}
		if err := tab.Insert(fresh); err != nil {
			return 0, 0, err
		}
		if err := tab.FlushAll(); err != nil {
			return 0, 0, err
		}
		if _, err := tab.MergeUntilStable(); err != nil {
			return 0, 0, err
		}
		// The §3.4.2 motivating query: a forensic look at one device over a
		// 4-hour window two weeks back. With period isolation those rows
		// live in tablets spanning at most a week; in the baseline they
		// have merged into tablets spanning the entire history.
		q := core.NewQuery()
		q.Lower = []ltval.Value{ltval.NewInt64(1), ltval.NewInt64(3)}
		q.Upper = q.Lower
		q.MinTs = clk.Now() - 14*clock.Day
		q.MaxTs = q.MinTs + 4*clock.Hour
		it, err := tab.Query(q)
		if err != nil {
			return 0, 0, err
		}
		returned := 0
		for it.Next() {
			returned++
		}
		scanned := it.Scanned()
		it.Close()
		if returned == 0 {
			return float64(scanned), tab.DiskTabletCount(), nil
		}
		return float64(scanned) / float64(returned), tab.DiskTabletCount(), nil
	}
	withPeriods, tabletsWith, err := scanRatio(false)
	if err != nil {
		return nil, err
	}
	without, tabletsWithout, err := scanRatio(true)
	if err != nil {
		return nil, err
	}
	res.Series = append(res.Series, Series{
		Name: "historic 4-hour-window scan ratio (rows scanned / returned)",
		Points: []Point{
			{Label: "period-aware merging (LittleTable)", Y: withPeriods},
			{Label: "merge across periods (baseline)", Y: without},
			{Label: "tablets, period-aware", Y: float64(tabletsWith)},
			{Label: "tablets, baseline", Y: float64(tabletsWithout)},
		},
	})
	res.Notes = append(res.Notes, fmt.Sprintf(
		"period isolation keeps the historic-window scan ratio at %.1f vs %.1f when all history merges together (%.1fx; grows with retention — the paper's 365x example, §3.4.2)",
		withPeriods, without, without/withPeriods))

	// --- Ablation 2: Bloom filters for uniqueness probes ---
	probeStats := func(bloomOff bool) (core.StatsSnapshot, error) {
		dir, err := scratchDir(cfg.Dir, "abl")
		if err != nil {
			return core.StatsSnapshot{}, err
		}
		defer scratchRemove(dir)
		clk := clock.NewFake(1_782_018_420 * clock.Second)
		tab, err := core.CreateTable(dir, "t", usageLikeSchema(), 0, core.Options{
			Clock:        clk,
			DisableBloom: bloomOff,
		})
		if err != nil {
			return core.StatsSnapshot{}, err
		}
		defer tab.Close()
		now := clk.Now()
		// Seed flushed tablets whose timespans all cover (most of) the
		// same hour, so an insert into that hour must consider them all.
		for k := 0; k < 8; k++ {
			var rows []schema.Row
			for i := int64(0); i < 500; i++ {
				rows = append(rows, schema.Row{
					ltval.NewInt64(int64(k)), ltval.NewInt64(i),
					ltval.NewTimestamp(now - clock.Hour + i*7000 + int64(k)),
					ltval.NewDouble(0),
				})
			}
			if err := tab.Insert(rows); err != nil {
				return core.StatsSnapshot{}, err
			}
			if err := tab.FlushAll(); err != nil {
				return core.StatsSnapshot{}, err
			}
		}
		// Out-of-order inserts into the same hour with keys BELOW the
		// existing key range: neither the newest-timestamp nor the
		// largest-key fast path applies, so each insert needs bloom
		// screening or a point probe per overlapping tablet (§3.4.4).
		for i := int64(0); i < 2000; i++ {
			row := schema.Row{
				ltval.NewInt64(-1), ltval.NewInt64(i),
				ltval.NewTimestamp(now - clock.Hour + i*1700 + 13),
				ltval.NewDouble(0),
			}
			if err := tab.Insert([]schema.Row{row}); err != nil {
				return core.StatsSnapshot{}, err
			}
		}
		return tab.Stats().Snapshot(), nil
	}
	withBloom, err := probeStats(false)
	if err != nil {
		return nil, err
	}
	noBloom, err := probeStats(true)
	if err != nil {
		return nil, err
	}
	res.Series = append(res.Series, Series{
		Name: "uniqueness slow-path point probes (lower is better)",
		Points: []Point{
			{Label: "with bloom filters", Y: float64(withBloom.UniqueProbes)},
			{Label: "bloom screened (no probe)", Y: float64(withBloom.UniqueBloom)},
			{Label: "without bloom filters", Y: float64(noBloom.UniqueProbes)},
		},
	})
	res.Notes = append(res.Notes, fmt.Sprintf(
		"bloom filters screened %d of %d slow-path inserts without I/O; disabling them forces %d point probes (§3.4.5's '99%% of the tablets')",
		withBloom.UniqueBloom, withBloom.UniqueBloom+withBloom.UniqueProbes, noBloom.UniqueProbes))
	return res, nil
}
