package ltbench

import (
	"fmt"
	"math"

	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/schema"
)

// AppendixConfig scales the merge-policy bound measurements (the paper's
// appendix): flush many tablets into one time period, merge until stable,
// and compare the surviving tablet count and per-row rewrite count against
// the proved O(log T) bounds.
type AppendixConfig struct {
	Flushes      int
	RowsPerFlush int
	Dir          string
}

func (c *AppendixConfig) defaults() {
	if c.Flushes == 0 {
		c.Flushes = 64
	}
	if c.RowsPerFlush == 0 {
		c.RowsPerFlush = 256
	}
}

// RunAppendix measures the merge policy's logarithmic bounds.
func RunAppendix(cfg AppendixConfig) (*Result, error) {
	cfg.defaults()
	dir, err := scratchDir(cfg.Dir, "appendix")
	if err != nil {
		return nil, err
	}
	defer scratchRemove(dir)
	clk := clock.NewFake(1_782_018_420 * clock.Second)
	sc := schema.MustNew([]schema.Column{
		{Name: "k", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
	}, []string{"k", "ts"})
	tab, err := core.CreateTable(dir, "bench", sc, 0, core.Options{
		Clock:         clk,
		MergeDelay:    1,
		MaxTabletSize: 1 << 40,
	})
	if err != nil {
		return nil, err
	}
	defer tab.Close()

	// All rows land in one long-past week period so merging is never
	// blocked by period boundaries.
	base := clk.Now() - 60*clock.Day
	seq := int64(0)
	counts := Series{Name: "tablets after merge vs log2(rows)"}
	for f := 0; f < cfg.Flushes; f++ {
		rows := make([]schema.Row, 0, cfg.RowsPerFlush)
		for i := 0; i < cfg.RowsPerFlush; i++ {
			rows = append(rows, schema.Row{
				ltval.NewInt64(seq), ltval.NewTimestamp(base + seq),
			})
			seq++
		}
		if err := tab.Insert(rows); err != nil {
			return nil, err
		}
		if err := tab.FlushAll(); err != nil {
			return nil, err
		}
		clk.Advance(clock.Second)
		if _, err := tab.MergeUntilStable(); err != nil {
			return nil, err
		}
		if f%8 == 7 {
			counts.Points = append(counts.Points, Point{
				X:     math.Log2(float64(seq)),
				Y:     float64(tab.DiskTabletCount()),
				Label: fmt.Sprintf("%d rows", seq),
			})
		}
	}
	s := tab.Stats().Snapshot()
	total := float64(seq)
	avgRewrites := float64(s.RowsRewritten) / total
	res := &Result{
		Figure: "Appendix",
		Title:  "Merge policy: logarithmic tablet count and rewrite bounds",
	}
	res.Series = append(res.Series, counts, Series{
		Name: "rewrite accounting",
		Points: []Point{
			{Label: "rows inserted", Y: total},
			{Label: "stable tablet count", Y: float64(tab.DiskTabletCount())},
			{Label: "log2(rows)", Y: math.Log2(total)},
			{Label: "avg rewrites per row", Y: avgRewrites},
			{Label: "write amplification", Y: s.WriteAmplification()},
		},
	})
	res.Notes = append(res.Notes,
		fmt.Sprintf("tablet count %d ≤ O(log T) = O(%.1f): %v",
			tab.DiskTabletCount(), math.Log2(total), float64(tab.DiskTabletCount()) <= 3*math.Log2(total)+3),
		fmt.Sprintf("avg rewrites/row %.2f ≤ O(log T): %v",
			avgRewrites, avgRewrites <= 2*math.Log2(total)+2))
	return res, nil
}
