package ltbench

import (
	"fmt"
	"path/filepath"
	"time"

	"littletable/internal/block"
	"littletable/internal/ltval"
	"littletable/internal/schema"
	"littletable/internal/tablet"
)

// EncodeConfig sizes the per-column encoding experiment: the same three
// datasets written with the legacy row-major block layout and with the
// auto (per-column codec) layout, comparing on-disk bytes per row and
// cold full-scan cost.
type EncodeConfig struct {
	// Rows per dataset per mode; default 20000.
	Rows int
	Dir  string
}

func (c *EncodeConfig) defaults() {
	if c.Rows == 0 {
		c.Rows = 20000
	}
}

// encodeDataset is one shape of data the codec chooser faces.
type encodeDataset struct {
	name string
	sc   *schema.Schema
	row  func(rng *xorshift, i int) schema.Row
}

// encodeDatasets builds the three benchmark shapes:
//
//   - dense-numeric: the §2 usage-accounting shape — regular timestamps,
//     smooth gauges, monotone counters. Delta-of-delta and XOR should
//     crush it.
//   - sparse-string: event-log shape — low-cardinality status strings and
//     repetitive text. Dictionary territory.
//   - mixed: numeric columns next to incompressible random blobs, so the
//     chooser must win on some columns while falling back on others.
func encodeDatasets() []encodeDataset {
	numSC := schema.MustNew([]schema.Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "device", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "gauge", Type: ltval.Double},
		{Name: "counter", Type: ltval.Int64},
	}, []string{"network", "device", "ts"})
	strSC := schema.MustNew([]schema.Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "device", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "state", Type: ltval.String},
		{Name: "detail", Type: ltval.String},
	}, []string{"network", "device", "ts"})
	mixSC := schema.MustNew([]schema.Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "device", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "gauge", Type: ltval.Double},
		{Name: "payload", Type: ltval.Blob},
	}, []string{"network", "device", "ts"})
	states := []string{"up", "down", "degraded", "flapping"}
	details := []string{
		"link state change observed on uplink port",
		"dhcp lease renewed",
		"client roamed between access points",
	}
	return []encodeDataset{
		{
			name: "dense-numeric",
			sc:   numSC,
			row: func(rng *xorshift, i int) schema.Row {
				return schema.Row{
					ltval.NewInt64(int64(i / 4096)),
					ltval.NewInt64(int64(i/64) % 64),
					ltval.NewTimestamp(int64(i%64) * 60_000_000),
					ltval.NewDouble(20 + float64(i%600)/100),
					ltval.NewInt64(int64(i) * 1500),
				}
			},
		},
		{
			name: "sparse-string",
			sc:   strSC,
			row: func(rng *xorshift, i int) schema.Row {
				return schema.Row{
					ltval.NewInt64(int64(i / 4096)),
					ltval.NewInt64(int64(i/64) % 64),
					ltval.NewTimestamp(int64(i%64) * 60_000_000),
					ltval.NewString(states[rng.next()%uint64(len(states))]),
					ltval.NewString(details[rng.next()%uint64(len(details))]),
				}
			},
		},
		{
			name: "mixed",
			sc:   mixSC,
			row: func(rng *xorshift, i int) schema.Row {
				payload := make([]byte, 48)
				for j := 0; j+8 <= len(payload); j += 8 {
					v := rng.next()
					for k := 0; k < 8; k++ {
						payload[j+k] = byte(v >> (8 * k))
					}
				}
				return schema.Row{
					ltval.NewInt64(int64(i / 4096)),
					ltval.NewInt64(int64(i/64) % 64),
					ltval.NewTimestamp(int64(i%64) * 60_000_000),
					ltval.NewDouble(20 + float64(i%600)/100),
					ltval.NewBlob(payload),
				}
			},
		},
	}
}

// RunEncode writes each dataset once per encoding mode and reports bytes
// per row on disk and cold-scan nanoseconds per row.
func RunEncode(cfg EncodeConfig) (*Result, error) {
	cfg.defaults()
	res := &Result{
		Figure: "encode",
		Title:  "per-column encoding: on-disk bytes/row and cold scan ns/row, legacy vs auto",
	}
	bytesS := Series{Name: "bytes per row on disk"}
	scanS := Series{Name: "cold full scan (ns/row)"}
	reduction := map[string]float64{}
	for _, ds := range encodeDatasets() {
		for _, mode := range []struct {
			label string
			enc   block.Mode
		}{
			{"legacy", block.ModeLegacy},
			{"auto", block.ModeAuto},
		} {
			bpr, nspr, err := encodeRun(cfg, ds, mode.enc)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", ds.name, mode.label, err)
			}
			label := ds.name + "/" + mode.label
			bytesS.Points = append(bytesS.Points, Point{X: float64(len(bytesS.Points)), Y: bpr, Label: label})
			scanS.Points = append(scanS.Points, Point{X: float64(len(scanS.Points)), Y: nspr, Label: label})
			if mode.label == "legacy" {
				reduction[ds.name] = bpr
			} else {
				reduction[ds.name] /= bpr
			}
		}
	}
	res.Series = append(res.Series, bytesS, scanS)
	for _, ds := range encodeDatasets() {
		res.Notes = append(res.Notes,
			fmt.Sprintf("%s: auto encoding shrinks bytes/row %.2fx vs legacy", ds.name, reduction[ds.name]))
	}
	return res, nil
}

// encodeRun writes one dataset under one mode and measures it.
func encodeRun(cfg EncodeConfig, ds encodeDataset, mode block.Mode) (bytesPerRow, scanNsPerRow float64, err error) {
	dir, err := scratchDir(cfg.Dir, "encode")
	if err != nil {
		return 0, 0, err
	}
	defer scratchRemove(dir)
	path := filepath.Join(dir, "bench.tab")
	w, err := tablet.Create(path, ds.sc, tablet.WriterOptions{Encoding: mode})
	if err != nil {
		return 0, 0, err
	}
	rng := &xorshift{s: 0x9e3779b97f4a7c15}
	for i := 0; i < cfg.Rows; i++ {
		if err := w.Append(ds.row(rng, i)); err != nil {
			return 0, 0, err
		}
	}
	info, err := w.Close()
	if err != nil {
		return 0, 0, err
	}

	tab, err := tablet.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer tab.Close()
	start := time.Now()
	c := tab.Cursor(true)
	n := 0
	for c.Next() {
		n++
	}
	if err := c.Err(); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	if n != cfg.Rows {
		return 0, 0, fmt.Errorf("scan returned %d rows, want %d", n, cfg.Rows)
	}
	return float64(info.Bytes) / float64(cfg.Rows), float64(elapsed.Nanoseconds()) / float64(cfg.Rows), nil
}
