package ltbench

import (
	"math"
	"testing"
	"time"
)

func TestHeadlineShape(t *testing.T) {
	res, err := RunHeadline(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	byLabel := map[string]float64{}
	for _, p := range pts {
		byLabel[p.Label] = p.Y
	}
	firstRow := byLabel["first-row latency (ms, modeled)"]
	// Paper: 31 ms; our model folds the inode seek, expect 24–36 ms.
	if firstRow < 20 || firstRow > 40 {
		t.Errorf("first-row latency %.1f ms, want ≈28-31", firstRow)
	}
	scan := byLabel["scan rate (rows/s, effective)"]
	// The 500k rows/s regime: hundreds of thousands, not tens or tens of
	// millions.
	if scan < 200_000 || scan > 5_000_000 {
		t.Errorf("effective scan rate %.0f rows/s out of regime", scan)
	}
	ins := byLabel["insert fraction of modeled disk peak"]
	if ins <= 0 || ins > 1.5 {
		t.Errorf("insert fraction %.2f nonsensical", ins)
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := RunFig2(Fig2Config{
		BytesPerRun: 2 << 20,
		BatchSizes:  []int{256, 64 << 10},
		RowSizes:    []int{32, 4 << 10},
		Dir:         t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if raceEnabled {
		t.Skip("throughput shapes are noise under the race detector")
	}
	batch := res.Series[0].Points
	if batch[1].Y <= batch[0].Y {
		t.Errorf("large batches (%.1f) not faster than tiny ones (%.1f)", batch[1].Y, batch[0].Y)
	}
	rows := res.Series[1].Points
	if rows[1].Y <= rows[0].Y {
		t.Errorf("large rows (%.1f) not faster than tiny ones (%.1f)", rows[1].Y, rows[0].Y)
	}
}

func TestFig3Shape(t *testing.T) {
	res, err := RunFig3(Fig3Config{
		TotalBytes:     32 << 20,
		FlushSize:      512 << 10,
		MaxTabletSize:  4 << 20,
		MaxPending:     8,
		MergeDelay:     300 * time.Millisecond,
		WindowDuration: 50 * time.Millisecond,
		Dir:            t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series[0].Points) < 3 {
		t.Fatal("too few throughput windows")
	}
	if len(res.Series[1].Points) == 0 {
		t.Fatal("no merges fired during sustained inserts")
	}
	// Merging must cost something: peak window above the minimum window.
	var minY, maxY float64 = math.Inf(1), 0
	for _, p := range res.Series[0].Points {
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	if maxY <= minY {
		t.Error("throughput flat despite merge competition")
	}
}

func TestFig4RunsAndModels(t *testing.T) {
	res, err := RunFig4(Fig4Config{
		BytesPerWriter: 1 << 20,
		WriterCounts:   []int{1, 2},
		Dir:            t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatal("missing modeled series")
	}
	measured := res.Series[0].Points
	model := res.Series[1].Points
	if measured[0].Y <= 0 {
		t.Error("zero measured throughput")
	}
	// The model always scales until the disk cap.
	if model[1].Y < model[0].Y {
		t.Error("model does not scale")
	}
}

func TestFig7To10Run(t *testing.T) {
	f7 := RunFig7(60, 1)
	if len(f7.Series) != 2 || len(f7.Series[0].Points) == 0 {
		t.Error("fig7 empty")
	}
	f8 := RunFig8(100, 2)
	if len(f8.Series) != 2 {
		t.Error("fig8 empty")
	}
	f10 := RunFig10(2000, 3)
	if len(f10.Series) != 2 {
		t.Error("fig10 empty")
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := RunFig9(Fig9Config{
		Tables:  3,
		Samples: 120,
		Queries: 40,
		Dir:     t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	p50 := res.Series[0].Points[2].Y
	// Paper: mean 1.4, p80 ≤ 3.3 — clustered queries scan near what they
	// return.
	if p50 < 1 || p50 > 4 {
		t.Errorf("scan-ratio p50 %.2f outside the paper's regime", p50)
	}
}

func TestRatesShape(t *testing.T) {
	res, err := RunRates(RatesConfig{
		Networks:       2,
		DevicesPerNet:  5,
		SimulatedHours: 1,
		Dir:            t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	inserted, returned, ratio := pts[0].Y, pts[1].Y, pts[2].Y
	if inserted <= 0 || returned <= 0 {
		t.Fatal("no traffic simulated")
	}
	// Read-heavy, roughly the paper's order of magnitude of 10.
	if ratio < 2 || ratio > 100 {
		t.Errorf("read:write ratio %.1f far from the paper's ~10", ratio)
	}
}

func TestAppendixBounds(t *testing.T) {
	res, err := RunAppendix(AppendixConfig{Flushes: 24, RowsPerFlush: 128, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	acc := res.Series[1].Points
	byLabel := map[string]float64{}
	for _, p := range acc {
		byLabel[p.Label] = p.Y
	}
	total := byLabel["rows inserted"]
	if byLabel["stable tablet count"] > 3*math.Log2(total)+3 {
		t.Errorf("tablet count %v exceeds O(log T)", byLabel["stable tablet count"])
	}
	if byLabel["avg rewrites per row"] > 2*math.Log2(total)+2 {
		t.Errorf("rewrites/row %v exceeds O(log T)", byLabel["avg rewrites per row"])
	}
}

func TestAblationShapes(t *testing.T) {
	res, err := RunAblations(AblationConfig{
		Days:       21,
		RowsPerDay: 1000,
		Dir:        t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	merge := res.Series[0].Points
	withPeriods, baseline := merge[0].Y, merge[1].Y
	if baseline < 1.5*withPeriods {
		t.Errorf("period ablation: baseline ratio %.1f not clearly worse than %.1f", baseline, withPeriods)
	}
	bloom := res.Series[1].Points
	withBloom, noBloom := bloom[0].Y, bloom[2].Y
	if noBloom == 0 {
		t.Fatal("bloom ablation exercised no probes")
	}
	// §3.4.5: filters should eliminate the vast majority of probes.
	if withBloom > noBloom/4 {
		t.Errorf("bloom filters only cut probes from %.0f to %.0f", noBloom, withBloom)
	}
}

func TestEncodeShape(t *testing.T) {
	res, err := RunEncode(EncodeConfig{Rows: 4000, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	bytesPerRow := map[string]float64{}
	for _, p := range res.Series[0].Points {
		bytesPerRow[p.Label] = p.Y
	}
	// The tentpole claim: dense numeric data shrinks at least 3x under
	// per-column codecs versus the legacy LZF-only layout.
	if r := bytesPerRow["dense-numeric/legacy"] / bytesPerRow["dense-numeric/auto"]; r < 3 {
		t.Errorf("dense-numeric reduction = %.2fx, want >= 3x", r)
	}
	// The chooser emits whichever image is smaller, so auto must never
	// lose to legacy on any dataset.
	for _, ds := range []string{"dense-numeric", "sparse-string", "mixed"} {
		if bytesPerRow[ds+"/auto"] > bytesPerRow[ds+"/legacy"] {
			t.Errorf("%s: auto %.2f B/row exceeds legacy %.2f", ds,
				bytesPerRow[ds+"/auto"], bytesPerRow[ds+"/legacy"])
		}
	}
}
