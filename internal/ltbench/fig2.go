package ltbench

import (
	"fmt"
	"net"
	"time"

	"littletable/internal/client"
	"littletable/internal/schema"
	"littletable/internal/server"
)

// Fig2Config scales the single-writer insert-throughput experiments
// (§5.1.2). The paper inserts 500 MB per configuration; the default here
// scales down while keeping the swept parameter ranges.
type Fig2Config struct {
	// BytesPerRun is the data volume inserted per configuration.
	BytesPerRun int64
	// BatchSizes sweeps the solid line (bytes per insert command, with
	// 128-byte rows). Paper: 256 B – 1 MB.
	BatchSizes []int
	// RowSizes sweeps the dashed line (row size with 64 kB batches).
	// Paper: 32 B – 32 kB (64 kB in the figure axis).
	RowSizes []int
	Dir      string
}

func (c *Fig2Config) defaults() {
	if c.BytesPerRun == 0 {
		c.BytesPerRun = 32 << 20
	}
	if len(c.BatchSizes) == 0 {
		c.BatchSizes = []int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 1 << 20}
	}
	if len(c.RowSizes) == 0 {
		c.RowSizes = []int{32, 64, 128, 256, 512, 1 << 10, 4 << 10, 16 << 10, 32 << 10}
	}
}

// RunFig2 regenerates Figure 2: insert throughput vs batch size (128-byte
// rows) and vs row size (64 kB batches), measured through the full wire
// path — client adaptor, TCP loopback, server, engine — like the paper's
// single-writer benchmark.
func RunFig2(cfg Fig2Config) (*Result, error) {
	cfg.defaults()
	res := &Result{
		Figure: "Figure 2",
		Title:  "Insert throughput vs. batch size and row size (measured)",
	}
	batch := Series{Name: "varying batch size, 128 B rows (MB/s)"}
	for _, bs := range cfg.BatchSizes {
		rows := bs / 128
		if rows < 1 {
			rows = 1
		}
		mbps, err := insertRun(cfg, 128, rows)
		if err != nil {
			return nil, err
		}
		batch.Points = append(batch.Points, Point{
			X: float64(bs), Y: mbps, Label: humanBytes(bs) + " batch"})
	}
	rowSz := Series{Name: "varying row size, 64 kB batches (MB/s)"}
	for _, rs := range cfg.RowSizes {
		rows := (64 << 10) / rs
		if rows < 1 {
			rows = 1
		}
		mbps, err := insertRun(cfg, rs, rows)
		if err != nil {
			return nil, err
		}
		rowSz.Points = append(rowSz.Points, Point{
			X: float64(rs), Y: mbps, Label: humanBytes(rs) + " rows"})
	}
	res.Series = append(res.Series, batch, rowSz)
	res.Notes = append(res.Notes,
		fmt.Sprintf("throughput rises with batch size: %.1f → %.1f MB/s (paper: per-command overhead amortizes)",
			batch.Points[0].Y, batch.Points[len(batch.Points)-1].Y),
		fmt.Sprintf("throughput rises with row size: %.1f → %.1f MB/s (paper: 12%% → 63%% of disk peak)",
			rowSz.Points[0].Y, rowSz.Points[len(rowSz.Points)-1].Y))
	return res, nil
}

// insertRun inserts cfg.BytesPerRun through the wire into a fresh table
// and returns MB/s.
func insertRun(cfg Fig2Config, rowBytes, rowsPerBatch int) (float64, error) {
	dir, err := scratchDir(cfg.Dir, "fig2")
	if err != nil {
		return 0, err
	}
	defer scratchRemove(dir)
	srv, err := server.New(server.Options{
		Root:                dir,
		MaintenanceInterval: 100 * time.Millisecond,
		Logf:                func(string, ...interface{}) {},
	})
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	go srv.Serve(lis)
	c, err := client.Dial(lis.Addr().String())
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := c.CreateTable("bench", benchSchema(), 0); err != nil {
		return 0, err
	}
	tab, err := c.OpenTable("bench")
	if err != nil {
		return 0, err
	}
	rng := newXorshift(2)
	var written int64
	seq := int64(0)
	start := time.Now()
	batch := make([]schema.Row, 0, rowsPerBatch)
	for written < cfg.BytesPerRun {
		batch = batch[:0]
		for i := 0; i < rowsPerBatch; i++ {
			batch = append(batch, benchRow(rng, seq, seq, rowBytes))
			seq++
			written += int64(rowBytes)
		}
		if err := tab.InsertNow(batch); err != nil {
			return 0, err
		}
	}
	elapsed := time.Since(start).Seconds()
	return float64(written) / elapsed / 1e6, nil
}

func humanBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%d MB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%d kB", n>>10)
	default:
		return fmt.Sprintf("%d B", n)
	}
}
