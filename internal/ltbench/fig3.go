package ltbench

import (
	"fmt"
	"sync"
	"time"

	"littletable/internal/core"
	"littletable/internal/schema"
)

// Fig3Config scales the insert-with-merging experiment (§5.1.3). The paper
// inserts 16 GB of 4 kB rows with 16 MB flushes, 128 MB merged-tablet cap,
// a 100-tablet flush backlog, and a 90 s merge delay; the defaults scale
// each knob by the same factor so the phases — CPU-bound burst, disk-bound
// plateau, merge-competition dip, equilibrium — replay in miniature.
type Fig3Config struct {
	TotalBytes     int64
	RowBytes       int
	BatchBytes     int
	FlushSize      int
	MaxTabletSize  int64
	MaxPending     int
	MergeDelay     time.Duration
	WindowDuration time.Duration
	Dir            string
}

func (c *Fig3Config) defaults() {
	if c.TotalBytes == 0 {
		c.TotalBytes = 256 << 20
	}
	if c.RowBytes == 0 {
		c.RowBytes = 4 << 10
	}
	if c.BatchBytes == 0 {
		c.BatchBytes = 64 << 10
	}
	if c.FlushSize == 0 {
		c.FlushSize = 1 << 20
	}
	if c.MaxTabletSize == 0 {
		c.MaxTabletSize = 8 << 20
	}
	if c.MaxPending == 0 {
		c.MaxPending = 16
	}
	if c.MergeDelay == 0 {
		c.MergeDelay = 1500 * time.Millisecond
	}
	if c.WindowDuration == 0 {
		c.WindowDuration = 250 * time.Millisecond
	}
}

// RunFig3 regenerates Figure 3: insert throughput over time with active
// tablet merging, with merge completions as impulse events.
func RunFig3(cfg Fig3Config) (*Result, error) {
	cfg.defaults()
	dir, err := scratchDir(cfg.Dir, "fig3")
	if err != nil {
		return nil, err
	}
	defer scratchRemove(dir)
	tab, err := core.CreateTable(dir, "bench", benchSchema(), 0, core.Options{
		FlushSize:         cfg.FlushSize,
		MaxTabletSize:     cfg.MaxTabletSize,
		MaxPendingTablets: cfg.MaxPending,
		MergeDelay:        cfg.MergeDelay.Microseconds(),
	})
	if err != nil {
		return nil, err
	}
	defer tab.Close()

	start := time.Now()
	var mu sync.Mutex
	var mergeTimes []float64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	// Background maintenance: continuous flush + merge, competing with the
	// inserter for the "disk" exactly as §5.1.3 describes.
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			flushed, _ := tab.FlushStep()
			merged, err := tab.MergeStep()
			if err != nil {
				return
			}
			if merged {
				mu.Lock()
				mergeTimes = append(mergeTimes, time.Since(start).Seconds())
				mu.Unlock()
			}
			if !flushed && !merged {
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	rowsPerBatch := cfg.BatchBytes / cfg.RowBytes
	if rowsPerBatch < 1 {
		rowsPerBatch = 1
	}
	rng := newXorshift(3)
	var windows []Point
	var written, windowWritten int64
	windowStart := time.Now()
	seq := int64(0)
	batch := make([]schema.Row, 0, rowsPerBatch)
	for written < cfg.TotalBytes {
		batch = batch[:0]
		for i := 0; i < rowsPerBatch; i++ {
			batch = append(batch, benchRow(rng, seq, seq, cfg.RowBytes))
			seq++
		}
		if err := tab.Insert(batch); err != nil {
			close(stop)
			wg.Wait()
			return nil, err
		}
		n := int64(rowsPerBatch * cfg.RowBytes)
		written += n
		windowWritten += n
		if since := time.Since(windowStart); since >= cfg.WindowDuration {
			windows = append(windows, Point{
				X: time.Since(start).Seconds(),
				Y: float64(windowWritten) / since.Seconds() / 1e6,
			})
			windowWritten = 0
			windowStart = time.Now()
		}
	}
	close(stop)
	wg.Wait()

	res := &Result{
		Figure: "Figure 3",
		Title:  "Insert throughput over time with active tablet merging (measured)",
	}
	tseries := Series{Name: "insert throughput (MB/s) at t (s)"}
	for _, p := range windows {
		tseries.Points = append(tseries.Points, Point{X: p.X, Y: p.Y, Label: fmt.Sprintf("t=%.2fs", p.X)})
	}
	impulses := Series{Name: "merge completions (s)"}
	mu.Lock()
	for _, mt := range mergeTimes {
		impulses.Points = append(impulses.Points, Point{X: mt, Y: 1, Label: fmt.Sprintf("merge@%.2fs", mt)})
	}
	mu.Unlock()
	res.Series = append(res.Series, tseries, impulses)

	s := tab.Stats().Snapshot()
	res.Notes = append(res.Notes,
		fmt.Sprintf("merges: %d, write amplification %.2f (paper: ~2 at equilibrium)",
			s.Merges, s.WriteAmplification()),
		fmt.Sprintf("flushed %d tablets, %d MB; merged %d MB",
			s.TabletsFlushed, s.BytesFlushed>>20, s.BytesMerged>>20))
	return res, nil
}
