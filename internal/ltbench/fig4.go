package ltbench

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"littletable/internal/client"
	"littletable/internal/schema"
	"littletable/internal/server"
)

// Fig4Config scales the multi-writer experiment (§5.1.4): each writer
// writes its own table over the wire in 32-row batches of 128-byte rows,
// matching Dashboard's many-grabbers-many-tables pattern.
type Fig4Config struct {
	BytesPerWriter int64
	WriterCounts   []int
	RowBytes       int
	RowsPerBatch   int
	Dir            string
}

func (c *Fig4Config) defaults() {
	if c.BytesPerWriter == 0 {
		c.BytesPerWriter = 8 << 20
	}
	if len(c.WriterCounts) == 0 {
		c.WriterCounts = []int{1, 2, 4, 8, 16, 32}
	}
	if c.RowBytes == 0 {
		c.RowBytes = 128
	}
	if c.RowsPerBatch == 0 {
		c.RowsPerBatch = 32
	}
}

// RunFig4 regenerates Figure 4: aggregate insert throughput vs number of
// concurrent writers, each to its own table. The server shares almost no
// state between tables, so throughput should rise with writers until the
// storage device saturates.
func RunFig4(cfg Fig4Config) (*Result, error) {
	cfg.defaults()
	res := &Result{
		Figure: "Figure 4",
		Title:  "Aggregate insert throughput vs. number of writers (measured)",
	}
	s := Series{Name: "aggregate throughput (MB/s)"}
	for _, writers := range cfg.WriterCounts {
		mbps, err := multiWriterRun(cfg, writers)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, Point{
			X: float64(writers), Y: mbps, Label: fmt.Sprintf("%d writers", writers)})
	}
	res.Series = append(res.Series, s)

	// Modeled series: the paper's 12-core machine parallelizes the
	// CPU-bound insert path until the 7,200 RPM disk saturates at ~75% of
	// its 120 MB/s peak. Project the measured single-writer rate through
	// that model so the figure's shape is visible even on hosts with fewer
	// cores than writers.
	const (
		paperCores = 12
		diskCapMBs = 0.75 * 120
	)
	perWriter := s.Points[0].Y
	model := Series{Name: fmt.Sprintf("modeled: %d cores, disk cap %.0f MB/s", paperCores, diskCapMBs)}
	for _, p := range s.Points {
		w := p.X
		concurrent := w
		if concurrent > paperCores {
			concurrent = paperCores
		}
		y := perWriter * concurrent
		if y > diskCapMBs {
			y = diskCapMBs
		}
		model.Points = append(model.Points, Point{X: p.X, Y: y, Label: p.Label})
	}
	res.Series = append(res.Series, model)

	first, last := s.Points[0].Y, s.Points[len(s.Points)-1].Y
	res.Notes = append(res.Notes,
		fmt.Sprintf("measured on GOMAXPROCS=%d: 1 writer %.1f MB/s, %d writers %.1f MB/s (%.1fx)",
			runtime.GOMAXPROCS(0), first, cfg.WriterCounts[len(cfg.WriterCounts)-1], last, last/first),
		"paper (12 cores, one spindle): rises from 37 MB/s to ~75% of the disk's peak at 32 writers;",
		"on hosts with fewer cores than writers the measured curve flattens or declines — the modeled series projects the paper's hardware")
	return res, nil
}

func multiWriterRun(cfg Fig4Config, writers int) (float64, error) {
	dir, err := scratchDir(cfg.Dir, "fig4")
	if err != nil {
		return 0, err
	}
	defer scratchRemove(dir)
	srv, err := server.New(server.Options{
		Root:                dir,
		MaintenanceInterval: 100 * time.Millisecond,
		Logf:                func(string, ...interface{}) {},
	})
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	go srv.Serve(lis)

	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(lis.Addr().String())
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			name := fmt.Sprintf("bench_%d", w)
			if err := c.CreateTable(name, benchSchema(), 0); err != nil {
				errCh <- err
				return
			}
			tab, err := c.OpenTable(name)
			if err != nil {
				errCh <- err
				return
			}
			rng := newXorshift(uint64(w) + 10)
			var written int64
			seq := int64(0)
			batch := make([]schema.Row, 0, cfg.RowsPerBatch)
			for written < cfg.BytesPerWriter {
				batch = batch[:0]
				for i := 0; i < cfg.RowsPerBatch; i++ {
					batch = append(batch, benchRow(rng, seq, seq, cfg.RowBytes))
					seq++
					written += int64(cfg.RowBytes)
				}
				if err := tab.InsertNow(batch); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return 0, err
	}
	elapsed := time.Since(start).Seconds()
	total := float64(writers) * float64(cfg.BytesPerWriter)
	return total / elapsed / 1e6, nil
}
