package ltbench

import (
	"container/heap"
	"fmt"

	"littletable/internal/diskmodel"
	"littletable/internal/iotrace"
	"littletable/internal/schema"
	"littletable/internal/tablet"
	"littletable/internal/vfs"
)

// Fig5Config scales the query-throughput-vs-tablets experiment. The paper
// fixes a 2 GB table of 128-byte rows and varies tablet count 1–128
// (§5.1.5); the default here scales the table to 32 MB, which preserves
// the per-tablet seek economics exactly (the modeled disk does not care
// how long the scan runs, only its access pattern).
type Fig5Config struct {
	TotalBytes   int64
	RowBytes     int
	TabletCounts []int
	Dir          string // working directory; empty = temp
}

func (c *Fig5Config) defaults() {
	if c.TotalBytes == 0 {
		// The paper uses 2 GB; 256 MB keeps every tablet larger than the
		// 1 MB readahead window at 128 tablets while running fast.
		c.TotalBytes = 256 << 20
	}
	if c.RowBytes == 0 {
		c.RowBytes = 128
	}
	if len(c.TabletCounts) == 0 {
		c.TabletCounts = []int{1, 2, 4, 8, 16, 32, 64, 128}
	}
}

// RunFig5 regenerates Figure 5: query throughput vs number of tablets,
// for 128 kB and 1 MB readahead, by merge-scanning the whole table and
// replaying the I/O trace through the §5.1.1 disk model.
func RunFig5(cfg Fig5Config) (*Result, error) {
	cfg.defaults()
	res := &Result{
		Figure: "Figure 5",
		Title:  "Query throughput vs. number of tablets (modeled disk)",
	}
	small := Series{Name: "128 kB readahead (MB/s)"}
	large := Series{Name: "1 MB readahead (MB/s)"}
	for _, count := range cfg.TabletCounts {
		dir := cfg.Dir
		if dir == "" {
			d, err := scratchDir("", "fig5")
			if err != nil {
				return nil, err
			}
			defer scratchRemove(d)
			dir = d
		}
		sub, err := scratchDir(dir, fmt.Sprintf("t%d-", count))
		if err != nil {
			return nil, err
		}
		rowsPer := int(cfg.TotalBytes) / cfg.RowBytes / count
		paths, err := buildTablets(sub, count, rowsPer, cfg.RowBytes, 0)
		if err != nil {
			return nil, err
		}
		trace, logical, err := tracedMergeScan(paths)
		if err != nil {
			return nil, err
		}
		sizes, err := fileSizes(paths)
		if err != nil {
			return nil, err
		}
		tagged := toTagged(trace)
		simSmall := diskmodel.Replay(diskmodel.Paper(), sizes, tagged)
		simLarge := diskmodel.Replay(diskmodel.Paper().WithReadahead(1<<20), sizes, tagged)
		small.Points = append(small.Points, Point{
			X: float64(count), Y: simSmall.ThroughputBytesPerSec(logical) / 1e6,
			Label: fmt.Sprintf("%d tablets", count),
		})
		large.Points = append(large.Points, Point{
			X: float64(count), Y: simLarge.ThroughputBytesPerSec(logical) / 1e6,
			Label: fmt.Sprintf("%d tablets", count),
		})
	}
	res.Series = append(res.Series, small, large)
	first := small.Points[0].Y
	lastSmall := small.Points[len(small.Points)-1].Y
	lastLarge := large.Points[len(large.Points)-1].Y
	res.Notes = append(res.Notes,
		fmt.Sprintf("single tablet runs near disk peak: %.0f MB/s", first),
		fmt.Sprintf("many tablets level off at %.0f MB/s (128 kB) vs %.0f MB/s (1 MB): larger readahead sustains ~%.1fx more",
			lastSmall, lastLarge, lastLarge/lastSmall),
		"paper: levels off at ~24 MB/s (128 kB, drive cache assisted) and ~40 MB/s (1 MB)")
	return res, nil
}

// tracedMergeScan opens every tablet through an I/O tracer and performs
// the engine's key-ordered merge scan (§3.2), returning the interleaved
// trace and the logical bytes of rows returned.
func tracedMergeScan(paths []string) ([]iotrace.TaggedAccess, int64, error) {
	multi := iotrace.NewMulti()
	tabs := make([]*tablet.Tablet, len(paths))
	for i, p := range paths {
		f, err := vfs.OsFS{}.Open(p)
		if err != nil {
			return nil, 0, err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, 0, err
		}
		tab, err := tablet.OpenFile(multi.Wrap(i, f), fi.Size())
		if err != nil {
			f.Close()
			return nil, 0, err
		}
		defer tab.Close()
		tabs[i] = tab
	}
	sc := tabs[0].Schema()
	// K-way merge over all tablet cursors, exactly the query path's shape.
	h := &scanHeap{sc: sc}
	for _, tab := range tabs {
		c := tab.Cursor(true)
		if c.Next() {
			heap.Push(h, scanItem{c: c, row: c.Row()})
		} else if err := c.Err(); err != nil {
			return nil, 0, err
		}
	}
	var logical int64
	for h.Len() > 0 {
		top := h.items[0]
		logical += int64(sc.EncodedRowSize(top.row))
		if top.c.Next() {
			h.items[0].row = top.c.Row()
			heap.Fix(h, 0)
		} else {
			if err := top.c.Err(); err != nil {
				return nil, 0, err
			}
			heap.Pop(h)
		}
	}
	return multi.Accesses(), logical, nil
}

func toTagged(in []iotrace.TaggedAccess) []diskmodel.Tagged {
	out := make([]diskmodel.Tagged, len(in))
	for i, a := range in {
		out[i] = diskmodel.Tagged{File: a.File, Offset: a.Offset, Len: a.Len}
	}
	return out
}

type scanItem struct {
	c   *tablet.Cursor
	row schema.Row
}

type scanHeap struct {
	sc    *schema.Schema
	items []scanItem
}

func (h *scanHeap) Len() int { return len(h.items) }
func (h *scanHeap) Less(i, j int) bool {
	return h.sc.CompareKeys(h.items[i].row, h.items[j].row) < 0
}
func (h *scanHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *scanHeap) Push(x interface{}) { h.items = append(h.items, x.(scanItem)) }
func (h *scanHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
