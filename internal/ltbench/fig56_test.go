package ltbench

import "testing"

func TestFig5Shape(t *testing.T) {
	// Tablets must stay larger than the readahead window for the figure's
	// regime (the paper's are 16 MB); 32 MB over ≤16 tablets keeps ≥2 MB.
	res, err := RunFig5(Fig5Config{
		TotalBytes:   32 << 20,
		TabletCounts: []int{1, 4, 16},
		Dir:          t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	small := res.Series[0].Points
	large := res.Series[1].Points
	// Monotone decline with tablet count.
	for i := 1; i < len(small); i++ {
		if small[i].Y > small[i-1].Y*1.05 {
			t.Errorf("128kB throughput rose with more tablets: %v", small)
		}
	}
	// Single tablet near peak (≥80 MB/s of the 120 peak).
	if small[0].Y < 80 {
		t.Errorf("single-tablet throughput %.1f MB/s too low", small[0].Y)
	}
	// Many tablets: far below peak, and 1MB readahead ≥1.5x the 128kB one.
	lastS, lastL := small[len(small)-1].Y, large[len(large)-1].Y
	if lastS > 60 {
		t.Errorf("16-tablet 128kB throughput %.1f MB/s did not level off", lastS)
	}
	if lastL < 1.4*lastS {
		t.Errorf("readahead gain %.2fx below Figure 5's ~1.7x", lastL/lastS)
	}
}

func TestFig6Shape(t *testing.T) {
	res, err := RunFig6(Fig6Config{
		TabletCounts: []int{1, 4, 8, 16},
		TabletBytes:  1 << 20,
		Dir:          t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Series[0].Points
	second := res.Series[1].Points
	// Latency grows with tablet count; first query costlier than second.
	for i := range first {
		if first[i].Y <= second[i].Y {
			t.Errorf("first query (%f ms) not above second (%f ms) at %v tablets",
				first[i].Y, second[i].Y, first[i].X)
		}
	}
	s1 := slopeMsPerTablet(first)
	s2 := slopeMsPerTablet(second)
	// Paper slopes: 30.3 and 8.3 ms/tablet (4 seeks vs 1). The model folds
	// the inode read into the first seek, so expect ~24 and ~8; accept
	// generous bands around the seek economics.
	if s1 < 16 || s1 > 40 {
		t.Errorf("first-query slope %.1f ms/tablet, want ≈24-32 (4ish seeks)", s1)
	}
	if s2 < 6 || s2 > 14 {
		t.Errorf("second-query slope %.1f ms/tablet, want ≈8 (1 seek)", s2)
	}
	if ratio := s1 / s2; ratio < 2 || ratio > 5 {
		t.Errorf("slope ratio %.1f, want ≈3-4", ratio)
	}
}
