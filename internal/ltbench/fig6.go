package ltbench

import (
	"fmt"

	"littletable/internal/diskmodel"
	"littletable/internal/iotrace"
	"littletable/internal/ltval"
	"littletable/internal/tablet"
	"littletable/internal/vfs"
)

// Fig6Config scales the first-row-latency experiment: queries for random
// keys over tables of 16 MB tablets, varying tablet count 1–32 via the
// query's timestamp bounds (§5.1.6). Caches are cleared before the first
// query; the second query hits cached footers and pays one block read per
// tablet.
type Fig6Config struct {
	TabletCounts []int
	RowBytes     int
	TabletBytes  int64
	Dir          string
}

func (c *Fig6Config) defaults() {
	if len(c.TabletCounts) == 0 {
		c.TabletCounts = []int{1, 2, 4, 8, 16, 24, 32}
	}
	if c.RowBytes == 0 {
		c.RowBytes = 128
	}
	if c.TabletBytes == 0 {
		// Scaled from the paper's 16 MB: seek counts per tablet (the
		// quantity measured) are size-independent.
		c.TabletBytes = 2 << 20
	}
}

// RunFig6 regenerates Figure 6: first-row latency vs tablet count, first
// query (cold: footer + block per tablet ≈ 4 seeks) and second query
// (footers cached: 1 seek per tablet), on the modeled disk.
func RunFig6(cfg Fig6Config) (*Result, error) {
	cfg.defaults()
	res := &Result{
		Figure: "Figure 6",
		Title:  "First-row latency vs. number of tablets (modeled disk)",
	}
	firstQ := Series{Name: "first query (ms)"}
	secondQ := Series{Name: "second query (ms)"}
	for _, count := range cfg.TabletCounts {
		dir := cfg.Dir
		if dir == "" {
			d, err := scratchDir("", "fig6")
			if err != nil {
				return nil, err
			}
			defer scratchRemove(d)
			dir = d
		}
		sub, err := scratchDir(dir, fmt.Sprintf("t%d-", count))
		if err != nil {
			return nil, err
		}
		rowsPer := int(cfg.TabletBytes) / cfg.RowBytes
		paths, err := buildTablets(sub, count, rowsPer, cfg.RowBytes, 0)
		if err != nil {
			return nil, err
		}
		sizes, err := fileSizes(paths)
		if err != nil {
			return nil, err
		}
		ms1, ms2, err := firstRowLatencies(paths, sizes, count, rowsPer)
		if err != nil {
			return nil, err
		}
		firstQ.Points = append(firstQ.Points, Point{
			X: float64(count), Y: ms1, Label: fmt.Sprintf("%d tablets", count)})
		secondQ.Points = append(secondQ.Points, Point{
			X: float64(count), Y: ms2, Label: fmt.Sprintf("%d tablets", count)})
	}
	res.Series = append(res.Series, firstQ, secondQ)
	s1 := slopeMsPerTablet(firstQ.Points)
	s2 := slopeMsPerTablet(secondQ.Points)
	res.Notes = append(res.Notes,
		fmt.Sprintf("first-query slope %.1f ms/tablet (paper: 30.3, ≈4 seeks)", s1),
		fmt.Sprintf("second-query slope %.1f ms/tablet (paper: 8.3, ≈1 seek)", s2),
		fmt.Sprintf("slope ratio %.1f (paper: ~3.7)", s1/s2))
	return res, nil
}

// firstRowLatencies runs the two-query protocol of §5.1.6 against count
// tablets and models both latencies.
func firstRowLatencies(paths []string, sizes []int64, count, rowsPer int) (firstMs, secondMs float64, err error) {
	multi := iotrace.NewMulti()
	rng := newXorshift(uint64(count) + 7)

	// First query: open every tablet cold (footer reads) and seek one
	// random key in each.
	tabs := make([]*tablet.Tablet, count)
	files := make([]vfs.File, count)
	defer func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}()
	seekAll := func(probeSeq int64) error {
		for _, tab := range tabs {
			c, err := tab.Seek(probeKey(probeSeq), true)
			if err != nil {
				return err
			}
			c.Next() // first matching row
		}
		return nil
	}
	for i, p := range paths {
		f, err := vfs.OsFS{}.Open(p)
		if err != nil {
			return 0, 0, err
		}
		files[i] = f
		fi, err := f.Stat()
		if err != nil {
			return 0, 0, err
		}
		tab, err := tablet.OpenFile(multi.Wrap(i, f), fi.Size())
		if err != nil {
			return 0, 0, err
		}
		tabs[i] = tab
	}
	totalRows := int64(count * rowsPer)
	if err := seekAll(int64(rng.next() % uint64(totalRows))); err != nil {
		return 0, 0, err
	}
	trace1 := multi.Accesses()
	sim1 := diskmodel.Replay(diskmodel.Paper(), sizes, toTagged(trace1))

	// Second query: footers cached (tablets stay open), different key.
	multi.Reset()
	if err := seekAll(int64(rng.next() % uint64(totalRows))); err != nil {
		return 0, 0, err
	}
	trace2 := multi.Accesses()
	sim2 := diskmodel.Replay(diskmodel.Paper(), sizes, toTagged(trace2))
	for _, tab := range tabs {
		tab.Close()
		// files closed by the deferred loop; Close on tablet closes the
		// tracer which closes the file, so nil them out.
	}
	for i := range files {
		files[i] = nil
	}
	return sim1.Seconds() * 1000, sim2.Seconds() * 1000, nil
}

// probeKey builds a full key for row sequence seq, matching benchRow's key
// derivation.
func probeKey(seq int64) []ltval.Value {
	return []ltval.Value{
		ltval.NewInt64(seq >> 40),
		ltval.NewInt64(seq >> 30 & 0x3ff),
		ltval.NewInt64(seq >> 20 & 0x3ff),
		ltval.NewInt64(seq >> 10 & 0x3ff),
		ltval.NewInt64(seq & 0x3ff),
	}
}

// slopeMsPerTablet fits y = a + b·x by least squares and returns b.
func slopeMsPerTablet(pts []Point) float64 {
	n := float64(len(pts))
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		sx += p.X
		sy += p.Y
		sxx += p.X * p.X
		sxy += p.X * p.Y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
