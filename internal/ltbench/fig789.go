package ltbench

import (
	"fmt"
	"math/rand"

	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/prodsim"
	"littletable/internal/schema"
)

// RunFig7 regenerates Figure 7: the CDFs of LittleTable and PostgreSQL
// sizes across the production fleet, from the calibrated synthesizer.
func RunFig7(shards int, seed int64) *Result {
	ss := prodsim.Shards(shards, seed)
	lt := make([]float64, len(ss))
	pg := make([]float64, len(ss))
	var ltTotal, pgTotal float64
	for i, s := range ss {
		lt[i] = float64(s.LittleTableBytes)
		pg[i] = float64(s.PostgresBytes)
		ltTotal += lt[i]
		pgTotal += pg[i]
	}
	res := &Result{
		Figure: "Figure 7",
		Title:  "Distribution of PostgreSQL and LittleTable sizes in production (synthesized fleet)",
	}
	res.Series = append(res.Series,
		cdfSeries("LittleTable size (TB) at cumulative fraction", lt, 1e12),
		cdfSeries("PostgreSQL size (GB) at cumulative fraction", pg, 1e9))
	res.Notes = append(res.Notes,
		fmt.Sprintf("totals: %.0f TB LittleTable, %.1f TB PostgreSQL (paper: 320 / 14)", ltTotal/1e12, pgTotal/1e12),
		fmt.Sprintf("maxima: %.1f TB / %.0f GB (paper: 6.7 TB / 341 GB)",
			prodsim.Quantile(lt, 1)/1e12, prodsim.Quantile(pg, 1)/1e9))
	return res
}

// RunFig8 regenerates Figure 8: CDFs of per-table key and value sizes.
func RunFig8(tables int, seed int64) *Result {
	ts := prodsim.Tables(tables, seed)
	keys := make([]float64, len(ts))
	vals := make([]float64, len(ts))
	for i, t := range ts {
		keys[i] = float64(t.KeyBytes)
		vals[i] = float64(t.ValueBytes)
	}
	res := &Result{
		Figure: "Figure 8",
		Title:  "Distribution of key and value sizes per table (synthesized catalog)",
	}
	res.Series = append(res.Series,
		cdfSeries("key size (B) at cumulative fraction", keys, 1),
		cdfSeries("value size (B) at cumulative fraction", vals, 1))
	res.Notes = append(res.Notes,
		fmt.Sprintf("median key %.0f B (paper: 45), max %.0f (paper: <128)",
			prodsim.Quantile(keys, 0.5), prodsim.Quantile(keys, 1)),
		fmt.Sprintf("median value %.0f B (paper: 61), max %.0f kB (paper: 75)",
			prodsim.Quantile(vals, 0.5), prodsim.Quantile(vals, 1)/1024))
	return res
}

// RunFig10 regenerates Figure 10: CDFs of query lookback and table TTL.
func RunFig10(samples int, seed int64) *Result {
	rng := rand.New(rand.NewSource(seed))
	look := make([]float64, samples)
	for i := range look {
		look[i] = float64(prodsim.LookbackSample(rng)) / float64(clock.Day)
	}
	ts := prodsim.Tables(prodsim.TablesPerShard, seed)
	ttls := make([]float64, len(ts))
	for i, t := range ts {
		ttls[i] = float64(t.TTL) / float64(clock.Day)
	}
	res := &Result{
		Figure: "Figure 10",
		Title:  "Query lookback and row TTL distributions (synthesized workload)",
	}
	res.Series = append(res.Series,
		cdfSeries("query lookback (days) at cumulative fraction", look, 1),
		cdfSeries("row TTL (days) at cumulative fraction", ttls, 1))
	withinWeek := 0
	for _, l := range look {
		if l <= 7 {
			withinWeek++
		}
	}
	yearPlus := 0
	for _, t := range ttls {
		if t >= 365 {
			yearPlus++
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("%.0f%% of queries look back ≤1 week (paper: >90%%)",
			100*float64(withinWeek)/float64(len(look))),
		fmt.Sprintf("%.0f%% of tables retain ≥1 year (paper: most)",
			100*float64(yearPlus)/float64(len(ttls))))
	return res
}

// cdfSeries renders a CDF at decile fractions.
func cdfSeries(name string, values []float64, scale float64) Series {
	s := Series{Name: name}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0} {
		s.Points = append(s.Points, Point{
			X: q, Y: prodsim.Quantile(values, q) / scale,
			Label: fmt.Sprintf("p%02.0f", q*100),
		})
	}
	return s
}

// Fig9Config scales the scan-efficiency measurement: real tables, a
// Dashboard-like query mix, measured rows scanned / rows returned per
// table (§5.2.4).
type Fig9Config struct {
	Tables   int
	Networks int64
	Devices  int64 // per network
	Samples  int64 // per device
	Queries  int
	Seed     int64
	Dir      string
}

func (c *Fig9Config) defaults() {
	if c.Tables == 0 {
		c.Tables = 12
	}
	if c.Networks == 0 {
		c.Networks = 4
	}
	if c.Devices == 0 {
		c.Devices = 8
	}
	if c.Samples == 0 {
		c.Samples = 400
	}
	if c.Queries == 0 {
		c.Queries = 120
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RunFig9 regenerates Figure 9: the CDF across tables of the average ratio
// of rows scanned to rows returned — measured against real tables whose
// layout and query mix mirror Dashboard's. Most queries are clustered
// rectangles (ratio near 1); a minority are latest-row-for-prefix lookups
// that scan many rows (the paper's heavy tail).
func RunFig9(cfg Fig9Config) (*Result, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	dir, err := scratchDir(cfg.Dir, "fig9")
	if err != nil {
		return nil, err
	}
	defer scratchRemove(dir)

	clk := clock.NewFake(1_782_018_420 * clock.Second)
	ratios := make([]float64, 0, cfg.Tables)
	for ti := 0; ti < cfg.Tables; ti++ {
		tab, err := core.CreateTable(dir, fmt.Sprintf("t%d", ti), usageLikeSchema(), 0,
			core.Options{Clock: clk})
		if err != nil {
			return nil, err
		}
		now := clk.Now()
		// Populate: per device, Samples rows one minute apart.
		for n := int64(0); n < cfg.Networks; n++ {
			for d := int64(0); d < cfg.Devices; d++ {
				rows := make([]schema.Row, 0, cfg.Samples)
				for s := int64(0); s < cfg.Samples; s++ {
					rows = append(rows, schema.Row{
						ltval.NewInt64(n), ltval.NewInt64(d),
						ltval.NewTimestamp(now - s*clock.Minute),
						ltval.NewDouble(float64(s)),
					})
				}
				if err := tab.Insert(rows); err != nil {
					tab.Close()
					return nil, err
				}
			}
		}
		if err := tab.FlushAll(); err != nil {
			tab.Close()
			return nil, err
		}
		// Query mix: mostly clustered rectangles with realistic lookbacks,
		// a few latest-row probes with short prefixes (the tail).
		for q := 0; q < cfg.Queries; q++ {
			u := rng.Float64()
			switch {
			case u < 0.55: // device graph over a lookback
				lb := prodsim.LookbackSample(rng)
				qq := core.NewQuery()
				n, d := rng.Int63n(cfg.Networks), rng.Int63n(cfg.Devices)
				qq.Lower = []ltval.Value{ltval.NewInt64(n), ltval.NewInt64(d)}
				qq.Upper = qq.Lower
				qq.MinTs, qq.MaxTs = now-lb, now
				if _, err := tab.QueryAll(qq); err != nil {
					tab.Close()
					return nil, err
				}
			case u < 0.92: // network graph over a lookback
				lb := prodsim.LookbackSample(rng)
				qq := core.NewQuery()
				n := rng.Int63n(cfg.Networks)
				qq.Lower = []ltval.Value{ltval.NewInt64(n)}
				qq.Upper = qq.Lower
				qq.MinTs, qq.MaxTs = now-lb, now
				if _, err := tab.QueryAll(qq); err != nil {
					tab.Close()
					return nil, err
				}
			default: // latest row for a short prefix: the inefficient case
				n := rng.Int63n(cfg.Networks)
				if _, _, err := tab.LatestRow([]ltval.Value{ltval.NewInt64(n)}); err != nil {
					tab.Close()
					return nil, err
				}
			}
		}
		s := tab.Stats().Snapshot()
		if s.RowsReturned > 0 {
			ratios = append(ratios, s.ScanRatio())
		}
		tab.Close()
	}
	res := &Result{
		Figure: "Figure 9",
		Title:  "Rows scanned / rows returned per table (measured on real tables)",
	}
	res.Series = append(res.Series, cdfSeries("scan ratio at cumulative fraction", ratios, 1))
	mean := 0.0
	for _, r := range ratios {
		mean += r
	}
	mean /= float64(len(ratios))
	res.Notes = append(res.Notes,
		fmt.Sprintf("mean ratio %.2f (paper: 1.4); p80 %.2f (paper: ≤3.3)",
			mean, prodsim.Quantile(ratios, 0.8)))
	return res, nil
}

func usageLikeSchema() *schema.Schema {
	return schema.MustNew([]schema.Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "device", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "value", Type: ltval.Double},
	}, []string{"network", "device", "ts"})
}
