package ltbench

import (
	"fmt"
	"math"
	"time"

	"littletable/internal/diskmodel"
	"littletable/internal/iotrace"
	"littletable/internal/tablet"
	"littletable/internal/vfs"
)

// RunHeadline regenerates the paper's headline numbers (§1, §2.3):
//
//   - first matching row from an uncached table in 31 ms (≈4 seeks at
//     8 ms on the modeled disk);
//   - 500,000 rows/second scan throughput thereafter for 128-byte rows,
//     about 50% of the disk's 120 MB/s peak. On the paper's 2013 Xeon that
//     rate was CPU-bound; here the disk-bound ceiling comes from the model
//     and the CPU-bound ceiling from the host, and the effective rate is
//     the minimum of the two;
//   - 512-row insert batches at 42% of the disk's peak write throughput,
//     measured through the full wire path.
func RunHeadline(dir string) (*Result, error) {
	if dir == "" {
		d, err := scratchDir("", "headline")
		if err != nil {
			return nil, err
		}
		defer scratchRemove(d)
		dir = d
	}
	res := &Result{
		Figure: "Headline",
		Title:  "First-row latency, scan rate, and insert efficiency",
	}
	d := diskmodel.Paper()

	// One 16 MB tablet of 128-byte rows, like the paper's query setup.
	const rowBytes = 128
	rowsPer := (16 << 20) / rowBytes
	paths, err := buildTablets(dir, 1, rowsPer, rowBytes, 0)
	if err != nil {
		return nil, err
	}
	sizes, err := fileSizes(paths)
	if err != nil {
		return nil, err
	}

	// First-row latency: cold open (footer) + one block read, modeled.
	f, err := vfs.OsFS{}.Open(paths[0])
	if err != nil {
		return nil, err
	}
	tracer := iotrace.New(f)
	tab, err := tablet.OpenFile(tracer, sizes[0])
	if err != nil {
		f.Close()
		return nil, err
	}
	defer tab.Close()
	probe := probeKey(int64(rowsPer / 3))
	c, err := tab.Seek(probe, true)
	if err != nil {
		return nil, err
	}
	c.Next()
	sim := diskmodel.NewSim(d, sizes)
	for _, a := range tracer.Accesses() {
		sim.Read(0, a.Offset, a.Len)
	}
	firstRowMs := sim.Seconds() * 1000

	// Scan: disk-bound ceiling from the model, CPU-bound ceiling from the
	// host, effective = min.
	tracer.Reset()
	full := tab.Cursor(true)
	hostStart := time.Now()
	n := 0
	for full.Next() {
		n++
	}
	hostSecs := time.Since(hostStart).Seconds()
	if err := full.Err(); err != nil {
		return nil, err
	}
	sim2 := diskmodel.NewSim(d, sizes)
	for _, a := range tracer.Accesses() {
		sim2.Read(0, a.Offset, a.Len)
	}
	logical := int64(n * rowBytes)
	diskRowsPerSec := float64(n) / sim2.Seconds()
	diskMBps := sim2.ThroughputBytesPerSec(logical) / 1e6
	cpuRowsPerSec := float64(n) / hostSecs
	effRowsPerSec := math.Min(diskRowsPerSec, cpuRowsPerSec)

	// Insert: the paper's common case, 512-row batches of 128 B rows,
	// through the full client/TCP/server path; efficiency against the
	// modeled disk's peak write rate.
	insMBps, err := insertRun(Fig2Config{BytesPerRun: 16 << 20, Dir: dir}, rowBytes, 512)
	if err != nil {
		return nil, err
	}
	insFrac := insMBps * 1e6 / d.Throughput

	res.Series = append(res.Series, Series{
		Name: "headline metrics",
		Points: []Point{
			{Label: "first-row latency (ms, modeled)", Y: firstRowMs},
			{Label: "scan ceiling (rows/s, modeled disk)", Y: diskRowsPerSec},
			{Label: "scan ceiling (rows/s, host CPU)", Y: cpuRowsPerSec},
			{Label: "scan rate (rows/s, effective)", Y: effRowsPerSec},
			{Label: "scan throughput (MB/s, modeled disk)", Y: diskMBps},
			{Label: "insert, 512-row batches (MB/s, measured)", Y: insMBps},
			{Label: "insert fraction of modeled disk peak", Y: insFrac},
		},
	})
	res.Notes = append(res.Notes,
		fmt.Sprintf("paper: 31 ms first row — modeled %.0f ms (≈4 seeks × 8 ms)", firstRowMs),
		fmt.Sprintf("paper: 500k rows/s ≈ 50%% of peak, CPU-bound on a 2013 Xeon — here disk ceiling %.0fk rows/s (%.0f%% of peak), host CPU ceiling %.0fk rows/s",
			diskRowsPerSec/1000, 100*diskMBps/120, cpuRowsPerSec/1000),
		fmt.Sprintf("paper: inserts at 42%% of disk peak — measured %.1f MB/s = %.0f%% of the modeled 120 MB/s (host CPU differs from the paper's)",
			insMBps, 100*insFrac))
	return res, nil
}
