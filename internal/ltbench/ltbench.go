// Package ltbench regenerates every table and figure from the paper's
// evaluation (§5). Each figure has a Run function returning structured
// series; cmd/ltbench prints them and bench_test.go wraps them in
// testing.B benchmarks. Figures measuring disk economics (5, 6, and the
// first-row headline) replay the engine's real I/O traces through
// internal/diskmodel's §5.1.1 hardware; throughput figures (2, 3, 4)
// measure the real engine on the host and report the modeled disk
// baseline alongside.
package ltbench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"littletable/internal/ltval"
	"littletable/internal/schema"
	"littletable/internal/tablet"
	"littletable/internal/vfs"
)

// Point is one (x, y) sample of a figure's series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// Label annotates the x value ("64 kB", "8 tablets").
	Label string `json:"label,omitempty"`
}

// Series is one line of a figure.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Result is one figure's regenerated data.
type Result struct {
	Figure string   `json:"figure"`
	Title  string   `json:"title"`
	Series []Series `json:"series"`
	// Notes carry shape observations (crossovers, level-offs, slopes).
	Notes []string `json:"notes,omitempty"`
}

// FprintJSON renders a Result as indented JSON, for plotting pipelines.
func (r *Result) FprintJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Fprint renders a Result as aligned text.
func (r *Result) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.Figure, r.Title)
	for _, s := range r.Series {
		fmt.Fprintf(w, "-- %s\n", s.Name)
		for _, p := range s.Points {
			label := p.Label
			if label == "" {
				label = fmt.Sprintf("%g", p.X)
			}
			fmt.Fprintf(w, "  %-16s %14.3f\n", label, p.Y)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// Print renders to stdout.
func (r *Result) Print() { r.Fprint(os.Stdout) }

// benchSchema is the microbenchmark schema: §5.1.2 fixes six key columns
// "to keep the amount of work for performing key comparisons constant"
// plus one blob value column whose size sets the row size.
func benchSchema() *schema.Schema {
	return schema.MustNew([]schema.Column{
		{Name: "k1", Type: ltval.Int64},
		{Name: "k2", Type: ltval.Int64},
		{Name: "k3", Type: ltval.Int64},
		{Name: "k4", Type: ltval.Int64},
		{Name: "k5", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "payload", Type: ltval.Blob},
	}, []string{"k1", "k2", "k3", "k4", "k5", "ts"})
}

// keyOverheadBytes is the encoded size of the six key columns.
const keyOverheadBytes = 6 * 8

// benchRow builds a row of approximately rowBytes total encoded size with
// xorshift-random payload (incompressible, as §5.1.1 requires: random data
// "effectively disabling LittleTable's LZO compression").
func benchRow(rng *xorshift, seq int64, ts int64, rowBytes int) schema.Row {
	payloadLen := rowBytes - keyOverheadBytes - 2 // 2 ≈ varint length prefix
	if payloadLen < 0 {
		payloadLen = 0
	}
	payload := make([]byte, payloadLen)
	for i := 0; i+8 <= len(payload); i += 8 {
		v := rng.next()
		for j := 0; j < 8; j++ {
			payload[i+j] = byte(v >> (8 * j))
		}
	}
	return schema.Row{
		ltval.NewInt64(seq >> 40),
		ltval.NewInt64(seq >> 30 & 0x3ff),
		ltval.NewInt64(seq >> 20 & 0x3ff),
		ltval.NewInt64(seq >> 10 & 0x3ff),
		ltval.NewInt64(seq & 0x3ff),
		ltval.NewTimestamp(ts),
		ltval.NewBlob(payload),
	}
}

// xorshift is the pseudorandom generator the paper's benchmarks use
// (§5.1.1).
type xorshift struct{ s uint64 }

func newXorshift(seed uint64) *xorshift {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &xorshift{s: seed}
}

func (x *xorshift) next() uint64 {
	x.s ^= x.s >> 12
	x.s ^= x.s << 25
	x.s ^= x.s >> 27
	return x.s * 2685821657736338717
}

// buildTablets writes `count` on-disk tablets of `rowsPer` rows each with
// the given row size into dir and returns their paths. Keys are assigned
// round-robin across tablets — tablet t holds keys t, t+count, t+2·count…
// — because that is what time-partitioned tablets look like to a key-
// ordered scan: every tablet covers the whole key space, so a merge scan
// alternates between them. That alternation is the seek pressure Figures
// 5 and 6 measure.
func buildTablets(dir string, count, rowsPer, rowBytes int, startTs int64) ([]string, error) {
	rng := newXorshift(1)
	paths := make([]string, 0, count)
	for t := 0; t < count; t++ {
		path := filepath.Join(dir, fmt.Sprintf("bench-%04d.tab", t))
		// Compression disabled: §5.1.1 fills rows from a xorshift generator
		// "effectively disabling LittleTable's LZO compression"; the fixed
		// low-valued key columns would otherwise compress and let modeled
		// logical throughput exceed the disk's physical rate.
		w, err := tablet.Create(path, benchSchema(), tablet.WriterOptions{DisableCompression: true})
		if err != nil {
			return nil, err
		}
		for i := 0; i < rowsPer; i++ {
			seq := int64(i*count + t)
			ts := startTs + seq
			if err := w.Append(benchRow(rng, seq, ts, rowBytes)); err != nil {
				_ = w.Abort() // best-effort cleanup; the Append error wins
				return nil, err
			}
		}
		if _, err := w.Close(); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// fileSizes stats the given paths.
func fileSizes(paths []string) ([]int64, error) {
	out := make([]int64, len(paths))
	for i, p := range paths {
		fi, err := vfs.OsFS{}.Stat(p)
		if err != nil {
			return nil, err
		}
		out[i] = fi.Size()
	}
	return out, nil
}
