package ltbench

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/schema"
	"littletable/internal/vfs"
)

// MaintainConfig sizes the concurrent-maintenance experiment.
type MaintainConfig struct {
	// Periods is how many disjoint, merge-eligible time periods the table
	// starts with; default 8. Period-disjointness is what lets merges run
	// in parallel, so this is the available parallelism.
	Periods int
	// TabletsPerPeriod tablets per period await merging; default 6.
	TabletsPerPeriod int
	// RowsPerTablet rows of RowBytes each per tablet; defaults 400 × 256 B.
	RowsPerTablet int
	RowBytes      int
	// WorkerCounts are the x values; default {1, 2, 8}.
	WorkerCounts []int
	// ReadDelay/WriteDelay model the §5.1.1 drive's per-operation seek
	// cost, and WriteBytesPerSec its sequential transfer rate, injected
	// via vfs.LatencyFS. Defaults 500 µs / 500 µs / 8 MB/s — heavy enough
	// that each merge's cost is dominated by modeled device time, which
	// parallel workers overlap, rather than host CPU, which they contend
	// for.
	ReadDelay        time.Duration
	WriteDelay       time.Duration
	WriteBytesPerSec int64
	// IOBytesPerSec, when nonzero, also applies the engine's maintenance
	// I/O budget (-maintenance-io-bytes-per-sec) on top of the modeled
	// disk; default 0 (unlimited).
	IOBytesPerSec int64
	// ForegroundRows is how many timed single-row inserts run alongside
	// maintenance (and again quiescent, for the baseline); default 2000.
	ForegroundRows int
	Dir            string // temp-dir parent; "" = system default
}

func (c *MaintainConfig) defaults() {
	if c.Periods == 0 {
		c.Periods = 8
	}
	if c.TabletsPerPeriod == 0 {
		c.TabletsPerPeriod = 6
	}
	if c.RowsPerTablet == 0 {
		c.RowsPerTablet = 600
	}
	if c.RowBytes == 0 {
		c.RowBytes = 256
	}
	if len(c.WorkerCounts) == 0 {
		c.WorkerCounts = []int{1, 2, 8}
	}
	if c.ReadDelay == 0 {
		c.ReadDelay = 500 * time.Microsecond
	}
	if c.WriteDelay == 0 {
		c.WriteDelay = 500 * time.Microsecond
	}
	if c.WriteBytesPerSec == 0 {
		c.WriteBytesPerSec = 8 << 20
	}
	if c.ForegroundRows == 0 {
		c.ForegroundRows = 2000
	}
}

// RunMaintain measures the background maintenance scheduler: a table with
// Periods disjoint merge-eligible periods converges to its merged steady
// state under 1, 2, … workers, every merge byte paying a modeled device
// latency (vfs.LatencyFS). Because the merge policy never crosses periods,
// distinct periods' merges share no inputs — convergence time should fall
// roughly with the worker count until it hits the period count or the
// device. A foreground inserter runs throughout and its p99 latency is
// compared against the same inserter on the quiescent (fully merged)
// table: background maintenance must not starve the write path.
func RunMaintain(cfg MaintainConfig) (*Result, error) {
	cfg.defaults()
	res := &Result{
		Figure: "maintain",
		Title:  "concurrent maintenance: convergence time and insert p99 vs merge workers",
	}
	conv := Series{Name: "maintenance convergence (s)"}
	p99 := Series{Name: "insert p99 during maintenance (µs)"}
	quiet := Series{Name: "insert p99 quiescent (µs)"}
	var t1 float64
	var bestSpeedup float64
	var bestAt int
	var worstRatio float64
	for _, workers := range cfg.WorkerCounts {
		m, err := runMaintainOnce(cfg, workers)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d workers", workers)
		conv.Points = append(conv.Points, Point{X: float64(workers), Y: m.convergeSec, Label: label})
		p99.Points = append(p99.Points, Point{X: float64(workers), Y: m.busyP99us, Label: label})
		quiet.Points = append(quiet.Points, Point{X: float64(workers), Y: m.quietP99us, Label: label})
		if workers == cfg.WorkerCounts[0] {
			t1 = m.convergeSec
		}
		if s := t1 / m.convergeSec; s > bestSpeedup {
			bestSpeedup, bestAt = s, workers
		}
		if m.quietP99us > 0 {
			if r := m.busyP99us / m.quietP99us; r > worstRatio {
				worstRatio = r
			}
		}
	}
	res.Series = []Series{conv, p99, quiet}
	res.Notes = append(res.Notes,
		fmt.Sprintf("period-disjoint merges parallelize: convergence %.1fx faster at %d workers than at %d (modeled-latency disk, %d periods × %d tablets)",
			bestSpeedup, bestAt, cfg.WorkerCounts[0], cfg.Periods, cfg.TabletsPerPeriod),
		fmt.Sprintf("foreground inserts stay responsive: worst p99 during maintenance is %.2fx the quiescent p99", worstRatio))
	return res, nil
}

type maintainMeasure struct {
	convergeSec float64
	busyP99us   float64
	quietP99us  float64
}

// runMaintainOnce builds the backlog on a fast disk, reopens on the
// modeled-latency disk with the given worker count, and times convergence
// with a foreground inserter sampling insert latency throughout.
func runMaintainOnce(cfg MaintainConfig, workers int) (maintainMeasure, error) {
	var m maintainMeasure
	dir, err := scratchDir(cfg.Dir, "maintain")
	if err != nil {
		return m, err
	}
	defer scratchRemove(dir)

	// Build phase, full speed: TabletsPerPeriod flushed tablets in each of
	// Periods distinct weeks, all several weeks old so the §3.4.2 rollover
	// delay is long past and every period is claimable at once.
	clk := clock.NewFake(1_782_018_420 * clock.Second)
	start := clk.Now()
	tab, err := core.CreateTable(dir, "bench", benchSchema(), 0, core.Options{
		Clock:      clk,
		FlushSize:  1 << 30, // flush only via FlushAll: one tablet per call
		MergeDelay: 365 * clock.Day,
	})
	if err != nil {
		return m, err
	}
	rng := newXorshift(7)
	seq := int64(0)
	for p := 0; p < cfg.Periods; p++ {
		base := start - int64(4+p)*clock.Week
		for b := 0; b < cfg.TabletsPerPeriod; b++ {
			batch := make([]schema.Row, 0, cfg.RowsPerTablet)
			for i := 0; i < cfg.RowsPerTablet; i++ {
				batch = append(batch, benchRow(rng, seq, base+int64(b*cfg.RowsPerTablet+i), cfg.RowBytes))
				seq++
			}
			if err := tab.Insert(batch); err != nil {
				tab.Close()
				return m, err
			}
			if err := tab.FlushAll(); err != nil {
				tab.Close()
				return m, err
			}
		}
	}
	if err := tab.Close(); err != nil {
		return m, err
	}

	// Measurement phase: modeled-latency disk, MergeDelay cleared by a
	// clock jump, `workers` background workers (0 would drain serially
	// inline). Foreground inserts go to memory only (huge FlushSize), so
	// their latency isolates write-path contention with maintenance —
	// shared locks and descriptor commits — not flush I/O.
	slow := vfs.LatencyFS{
		FS:               vfs.OsFS{},
		ReadDelay:        cfg.ReadDelay,
		WriteDelay:       cfg.WriteDelay,
		WriteBytesPerSec: cfg.WriteBytesPerSec,
	}
	tab, err = core.OpenTable(dir, "bench", core.Options{
		Clock:                    clk,
		FS:                       slow,
		FlushSize:                1 << 30,
		MergeDelay:               1 * clock.Second,
		MergeWorkers:             workers,
		MaintenanceIOBytesPerSec: cfg.IOBytesPerSec,
	})
	if err != nil {
		return m, err
	}
	defer tab.Close()
	clk.Advance(2 * clock.Second)

	insertLoop := func(stop *atomic.Bool, bound int, tsBase int64) ([]time.Duration, error) {
		rng := newXorshift(uint64(workers)*97 + 13)
		capHint := bound
		if capHint > 1<<14 {
			capHint = 1 << 14
		}
		lat := make([]time.Duration, 0, capHint)
		for i := 0; i < bound && !stop.Load(); i++ {
			row := benchRow(rng, seq, tsBase+int64(i), cfg.RowBytes)
			seq++
			t0 := time.Now()
			if err := tab.Insert([]schema.Row{row}); err != nil {
				return nil, err
			}
			lat = append(lat, time.Since(t0))
			time.Sleep(50 * time.Microsecond)
		}
		return lat, nil
	}

	var stop atomic.Bool
	type insRes struct {
		lat []time.Duration
		err error
	}
	ch := make(chan insRes, 1)
	go func() {
		lat, err := insertLoop(&stop, 1<<30, start)
		ch <- insRes{lat, err}
	}()
	t0 := time.Now()
	err = tab.MaintainUntilQuiet()
	m.convergeSec = time.Since(t0).Seconds()
	stop.Store(true)
	ins := <-ch
	if err != nil {
		return m, err
	}
	if ins.err != nil {
		return m, ins.err
	}
	m.busyP99us = p99us(ins.lat)

	// Quiescent baseline: same inserter, merged table, no maintenance.
	quietLat, err := insertLoop(new(atomic.Bool), cfg.ForegroundRows, start+1<<20)
	if err != nil {
		return m, err
	}
	m.quietP99us = p99us(quietLat)
	return m, nil
}

// p99us returns the 99th-percentile latency in microseconds.
func p99us(lat []time.Duration) float64 {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := len(lat) * 99 / 100
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	return float64(lat[idx]) / float64(time.Microsecond)
}
