package ltbench

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"littletable/internal/client"
	"littletable/internal/netfault"
	"littletable/internal/schema"
	"littletable/internal/server"
)

// NetloadConfig sizes the resilient-wire experiment: concurrent inserters
// sharing ONE pooled client (the PR 6 wire layer), on a clean link and on
// a lossy one fronted by the netfault proxy.
type NetloadConfig struct {
	// Rows is the total rows per measurement; default 8000.
	Rows int
	// BatchRows is the rows per InsertNow call; default 32.
	BatchRows int
	// RowBytes approximates the encoded row size; default 128.
	RowBytes int
	// Inserters is the goroutines sharing the client; default 4.
	Inserters int
	// PoolSizes are the x values; default {1, 2, 4, 8}.
	PoolSizes []int
	// DropRate is the lossy series' per-chunk drop probability; default 2%.
	DropRate float64
	// Seed drives the fault schedule; default 1.
	Seed int64
	Dir  string // temp-dir parent; "" = system default
}

func (c *NetloadConfig) defaults() {
	if c.Rows == 0 {
		c.Rows = 8000
	}
	if c.BatchRows == 0 {
		c.BatchRows = 32
	}
	if c.RowBytes == 0 {
		c.RowBytes = 128
	}
	if c.Inserters == 0 {
		c.Inserters = 4
	}
	if len(c.PoolSizes) == 0 {
		c.PoolSizes = []int{1, 2, 4, 8}
	}
	if c.DropRate == 0 {
		c.DropRate = 0.02
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// RunNetload measures acked-insert goodput through the pooled wire client
// as the pool widens, on a clean link and through a link that drops 2% of
// chunks. The lossy series is the point of the experiment: the client's
// health-checked reconnects and bounded retries turn connection loss into
// latency rather than data loss, so goodput degrades smoothly and every
// row counted was acknowledged end-to-end.
func RunNetload(cfg NetloadConfig) (*Result, error) {
	cfg.defaults()
	res := &Result{
		Figure: "netload",
		Title:  "resilient wire layer: acked-insert goodput vs pool size",
	}
	clean := Series{Name: "clean link (rows/s)"}
	lossy := Series{Name: fmt.Sprintf("%.0f%% chunk drops (rows/s)", cfg.DropRate*100)}
	var retries, reconnects int64
	for _, pool := range cfg.PoolSizes {
		label := fmt.Sprintf("pool %d", pool)
		rc, _, _, err := runNetloadOnce(cfg, pool, false)
		if err != nil {
			return nil, err
		}
		clean.Points = append(clean.Points, Point{X: float64(pool), Y: rc, Label: label})
		rl, rt, rec, err := runNetloadOnce(cfg, pool, true)
		if err != nil {
			return nil, err
		}
		retries += rt
		reconnects += rec
		lossy.Points = append(lossy.Points, Point{X: float64(pool), Y: rl, Label: label})
	}
	res.Series = []Series{clean, lossy}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d inserters share one pooled client; every counted row was acknowledged end-to-end; the lossy series survived %d retries and %d reconnects (seed %d) with zero acked-row loss",
		cfg.Inserters, retries, reconnects, cfg.Seed))
	return res, nil
}

// runNetloadOnce pushes cfg.Rows through one pooled client and returns
// acked rows per second plus the client's retry/reconnect counts.
func runNetloadOnce(cfg NetloadConfig, pool int, faulty bool) (rowsPerSec float64, retries, reconnects int64, err error) {
	dir, err := scratchDir(cfg.Dir, "netload")
	if err != nil {
		return 0, 0, 0, err
	}
	defer scratchRemove(dir)
	srv, err := server.New(server.Options{
		Root:                dir,
		MaintenanceInterval: 100 * time.Millisecond,
		Logf:                func(string, ...interface{}) {},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer srv.Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, 0, err
	}
	go srv.Serve(lis)

	addr := lis.Addr().String()
	if faulty {
		p, perr := netfault.New(addr, netfault.Config{Seed: cfg.Seed, DropRate: cfg.DropRate})
		if perr != nil {
			return 0, 0, 0, perr
		}
		defer p.Close()
		addr = p.Addr()
	}
	c, err := client.DialContext(context.Background(), addr, client.Options{
		PoolSize:       pool,
		DialTimeout:    5 * time.Second,
		MaxRetries:     8,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  20 * time.Millisecond,
		JitterSeed:     cfg.Seed,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer c.Close()
	if err := c.CreateTable("bench", benchSchema(), 0); err != nil {
		return 0, 0, 0, err
	}
	tab, err := c.OpenTable("bench")
	if err != nil {
		return 0, 0, 0, err
	}

	perIns := cfg.Rows / cfg.Inserters
	var acked int64
	var mu sync.Mutex
	errCh := make(chan error, cfg.Inserters)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Inserters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := newXorshift(uint64(w) + 33)
			batch := make([]schema.Row, 0, cfg.BatchRows)
			for done := 0; done < perIns; {
				n := cfg.BatchRows
				if n > perIns-done {
					n = perIns - done
				}
				batch = batch[:0]
				for i := 0; i < n; i++ {
					seq := int64(w*perIns + done + i)
					batch = append(batch, benchRow(rng, seq, seq, cfg.RowBytes))
				}
				err := tab.InsertNow(batch)
				if err == nil {
					mu.Lock()
					acked += int64(n)
					mu.Unlock()
				} else if !errors.Is(err, client.ErrDisconnected) && !errors.Is(err, client.ErrOverloaded) {
					// Faults surface typed; anything else is a bug.
					errCh <- err
					return
				}
				done += n
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return 0, 0, 0, err
	}
	elapsed := time.Since(start).Seconds()
	st := c.Stats()
	return float64(acked) / elapsed, st.Retries.Load(), st.Reconnects.Load(), nil
}
