package ltbench

import (
	"fmt"
	"time"

	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/schema"
	"littletable/internal/vfs"
)

// ParallelConfig sizes the parallel-read-path experiment.
type ParallelConfig struct {
	// TabletCounts are the x values; default {1, 4, 16, 64}.
	TabletCounts []int
	// RowsPerTablet rows of RowBytes each per tablet; defaults 2000 × 256 B
	// (≈8 blocks per tablet).
	RowsPerTablet int
	RowBytes      int
	// ReadDelay is the modeled per-read disk latency (the §5.1.1 drive's
	// ~1 ms spent per seek+read, injected via vfs.LatencyFS). Default 1 ms.
	ReadDelay time.Duration
	// Parallelism and PrefetchDepth for the parallel variant; defaults 8
	// and 4.
	Parallelism   int
	PrefetchDepth int
	Dir           string // temp-dir parent; "" = system default
}

func (c *ParallelConfig) defaults() {
	if len(c.TabletCounts) == 0 {
		c.TabletCounts = []int{1, 4, 16, 64}
	}
	if c.RowsPerTablet == 0 {
		c.RowsPerTablet = 2000
	}
	if c.RowBytes == 0 {
		c.RowBytes = 256
	}
	if c.ReadDelay == 0 {
		c.ReadDelay = time.Millisecond
	}
	if c.Parallelism == 0 {
		c.Parallelism = 8
	}
	if c.PrefetchDepth == 0 {
		c.PrefetchDepth = 4
	}
}

// RunParallel measures the parallel read path against the serial baseline:
// a key-ordered merge scan over N time-partitioned tablets, each read
// paying a modeled disk latency (vfs.LatencyFS), so the benchmark isolates
// what the worker pool and prefetch pipelines actually buy — overlapping
// block waits — rather than host CPU counts. Three series: cold serial
// scan, cold parallel scan, warm (block-cache-hit) parallel scan.
func RunParallel(cfg ParallelConfig) (*Result, error) {
	cfg.defaults()
	res := &Result{
		Figure: "parallel",
		Title:  "parallel query execution: merge-scan rate vs tablet count",
	}
	serial := Series{Name: "cold scan, serial (rows/s)"}
	par := Series{Name: fmt.Sprintf("cold scan, parallelism %d, prefetch %d (rows/s)", cfg.Parallelism, cfg.PrefetchDepth)}
	warm := Series{Name: "warm scan, block cache hot (rows/s)"}
	var maxSpeedup float64
	var maxSpeedupAt int
	for _, n := range cfg.TabletCounts {
		dir, err := scratchDir(cfg.Dir, "parallel")
		if err != nil {
			return nil, err
		}
		if err := buildScanTable(dir, n, cfg.RowsPerTablet, cfg.RowBytes); err != nil {
			scratchRemove(dir)
			return nil, err
		}
		slow := vfs.LatencyFS{FS: vfs.OsFS{}, ReadDelay: cfg.ReadDelay}
		serialRate, _, err := timeScan(dir, core.Options{
			FS:               slow,
			QueryParallelism: -1,
			PrefetchDepth:    -1,
		}, n*cfg.RowsPerTablet, false)
		if err != nil {
			scratchRemove(dir)
			return nil, err
		}
		parRate, warmRate, err := timeScan(dir, core.Options{
			FS:               slow,
			QueryParallelism: cfg.Parallelism,
			PrefetchDepth:    cfg.PrefetchDepth,
			BlockCacheBytes:  256 << 20,
		}, n*cfg.RowsPerTablet, true)
		scratchRemove(dir)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d tablets", n)
		serial.Points = append(serial.Points, Point{X: float64(n), Y: serialRate, Label: label})
		par.Points = append(par.Points, Point{X: float64(n), Y: parRate, Label: label})
		warm.Points = append(warm.Points, Point{X: float64(n), Y: warmRate, Label: label})
		if s := parRate / serialRate; s > maxSpeedup {
			maxSpeedup, maxSpeedupAt = s, n
		}
	}
	res.Series = []Series{serial, par, warm}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"parallel/serial cold-scan speedup peaks at %.1fx on %d tablets: the worker pool overlaps per-tablet seek latency and each source's prefetch pipeline overlaps block latency with the merge",
		maxSpeedup, maxSpeedupAt))
	return res, nil
}

// buildScanTable creates a table of n on-disk tablets whose key ranges
// fully interleave (round-robin key assignment), the §3.4.2 worst case for
// a merge scan: every tablet stays live in the heap for the whole query.
func buildScanTable(dir string, n, rowsPer, rowBytes int) error {
	clk := clock.NewFake(1_782_018_420 * clock.Second)
	tab, err := core.CreateTable(dir, "bench", benchSchema(), 0, core.Options{
		Clock:      clk,
		FlushSize:  1 << 30, // flush only via FlushAll, one tablet per round
		MergeDelay: 365 * clock.Day,
	})
	if err != nil {
		return err
	}
	defer tab.Close()
	rng := newXorshift(1)
	base := clk.Now() - 30*clock.Day
	for r := 0; r < n; r++ {
		batch := make([]schema.Row, 0, rowsPer)
		for i := 0; i < rowsPer; i++ {
			seq := int64(i*n + r)
			batch = append(batch, benchRow(rng, seq, base+seq, rowBytes))
		}
		if err := tab.Insert(batch); err != nil {
			return err
		}
		if err := tab.FlushAll(); err != nil {
			return err
		}
		clk.Advance(clock.Second)
	}
	return nil
}

// timeScan opens the table with opts, runs a bounded key-ordered scan, and
// returns its rate in rows/s; when warm is set it scans a second time on
// the same handle (block cache populated) and returns that rate too.
func timeScan(dir string, opts core.Options, wantRows int, warm bool) (cold, warmRate float64, err error) {
	tab, err := core.OpenTable(dir, "bench", opts)
	if err != nil {
		return 0, 0, err
	}
	defer tab.Close()
	scan := func() (float64, error) {
		q := core.NewQuery()
		// A lower bound forces each tablet source to seek (one block load
		// at open), so the measurement includes the paper's per-tablet
		// positioning cost (§3.5), not just steady-state streaming.
		q.Lower = []ltval.Value{ltval.NewInt64(0)}
		start := time.Now()
		it, err := tab.Query(q)
		if err != nil {
			return 0, err
		}
		rows := 0
		for it.Next() {
			rows++
		}
		err = it.Err()
		it.Close()
		if err != nil {
			return 0, err
		}
		if rows != wantRows {
			return 0, fmt.Errorf("scan returned %d rows, want %d", rows, wantRows)
		}
		return float64(rows) / time.Since(start).Seconds(), nil
	}
	cold, err = scan()
	if err != nil {
		return 0, 0, err
	}
	if warm {
		warmRate, err = scan()
		if err != nil {
			return 0, 0, err
		}
	}
	return cold, warmRate, nil
}
