//go:build !race

package ltbench

// raceEnabled reports that the race detector is active; timing-sensitive
// shape assertions relax themselves under its ~10x slowdown.
const raceEnabled = false
