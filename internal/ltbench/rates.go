package ltbench

import (
	"fmt"
	"math/rand"

	"littletable/internal/apps"
	"littletable/internal/apps/agg"
	"littletable/internal/apps/events"
	"littletable/internal/apps/usage"
	"littletable/internal/clock"
	"littletable/internal/configdb"
	"littletable/internal/core"
	"littletable/internal/devicesim"
	"littletable/internal/ltval"
	"littletable/internal/prodsim"
)

// RatesConfig scales the production-rates simulation (§5.2.3): a shard's
// grabbers poll a device fleet, aggregators roll the data up, and a
// Dashboard-like query load reads it back, all against simulated time.
type RatesConfig struct {
	Networks       int64
	DevicesPerNet  int64
	SimulatedHours int
	QueriesPerMin  int
	Seed           int64
	Dir            string
}

func (c *RatesConfig) defaults() {
	if c.Networks == 0 {
		c.Networks = 4
	}
	if c.DevicesPerNet == 0 {
		c.DevicesPerNet = 10
	}
	if c.SimulatedHours == 0 {
		c.SimulatedHours = 3
	}
	if c.QueriesPerMin == 0 {
		// Dashboard-scale read load relative to this fleet's size: the
		// paper's ~10:1 read:write row ratio is the shape target.
		c.QueriesPerMin = 1
	}
	if c.Seed == 0 {
		c.Seed = 5
	}
}

// RunRates regenerates §5.2.3's long-term rates: rows/second inserted and
// returned per shard, normalized to simulated time. The paper reports
// 14,000 inserted and 143,000 returned — read-heavy by ~10x, "in part due
// to aggregation: multiple aggregators read each source table and write
// substantially smaller destination tables."
func RunRates(cfg RatesConfig) (*Result, error) {
	cfg.defaults()
	dir, err := scratchDir(cfg.Dir, "rates")
	if err != nil {
		return nil, err
	}
	defer scratchRemove(dir)

	startTs := int64(1_782_018_420) * clock.Second
	clk := clock.NewFake(startTs)
	fleet := devicesim.NewFleet(clk, uint64(cfg.Seed))
	cfgdb := configdb.New()
	cust := cfgdb.AddCustomer("bench")
	deviceID := int64(1)
	for n := int64(0); n < cfg.Networks; n++ {
		net, err := cfgdb.AddNetwork(cust.ID, fmt.Sprintf("net%d", n))
		if err != nil {
			return nil, err
		}
		for d := int64(0); d < cfg.DevicesPerNet; d++ {
			fleet.AddDevice(deviceID, net.ID, "access_point")
			deviceID++
		}
	}

	opts := core.Options{Clock: clk}
	usageTab, err := core.CreateTable(dir, "usage", usage.Schema(), 0, opts)
	if err != nil {
		return nil, err
	}
	defer usageTab.Close()
	eventsTab, err := core.CreateTable(dir, "events", events.Schema(), 0, opts)
	if err != nil {
		return nil, err
	}
	defer eventsTab.Close()
	rollupTab, err := core.CreateTable(dir, "usage_10m", agg.RollupSchema(), 0, opts)
	if err != nil {
		return nil, err
	}
	defer rollupTab.Close()

	ug := usage.New(&apps.CoreStore{T: usageTab}, fleet, clk)
	eg := events.New(&apps.CoreStore{T: eventsTab}, fleet, clk)
	rollup := agg.NewRollup(&apps.CoreStore{T: usageTab}, &apps.CoreStore{T: rollupTab}, clk, startTs-clock.Hour)

	rng := rand.New(rand.NewSource(cfg.Seed))
	tabs := []*core.Table{usageTab, eventsTab, rollupTab}
	queryMix := func(now int64) error {
		for i := 0; i < cfg.QueriesPerMin; i++ {
			tab := tabs[rng.Intn(2)] // dashboards read source tables; rollups too
			if rng.Float64() < 0.3 {
				tab = rollupTab
			}
			q := core.NewQuery()
			lb := prodsim.LookbackSample(rng)
			q.MinTs, q.MaxTs = now-lb, now
			if rng.Float64() < 0.7 {
				net := 1 + rng.Int63n(cfg.Networks) // configdb network ids start at 2; close enough for load
				q.Lower = []ltval.Value{ltval.NewInt64(net)}
				q.Upper = q.Lower
			}
			it, err := tab.Query(q)
			if err != nil {
				return err
			}
			for it.Next() {
			}
			if err := it.Err(); err != nil {
				it.Close()
				return err
			}
			it.Close()
		}
		return nil
	}

	minutes := cfg.SimulatedHours * 60
	for m := 0; m < minutes; m++ {
		clk.Advance(clock.Minute)
		fleet.AdvanceAll()
		if err := ug.Poll(); err != nil {
			return nil, err
		}
		if m%5 == 0 {
			if err := eg.Poll(); err != nil {
				return nil, err
			}
		}
		if m%10 == 0 {
			if err := rollup.Run(); err != nil {
				return nil, err
			}
			for _, t := range tabs {
				if err := t.Tick(); err != nil {
					return nil, err
				}
			}
		}
		if err := queryMix(clk.Now()); err != nil {
			return nil, err
		}
	}

	simSecs := float64(minutes) * 60
	var inserted, returned int64
	for _, t := range tabs {
		s := t.Stats().Snapshot()
		inserted += s.RowsInserted
		returned += s.RowsReturned
	}
	res := &Result{
		Figure: "Rates",
		Title:  "Long-term insert and query rates per shard (§5.2.3, simulated workload)",
	}
	res.Series = append(res.Series, Series{
		Name: "rows per simulated second",
		Points: []Point{
			{Label: "inserted rows/s", Y: float64(inserted) / simSecs},
			{Label: "returned rows/s", Y: float64(returned) / simSecs},
			{Label: "read:write ratio", Y: float64(returned) / float64(inserted)},
		},
	})
	res.Notes = append(res.Notes,
		fmt.Sprintf("paper: 14k inserted, 143k returned per shard (ratio ~10); simulated fleet is %dx smaller, ratio is the shape target",
			30000/int(cfg.Networks*cfg.DevicesPerNet)),
		"the workload is read-heavy partly because aggregators re-read source tables (§5.2.3)")
	return res, nil
}
