package ltbench

import (
	"context"
	"fmt"
	"math"
	"net"
	"time"

	"littletable/internal/agg"
	"littletable/internal/client"
	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/ltval"
	"littletable/internal/schema"
	"littletable/internal/server"
	"littletable/internal/wire"
)

// RollupConfig sizes the aggregation-economics experiment: a dashboard
// window read two ways — shipping every raw row to the client versus one
// server-side AggQuery shipping O(groups) mergeable states — plus the
// continuous-downsampling path folding the same window into a rollup
// table through core.RollupStep.
type RollupConfig struct {
	// Networks × Devices is the group-key cardinality; defaults 3 × 4.
	Networks, Devices int
	// Buckets is how many one-minute buckets the window spans; default 10.
	Buckets int
	// RowsPerGroup is rows per (network, device, bucket); default 40.
	RowsPerGroup int
	// Queries is the measurement repetition count; default 20.
	Queries int
	Dir     string // temp-dir parent; "" = system default
}

func (c *RollupConfig) defaults() {
	if c.Networks == 0 {
		c.Networks = 3
	}
	if c.Devices == 0 {
		c.Devices = 4
	}
	if c.Buckets == 0 {
		c.Buckets = 10
	}
	if c.RowsPerGroup == 0 {
		c.RowsPerGroup = 40
	}
	if c.Queries == 0 {
		c.Queries = 20
	}
}

func rollupBenchSchema() *schema.Schema {
	return schema.MustNew([]schema.Column{
		{Name: "network", Type: ltval.Int64},
		{Name: "device", Type: ltval.Int64},
		{Name: "ts", Type: ltval.Timestamp},
		{Name: "rate", Type: ltval.Double},
		{Name: "bytes", Type: ltval.Int64},
	}, []string{"network", "device", "ts"})
}

func rollupBenchSpec() agg.Spec {
	return agg.Spec{
		BucketWidth: clock.Minute,
		GroupCols:   2,
		Aggs: []agg.Agg{
			{Func: agg.Count},
			{Func: agg.Sum, Col: "bytes"},
			{Func: agg.Min, Col: "rate"},
			{Func: agg.Max, Col: "rate"},
			{Func: agg.Avg, Col: "rate"},
			{Func: agg.Quantile, Col: "rate", Q: 0.95},
		},
	}
}

// RunRollup measures the server-side aggregation economics (§3.1's
// dashboard shape: many rows in, few series points out). The raw series
// ships every row of the window to the client, which folds them locally;
// the aggregate series ships one AggQuery and gets back per-group
// mergeable states. Both produce identical finalized values — the
// difference is purely bytes on the wire and where the fold runs. The
// rollup series then folds the same window into a downsampled table via
// core.RollupStep, the continuous path the maintenance loop drives.
func RunRollup(cfg RollupConfig) (*Result, error) {
	cfg.defaults()
	dir, err := scratchDir(cfg.Dir, "rollup")
	if err != nil {
		return nil, err
	}
	defer scratchRemove(dir)

	srv, err := server.New(server.Options{
		Root: dir,
		// Long interval: the bench drives RollupStep itself so the
		// maintenance loop cannot race the measured passes.
		MaintenanceInterval: time.Hour,
		Logf:                func(string, ...interface{}) {},
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(lis)
	c, err := client.DialContext(context.Background(), lis.Addr().String(), client.Options{
		DialTimeout: 5 * time.Second,
		JitterSeed:  1,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	sc := rollupBenchSchema()
	if err := c.CreateTable("usage", sc, 0); err != nil {
		return nil, err
	}
	tab, err := c.OpenTable("usage")
	if err != nil {
		return nil, err
	}
	// Minute-aligned so each group's rows land in exactly one bucket.
	base := (int64(1_700_000_000) * clock.Second / clock.Minute) * clock.Minute
	rng := newXorshift(11)
	totalRows := 0
	var batch []schema.Row
	for bk := 0; bk < cfg.Buckets; bk++ {
		for n := 0; n < cfg.Networks; n++ {
			for d := 0; d < cfg.Devices; d++ {
				for i := 0; i < cfg.RowsPerGroup; i++ {
					ts := base + int64(bk)*clock.Minute + int64(i)*(clock.Minute/int64(cfg.RowsPerGroup+1))
					batch = append(batch, schema.Row{
						ltval.NewInt64(int64(n)), ltval.NewInt64(int64(d)), ltval.NewTimestamp(ts),
						ltval.NewDouble(float64(rng.next()%1000) / 10),
						ltval.NewInt64(int64(rng.next() % 100000)),
					})
					totalRows++
					if len(batch) == 256 {
						if err := tab.InsertNow(batch); err != nil {
							return nil, err
						}
						batch = batch[:0]
					}
				}
			}
		}
	}
	if len(batch) > 0 {
		if err := tab.InsertNow(batch); err != nil {
			return nil, err
		}
	}
	if err := srv.FlushAllTables(); err != nil {
		return nil, err
	}

	spec := rollupBenchSpec()
	lo, hi := base, base+int64(cfg.Buckets)*clock.Minute-1

	// Raw series: every row crosses the wire; the client folds.
	var rawBytes int64
	start := time.Now()
	for q := 0; q < cfg.Queries; q++ {
		kq := client.NewQuery()
		kq.MinTs, kq.MaxTs = lo, hi
		rows, err := tab.Query(kq).All()
		if err != nil {
			return nil, err
		}
		if len(rows) != totalRows {
			return nil, fmt.Errorf("raw read got %d rows, want %d", len(rows), totalRows)
		}
		acc, err := agg.NewAccumulator(sc, spec)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			acc.Add(r)
		}
		if q == 0 {
			// The payload the server shipped, measured by re-encoding the
			// rows in the wire format the query response uses.
			var b wire.Buf
			b.Rows(sc, rows)
			rawBytes = int64(len(b.B))
		}
	}
	rawDur := time.Since(start).Seconds() / float64(cfg.Queries)

	// Aggregate series: one AggQuery, O(groups) bytes back.
	var aggBytes int64
	var groups int
	start = time.Now()
	for q := 0; q < cfg.Queries; q++ {
		res, err := c.AggQuery(context.Background(), &wire.AggQuery{
			Prefix: "usage", Spec: spec, MinTs: lo, MaxTs: hi,
		})
		if err != nil {
			return nil, err
		}
		if res.RowsFolded != int64(totalRows) {
			return nil, fmt.Errorf("agg folded %d rows, want %d", res.RowsFolded, totalRows)
		}
		if q == 0 {
			aggBytes = int64(len(res.Encode()))
			groups = len(res.Groups)
		}
	}
	aggDur := time.Since(start).Seconds() / float64(cfg.Queries)
	wantGroups := cfg.Networks * cfg.Devices * cfg.Buckets
	if groups != wantGroups {
		return nil, fmt.Errorf("agg returned %d groups, want %d", groups, wantGroups)
	}

	// Continuous-downsampling series: fold the window into a rollup table
	// the way the maintenance loop does, then read the downsampled table.
	src, err := srv.Table("usage")
	if err != nil {
		return nil, err
	}
	rule := core.RollupRule{
		Dest:        "usage_1m",
		BucketWidth: clock.Minute,
		GroupCols:   2,
		Aggs:        spec.Aggs,
	}
	if err := src.SetRollups([]core.RollupRule{rule}); err != nil {
		return nil, err
	}
	destSc, err := rule.DestSchema(src.Schema())
	if err != nil {
		return nil, err
	}
	dest, err := srv.CreateTable(rule.Dest, destSc, 0)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	written, err := core.RollupStep(src, dest, rule, hi+clock.Minute)
	if err != nil {
		return nil, err
	}
	rollupDur := time.Since(start).Seconds()
	if written != int64(wantGroups) {
		return nil, fmt.Errorf("rollup wrote %d rows, want %d", written, wantGroups)
	}
	rolled, err := dest.QueryAll(core.NewQuery())
	if err != nil {
		return nil, err
	}
	if len(rolled) != wantGroups {
		return nil, fmt.Errorf("rollup produced %d rows, want %d", len(rolled), wantGroups)
	}
	var rolledBytes int64
	{
		var b wire.Buf
		b.Rows(destSc, rolled)
		rolledBytes = int64(len(b.B))
	}

	res := &Result{
		Figure: "rollup",
		Title:  "server-side aggregation: bytes to client, raw rows vs AggQuery vs rollup table",
		Series: []Series{
			{Name: "bytes to client", Points: []Point{
				{X: 0, Y: float64(rawBytes), Label: "raw rows"},
				{X: 1, Y: float64(aggBytes), Label: "agg query"},
				{X: 2, Y: float64(rolledBytes), Label: "rollup table"},
			}},
			{Name: "dashboard read latency (ms)", Points: []Point{
				{X: 0, Y: rawDur * 1000, Label: "raw rows"},
				{X: 1, Y: aggDur * 1000, Label: "agg query"},
			}},
			{Name: "rollup fold (rows/s)", Points: []Point{
				{X: 0, Y: float64(totalRows) / math.Max(rollupDur, 1e-9), Label: "rollup step"},
			}},
		},
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d rows folded to %d groups: raw ships %d bytes, AggQuery ships %d (%.1fx reduction), the 1m rollup table reads back at %d bytes (%.1fx)",
		totalRows, groups, rawBytes, aggBytes,
		float64(rawBytes)/float64(aggBytes), rolledBytes, float64(rawBytes)/float64(rolledBytes)))
	return res, nil
}
