package ltbench

import (
	"context"
	"fmt"
	"net"
	"time"

	"littletable/internal/client"
	"littletable/internal/netfault"
	"littletable/internal/router"
	"littletable/internal/schema"
	"littletable/internal/server"
	"littletable/internal/wire"
)

// RouterScatterConfig sizes the shard-router experiment: tables spread
// across an in-process shard cluster by the consistent-hash ring, read
// back through the router both one table at a time (the pre-router
// client's only option) and as a single scatter-gather query — on a
// loopback link and on one with injected latency.
type RouterScatterConfig struct {
	// Shards is the cluster size; default 3.
	Shards int
	// Tables is how many prefix-matched tables the ring spreads; default 12.
	Tables int
	// RowsPerTable is the rows inserted per table; default 200.
	RowsPerTable int
	// RowBytes approximates the encoded row size; default 128.
	RowBytes int
	// Queries is the measurement repetition count; default 30.
	Queries int
	// Latency is the injected per-chunk delay ceiling for the slow-link
	// series; default 2ms (uniform in [0, Latency)).
	Latency time.Duration
	Dir     string // temp-dir parent; "" = system default
}

func (c *RouterScatterConfig) defaults() {
	if c.Shards == 0 {
		c.Shards = 3
	}
	if c.Tables == 0 {
		c.Tables = 12
	}
	if c.RowsPerTable == 0 {
		c.RowsPerTable = 200
	}
	if c.RowBytes == 0 {
		c.RowBytes = 128
	}
	if c.Queries == 0 {
		c.Queries = 30
	}
	if c.Latency == 0 {
		c.Latency = 2 * time.Millisecond
	}
}

// RunRouterScatter measures multi-table read throughput through the
// routing tier, two ways on two links. The per-table baseline walks the
// tables one Query at a time through the router — each table pays its own
// router→shard round trip, serially. The scatter series issues one
// ScatterQuery that the router fans out to every shard concurrently and
// merges sorted. On loopback the baseline often wins: per-table requests
// relay through the router as raw bytes while scatter decodes and merges
// every row. With realistic shard-link latency the economics invert —
// per-table cost grows with the table count, scatter stays at one
// concurrent fan-out — which is the point: §2.2's one-table-per-customer
// layout makes prefix reads the common multi-table shape, and the router
// prices them at one round trip.
func RunRouterScatter(cfg RouterScatterConfig) (*Result, error) {
	cfg.defaults()
	res := &Result{
		Figure: "routerscatter",
		Title:  "shard router: multi-table read throughput, per-table vs scatter-gather",
	}
	perClean, scatClean, err := runRouterScatterOnce(cfg, 0)
	if err != nil {
		return nil, err
	}
	perSlow, scatSlow, err := runRouterScatterOnce(cfg, cfg.Latency)
	if err != nil {
		return nil, err
	}
	res.Series = []Series{
		{Name: "per-table queries (rows/s)", Points: []Point{
			{X: 0, Y: perClean, Label: "loopback"},
			{X: 1, Y: perSlow, Label: fmt.Sprintf("%v link", cfg.Latency)},
		}},
		{Name: "scatter-gather (rows/s)", Points: []Point{
			{X: 0, Y: scatClean, Label: "loopback"},
			{X: 1, Y: scatSlow, Label: fmt.Sprintf("%v link", cfg.Latency)},
		}},
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"%d tables x %d rows across %d shards; scatter/per-table ratio %.2fx on loopback, %.2fx with %v shard-link latency — scatter pays one concurrent fan-out where the baseline pays one round trip per table",
		cfg.Tables, cfg.RowsPerTable, cfg.Shards, scatClean/perClean, scatSlow/perSlow, cfg.Latency))
	return res, nil
}

// runRouterScatterOnce builds one cluster — shards, optional latency
// proxies on the router→shard links, a router, a client — loads the
// tables, and returns per-table and scatter rows/s.
func runRouterScatterOnce(cfg RouterScatterConfig, latency time.Duration) (perTable, scatter float64, err error) {
	dir, err := scratchDir(cfg.Dir, "routerscatter")
	if err != nil {
		return 0, 0, err
	}
	defer scratchRemove(dir)

	// Real shards, real router, real TCP between all tiers.
	var shardAddrs []string
	for i := 0; i < cfg.Shards; i++ {
		sdir, err := scratchDir(dir, fmt.Sprintf("shard%d", i))
		if err != nil {
			return 0, 0, err
		}
		srv, err := server.New(server.Options{
			Root:                sdir,
			MaintenanceInterval: 100 * time.Millisecond,
			Logf:                func(string, ...interface{}) {},
		})
		if err != nil {
			return 0, 0, err
		}
		defer srv.Close()
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, 0, err
		}
		go srv.Serve(lis)
		addr := lis.Addr().String()
		if latency > 0 {
			p, perr := netfault.New(addr, netfault.Config{Seed: int64(i) + 1, LatencyMax: latency})
			if perr != nil {
				return 0, 0, perr
			}
			defer p.Close()
			addr = p.Addr()
		}
		shardAddrs = append(shardAddrs, addr)
	}
	r, err := router.New(router.Options{
		Shards: shardAddrs,
		Logf:   func(string, ...interface{}) {},
	})
	if err != nil {
		return 0, 0, err
	}
	defer r.Close()
	rlis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	go r.Serve(rlis)

	c, err := client.DialContext(context.Background(), rlis.Addr().String(), client.Options{
		DialTimeout: 5 * time.Second,
		JitterSeed:  1,
	})
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()

	// One table per "customer", loaded through the router.
	rng := newXorshift(7)
	handles := make([]*client.Table, cfg.Tables)
	for i := range handles {
		name := fmt.Sprintf("cust%03d_flows", i)
		if err := c.CreateTable(name, benchSchema(), 0); err != nil {
			return 0, 0, err
		}
		tab, err := c.OpenTable(name)
		if err != nil {
			return 0, 0, err
		}
		handles[i] = tab
		batch := make([]schema.Row, 0, 64)
		for done := 0; done < cfg.RowsPerTable; {
			n := 64
			if n > cfg.RowsPerTable-done {
				n = cfg.RowsPerTable - done
			}
			batch = batch[:0]
			for j := 0; j < n; j++ {
				seq := int64(i*cfg.RowsPerTable + done + j)
				batch = append(batch, benchRow(rng, seq, seq, cfg.RowBytes))
			}
			if err := tab.InsertNow(batch); err != nil {
				return 0, 0, err
			}
			done += n
		}
	}
	wantRows := cfg.Tables * cfg.RowsPerTable

	// Baseline: one Query per table, sequentially, through the router.
	start := time.Now()
	for q := 0; q < cfg.Queries; q++ {
		got := 0
		for _, tab := range handles {
			it := tab.QueryCtx(context.Background(), client.NewQuery())
			for it.Next() {
				got++
			}
			if err := it.Err(); err != nil {
				return 0, 0, err
			}
		}
		if got != wantRows {
			return 0, 0, fmt.Errorf("per-table pass read %d rows, want %d", got, wantRows)
		}
	}
	perTable = float64(wantRows*cfg.Queries) / time.Since(start).Seconds()

	// Scatter: one prefix query, the router fans out and merges.
	start = time.Now()
	for q := 0; q < cfg.Queries; q++ {
		sr, err := c.ScatterQuery(context.Background(), &wire.ScatterQuery{
			Prefix: "cust", MaxTs: 1 << 62,
		})
		if err != nil {
			return 0, 0, err
		}
		got := 0
		for _, sec := range sr.Tables {
			got += len(sec.Rows)
		}
		if got != wantRows {
			return 0, 0, fmt.Errorf("scatter pass read %d rows, want %d", got, wantRows)
		}
	}
	scatter = float64(wantRows*cfg.Queries) / time.Since(start).Seconds()
	return perTable, scatter, nil
}
