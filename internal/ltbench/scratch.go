package ltbench

import "os"

// The benchmark harness measures real disks (or modeled-latency wrappers
// around them), so provisioning its scratch trees goes straight to the
// OS on purpose: wrapping MkdirTemp in the engine's vfs would add an
// abstraction the engine never uses at that point and would not make the
// crash harness any stronger. These two helpers are the single sanctioned
// choke point — every figure's setup calls them, keeping the rest of the
// harness inside the vfsonly discipline.

// scratchDir creates a scratch directory for one benchmark run.
func scratchDir(dir, pattern string) (string, error) {
	return os.MkdirTemp(dir, pattern) //ltlint:ignore vfsonly bench scratch provisioning targets the real filesystem by design
}

// scratchRemove deletes a scratch tree, best-effort, mirroring the
// defer-cleanup idiom of the figure runners.
func scratchRemove(dir string) {
	os.RemoveAll(dir) //ltlint:ignore vfsonly bench scratch cleanup mirrors scratchDir
}
