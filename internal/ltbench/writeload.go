package ltbench

import (
	"fmt"
	"sync"
	"time"

	"littletable/internal/clock"
	"littletable/internal/core"
	"littletable/internal/schema"
	"littletable/internal/vfs"
)

// WriteloadConfig sizes the write-pipeline experiment.
type WriteloadConfig struct {
	// Rows is the total rows inserted per measurement; default 12000.
	Rows int
	// BatchRows is the rows per Insert call; default 64.
	BatchRows int
	// RowBytes approximates the encoded row size; default 128.
	RowBytes int
	// WriteDelay is the modeled per-write device latency on the flush path
	// (the §5.1.1 drive's seek cost, injected via vfs.LatencyFS). Default
	// 1 ms.
	WriteDelay time.Duration
	// WriteBytesPerSec is the modeled sequential write rate (§5.1.1's
	// transfer half: a flush costs wall time in proportion to its size).
	// Default 4 MB/s, scaled down like the row counts are.
	WriteBytesPerSec int64
	// FlushSize is kept small so the run seals dozens of tablets; default
	// 32 kB.
	FlushSize int
	// BlockSize is kept small so each tablet flush issues several block
	// writes (each paying WriteDelay), like a 16 MB production flush does;
	// default 4 kB.
	BlockSize int
	// WorkerCounts are the x values; default {0, 1, 2, 4} (0 = the
	// serialized baseline: every flush stalls the write path).
	WorkerCounts []int
	Dir          string // temp-dir parent; "" = system default
}

func (c *WriteloadConfig) defaults() {
	if c.Rows == 0 {
		c.Rows = 12000
	}
	if c.BatchRows == 0 {
		c.BatchRows = 64
	}
	if c.RowBytes == 0 {
		c.RowBytes = 128
	}
	if c.WriteDelay == 0 {
		c.WriteDelay = time.Millisecond
	}
	if c.WriteBytesPerSec == 0 {
		c.WriteBytesPerSec = 4 << 20
	}
	if c.FlushSize == 0 {
		c.FlushSize = 32 << 10
	}
	if c.BlockSize == 0 {
		c.BlockSize = 4 << 10
	}
	if len(c.WorkerCounts) == 0 {
		c.WorkerCounts = []int{0, 1, 2, 4}
	}
}

// RunWriteload measures the batched/pipelined write path against the
// serialized baseline: insert a fixed row volume, then drain to full
// durability, with every tablet write paying a modeled device latency
// (vfs.LatencyFS). The rate is rows per second to DURABLE — inserts plus
// the flush backlog — so hiding flush latency behind the insert path, and
// overlapping flushes with each other, is exactly what the worker series
// measures rather than host CPU counts. Two series: one inserter, and
// four concurrent inserters exercising the group-commit queue.
func RunWriteload(cfg WriteloadConfig) (*Result, error) {
	cfg.defaults()
	res := &Result{
		Figure: "writeload",
		Title:  "pipelined write path: durable insert rate vs flush workers",
	}
	single := Series{Name: "1 inserter (rows/s)"}
	multi := Series{Name: "4 inserters, group commit (rows/s)"}
	var serial1, serial4, best1, best4 float64
	for _, workers := range cfg.WorkerCounts {
		r1, err := runWriteloadOnce(cfg, workers, 1)
		if err != nil {
			return nil, err
		}
		r4, err := runWriteloadOnce(cfg, workers, 4)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d workers", workers)
		if workers == 0 {
			label = "serial"
			serial1, serial4 = r1, r4
		}
		if r1 > best1 {
			best1 = r1
		}
		if r4 > best4 {
			best4 = r4
		}
		single.Points = append(single.Points, Point{X: float64(workers), Y: r1, Label: label})
		multi.Points = append(multi.Points, Point{X: float64(workers), Y: r4, Label: label})
	}
	res.Series = []Series{single, multi}
	if serial1 > 0 && serial4 > 0 {
		res.Notes = append(res.Notes, fmt.Sprintf(
			"flush workers hide flush latency behind the insert path: best %.1fx over the serialized baseline with one inserter, %.1fx with four inserters sharing the group-commit queue; in-order descriptor commits batch across groups",
			best1/serial1, best4/serial4))
	}
	return res, nil
}

// runWriteloadOnce inserts cfg.Rows across `inserters` goroutines with
// `workers` background flushers, returning rows per second to durable.
func runWriteloadOnce(cfg WriteloadConfig, workers, inserters int) (float64, error) {
	dir, err := scratchDir(cfg.Dir, "writeload")
	if err != nil {
		return 0, err
	}
	defer scratchRemove(dir)
	clk := clock.NewFake(1_782_018_420 * clock.Second)
	slow := vfs.LatencyFS{FS: vfs.OsFS{}, WriteDelay: cfg.WriteDelay, WriteBytesPerSec: cfg.WriteBytesPerSec}
	tab, err := core.CreateTable(dir, "bench", benchSchema(), 0, core.Options{
		Clock:             clk,
		FS:                slow,
		FlushSize:         cfg.FlushSize,
		BlockSize:         cfg.BlockSize,
		FlushWorkers:      workers,
		MergeDelay:        365 * clock.Day,
		MaxUnflushedBytes: 1 << 30, // measure latency hiding, not the cap
	})
	if err != nil {
		return 0, err
	}
	defer tab.Close()

	perIns := cfg.Rows / inserters
	base := clk.Now()
	start := time.Now()
	errs := make([]error, inserters)
	var wg sync.WaitGroup
	for w := 0; w < inserters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := newXorshift(uint64(w) + 21)
			for done := 0; done < perIns; {
				n := cfg.BatchRows
				if n > perIns-done {
					n = perIns - done
				}
				batch := make([]schema.Row, 0, n)
				for i := 0; i < n; i++ {
					seq := int64(w*perIns + done + i)
					batch = append(batch, benchRow(rng, seq, base+seq, cfg.RowBytes))
				}
				if err := tab.Insert(batch); err != nil {
					errs[w] = err
					return
				}
				done += n
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	if err := tab.FlushAll(); err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	rows := perIns * inserters
	return float64(rows) / elapsed.Seconds(), nil
}
