package ltlint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"littletable/internal/ltlint"
	"littletable/internal/ltlint/lttest"
)

func writeFixture(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestVfsOnly(t *testing.T) {
	lttest.Run(t, filepath.Join("testdata", "src", "vfsonly"), ltlint.VfsOnly)
}

func TestBarrierCheck(t *testing.T) {
	lttest.Run(t, filepath.Join("testdata", "src", "barriercheck"), ltlint.BarrierCheck)
}

func TestCountersSync(t *testing.T) {
	lttest.Run(t, filepath.Join("testdata", "src", "counterssync"), ltlint.CountersSync)
}

func TestCtxProp(t *testing.T) {
	lttest.Run(t, filepath.Join("testdata", "src", "ctxprop"), ltlint.CtxProp)
}

func TestLockHold(t *testing.T) {
	lttest.Run(t, filepath.Join("testdata", "src", "lockhold"), ltlint.LockHold)
}

func TestRetrySafe(t *testing.T) {
	lttest.Run(t, filepath.Join("testdata", "src", "retrysafe"), ltlint.RetrySafe)
}

func TestMsgExhaustive(t *testing.T) {
	lttest.Run(t, filepath.Join("testdata", "src", "msgexhaustive"), ltlint.MsgExhaustive)
}

func TestLockOrder(t *testing.T) {
	lttest.Run(t, filepath.Join("testdata", "src", "lockorder"), ltlint.LockOrder)
}

func TestAtomicPersist(t *testing.T) {
	lttest.Run(t, filepath.Join("testdata", "src", "atomicpersist"), ltlint.AtomicPersist)
}

func TestGoTrack(t *testing.T) {
	lttest.Run(t, filepath.Join("testdata", "src", "gotrack"), ltlint.GoTrack)
}

// TestAllSuite pins the suite size and name uniqueness: rule names are
// the suppression vocabulary, so a collision would make //ltlint:ignore
// ambiguous.
func TestAllSuite(t *testing.T) {
	all := ltlint.All()
	if len(all) != 10 {
		t.Fatalf("All() returned %d analyzers, want 10", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestCountersSyncCatchesDrift is the acceptance-criteria demonstration
// in executable form: starting from the in-sync fixture, adding a Stats
// counter without wire/metrics counterparts must produce findings.
func TestCountersSyncCatchesDrift(t *testing.T) {
	prog, err := ltlint.LoadTree(filepath.Join("testdata", "src", "counterssync"), lttest.ModPath)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := ltlint.Run(prog, []*ltlint.Analyzer{ltlint.CountersSync})
	if err != nil {
		t.Fatal(err)
	}
	var wireMisses, serverMisses int
	for _, d := range diags {
		if strings.Contains(d.Message, "not encoded in internal/wire") {
			wireMisses++
		}
		if strings.Contains(d.Message, "not exported by internal/server") {
			serverMisses++
		}
	}
	// Orphan and NoSnap each miss both sides; CoreOnly is suppressed.
	if wireMisses != 2 || serverMisses != 2 {
		t.Fatalf("want 2 wire + 2 server drift findings, got %d + %d: %v", wireMisses, serverMisses, diags)
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "CoreOnly") {
			t.Fatalf("suppressed counter CoreOnly was reported: %v", d)
		}
	}
}

// TestMsgExhaustiveCatchesDrift is the acceptance-criteria demonstration
// for the wire rule: a request constant absent from all three surfaces
// must be flagged once per surface — server dispatch, client idempotency
// table, router dispatch.
func TestMsgExhaustiveCatchesDrift(t *testing.T) {
	prog, err := ltlint.LoadTree(filepath.Join("testdata", "src", "msgexhaustive"), lttest.ModPath)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := ltlint.Run(prog, []*ltlint.Analyzer{ltlint.MsgExhaustive})
	if err != nil {
		t.Fatal(err)
	}
	surfaces := map[string]int{
		"internal/server's dispatch switch":   0,
		"internal/client's idempotency table": 0,
		"internal/router's dispatch":          0,
	}
	for _, d := range diags {
		if !strings.Contains(d.Message, "MsgPhantom") {
			continue
		}
		for s := range surfaces {
			if strings.Contains(d.Message, s) {
				surfaces[s]++
			}
		}
	}
	for s, n := range surfaces {
		if n != 1 {
			t.Errorf("MsgPhantom flagged %d times for surface %q, want 1: %v", n, s, diags)
		}
	}
	for _, d := range diags {
		if strings.Contains(d.Message, "MsgExperimental") {
			t.Errorf("suppressed constant MsgExperimental was reported: %v", d)
		}
		// The aggregation pair is wired on every surface in the fixture —
		// server dispatch, client idempotency + response decode, router
		// dispatch — so any finding against it is a false positive.
		if strings.Contains(d.Message, "MsgAggQuery") || strings.Contains(d.Message, "MsgAggResult") {
			t.Errorf("fully wired constant was reported: %v", d)
		}
	}
}

// TestMalformedIgnoreIsReported pins the rule that a suppression without
// a reason is itself a finding.
func TestMalformedIgnoreIsReported(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "a/a.go", "package a\n\n//ltlint:ignore vfsonly\nvar X = 1\n")
	prog, err := ltlint.LoadTree(dir, lttest.ModPath)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := ltlint.Run(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "malformed //ltlint:ignore") {
		t.Fatalf("want one malformed-ignore finding, got %v", diags)
	}
}

// TestSelfClean runs the full suite over this repository: the linted tree
// must stay clean, so the CI gate (cmd/ltlint) cannot regress quietly.
func TestSelfClean(t *testing.T) {
	root, err := ltlint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ltlint.LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := ltlint.Run(prog, ltlint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
