package ltlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicPersist enforces the crash-safety recipe every durable file in
// the system is written with (§3.2's descriptor discipline, generalized):
// write to a temporary name, Sync, Close, Rename onto the final name,
// SyncDir the parent. A file created directly at its durable name can be
// seen half-written after a crash — exactly the corruption class the
// crash harness exists to rule out, except the harness only proves paths
// it executes, and a new persistence site is precisely the path it has
// never executed.
//
// In the persistence-owning packages (core, tablet, router, server) the
// rule is:
//
//   - every FS Create must target a temporary name ("tmp" in the path
//     expression), and the enclosing file must also perform the Rename
//     and SyncDir that complete the recipe;
//   - every Rename must be accompanied by a SyncDir in the same file
//     (a rename the directory never fsyncs can vanish on power loss).
//
// Filesystem middleware — methods on structs that embed vfs.FS and relay
// each call (the I/O-budget meter, fault injectors) — is exempt: it
// forwards whatever discipline its caller chose. Module-internal helper
// *functions* named Create (tablet.Create) are calls into blessed
// helpers, not raw filesystem creates, and are likewise skipped.
var AtomicPersist = &Analyzer{
	Name: "atomicpersist",
	Doc: "durable files must be written temp→Sync→Rename→SyncDir (§3.2); a direct " +
		"create at the final name is exactly what the crash harness cannot forgive",
	Run: runAtomicPersist,
}

// atomicPersistPkgs own durable state.
var atomicPersistPkgs = []string{
	"/internal/core",
	"/internal/tablet",
	"/internal/router",
	"/internal/server",
}

func runAtomicPersist(p *Pass) error {
	mod := p.Prog.ModPath
	for _, suffix := range atomicPersistPkgs {
		pkg := p.Prog.Package(mod + suffix)
		if pkg == nil {
			continue
		}
		for _, f := range pkg.Files {
			if f.IsTest {
				continue
			}
			checkAtomicPersistFile(p, pkg, f)
		}
	}
	return nil
}

func checkAtomicPersistFile(p *Pass, pkg *Package, f *SourceFile) {
	imports := importNames(f.AST)
	modInternal := func(call *ast.CallExpr) bool {
		name, _, ok := pkgCall(call)
		if !ok {
			return false
		}
		path, imported := imports[name]
		return imported && (strings.HasPrefix(path, p.Prog.ModPath+"/") || path == p.Prog.ModPath)
	}

	// First pass: does this file contain the Rename and SyncDir halves of
	// the recipe? The check is file-scoped because the recipe is often
	// split across functions of one writer (tablet.Writer's Create starts
	// the staging that Finish completes).
	var hasRename, hasSyncDir bool
	for _, decl := range f.AST.Decls {
		ast.Inspect(decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && !modInternal(call) {
				switch sel.Sel.Name {
				case "Rename":
					hasRename = true
				case "SyncDir":
					hasSyncDir = true
				}
			}
			return true
		})
	}

	for _, decl := range f.AST.Decls {
		fd, isFunc := decl.(*ast.FuncDecl)
		if isFunc && embedsVfsFS(pkg, fd) {
			continue // filesystem middleware relays its caller's discipline
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || modInternal(call) {
				return true
			}
			switch sel.Sel.Name {
			case "Create":
				if len(call.Args) == 0 {
					return true
				}
				arg := types.ExprString(call.Args[0])
				if !strings.Contains(arg, "tmp") && !strings.Contains(arg, "Tmp") {
					p.Reportf(call.Pos(), "durable file created directly at its final name (%s); "+
						"stage to a temporary name, Sync, Rename, SyncDir (§3.2) so a crash never exposes a half-written file", arg)
					return true
				}
				if !hasRename || !hasSyncDir {
					p.Reportf(call.Pos(), "staged write (%s) is never completed in this file: the temp→Sync→Rename→SyncDir "+
						"recipe needs the Rename and SyncDir halves too", arg)
				}
			case "Rename":
				if !hasSyncDir {
					p.Reportf(call.Pos(), "Rename without a SyncDir in this file; a rename the parent directory "+
						"never fsyncs can vanish on power loss (§3.2)")
				}
			}
			return true
		})
	}
}

// embedsVfsFS reports whether fd is a method on a struct that embeds
// vfs.FS — filesystem middleware whose Create/Rename methods forward to
// the wrapped FS.
func embedsVfsFS(pkg *Package, fd *ast.FuncDecl) bool {
	_, recvType := receiverOf(fd)
	if recvType == "" {
		return false
	}
	st := structType(pkg, recvType)
	if st == nil {
		return false
	}
	for _, fld := range st.Fields.List {
		if len(fld.Names) != 0 {
			continue // named field, not an embed
		}
		if strings.Contains(types.ExprString(fld.Type), "vfs.FS") ||
			types.ExprString(fld.Type) == "FS" {
			return true
		}
	}
	return false
}
