package ltlint

import (
	"go/ast"
)

// barrierMethods are the method names whose error return is a durability
// barrier: a tablet or descriptor is not committed until the Sync, the
// Rename into place, and the parent-directory SyncDir have all succeeded.
var barrierMethods = map[string]bool{
	"Sync":    true,
	"SyncDir": true,
	"Rename":  true,
}

// barrierFuncs are package-level functions with the same weight; today
// that is the descriptor commit, whose silent failure was PR 3's
// lost-rows bug.
var barrierFuncs = map[string]bool{
	"writeDescriptor": true,
}

// BarrierCheck enforces §5's prefix-durability proof obligation: every
// sync/rename/descriptor-commit error must be checked — returned,
// branched on, or routed into the RowsLost/quarantine machinery — never
// dropped on the floor. It flags barrier calls whose result is discarded:
// bare expression statements, go/defer statements, and assignments where
// every left-hand side is blank.
var BarrierCheck = &Analyzer{
	Name: "barriercheck",
	Doc: "a discarded Sync/Rename/SyncDir/writeDescriptor error silently " +
		"breaks §5 prefix durability; check it or route it into RowsLost/quarantine",
	Run: runBarrierCheck,
}

func runBarrierCheck(p *Pass) error {
	inspectNonTest(p.Prog, func(pkg *Package, f *SourceFile, n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if name, ok := barrierCall(s.X); ok {
				p.Reportf(s.Pos(), "%s's error is discarded; a failed barrier must be checked "+
					"or routed into the RowsLost/quarantine machinery (§5 prefix durability)", name)
			}
		case *ast.GoStmt:
			if name, ok := barrierCall(s.Call); ok {
				p.Reportf(s.Pos(), "go %s discards the barrier error; run it synchronously "+
					"and check the result (§5 prefix durability)", name)
			}
		case *ast.DeferStmt:
			if name, ok := barrierCall(s.Call); ok {
				p.Reportf(s.Pos(), "defer %s discards the barrier error; a deferred barrier "+
					"cannot fail the commit it protects (§5 prefix durability)", name)
			}
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 {
				return true
			}
			name, ok := barrierCall(s.Rhs[0])
			if !ok {
				return true
			}
			for _, lhs := range s.Lhs {
				if id, isIdent := lhs.(*ast.Ident); !isIdent || id.Name != "_" {
					return true
				}
			}
			p.Reportf(s.Pos(), "%s's error is assigned to _; a failed barrier must be checked "+
				"or routed into the RowsLost/quarantine machinery (§5 prefix durability)", name)
		}
		return true
	})
	return nil
}

// barrierCall reports whether e is a call to a barrier method or
// function, returning a printable name.
func barrierCall(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if barrierMethods[fun.Sel.Name] {
			return fun.Sel.Name, true
		}
	case *ast.Ident:
		if barrierFuncs[fun.Name] {
			return fun.Name, true
		}
	}
	return "", false
}
