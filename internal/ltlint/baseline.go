package ltlint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baselines let a new analyzer land blocking-on-new-findings: known
// legacy findings are recorded in a checked-in JSON file and filtered
// from the run, while anything not in the file still fails CI. The repo
// aims to keep the baseline empty — it is a ratchet for rollouts, not a
// parking lot — so entries are keyed on (rule, module-relative file,
// message) and deliberately NOT on line numbers: unrelated edits moving
// a legacy finding around must not resurrect it, and fixing it must
// surface the entry as stale.

// BaselineVersion is the format version written to baseline files.
const BaselineVersion = 1

// A Baseline is the persisted set of accepted legacy findings.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// A BaselineEntry identifies one accepted finding.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	File    string `json:"file"` // module-relative, slash-separated
	Message string `json:"message"`
}

func (e BaselineEntry) key() string { return e.Rule + "\x00" + e.File + "\x00" + e.Message }

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("ltlint: parse baseline %s: %w", path, err)
	}
	if b.Version != BaselineVersion {
		return nil, fmt.Errorf("ltlint: baseline %s has version %d, want %d", path, b.Version, BaselineVersion)
	}
	return &b, nil
}

// NewBaseline builds a baseline from current findings. rel maps a
// diagnostic's absolute filename to its module-relative form.
func NewBaseline(diags []Diagnostic, rel func(string) string) *Baseline {
	b := &Baseline{Version: BaselineVersion, Findings: []BaselineEntry{}}
	seen := make(map[string]bool)
	for _, d := range diags {
		e := BaselineEntry{Rule: d.Rule, File: rel(d.Pos.Filename), Message: d.Message}
		if seen[e.key()] {
			continue
		}
		seen[e.key()] = true
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool { return b.Findings[i].key() < b.Findings[j].key() })
	return b
}

// Save writes the baseline as indented JSON.
func (b *Baseline) Save(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits diags into the findings not covered by the baseline
// (still blocking) and reports baseline entries no current finding
// matches (stale — the legacy finding was fixed, so the entry should be
// deleted to re-arm the rule).
func (b *Baseline) Filter(diags []Diagnostic, rel func(string) string) (kept []Diagnostic, stale []BaselineEntry) {
	matched := make(map[string]bool, len(b.Findings))
	index := make(map[string]bool, len(b.Findings))
	for _, e := range b.Findings {
		index[e.key()] = true
	}
	for _, d := range diags {
		k := BaselineEntry{Rule: d.Rule, File: rel(d.Pos.Filename), Message: d.Message}.key()
		if index[k] {
			matched[k] = true
			continue
		}
		kept = append(kept, d)
	}
	for _, e := range b.Findings {
		if !matched[e.key()] {
			stale = append(stale, e)
		}
	}
	return kept, stale
}
