package ltlint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The whole-program call graph behind the distributed-layer analyzers.
// PR 4's five rules were AST-local: each finding was visible inside one
// function. The invariants the wire/router layers rely on are not —
// "savePlacementLocked fsyncs while shardFor's mutex is held" is a fact
// about a *chain* of calls, and "once() sends bytes nobody classified"
// is a fact about a function's callers. BuildCallGraph resolves the
// resolvable call edges (same-package calls, module-internal package
// calls, own-receiver method calls) and leaves the rest unresolved:
// propagation over the graph is deliberately conservative, so an edge
// the resolver cannot prove contributes nothing and can never invent a
// finding.

// A FuncNode is one function or method declaration in the program.
type FuncNode struct {
	Pkg  *Package
	File *SourceFile
	Decl *ast.FuncDecl

	// Key identifies the node: "pkgpath.Name" for functions,
	// "pkgpath.RecvType.Name" for methods.
	Key      string
	RecvName string // receiver identifier, e.g. "t"
	RecvType string // receiver struct type, e.g. "Table"

	// Calls are the module-internal call sites the resolver could bind,
	// in source order, including calls made inside function literals
	// declared in this function's body.
	Calls []CallSite
}

// A CallSite is one resolved outgoing call.
type CallSite struct {
	Callee *FuncNode
	Pos    token.Pos
}

// A CallGraph indexes every function declaration of the program and the
// resolvable edges between them.
type CallGraph struct {
	Prog  *Program
	Funcs map[string]*FuncNode // Key → node

	// Callers maps a callee's Key to the nodes holding a resolved call
	// to it.
	Callers map[string][]*FuncNode

	byPkg map[string]map[string]*FuncNode // pkgPath → local name → node
}

// Node finds a function by package path and local name ("Name" or
// "RecvType.Name"), or nil.
func (cg *CallGraph) Node(pkgPath, local string) *FuncNode {
	return cg.byPkg[pkgPath][local]
}

// BuildCallGraph parses every non-test function declaration into a node
// and resolves the call edges the syntax pins down:
//
//   - foo(...)        → function foo of the same package
//   - pkg.Fn(...)     → function Fn of a module-internal imported package
//   - recv.m(...)     → method m of the enclosing method's receiver type
//   - param.m(...)    → method m of a parameter whose type names a struct
//     declared in the same package
//
// Anything else (interface dispatch, function values, cross-package
// method calls on returned handles) stays unresolved.
func BuildCallGraph(prog *Program) *CallGraph {
	cg := &CallGraph{
		Prog:    prog,
		Funcs:   make(map[string]*FuncNode),
		Callers: make(map[string][]*FuncNode),
		byPkg:   make(map[string]map[string]*FuncNode),
	}
	for _, pkg := range prog.Pkgs {
		local := make(map[string]*FuncNode)
		cg.byPkg[pkg.PkgPath] = local
		for _, f := range pkg.Files {
			if f.IsTest {
				continue
			}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				n := &FuncNode{Pkg: pkg, File: f, Decl: fd}
				n.RecvName, n.RecvType = receiverOf(fd)
				name := fd.Name.Name
				if n.RecvType != "" {
					name = n.RecvType + "." + name
				}
				n.Key = pkg.PkgPath + "." + name
				cg.Funcs[n.Key] = n
				local[name] = n
			}
		}
	}
	for _, n := range cg.Funcs {
		cg.resolveCalls(n)
	}
	return cg
}

// resolveCalls fills n.Calls and the Callers index.
func (cg *CallGraph) resolveCalls(n *FuncNode) {
	imports := importNames(n.File.AST)
	local := cg.byPkg[n.Pkg.PkgPath]
	tr := newTypeResolver(n.Pkg, n.Decl)
	seen := make(map[string]bool)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee *FuncNode
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			callee = local[fun.Name]
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok {
				if path, imported := imports[id.Name]; imported {
					if strings.HasPrefix(path, cg.Prog.ModPath+"/") || path == cg.Prog.ModPath {
						callee = cg.byPkg[path][fun.Sel.Name]
					}
					break
				}
			}
			if t := tr.typeOf(fun.X); t != "" {
				callee = local[t+"."+fun.Sel.Name]
			}
		}
		if callee != nil && callee != n {
			n.Calls = append(n.Calls, CallSite{Callee: callee, Pos: call.Pos()})
			if !seen[callee.Key] {
				seen[callee.Key] = true
				cg.Callers[callee.Key] = append(cg.Callers[callee.Key], n)
			}
		}
		return true
	})
}

// typeResolver binds identifier expressions inside one function to struct
// type names declared in the same package, via the receiver, the
// parameters, and one level of field selection.
type typeResolver struct {
	fields   map[string]map[string]string // structFieldTypes of the package
	recvName string
	recvType string
	params   map[string]string // param name → local struct type name
}

func newTypeResolver(pkg *Package, fd *ast.FuncDecl) *typeResolver {
	tr := &typeResolver{fields: structFieldTypes(pkg), params: make(map[string]string)}
	tr.recvName, tr.recvType = receiverOf(fd)
	if fd.Type.Params != nil {
		for _, p := range fd.Type.Params.List {
			t := p.Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			id, ok := t.(*ast.Ident)
			if !ok {
				continue
			}
			if _, declared := tr.fields[id.Name]; !declared {
				continue
			}
			for _, name := range p.Names {
				tr.params[name.Name] = id.Name
			}
		}
	}
	return tr
}

// typeOf returns the same-package struct type name of expr, or "".
func (tr *typeResolver) typeOf(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		if e.Name == tr.recvName && tr.recvName != "" {
			return tr.recvType
		}
		return tr.params[e.Name]
	case *ast.SelectorExpr:
		base := tr.typeOf(e.X)
		if base == "" {
			return ""
		}
		ft := strings.TrimPrefix(tr.fields[base][e.Sel.Name], "*")
		if _, declared := tr.fields[ft]; declared {
			return ft
		}
	case *ast.ParenExpr:
		return tr.typeOf(e.X)
	}
	return ""
}
