package ltlint

import (
	"go/ast"
	"go/token"
)

// CountersSync enforces the lockstep of the stats/wire/metrics counter
// triple — the PR 3 bug class (CommitFailures/RowsLost existed in core
// but reached neither the wire protocol nor /metrics) made structurally
// impossible. For every atomic.Int64 counter field of core.Stats it
// requires:
//
//   - a same-named field in core.StatsSnapshot and an entry in the
//     Snapshot() copy literal (else snapshots silently read zero),
//   - the name to appear in internal/wire's non-test sources (the
//     StatsResult encoding), and
//   - the name to appear in internal/server's non-test sources (the
//     Prometheus exporter / stats handler).
//
// A counter that is deliberately core-only carries an //ltlint:ignore
// counterssync on its declaration line, with the reason in the open.
var CountersSync = &Analyzer{
	Name: "counterssync",
	Doc: "every core.Stats counter must reach the wire StatsResult and the " +
		"Prometheus exporter, or operators fly blind on exactly the failures §5 counts",
	Run: runCountersSync,
}

type counterField struct {
	name string
	pos  token.Pos
}

func runCountersSync(p *Pass) error {
	mod := p.Prog.ModPath
	corePkg := p.Prog.Package(mod + "/internal/core")
	if corePkg == nil {
		return nil
	}
	counters := atomicCounterFields(corePkg, "Stats")
	if len(counters) == 0 {
		return nil
	}
	snapFields := structFieldNames(corePkg, "StatsSnapshot")
	snapLit := snapshotLiteralKeys(corePkg, "Snapshot", "StatsSnapshot")

	wirePkg := p.Prog.Package(mod + "/internal/wire")
	serverPkg := p.Prog.Package(mod + "/internal/server")
	var wireIdents, serverIdents map[string]bool
	if wirePkg != nil {
		wireIdents = packageIdents(wirePkg)
	}
	if serverPkg != nil {
		serverIdents = packageIdents(serverPkg)
	}

	for _, fld := range counters {
		name := fld.name
		if snapFields != nil && !snapFields[name] {
			p.Reportf(fld.pos, "stats counter %s has no StatsSnapshot field; Snapshot() callers will never see it", name)
		}
		if snapLit != nil && !snapLit[name] {
			p.Reportf(fld.pos, "stats counter %s is not copied in Snapshot(); snapshots read it as zero", name)
		}
		switch {
		case wirePkg == nil:
			p.Reportf(fld.pos, "stats counter %s: package %s/internal/wire not found to carry it", name, mod)
		case !wireIdents[name]:
			p.Reportf(fld.pos, "stats counter %s is not encoded in internal/wire; add it to StatsResult and its Encode/Decode", name)
		}
		switch {
		case serverPkg == nil:
			p.Reportf(fld.pos, "stats counter %s: package %s/internal/server not found to export it", name, mod)
		case !serverIdents[name]:
			p.Reportf(fld.pos, "stats counter %s is not exported by internal/server; add it to the stats handler and WriteMetrics", name)
		}
	}
	return nil
}

// structType finds the named struct type's declaration in the package's
// non-test files.
func structType(pkg *Package, typeName string) *ast.StructType {
	for _, f := range pkg.Files {
		if f.IsTest {
			continue
		}
		for _, decl := range f.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != typeName {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}

// atomicCounterFields returns the atomic.Int64 fields of the named struct,
// in declaration order.
func atomicCounterFields(pkg *Package, typeName string) []counterField {
	st := structType(pkg, typeName)
	if st == nil {
		return nil
	}
	var out []counterField
	for _, fld := range st.Fields.List {
		sel, ok := fld.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Int64" {
			continue
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "atomic" {
			continue
		}
		for _, name := range fld.Names {
			out = append(out, counterField{name: name.Name, pos: name.Pos()})
		}
	}
	return out
}

// structFieldNames returns the field-name set of the named struct, or nil
// if the type is absent.
func structFieldNames(pkg *Package, typeName string) map[string]bool {
	st := structType(pkg, typeName)
	if st == nil {
		return nil
	}
	out := make(map[string]bool)
	for _, fld := range st.Fields.List {
		for _, name := range fld.Names {
			out[name.Name] = true
		}
	}
	return out
}

// snapshotLiteralKeys returns the keys of the resultType composite
// literal inside the named method, or nil if no such method exists.
func snapshotLiteralKeys(pkg *Package, method, resultType string) map[string]bool {
	for _, f := range pkg.Files {
		if f.IsTest {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != method || fd.Recv == nil || fd.Body == nil {
				continue
			}
			var keys map[string]bool
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cl, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				if id, ok := cl.Type.(*ast.Ident); !ok || id.Name != resultType {
					return true
				}
				if keys == nil {
					keys = make(map[string]bool)
				}
				for _, elt := range cl.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							keys[id.Name] = true
						}
					}
				}
				return true
			})
			if keys != nil {
				return keys
			}
		}
	}
	return nil
}

// packageIdents collects every identifier appearing in the package's
// non-test files — the loosest useful notion of "this package mentions
// the counter", robust to how the encoding is written.
func packageIdents(pkg *Package) map[string]bool {
	out := make(map[string]bool)
	for _, f := range pkg.Files {
		if f.IsTest {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				out[id.Name] = true
			}
			return true
		})
	}
	return out
}
