package ltlint

import (
	"go/ast"
)

// CtxProp enforces the cancellation chain built in PR 2 and extended to
// the wire layer in PR 6: a query's context threads
// client→server→core→tablet→vfs so an abandoned request stops consuming
// sockets and disk. A context.Background()/TODO() inside the checked
// packages severs that chain — reads, block loads, and prefetch pipelines
// spawned under it outlive the caller. The only sanctioned uses are the
// designated roots: the public context-free API shims and the server's
// BaseContext fallback, each carrying an //ltlint:ignore with its
// justification.
var CtxProp = &Analyzer{
	Name: "ctxprop",
	Doc: "context.Background()/TODO() inside internal/{core,tablet,client,server} " +
		"severs the client→server→core→tablet→vfs cancellation chain; thread the caller's context",
	Run: runCtxProp,
}

func runCtxProp(p *Pass) error {
	mod := p.Prog.ModPath
	checked := map[string]bool{
		mod + "/internal/core":   true,
		mod + "/internal/tablet": true,
		mod + "/internal/client": true,
		mod + "/internal/server": true,
	}
	for _, pkg := range p.Prog.Pkgs {
		if !checked[pkg.PkgPath] {
			continue
		}
		for _, f := range pkg.Files {
			if f.IsTest {
				continue
			}
			imports := importNames(f.AST)
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, sel, ok := pkgCall(call)
				if !ok || imports[name] != "context" {
					return true
				}
				if sel == "Background" || sel == "TODO" {
					p.Reportf(call.Pos(), "context.%s() severs the client→server→core→tablet→vfs "+
						"cancellation chain; thread the caller's context instead", sel)
				}
				return true
			})
		}
	}
	return nil
}
