package ltlint

import (
	"go/ast"
)

// CtxProp enforces the cancellation chain built in PR 2: a server query's
// QueryCtx threads core→tablet→vfs so an abandoned query stops consuming
// disk. A context.Background()/TODO() inside internal/core or
// internal/tablet severs that chain — block loads and prefetch pipelines
// spawned under it outlive the caller. The only sanctioned use is the
// public context-free API shim (Table.Query wrapping QueryCtx), which
// carries an //ltlint:ignore with that justification.
var CtxProp = &Analyzer{
	Name: "ctxprop",
	Doc: "context.Background()/TODO() inside internal/core or internal/tablet " +
		"severs the core→tablet→vfs cancellation chain; thread the caller's QueryCtx",
	Run: runCtxProp,
}

func runCtxProp(p *Pass) error {
	mod := p.Prog.ModPath
	checked := map[string]bool{
		mod + "/internal/core":   true,
		mod + "/internal/tablet": true,
	}
	for _, pkg := range p.Prog.Pkgs {
		if !checked[pkg.PkgPath] {
			continue
		}
		for _, f := range pkg.Files {
			if f.IsTest {
				continue
			}
			imports := importNames(f.AST)
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, sel, ok := pkgCall(call)
				if !ok || imports[name] != "context" {
					return true
				}
				if sel == "Background" || sel == "TODO" {
					p.Reportf(call.Pos(), "context.%s() severs the core→tablet→vfs cancellation "+
						"chain; thread the caller's QueryCtx instead", sel)
				}
				return true
			})
		}
	}
	return nil
}
