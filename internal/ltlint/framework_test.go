package ltlint_test

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"littletable/internal/ltlint"
	"littletable/internal/ltlint/lttest"
)

// TestStaleIgnoreTracking pins the -check-stale-ignores contract: a
// directive that suppresses a finding is marked used; one sitting on
// clean code is reported stale.
func TestStaleIgnoreTracking(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "littletable/internal/server/a.go", `package server

func used(c chan int) {
	//ltlint:ignore gotrack owner closes c on shutdown
	go func() { <-c }()
}

func clean(c chan int) {
	//ltlint:ignore gotrack this directive suppresses nothing
	_ = c
}
`)
	prog, err := ltlint.LoadTree(dir, lttest.ModPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ltlint.RunAll(prog, []*ltlint.Analyzer{ltlint.GoTrack})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 0 {
		t.Fatalf("want no findings, got %v", res.Diags)
	}
	stale := res.StaleIgnores()
	if len(stale) != 1 {
		t.Fatalf("want exactly one stale directive, got %d: %+v", len(stale), stale)
	}
	if stale[0].Pos.Line != 9 {
		t.Errorf("stale directive reported at line %d, want 9", stale[0].Pos.Line)
	}
	if len(res.Ignores) != 2 {
		t.Errorf("want 2 directives total, got %d", len(res.Ignores))
	}
}

func testDiags() []ltlint.Diagnostic {
	return []ltlint.Diagnostic{
		{Pos: token.Position{Filename: "/mod/internal/core/a.go", Line: 10, Column: 2}, Rule: "gotrack", Message: "first finding"},
		{Pos: token.Position{Filename: "/mod/internal/router/b.go", Line: 20, Column: 5}, Rule: "lockorder", Message: "second finding"},
	}
}

func testRel(abs string) string { return strings.TrimPrefix(abs, "/mod/") }

// TestBaselineRoundTrip exercises the ratchet: current findings filter
// to nothing against their own baseline, a moved finding stays filtered
// (entries are line-independent), a fixed finding surfaces as stale, and
// a new finding is kept.
func TestBaselineRoundTrip(t *testing.T) {
	diags := testDiags()
	b := ltlint.NewBaseline(diags, testRel)
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ltlint.LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	kept, stale := loaded.Filter(diags, testRel)
	if len(kept) != 0 || len(stale) != 0 {
		t.Fatalf("self-filter: want 0 kept + 0 stale, got %d + %d", len(kept), len(stale))
	}

	moved := testDiags()
	moved[0].Pos.Line = 99
	kept, stale = loaded.Filter(moved, testRel)
	if len(kept) != 0 || len(stale) != 0 {
		t.Fatalf("moved finding resurrected: %d kept, %d stale", len(kept), len(stale))
	}

	kept, stale = loaded.Filter(diags[:1], testRel)
	if len(kept) != 0 || len(stale) != 1 || stale[0].Rule != "lockorder" {
		t.Fatalf("fixed finding: want 1 stale lockorder entry, got kept=%v stale=%v", kept, stale)
	}

	fresh := append(testDiags(), ltlint.Diagnostic{
		Pos: token.Position{Filename: "/mod/internal/core/c.go", Line: 3}, Rule: "vfsonly", Message: "new finding",
	})
	kept, stale = loaded.Filter(fresh, testRel)
	if len(kept) != 1 || kept[0].Rule != "vfsonly" || len(stale) != 0 {
		t.Fatalf("new finding: want it kept, got kept=%v stale=%v", kept, stale)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := ltlint.WriteJSON(&buf, testDiags(), testRel); err != nil {
		t.Fatal(err)
	}
	var out []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 2 || out[0].File != "internal/core/a.go" || out[0].Rule != "gotrack" || out[1].Line != 20 {
		t.Fatalf("unexpected JSON output: %+v", out)
	}
}

func TestWriteSARIF(t *testing.T) {
	var buf bytes.Buffer
	if err := ltlint.WriteSARIF(&buf, ltlint.All(), testDiags(), testRel); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid SARIF JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF shell: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "ltlint" || len(run.Tool.Driver.Rules) != 10 {
		t.Fatalf("driver: name=%q rules=%d, want ltlint with 10 rules", run.Tool.Driver.Name, len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 2 || run.Results[0].RuleID != "gotrack" || run.Results[0].Level != "error" {
		t.Fatalf("unexpected results: %+v", run.Results)
	}
	loc := run.Results[1].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/router/b.go" || loc.Region.StartLine != 20 {
		t.Fatalf("unexpected location: %+v", loc)
	}
}
