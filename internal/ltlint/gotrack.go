package ltlint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoTrack requires every `go` statement in the engine's long-lived layers
// (core, server, router, client) to be tied to a sync.WaitGroup so that
// Shutdown/Drain/Close can prove quiescence. PR 6's drain contract —
// "finish in-flight work, then return" — and PR 8's Close both end in a
// wg.Wait(); a goroutine spawned outside any WaitGroup is invisible to
// them, and a "graceful" shutdown returns while it still runs.
//
// A spawn is considered tracked when, within the enclosing function, a
// WaitGroup Add(...) call precedes the `go` statement, or the spawned
// literal's body defers a WaitGroup Done(). WaitGroup-ness is resolved
// through the receiver's struct fields where possible and falls back to
// the naming convention (an identifier containing "wg" or "WaitGroup").
// Goroutines with a deliberate non-WaitGroup lifecycle (a channel the
// parent closes, a context the parent cancels *and observes*) carry an
// //ltlint:ignore gotrack naming that owner.
var GoTrack = &Analyzer{
	Name: "gotrack",
	Doc: "every goroutine in core/server/router/client must be tied to a " +
		"WaitGroup (or an annotated lifecycle owner), or drain/Shutdown cannot prove quiescence",
	Run: runGoTrack,
}

// goTrackPkgs are the layers whose goroutines shutdown paths must drain.
var goTrackPkgs = []string{
	"/internal/core",
	"/internal/server",
	"/internal/router",
	"/internal/client",
}

func runGoTrack(p *Pass) error {
	mod := p.Prog.ModPath
	for _, suffix := range goTrackPkgs {
		pkg := p.Prog.Package(mod + suffix)
		if pkg == nil {
			continue
		}
		fields := structFieldTypes(pkg)
		for _, f := range pkg.Files {
			if f.IsTest {
				continue
			}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkGoTrackFunc(p, fd, fields)
			}
		}
	}
	return nil
}

// checkGoTrackFunc flags untracked go statements inside one declaration.
func checkGoTrackFunc(p *Pass, fd *ast.FuncDecl, fields map[string]map[string]string) {
	recvName, recvType := receiverOf(fd)
	isWG := func(expr ast.Expr) bool {
		// Resolve x or t.x against the receiver's struct fields first;
		// fall back to the naming convention.
		if sel, ok := expr.(*ast.SelectorExpr); ok && recvName != "" {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == recvName {
				if t := fields[recvType][sel.Sel.Name]; t != "" {
					return strings.Contains(t, "WaitGroup")
				}
			}
		}
		text := strings.ToLower(types.ExprString(expr))
		return strings.Contains(text, "wg") || strings.Contains(text, "waitgroup")
	}

	// Collect WaitGroup Add positions anywhere in the declaration: an Add
	// in the same function body textually before the spawn counts, even
	// across nested literals (the common `wg.Add(1); go func(){...}()`
	// shape and its loop variants).
	var addPositions []int
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" && isWG(sel.X) {
			addPositions = append(addPositions, int(call.Pos()))
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		tracked := false
		for _, pos := range addPositions {
			if pos < int(gs.Pos()) {
				tracked = true
				break
			}
		}
		if !tracked {
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					d, ok := m.(*ast.DeferStmt)
					if !ok {
						return true
					}
					if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && isWG(sel.X) {
						tracked = true
						return false
					}
					return true
				})
			}
		}
		if !tracked {
			p.Reportf(gs.Pos(), "goroutine is not tied to a WaitGroup; Shutdown/drain cannot prove quiescence — "+
				"Add before the spawn and defer Done in the body, or annotate the lifecycle owner with //ltlint:ignore gotrack")
		}
		return true
	})
}
