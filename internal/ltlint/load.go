package ltlint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// LoadModule parses every package of the module rooted at root (the
// directory holding go.mod) into a Program. It is a deliberately small
// stand-in for golang.org/x/tools/go/packages: a filesystem walk plus
// go/parser, which is all a dependency-free module needs. Build tags are
// not evaluated — every .go file in a package directory is parsed, which
// for a linter errs on the side of seeing more code, not less.
func LoadModule(root string) (*Program, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: token.NewFileSet(), ModPath: modPath}
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loadDir(prog.Fset, dir, pkgPath)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			prog.Pkgs = append(prog.Pkgs, pkg)
		}
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].PkgPath < prog.Pkgs[j].PkgPath })
	return prog, nil
}

// LoadTree parses a GOPATH-style fixture tree: every directory under src
// becomes a package whose import path is its path relative to src. The
// lttest runner uses this to load testdata/src fixtures, mirroring
// analysistest's layout.
func LoadTree(src, modPath string) (*Program, error) {
	prog := &Program{Fset: token.NewFileSet(), ModPath: modPath}
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() || path == src {
			return nil
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		pkg, err := loadDir(prog.Fset, path, filepath.ToSlash(rel))
		if err != nil {
			return err
		}
		if pkg != nil {
			prog.Pkgs = append(prog.Pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].PkgPath < prog.Pkgs[j].PkgPath })
	return prog, nil
}

// loadDir parses the .go files directly in dir, or returns nil if there
// are none.
func loadDir(fset *token.FileSet, dir, pkgPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{PkgPath: pkgPath, Dir: dir}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("ltlint: parse %s: %w", path, err)
		}
		pkg.Files = append(pkg.Files, &SourceFile{
			Path:   path,
			AST:    f,
			IsTest: strings.HasSuffix(e.Name(), "_test.go"),
		})
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

var moduleLine = regexp.MustCompile(`(?m)^module\s+(\S+)\s*$`)

func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	m := moduleLine.FindSubmatch(b)
	if m == nil {
		return "", fmt.Errorf("ltlint: no module line in %s", gomod)
	}
	return string(m[1]), nil
}

// FindModuleRoot walks upward from dir to the nearest directory holding a
// go.mod, for the cmd/ltlint entry point.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("ltlint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// inspectNonTest applies fn to every non-test file of every package.
func inspectNonTest(prog *Program, fn func(pkg *Package, f *SourceFile, n ast.Node) bool) {
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			if f.IsTest {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool { return fn(pkg, f, n) })
		}
	}
}
