package ltlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockHold flags the deadlock shape the write pipeline must avoid:
// blocking on a channel — send, receive, or a select with no default —
// or on a sync.WaitGroup while holding a mutex. A flush worker that
// needs that same mutex to make progress can then never run, and the
// group-commit queue wedges behind the lock (DESIGN §9).
//
// The analysis is syntactic but lock-flow aware: within each function it
// tracks `x.Lock()` / `x.RLock()` acquisitions through the statement
// list (including `defer x.Unlock()`), and checks statements in held
// regions. Nested blocks are scanned with a branch-local copy of the
// held set, so an unlock inside one branch does not leak out.
// sync.Cond.Wait is exempt — it releases the mutex while parked — and
// receivers are resolved against the method receiver's struct fields to
// tell Cond from WaitGroup; unresolvable receivers are skipped rather
// than guessed. Bodies of `go` statements and of function literals that
// are not immediately invoked run outside the critical section and are
// scanned as their own roots.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc: "a blocking channel op or WaitGroup wait while holding a mutex wedges " +
		"the flush pipeline behind the lock (DESIGN §9's deadlock shape)",
	Run: runLockHold,
}

func runLockHold(p *Pass) error {
	for _, pkg := range p.Prog.Pkgs {
		fields := structFieldTypes(pkg)
		for _, f := range pkg.Files {
			if f.IsTest {
				continue
			}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				sc := &lockScan{pass: p, fields: fields}
				sc.recvName, sc.recvType = receiverOf(fd)
				sc.scanBlock(fd.Body.List, nil)
			}
			// Function literals run on their own goroutine or at call
			// time; scan each as an independent root so locks taken
			// inside them are still checked.
			ast.Inspect(f.AST, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
					sc := &lockScan{pass: p, fields: fields}
					sc.scanBlock(lit.Body.List, nil)
				}
				return true
			})
		}
	}
	return nil
}

type lockScan struct {
	pass     *Pass
	fields   map[string]map[string]string // struct name → field → type text
	recvName string                       // method receiver identifier, e.g. "t"
	recvType string                       // method receiver struct name, e.g. "Table"
}

// scanBlock walks stmts in order, maintaining the set of held lock
// receivers, and checks statements inside held regions for blocking
// operations. held maps the printed receiver expression ("t.mu") to true.
func (sc *lockScan) scanBlock(stmts []ast.Stmt, held map[string]bool) {
	held = copySet(held)
	for _, stmt := range stmts {
		if recv, kind, ok := lockOp(stmt); ok {
			switch kind {
			case "Lock", "RLock":
				held[recv] = true
			case "Unlock", "RUnlock":
				delete(held, recv)
			}
			continue
		}
		if d, ok := stmt.(*ast.DeferStmt); ok {
			// `defer x.Unlock()` holds the lock to function exit: the
			// held region simply extends to the end of this list.
			if _, kind, ok := deferredUnlock(d); ok && (kind == "Unlock" || kind == "RUnlock") {
				continue
			}
		}
		sc.scanStmt(stmt, held)
	}
}

// scanStmt dispatches one statement: composite statements recurse with a
// branch-local held set; leaves are checked for blocking ops when a lock
// is held.
func (sc *lockScan) scanStmt(stmt ast.Stmt, held map[string]bool) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		sc.scanBlock(s.List, held)
	case *ast.LabeledStmt:
		sc.scanStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			sc.scanStmt(s.Init, held)
		}
		sc.checkExpr(s.Cond, held)
		sc.scanBlock(s.Body.List, held)
		if s.Else != nil {
			sc.scanStmt(s.Else, held)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			sc.scanStmt(s.Init, held)
		}
		if s.Cond != nil {
			sc.checkExpr(s.Cond, held)
		}
		if s.Post != nil {
			sc.scanStmt(s.Post, held)
		}
		sc.scanBlock(s.Body.List, held)
	case *ast.RangeStmt:
		sc.checkExpr(s.X, held)
		sc.scanBlock(s.Body.List, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			sc.scanStmt(s.Init, held)
		}
		if s.Tag != nil {
			sc.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				sc.scanBlock(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				sc.scanBlock(cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			sc.pass.Reportf(s.Pos(), "blocking select while holding %s; the flush pipeline "+
				"can wedge behind the lock — release it first or add a default case", heldNames(held))
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				// The comm op itself is select-guarded; clause bodies
				// run with the lock still held.
				sc.scanBlock(cc.Body, held)
			}
		}
	case *ast.GoStmt:
		// The spawned body runs outside the critical section; it is
		// scanned as its own root in runLockHold.
	default:
		if len(held) > 0 {
			sc.checkExpr(stmt, held)
		}
	}
}

// checkExpr inspects a leaf statement or expression for blocking
// operations while locks in held are taken.
func (sc *lockScan) checkExpr(n ast.Node, held map[string]bool) {
	if n == nil || len(held) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch e := m.(type) {
		case *ast.FuncLit:
			return false // not executed here unless immediately invoked (see CallExpr)
		case *ast.SendStmt:
			sc.pass.Reportf(e.Pos(), "channel send while holding %s; the flush pipeline "+
				"can wedge behind the lock — release it first or use a select with default", heldNames(held))
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				sc.pass.Reportf(e.Pos(), "channel receive while holding %s; the flush pipeline "+
					"can wedge behind the lock — release it before waiting", heldNames(held))
			}
		case *ast.SelectStmt:
			if !selectHasDefault(e) {
				sc.pass.Reportf(e.Pos(), "blocking select while holding %s; the flush pipeline "+
					"can wedge behind the lock — release it first or add a default case", heldNames(held))
			}
			return false
		case *ast.CallExpr:
			if lit, ok := e.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked literal: its body runs here,
				// under the lock.
				sc.scanBlock(lit.Body.List, held)
			}
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if t := sc.resolveType(sel.X); strings.Contains(t, "WaitGroup") {
					sc.pass.Reportf(e.Pos(), "%s.Wait() while holding %s; a WaitGroup wait "+
						"under the lock deadlocks against workers that need it", types.ExprString(sel.X), heldNames(held))
				}
			}
		}
		return true
	})
}

// resolveType returns the declared type text of expr when it is a field
// of the method receiver ("t.flushCond" → "*sync.Cond"), else "".
func (sc *lockScan) resolveType(expr ast.Expr) string {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sc.recvName == "" {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != sc.recvName {
		return ""
	}
	return sc.fields[sc.recvType][sel.Sel.Name]
}

// lockOp matches `x.Lock()` / `x.Unlock()` / RLock / RUnlock expression
// statements, returning the printed receiver and the operation.
func lockOp(stmt ast.Stmt) (recv, kind string, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return "", "", false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return types.ExprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

// deferredUnlock matches `defer x.Unlock()` / `defer x.RUnlock()`.
func deferredUnlock(d *ast.DeferStmt) (recv, kind string, ok bool) {
	sel, isSel := d.Call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), sel.Sel.Name, true
	}
	return "", "", false
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// receiverOf returns the method receiver's identifier name and struct
// type name ("t", "Table"), or empty strings for plain functions.
func receiverOf(fd *ast.FuncDecl) (name, typeName string) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return "", ""
	}
	field := fd.Recv.List[0]
	if len(field.Names) > 0 {
		name = field.Names[0].Name
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		typeName = id.Name
	}
	return name, typeName
}

// structFieldTypes maps every struct type in the package's non-test files
// to its field→type-text table, the lookup behind Cond/WaitGroup
// discrimination.
func structFieldTypes(pkg *Package) map[string]map[string]string {
	out := make(map[string]map[string]string)
	for _, f := range pkg.Files {
		if f.IsTest {
			continue
		}
		for _, decl := range f.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				m := make(map[string]string)
				for _, fld := range st.Fields.List {
					text := types.ExprString(fld.Type)
					for _, fname := range fld.Names {
						m[fname.Name] = text
					}
				}
				out[ts.Name.Name] = m
			}
		}
	}
	return out
}
