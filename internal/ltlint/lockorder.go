package ltlint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockOrder builds the whole-program lock-acquisition graph and enforces
// two invariants the distributed layer depends on:
//
//  1. No ordering cycles. Every acquisition of lock class B while class A
//     is held adds the edge A→B; two functions that disagree about the
//     order (A→B somewhere, B→A elsewhere) can deadlock the moment they
//     run concurrently, and with RWMutexes even read/read cycles wedge
//     once a writer queues between them.
//
//  2. No durable-file I/O while a routing or table mutex is held. The PR 5
//     280x foreground-insert p99 regression was exactly this shape: a
//     descriptor fsync inside the table lock stalls every insert behind
//     disk latency. The rule flags any function that directly performs
//     Create/Rename/SyncDir and is reachable (over the call graph, with
//     held-lock sets propagated through call chains) while a mutex field
//     named `mu` or `pmu` is held. Deliberate foreground commit points
//     carry an //ltlint:ignore lockorder with the reason in the open.
//
// Lock classes are (package, struct type, field) triples resolved through
// the receiver and parameters, so core.Table.mu and router.Router.pmu are
// distinct classes while every *instance* of a Table shares one. Receivers
// the resolver cannot bind contribute nothing — the analysis only reports
// what the syntax proves.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "lock-acquisition cycles and durable-file I/O under a table/placement " +
		"mutex deadlock or stall the data path (the PR 5 280x p99 bug class)",
	Run: runLockOrder,
}

// lockAcq is one lock acquisition with the classes already held there.
type lockAcq struct {
	class string
	held  []string
	pos   token.Pos
}

// lockCall is one resolved call with the classes held at the call site.
type lockCall struct {
	callee string
	held   []string
	pos    token.Pos
}

// lockSummary is the per-function fact sheet the propagation pass works on.
type lockSummary struct {
	fn       *FuncNode
	acquires []lockAcq
	calls    []lockCall
	ioHeld   [][]string // held-class sets at direct Create/Rename/SyncDir calls
	directIO bool
}

func runLockOrder(p *Pass) error {
	cg := BuildCallGraph(p.Prog)
	sums := make(map[string]*lockSummary, len(cg.Funcs))
	for key, fn := range cg.Funcs {
		sum := &lockSummary{fn: fn}
		sc := &orderScan{
			res:     newTypeResolver(fn.Pkg, fn.Decl),
			fields:  structFieldTypes(fn.Pkg),
			pkgPath: fn.Pkg.PkgPath,
			modPath: p.Prog.ModPath,
			node:    fn,
			sum:     sum,
		}
		sc.scanBlock(fn.Decl.Body.List, nil)
		sums[key] = sum
	}

	// Propagate held-at-entry sets through call chains to a fixed point:
	// if f calls g while holding A, then everything g does happens with A
	// held too. entrySrc remembers one caller per inherited class for the
	// diagnostic message.
	entry := make(map[string]map[string]bool)
	entrySrc := make(map[string]map[string]string)
	work := make([]string, 0, len(sums))
	for key := range sums {
		work = append(work, key)
	}
	sort.Strings(work) // deterministic order → deterministic exemplar callers
	for len(work) > 0 {
		key := work[0]
		work = work[1:]
		sum := sums[key]
		if sum == nil {
			continue
		}
		for _, c := range sum.calls {
			if sums[c.callee] == nil {
				continue // unresolved or external callee: propagate nothing
			}
			grew := false
			for _, h := range unionHeld(entry[key], c.held) {
				if entry[c.callee] == nil {
					entry[c.callee] = make(map[string]bool)
					entrySrc[c.callee] = make(map[string]string)
				}
				if !entry[c.callee][h] {
					entry[c.callee][h] = true
					entrySrc[c.callee][h] = key
					grew = true
				}
			}
			if grew {
				work = append(work, c.callee)
			}
		}
	}

	// Rule 1: collect the class-order edges and report every edge that
	// sits on a cycle, once per ordered pair, at an exemplar acquisition.
	type edge struct{ from, to string }
	type exemplar struct {
		pos token.Pos
		fn  string
	}
	edges := make(map[edge]exemplar)
	adj := make(map[string][]string)
	for _, key := range sortedSumKeys(sums) {
		sum := sums[key]
		for _, acq := range sum.acquires {
			for _, h := range unionHeld(entry[key], acq.held) {
				if h == acq.class {
					// Same class on two instances (lock coupling) is a
					// legitimate pattern the resolver cannot tell from
					// self-deadlock; skip rather than guess.
					continue
				}
				e := edge{from: h, to: acq.class}
				if _, dup := edges[e]; !dup {
					edges[e] = exemplar{pos: acq.pos, fn: key}
					adj[e.from] = append(adj[e.from], e.to)
				}
			}
		}
	}
	for e, ex := range edges {
		if reaches(adj, e.to, e.from) {
			p.Reportf(ex.pos, "lock order cycle: %s acquired while %s is held, but elsewhere %s is acquired while %s is held — pick one order",
				e.to, e.from, e.from, e.to)
		}
	}

	// Rule 2: durable I/O while a data-path mutex (field `mu` or `pmu`)
	// is held, directly or via callers.
	for _, key := range sortedSumKeys(sums) {
		sum := sums[key]
		if !sum.directIO {
			continue
		}
		bad := make(map[string]string) // class → how it got here
		for _, held := range sum.ioHeld {
			for _, h := range held {
				if dataPathMutex(h) {
					bad[h] = "held locally"
				}
			}
		}
		for h := range entry[key] {
			if dataPathMutex(h) {
				if _, have := bad[h]; !have {
					bad[h] = "held by caller " + entrySrc[key][h]
				}
			}
		}
		for _, h := range sortedStrMapKeys(bad) {
			p.Reportf(sum.fn.Decl.Name.Pos(),
				"%s performs durable file I/O (Create/Rename/SyncDir) while %s is %s; an fsync under the data-path lock stalls every request behind disk latency — persist outside it (DESIGN §11)",
				sum.fn.Decl.Name.Name, h, bad[h])
		}
	}
	return nil
}

// dataPathMutex reports whether a lock class is a per-request data-path
// mutex: the table lock (`mu`) or the router's placement lock (`pmu`).
// Commit-side locks (descMu, maintMu, insertMu, ...) exist precisely to
// be held across I/O.
func dataPathMutex(class string) bool {
	return strings.HasSuffix(class, ".mu") || strings.HasSuffix(class, ".pmu")
}

func unionHeld(entry map[string]bool, local []string) []string {
	out := make([]string, 0, len(entry)+len(local))
	seen := make(map[string]bool, len(entry)+len(local))
	for h := range entry {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	for _, h := range local {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	sort.Strings(out)
	return out
}

func reaches(adj map[string][]string, from, to string) bool {
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == to {
			return true
		}
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}

func sortedSumKeys(m map[string]*lockSummary) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedStrMapKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// orderScan walks one function's statements in order, tracking which lock
// classes are held (lockhold's scanner discipline: branch-local copies,
// defer-unlock extends to block end) and recording acquisitions, resolved
// calls, and direct durable-I/O sites with their held sets.
type orderScan struct {
	res     *typeResolver
	fields  map[string]map[string]string
	pkgPath string
	modPath string
	node    *FuncNode
	sum     *lockSummary
}

// classOf resolves a lock receiver expression ("t.mu") to its class key
// ("pkg.Table.mu"), or "" when the base type or a Mutex-typed field
// cannot be proven.
func (sc *orderScan) classOf(expr ast.Expr) string {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	base := sc.res.typeOf(sel.X)
	if base == "" {
		return ""
	}
	if !strings.Contains(sc.fields[base][sel.Sel.Name], "Mutex") {
		return ""
	}
	return sc.pkgPath + "." + base + "." + sel.Sel.Name
}

// heldClasses flattens the held map (printed expr → class) to its
// resolved class set.
func heldClasses(held map[string]string) []string {
	var out []string
	for _, cls := range held {
		if cls != "" {
			out = append(out, cls)
		}
	}
	sort.Strings(out)
	return out
}

// scanBlock mirrors lockhold's scanner: held maps the printed receiver
// expression to its resolved class ("" when unresolved, still tracked so
// its Unlock matches).
func (sc *orderScan) scanBlock(stmts []ast.Stmt, held map[string]string) {
	held = copyStrMap(held)
	for _, stmt := range stmts {
		if recv, kind, ok := lockOp(stmt); ok {
			switch kind {
			case "Lock", "RLock":
				cls := ""
				if expr := lockOpRecvExpr(stmt); expr != nil {
					cls = sc.classOf(expr)
				}
				if cls != "" {
					sc.sum.acquires = append(sc.sum.acquires, lockAcq{
						class: cls, held: heldClasses(held), pos: stmt.Pos(),
					})
				}
				held[recv] = cls
			case "Unlock", "RUnlock":
				delete(held, recv)
			}
			continue
		}
		if d, ok := stmt.(*ast.DeferStmt); ok {
			if _, kind, ok := deferredUnlock(d); ok && (kind == "Unlock" || kind == "RUnlock") {
				continue // lock held to end of this statement list
			}
		}
		sc.scanStmt(stmt, held)
	}
}

// lockOpRecvExpr returns the receiver expression of a lock-op statement
// already matched by lockOp ("t.mu" in `t.mu.Lock()`).
func lockOpRecvExpr(stmt ast.Stmt) ast.Expr {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return sel.X
}

func (sc *orderScan) scanStmt(stmt ast.Stmt, held map[string]string) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		sc.scanBlock(s.List, held)
	case *ast.LabeledStmt:
		sc.scanStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			sc.scanStmt(s.Init, held)
		}
		sc.recordExpr(s.Cond, held)
		sc.scanBlock(s.Body.List, held)
		if s.Else != nil {
			sc.scanStmt(s.Else, held)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			sc.scanStmt(s.Init, held)
		}
		if s.Cond != nil {
			sc.recordExpr(s.Cond, held)
		}
		if s.Post != nil {
			sc.scanStmt(s.Post, held)
		}
		sc.scanBlock(s.Body.List, held)
	case *ast.RangeStmt:
		sc.recordExpr(s.X, held)
		sc.scanBlock(s.Body.List, held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			sc.scanStmt(s.Init, held)
		}
		if s.Tag != nil {
			sc.recordExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				sc.scanBlock(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				sc.scanBlock(cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				sc.scanBlock(cc.Body, held)
			}
		}
	case *ast.GoStmt:
		// The spawned body runs with no inherited locks; literal bodies
		// are scanned as lock-free roots via their own declarations, and
		// calls inside them must not be recorded with this held set.
	default:
		sc.recordExpr(stmt, held)
	}
}

// recordExpr inspects a leaf statement/expression, recording resolved
// calls and direct durable-I/O operations with the current held set.
func (sc *orderScan) recordExpr(n ast.Node, held map[string]string) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch e := m.(type) {
		case *ast.FuncLit:
			return false // runs later, without these locks
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if lit, ok := e.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked literal runs here, under the locks.
				sc.scanBlock(lit.Body.List, held)
			}
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Create", "Rename", "SyncDir":
					if !sc.isModuleHelperCall(e) {
						sc.sum.directIO = true
						sc.sum.ioHeld = append(sc.sum.ioHeld, heldClasses(held))
					}
				}
			}
			if callee := sc.resolveCallee(e); callee != "" {
				sc.sum.calls = append(sc.sum.calls, lockCall{
					callee: callee, held: heldClasses(held), pos: e.Pos(),
				})
			}
		}
		return true
	})
}

// resolveCallee binds a call to a module-internal function key using the
// same resolution rules as BuildCallGraph; unresolvable calls return "".
func (sc *orderScan) resolveCallee(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return sc.pkgPath + "." + fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if path, imported := importNames(sc.node.File.AST)[id.Name]; imported {
				if strings.HasPrefix(path, sc.modPath+"/") || path == sc.modPath {
					return path + "." + fun.Sel.Name
				}
				return ""
			}
		}
		if t := sc.res.typeOf(fun.X); t != "" {
			return sc.pkgPath + "." + t + "." + fun.Sel.Name
		}
	}
	return ""
}

// isModuleHelperCall reports whether call is pkg.Fn(...) on a
// module-internal imported package — a helper function like
// tablet.Create, not a filesystem method.
func (sc *orderScan) isModuleHelperCall(call *ast.CallExpr) bool {
	name, _, ok := pkgCall(call)
	if !ok {
		return false
	}
	path, imported := importNames(sc.node.File.AST)[name]
	return imported && (strings.HasPrefix(path, sc.modPath+"/") || path == sc.modPath)
}

func copyStrMap(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
