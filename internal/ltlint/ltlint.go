// Package ltlint implements LittleTable's project-specific static
// analyzers: machine checks for the discipline rules the paper's guarantees
// rest on. The engine promises prefix durability in insertion order (§5)
// and crash recovery without a WAL; those proofs hold only if every byte of
// file I/O flows through internal/vfs (so FaultFS and the crash harness see
// it), every sync/rename/descriptor-commit error is checked, query contexts
// are threaded core→tablet→vfs, no goroutine blocks on a channel while
// holding the table mutex, and the stats/wire/metrics counter triple stays
// in lockstep. Generic linters cannot express these rules; ltlint can.
//
// The package mirrors the spirit of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf, testdata fixtures with want comments) but is
// self-contained on the standard library, because the repository carries no
// module dependencies. Unlike go/analysis, a Pass sees the whole parsed
// program at once — two of the five rules (counterssync, vfsonly) are
// inherently cross-package, which the per-package go/analysis model makes
// awkward and the whole-program model makes trivial.
//
// Findings are suppressed inline with
//
//	//ltlint:ignore <rule>[,<rule>...] <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory: a suppression without a justification is itself reported.
package ltlint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run inspects the whole
// program via the Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	Name string // short lower-case rule name, used in //ltlint:ignore
	Doc  string // one-paragraph description: the rule and the paper section it protects
	Run  func(*Pass) error
}

// A Pass hands an Analyzer the parsed program and collects its
// diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Prog.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: a position, the rule that fired, and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// A Program is the whole parsed module: every package, with test files
// marked, sharing one FileSet.
type Program struct {
	Fset    *token.FileSet
	ModPath string // module path from go.mod, e.g. "littletable"
	Pkgs    []*Package
}

// Package looks up a package by import path, or nil.
func (prog *Program) Package(path string) *Package {
	for _, pkg := range prog.Pkgs {
		if pkg.PkgPath == path {
			return pkg
		}
	}
	return nil
}

// A Package is one directory of parsed Go files.
type Package struct {
	PkgPath string // import path, e.g. "littletable/internal/core"
	Dir     string
	Files   []*SourceFile
}

// A SourceFile is one parsed file. Analyzers skip IsTest files: tests
// exercise error paths and real filesystems on purpose, and the crash
// harness itself lives in _test.go files.
type SourceFile struct {
	Path   string
	AST    *ast.File
	IsTest bool
}

// ignoreDirective matches //ltlint:ignore <rules> <reason>. The reason is
// required — see reportMalformedIgnores.
var ignoreDirective = regexp.MustCompile(`^//ltlint:ignore\s+([a-z][a-z0-9,_-]*)\s+(\S.*)$`)

// ignoreBare matches a directive missing its reason.
var ignoreBare = regexp.MustCompile(`^//ltlint:ignore(\s+[a-z][a-z0-9,_-]*)?\s*$`)

// An IgnoreDirective is one well-formed //ltlint:ignore comment. Used
// reports whether the directive suppressed at least one finding in the
// last full-suite run — the signal behind cmd/ltlint's
// -check-stale-ignores audit.
type IgnoreDirective struct {
	Pos   token.Position
	Rules []string
	Used  bool
}

// ignoreSet maps "file:line" to the directives suppressing rules there.
type ignoreSet map[string]map[string]*IgnoreDirective

func ignoreKey(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// buildIgnores scans every comment in the program for ltlint:ignore
// directives. A directive suppresses the named rules on its own line and
// on the line directly below it, so both trailing and standalone comment
// placement work.
func buildIgnores(prog *Program) (ignoreSet, []*IgnoreDirective) {
	ig := make(ignoreSet)
	var all []*IgnoreDirective
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					m := ignoreDirective.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					d := &IgnoreDirective{Pos: pos}
					for _, rule := range strings.Split(m[1], ",") {
						rule = strings.TrimSpace(rule)
						if rule == "" {
							continue
						}
						d.Rules = append(d.Rules, rule)
						for _, line := range []int{pos.Line, pos.Line + 1} {
							k := ignoreKey(pos.Filename, line)
							if ig[k] == nil {
								ig[k] = make(map[string]*IgnoreDirective)
							}
							ig[k][rule] = d
						}
					}
					if len(d.Rules) > 0 {
						all = append(all, d)
					}
				}
			}
		}
	}
	return ig, all
}

// reportMalformedIgnores flags ltlint:ignore directives that omit the
// mandatory reason: an unexplained suppression is exactly the silent
// discipline erosion this suite exists to stop.
func reportMalformedIgnores(prog *Program) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.AST.Comments {
				for _, c := range cg.List {
					if ignoreBare.MatchString(c.Text) {
						out = append(out, Diagnostic{
							Pos:     prog.Fset.Position(c.Pos()),
							Rule:    "ltlint",
							Message: "malformed //ltlint:ignore directive: need a rule name and a reason",
						})
					}
				}
			}
		}
	}
	return out
}

// A Result is the outcome of a RunAll: the surviving diagnostics plus
// every well-formed ignore directive with its consumption bit, for the
// stale-suppression audit.
type Result struct {
	Diags   []Diagnostic
	Ignores []*IgnoreDirective
}

// StaleIgnores returns the directives that suppressed nothing. Only
// meaningful when the run covered the full analyzer suite: a partial
// -rules run trivially leaves other rules' directives unconsumed.
func (r *Result) StaleIgnores() []*IgnoreDirective {
	var out []*IgnoreDirective
	for _, d := range r.Ignores {
		if !d.Used {
			out = append(out, d)
		}
	}
	return out
}

// Run executes the analyzers over the program, filters suppressed
// findings, and returns the rest sorted by position. Malformed
// suppressions are reported as rule "ltlint" and cannot themselves be
// suppressed.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := RunAll(prog, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// RunAll is Run plus ignore-consumption tracking: each directive that
// suppressed at least one finding is marked Used, so callers can audit
// for stale suppressions.
func RunAll(prog *Program, analyzers []*Analyzer) (*Result, error) {
	ig, directives := buildIgnores(prog)
	diags := reportMalformedIgnores(prog)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Prog: prog}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("ltlint: %s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if rules := ig[ignoreKey(d.Pos.Filename, d.Pos.Line)]; rules != nil && rules[d.Rule] != nil {
				rules[d.Rule].Used = true
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule+a.Message < b.Rule+b.Message
	})
	// Deduplicate: lockhold can reach the same statement from two scan
	// roots (an immediately-invoked literal is scanned in its enclosing
	// context and as its own root).
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return &Result{Diags: out, Ignores: directives}, nil
}

// All returns the full analyzer suite in stable order: the five
// AST-local rules from the single-node era, then the five whole-program
// invariants guarding the distributed layer (PRs 6–8).
func All() []*Analyzer {
	return []*Analyzer{
		VfsOnly,
		BarrierCheck,
		CountersSync,
		CtxProp,
		LockHold,
		RetrySafe,
		MsgExhaustive,
		LockOrder,
		AtomicPersist,
		GoTrack,
	}
}

// importNames maps each file-local package name to its import path, so
// analyzers resolve `os.Open` correctly even under a renamed import.
func importNames(f *ast.File) map[string]string {
	m := make(map[string]string)
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		m[name] = path
	}
	return m
}

// pkgCall reports whether call is `name.sel(...)` for a plain package
// identifier, returning the local package name and selector.
func pkgCall(call *ast.CallExpr) (pkgName, sel string, ok bool) {
	s, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := s.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	return id.Name, s.Sel.Name, true
}
