// Package lttest runs ltlint analyzers over GOPATH-style fixture trees,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture files
// mark expected findings with trailing
//
//	// want "regexp" ["regexp" ...]
//
// comments, one pattern per expected diagnostic on that line. The runner
// fails the test for every unmatched expectation and every unexpected
// diagnostic, so fixtures prove both that a rule fires on violations and
// that it stays quiet on compliant (or //ltlint:ignore-suppressed) code.
package lttest

import (
	"fmt"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"littletable/internal/ltlint"
)

// ModPath is the module path fixtures are rooted under: a fixture tree's
// testdata/src/littletable/internal/core directory loads as package
// "littletable/internal/core", so analyzers that key on real package
// paths see the paths they expect.
const ModPath = "littletable"

// wantComment matches a want marker and captures the quoted patterns;
// like analysistest, both "double-quoted" and `backquoted` patterns are
// accepted.
var wantComment = regexp.MustCompile("//\\s*want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)\\s*$")

// wantPattern pulls the individual quoted strings out of the capture.
var wantPattern = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture tree at srcdir (a directory of packages, each
// subdirectory path doubling as its import path) and checks the
// analyzer's diagnostics against the tree's want comments.
func Run(t *testing.T, srcdir string, a *ltlint.Analyzer) {
	t.Helper()
	prog, err := ltlint.LoadTree(srcdir, ModPath)
	if err != nil {
		t.Fatalf("lttest: load %s: %v", srcdir, err)
	}
	diags, err := ltlint.Run(prog, []*ltlint.Analyzer{a})
	if err != nil {
		t.Fatalf("lttest: run %s: %v", a.Name, err)
	}
	expects, err := collectWants(prog)
	if err != nil {
		t.Fatalf("lttest: %v", err)
	}

	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.pattern.MatchString(d.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s",
				relTo(srcdir, d.Pos.Filename), d.Pos.Line, d.Rule, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("no diagnostic at %s:%d matching %s",
				relTo(srcdir, e.file), e.line, e.raw)
		}
	}
}

// collectWants re-scans every fixture file's comments for want markers.
// Parsing comments from the already-loaded ASTs would also work, but a
// line scan keeps the marker grammar independent of comment attachment
// subtleties.
func collectWants(prog *ltlint.Program) ([]*expectation, error) {
	var out []*expectation
	fset := token.NewFileSet()
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			af, err := parser.ParseFile(fset, f.Path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			for _, cg := range af.Comments {
				for _, c := range cg.List {
					m := wantComment.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					line := fset.Position(c.Pos()).Line
					for _, q := range wantPattern.FindAllString(m[1], -1) {
						var raw string
						var err error
						if strings.HasPrefix(q, "`") {
							raw = strings.Trim(q, "`")
						} else if raw, err = strconv.Unquote(q); err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", f.Path, line, q, err)
						}
						re, err := regexp.Compile(raw)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want regexp %s: %v", f.Path, line, q, err)
						}
						out = append(out, &expectation{file: f.Path, line: line, pattern: re, raw: q})
					}
				}
			}
		}
	}
	return out, nil
}

func relTo(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
