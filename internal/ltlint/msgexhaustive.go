package ltlint

import (
	"go/ast"
	"go/token"
	"strings"
)

// MsgExhaustive is the counterssync of the wire protocol: adding a
// wire.Msg* constant and forgetting one of the surfaces that must know
// about it is a finding at the constant's declaration. The drift this
// kills showed up three times while building PRs 6–8 — a message the
// server handles but the client cannot classify retries for, a message
// the client sends but the router's dispatch bounces as unknown, a
// response type no decoder ever reads.
//
// Requests (the `iota + 1` block) must appear in:
//
//   - internal/server's dispatch switch — except constants whose
//     declaration comment marks them "router-only";
//   - internal/client's idempotency classification table (every request,
//     router-only included: the client is how anyone talks to a router);
//   - internal/router's dispatch switch (handled locally, forwarded, or
//     listed deliberately).
//
// Responses (the `iota + 64` block) must be referenced somewhere in
// internal/client's non-test sources — a response nobody decodes is
// protocol surface nobody can use.
var MsgExhaustive = &Analyzer{
	Name: "msgexhaustive",
	Doc: "every wire.Msg* constant must reach the server dispatch, the client " +
		"idempotency table, and the router dispatch; unhandled protocol drift is a finding",
	Run: runMsgExhaustive,
}

// wireMsgConst is one Msg* constant with its classification metadata.
type wireMsgConst struct {
	name       string
	pos        token.Pos
	routerOnly bool
}

func runMsgExhaustive(p *Pass) error {
	mod := p.Prog.ModPath
	wirePkg := p.Prog.Package(mod + "/internal/wire")
	if wirePkg == nil {
		return nil
	}
	requests, responses := wireMsgConsts(wirePkg)
	if len(requests) == 0 && len(responses) == 0 {
		return nil
	}

	serverCases := dispatchCases(p.Prog.Package(mod + "/internal/server"))
	routerCases := dispatchCases(p.Prog.Package(mod + "/internal/router"))
	mc := findMsgClassification(p.Prog)
	clientPkg := p.Prog.Package(mod + "/internal/client")
	var clientIdents map[string]bool
	if clientPkg != nil {
		clientIdents = packageIdents(clientPkg)
	}

	for _, c := range requests {
		if serverCases != nil && !c.routerOnly && !serverCases[c.name] {
			p.Reportf(c.pos, "request wire.%s is not handled in internal/server's dispatch switch; "+
				"the server will bounce it as an unknown message type", c.name)
		}
		if mc != nil && !hasEntry(mc, c.name) {
			p.Reportf(c.pos, "request wire.%s is missing from internal/client's idempotency table (%s); "+
				"the retry policy cannot classify it, so a post-send failure behaves arbitrarily", c.name, mc.varName)
		}
		if routerCases != nil && !routerCases[c.name] {
			p.Reportf(c.pos, "request wire.%s is not classified in internal/router's dispatch; "+
				"the router must handle, forward, or deliberately reject it", c.name)
		}
	}
	for _, c := range responses {
		if clientIdents != nil && !clientIdents[c.name] {
			p.Reportf(c.pos, "response wire.%s is never referenced by internal/client; "+
				"a response no client decodes is protocol surface nobody can use", c.name)
		}
	}
	return nil
}

func hasEntry(mc *msgClassification, name string) bool {
	_, present := mc.entries[name]
	return present
}

// wireMsgConsts splits the wire package's Msg* constants into the request
// block (enumerated from `iota + 1`) and the response block (`iota + 64`),
// tagging constants whose declaration comments say "router-only".
func wireMsgConsts(pkg *Package) (requests, responses []wireMsgConst) {
	for _, f := range pkg.Files {
		if f.IsTest {
			continue
		}
		for _, decl := range f.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			block := classifyMsgBlock(gd)
			if block == 0 {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				routerOnly := vs.Comment != nil && strings.Contains(vs.Comment.Text(), "router-only")
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Msg") {
						continue
					}
					c := wireMsgConst{name: name.Name, pos: name.Pos(), routerOnly: routerOnly}
					if block == 1 {
						requests = append(requests, c)
					} else {
						responses = append(responses, c)
					}
				}
			}
		}
	}
	return requests, responses
}

// classifyMsgBlock returns 1 for the request block, 2 for the response
// block, 0 for any other const declaration. The discriminator is the
// first spec's iota expression: `iota + 1` starts requests, `iota + 64`
// starts responses.
func classifyMsgBlock(gd *ast.GenDecl) int {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) == 0 {
			continue
		}
		be, ok := vs.Values[0].(*ast.BinaryExpr)
		if !ok || be.Op != token.ADD {
			return 0
		}
		if id, ok := be.X.(*ast.Ident); !ok || id.Name != "iota" {
			return 0
		}
		lit, ok := be.Y.(*ast.BasicLit)
		if !ok {
			return 0
		}
		switch lit.Value {
		case "1":
			return 1
		case "64":
			return 2
		}
		return 0
	}
	return 0
}

// dispatchCases collects the wire.Msg* names appearing as switch cases in
// the package's dispatch function, or nil when the package or function is
// absent (a program without that tier simply has no such surface).
func dispatchCases(pkg *Package) map[string]bool {
	if pkg == nil {
		return nil
	}
	for _, f := range pkg.Files {
		if f.IsTest {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "dispatch" || fd.Body == nil {
				continue
			}
			out := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cc, ok := n.(*ast.CaseClause)
				if !ok {
					return true
				}
				for _, expr := range cc.List {
					if sel, ok := expr.(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Msg") {
						out[sel.Sel.Name] = true
					}
				}
				return true
			})
			return out
		}
	}
	return nil
}
