package ltlint

import (
	"encoding/json"
	"io"
)

// Machine-readable output for CI: a plain JSON diagnostic array for the
// nightly workflow and scripts, and SARIF 2.1.0 for the GitHub
// code-scanning API, which turns each finding into a PR annotation at
// the offending line.

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// WriteJSON emits diags as a JSON array. rel maps absolute filenames to
// module-relative ones so output is stable across machines.
func WriteJSON(w io.Writer, diags []Diagnostic, rel func(string) string) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:    rel(d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Minimal SARIF 2.1.0 model — only the fields the code-scanning upload
// consumes.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF emits diags as a SARIF 2.1.0 log naming every analyzer as a
// rule (so suppressed-to-zero rules still register with code scanning).
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic, rel func(string) string) error {
	driver := sarifDriver{Name: "ltlint"}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: rel(d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
