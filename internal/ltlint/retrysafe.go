package ltlint

import (
	"go/ast"
	"go/token"
	"strings"
)

// RetrySafe guards the PR 6 retry contract: a request that may have
// reached the socket is only ever re-sent when its message type is
// classified idempotent in the client's classification table. The bug
// this kills is the worst kind the wire layer can grow — a duplicated
// insert after a connection break looks like success everywhere and
// corrupts data silently (DESIGN §12's "sent inserts are never blindly
// replayed").
//
// Four checks:
//
//  1. internal/client must declare exactly one idempotency table: a
//     package-level map[wire.MsgType]bool literal. The table is the
//     single source of truth msgexhaustive audits for completeness.
//  2. Message types that are structurally non-idempotent — inserts,
//     deletes, schema changes, migration installs and cutovers — must
//     not be classified true. The analyzer carries that deny-list so a
//     one-line edit flipping MsgInsert to true is a finding, not a
//     code review hope.
//  3. Every send primitive (a function that both writes and reads a wire
//     message on a connection) must be driven by the classification:
//     some direct caller consults the table (directly or through one
//     helper like retryAfterSend). A primitive whose writes are all
//     hard-coded idempotent types (the pool's Hello health probe) is
//     exempt. This is what keeps a future "quick resend loop" from
//     bypassing the policy.
//  4. Migration installs restart from offset 0: a MigrateInstall call
//     inside a retry loop must have its offset variable reset in the
//     body of that outer loop, never carried across attempts — a
//     replayed chunk corrupts the staging offset on the target.
var RetrySafe = &Analyzer{
	Name: "retrysafe",
	Doc: "requests that reached the socket are re-sent only when the client's " +
		"idempotency table says so; migration installs restart at offset 0 (DESIGN §12)",
	Run: runRetrySafe,
}

// retryNonIdempotent are the message types whose blind replay mutates
// state twice. Keep in sync with the wire protocol's write operations.
var retryNonIdempotent = []string{
	"MsgInsert",
	"MsgDelete",
	"MsgCreateTable",
	"MsgDropTable",
	"MsgAlterTTL",
	"MsgAddColumn",
	"MsgWidenColumn",
	"MsgMigrateInstall",
	"MsgMigrateTable",
}

// msgClassification is the client's idempotency table as found in source.
type msgClassification struct {
	pkg     *Package
	entries map[string]classEntry // wire constant name → entry
	varName string                // the table's identifier
	pos     token.Pos
}

type classEntry struct {
	value bool
	pos   token.Pos
}

// findMsgClassification locates the package-level map[wire.MsgType]bool
// literal in internal/client, or returns nil.
func findMsgClassification(prog *Program) *msgClassification {
	pkg := prog.Package(prog.ModPath + "/internal/client")
	if pkg == nil {
		return nil
	}
	for _, f := range pkg.Files {
		if f.IsTest {
			continue
		}
		for _, decl := range f.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
					continue
				}
				cl, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok || !isMsgTypeBoolMap(cl.Type) {
					continue
				}
				mc := &msgClassification{
					pkg:     pkg,
					entries: make(map[string]classEntry),
					varName: vs.Names[0].Name,
					pos:     vs.Names[0].Pos(),
				}
				for _, elt := range cl.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					sel, ok := kv.Key.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					val := false
					if id, ok := kv.Value.(*ast.Ident); ok {
						val = id.Name == "true"
					}
					mc.entries[sel.Sel.Name] = classEntry{value: val, pos: kv.Pos()}
				}
				return mc
			}
		}
	}
	return nil
}

// isMsgTypeBoolMap matches the type expression map[wire.MsgType]bool
// (modulo the wire import's local name).
func isMsgTypeBoolMap(t ast.Expr) bool {
	mt, ok := t.(*ast.MapType)
	if !ok {
		return false
	}
	key, ok := mt.Key.(*ast.SelectorExpr)
	if !ok || key.Sel.Name != "MsgType" {
		return false
	}
	val, ok := mt.Value.(*ast.Ident)
	return ok && val.Name == "bool"
}

func runRetrySafe(p *Pass) error {
	mod := p.Prog.ModPath
	clientPkg := p.Prog.Package(mod + "/internal/client")
	if clientPkg == nil {
		return nil
	}

	mc := findMsgClassification(p.Prog)
	if mc == nil {
		p.Reportf(clientPkg.Files[0].AST.Package,
			"internal/client declares no idempotency table (a package-level map[wire.MsgType]bool); "+
				"the retry policy has no source of truth to consult")
	} else {
		for _, name := range retryNonIdempotent {
			if e, present := mc.entries[name]; present && e.value {
				p.Reportf(e.pos, "wire.%s is classified idempotent, but replaying it after an unacknowledged "+
					"send mutates state twice (a duplicated insert looks like success everywhere)", name)
			}
		}
		checkSendPrimitives(p, clientPkg, mc)
	}

	checkInstallOffsets(p)
	return nil
}

// checkSendPrimitives finds functions in internal/client that both write
// and read a wire message and verifies each is driven by the
// classification table.
func checkSendPrimitives(p *Pass, pkg *Package, mc *msgClassification) {
	// refsTable: function name (local key "Name" or "Recv.Name") →
	// whether its body mentions the table identifier.
	refsTable := make(map[string]bool)
	type primitive struct {
		fd        *ast.FuncDecl
		key       string
		writeArgs []ast.Expr // first args of its WriteMsg calls
	}
	var prims []primitive
	bodies := make(map[string]*ast.FuncDecl)
	for _, f := range pkg.Files {
		if f.IsTest {
			continue
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			_, recvType := receiverOf(fd)
			key := fd.Name.Name
			if recvType != "" {
				key = recvType + "." + fd.Name.Name
			}
			bodies[key] = fd
			var writes []ast.Expr
			var reads bool
			refs := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.Ident:
					if e.Name == mc.varName {
						refs = true
					}
				case *ast.CallExpr:
					if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
						switch sel.Sel.Name {
						case "WriteMsg":
							if len(e.Args) > 0 {
								writes = append(writes, e.Args[0])
							}
						case "ReadMsg":
							reads = true
						}
					}
				}
				return true
			})
			refsTable[key] = refs
			if len(writes) > 0 && reads {
				prims = append(prims, primitive{fd: fd, key: key, writeArgs: writes})
			}
		}
	}

	// consultsViaHelper: callers may consult the table through one helper
	// level (do → retryAfterSend → table).
	consults := func(key string) bool {
		fd := bodies[key]
		if fd == nil {
			return false
		}
		if refsTable[key] {
			return true
		}
		found := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if refsTable[fun.Name] {
					found = true
				}
			case *ast.SelectorExpr:
				if refsTable[fun.Sel.Name] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	for _, prim := range prims {
		// Exempt: every write is a hard-coded constant the table marks
		// idempotent (the health probe's Hello).
		allHardcodedIdempotent := true
		for _, arg := range prim.writeArgs {
			sel, ok := arg.(*ast.SelectorExpr)
			if !ok || !strings.HasPrefix(sel.Sel.Name, "Msg") {
				allHardcodedIdempotent = false
				break
			}
			if e, present := mc.entries[sel.Sel.Name]; !present || !e.value {
				allHardcodedIdempotent = false
				break
			}
		}
		if allHardcodedIdempotent {
			continue
		}
		if consults(prim.key) {
			continue
		}
		// Some direct caller must consult the classification.
		driven := false
		for callerKey, fd := range bodies {
			if callerKey == prim.key || fd.Body == nil {
				continue
			}
			callsPrim := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || callsPrim {
					return !callsPrim
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					callsPrim = fun.Name == prim.fd.Name.Name
				case *ast.SelectorExpr:
					callsPrim = fun.Sel.Name == prim.fd.Name.Name
				}
				return !callsPrim
			})
			if callsPrim && consults(callerKey) {
				driven = true
				break
			}
		}
		if !driven {
			p.Reportf(prim.fd.Name.Pos(), "%s sends and receives wire messages but neither it nor any caller "+
				"consults the idempotency table (%s); a retry through this path can replay a non-idempotent request",
				prim.fd.Name.Name, mc.varName)
		}
	}
}

// checkInstallOffsets enforces the offset-0 restart discipline at every
// MigrateInstall call site in the module: when the call sits inside a
// retry loop (an outer for around the chunk loop), the offset expression
// bound to the message must be reset inside that outer loop's body.
func checkInstallOffsets(p *Pass) {
	for _, pkg := range p.Prog.Pkgs {
		for _, f := range pkg.Files {
			if f.IsTest {
				continue
			}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkInstallOffsetsIn(p, fd)
			}
		}
	}
}

func checkInstallOffsetsIn(p *Pass, fd *ast.FuncDecl) {
	var loops []*ast.ForStmt
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch e := m.(type) {
			case *ast.ForStmt:
				if e == n {
					return true
				}
				loops = append(loops, e)
				walk(e.Body)
				loops = loops[:len(loops)-1]
				return false
			case *ast.CallExpr:
				sel, ok := e.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "MigrateInstall" {
					return true
				}
				off := installOffsetIdent(e)
				if off == "" {
					return true // offset isn't a simple variable; nothing to prove
				}
				// The call must be inside a chunk loop inside a retry
				// loop for a replay hazard to exist.
				if len(loops) < 2 {
					return true
				}
				retry := loops[len(loops)-2]
				if !loopResets(retry, off, loops[len(loops)-1]) {
					p.Reportf(e.Pos(), "MigrateInstall retried without restarting %s at 0: the retry loop must "+
						"re-ship the file from offset 0, never blind-resend a chunk (a replay corrupts the staging offset)", off)
				}
			}
			return true
		})
	}
	walk(fd.Body)
}

// installOffsetIdent extracts the identifier bound to the Offset field of
// the MigrateInstall composite-literal argument, or "".
func installOffsetIdent(call *ast.CallExpr) string {
	for _, arg := range call.Args {
		var cl *ast.CompositeLit
		switch a := arg.(type) {
		case *ast.CompositeLit:
			cl = a
		case *ast.UnaryExpr:
			if inner, ok := a.X.(*ast.CompositeLit); ok {
				cl = inner
			}
		}
		if cl == nil {
			continue
		}
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Offset" {
				if id, ok := kv.Value.(*ast.Ident); ok {
					return id.Name
				}
			}
		}
	}
	return ""
}

// loopResets reports whether the retry loop's body (outside the inner
// chunk loop) declares or zeroes the offset variable.
func loopResets(retry *ast.ForStmt, off string, inner *ast.ForStmt) bool {
	reset := false
	ast.Inspect(retry.Body, func(n ast.Node) bool {
		if n == inner {
			return false // resets inside the chunk loop don't restart the file
		}
		switch s := n.(type) {
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, name := range vs.Names {
							if name.Name == off && len(vs.Values) == 0 {
								reset = true
							}
						}
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != off || i >= len(s.Rhs) {
					continue
				}
				if lit, ok := s.Rhs[i].(*ast.BasicLit); ok && lit.Value == "0" {
					reset = true
				}
			}
		}
		return !reset
	})
	return reset
}
