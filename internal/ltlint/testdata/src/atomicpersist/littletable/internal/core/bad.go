package core

// writeDirect creates the durable file at its final name: a crash
// mid-write leaves a half-written file recovery will open.
func (t *T) writeDirect(path string, data []byte) error {
	f, err := t.fs.Create(path) // want `durable file created directly at its final name \(path\)`
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
