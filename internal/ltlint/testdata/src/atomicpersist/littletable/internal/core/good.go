package core

// writeAtomic follows the full recipe: temp name, Sync, Close, Rename,
// SyncDir.
func (t *T) writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := t.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := t.fs.Rename(tmp, path); err != nil {
		return err
	}
	return t.fs.SyncDir(t.dir)
}
