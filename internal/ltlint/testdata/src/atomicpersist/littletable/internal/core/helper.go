package core

import "littletable/internal/tablet"

// build delegates to the tablet writer, a module-internal helper that
// owns the recipe itself — not a raw filesystem create.
func build(dir string) error {
	return tablet.Create(dir)
}
