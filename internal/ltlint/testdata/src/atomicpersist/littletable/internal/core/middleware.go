package core

// meter is filesystem middleware: it embeds the FS and relays each call,
// so it forwards whatever discipline its caller chose and is exempt.
type meter struct {
	FS
	creates int
}

func (m *meter) Create(path string) (File, error) {
	m.creates++
	return m.FS.Create(path)
}
