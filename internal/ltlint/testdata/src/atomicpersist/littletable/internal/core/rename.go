package core

// renameOnly renames without syncing the parent directory: on power loss
// the rename itself can vanish.
func (t *T) renameOnly(from, to string) error {
	return t.fs.Rename(from, to) // want `Rename without a SyncDir in this file`
}
