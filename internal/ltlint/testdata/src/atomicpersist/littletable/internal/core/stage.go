package core

// stageOnly starts the staging but nothing in this file ever renames the
// temp file into place or syncs the directory.
func (t *T) stageOnly(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := t.fs.Create(tmp) // want `staged write \(tmp\) is never completed in this file`
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
