package core

// scratch spills to a file that is deleted and rebuilt on every open, so
// a torn write is unobservable; the suppression records that argument.
func (t *T) scratch(path string, data []byte) error {
	//ltlint:ignore atomicpersist scratch spill is deleted and rebuilt on open; torn writes are unobservable
	f, err := t.fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
