package core

type FS interface {
	Create(path string) (File, error)
	Rename(from, to string) error
	SyncDir(dir string) error
}

type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

type T struct {
	fs  FS
	dir string
}
