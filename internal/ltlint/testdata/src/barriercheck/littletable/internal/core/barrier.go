package core

type file struct{}

func (file) Sync() error  { return nil }
func (file) Close() error { return nil }

type fsys struct{}

func (fsys) Rename(oldname, newname string) error { return nil }
func (fsys) SyncDir(dir string) error             { return nil }

func writeDescriptor() error { return nil }

// bad shows every discard shape the rule catches.
func bad(f file, s fsys) {
	f.Sync()           // want `Sync's error is discarded`
	_ = f.Sync()       // want `Sync's error is assigned to _`
	go f.Sync()        // want `go Sync discards the barrier error`
	defer f.Sync()     // want `defer Sync discards the barrier error`
	s.Rename("a", "b") // want `Rename's error is discarded`
	s.SyncDir(".")     // want `SyncDir's error is discarded`
	writeDescriptor()  // want `writeDescriptor's error is discarded`
}

// good shows the checked shapes: returned, branched on, captured, or
// suppressed with a reason. Close is best-effort on read paths and is
// not a barrier.
func good(f file, s fsys) error {
	if err := f.Sync(); err != nil {
		return err
	}
	err := s.SyncDir(".")
	if err != nil {
		return err
	}
	defer f.Close()
	//ltlint:ignore barriercheck quarantine path: the failure is already counted in Stats.TabletsQuarantined
	s.Rename("a", "b")
	return writeDescriptor()
}
