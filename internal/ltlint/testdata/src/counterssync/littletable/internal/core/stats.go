package core

import "sync/atomic"

// Stats mirrors the real core.Stats shape: every atomic.Int64 field is a
// counter the triple-lockstep rule covers.
type Stats struct {
	Good   atomic.Int64
	Orphan atomic.Int64 // want `stats counter Orphan is not encoded in internal/wire` `stats counter Orphan is not exported by internal/server`
	NoSnap atomic.Int64 // want `stats counter NoSnap has no StatsSnapshot field` `stats counter NoSnap is not copied in Snapshot\(\)` `stats counter NoSnap is not encoded in internal/wire` `stats counter NoSnap is not exported by internal/server`
	//ltlint:ignore counterssync deliberately core-only: consumed by the crash harness, not operators
	CoreOnly atomic.Int64

	gauge int64 // not an atomic counter; ignored
}

type StatsSnapshot struct {
	Good     int64
	Orphan   int64
	CoreOnly int64
}

func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Good:     s.Good.Load(),
		Orphan:   s.Orphan.Load(),
		CoreOnly: s.CoreOnly.Load(),
	}
}
