package server

type snapshot struct{ Good int64 }

func export(s snapshot) int64 { return s.Good }
