package wire

// StatsResult carries Good but not Orphan/NoSnap — the drift the rule
// exists to catch.
type StatsResult struct {
	Good int64
}

func (m *StatsResult) Encode() []byte {
	_ = m.Good
	return nil
}
