// Package client joined the checked set in PR 6: the pool threads request
// deadlines down to socket deadlines, so a stray root context here makes a
// request uncancellable.
package client

import "context"

func roundTrip(ctx context.Context) error { return nil }

// stray shows the violation: minting a root mid-request discards the
// caller's deadline before it reaches the socket.
func stray() error {
	return roundTrip(context.TODO()) // want `context\.TODO\(\) severs the client→server→core→tablet→vfs cancellation chain`
}

// background is the sanctioned compat-shim root, minted in exactly one
// annotated place.
func background() context.Context {
	//ltlint:ignore ctxprop compat shims with no caller context start here
	return context.Background()
}

// Compat is the context-free public method shape: it starts from the one
// sanctioned root instead of minting its own.
func Compat() error {
	return roundTrip(background())
}
