package core

import "context"

type query struct{}

func run(ctx context.Context, q query) error { return nil }

// detached shows the violation: a fresh root context severs the caller's
// cancellation chain.
func detached(q query) error {
	return run(context.Background(), q) // want `context\.Background\(\) severs the client→server→core→tablet→vfs cancellation chain`
}

func parked(q query) error {
	return run(context.TODO(), q) // want `context\.TODO\(\) severs the client→server→core→tablet→vfs cancellation chain`
}

// Query is the public context-free entry point — the one sanctioned
// Background, carrying its justification inline.
func Query(q query) error {
	//ltlint:ignore ctxprop public context-free API shim: this is the designated root of the chain
	return run(context.Background(), q)
}

// threaded shows the compliant shape.
func threaded(ctx context.Context, q query) error {
	return run(ctx, q)
}
