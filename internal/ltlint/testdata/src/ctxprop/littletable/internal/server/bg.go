// Package server joined the checked set in PR 6: handler-side roots are
// just as capable of severing the chain as core-side ones.
package server

import "context"

// Root shows the violation: a handler minting its own root detaches every
// query spawned under it from the connection's lifetime.
func Root() context.Context {
	return context.Background() // want `context\.Background\(\) severs the client→server→core→tablet→vfs cancellation chain`
}

// BaseRoot is the one sanctioned server root: the BaseContext fallback for
// embedders that don't supply one, cancelled on Close/Shutdown.
func BaseRoot() context.Context {
	//ltlint:ignore ctxprop the server root: embedders without a BaseContext get a root cancelled on Close/Shutdown
	return context.Background()
}
