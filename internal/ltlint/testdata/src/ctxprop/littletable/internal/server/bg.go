// Package server sits outside the checked core/tablet query path: it is
// where root contexts are legitimately minted.
package server

import "context"

func Root() context.Context { return context.Background() }
