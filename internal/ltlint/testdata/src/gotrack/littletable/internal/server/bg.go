package server

import "sync"

type S struct {
	wg    sync.WaitGroup
	track sync.WaitGroup
	jobs  chan int
}

// spawnTracked is the canonical Add-before-spawn, Done-in-body shape.
func (s *S) spawnTracked() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		<-s.jobs
	}()
}

// spawnField proves WaitGroup-ness through the receiver's struct field
// type — the field name carries no "wg" hint.
func (s *S) spawnField() {
	s.track.Add(1)
	go func() {
		defer s.track.Done()
		<-s.jobs
	}()
}

// spawnLoose outlives any drain: nothing ties it to a WaitGroup.
func (s *S) spawnLoose() {
	go func() { // want `goroutine is not tied to a WaitGroup`
		<-s.jobs
	}()
}

// worker receives the group and proves itself with a deferred Done.
func worker(wg *sync.WaitGroup, jobs chan int) {
	go func() {
		defer wg.Done()
		<-jobs
	}()
}

// spawnOwned has a deliberate non-WaitGroup lifecycle: Close closes stop
// and the select exits.
func (s *S) spawnOwned(stop chan struct{}) {
	//ltlint:ignore gotrack prober owns this goroutine: Close closes stop and the select exits
	go func() {
		select {
		case <-s.jobs:
		case <-stop:
		}
	}()
}
