package core

import "sync"

type T struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	wg   sync.WaitGroup
	c    chan int
}

func (t *T) sendLocked() {
	t.mu.Lock()
	t.c <- 1 // want `channel send while holding t\.mu`
	t.mu.Unlock()
}

func (t *T) recvDeferred() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return <-t.c // want `channel receive while holding t\.mu`
}

func (t *T) recvReadLocked() int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return <-t.c // want `channel receive while holding t\.rw`
}

func (t *T) blockingSelect() {
	t.mu.Lock()
	select { // want `blocking select while holding t\.mu`
	case <-t.c:
	}
	t.mu.Unlock()
}

// nonBlockingKick is the level-trigger doorbell idiom: select with a
// default never blocks, so it is legal under the lock.
func (t *T) nonBlockingKick() {
	t.mu.Lock()
	select {
	case t.c <- 1:
	default:
	}
	t.mu.Unlock()
}

// condWait is the backpressure idiom: sync.Cond.Wait releases the mutex
// while parked, so it is exempt.
func (t *T) condWait() {
	t.mu.Lock()
	for len(t.c) == 0 {
		t.cond.Wait()
	}
	t.mu.Unlock()
}

func (t *T) wgWaitLocked() {
	t.mu.Lock()
	t.wg.Wait() // want `t\.wg\.Wait\(\) while holding t\.mu`
	t.mu.Unlock()
}

// unlockedOps shows sequential tracking: after the unlock, everything is
// legal again.
func (t *T) unlockedOps() {
	t.mu.Lock()
	t.mu.Unlock()
	t.c <- 1
	t.wg.Wait()
}

// branchUnlock shows the early-out shape the write pipeline uses.
func (t *T) branchUnlock() {
	t.mu.Lock()
	if len(t.c) > 0 {
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	<-t.c
}

// iife runs inline, so its body executes under the lock.
func (t *T) iife() {
	t.mu.Lock()
	func() {
		<-t.c // want `channel receive while holding t\.mu`
	}()
	t.mu.Unlock()
}

// spawned bodies run on their own goroutine, outside the critical
// section.
func (t *T) spawned() {
	t.mu.Lock()
	go func() {
		<-t.c
	}()
	t.mu.Unlock()
}

// suppressed shows the escape hatch: a justified ignore.
func (t *T) suppressed() {
	t.mu.Lock()
	//ltlint:ignore lockhold send to a buffered(1) doorbell drained only by this goroutine
	t.c <- 1
	t.mu.Unlock()
}
