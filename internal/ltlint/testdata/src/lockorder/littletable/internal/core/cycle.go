package core

import "sync"

type G struct {
	amu sync.Mutex
	bmu sync.Mutex
	n   int
}

// lockAB nests bmu inside amu.
func (g *G) lockAB() {
	g.amu.Lock()
	g.bmu.Lock() // want `lock order cycle: littletable/internal/core\.G\.bmu acquired while littletable/internal/core\.G\.amu is held`
	g.n++
	g.bmu.Unlock()
	g.amu.Unlock()
}

// lockBA disagrees about the order, so the two can deadlock the moment
// they run concurrently.
func (g *G) lockBA() {
	g.bmu.Lock()
	g.amu.Lock() // want `lock order cycle: littletable/internal/core\.G\.amu acquired while littletable/internal/core\.G\.bmu is held`
	g.n++
	g.amu.Unlock()
	g.bmu.Unlock()
}

// sequential holds the locks one at a time: no nesting, no edge.
func (g *G) sequential() {
	g.amu.Lock()
	g.n++
	g.amu.Unlock()
	g.bmu.Lock()
	g.n++
	g.bmu.Unlock()
}
