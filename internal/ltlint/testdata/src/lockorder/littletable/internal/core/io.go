package core

import "sync"

type FS interface {
	Create(path string) error
	Rename(from, to string) error
	SyncDir(dir string) error
}

type T struct {
	mu sync.Mutex
	fs FS
}

// saveUnderLock fsyncs with the table lock held: every request on this
// table stalls behind disk latency.
func (t *T) saveUnderLock(path string) { // want `saveUnderLock performs durable file I/O \(Create/Rename/SyncDir\) while littletable/internal/core\.T\.mu is held locally`
	t.mu.Lock()
	t.fs.Create(path)
	t.mu.Unlock()
}

// persist looks innocent in isolation; the held set propagates in from
// its caller over the call graph.
func (t *T) persist(path string) { // want `persist performs durable file I/O \(Create/Rename/SyncDir\) while littletable/internal/core\.T\.mu is held by caller littletable/internal/core\.T\.flush`
	t.fs.Create(path)
}

func (t *T) flush(path string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.persist(path)
}

// saveOutside snapshots under the lock and persists after releasing it —
// the shape the rule pushes code toward.
func (t *T) saveOutside(path string) {
	t.mu.Lock()
	t.mu.Unlock()
	t.fs.Create(path)
}

//ltlint:ignore lockorder deliberate foreground commit: the tablet list and descriptor must move as one transition
func (t *T) commitLocked(path string) {
	t.mu.Lock()
	t.fs.Create(path)
	t.mu.Unlock()
}
