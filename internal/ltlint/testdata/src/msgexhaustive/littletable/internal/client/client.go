package client

import "littletable/internal/wire"

// msgIdempotency covers every request type, router-only included: the
// client is how anyone talks to a router.
var msgIdempotency = map[wire.MsgType]bool{
	wire.MsgHello:      true,
	wire.MsgInsert:     false,
	wire.MsgQuery:      true,
	wire.MsgRouteTable: false,
	wire.MsgAggQuery:   true,
}

// decode references the response constants the client can read.
func decode(t wire.MsgType) bool {
	switch t {
	case wire.MsgOK, wire.MsgRows, wire.MsgAggResult:
		return true
	}
	return false
}
