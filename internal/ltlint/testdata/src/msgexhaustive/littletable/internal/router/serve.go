package router

import "littletable/internal/wire"

func dispatch(t wire.MsgType) string {
	switch t {
	case wire.MsgHello, wire.MsgQuery, wire.MsgAggQuery:
		return "local"
	case wire.MsgInsert, wire.MsgRouteTable:
		return "forward"
	}
	return "reject"
}
