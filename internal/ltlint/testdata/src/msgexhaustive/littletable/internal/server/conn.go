package server

import "littletable/internal/wire"

func dispatch(t wire.MsgType) string {
	switch t {
	case wire.MsgHello:
		return "hello"
	case wire.MsgInsert:
		return "insert"
	case wire.MsgQuery:
		return "query"
	case wire.MsgAggQuery:
		return "agg"
	}
	return "unknown"
}
