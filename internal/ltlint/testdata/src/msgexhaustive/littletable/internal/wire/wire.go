package wire

type MsgType uint8

// Requests.
const (
	MsgHello MsgType = iota + 1
	MsgInsert
	MsgQuery
	MsgRouteTable // router-only: placement move, never reaches a plain server
	MsgPhantom    // want `request wire\.MsgPhantom is not handled in internal/server's dispatch switch` `request wire\.MsgPhantom is missing from internal/client's idempotency table` `request wire\.MsgPhantom is not classified in internal/router's dispatch`
	//ltlint:ignore msgexhaustive experimental message behind a build flag; surfaces land with the feature
	MsgExperimental
	MsgAggQuery // fully wired on all three surfaces: zero diagnostics expected
)

// Responses.
const (
	MsgOK MsgType = iota + 64
	MsgRows
	MsgLostResult // want `response wire\.MsgLostResult is never referenced by internal/client`
	MsgAggResult  // referenced by the client's decode switch below
)
