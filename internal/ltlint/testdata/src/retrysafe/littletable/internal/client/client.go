package client

import (
	"littletable/internal/wire"
)

// msgIdempotency is the classification table retrysafe audits: the deny
// list (inserts, deletes, schema changes, installs) must never be true.
var msgIdempotency = map[wire.MsgType]bool{
	wire.MsgHello:  true,
	wire.MsgQuery:  true,
	wire.MsgInsert: true, // want `wire\.MsgInsert is classified idempotent`
	wire.MsgDelete: false,
}

type conn struct{}

func (c *conn) WriteMsg(t wire.MsgType, p []byte) error { return nil }
func (c *conn) ReadMsg() (wire.MsgType, []byte, error)  { return 0, nil, nil }

type Client struct {
	c *conn
}

// retryAfterSend is the one-helper level callers may consult through.
func retryAfterSend(t wire.MsgType) bool { return msgIdempotency[t] }

// once is the send primitive; it is driven because do, its caller,
// consults the classification via retryAfterSend.
func (c *Client) once(t wire.MsgType, p []byte) ([]byte, error) {
	if err := c.c.WriteMsg(t, p); err != nil {
		return nil, err
	}
	_, resp, err := c.c.ReadMsg()
	return resp, err
}

func (c *Client) do(t wire.MsgType, p []byte) ([]byte, error) {
	for {
		resp, err := c.once(t, p)
		if err == nil || !retryAfterSend(t) {
			return resp, err
		}
	}
}

// rawSend bypasses the retry policy entirely: nothing between it and the
// wire consults the table, so a caller looping on it replays anything.
func (c *Client) rawSend(t wire.MsgType, p []byte) ([]byte, error) { // want `rawSend sends and receives wire messages but neither it nor any caller consults the idempotency table`
	c.c.WriteMsg(t, p)
	_, resp, err := c.c.ReadMsg()
	return resp, err
}

// probe only ever writes a hard-coded idempotent type (the pool's
// health-check shape), so it is exempt.
func (c *Client) probe() error {
	if err := c.c.WriteMsg(wire.MsgHello, nil); err != nil {
		return err
	}
	_, _, err := c.c.ReadMsg()
	return err
}

//ltlint:ignore retrysafe test-only echo used by the harness; it never carries write traffic
func (c *Client) echo(t wire.MsgType, p []byte) ([]byte, error) {
	c.c.WriteMsg(t, p)
	_, resp, err := c.c.ReadMsg()
	return resp, err
}
