package router

import (
	"context"

	"littletable/internal/wire"
)

type installer interface {
	MigrateInstall(ctx context.Context, m *wire.MigrateInstall) error
}

const chunkSize = 4096

// shipGood restarts the file from offset 0 on every retry attempt: the
// offset is declared inside the retry loop, so a failed attempt re-ships
// the whole file.
func shipGood(ctx context.Context, cl installer, file string, data []byte) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		var off int64
		for off < int64(len(data)) {
			end := off + chunkSize
			if end > int64(len(data)) {
				end = int64(len(data))
			}
			err = cl.MigrateInstall(ctx, &wire.MigrateInstall{File: file, Offset: off, Data: data[off:end]})
			if err != nil {
				break
			}
			off = end
		}
		if err == nil {
			return nil
		}
	}
	return err
}

// shipBad carries the offset across attempts: after a failure mid-file,
// the next attempt resumes at a staging offset the target may not have.
func shipBad(ctx context.Context, cl installer, file string, data []byte) error {
	var err error
	var off int64
	for attempt := 0; attempt < 3; attempt++ {
		for off < int64(len(data)) {
			end := off + chunkSize
			if end > int64(len(data)) {
				end = int64(len(data))
			}
			err = cl.MigrateInstall(ctx, &wire.MigrateInstall{File: file, Offset: off, Data: data[off:end]}) // want `MigrateInstall retried without restarting off at 0`
			if err != nil {
				break
			}
			off = end
		}
		if err == nil {
			return nil
		}
	}
	return err
}
