package wire

type MsgType uint8

const (
	MsgHello MsgType = iota + 1
	MsgInsert
	MsgDelete
	MsgQuery
	MsgMigrateInstall
)

// MigrateInstall ships one chunk of a tablet image.
type MigrateInstall struct {
	Table  string
	File   string
	Offset int64
	Data   []byte
}
