package core

import (
	"io/ioutil"
	stdos "os"
)

// provision shows the violation shapes: direct os calls (even under a
// renamed import) and the deprecated ioutil equivalents.
func provision(dir string) error {
	f, err := stdos.Create(dir + "/t.tab") // want `direct os\.Create outside internal/vfs`
	if err != nil {
		return err
	}
	defer f.Close()
	if err := stdos.Rename(dir+"/t.tab", dir+"/u.tab"); err != nil { // want `direct os\.Rename outside internal/vfs`
		return err
	}
	if _, err := ioutil.ReadFile(dir + "/u.tab"); err != nil { // want `direct ioutil\.ReadFile outside internal/vfs`
		return err
	}
	return nil
}

// scratch shows the sanctioned escape hatch: an inline suppression with a
// reason.
func scratch(dir string) (string, error) {
	return stdos.MkdirTemp(dir, "scratch") //ltlint:ignore vfsonly bench scratch dirs live on the real filesystem by design
}

// env shows that non-I/O os helpers are not flagged.
func env() string { return stdos.Getenv("LT_DIR") }
