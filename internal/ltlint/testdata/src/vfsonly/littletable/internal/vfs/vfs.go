// Package vfs is the one place direct os file I/O is allowed: it IS the
// boundary the rest of the engine is kept behind.
package vfs

import "os"

type File = *os.File

func Create(name string) (File, error) { return os.Create(name) }

func Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
