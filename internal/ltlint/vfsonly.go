package ltlint

import (
	"go/ast"
	"strings"
)

// osFileIO lists the os package's file-I/O entry points. Non-I/O helpers
// (os.Getenv, os.Exit, os.TempDir — which only returns a path string) are
// deliberately absent.
var osFileIO = map[string]bool{
	"Create": true, "CreateTemp": true, "NewFile": true,
	"Open": true, "OpenFile": true,
	"Rename": true, "Remove": true, "RemoveAll": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Stat": true, "Lstat": true, "Truncate": true,
	"Chmod": true, "Chown": true, "Chtimes": true,
	"Link": true, "Symlink": true, "Readlink": true,
}

// ioutilFileIO lists the deprecated io/ioutil equivalents.
var ioutilFileIO = map[string]bool{
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"TempFile": true, "TempDir": true,
}

// VfsOnly enforces the fault-coverage invariant behind §5's recovery
// story: the crash harness can only prove prefix durability if it
// intercepts every byte of file I/O, so no package outside internal/vfs
// may call os (or io/ioutil) file functions directly. Test files are
// exempt (the harness and fixtures live there), as are internal/ltlint
// and cmd/ltlint themselves, which read source text, not engine data.
var VfsOnly = &Analyzer{
	Name: "vfsonly",
	Doc: "direct os/ioutil file I/O outside internal/vfs escapes FaultFS " +
		"and the crash harness, voiding §5's tested durability guarantees",
	Run: runVfsOnly,
}

func runVfsOnly(p *Pass) error {
	mod := p.Prog.ModPath
	exempt := func(pkgPath string) bool {
		return pkgPath == mod+"/internal/vfs" ||
			pkgPath == mod+"/cmd/ltlint" ||
			pkgPath == mod+"/internal/ltlint" ||
			strings.HasPrefix(pkgPath, mod+"/internal/ltlint/")
	}
	for _, pkg := range p.Prog.Pkgs {
		if exempt(pkg.PkgPath) {
			continue
		}
		for _, f := range pkg.Files {
			if f.IsTest {
				continue
			}
			imports := importNames(f.AST)
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, sel, ok := pkgCall(call)
				if !ok {
					return true
				}
				switch imports[name] {
				case "os":
					if osFileIO[sel] {
						p.Reportf(call.Pos(), "direct os.%s outside internal/vfs; "+
							"route file I/O through vfs.FS so FaultFS and the crash harness cover it", sel)
					}
				case "io/ioutil":
					if ioutilFileIO[sel] {
						p.Reportf(call.Pos(), "direct ioutil.%s outside internal/vfs; "+
							"route file I/O through vfs.FS so FaultFS and the crash harness cover it", sel)
					}
				}
				return true
			})
		}
	}
	return nil
}
